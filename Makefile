# Build/test entry points. CI (.github/workflows/ci.yml) runs these
# targets verbatim, so local and CI invocations cannot drift.

GO ?= go

.PHONY: all build test test-quick lint bench bench-gate batch serve clean

all: build lint test

## build: compile every package and command
build:
	$(GO) build ./...

## test: the full suite with the race detector and shuffled order
test:
	$(GO) test -race -shuffle=on ./...

## test-quick: the tier-1 verification command (build + plain tests)
test-quick:
	$(GO) build ./... && $(GO) test ./...

## lint: go vet, the art9-lint analyzer suite, staticcheck (when
## installed), and a gofmt cleanliness check
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/art9-lint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt -l flagged:"; echo "$$out"; exit 1; fi

## bench: one pass over every benchmark (smoke; use -benchtime=10x locally)
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

## bench-gate: the packed-kernel benchmark regression gate — re-times every
## packed kernel against its trit-serial reference (fails below the 3×
## aggregate floor, writes the ns/op table to BENCH_kernels.json) and takes
## the end-to-end simulator throughput figures for the same artifact set
bench-gate:
	ART9_BENCH_GATE=1 ART9_BENCH_GATE_OUT=$(CURDIR)/BENCH_kernels.json \
		$(GO) test -run TestPackedKernelSpeedupGate -v ./internal/ternary/
	$(GO) test -run=NONE -bench=BenchmarkSimulatorThroughput -benchtime=1s .

## batch: run the example manifest through the engine, emit BENCH_report.json
batch:
	$(GO) run ./cmd/art9-batch -manifest examples/batch/manifest.json -o BENCH_report.json
	@echo "wrote BENCH_report.json"

## serve: run the streaming evaluation service on :9009
serve:
	$(GO) run ./cmd/art9-serve

clean:
	rm -f BENCH_*.json
