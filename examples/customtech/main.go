// Customtech demonstrates the central claim of the hardware-level
// framework (§III-B): the ART-9 core can be evaluated "for arbitrary
// design technology" by swapping the technology property description.
// Besides the two shipped models (CNTFET, FPGA emulation), we define a
// hypothetical graphene-barristor ternary process (the paper's reference
// [5]/[9] device class) and compare all three operating points — without
// touching the netlist, the simulator, or the estimator.
package main

import (
	"fmt"

	art9 "repro"
)

// grapheneBarristor sketches a ternary technology from the
// graphene-barristor full-adder literature ([9]): faster inverters than
// the CNTFET model, slower adders, higher leakage.
func grapheneBarristor() *art9.Technology {
	t := art9.CNTFET32()
	t.Name = "graphene-barristor (hypothetical)"
	for kind, p := range t.Props {
		p.DelayPs *= 0.8  // faster switching
		p.LeakNW *= 2.5   // leakier barristor stack
		p.EnergyFJ *= 1.4 // higher node capacitance
		t.Props[kind] = p
	}
	t.Activity = 0.08
	return t
}

func main() {
	// Dhrystone-class cycles/iteration from the benchmark suite give
	// the DMIPS numerator for every technology.
	var dhry art9.Workload
	for _, w := range art9.Benchmarks() {
		if w.Name == "dhrystone" {
			dhry = w
		}
	}
	o, err := art9.RunBenchmark(dhry)
	if err != nil {
		panic(err)
	}
	cyclesPerIter := float64(o.ART9Cycles) / float64(dhry.Iterations)
	dmipsPerMHz := 1e6 / (1757 * cyclesPerIter)

	fmt.Println("the same ART-9 netlist under three technology descriptions:")
	fmt.Printf("%-36s %10s %12s %12s\n", "technology", "fmax", "power@fmax", "DMIPS/W")
	for _, tech := range []*art9.Technology{
		art9.CNTFET32(),
		grapheneBarristor(),
		art9.StratixVEmulation(),
	} {
		an := art9.BuildNetlist(tech)
		freq := an.FmaxMHz
		memTrits := 0
		if tech.StaticW > 0 { // the FPGA model powers a whole device
			freq = 150
			memTrits = 2 * 256 * 9
		}
		p := an.PowerW(tech, freq, memTrits, 1.2)
		fmt.Printf("%-36s %7.1fMHz %11.4gW %12.4g\n",
			tech.Name, an.FmaxMHz, p, dmipsPerMHz*freq/p)
	}

	fmt.Println("\nthe framework inputs (Fig. 3) stay fixed — only the property")
	fmt.Println("description of the design technology changes, which is exactly")
	fmt.Println("the workflow the paper proposes for emerging ternary devices.")
}
