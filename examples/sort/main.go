// Sort demonstrates the full software-level compiling framework on the
// paper's bubble-sort benchmark: RV32 assembly is translated to ART-9
// ternary assembly (instruction mapping → operand conversion →
// redundancy checking), then both versions run and the results are
// compared element by element.
package main

import (
	"fmt"
	"log"

	art9 "repro"
)

const rvSource = `
.data
arr:	.word 9, -4, 7, 1, -8, 3, 0, 5
.text
	la   s0, arr
	li   s1, 7           # passes
outer:
	mv   s2, s0
	li   s3, 0
inner:
	lw   t0, 0(s2)
	lw   t1, 4(s2)
	ble  t0, t1, noswap
	sw   t1, 0(s2)
	sw   t0, 4(s2)
noswap:
	addi s2, s2, 4
	addi s3, s3, 1
	blt  s3, s1, inner
	addi s1, s1, -1
	bgtz s1, outer
	ebreak
`

func main() {
	res, err := art9.Compile(rvSource)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RV32 input:   %d instructions (%d bits)\n",
		len(res.Binary.Insts), res.Binary.TextBits())
	fmt.Printf("ART-9 output: %d instructions (%d trits), %d removed by redundancy checking\n",
		len(res.Program.Text), res.Program.TextCells(), res.Ternary.Removed)

	state, runRes, err := art9.Run(res.Program, res.Data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ternary run:  %d cycles, %d retired\n\n", runRes.Cycles, runRes.Retired)

	fmt.Println("sorted array read back from the ternary data memory:")
	for i := 0; i < 8; i++ {
		w, err := state.TDM.Read(i * 4) // identity byte-address mapping
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  arr[%d] = %d\n", i, w.Int())
	}
}
