// Truthtables regenerates Fig. 1 of the paper: the truth tables of the
// balanced ternary logic operations (AND, OR, XOR and the three
// inverters STI, NTI, PTI).
package main

import (
	"fmt"

	art9 "repro"
)

func main() {
	trits := []art9.Trit{-1, 0, 1}

	fmt.Println("Fig. 1 — truth tables of ternary logic operations")
	fmt.Println()

	unary := []struct {
		name string
		op   func(art9.Trit) art9.Trit
	}{
		{"STI", art9.Trit.Sti},
		{"NTI", art9.Trit.Nti},
		{"PTI", art9.Trit.Pti},
	}
	fmt.Printf("%4s |", "x")
	for _, u := range unary {
		fmt.Printf(" %4s", u.name)
	}
	fmt.Println()
	fmt.Println("-----+---------------")
	for _, x := range trits {
		fmt.Printf("%4s |", x)
		for _, u := range unary {
			fmt.Printf(" %4s", u.op(x))
		}
		fmt.Println()
	}
	fmt.Println()

	binary := []struct {
		name string
		op   func(art9.Trit, art9.Trit) art9.Trit
	}{
		{"AND (min)", art9.Trit.And},
		{"OR (max)", art9.Trit.Or},
		{"XOR −(a·b)", art9.Trit.Xor},
	}
	for _, b := range binary {
		fmt.Printf("%s\n", b.name)
		fmt.Printf("%4s |", "a\\b")
		for _, y := range trits {
			fmt.Printf(" %4s", y)
		}
		fmt.Println()
		fmt.Println("-----+---------------")
		for _, x := range trits {
			fmt.Printf("%4s |", x)
			for _, y := range trits {
				fmt.Printf(" %4s", b.op(x, y))
			}
			fmt.Println()
		}
		fmt.Println()
	}
}
