// Gemm runs the paper's GEMM benchmark on every core model and prints the
// Table III style comparison, showing the crossover the paper reports:
// without a hardware multiplier the ART-9 core's advantage shrinks to
// near-parity on multiply-bound kernels — the software multiply's
// early-exit on small (two-trit) operands is what keeps it competitive.
package main

import (
	"fmt"
	"log"

	art9 "repro"
)

func main() {
	var gemm, bubble art9.Workload
	for _, w := range art9.Benchmarks() {
		switch w.Name {
		case "gemm":
			gemm = w
		case "bubble":
			bubble = w
		}
	}

	for _, w := range []art9.Workload{bubble, gemm} {
		o, err := art9.RunBenchmark(w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — %s\n", w.Name, w.Description)
		fmt.Printf("  checksum    %d (agrees on RV32, ART-9 functional, ART-9 pipelined)\n", o.Checksum)
		fmt.Printf("  ART-9       %6d cycles\n", o.ART9Cycles)
		fmt.Printf("  PicoRV32    %6d cycles  (%.2fx)\n",
			o.PicoCycles, float64(o.PicoCycles)/float64(o.ART9Cycles))
		fmt.Printf("  VexRiscv    %6d cycles\n\n", o.VexCycles)
	}
	fmt.Println("Table III shape: the bubble-sort advantage is large, the GEMM")
	fmt.Println("advantage nearly vanishes — the ART-9 ISA has no multiplier")
	fmt.Println("(Table II), so MUL maps to a trit-serial primitive sequence.")
}
