// Sobel runs the paper's Sobel-filter benchmark through the compiling
// framework, executes it on the pipelined ternary core, and renders the
// resulting gradient-magnitude image as ASCII art — a small visual check
// that the translated ternary program computes the same picture.
package main

import (
	"fmt"
	"log"

	art9 "repro"
)

func main() {
	var sobel art9.Workload
	for _, w := range art9.Benchmarks() {
		if w.Name == "sobel" {
			sobel = w
		}
	}
	o, err := art9.RunBenchmark(sobel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", sobel.Description)
	fmt.Printf("ART-9: %d cycles (load stalls %d, squashes %d); PicoRV32: %d; checksum %d\n\n",
		o.ART9Cycles, o.ARTStallsLoad, o.ARTStallsBranch, o.PicoCycles, o.Checksum)

	// Re-run through the public API to read the output image back from
	// the ternary data memory.
	res, err := art9.Compile(sobel.Source)
	if err != nil {
		log.Fatal(err)
	}
	state, _, err := art9.Run(res.Program, res.Data)
	if err != nil {
		log.Fatal(err)
	}
	const outBase = 1024 // byte address of out[] in the benchmark
	shades := []byte(" .:-=+*#%@")
	fmt.Println("gradient magnitude, 14x14 interior:")
	for r := 0; r < 14; r++ {
		row := make([]byte, 14)
		for c := 0; c < 14; c++ {
			w, err := state.TDM.Read(outBase + (r*14+c)*4)
			if err != nil {
				log.Fatal(err)
			}
			v := w.Int()
			idx := v * len(shades) / 90
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			if idx < 0 {
				idx = 0
			}
			row[c] = shades[idx]
		}
		fmt.Printf("  %s\n", row)
	}
}
