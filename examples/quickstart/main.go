// Quickstart: assemble a small ART-9 ternary program, run it on the
// cycle-accurate pipelined core, and inspect the result.
package main

import (
	"fmt"
	"log"

	art9 "repro"
)

func main() {
	// Sum the integers 1..10 on the ternary core. LDI is the assembler's
	// load-immediate pseudo (the LUI/LI construction of the paper's
	// §IV-A); COMP+BNE is the ART-9 conditional-branch idiom.
	prog, err := art9.Assemble(`
		LDI T1, 0        ; sum
		LDI T2, 1        ; i
		LDI T3, 10       ; n
	loop:
		ADD T1, T2
		ADDI T2, 1
		MV  T4, T2
		COMP T4, T3      ; sign(i - n) into T4's least trit
		BNE T4, 1, loop  ; while i <= n
		HALT
	`)
	if err != nil {
		log.Fatal(err)
	}

	state, res, err := art9.Run(prog, nil)
	if err != nil {
		log.Fatal(err)
	}

	sum := state.Reg(1)
	fmt.Printf("sum(1..10)      = %d  (ternary %v)\n", sum.Int(), sum)
	fmt.Printf("cycles          = %d\n", res.Cycles)
	fmt.Printf("retired         = %d (CPI %.2f)\n", res.Retired, res.CPI())
	fmt.Printf("branch squashes = %d (one per taken branch, §IV-B)\n", res.StallsBranch)

	// The same program, digit by digit: every value is nine balanced
	// trits, so 55 prints as 0000201*... let's see:
	fmt.Printf("\n55 in balanced ternary: %v (trits, most significant first)\n",
		art9.FromInt(55))
}
