// Dhrystone reproduces the headline result of the paper end to end: the
// Dhrystone-class benchmark runs on the translated ternary core and on
// both binary baselines, then the hardware-level framework maps the cycle
// counts onto the CNTFET and FPGA technologies, printing the DMIPS/MHz of
// Table II and the DMIPS/W of Tables IV and V.
package main

import (
	"fmt"
	"log"

	art9 "repro"
)

func main() {
	var dhry art9.Workload
	for _, w := range art9.Benchmarks() {
		if w.Name == "dhrystone" {
			dhry = w
		}
	}
	o, err := art9.RunBenchmark(dhry)
	if err != nil {
		log.Fatal(err)
	}
	iters := float64(dhry.Iterations)
	perIter := float64(o.ART9Cycles) / iters
	dmipsPerMHz := 1e6 / (1757 * perIter)

	fmt.Printf("%s\n\n", dhry.Description)
	fmt.Printf("cycles/iteration:  ART-9 %.0f | VexRiscv %.0f | PicoRV32 %.0f\n",
		perIter, float64(o.VexCycles)/iters, float64(o.PicoCycles)/iters)
	fmt.Printf("DMIPS/MHz:         ART-9 %.2f | VexRiscv %.2f | PicoRV32 %.2f   (Table II)\n\n",
		dmipsPerMHz,
		1e6/(1757*float64(o.VexCycles)/iters),
		1e6/(1757*float64(o.PicoCycles)/iters))

	// Hardware-level evaluation on both technologies.
	for _, tech := range []*art9.Technology{art9.CNTFET32(), art9.StratixVEmulation()} {
		an := art9.BuildNetlist(tech)
		freq := an.FmaxMHz
		memTrits := 0
		if tech.Name != "CNTFET-32nm" {
			freq = 150
			memTrits = 2 * 256 * 9
		}
		p := an.PowerW(tech, freq, memTrits, 1.2)
		dmips := dmipsPerMHz * freq
		fmt.Printf("%-24s %6.1f MHz  %10.4g W  %10.4g DMIPS/W\n",
			tech.Name, freq, p, dmips/p)
	}
	fmt.Println("\n(Tables IV/V: the CNTFET core lands in the 10^6 DMIPS/W class,")
	fmt.Println("the FPGA emulation in the 10^1 class — a five-order-of-magnitude")
	fmt.Println("gap from the emerging ternary device.)")
}
