// Package art9 is the public API of the ART-9 reproduction: the design and
// evaluation frameworks for the advanced RISC-based ternary processor of
// Kam et al. (DATE 2022), implemented in pure Go.
//
// The package re-exports the supported surface of the internal packages:
//
//   - balanced ternary arithmetic (Trit, Word),
//   - the ART-9 ISA, assembler and disassembler,
//   - the software-level compiling framework (RV32 assembly → ternary
//     assembly with instruction mapping, operand conversion / register
//     renaming, and redundancy checking),
//   - the hardware-level evaluation framework (functional and 5-stage
//     pipelined cycle-accurate simulators, gate-level analyzer with the
//     CNTFET and FPGA technology models, performance estimator),
//   - the §V-A benchmark suite and the harness regenerating Fig. 5 and
//     Tables II–V.
//
// Quick start:
//
//	prog, err := art9.Assemble("LDI T1, 42\nADDI T1, 1\nHALT")
//	state, res, err := art9.Run(prog, nil)
//	fmt.Println(state.Reg(1).Int(), res.Cycles)
package art9

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gate"
	"repro/internal/isa"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/ternary"
	"repro/internal/xlate"
)

// Ternary number system.
type (
	// Trit is a balanced ternary digit (−1, 0, +1).
	Trit = ternary.Trit
	// Word is the 9-trit ART-9 machine word.
	Word = ternary.Word
)

// Word-range constants of the 9-trit architecture.
const (
	WordTrits = ternary.WordTrits
	MaxInt    = ternary.MaxInt
	MinInt    = ternary.MinInt
)

// FromInt converts an integer to a 9-trit word (wrapping modulo 3^9).
func FromInt(v int) Word { return ternary.FromInt(v) }

// ParseWord parses a balanced ternary literal such as "1T0".
func ParseWord(s string) (Word, error) { return ternary.ParseWord(s) }

// ISA surface.
type (
	// Inst is a decoded ART-9 instruction.
	Inst = isa.Inst
	// Op is an ART-9 opcode (24 instructions, Table I).
	Op = isa.Op
	// Reg is a ternary register index T0…T8.
	Reg = isa.Reg
)

// EncodeInst encodes an instruction into its 9-trit word.
func EncodeInst(i Inst) (Word, error) { return isa.Encode(i) }

// DecodeInst decodes a 9-trit word into an instruction.
func DecodeInst(w Word) (Inst, error) { return isa.Decode(w) }

// Assembler.
type (
	// Program is an assembled ART-9 program.
	Program = asm.Program
)

// Assemble assembles ART-9 assembly source.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// Disassemble renders an encoded TIM image as assembly text.
func Disassemble(words []Word) string { return asm.Disassemble(words) }

// Simulation.
type (
	// State is the architectural state of an ART-9 core.
	State = sim.State
	// RunResult carries cycle/instruction/stall counts.
	RunResult = sim.Result
	// SimConfig sizes a simulated machine.
	SimConfig = sim.Config
)

// Run executes a program on the cycle-accurate 5-stage pipelined core with
// optional TDM initialisation, returning the final state and statistics.
// An optional SimConfig sizes the machine (memory words, step budget);
// omitted, the full 9-trit address space and default budget apply.
func Run(p *Program, data map[int]Word, cfg ...SimConfig) (*State, RunResult, error) {
	c, err := oneConfig(cfg)
	if err != nil {
		return nil, RunResult{}, err
	}
	pl := sim.NewPipeline(c)
	if err := pl.S.Load(p); err != nil {
		return nil, RunResult{}, err
	}
	if data != nil {
		if err := pl.S.TDM.SetAll(data); err != nil {
			return nil, RunResult{}, err
		}
	}
	res, err := pl.Run()
	return pl.S, res, err
}

// RunFunctional executes a program on the single-cycle reference core,
// with the same optional machine sizing as Run.
func RunFunctional(p *Program, data map[int]Word, cfg ...SimConfig) (*State, RunResult, error) {
	c, err := oneConfig(cfg)
	if err != nil {
		return nil, RunResult{}, err
	}
	return core.RunFunctional(p, data, c)
}

// oneConfig unwraps the optional trailing SimConfig of Run and
// RunFunctional. Passing more than one is an error — the extras used to
// be silently discarded, which hid caller bugs where two configs
// disagreed about the machine size.
func oneConfig(cfg []SimConfig) (SimConfig, error) {
	switch len(cfg) {
	case 0:
		return SimConfig{}, nil
	case 1:
		return cfg[0], nil
	default:
		return SimConfig{}, fmt.Errorf("art9: at most one SimConfig may be passed (got %d)", len(cfg))
	}
}

// Software-level compiling framework (§III-A).
type (
	// SoftwareFramework converts RV32 assembly into ART-9 assembly.
	SoftwareFramework = core.SoftwareFramework
	// CompileResult is its output bundle.
	CompileResult = core.CompileResult
	// TranslateOptions tune the instruction-mapping phase.
	TranslateOptions = xlate.Options
)

// Compile translates RV32 assembly source with default options.
func Compile(rvSource string) (*CompileResult, error) {
	f := &SoftwareFramework{}
	return f.Compile(rvSource)
}

// Hardware-level evaluation framework (§III-B).
type (
	// HardwareFramework evaluates a program against a technology.
	HardwareFramework = core.HardwareFramework
	// Evaluation is its combined output.
	Evaluation = core.Evaluation
	// Technology is a design-technology property description.
	Technology = gate.Technology
	// Analysis is a gate-level timing/power report.
	Analysis = gate.Analysis
	// Implementation is a Table IV/V style summary.
	Implementation = perf.Implementation
)

// CNTFET32 returns the 32 nm CNTFET ternary technology model (Table IV).
func CNTFET32() *Technology { return gate.CNTFET32() }

// StratixVEmulation returns the binary-encoded FPGA model (Table V).
func StratixVEmulation() *Technology { return gate.StratixVEmulation() }

// BuildNetlist constructs the structural netlist of the pipelined ART-9
// core and analyzes it for the given technology.
func BuildNetlist(tech *Technology) *Analysis {
	return gate.Analyze(gate.BuildART9(), tech)
}

// Benchmarks (§V-A).
type (
	// Workload is one benchmark program of the suite.
	Workload = bench.Workload
	// Outcome carries every per-benchmark metric.
	Outcome = bench.Outcome
	// JobReport is one evaluation report row — the schema shared by
	// art9-batch reports and the art9-serve NDJSON stream. Results
	// from remote backends carry a *JobReport as their Value (the row
	// the peer rendered), where local results carry *Outcome.
	JobReport = bench.JobReport
)

// Benchmarks returns the §V-A suite (bubble, GEMM, Sobel, Dhrystone).
func Benchmarks() []Workload { return bench.Workloads }

// RunBenchmark runs one workload on every core model with self-checking.
func RunBenchmark(w Workload) (*Outcome, error) {
	return bench.Run(w, xlate.Options{})
}

// ReproduceTables runs the whole suite and renders Fig. 5 and Tables II–V.
func ReproduceTables() (string, error) { return bench.AllTables() }

// Concurrent batch evaluation: one Evaluator interface, many backends.
type (
	// Evaluator is the one backend interface of the evaluation stack:
	// Run (submission-order batch), Stream (completion-order channel),
	// Stats, Close. A local worker pool (Engine), a partition over
	// other evaluators (ShardSet) and an HTTP client proxying to a
	// remote art9-serve instance all implement it and compose freely;
	// build one with New.
	Evaluator = engine.Evaluator
	// Engine is the local worker-pool backend, with memoization caches
	// for assembled programs and gate-level analyses.
	Engine = engine.Engine
	// EngineOptions size the pool and set the default per-job timeout.
	EngineOptions = engine.Options
	// EngineJob is one unit of evaluation work.
	EngineJob = engine.Job
	// EngineResult is the outcome of one engine job.
	EngineResult = engine.Result
	// EngineStats are an evaluator's lifetime counters.
	EngineStats = engine.Stats
	// ShardSet partitions batches round-robin across backends — local
	// engines, remote peers, or other shard sets — and merges their
	// completion-order streams.
	ShardSet = engine.ShardSet
	// Balancer is the health-aware failover front: least-loaded
	// dispatch over any mix of backends, periodic liveness probes, and
	// bounded job-level failover when a backend dies mid-suite. Build
	// one with New(WithFailover(), ...).
	Balancer = engine.Balancer
	// BackendHealth is one balanced backend's dispatch/failover/probe
	// scorecard, as reported by Balancer.Health and BENCH reports.
	BackendHealth = engine.BackendHealth
	// Capacity is a backend's point-in-time load snapshot (live
	// workers, busy, free, queue depth) — served by GET /v1/capacity,
	// scraped by the Balancer's probe loop, and used to size chunked
	// dispatch (New(WithFailover(), WithChunk(n), ...)).
	Capacity = engine.Capacity
	// Autoscaler is the elastic front: a pool of local shards that
	// grows and shrinks between bounds — recruiting standby peers under
	// burst — from the queue-depth/utilization signal, draining every
	// retired member before it closes. Build one with
	// New(WithAutoscale(min, max), ...).
	Autoscaler = engine.Autoscaler
	// ScaleEvent records one autoscaler pool transition, as carried by
	// BENCH reports and /v1/stats.
	ScaleEvent = engine.ScaleEvent
	// ScaleState is the autoscaler's point-in-time pool summary.
	ScaleState = engine.ScaleState
)

// Typed evaluation errors, for errors.Is across every backend — the
// remote client maps the serve layer's 503/504 back onto them, so the
// checks work identically whether the job ran in-process or on a peer.
var (
	// ErrClosed resolves jobs submitted to a closed evaluator.
	ErrClosed = engine.ErrClosed
	// ErrTimeout wraps job failures caused by a per-job timeout.
	ErrTimeout = engine.ErrTimeout
	// ErrUnavailable wraps backend-level failures — an unreachable
	// peer, a severed result stream — the class a failover Balancer
	// responds to by re-running the job elsewhere.
	ErrUnavailable = engine.ErrUnavailable
	// ErrInvalidOptions wraps New's rejection of incoherent option
	// combinations — failover tuning without WithFailover, autoscale
	// tuning without WithAutoscale, inverted bounds or thresholds. The
	// message names the offending options.
	ErrInvalidOptions = engine.ErrInvalidOptions
)

// NewEngine starts a local worker pool (0 workers selects GOMAXPROCS).
// Call Close on the returned engine when done. For anything beyond a
// plain local pool — shards, remote peers — use New.
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// SuiteJobs returns the §V-A benchmark suite as evaluation jobs ready
// for any Evaluator, each carrying the serializable spec remote
// backends ship to peers. Successful local results hold *Outcome;
// results from remote backends hold the peer's report row.
func SuiteJobs() []EngineJob {
	return bench.SuiteJobs(bench.Workloads, xlate.Options{})
}
