// Benchmark harness: one testing.B benchmark per evaluation artifact of
// the paper (Fig. 5, Tables II–V), plus ablation benches for the design
// choices DESIGN.md calls out. Each benchmark reports the reproduced
// figures as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's evaluation in one run.
package art9_test

import (
	"testing"

	art9 "repro"
	"repro/internal/bench"
	"repro/internal/gate"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/xlate"
)

// run is a helper caching one outcome per workload within a bench run.
var outcomes = map[string]*bench.Outcome{}

func outcome(b *testing.B, name string) *bench.Outcome {
	b.Helper()
	if o, ok := outcomes[name]; ok {
		return o
	}
	w, ok := bench.ByName(name)
	if !ok {
		b.Fatalf("unknown workload %s", name)
	}
	o, err := bench.Run(w, xlate.Options{})
	if err != nil {
		b.Fatal(err)
	}
	outcomes[name] = o
	return o
}

// BenchmarkFig5MemoryCells regenerates Fig. 5: instruction-memory cells of
// the four benchmarks on ART-9 (trits) vs RV32I and ARMv6-M (bits).
func BenchmarkFig5MemoryCells(b *testing.B) {
	for _, w := range bench.Workloads {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			var o *bench.Outcome
			for i := 0; i < b.N; i++ {
				var err error
				o, err = bench.Run(w, xlate.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(o.ARTTrits), "ART9-trits")
			b.ReportMetric(float64(o.RVBits), "RV32I-bits")
			b.ReportMetric(float64(o.ARMBits), "ARMv6M-bits")
			b.ReportMetric(100*(1-float64(o.ARTTrits)/float64(o.RVBits)), "reduction-%")
		})
	}
}

// BenchmarkTable2Dhrystone regenerates Table II: DMIPS/MHz of the three
// cores on the Dhrystone-class workload.
func BenchmarkTable2Dhrystone(b *testing.B) {
	w, _ := bench.ByName("dhrystone")
	var o *bench.Outcome
	for i := 0; i < b.N; i++ {
		var err error
		o, err = bench.Run(w, xlate.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	iters := float64(w.Iterations)
	b.ReportMetric(perf.DMIPSPerMHz(float64(o.ART9Cycles)/iters), "ART9-DMIPS/MHz")
	b.ReportMetric(perf.DMIPSPerMHz(float64(o.VexCycles)/iters), "Vex-DMIPS/MHz")
	b.ReportMetric(perf.DMIPSPerMHz(float64(o.PicoCycles)/iters), "Pico-DMIPS/MHz")
	b.ReportMetric(float64(o.ARTTrits), "ART9-trits")
}

// BenchmarkTable3Cycles regenerates Table III: processing cycles for the
// four test programs, ART-9 vs PicoRV32.
func BenchmarkTable3Cycles(b *testing.B) {
	for _, w := range bench.Workloads {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			var o *bench.Outcome
			for i := 0; i < b.N; i++ {
				var err error
				o, err = bench.Run(w, xlate.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(o.ART9Cycles), "ART9-cycles")
			b.ReportMetric(float64(o.PicoCycles), "Pico-cycles")
			b.ReportMetric(float64(o.PicoCycles)/float64(o.ART9Cycles), "speedup-x")
		})
	}
}

// BenchmarkTable4CNTFET regenerates Table IV: gates, power and DMIPS/W of
// the CNTFET implementation at fmax.
func BenchmarkTable4CNTFET(b *testing.B) {
	o := outcome(b, "dhrystone")
	cyclesPerIter := float64(o.ART9Cycles) / float64(o.Workload.Iterations)
	var impl perf.Implementation
	for i := 0; i < b.N; i++ {
		tech := gate.CNTFET32()
		an := gate.Analyze(gate.BuildART9(), tech)
		impl = perf.Estimate(an, tech, 0, cyclesPerIter, 0, 1.2, 0)
	}
	b.ReportMetric(float64(impl.Gates), "gates")
	b.ReportMetric(impl.PowerW*1e6, "power-uW")
	b.ReportMetric(impl.DMIPSPerW/1e6, "MDMIPS/W")
	b.ReportMetric(impl.FreqMHz, "fmax-MHz")
}

// BenchmarkTable5FPGA regenerates Table V: ALMs, registers, RAM bits,
// power and DMIPS/W of the binary-encoded FPGA prototype at 150 MHz.
func BenchmarkTable5FPGA(b *testing.B) {
	o := outcome(b, "dhrystone")
	cyclesPerIter := float64(o.ART9Cycles) / float64(o.Workload.Iterations)
	var impl perf.Implementation
	for i := 0; i < b.N; i++ {
		tech := gate.StratixVEmulation()
		an := gate.Analyze(gate.BuildART9(), tech)
		impl = perf.Estimate(an, tech, 150, cyclesPerIter, 2*256*9, 1.2, 2*256*18)
	}
	b.ReportMetric(float64(impl.ALMs), "ALMs")
	b.ReportMetric(float64(impl.Registers), "registers")
	b.ReportMetric(float64(impl.RAMBits), "RAM-bits")
	b.ReportMetric(impl.PowerW, "power-W")
	b.ReportMetric(impl.DMIPSPerW, "DMIPS/W")
}

// --- Ablation benches for the design choices DESIGN.md calls out. ---

// BenchmarkAblationPeephole measures the redundancy-checking phase's
// yield: translated size with and without it (Fig. 2's third phase).
func BenchmarkAblationPeephole(b *testing.B) {
	w, _ := bench.ByName("dhrystone")
	var with, without *bench.Outcome
	for i := 0; i < b.N; i++ {
		var err error
		with, err = bench.Run(w, xlate.Options{})
		if err != nil {
			b.Fatal(err)
		}
		without, err = bench.Run(w, xlate.Options{NoPeephole: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(with.ARTInsts), "insts-with")
	b.ReportMetric(float64(without.ARTInsts), "insts-without")
	b.ReportMetric(float64(with.Removed), "removed")
}

// BenchmarkAblationInlineMul compares the inline software multiply against
// the shared runtime routine on the multiply-bound GEMM.
func BenchmarkAblationInlineMul(b *testing.B) {
	w, _ := bench.ByName("gemm")
	var inline, runtime *bench.Outcome
	for i := 0; i < b.N; i++ {
		var err error
		inline, err = bench.Run(w, xlate.Options{})
		if err != nil {
			b.Fatal(err)
		}
		runtime, err = bench.Run(w, xlate.Options{NoInlineMul: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(inline.ART9Cycles), "cycles-inline")
	b.ReportMetric(float64(runtime.ART9Cycles), "cycles-runtime")
}

// BenchmarkAblationHWMultiplier evaluates the design decision the paper
// made in Table II (multiplier: ✗): the gate/cycle-time/power cost of
// bolting the ternary array multiplier of [10] onto the EX stage.
func BenchmarkAblationHWMultiplier(b *testing.B) {
	var base, ext *gate.Analysis
	for i := 0; i < b.N; i++ {
		tech := gate.CNTFET32()
		base = gate.Analyze(gate.BuildART9(), tech)
		ext = gate.Analyze(gate.BuildART9WithMultiplier(), tech)
	}
	tech := gate.CNTFET32()
	b.ReportMetric(float64(base.Gates), "gates-base")
	b.ReportMetric(float64(ext.Gates), "gates-withmul")
	b.ReportMetric(base.FmaxMHz, "fmax-base-MHz")
	b.ReportMetric(ext.FmaxMHz, "fmax-withmul-MHz")
	b.ReportMetric(ext.PowerW(tech, ext.FmaxMHz, 0, 0)*1e6, "power-withmul-uW")
}

// BenchmarkAblationForwarding quantifies the pipeline's hazard handling:
// the share of cycles lost to load-use stalls and branch squashes across
// the suite (the §IV-B design point: only these two stall sources exist).
func BenchmarkAblationForwarding(b *testing.B) {
	for _, w := range bench.Workloads {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			var o *bench.Outcome
			for i := 0; i < b.N; i++ {
				var err error
				o, err = bench.Run(w, xlate.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(o.ARTStallsLoad), "load-stalls")
			b.ReportMetric(float64(o.ARTStallsBranch), "squashes")
			b.ReportMetric(float64(o.ART9Cycles)/float64(o.ARTRetired), "CPI")
		})
	}
}

// BenchmarkSimulatorThroughput measures the raw simulator speed
// (instructions per second of host time) — the practical figure of merit
// of the cycle-accurate model itself.
func BenchmarkSimulatorThroughput(b *testing.B) {
	prog, err := art9.Assemble(`
		LDI T1, 0
		LDI T2, 1
		LDI T3, 121
	loop:	ADD T1, T2
		ADDI T2, 1
		MV T4, T2
		COMP T4, T3
		BNE T4, 1, loop
		HALT
	`)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("pipelined", func(b *testing.B) {
		var retired uint64
		for i := 0; i < b.N; i++ {
			pl := sim.NewPipeline(sim.Config{})
			if err := pl.S.Load(prog); err != nil {
				b.Fatal(err)
			}
			res, err := pl.Run()
			if err != nil {
				b.Fatal(err)
			}
			retired += res.Retired
		}
		b.ReportMetric(float64(retired)/b.Elapsed().Seconds(), "inst/s")
	})
	b.Run("functional", func(b *testing.B) {
		var retired uint64
		for i := 0; i < b.N; i++ {
			f := sim.NewFunctional(sim.Config{})
			if err := f.S.Load(prog); err != nil {
				b.Fatal(err)
			}
			res, err := f.Run()
			if err != nil {
				b.Fatal(err)
			}
			retired += res.Retired
		}
		b.ReportMetric(float64(retired)/b.Elapsed().Seconds(), "inst/s")
	})
}

// BenchmarkGateAnalysis measures the gate-level analyzer itself.
func BenchmarkGateAnalysis(b *testing.B) {
	var gates int
	for i := 0; i < b.N; i++ {
		an := gate.Analyze(gate.BuildART9(), gate.CNTFET32())
		gates = an.Gates
	}
	b.ReportMetric(float64(gates), "gates")
}
