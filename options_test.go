// Facade tests for New's option validation: every incoherent
// combination is rejected with an error wrapping the typed
// ErrInvalidOptions and naming the offending options, never silently
// ignored.
package art9_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	art9 "repro"
)

func TestNewRejectsInvalidOptionCombinations(t *testing.T) {
	tests := []struct {
		name string
		opts []art9.Option
		want string // substring of the diagnostic
	}{
		{name: "chunk without failover",
			opts: []art9.Option{art9.WithChunk(8)},
			want: "WithChunk"},
		{name: "max-retries without failover",
			opts: []art9.Option{art9.WithMaxRetries(3)},
			want: "WithMaxRetries"},
		{name: "health-interval without failover",
			opts: []art9.Option{art9.WithHealthInterval(time.Second)},
			want: "WithHealthInterval"},
		{name: "all failover orphans named together",
			opts: []art9.Option{art9.WithChunk(8), art9.WithMaxRetries(3), art9.WithHealthInterval(time.Second)},
			want: "WithChunk, WithMaxRetries, WithHealthInterval"},
		{name: "negative tuning still needs failover",
			opts: []art9.Option{art9.WithMaxRetries(-1), art9.WithHealthInterval(-1)},
			want: "WithFailover"},
		{name: "negative chunk",
			opts: []art9.Option{art9.WithFailover(), art9.WithShards(2), art9.WithChunk(-1)},
			want: "WithChunk must be >= 0"},
		{name: "cache peers without result cache",
			opts: []art9.Option{art9.WithCachePeers("http://h:1")},
			want: "WithCachePeers"},
		{name: "cache bound without result cache",
			opts: []art9.Option{art9.WithCacheMaxBytes(1 << 20)},
			want: "WithCacheMaxBytes"},
		{name: "negative cache bound",
			opts: []art9.Option{art9.WithResultCache(), art9.WithCacheMaxBytes(-1)},
			want: "WithCacheMaxBytes must be >= 0"},
		{name: "autoscale bounds inverted",
			opts: []art9.Option{art9.WithAutoscale(4, 2)},
			want: "bounds inverted"},
		{name: "negative autoscale bound",
			opts: []art9.Option{art9.WithAutoscale(-1, 2)},
			want: "WithAutoscale bounds must be >= 0"},
		{name: "standby peers without autoscale",
			opts: []art9.Option{art9.WithStandbyPeers("http://peer.invalid:9009")},
			want: "WithStandbyPeers"},
		{name: "thresholds without autoscale",
			opts: []art9.Option{art9.WithScaleThresholds(0.9, 0.1)},
			want: "WithScaleThresholds"},
		{name: "cooldown without autoscale",
			opts: []art9.Option{art9.WithScaleCooldown(time.Second)},
			want: "WithScaleCooldown"},
		{name: "interval without autoscale",
			opts: []art9.Option{art9.WithScaleInterval(time.Second)},
			want: "WithScaleInterval"},
		{name: "every scale orphan named together",
			opts: []art9.Option{art9.WithStandbyPeers("http://peer.invalid:9009"),
				art9.WithScaleThresholds(0.9, 0.1), art9.WithScaleCooldown(time.Second),
				art9.WithScaleInterval(time.Second)},
			want: "WithStandbyPeers, WithScaleThresholds, WithScaleCooldown, WithScaleInterval"},
		{name: "autoscale mixed with failover",
			opts: []art9.Option{art9.WithAutoscale(1, 4), art9.WithFailover()},
			want: "both dispatch fronts"},
		{name: "autoscale mixed with fixed shards",
			opts: []art9.Option{art9.WithAutoscale(1, 4), art9.WithShards(2)},
			want: "WithShards"},
		{name: "autoscale mixed with fixed peers",
			opts: []art9.Option{art9.WithAutoscale(1, 4), art9.WithPeers("http://peer.invalid:9009")},
			want: "WithStandbyPeers instead"},
		{name: "up threshold out of range",
			opts: []art9.Option{art9.WithAutoscale(1, 4), art9.WithScaleThresholds(1.5, 0.1)},
			want: "within [0,1]"},
		{name: "down threshold out of range",
			opts: []art9.Option{art9.WithAutoscale(1, 4), art9.WithScaleThresholds(0.8, -0.1)},
			want: "within [0,1]"},
		{name: "hysteresis gap inverted",
			opts: []art9.Option{art9.WithAutoscale(1, 4), art9.WithScaleThresholds(0.3, 0.6)},
			want: "hysteresis needs a gap"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ev, err := art9.New(tt.opts...)
			if err == nil {
				ev.Close()
				t.Fatalf("New accepted the combination, want an error containing %q", tt.want)
			}
			if !errors.Is(err, art9.ErrInvalidOptions) {
				t.Fatalf("err = %v, want wrapping art9.ErrInvalidOptions", err)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("err = %v, want containing %q", err, tt.want)
			}
		})
	}
}

// TestNewAcceptsCoherentCombinations pins the complement: the
// combinations the documentation advertises all build (and close)
// cleanly.
func TestNewAcceptsCoherentCombinations(t *testing.T) {
	tests := []struct {
		name string
		opts []art9.Option
	}{
		{name: "default local pool"},
		{name: "failover over local shards",
			opts: []art9.Option{art9.WithFailover(), art9.WithShards(2), art9.WithWorkers(1)}},
		{name: "tuned failover fleet",
			opts: []art9.Option{art9.WithFailover(), art9.WithShards(2), art9.WithWorkers(1),
				art9.WithChunk(4), art9.WithMaxRetries(1), art9.WithHealthInterval(-1)}},
		{name: "elastic pool",
			opts: []art9.Option{art9.WithAutoscale(1, 2), art9.WithWorkers(1),
				art9.WithScaleInterval(-1)}},
		{name: "tuned elastic pool",
			opts: []art9.Option{art9.WithAutoscale(1, 2), art9.WithWorkers(1),
				art9.WithScaleThresholds(0.9, 0.2), art9.WithScaleCooldown(-1),
				art9.WithScaleInterval(-1)}},
		{name: "result cache over local pool",
			opts: []art9.Option{art9.WithResultCache(), art9.WithWorkers(1)}},
		{name: "tuned result cache over failover fleet",
			opts: []art9.Option{art9.WithFailover(), art9.WithShards(2), art9.WithWorkers(1),
				art9.WithResultCache(), art9.WithCacheMaxBytes(1 << 20),
				art9.WithCachePeers("http://localhost:9")}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ev, err := art9.New(tt.opts...)
			if err != nil {
				t.Fatalf("New rejected a coherent combination: %v", err)
			}
			if err := ev.Close(); err != nil {
				t.Errorf("Close() = %v", err)
			}
		})
	}
}

// TestNewWithAutoscaleIsAutoscaler pins the topology selection: the
// autoscale options build the elastic front, which serves a batch like
// any other Evaluator and exposes its scale state through the facade
// aliases.
func TestNewWithAutoscaleIsAutoscaler(t *testing.T) {
	ev, err := art9.New(art9.WithAutoscale(1, 2), art9.WithWorkers(1), art9.WithScaleInterval(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Close()
	as, ok := ev.(*art9.Autoscaler)
	if !ok {
		t.Fatalf("New(WithAutoscale) built %T, want *Autoscaler", ev)
	}
	if as.Min() != 1 || as.Max() != 2 {
		t.Fatalf("bounds (%d, %d), want (1, 2)", as.Min(), as.Max())
	}
	got := runSuiteOn(t, ev)
	if len(got) != len(art9.Benchmarks()) {
		t.Fatalf("suite resolved %d jobs, want %d", len(got), len(art9.Benchmarks()))
	}
	var st art9.ScaleState = as.ScaleState()
	if st.ActiveShards < 1 {
		t.Errorf("scale state %+v, want at least the minimum shard active", st)
	}
	var _ []art9.ScaleEvent = as.Events()
}
