package remote_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"sort"
	"testing"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/gate"
	"repro/internal/remote"
	"repro/internal/serve"
	"repro/internal/xlate"
)

// suiteRows runs the full example-manifest suite on ev and renders each
// result as a sorted slice of marshalled report rows with the two
// run-volatile fields (elapsed, worker index) normalised away —
// everything that is a function of the evaluation itself stays.
func suiteRows(t *testing.T, ev engine.Evaluator, m *bench.Manifest, techs []*gate.Technology) []string {
	t.Helper()
	jobs, err := m.EngineJobs("", xlate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	results, err := ev.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]string, 0, len(results))
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("job %s: %v", r.ID, r.Err)
		}
		jr := bench.JobReportOf(r, techs)
		jr.ElapsedMS = 0
		jr.Worker = 0
		raw, err := json.Marshal(jr)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, string(raw))
	}
	sort.Strings(rows)
	return rows
}

// TestMixedLocalRemoteShardSetMatchesLocal is the acceptance pin of the
// Evaluator redesign: a ShardSet mixing one local Engine with one
// internal/remote client (backed by an in-process httptest art9-serve)
// must yield byte-identical sorted suite results to a purely local run.
func TestMixedLocalRemoteShardSetMatchesLocal(t *testing.T) {
	m := &bench.Manifest{
		Technologies: []string{"cntfet32", "stratixv"},
		Jobs: []bench.ManifestJob{
			{Name: "bubble", Workload: "bubble"},
			{Name: "gemm", Workload: "gemm"},
			{Name: "sobel", Workload: "sobel"},
			{Name: "dhrystone", Workload: "dhrystone"},
			{Name: "strsearch", Workload: "strsearch"},
			{Name: "inline", Source: "li a0, 21\nadd a0, a0, a0\nebreak", Iterations: 2},
		},
	}
	techs, err := m.ResolveTechnologies()
	if err != nil {
		t.Fatal(err)
	}

	// The peer: a real art9-serve over httptest.
	peerSrv, err := serve.New(serve.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	peerTS := httptest.NewServer(peerSrv.Handler())
	defer func() {
		peerTS.Close()
		peerSrv.Close()
	}()
	client, err := remote.New(peerTS.URL)
	if err != nil {
		t.Fatal(err)
	}

	mixed := engine.NewShardSetOf(engine.New(engine.Options{Workers: 2, PrivateCaches: true}), client)
	defer mixed.Close()
	local := engine.New(engine.Options{Workers: 2, PrivateCaches: true})
	defer local.Close()

	mixedRows := suiteRows(t, mixed, m, techs)
	localRows := suiteRows(t, local, m, techs)

	if len(mixedRows) != len(m.Jobs) {
		t.Fatalf("mixed run yielded %d rows, want %d", len(mixedRows), len(m.Jobs))
	}
	for i := range localRows {
		if !bytes.Equal([]byte(mixedRows[i]), []byte(localRows[i])) {
			t.Errorf("sorted row %d differs:\n mixed: %s\n local: %s", i, mixedRows[i], localRows[i])
		}
	}

	// The remote shard must actually have carried half the batch — the
	// equality above would also hold for a set that quietly ran
	// everything locally.
	if st := client.LocalStats(); st.Completed != uint64(len(m.Jobs))/2 {
		t.Errorf("remote client stats %+v, want %d jobs completed via the peer", st, len(m.Jobs)/2)
	}
}

// TestMixedShardSetStream checks the streaming path through the same
// mixed topology: every job resolves exactly once, remote rows pass
// through as *bench.JobReport values, local rows as *bench.Outcome.
func TestMixedShardSetStream(t *testing.T) {
	peerSrv, err := serve.New(serve.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	peerTS := httptest.NewServer(peerSrv.Handler())
	defer func() {
		peerTS.Close()
		peerSrv.Close()
	}()
	client, err := remote.New(peerTS.URL)
	if err != nil {
		t.Fatal(err)
	}
	mixed := engine.NewShardSetOf(engine.New(engine.Options{Workers: 1, PrivateCaches: true}), client)
	defer mixed.Close()

	m := &bench.Manifest{Jobs: []bench.ManifestJob{
		{Name: "bubble", Workload: "bubble"},
		{Name: "gemm", Workload: "gemm"},
		{Name: "sobel", Workload: "sobel"},
		{Name: "strsearch", Workload: "strsearch"},
	}}
	jobs, err := m.EngineJobs("", xlate.Options{})
	if err != nil {
		t.Fatal(err)
	}

	var outcomes, reports int
	seen := map[string]bool{}
	for r := range mixed.Stream(context.Background(), jobs) {
		if r.Err != nil {
			t.Fatalf("job %s: %v", r.ID, r.Err)
		}
		if seen[r.ID] {
			t.Fatalf("job %s delivered twice", r.ID)
		}
		seen[r.ID] = true
		switch r.Value.(type) {
		case *bench.Outcome:
			outcomes++
		case *bench.JobReport:
			reports++
		default:
			t.Fatalf("job %s: value %T, want *Outcome or *JobReport", r.ID, r.Value)
		}
	}
	if outcomes != 2 || reports != 2 {
		t.Errorf("stream saw %d local outcomes and %d remote reports, want 2 and 2", outcomes, reports)
	}
}

// TestBalancerFleetSurvivesDeadPeer is the fleet-level acceptance pin
// of the failover scheduler: a Balancer fronting one live remote peer
// (a real httptest art9-serve), one peer that is already dead, and one
// local engine must complete the whole manifest with sorted rows
// byte-identical to a purely local run — the dead peer's jobs re-run on
// the survivors — and must record the failovers it performed.
func TestBalancerFleetSurvivesDeadPeer(t *testing.T) {
	m := &bench.Manifest{
		Technologies: []string{"cntfet32"},
		Jobs: []bench.ManifestJob{
			{Name: "bubble", Workload: "bubble"},
			{Name: "gemm", Workload: "gemm"},
			{Name: "sobel", Workload: "sobel"},
			{Name: "dhrystone", Workload: "dhrystone"},
			{Name: "strsearch", Workload: "strsearch"},
			{Name: "inline", Source: "li a0, 21\nadd a0, a0, a0\nebreak", Iterations: 2},
		},
	}
	techs, err := m.ResolveTechnologies()
	if err != nil {
		t.Fatal(err)
	}

	peerSrv, err := serve.New(serve.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	peerTS := httptest.NewServer(peerSrv.Handler())
	defer func() {
		peerTS.Close()
		peerSrv.Close()
	}()
	live, err := remote.New(peerTS.URL)
	if err != nil {
		t.Fatal(err)
	}

	// A peer that died before the batch: grab a URL, then close it.
	deadTS := httptest.NewServer(nil)
	deadURL := deadTS.URL
	deadTS.Close()
	dead, err := remote.New(deadURL, remote.WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}

	fleet := engine.NewBalancer(engine.BalancerOptions{HealthInterval: -1},
		live, dead, engine.New(engine.Options{Workers: 2, PrivateCaches: true}))
	defer fleet.Close()
	local := engine.New(engine.Options{Workers: 2, PrivateCaches: true})
	defer local.Close()

	fleetRows := suiteRows(t, fleet, m, techs)
	localRows := suiteRows(t, local, m, techs)

	if len(fleetRows) != len(m.Jobs) {
		t.Fatalf("fleet run yielded %d rows, want %d", len(fleetRows), len(m.Jobs))
	}
	for i := range localRows {
		if !bytes.Equal([]byte(fleetRows[i]), []byte(localRows[i])) {
			t.Errorf("sorted row %d differs:\n fleet: %s\n local: %s", i, fleetRows[i], localRows[i])
		}
	}

	var deadHealth engine.BackendHealth
	for _, h := range fleet.Health() {
		if h.Name == deadURL {
			deadHealth = h
		}
	}
	if deadHealth.Name == "" {
		t.Fatal("dead peer missing from the balancer's health scorecards")
	}
	if deadHealth.Failovers == 0 {
		t.Error("no failovers recorded for the dead peer, though the suite completed")
	}
	if deadHealth.Healthy {
		t.Error("dead peer still marked healthy after failing its jobs")
	}
	if fleet.Retries() == 0 {
		t.Error("balancer recorded no retries")
	}
}
