package remote

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/rescache"
	"repro/internal/xlate"
)

// cachePeerStub is a minimal /v1/cache peer: an LRU behind the wire
// protocol, counting lookups and fills.
type cachePeerStub struct {
	store   *rescache.LRU
	lookups atomic.Int64
	fills   atomic.Int64
}

func newCachePeerStub() *cachePeerStub {
	return &cachePeerStub{store: rescache.NewLRU(0, 0)}
}

func (s *cachePeerStub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/cache/lookup":
		s.lookups.Add(1)
		var req cacheLookupRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		enc := json.NewEncoder(w)
		for _, k := range req.Keys {
			row := cacheRow{Key: k}
			if v, ok := s.store.Get(r.Context(), k); ok {
				row.Found, row.Value = true, v
			}
			enc.Encode(row)
		}
	case "/v1/cache/fill":
		s.fills.Add(1)
		var req cacheFillRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for _, e := range req.Entries {
			s.store.Put(r.Context(), e.Key, e.Value)
		}
		json.NewEncoder(w).Encode(cacheFillReply{Stored: len(req.Entries)})
	default:
		http.NotFound(w, r)
	}
}

func TestNewCacheClientRejectsBadURLs(t *testing.T) {
	for _, bad := range []string{"", "host:9009", "ftp://host", "http://"} {
		if _, err := NewCacheClient(bad); err == nil {
			t.Errorf("NewCacheClient(%q) accepted a bad URL", bad)
		}
	}
	c, err := NewCacheClient("http://host:9009/")
	if err != nil {
		t.Fatal(err)
	}
	if c.Peer() != "http://host:9009" {
		t.Errorf("Peer() = %q, want normalized base", c.Peer())
	}
}

func TestCacheClientRoundTrip(t *testing.T) {
	peer := newCachePeerStub()
	srv := httptest.NewServer(peer)
	defer srv.Close()
	c, err := NewCacheClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if _, ok := c.Get(ctx, "k1"); ok {
		t.Fatal("empty peer answered a lookup")
	}
	c.Put(ctx, "k1", []byte(`{"ok":true,"worker":-1}`))
	v, ok := c.Get(ctx, "k1")
	if !ok {
		t.Fatal("filled key missed")
	}
	var row struct {
		OK bool `json:"ok"`
	}
	if err := json.Unmarshal(v, &row); err != nil || !row.OK {
		t.Fatalf("round-tripped value %q: %v", v, err)
	}
	st := c.Stats()
	if st.PeerHits != 1 || st.PeerMisses != 1 || st.PeerErrors != 0 {
		t.Fatalf("stats %+v, want 1 peer hit / 1 miss / 0 errors", st)
	}
}

func TestCacheClientDegradesOnDeadAndOldPeers(t *testing.T) {
	// A dead peer: every op degrades to a miss and a PeerErrors tick.
	srv := httptest.NewServer(http.NotFoundHandler())
	dead, err := NewCacheClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	ctx := context.Background()
	if _, ok := dead.Get(ctx, "k"); ok {
		t.Fatal("dead peer answered a lookup")
	}
	dead.Put(ctx, "k", []byte(`{}`))
	if st := dead.Stats(); st.PeerErrors != 2 {
		t.Fatalf("stats %+v, want 2 peer errors", st)
	}

	// A peer predating the cache protocol answers 404: a standing
	// miss, not an error — mixed-version fleets stay healthy.
	old := httptest.NewServer(http.NotFoundHandler())
	defer old.Close()
	oc, err := NewCacheClient(old.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := oc.Get(ctx, "k"); ok {
		t.Fatal("pre-cache peer answered a lookup")
	}
	oc.Put(ctx, "k", []byte(`{}`))
	if st := oc.Stats(); st.PeerErrors != 0 || st.PeerMisses != 1 {
		t.Fatalf("stats %+v, want a clean miss against a pre-cache peer", st)
	}

	// Garbage in the reply stream degrades to a miss, not a panic.
	garbled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("<html>not ndjson</html>\n"))
	}))
	defer garbled.Close()
	gc, err := NewCacheClient(garbled.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := gc.Get(ctx, "k"); ok {
		t.Fatal("garbled reply answered a lookup")
	}
	if st := gc.Stats(); st.PeerErrors != 1 {
		t.Fatalf("stats %+v, want the garbled reply counted as a peer error", st)
	}
}

func TestNewResultCacheTier(t *testing.T) {
	peer := newCachePeerStub()
	srv := httptest.NewServer(peer)
	defer srv.Close()

	if _, err := NewResultCache(0, []string{"not a url"}); err == nil {
		t.Fatal("bad cache peer URL accepted")
	}

	tier, err := NewResultCache(0, []string{srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// A value seeded on the peer is found remotely and filled locally:
	// the second lookup never leaves the process.
	peer.store.Put(ctx, "warm", []byte(`{"ok":true}`))
	if _, ok := tier.Get(ctx, "warm"); !ok {
		t.Fatal("peer-seeded key missed")
	}
	before := peer.lookups.Load()
	if _, ok := tier.Get(ctx, "warm"); !ok {
		t.Fatal("locally filled key missed")
	}
	if peer.lookups.Load() != before {
		t.Fatal("second lookup went back to the peer")
	}

	// A local Put fans out write-behind so the peer can answer the rest
	// of the fleet; Close drains the queue, so the fill has landed once
	// it returns.
	tier.Put(ctx, "fresh", []byte(`{"ok":true}`))
	if err := tier.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, ok := peer.store.Get(ctx, "fresh"); !ok {
		t.Fatal("Put did not reach the peer after drain")
	}
	st := tier.Stats()
	if st.Hits != 2 || st.PeerHits != 1 || st.PeerErrors != 0 {
		t.Fatalf("stats %+v, want 2 hits / 1 peer hit / 0 errors", st)
	}
}

func TestValidateCacheTopology(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  BackendConfig
		want string // substring of the error; "" means valid
	}{
		{"peers without cache", BackendConfig{CachePeers: []string{"http://h:1"}}, "-cache-peers"},
		{"max-bytes without cache", BackendConfig{CacheMaxBytes: 1 << 20}, "-cache-max-bytes"},
		{"negative max-bytes", BackendConfig{Cache: true, CacheMaxBytes: -1}, "-cache-max-bytes"},
		{"cache alone", BackendConfig{Cache: true}, ""},
		{"cache with peers and bound", BackendConfig{
			Cache: true, CachePeers: []string{"http://h:1"}, CacheMaxBytes: 1 << 20,
		}, ""},
		{"cache with failover", BackendConfig{Cache: true, Failover: true, Shards: 2}, ""},
		{"cache with autoscale", BackendConfig{Cache: true, AutoscaleMin: 1, AutoscaleMax: 2}, ""},
	} {
		_, err := ValidateFleetFlags(tc.cfg)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %s", tc.name, err, tc.want)
		}
		if !errors.Is(err, engine.ErrInvalidOptions) {
			t.Errorf("%s: error %v does not wrap ErrInvalidOptions", tc.name, err)
		}
	}
}

func TestBackendCacheShortCircuitsEveryTopology(t *testing.T) {
	jobs, m := cacheManifestJobs(t)
	for _, tc := range []struct {
		name string
		cfg  BackendConfig
	}{
		{"plain engine", BackendConfig{Cache: true}},
		{"shard set", BackendConfig{Cache: true, Shards: 2}},
		{"failover front", BackendConfig{Cache: true, Failover: true, Shards: 2}},
		{"chunked failover", BackendConfig{Cache: true, Failover: true, Shards: 2, Chunk: 2}},
		{"autoscale front", BackendConfig{Cache: true, AutoscaleMin: 1, AutoscaleMax: 2}},
	} {
		cfg := tc.cfg
		cfg.Engine.Workers = 2
		ev, err := NewBackendWith(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		adapter, ok := engine.ResultCacheOf(ev).(*bench.ResultCache)
		if !ok {
			t.Fatalf("%s: no ResultCache reachable from the topology", tc.name)
		}
		ctx := context.Background()
		if _, err := ev.Run(ctx, jobs); err != nil {
			t.Fatalf("%s: cold run: %v", tc.name, err)
		}
		warm, err := ev.Run(ctx, jobs)
		if err != nil {
			t.Fatalf("%s: warm run: %v", tc.name, err)
		}
		for _, r := range warm {
			if r.Err != nil {
				t.Fatalf("%s: warm job %s failed: %v", tc.name, r.ID, r.Err)
			}
			if r.Worker != -1 {
				t.Fatalf("%s: warm job %s ran on worker %d, want cache hit", tc.name, r.ID, r.Worker)
			}
		}
		st := adapter.Stats()
		if st.Hits != uint64(len(jobs)) || st.Puts != uint64(len(jobs)) {
			t.Fatalf("%s: stats %+v, want %d hits and %d puts", tc.name, st, len(jobs), len(jobs))
		}
		ev.Close()
		_ = m
	}
}

// cacheManifestJobs builds a small spec-carrying batch — cache keys
// require real bench specs, not bare Fns.
func cacheManifestJobs(t *testing.T) ([]engine.Job, *bench.Manifest) {
	t.Helper()
	m, err := bench.ParseManifest([]byte(`{
		"technologies": ["cntfet32"],
		"jobs": [
			{"name": "bubble", "workload": "bubble"},
			{"name": "gemm", "workload": "gemm"}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := m.EngineJobs("", xlate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return jobs, m
}
