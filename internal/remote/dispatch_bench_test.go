package remote_test

// BenchmarkRemoteDispatch quantifies the wire cost the chunked path
// amortizes: per-job dispatch (chunk=0) issues one /v1/eval request per
// job, chunked dispatch one acknowledged /v1/suite stream per chunk.
// The peer is a cheap counting stub so the numbers isolate dispatch
// overhead — HTTP round trips, request encoding, row scanning — from
// evaluation time. Run with -benchmem; reqs/op is reported per run so
// the CI benchmark smoke tracks the wire trajectory.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
	"repro/internal/remote"
)

func BenchmarkRemoteDispatch(b *testing.B) {
	for _, size := range []int{10, 100} {
		for _, chunk := range []int{0, 8, 32} {
			mode := fmt.Sprintf("chunk=%d", chunk)
			if chunk == 0 {
				mode = "per-job"
			}
			b.Run(fmt.Sprintf("suite=%d/%s", size, mode), func(b *testing.B) {
				var requests atomic.Int64
				ts := httptest.NewServer(countingPeer(&requests))
				defer ts.Close()
				c, err := remote.New(ts.URL)
				if err != nil {
					b.Fatal(err)
				}
				bal := engine.NewBalancer(engine.BalancerOptions{
					HealthInterval: -1, Width: 64, Chunk: chunk,
				}, c)
				defer bal.Close()
				jobs := chunkSuite(size)

				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rs, err := bal.Run(context.Background(), jobs)
					if err != nil {
						b.Fatal(err)
					}
					for _, r := range rs {
						if r.Err != nil {
							b.Fatalf("job %s failed: %v", r.ID, r.Err)
						}
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(requests.Load())/float64(b.N), "reqs/op")
			})
		}
	}
}
