package remote_test

// Failure-path tests of the chunked dispatch client: DispatchChunk must
// acknowledge exactly the jobs whose rows arrived, leave severed-chunk
// jobs entirely unresolved for the caller to re-dispatch, and resolve
// peer-side shortfalls with retryable errors. The happy path across a
// real serve instance is covered by the scenariotest matrix
// (remote-chunked topology); these tests script the wire directly.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/serve"
)

// collectAcks runs DispatchChunk and gathers the acknowledged results
// by chunk index.
func collectAcks(ctx context.Context, t *testing.T, c engine.ChunkDispatcher, jobs []engine.Job) (map[int]engine.Result, error) {
	t.Helper()
	acked := map[int]engine.Result{}
	err := c.DispatchChunk(ctx, jobs, func(i int, r engine.Result) {
		if _, dup := acked[i]; dup {
			t.Errorf("job %d acknowledged twice", i)
		}
		acked[i] = r
	})
	return acked, err
}

// TestDispatchChunkAgainstServe drives the full wire round trip: a
// chunk against a real art9-serve instance resolves every job through
// the acknowledged stream and returns nil.
func TestDispatchChunkAgainstServe(t *testing.T) {
	s, err := serve.New(serve.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	c := mustClient(t, ts.URL)

	jobs := []engine.Job{specJob("a"), specJob("b"), specJob("c")}
	acked, err := collectAcks(context.Background(), t, c, jobs)
	if err != nil {
		t.Fatalf("DispatchChunk against a healthy peer: %v", err)
	}
	if len(acked) != 3 {
		t.Fatalf("acknowledged %d of 3 jobs", len(acked))
	}
	for i, r := range acked {
		if r.Err != nil {
			t.Errorf("job %d failed: %v", i, r.Err)
			continue
		}
		if jr, ok := r.Value.(*bench.JobReport); !ok || !jr.OK || jr.Metrics == nil {
			t.Errorf("job %d value %+v, want the peer's report row with metrics", i, r.Value)
		}
	}
}

// TestDispatchChunkSeveredStream pins the resume contract: the peer
// acknowledges the chunk, flushes one row, then dies before the end
// ack. Exactly that row's job is acknowledged; the rest stay unresolved
// and the returned error is retryable, so a balancer re-chunks only the
// dropped jobs.
func TestDispatchChunkSeveredStream(t *testing.T) {
	ts := httptest.NewServer(ndjsonHandler(
		[]string{`{"ack":"start","jobs":3}`, okRow("a")},
		func(http.ResponseWriter, *http.Request) { panic(http.ErrAbortHandler) }))
	defer ts.Close()
	c := mustClient(t, ts.URL)

	jobs := []engine.Job{specJob("a"), specJob("b"), specJob("c")}
	acked, err := collectAcks(context.Background(), t, c, jobs)
	if err == nil {
		t.Fatal("severed chunk stream reported success")
	}
	if !errors.Is(err, engine.ErrUnavailable) {
		t.Errorf("severed-chunk error %v, want ErrUnavailable (retryable)", err)
	}
	if len(acked) != 1 {
		t.Fatalf("acknowledged %d jobs, want only the flushed row", len(acked))
	}
	r, ok := acked[0]
	if !ok || r.Err != nil {
		t.Errorf("job a = %+v, want the flushed row resolved ok", r)
	}
	st := c.LocalStats()
	if st.Submitted != 3 || st.Completed != 1 || st.Failed != 2 {
		t.Errorf("local stats %+v, want 3 submitted / 1 completed / 2 failed", st)
	}
}

// TestDispatchChunkMissingEndAck pins severance detection when the body
// simply ends: without the peer's end ack, unacknowledged jobs must NOT
// be resolved — even though the stream closed without a transport
// error — because a proxy or peer crash can close a body cleanly.
func TestDispatchChunkMissingEndAck(t *testing.T) {
	ts := httptest.NewServer(ndjsonHandler(
		[]string{`{"ack":"start","jobs":2}`, okRow("a")}, nil))
	defer ts.Close()
	c := mustClient(t, ts.URL)

	jobs := []engine.Job{specJob("a"), specJob("b")}
	acked, err := collectAcks(context.Background(), t, c, jobs)
	if err == nil || !errors.Is(err, engine.ErrUnavailable) {
		t.Fatalf("end-ack-less stream error %v, want ErrUnavailable", err)
	}
	if len(acked) != 1 {
		t.Errorf("acknowledged %d jobs, want 1", len(acked))
	}
}

// TestDispatchChunkPeerEndsShort pins the peer-fault path: the peer
// signals a clean end but skipped a row. The skipped job is
// acknowledged with a retryable error (the peer is at fault, the job
// deserves another backend) and the chunk itself reports success.
func TestDispatchChunkPeerEndsShort(t *testing.T) {
	ts := httptest.NewServer(ndjsonHandler(
		[]string{`{"ack":"start","jobs":2}`, okRow("a"), `{"ack":"end","rows":1}`}, nil))
	defer ts.Close()
	c := mustClient(t, ts.URL)

	jobs := []engine.Job{specJob("a"), specJob("b")}
	acked, err := collectAcks(context.Background(), t, c, jobs)
	if err != nil {
		t.Fatalf("clean-ended chunk returned %v", err)
	}
	if len(acked) != 2 {
		t.Fatalf("acknowledged %d jobs, want both", len(acked))
	}
	if acked[0].Err != nil {
		t.Errorf("job a failed: %v", acked[0].Err)
	}
	if err := acked[1].Err; err == nil || !engine.Retryable(err) {
		t.Errorf("skipped job error %v, want a retryable backend-level failure", err)
	}
}

// TestDispatchChunkNotRemotable: a spec-less job is acknowledged inline
// with the job-level ErrNotRemotable while the remotable rest of the
// chunk proceeds.
func TestDispatchChunkNotRemotable(t *testing.T) {
	ts := httptest.NewServer(ndjsonHandler(
		[]string{`{"ack":"start","jobs":1}`, okRow("a"), `{"ack":"end","rows":1}`}, nil))
	defer ts.Close()
	c := mustClient(t, ts.URL)

	jobs := []engine.Job{specJob("a"),
		{ID: "closure", Fn: func(context.Context) (any, error) { return 1, nil }}}
	acked, err := collectAcks(context.Background(), t, c, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(acked) != 2 {
		t.Fatalf("acknowledged %d jobs, want both", len(acked))
	}
	if err := acked[1].Err; err == nil || engine.Retryable(err) {
		t.Errorf("closure job error %v, want a non-retryable not-remotable failure", err)
	}
}

// TestDispatchChunkClosedClient: a closed client refuses the chunk with
// ErrClosed and acknowledges nothing.
func TestDispatchChunkClosedClient(t *testing.T) {
	c := mustClient(t, "http://127.0.0.1:9")
	c.Close()
	acked, err := collectAcks(context.Background(), t, c, []engine.Job{specJob("a")})
	if !errors.Is(err, engine.ErrClosed) {
		t.Errorf("closed client chunk error %v, want ErrClosed", err)
	}
	if len(acked) != 0 {
		t.Errorf("closed client acknowledged %d jobs", len(acked))
	}
}

// TestCapacityScrape pins the capacity query: a real serve peer answers
// /v1/capacity with its pool shape, and a peer without the endpoint
// (404) degrades to deriving the snapshot from /v1/stats.
func TestCapacityScrape(t *testing.T) {
	t.Run("fast path", func(t *testing.T) {
		s, err := serve.New(serve.Config{Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			ts.Close()
			s.Close()
		})
		c := mustClient(t, ts.URL)
		snap, err := c.Capacity(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if snap.Workers != 3 || snap.Free != 3 {
			t.Errorf("capacity %+v, want 3 idle workers", snap)
		}
	})

	t.Run("stats fallback", func(t *testing.T) {
		mux := http.NewServeMux()
		mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
			json.NewEncoder(w).Encode(map[string]any{
				"engine": bench.EngineReport{Workers: 5, Submitted: 7, Completed: 4, Failed: 1},
			})
		})
		ts := httptest.NewServer(mux) // /v1/capacity 404s
		defer ts.Close()
		c := mustClient(t, ts.URL)
		snap, err := c.Capacity(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		// 7 submitted - 5 resolved = 2 busy of 5 workers.
		if snap.Workers != 5 || snap.Busy != 2 || snap.Free != 3 {
			t.Errorf("fallback capacity %+v, want workers=5 busy=2 free=3", snap)
		}
	})

	t.Run("dead peer", func(t *testing.T) {
		c := mustClient(t, "http://127.0.0.1:9")
		if _, err := c.Capacity(context.Background()); err == nil {
			t.Error("capacity scrape of a dead peer reported success")
		}
	})
}

// countingPeer is a stub fleet leaf that counts requests and answers
// /v1/eval and /v1/suite (both stream variants) with cheap ok rows —
// the wire-overhead microscope for the dispatch-mode comparison.
func countingPeer(requests *atomic.Int64) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/eval", func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		var req struct {
			Name string `json:"name"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		json.NewEncoder(w).Encode(bench.JobReport{Name: req.Name, OK: true})
	})
	mux.HandleFunc("/v1/suite", func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		var m struct {
			Jobs []struct {
				Name string `json:"name"`
			} `json:"jobs"`
		}
		json.NewDecoder(r.Body).Decode(&m)
		ack := r.URL.Query().Get("ack") == "1"
		w.Header().Set("Content-Type", "application/x-ndjson")
		if ack {
			fmt.Fprintf(w, "{\"ack\":\"start\",\"jobs\":%d}\n", len(m.Jobs))
		}
		enc := json.NewEncoder(w)
		for _, j := range m.Jobs {
			enc.Encode(bench.JobReport{Name: j.Name, OK: true})
		}
		if ack {
			fmt.Fprintf(w, "{\"ack\":\"end\",\"rows\":%d}\n", len(m.Jobs))
		}
	})
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	return mux
}

// chunkSuite builds n remotable jobs for the dispatch-mode comparison.
func chunkSuite(n int) []engine.Job {
	jobs := make([]engine.Job, n)
	for i := range jobs {
		jobs[i] = specJob(fmt.Sprintf("job-%03d", i))
	}
	return jobs
}

// TestChunkedDispatchFewerRequests is the wire-amortization acceptance
// pin: for a 100-job suite through a failover Balancer, chunked
// dispatch must issue measurably fewer HTTP requests than per-job
// dispatch — the whole point of the chunk path.
func TestChunkedDispatchFewerRequests(t *testing.T) {
	const n = 100
	run := func(t *testing.T, chunk int) int64 {
		t.Helper()
		var requests atomic.Int64
		ts := httptest.NewServer(countingPeer(&requests))
		defer ts.Close()
		c := mustClient(t, ts.URL)
		b := engine.NewBalancer(engine.BalancerOptions{
			HealthInterval: -1, Width: 64, Chunk: chunk,
		}, c)
		defer b.Close()
		rs, err := b.Run(context.Background(), chunkSuite(n))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs {
			if r.Err != nil {
				t.Fatalf("job %s failed: %v", r.ID, r.Err)
			}
		}
		return requests.Load()
	}

	perJob := run(t, 0)
	chunked := run(t, 32)
	if perJob != n {
		t.Errorf("per-job dispatch issued %d requests for %d jobs, want one each", perJob, n)
	}
	// 100 jobs at chunk 32 need ceil(100/32) = 4 requests when chunks
	// fill; leave slack for capacity-driven splits but demand at least a
	// 5× reduction.
	if chunked*5 > perJob {
		t.Errorf("chunked dispatch issued %d requests vs %d per-job — no amortization", chunked, perJob)
	}
	t.Logf("per-job: %d requests, chunked(32): %d requests", perJob, chunked)
}
