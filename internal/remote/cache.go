package remote

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/rescache"
)

// The /v1/cache wire protocol between serve instances:
//
//	POST /v1/cache/lookup  {"keys":["<hex>", ...], "epoch":E}
//	  -> NDJSON rows {"key":"<hex>","found":true,"value":{...},"epoch":E}
//	POST /v1/cache/fill    {"entries":[{"key":"<hex>","value":{...}}, ...], "epoch":E}
//	  -> {"stored":N,"rejected":M,"epoch":E}
//
// Both sides cap a request at maxCacheKeysPerRequest keys/entries and a
// value at maxRow bytes; a peer answers lookups from its LOCAL store
// only, so two peers pointed at each other cannot loop a miss.
//
// Every exchange carries the sender's cache epoch and every reply row
// the server's. A disagreement — including against a peer predating
// the field, whose epoch reads as 0 — is a standing miss on lookup and
// a rejected entry on fill, never an error, so a mixed-epoch (or
// mixed-version) fleet degrades to computing instead of replaying
// another generation's rows.
const maxCacheKeysPerRequest = 256

// cacheOpTimeout bounds one cache round-trip. The cache is an
// accelerator on the dispatch path: a slow peer must degrade to a miss
// long before it costs what the evaluation it was saving would.
const cacheOpTimeout = 2 * time.Second

// cacheLookupRequest is the body of POST /v1/cache/lookup.
type cacheLookupRequest struct {
	Keys  []string `json:"keys"`
	Epoch uint64   `json:"epoch,omitempty"`
}

// cacheRow is one NDJSON reply row of /v1/cache/lookup. Value is kept
// raw: the cache stores opaque bytes and only internal/bench knows the
// row codec. Epoch is the answering server's generation; a found row
// from another epoch is discarded client-side.
type cacheRow struct {
	Key   string          `json:"key"`
	Found bool            `json:"found"`
	Value json.RawMessage `json:"value,omitempty"`
	Epoch uint64          `json:"epoch,omitempty"`
}

// cacheFillEntry is one entry of POST /v1/cache/fill.
type cacheFillEntry struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// cacheFillRequest is the body of POST /v1/cache/fill.
type cacheFillRequest struct {
	Entries []cacheFillEntry `json:"entries"`
	Epoch   uint64           `json:"epoch,omitempty"`
}

// cacheFillReply acknowledges a fill: entries stored, entries refused
// over an epoch disagreement, and the server's own epoch.
type cacheFillReply struct {
	Stored   int    `json:"stored"`
	Rejected int    `json:"rejected,omitempty"`
	Epoch    uint64 `json:"epoch,omitempty"`
}

// scanCacheRows consumes the NDJSON reply of /v1/cache/lookup, invoking
// fn per row until the stream ends or fn returns false. Blank lines are
// skipped; a line that is not a JSON cache row stops the scan with an
// error, because a mis-parsed row could replay the wrong value under a
// caller's key.
func scanCacheRows(r io.Reader, fn func(cacheRow) bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxRow)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var row cacheRow
		if err := json.Unmarshal(line, &row); err != nil {
			return fmt.Errorf("malformed NDJSON cache row %.80q: %w", line, err)
		}
		if !fn(row) {
			return nil
		}
	}
	return sc.Err()
}

// CacheClient is the remote tier of the result cache: a rescache.Cache
// whose store is another art9-serve instance's /v1/cache endpoints.
// Every failure — dial, status, malformed row — degrades to a miss and
// a PeerErrors tick, never an error: a dead cache peer means compute,
// not failure.
type CacheClient struct {
	base    string
	hc      *http.Client
	timeout time.Duration
	epoch   uint64

	peerHits     atomic.Uint64
	peerMisses   atomic.Uint64
	peerErrors   atomic.Uint64
	epochRejects atomic.Uint64
}

var (
	_ rescache.Cache       = (*CacheClient)(nil)
	_ rescache.BatchFiller = (*CacheClient)(nil)
)

// NewCacheClient builds a cache client for one art9-serve base URL at
// epoch 0, validated eagerly like New so a misconfigured fleet fails
// at construction, not at the first lookup.
func NewCacheClient(baseURL string) (*CacheClient, error) {
	return NewCacheClientWith(baseURL, 0)
}

// NewCacheClientWith builds a cache client pinned to one cache epoch:
// every exchange is stamped with it and every reply row from a
// different epoch is discarded as a standing miss.
func NewCacheClientWith(baseURL string, epoch uint64) (*CacheClient, error) {
	u, err := url.Parse(strings.TrimSpace(baseURL))
	if err != nil {
		return nil, fmt.Errorf("remote: cache peer url %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("remote: cache peer url %q: scheme must be http or https", baseURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("remote: cache peer url %q: missing host", baseURL)
	}
	return &CacheClient{
		base:    strings.TrimRight(u.String(), "/"),
		hc:      &http.Client{},
		timeout: cacheOpTimeout,
		epoch:   epoch,
	}, nil
}

// Peer returns the normalized base URL this cache client queries.
func (c *CacheClient) Peer() string { return c.base }

// Get looks key up on the peer. Any transport or protocol failure
// degrades to a miss.
func (c *CacheClient) Get(ctx context.Context, key string) ([]byte, bool) {
	body, err := json.Marshal(cacheLookupRequest{Keys: []string{key}, Epoch: c.epoch})
	if err != nil {
		c.peerErrors.Add(1)
		return nil, false
	}
	resp, err := c.post(ctx, "/v1/cache/lookup", body)
	if err != nil {
		c.peerErrors.Add(1)
		return nil, false
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxRow))
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusNotFound {
		// A peer predating the cache protocol: a standing miss.
		c.peerMisses.Add(1)
		return nil, false
	}
	if resp.StatusCode != http.StatusOK {
		c.peerErrors.Add(1)
		return nil, false
	}
	var val []byte
	found, rejected := false, false
	err = scanCacheRows(io.LimitReader(resp.Body, maxRow+1), func(r cacheRow) bool {
		if r.Key == key && r.Found && len(r.Value) > 0 {
			// A found row from another generation — including a
			// pre-epoch peer, whose rows read as epoch 0 — is a
			// standing miss: never replay across epochs.
			if r.Epoch != c.epoch {
				rejected = true
				return false
			}
			val = append([]byte(nil), r.Value...)
			found = true
			return false
		}
		return true
	})
	if err != nil {
		c.peerErrors.Add(1)
		return nil, false
	}
	if rejected {
		c.epochRejects.Add(1)
		c.peerMisses.Add(1)
		return nil, false
	}
	if !found {
		c.peerMisses.Add(1)
		return nil, false
	}
	c.peerHits.Add(1)
	return val, true
}

// Put fills key on the peer, best-effort. Values that are not valid
// JSON are dropped (the wire carries JSON rows), as is anything over
// the per-row bound.
func (c *CacheClient) Put(ctx context.Context, key string, val []byte) {
	c.PutBatch(ctx, []rescache.Entry{{Key: key, Val: val}})
}

// PutBatch fills many entries in as few wire rounds as possible — one
// POST per maxCacheKeysPerRequest chunk — which is how the write-behind
// worker drains its queue. Entries the wire cannot carry (empty,
// oversized, or non-JSON values) are skipped; a fill the server
// rejects over an epoch disagreement is counted, not retried.
func (c *CacheClient) PutBatch(ctx context.Context, entries []rescache.Entry) {
	wire := make([]cacheFillEntry, 0, len(entries))
	for _, e := range entries {
		if len(e.Val) == 0 || len(e.Val) > maxRow || !json.Valid(e.Val) {
			continue
		}
		wire = append(wire, cacheFillEntry{Key: e.Key, Value: json.RawMessage(e.Val)})
	}
	for len(wire) > 0 {
		chunk := wire
		if len(chunk) > maxCacheKeysPerRequest {
			chunk = chunk[:maxCacheKeysPerRequest]
		}
		wire = wire[len(chunk):]
		c.fill(ctx, chunk)
	}
}

// fill issues one /v1/cache/fill round for a bounded chunk.
func (c *CacheClient) fill(ctx context.Context, chunk []cacheFillEntry) {
	body, err := json.Marshal(cacheFillRequest{Entries: chunk, Epoch: c.epoch})
	if err != nil {
		c.peerErrors.Add(1)
		return
	}
	resp, err := c.post(ctx, "/v1/cache/fill", body)
	if err != nil {
		c.peerErrors.Add(1)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxRow))
		return
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxRow))
		c.peerErrors.Add(1)
		return
	}
	var reply cacheFillReply
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxRow)).Decode(&reply); err == nil {
		if reply.Rejected > 0 {
			c.epochRejects.Add(uint64(reply.Rejected))
		}
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, maxRow))
}

// Epoch returns the cache epoch this client stamps onto every
// exchange — the rescache.Epoched hook the Tiered store consults.
func (c *CacheClient) Epoch() uint64 { return c.epoch }

// Stats reports the remote-tier counters; occupancy lives on the peer.
func (c *CacheClient) Stats() rescache.Stats {
	return rescache.Stats{
		PeerHits:     c.peerHits.Load(),
		PeerMisses:   c.peerMisses.Load(),
		PeerErrors:   c.peerErrors.Load(),
		EpochRejects: c.epochRejects.Load(),
	}
}

// post issues one cache POST bounded by the per-op timeout — no
// redials: a cache round-trip that needs a retry already lost its race
// against just computing the job.
func (c *CacheClient) post(ctx context.Context, path string, body []byte) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.hc.Do(req)
}

// ResultCacheConfig assembles a result-cache tier; every zero field
// selects the package or rescache default.
type ResultCacheConfig struct {
	// MaxBytes bounds the local LRU (0 → rescache.DefaultMaxBytes,
	// negative → unbounded).
	MaxBytes int64
	// Peers lists the /v1/cache base URLs of the remote tier.
	Peers []string
	// Epoch is the fleet-wide invalidation generation: stamped onto
	// every wire exchange and reported in Stats.
	Epoch uint64
	// FillQueue and DrainTimeout configure the write-behind queue
	// (see rescache.TieredConfig).
	FillQueue    int
	DrainTimeout time.Duration
}

// NewResultCache assembles the per-process result-cache tier the
// BackendConfig.Cache knob selects: a bounded local LRU (maxBytes 0
// selects rescache.DefaultMaxBytes, negative unbounded) fronting one
// CacheClient per peer URL, composed behind the singleflight Tiered
// store at epoch 0. With no peers the tier is local-only but keeps the
// same Stats shape.
func NewResultCache(maxBytes int64, peerURLs []string) (*rescache.Tiered, error) {
	return NewResultCacheWith(ResultCacheConfig{MaxBytes: maxBytes, Peers: peerURLs})
}

// NewResultCacheWith assembles a tier from an explicit configuration —
// the epoch-aware entry point serve and the CLIs use.
func NewResultCacheWith(cfg ResultCacheConfig) (*rescache.Tiered, error) {
	local := rescache.NewLRU(cfg.MaxBytes, 0)
	var peers []rescache.Cache
	for _, p := range cfg.Peers {
		cc, err := NewCacheClientWith(p, cfg.Epoch)
		if err != nil {
			return nil, err
		}
		peers = append(peers, cc)
	}
	return rescache.NewTieredWith(rescache.TieredConfig{
		Local:        local,
		Peers:        peers,
		Epoch:        cfg.Epoch,
		FillQueue:    cfg.FillQueue,
		DrainTimeout: cfg.DrainTimeout,
	}), nil
}
