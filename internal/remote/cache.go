package remote

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/rescache"
)

// The /v1/cache wire protocol between serve instances:
//
//	POST /v1/cache/lookup  {"keys":["<hex>", ...]}
//	  -> NDJSON rows {"key":"<hex>","found":true,"value":{...}}
//	POST /v1/cache/fill    {"entries":[{"key":"<hex>","value":{...}}, ...]}
//	  -> {"stored":N}
//
// Both sides cap a request at maxCacheKeysPerRequest keys/entries and a
// value at maxRow bytes; a peer answers lookups from its LOCAL store
// only, so two peers pointed at each other cannot loop a miss.
const maxCacheKeysPerRequest = 256

// cacheOpTimeout bounds one cache round-trip. The cache is an
// accelerator on the dispatch path: a slow peer must degrade to a miss
// long before it costs what the evaluation it was saving would.
const cacheOpTimeout = 2 * time.Second

// cacheLookupRequest is the body of POST /v1/cache/lookup.
type cacheLookupRequest struct {
	Keys []string `json:"keys"`
}

// cacheRow is one NDJSON reply row of /v1/cache/lookup. Value is kept
// raw: the cache stores opaque bytes and only internal/bench knows the
// row codec.
type cacheRow struct {
	Key   string          `json:"key"`
	Found bool            `json:"found"`
	Value json.RawMessage `json:"value,omitempty"`
}

// cacheFillEntry is one entry of POST /v1/cache/fill.
type cacheFillEntry struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// cacheFillRequest is the body of POST /v1/cache/fill.
type cacheFillRequest struct {
	Entries []cacheFillEntry `json:"entries"`
}

// cacheFillReply acknowledges a fill with the number of entries stored.
type cacheFillReply struct {
	Stored int `json:"stored"`
}

// scanCacheRows consumes the NDJSON reply of /v1/cache/lookup, invoking
// fn per row until the stream ends or fn returns false. Blank lines are
// skipped; a line that is not a JSON cache row stops the scan with an
// error, because a mis-parsed row could replay the wrong value under a
// caller's key.
func scanCacheRows(r io.Reader, fn func(cacheRow) bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxRow)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var row cacheRow
		if err := json.Unmarshal(line, &row); err != nil {
			return fmt.Errorf("malformed NDJSON cache row %.80q: %w", line, err)
		}
		if !fn(row) {
			return nil
		}
	}
	return sc.Err()
}

// CacheClient is the remote tier of the result cache: a rescache.Cache
// whose store is another art9-serve instance's /v1/cache endpoints.
// Every failure — dial, status, malformed row — degrades to a miss and
// a PeerErrors tick, never an error: a dead cache peer means compute,
// not failure.
type CacheClient struct {
	base    string
	hc      *http.Client
	timeout time.Duration

	peerHits   atomic.Uint64
	peerMisses atomic.Uint64
	peerErrors atomic.Uint64
}

var _ rescache.Cache = (*CacheClient)(nil)

// NewCacheClient builds a cache client for one art9-serve base URL,
// validated eagerly like New so a misconfigured fleet fails at
// construction, not at the first lookup.
func NewCacheClient(baseURL string) (*CacheClient, error) {
	u, err := url.Parse(strings.TrimSpace(baseURL))
	if err != nil {
		return nil, fmt.Errorf("remote: cache peer url %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("remote: cache peer url %q: scheme must be http or https", baseURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("remote: cache peer url %q: missing host", baseURL)
	}
	return &CacheClient{
		base:    strings.TrimRight(u.String(), "/"),
		hc:      &http.Client{},
		timeout: cacheOpTimeout,
	}, nil
}

// Peer returns the normalized base URL this cache client queries.
func (c *CacheClient) Peer() string { return c.base }

// Get looks key up on the peer. Any transport or protocol failure
// degrades to a miss.
func (c *CacheClient) Get(ctx context.Context, key string) ([]byte, bool) {
	body, err := json.Marshal(cacheLookupRequest{Keys: []string{key}})
	if err != nil {
		c.peerErrors.Add(1)
		return nil, false
	}
	resp, err := c.post(ctx, "/v1/cache/lookup", body)
	if err != nil {
		c.peerErrors.Add(1)
		return nil, false
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxRow))
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusNotFound {
		// A peer predating the cache protocol: a standing miss.
		c.peerMisses.Add(1)
		return nil, false
	}
	if resp.StatusCode != http.StatusOK {
		c.peerErrors.Add(1)
		return nil, false
	}
	var val []byte
	found := false
	err = scanCacheRows(io.LimitReader(resp.Body, maxRow+1), func(r cacheRow) bool {
		if r.Key == key && r.Found && len(r.Value) > 0 {
			val = append([]byte(nil), r.Value...)
			found = true
			return false
		}
		return true
	})
	if err != nil {
		c.peerErrors.Add(1)
		return nil, false
	}
	if !found {
		c.peerMisses.Add(1)
		return nil, false
	}
	c.peerHits.Add(1)
	return val, true
}

// Put fills key on the peer, best-effort. Values that are not valid
// JSON are dropped (the wire carries JSON rows), as is anything over
// the per-row bound.
func (c *CacheClient) Put(ctx context.Context, key string, val []byte) {
	if len(val) == 0 || len(val) > maxRow || !json.Valid(val) {
		return
	}
	body, err := json.Marshal(cacheFillRequest{
		Entries: []cacheFillEntry{{Key: key, Value: json.RawMessage(val)}},
	})
	if err != nil {
		c.peerErrors.Add(1)
		return
	}
	resp, err := c.post(ctx, "/v1/cache/fill", body)
	if err != nil {
		c.peerErrors.Add(1)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, maxRow))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
		c.peerErrors.Add(1)
	}
}

// Stats reports the remote-tier counters; occupancy lives on the peer.
func (c *CacheClient) Stats() rescache.Stats {
	return rescache.Stats{
		PeerHits:   c.peerHits.Load(),
		PeerMisses: c.peerMisses.Load(),
		PeerErrors: c.peerErrors.Load(),
	}
}

// post issues one cache POST bounded by the per-op timeout — no
// redials: a cache round-trip that needs a retry already lost its race
// against just computing the job.
func (c *CacheClient) post(ctx context.Context, path string, body []byte) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.hc.Do(req)
}

// NewResultCache assembles the per-process result-cache tier the
// BackendConfig.Cache knob selects: a bounded local LRU (maxBytes 0
// selects rescache.DefaultMaxBytes, negative unbounded) fronting one
// CacheClient per peer URL, composed behind the singleflight Tiered
// store. With no peers the tier is local-only but keeps the same Stats
// shape.
func NewResultCache(maxBytes int64, peerURLs []string) (*rescache.Tiered, error) {
	local := rescache.NewLRU(maxBytes, 0)
	var peers []rescache.Cache
	for _, p := range peerURLs {
		cc, err := NewCacheClient(p)
		if err != nil {
			return nil, err
		}
		peers = append(peers, cc)
	}
	return rescache.NewTiered(local, peers...), nil
}
