package remote_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/remote"
)

// specJob builds a remotable job: the Fn is deliberately nil because a
// remote backend must never execute closures locally.
func specJob(name string) engine.Job {
	return engine.Job{ID: name, Spec: &bench.JobSpec{
		Job: bench.ManifestJob{Name: name, Workload: "bubble"},
	}}
}

func mustClient(t *testing.T, url string, opts ...remote.Option) *remote.Client {
	t.Helper()
	c, err := remote.New(url, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestNewRejectsBadURLs(t *testing.T) {
	for _, bad := range []string{"", "not a url", "ftp://host", "http://"} {
		if _, err := remote.New(bad); err == nil {
			t.Errorf("New(%q) accepted an invalid peer URL", bad)
		}
	}
	c, err := remote.New("http://example.test:9009/")
	if err != nil {
		t.Fatal(err)
	}
	if c.Peer() != "http://example.test:9009" {
		t.Errorf("Peer() = %q, want trailing slash trimmed", c.Peer())
	}
}

// TestPeerDownAtDial points the client at a dead address: every job in
// the batch must resolve with a connection error — after the bounded
// retries — and nothing may hang.
func TestPeerDownAtDial(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	dead := ts.URL
	ts.Close() // the port is now unbound: dials fail fast

	c := mustClient(t, dead, remote.WithRetries(1), remote.WithRetryDelay(time.Millisecond))
	jobs := []engine.Job{specJob("a"), specJob("b")}
	results, err := c.Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("batch error %v, want per-job errors only", err)
	}
	for i, r := range results {
		if r.Err == nil {
			t.Fatalf("job %s resolved without error against a dead peer", jobs[i].ID)
		}
		if !strings.Contains(r.Err.Error(), "connect") && !errors.Is(r.Err, syscall.ECONNREFUSED) {
			t.Errorf("job %s error %v, want a connection error", jobs[i].ID, r.Err)
		}
	}
	st := c.LocalStats()
	if st.Submitted != 2 || st.Failed != 2 {
		t.Errorf("local stats %+v, want 2 submitted / 2 failed", st)
	}

	// A single-job batch takes the /v1/eval path; its failure must be
	// counted too, keeping the submitted = resolved invariant.
	c2 := mustClient(t, dead, remote.WithRetries(0))
	if results, _ := c2.Run(context.Background(), []engine.Job{specJob("solo")}); results[0].Err == nil {
		t.Fatal("single job resolved without error against a dead peer")
	}
	if st := c2.LocalStats(); st.Submitted != 1 || st.Failed != 1 {
		t.Errorf("single-job local stats %+v, want 1 submitted / 1 failed", st)
	}
}

// flakyTransport fails the first n round trips with a dial error, then
// delegates — the deterministic probe for the bounded-retry behaviour.
type flakyTransport struct {
	remaining atomic.Int32
	attempts  atomic.Int32
	rt        http.RoundTripper
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.attempts.Add(1)
	if f.remaining.Add(-1) >= 0 {
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
	}
	return f.rt.RoundTrip(req)
}

// TestRetriesConnectErrorsThenSucceeds: two dial failures, then the peer
// answers — within a 2-retry budget the batch must succeed, and the
// transport must have been hit exactly 3 times.
func TestRetriesConnectErrorsThenSucceeds(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(bench.JobReport{Name: "a", OK: true})
	}))
	defer ts.Close()

	ft := &flakyTransport{rt: http.DefaultTransport}
	ft.remaining.Store(2)
	c := mustClient(t, ts.URL,
		remote.WithRetries(2), remote.WithRetryDelay(time.Millisecond),
		remote.WithHTTPClient(&http.Client{Transport: ft}))

	results, err := c.Run(context.Background(), []engine.Job{specJob("a")})
	if err != nil || results[0].Err != nil {
		t.Fatalf("run after flaky dials: %v / %v", err, results[0].Err)
	}
	if got := ft.attempts.Load(); got != 3 {
		t.Errorf("transport saw %d attempts, want 3 (2 failures + success)", got)
	}

	// A budget smaller than the failure count must surface the error.
	ft.remaining.Store(2)
	ft.attempts.Store(0)
	c2 := mustClient(t, ts.URL,
		remote.WithRetries(1), remote.WithRetryDelay(time.Millisecond),
		remote.WithHTTPClient(&http.Client{Transport: ft}))
	results, _ = c2.Run(context.Background(), []engine.Job{specJob("a")})
	if results[0].Err == nil {
		t.Fatal("run succeeded despite exhausted retry budget")
	}
	if got := ft.attempts.Load(); got != 2 {
		t.Errorf("transport saw %d attempts, want 2 (retries bounded)", got)
	}
}

// ndjsonHandler streams the given pre-encoded rows, flushing each, then
// runs the tail hook (die, hang, emit garbage...).
func ndjsonHandler(rows []string, tail func(w http.ResponseWriter, r *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		fl, _ := w.(http.Flusher)
		for _, row := range rows {
			fmt.Fprintln(w, row)
			if fl != nil {
				fl.Flush()
			}
		}
		if tail != nil {
			tail(w, r)
		}
	})
}

func okRow(name string) string {
	raw, _ := json.Marshal(bench.JobReport{Name: name, OK: true, Worker: 3})
	return string(raw)
}

// TestPeerDiesMidStream: the peer flushes one good row, then drops the
// connection without finishing the body. The received row resolves
// normally; the rest resolve with a stream error.
func TestPeerDiesMidStream(t *testing.T) {
	ts := httptest.NewServer(ndjsonHandler([]string{okRow("a")},
		func(http.ResponseWriter, *http.Request) { panic(http.ErrAbortHandler) }))
	defer ts.Close()

	c := mustClient(t, ts.URL)
	jobs := []engine.Job{specJob("a"), specJob("b"), specJob("c")}
	byID := map[string]engine.Result{}
	for r := range c.Stream(context.Background(), jobs) {
		byID[r.ID] = r
	}
	if len(byID) != 3 {
		t.Fatalf("stream resolved %d jobs, want all 3", len(byID))
	}
	if r := byID["a"]; r.Err != nil || r.Value.(*bench.JobReport).Worker != 3 {
		t.Errorf("job a = %+v, want the flushed row passed through", r)
	}
	for _, id := range []string{"b", "c"} {
		if err := byID[id].Err; err == nil || !strings.Contains(err.Error(), "stream") {
			t.Errorf("job %s error %v, want a stream error", id, err)
		}
	}
	st := c.LocalStats()
	if st.Completed != 1 || st.Failed != 2 {
		t.Errorf("local stats %+v, want 1 completed / 2 failed", st)
	}
}

// TestClientCancelMidStream cancels the caller's context after the
// first row; outstanding jobs must resolve with the context error and
// the stream must close promptly.
func TestClientCancelMidStream(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(ndjsonHandler([]string{okRow("a")},
		func(w http.ResponseWriter, r *http.Request) {
			select {
			case <-r.Context().Done():
			case <-release:
			}
		}))
	defer ts.Close()
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := mustClient(t, ts.URL)
	jobs := []engine.Job{specJob("a"), specJob("b"), specJob("c")}
	out := c.Stream(ctx, jobs)

	first := <-out
	if first.Err != nil || first.ID != "a" {
		t.Fatalf("first result %+v, want job a ok", first)
	}
	cancel()

	got := 1
	deadline := time.After(10 * time.Second)
	for got < len(jobs) {
		select {
		case r, ok := <-out:
			if !ok {
				t.Fatalf("stream closed after %d results, want %d", got, len(jobs))
			}
			got++
			if !errors.Is(r.Err, context.Canceled) {
				t.Errorf("job %s error %v, want context.Canceled", r.ID, r.Err)
			}
		case <-deadline:
			t.Fatalf("stream stalled after %d results — cancellation stranded a job", got)
		}
	}
	if st := c.LocalStats(); st.Canceled != 2 {
		t.Errorf("local stats %+v, want 2 canceled", st)
	}
}

// TestMalformedNDJSONRow: good row, then garbage. The good row resolves;
// everything after the malformed row resolves with an error naming it.
func TestMalformedNDJSONRow(t *testing.T) {
	ts := httptest.NewServer(ndjsonHandler([]string{okRow("a"), `{"name": nonsense`}, nil))
	defer ts.Close()

	c := mustClient(t, ts.URL)
	jobs := []engine.Job{specJob("a"), specJob("b"), specJob("c")}
	byID := map[string]engine.Result{}
	for r := range c.Stream(context.Background(), jobs) {
		byID[r.ID] = r
	}
	if r := byID["a"]; r.Err != nil {
		t.Errorf("job a: %v, want the good row honoured", r.Err)
	}
	for _, id := range []string{"b", "c"} {
		if err := byID[id].Err; err == nil || !strings.Contains(err.Error(), "malformed NDJSON") {
			t.Errorf("job %s error %v, want the malformed row named", id, err)
		}
	}
}

// TestStatusMapping: the peer's typed statuses unwrap to the engine's
// typed errors, so a caller can errors.Is across the network boundary.
func TestStatusMapping(t *testing.T) {
	tests := []struct {
		status int
		body   string
		want   error
	}{
		{http.StatusServiceUnavailable, `{"error":"engine: closed"}`, engine.ErrClosed},
		{http.StatusGatewayTimeout, `{"error":"engine: job timeout"}`, engine.ErrTimeout},
	}
	for _, tt := range tests {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(tt.status)
			fmt.Fprint(w, tt.body)
		}))
		c := mustClient(t, ts.URL)
		results, _ := c.Run(context.Background(), []engine.Job{specJob("a")})
		if !errors.Is(results[0].Err, tt.want) {
			t.Errorf("status %d: error %v, want errors.Is %v", tt.status, results[0].Err, tt.want)
		}
		ts.Close()
	}
}

// TestNotRemotableJob: a job without a spec fails fast without touching
// the network; remotable jobs in the same batch still run.
func TestNotRemotableJob(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		json.NewEncoder(w).Encode(bench.JobReport{Name: "good", OK: true})
	}))
	defer ts.Close()

	c := mustClient(t, ts.URL)
	jobs := []engine.Job{
		{ID: "closure-only", Fn: func(context.Context) (any, error) { return 1, nil }},
		specJob("good"),
	}
	results, err := c.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, remote.ErrNotRemotable) {
		t.Errorf("closure job error %v, want ErrNotRemotable", results[0].Err)
	}
	if results[1].Err != nil {
		t.Errorf("remotable job failed: %v", results[1].Err)
	}
	if hits.Load() != 1 {
		t.Errorf("peer saw %d requests, want 1 (/v1/eval for the one valid job)", hits.Load())
	}
}

// TestClosedClientRejects: after Close, batches resolve with ErrClosed
// without contacting the peer.
func TestClosedClientRejects(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { hits.Add(1) }))
	defer ts.Close()

	c := mustClient(t, ts.URL)
	c.Close()
	results, _ := c.Run(context.Background(), []engine.Job{specJob("a")})
	if !errors.Is(results[0].Err, engine.ErrClosed) {
		t.Errorf("post-Close error %v, want engine.ErrClosed", results[0].Err)
	}
	if hits.Load() != 0 {
		t.Errorf("peer contacted %d times after Close", hits.Load())
	}
	if st := c.LocalStats(); st.Rejected != 1 {
		t.Errorf("local stats %+v, want 1 rejected", st)
	}
}

// TestDuplicateNamesDistinctSpecs: two jobs sharing a name but carrying
// different work must each get their own result, index-aligned, even
// when the peer completes them out of submission order — the wire-name
// deduplication property.
func TestDuplicateNamesDistinctSpecs(t *testing.T) {
	// The fake peer answers every manifest job with a checksum equal to
	// its source length, emitting rows in reverse order.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var m bench.Manifest
		if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
			t.Errorf("peer: bad manifest: %v", err)
		}
		fl, _ := w.(http.Flusher)
		for i := len(m.Jobs) - 1; i >= 0; i-- {
			json.NewEncoder(w).Encode(bench.JobReport{
				Name: m.Jobs[i].Name, OK: true,
				Metrics: &bench.MetricsReport{Checksum: len(m.Jobs[i].Source)},
			})
			if fl != nil {
				fl.Flush()
			}
		}
	}))
	defer ts.Close()

	c := mustClient(t, ts.URL)
	jobs := []engine.Job{
		{ID: "x", Spec: &bench.JobSpec{Job: bench.ManifestJob{Name: "x", Source: "short"}}},
		{ID: "x", Spec: &bench.JobSpec{Job: bench.ManifestJob{Name: "x", Source: "much-longer-source"}}},
	}
	results, err := c.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, wantLen := range []int{len("short"), len("much-longer-source")} {
		if results[i].Err != nil {
			t.Fatalf("job %d: %v", i, results[i].Err)
		}
		jr := results[i].Value.(*bench.JobReport)
		if jr.Metrics.Checksum != wantLen {
			t.Errorf("result %d carries checksum %d, want %d (cross-assigned row)", i, jr.Metrics.Checksum, wantLen)
		}
		if jr.Name != "x" {
			t.Errorf("result %d name %q, want the wire suffix undone", i, jr.Name)
		}
	}
}

// TestJobTimeoutShipped: an engine-level per-job Timeout reaches the
// peer as the manifest entry's timeout_ms, on both the eval and the
// suite path.
func TestJobTimeoutShipped(t *testing.T) {
	var timeouts []int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/eval":
			var req struct {
				bench.ManifestJob
				Technologies []string `json:"technologies"`
			}
			json.NewDecoder(r.Body).Decode(&req)
			timeouts = append(timeouts, req.TimeoutMS)
			json.NewEncoder(w).Encode(bench.JobReport{Name: req.Name, OK: true})
		case "/v1/suite":
			var m bench.Manifest
			json.NewDecoder(r.Body).Decode(&m)
			for _, mj := range m.Jobs {
				timeouts = append(timeouts, mj.TimeoutMS)
				json.NewEncoder(w).Encode(bench.JobReport{Name: mj.Name, OK: true})
			}
		}
	}))
	defer ts.Close()

	c := mustClient(t, ts.URL)
	one := specJob("a")
	one.Timeout = 1500 * time.Millisecond
	if results, _ := c.Run(context.Background(), []engine.Job{one}); results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	two := specJob("b")
	two.Timeout = 250 * time.Millisecond
	three := specJob("c")
	if results, _ := c.Run(context.Background(), []engine.Job{two, three}); results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("suite path: %v / %v", results[0].Err, results[1].Err)
	}
	want := []int64{1500, 250, 0}
	for i, w := range want {
		if i >= len(timeouts) || timeouts[i] != w {
			t.Fatalf("shipped timeouts %v, want %v", timeouts, want)
		}
	}
}

// TestHeterogeneousTechnologyGroups: jobs whose specs request different
// technology lists must go out as separate suite requests, each with
// exactly its own list — never a union.
func TestHeterogeneousTechnologyGroups(t *testing.T) {
	var mu sync.Mutex
	techsByJob := map[string][]string{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var m bench.Manifest
		json.NewDecoder(r.Body).Decode(&m)
		mu.Lock()
		for _, mj := range m.Jobs {
			techsByJob[mj.Name] = m.Technologies
		}
		mu.Unlock()
		for _, mj := range m.Jobs {
			json.NewEncoder(w).Encode(bench.JobReport{Name: mj.Name, OK: true})
		}
	}))
	defer ts.Close()

	c := mustClient(t, ts.URL)
	jobs := []engine.Job{
		{ID: "a", Spec: &bench.JobSpec{Job: bench.ManifestJob{Name: "a", Workload: "bubble"}, Technologies: []string{"cntfet32"}}},
		{ID: "b", Spec: &bench.JobSpec{Job: bench.ManifestJob{Name: "b", Workload: "gemm"}, Technologies: []string{"stratixv"}}},
		{ID: "c", Spec: &bench.JobSpec{Job: bench.ManifestJob{Name: "c", Workload: "sobel"}, Technologies: []string{"cntfet32"}}},
	}
	results, err := c.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %s: %v", jobs[i].ID, r.Err)
		}
	}
	want := map[string][]string{
		"a": {"cntfet32"}, "b": {"stratixv"}, "c": {"cntfet32"},
	}
	for name, techs := range want {
		got := techsByJob[name]
		if len(got) != 1 || got[0] != techs[0] {
			t.Errorf("job %s evaluated against %v, want exactly %v", name, got, techs)
		}
	}
}

// TestLargeBatchesAreChunked: a batch bigger than the serve layer's
// per-request job cap must go out as multiple suite requests, each
// within the cap, and still resolve every job exactly once.
func TestLargeBatchesAreChunked(t *testing.T) {
	const n = 2500 // needs ceil(2500/1024) = 3 requests
	var requests atomic.Int32
	var maxPerRequest atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		var m bench.Manifest
		json.NewDecoder(r.Body).Decode(&m)
		if l := int32(len(m.Jobs)); l > maxPerRequest.Load() {
			maxPerRequest.Store(l)
		}
		for _, mj := range m.Jobs {
			json.NewEncoder(w).Encode(bench.JobReport{Name: mj.Name, OK: true})
		}
	}))
	defer ts.Close()

	c := mustClient(t, ts.URL)
	jobs := make([]engine.Job, n)
	for i := range jobs {
		name := fmt.Sprintf("j%d", i)
		jobs[i] = engine.Job{ID: name, Spec: &bench.JobSpec{
			Job: bench.ManifestJob{Name: name, Workload: "bubble"},
		}}
	}
	results, err := c.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.ID != jobs[i].ID {
			t.Fatalf("result %d is %s, want %s", i, r.ID, jobs[i].ID)
		}
	}
	if got := requests.Load(); got != 3 {
		t.Errorf("batch went out as %d requests, want 3", got)
	}
	if got := maxPerRequest.Load(); got > 1024 {
		t.Errorf("a request carried %d jobs, exceeding the peer's 1024 cap", got)
	}
	if st := c.LocalStats(); st.Completed != n {
		t.Errorf("local stats %+v, want %d completed", st, n)
	}
}

// TestTypedErrorsSurviveSuiteRows: rows rendered by the serve layer
// from typed failures carry error_kind, and the client maps them back —
// errors.Is works identically for multi-job batches, not just the
// /v1/eval single-job path.
func TestTypedErrorsSurviveSuiteRows(t *testing.T) {
	rows := map[string]bench.JobReport{
		"t": bench.JobReportOf(engine.Result{ID: "t",
			Err: fmt.Errorf("wrapped: %w", engine.ErrTimeout)}, nil),
		"c": bench.JobReportOf(engine.Result{ID: "c",
			Err: fmt.Errorf("wrapped: %w", engine.ErrClosed)}, nil),
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var m bench.Manifest
		json.NewDecoder(r.Body).Decode(&m)
		for _, mj := range m.Jobs {
			json.NewEncoder(w).Encode(rows[mj.Name])
		}
	}))
	defer ts.Close()

	c := mustClient(t, ts.URL)
	results, err := c.Run(context.Background(), []engine.Job{specJob("t"), specJob("c")})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, engine.ErrTimeout) {
		t.Errorf("timeout row error %v, want errors.Is ErrTimeout", results[0].Err)
	}
	if !errors.Is(results[1].Err, engine.ErrClosed) {
		t.Errorf("closed row error %v, want errors.Is ErrClosed", results[1].Err)
	}
}

// TestRunReportForUsesLocalCounters: a per-run report over a backend
// with a remote shard must count only this process's submissions, not
// the peer's lifetime totals.
func TestRunReportForUsesLocalCounters(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/stats":
			// A long-lived peer that has served many other clients.
			json.NewEncoder(w).Encode(map[string]any{
				"engine": bench.EngineReport{Workers: 16, Submitted: 99999, Completed: 99999},
			})
		case "/v1/eval":
			var req struct {
				bench.ManifestJob
			}
			json.NewDecoder(r.Body).Decode(&req)
			json.NewEncoder(w).Encode(bench.JobReport{Name: req.Name, OK: true})
		default:
			var m bench.Manifest
			json.NewDecoder(r.Body).Decode(&m)
			for _, mj := range m.Jobs {
				json.NewEncoder(w).Encode(bench.JobReport{Name: mj.Name, OK: true})
			}
		}
	}))
	defer ts.Close()

	c := mustClient(t, ts.URL)
	set := engine.NewShardSetOf(engine.New(engine.Options{Workers: 1, PrivateCaches: true}), c)
	defer set.Close()
	jobs := []engine.Job{
		{ID: "local", Fn: func(context.Context) (any, error) { return 1, nil },
			Spec: &bench.JobSpec{Job: bench.ManifestJob{Name: "local", Workload: "bubble"}}},
		specJob("remote"),
	}
	if _, err := set.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	rep := bench.RunReportFor(set)
	if rep.Submitted != 2 || rep.Completed != 2 {
		t.Errorf("run report %+v, want exactly this run's 2 jobs (not peer lifetime totals)", rep)
	}
	if rep.Shards != 2 || rep.Workers != 1 {
		t.Errorf("run report %+v, want 2 shards and the 1 local worker", rep)
	}
	// The fleet view still scrapes: the set-wide Stats include the
	// peer's lifetime counters.
	if st := set.Stats(); st.Submitted < 99999 {
		t.Errorf("scraped set stats %+v, want the peer's lifetime counters included", st)
	}
}

// TestStatsScrape: Stats() prefers the peer's /v1/stats; a dead peer
// falls back to the client-side counters.
func TestStatsScrape(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/stats" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"engine": bench.EngineReport{Workers: 7, Submitted: 41, Completed: 40, Streams: 5},
		})
	}))
	c := mustClient(t, ts.URL)
	st := c.Stats()
	if st.Workers != 7 || st.Submitted != 41 || st.Completed != 40 || st.Streams != 5 {
		t.Errorf("scraped stats %+v, want the peer's counters", st)
	}

	ts.Close()
	c2 := mustClient(t, ts.URL, remote.WithStatsTimeout(200*time.Millisecond))
	if st := c2.Stats(); st.Workers != 0 || st.Submitted != 0 {
		t.Errorf("fallback stats %+v, want zeroed local counters", st)
	}
}

// TestStatsScrapeFailureIsTyped pins the fixed latent bug: a failed
// /v1/stats scrape must not vanish behind the local-counter fallback —
// PeerStats wraps it in ErrStatsUnavailable and Stats records it for
// StatsErr, clearing it again after a clean scrape.
func TestStatsScrapeFailureIsTyped(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/stats" {
			fmt.Fprint(w, `{"engine":{"workers":7,"submitted":3}}`)
		}
	}))
	c := mustClient(t, ts.URL, remote.WithRetries(0))

	// Healthy scrape: typed error absent.
	if st := c.Stats(); st.Workers != 7 {
		t.Fatalf("scraped stats %+v, want workers 7", st)
	}
	if err := c.StatsErr(); err != nil {
		t.Fatalf("StatsErr after clean scrape = %v, want nil", err)
	}

	// Dead peer: fallback to local counters plus a typed, visible error.
	ts.Close()
	if _, err := c.PeerStats(context.Background()); !errors.Is(err, remote.ErrStatsUnavailable) {
		t.Errorf("PeerStats error %v, want ErrStatsUnavailable", err)
	}
	if st := c.Stats(); st.Workers != 0 {
		t.Errorf("fallback stats %+v, want local view (workers 0)", st)
	}
	if err := c.StatsErr(); !errors.Is(err, remote.ErrStatsUnavailable) {
		t.Errorf("StatsErr after failed scrape = %v, want ErrStatsUnavailable", err)
	}
}

// TestStatsScrapeBadBodyIsTyped covers the non-transport failure modes:
// a non-200 status and a malformed body are ErrStatsUnavailable too.
func TestStatsScrapeBadBodyIsTyped(t *testing.T) {
	status := atomic.Int32{}
	status.Store(http.StatusInternalServerError)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		code := int(status.Load())
		w.WriteHeader(code)
		if code == http.StatusOK {
			fmt.Fprint(w, `{"engine": nonsense`)
		}
	}))
	defer ts.Close()
	c := mustClient(t, ts.URL)

	if _, err := c.PeerStats(context.Background()); !errors.Is(err, remote.ErrStatsUnavailable) {
		t.Errorf("non-200 scrape error %v, want ErrStatsUnavailable", err)
	}
	status.Store(http.StatusOK)
	if _, err := c.PeerStats(context.Background()); !errors.Is(err, remote.ErrStatsUnavailable) {
		t.Errorf("malformed-body scrape error %v, want ErrStatsUnavailable", err)
	}
}

// TestProbe pins the Prober surface: 200 healthz is healthy, a dead
// peer is ErrUnavailable, a closed client is ErrClosed without network.
func TestProbe(t *testing.T) {
	var path atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path.Store(r.URL.Path)
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	c := mustClient(t, ts.URL)
	if err := c.Probe(context.Background()); err != nil {
		t.Fatalf("probe against live peer: %v", err)
	}
	if p, _ := path.Load().(string); p != "/v1/healthz" {
		t.Errorf("probe hit %q, want /v1/healthz", p)
	}

	ts.Close()
	if err := c.Probe(context.Background()); !errors.Is(err, engine.ErrUnavailable) {
		t.Errorf("probe against dead peer = %v, want ErrUnavailable", err)
	}

	c.Close()
	if err := c.Probe(context.Background()); !errors.Is(err, engine.ErrClosed) {
		t.Errorf("probe on closed client = %v, want ErrClosed", err)
	}
}

// TestTransportFailuresAreUnavailable pins the failover contract: every
// transport-class failure — dead peer at dial, severed mid-stream,
// truncated eval body — wraps engine.ErrUnavailable so a Balancer
// re-runs the job, while a caller's cancellation does not.
func TestTransportFailuresAreUnavailable(t *testing.T) {
	t.Run("dial", func(t *testing.T) {
		ts := httptest.NewServer(nil)
		url := ts.URL
		ts.Close()
		c := mustClient(t, url, remote.WithRetries(0))
		rs, _ := c.Run(context.Background(), []engine.Job{specJob("a")})
		if !errors.Is(rs[0].Err, engine.ErrUnavailable) {
			t.Errorf("dial failure %v, want ErrUnavailable", rs[0].Err)
		}
	})

	t.Run("mid-stream", func(t *testing.T) {
		ts := httptest.NewServer(ndjsonHandler([]string{okRow("a")},
			func(http.ResponseWriter, *http.Request) { panic(http.ErrAbortHandler) }))
		defer ts.Close()
		c := mustClient(t, ts.URL)
		byID := map[string]engine.Result{}
		for r := range c.Stream(context.Background(), []engine.Job{specJob("a"), specJob("b")}) {
			byID[r.ID] = r
		}
		if byID["a"].Err != nil {
			t.Errorf("flushed row a failed: %v", byID["a"].Err)
		}
		if !errors.Is(byID["b"].Err, engine.ErrUnavailable) {
			t.Errorf("severed-stream failure %v, want ErrUnavailable", byID["b"].Err)
		}
	})

	t.Run("cancel-is-not-unavailable", func(t *testing.T) {
		release := make(chan struct{})
		defer close(release)
		ts := httptest.NewServer(ndjsonHandler(nil,
			func(w http.ResponseWriter, r *http.Request) {
				select {
				case <-r.Context().Done():
				case <-release:
				}
			}))
		defer ts.Close()
		c := mustClient(t, ts.URL)
		ctx, cancel := context.WithCancel(context.Background())
		out := c.Stream(ctx, []engine.Job{specJob("a"), specJob("b")})
		cancel()
		for r := range out {
			if engine.Retryable(r.Err) {
				t.Errorf("cancelled job %s classified retryable (%v) — a balancer would re-run it", r.ID, r.Err)
			}
			if !errors.Is(r.Err, context.Canceled) {
				t.Errorf("cancelled job %s error %v, want context.Canceled", r.ID, r.Err)
			}
		}
	})
}

// TestUnavailableKindSurvivesSuiteRows pins the tier-composition wire
// contract: a peer row classified "unavailable" re-types to
// engine.ErrUnavailable on this side, so an upper balancer treats the
// failure as retryable and re-runs the job on another front.
func TestUnavailableKindSurvivesSuiteRows(t *testing.T) {
	row := `{"name":"a","ok":false,"error":"leaf died","error_kind":"unavailable","worker":-1}`
	ts := httptest.NewServer(ndjsonHandler([]string{row}, nil))
	defer ts.Close()

	c := mustClient(t, ts.URL)
	rs, _ := c.Run(context.Background(), []engine.Job{specJob("a"), specJob("b")})
	if !errors.Is(rs[0].Err, engine.ErrUnavailable) {
		t.Errorf("unavailable row error %v, want engine.ErrUnavailable", rs[0].Err)
	}
	if !engine.Retryable(rs[0].Err) {
		t.Error("unavailable row not classified retryable — tiered failover would drop the job")
	}
}

// TestUnavailableKindSurvives503 pins the typed-error round trip on the
// single-job path: a 503 whose body carries error_kind "unavailable"
// (a front whose own backends are unreachable) re-types to
// engine.ErrUnavailable, while a bare 503 stays ErrClosed.
func TestUnavailableKindSurvives503(t *testing.T) {
	kind := atomic.Value{}
	kind.Store("unavailable")
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		if k, _ := kind.Load().(string); k != "" {
			fmt.Fprintf(w, `{"error":"backends down","error_kind":%q}`, k)
			return
		}
		fmt.Fprint(w, `{"error":"draining"}`)
	}))
	defer ts.Close()
	c := mustClient(t, ts.URL)

	rs, _ := c.Run(context.Background(), []engine.Job{specJob("a")})
	if !errors.Is(rs[0].Err, engine.ErrUnavailable) {
		t.Errorf("503+unavailable error %v, want engine.ErrUnavailable", rs[0].Err)
	}
	kind.Store("")
	rs, _ = c.Run(context.Background(), []engine.Job{specJob("b")})
	if !errors.Is(rs[0].Err, engine.ErrClosed) || errors.Is(rs[0].Err, engine.ErrUnavailable) {
		t.Errorf("bare 503 error %v, want engine.ErrClosed only", rs[0].Err)
	}
}
