// Package remote is the multi-machine backend of the evaluation stack:
// an engine.Evaluator whose "worker pool" is another art9-serve instance
// reached over HTTP. It speaks the existing /v1 protocol — single jobs
// through POST /v1/eval, batches through POST /v1/suite consuming the
// NDJSON rows the moment the peer flushes them — so any running
// art9-serve is already a valid shard.
//
// Because a Client is just an Evaluator, it composes with everything
// else behind that interface: engine.NewShardSetOf(localEngine, client)
// splits one batch between this process and a peer, art9-serve --peers
// fronts a fleet of other art9-serve instances, and shards of shards
// build arbitrary topologies.
//
// Jobs are shipped by their engine.Job.Spec (a *bench.JobSpec, attached
// by bench.SuiteJobs / Manifest.EngineJobs): the program travels inline
// as source text, never as a server-side path. Jobs without a spec fail
// fast with ErrNotRemotable instead of contacting the peer.
//
// Failure surface: connection errors at dial are retried a bounded
// number of times with exponential backoff; a peer dying mid-stream
// resolves the rows already received normally and the rest with a
// stream error; cancelling the caller's context aborts the in-flight
// request and resolves outstanding jobs with the context error; HTTP
// 503/504 from the peer unwrap to engine.ErrClosed / engine.ErrTimeout.
package remote

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/rescache"
)

// ErrNotRemotable is wrapped into the result of any job submitted to a
// Client without a serializable spec (engine.Job.Spec).
var ErrNotRemotable = errors.New("remote: job carries no serializable spec")

// ErrStatsUnavailable marks a failed peer stats scrape: the peer was
// unreachable, answered a non-200, or sent a malformed body. PeerStats
// wraps every failure with it, and Stats — whose Evaluator signature
// cannot carry an error — records it for StatsErr instead of silently
// hiding the transport failure behind the local-counter fallback.
var ErrStatsUnavailable = errors.New("remote: peer stats unavailable")

// maxRow bounds one NDJSON line from the peer.
const maxRow = 1 << 20

// Chunking limits for one /v1/suite request, chosen to stay inside the
// serve layer's per-request caps (maxSuiteJobs = 1024, maxBody = 4 MiB)
// with headroom — a batch that runs locally must not fail wholesale
// just because it crossed the wire in one piece.
const (
	maxJobsPerRequest = 1024
	maxRequestBytes   = 2 << 20
)

// Option configures a Client.
type Option func(*Client)

// WithRetries sets how many times a request is re-dialled after a
// connect error (default 2; 0 disables retrying).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithRetryDelay sets the first retry's backoff delay, doubled per
// attempt (default 100ms).
func WithRetryDelay(d time.Duration) Option { return func(c *Client) { c.retryDelay = d } }

// WithHTTPClient substitutes the transport (tests, custom TLS). The
// client must not impose a global timeout — suite streams are
// long-lived; bound work with the caller's context instead.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithStatsTimeout bounds the /v1/stats scrape performed by Stats()
// (default 2s).
func WithStatsTimeout(d time.Duration) Option { return func(c *Client) { c.statsTimeout = d } }

// Client is the remote-peer backend. Create with New; a zero Client is
// not usable.
type Client struct {
	base         string
	hc           *http.Client
	retries      int
	retryDelay   time.Duration
	statsTimeout time.Duration

	closed atomic.Bool

	// statsMu guards lastStatsErr, the outcome of the most recent
	// Stats() scrape (see StatsErr).
	statsMu      sync.Mutex
	lastStatsErr error

	submitted atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	canceled  atomic.Uint64
	rejected  atomic.Uint64
	streams   atomic.Uint64
}

var (
	_ engine.Evaluator        = (*Client)(nil)
	_ engine.Prober           = (*Client)(nil)
	_ engine.ChunkDispatcher  = (*Client)(nil)
	_ engine.CapacityReporter = (*Client)(nil)
)

// New builds a client for one art9-serve base URL (e.g.
// "http://host:9009"). The URL is validated here so a misconfigured
// fleet fails at construction, not first use.
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(strings.TrimSpace(baseURL))
	if err != nil {
		return nil, fmt.Errorf("remote: peer url %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("remote: peer url %q: scheme must be http or https", baseURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("remote: peer url %q: missing host", baseURL)
	}
	c := &Client{
		base:         strings.TrimRight(u.String(), "/"),
		hc:           &http.Client{},
		retries:      2,
		retryDelay:   100 * time.Millisecond,
		statsTimeout: 2 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Peer returns the normalized base URL this client proxies to.
func (c *Client) Peer() string { return c.base }

// Close marks the client closed — subsequent batches resolve with
// engine.ErrClosed — and releases idle connections. In-flight requests
// are not interrupted; they are bounded by their own contexts.
func (c *Client) Close() error {
	c.closed.Store(true)
	c.hc.CloseIdleConnections()
	return nil
}

// Run ships the batch to the peer and returns one result per job in
// submission order — engine.Evaluator Run semantics over HTTP. The
// returned error is non-nil only when ctx ended before the batch
// resolved.
func (c *Client) Run(ctx context.Context, jobs []engine.Job) ([]engine.Result, error) {
	out := make([]engine.Result, len(jobs))
	c.dispatch(ctx, jobs, func(i int, r engine.Result) { out[i] = r })
	return out, ctx.Err()
}

// RunAll is Run under the engine's historical batch name.
func (c *Client) RunAll(ctx context.Context, jobs []engine.Job) ([]engine.Result, error) {
	return c.Run(ctx, jobs)
}

// Stream ships the batch to the peer and yields each job's result the
// moment its NDJSON row arrives — the peer emits rows in its own
// completion order, so the channel preserves the same contract as
// Engine.Stream. The channel is buffered to len(jobs) and always
// closes.
func (c *Client) Stream(ctx context.Context, jobs []engine.Job) <-chan engine.Result {
	c.streams.Add(1)
	out := make(chan engine.Result, len(jobs))
	if len(jobs) == 0 {
		close(out)
		return out
	}
	go func() {
		defer close(out)
		c.dispatch(ctx, jobs, func(_ int, r engine.Result) { out <- r })
	}()
	return out
}

// Stats scrapes the peer's /v1/stats and reports the peer's engine
// counters — the fleet view a front end aggregates. When the scrape
// fails it falls back to this client's local counters (Workers 0,
// marking the shard as contributing no live pool) and records the
// typed failure for StatsErr, so a fallback is observable rather than
// silently indistinguishable from a healthy scrape.
func (c *Client) Stats() engine.Stats {
	ctx, cancel := context.WithTimeout(context.Background(), c.statsTimeout)
	defer cancel()
	st, err := c.PeerStats(ctx)
	c.statsMu.Lock()
	c.lastStatsErr = err
	c.statsMu.Unlock()
	if err != nil {
		return c.LocalStats()
	}
	return st
}

// StatsErr returns the outcome of the most recent Stats scrape: nil
// after a clean peer scrape, an ErrStatsUnavailable-wrapped error when
// Stats fell back to local counters. It is nil before the first scrape.
func (c *Client) StatsErr() error {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.lastStatsErr
}

// Probe answers the engine.Prober liveness check with a GET
// /v1/healthz, bounded by ctx. A closed client reports engine.ErrClosed
// without touching the network; an unreachable or unhealthy peer
// reports an engine.ErrUnavailable-wrapped error.
func (c *Client) Probe(ctx context.Context) error {
	if c.closed.Load() {
		return engine.ErrClosed
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return fmt.Errorf("remote %s: healthz: %w", c.base, err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("remote %s: healthz: %w: %w", c.base, engine.ErrUnavailable, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, maxRow))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("remote %s: healthz: %w: %s", c.base, engine.ErrUnavailable, resp.Status)
	}
	return nil
}

// LocalStats returns the counters of work submitted through this client
// only, balanced the same way engine.Stats documents.
func (c *Client) LocalStats() engine.Stats {
	return engine.Stats{
		Submitted: c.submitted.Load(),
		Completed: c.completed.Load(),
		Failed:    c.failed.Load(),
		Canceled:  c.canceled.Load(),
		Rejected:  c.rejected.Load(),
		Streams:   c.streams.Load(),
	}
}

// PeerStats fetches the peer's aggregate engine counters from
// GET /v1/stats.
func (c *Client) PeerStats(ctx context.Context) (engine.Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/stats", nil)
	if err != nil {
		return engine.Stats{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return engine.Stats{}, fmt.Errorf("%w (%s): %w", ErrStatsUnavailable, c.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return engine.Stats{}, fmt.Errorf("%w (%s): %s", ErrStatsUnavailable, c.base, resp.Status)
	}
	var body struct {
		Engine bench.EngineReport `json:"engine"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxRow)).Decode(&body); err != nil {
		return engine.Stats{}, fmt.Errorf("%w (%s): decode: %w", ErrStatsUnavailable, c.base, err)
	}
	return engine.Stats{
		Workers:   body.Engine.Workers,
		Submitted: body.Engine.Submitted,
		Completed: body.Engine.Completed,
		Failed:    body.Engine.Failed,
		Canceled:  body.Engine.Canceled,
		Rejected:  body.Engine.Rejected,
		Streams:   body.Engine.Streams,
	}, nil
}

// evalRequest mirrors the POST /v1/eval body (internal/serve's
// EvalRequest); redefined here to keep serve → remote a one-way
// dependency.
type evalRequest struct {
	bench.ManifestJob
	Technologies []string `json:"technologies,omitempty"`
}

// dispatch resolves every job exactly once through emit(jobIndex,
// result): invalid jobs inline, one valid job via /v1/eval, larger
// batches via /v1/suite.
func (c *Client) dispatch(ctx context.Context, jobs []engine.Job, emit func(int, engine.Result)) {
	c.submitted.Add(uint64(len(jobs)))
	if c.closed.Load() {
		c.rejected.Add(uint64(len(jobs)))
		for i, j := range jobs {
			emit(i, engine.Result{ID: j.ID, Err: engine.ErrClosed, Worker: -1})
		}
		return
	}

	var valid []int
	specs := make([]*bench.JobSpec, len(jobs))
	for i, j := range jobs {
		spec, err := specOf(j)
		if err != nil {
			c.failed.Add(1)
			emit(i, engine.Result{ID: j.ID, Err: err, Worker: -1})
			continue
		}
		specs[i] = spec
		valid = append(valid, i)
	}
	switch len(valid) {
	case 0:
	case 1:
		i := valid[0]
		emit(i, c.evalOne(ctx, jobs[i], specs[i]))
	default:
		c.suite(ctx, jobs, specs, valid, emit)
	}
}

// specOf extracts the serializable description of one job.
func specOf(j engine.Job) (*bench.JobSpec, error) {
	switch s := j.Spec.(type) {
	case *bench.JobSpec:
		return s, nil
	case bench.JobSpec:
		return &s, nil
	case *bench.ManifestJob:
		return &bench.JobSpec{Job: *s}, nil
	case bench.ManifestJob:
		return &bench.JobSpec{Job: s}, nil
	default:
		return nil, fmt.Errorf("%w (job %q)", ErrNotRemotable, j.ID)
	}
}

// evalOne runs a single job through POST /v1/eval.
func (c *Client) evalOne(ctx context.Context, j engine.Job, spec *bench.JobSpec) engine.Result {
	mj := wireJobOf(j, spec)
	body, err := json.Marshal(evalRequest{ManifestJob: mj, Technologies: spec.Technologies})
	if err != nil {
		c.failed.Add(1)
		return engine.Result{ID: j.ID, Err: fmt.Errorf("remote %s: encode job: %w", c.base, err), Worker: -1}
	}
	start := time.Now()
	resp, err := c.post(ctx, "/v1/eval", body)
	if err != nil {
		err = c.classify(ctx, err)
		c.countFailure(err)
		return engine.Result{ID: j.ID, Err: err, Worker: -1}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.failed.Add(1)
		return engine.Result{ID: j.ID, Err: c.statusErr(resp), Worker: -1,
			Elapsed: time.Since(start)}
	}
	var jr bench.JobReport
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxRow)).Decode(&jr); err != nil {
		// A truncated or garbled 200 body is transport-class (the peer
		// died mid-response), so classify it retryable like a severed
		// stream.
		err = c.classify(ctx, fmt.Errorf("remote %s: decode report: %w", c.base, err))
		c.countFailure(err)
		return engine.Result{ID: j.ID, Err: err, Worker: -1}
	}
	return c.rowResult(j.ID, &jr)
}

// suite runs a multi-job batch through POST /v1/suite. Jobs are grouped
// by their technology list first — one request per distinct list, run
// concurrently — so no job is ever evaluated against technologies it
// did not ask for (in practice a batch comes from one manifest and
// forms a single group).
func (c *Client) suite(ctx context.Context, jobs []engine.Job, specs []*bench.JobSpec, valid []int, emit func(int, engine.Result)) {
	groups := map[string][]int{}
	var order []string
	for _, i := range valid {
		key := strings.Join(specs[i].Technologies, "\x00")
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
	}
	if len(order) == 1 {
		c.suiteGroup(ctx, jobs, specs, valid, emit)
		return
	}
	var wg sync.WaitGroup
	for _, key := range order {
		wg.Add(1)
		go func(idx []int) {
			defer wg.Done()
			c.suiteGroup(ctx, jobs, specs, idx, emit)
		}(groups[key])
	}
	wg.Wait()
}

// pendingJob tracks one not-yet-resolved suite job: its index in the
// batch and its original (pre-deduplication) name.
type pendingJob struct {
	index int
	name  string
}

// wireEntry pairs one manifest entry with its pending-job bookkeeping.
type wireEntry struct {
	mj bench.ManifestJob
	pj pendingJob
}

// suiteGroup ships jobs sharing a technology list, chunked so no single
// request exceeds the peer's per-request job or body caps; chunks run
// concurrently.
func (c *Client) suiteGroup(ctx context.Context, jobs []engine.Job, specs []*bench.JobSpec, idx []int, emit func(int, engine.Result)) {
	techs := specs[idx[0]].Technologies
	chunks := buildWireChunks(jobs, specs, idx)
	if len(chunks) == 1 {
		c.suitePost(ctx, techs, chunks[0], jobs, emit)
		return
	}
	var wg sync.WaitGroup
	for _, ch := range chunks {
		wg.Add(1)
		go func(ch []wireEntry) {
			defer wg.Done()
			c.suitePost(ctx, techs, ch, jobs, emit)
		}(ch)
	}
	wg.Wait()
}

// buildWireChunks renders the jobs at idx as manifest entries and
// splits them so no single request exceeds the peer's per-request job
// or body caps. Wire names are made unique across the whole group
// (duplicates get a "#n" suffix, undone before the row is emitted), so
// every row correlates to exactly the job that produced it even when a
// batch repeats a name with different work attached.
func buildWireChunks(jobs []engine.Job, specs []*bench.JobSpec, idx []int) [][]wireEntry {
	used := make(map[string]bool, len(idx))
	var chunks [][]wireEntry
	var cur []wireEntry
	size := 0
	for _, i := range idx {
		mj := wireJobOf(jobs[i], specs[i])
		orig := mj.Name
		for n := 2; used[mj.Name]; n++ {
			mj.Name = fmt.Sprintf("%s#%d", orig, n)
		}
		used[mj.Name] = true
		// Approximate this entry's marshalled footprint; 96 covers the
		// field names, quoting and numeric fields.
		esz := len(mj.Name) + len(mj.Source) + len(mj.Workload) + 96
		if len(cur) > 0 && (len(cur) >= maxJobsPerRequest || size+esz > maxRequestBytes) {
			chunks = append(chunks, cur)
			cur, size = nil, 0
		}
		cur = append(cur, wireEntry{mj: mj, pj: pendingJob{index: i, name: orig}})
		size += esz
	}
	return append(chunks, cur)
}

// suitePost issues one POST /v1/suite for a chunk, resolving each job
// as its NDJSON row arrives.
func (c *Client) suitePost(ctx context.Context, techs []string, entries []wireEntry, jobs []engine.Job, emit func(int, engine.Result)) {
	m := bench.Manifest{Technologies: techs}
	pending := make(map[string]pendingJob, len(entries))
	for _, e := range entries {
		m.Jobs = append(m.Jobs, e.mj)
		pending[e.mj.Name] = e.pj
	}
	body, err := json.Marshal(&m)
	if err != nil {
		c.fail(jobs, pending, emit, fmt.Errorf("remote %s: encode manifest: %w", c.base, err))
		return
	}

	resp, err := c.post(ctx, "/v1/suite", body)
	if err != nil {
		c.fail(jobs, pending, emit, c.classify(ctx, err))
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.fail(jobs, pending, emit, c.statusErr(resp))
		return
	}

	streamErr := scanRows(resp.Body, func(jr bench.JobReport) bool {
		p, ok := pending[jr.Name]
		if !ok {
			// A row for a job we never sent (or already resolved):
			// ignore it rather than mis-crediting some other job.
			return true
		}
		delete(pending, jr.Name)
		row := jr
		row.Name = p.name // undo any wire-level "#n" deduplication
		emit(p.index, c.rowResult(jobs[p.index].ID, &row))
		return len(pending) > 0
	})
	if streamErr != nil {
		streamErr = fmt.Errorf("remote %s: suite stream: %w", c.base, streamErr)
	}
	if len(pending) > 0 {
		if streamErr == nil {
			streamErr = fmt.Errorf("remote %s: suite stream ended with jobs unresolved", c.base)
		}
		c.fail(jobs, pending, emit, c.classify(ctx, streamErr))
	}
}

// DispatchChunk implements engine.ChunkDispatcher: the chunk travels
// over the acknowledged /v1/suite stream variant (?ack=1) — one request
// per distinct technology list, split further only if the chunk
// exceeds the peer's per-request caps — and every arriving NDJSON row
// acknowledges its job through ack. On a chunk-level failure (the peer
// unreachable, the stream severed before the peer's end
// acknowledgement) the unacknowledged jobs are left entirely
// unresolved and the classified error is returned: the caller — a
// chunking engine.Balancer — owns re-dispatching exactly those jobs,
// so rows that already arrived are never re-run.
func (c *Client) DispatchChunk(ctx context.Context, jobs []engine.Job, ack func(int, engine.Result)) error {
	c.submitted.Add(uint64(len(jobs)))
	if c.closed.Load() {
		c.rejected.Add(uint64(len(jobs)))
		return engine.ErrClosed
	}
	acked := make([]bool, len(jobs))
	wrap := func(i int, r engine.Result) {
		if i >= 0 && i < len(jobs) && !acked[i] {
			acked[i] = true
			ack(i, r)
		}
	}
	var valid []int
	specs := make([]*bench.JobSpec, len(jobs))
	for i, j := range jobs {
		spec, err := specOf(j)
		if err != nil {
			// Spec-less jobs cannot travel at all: acknowledge the
			// job-level failure inline so the balancer does not re-try
			// a job that can never reach a peer.
			c.failed.Add(1)
			wrap(i, engine.Result{ID: j.ID, Err: err, Worker: -1})
			continue
		}
		specs[i] = spec
		valid = append(valid, i)
	}
	groups := map[string][]int{}
	var order []string
	for _, i := range valid {
		key := strings.Join(specs[i].Technologies, "\x00")
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
	}
	// Groups run sequentially: one chunk is one dispatch decision, and
	// concurrency across chunks belongs to the balancer placing them.
	var chunkErr error
	for _, key := range order {
		idx := groups[key]
		techs := specs[idx[0]].Technologies
		for _, entries := range buildWireChunks(jobs, specs, idx) {
			if chunkErr = c.ackPost(ctx, techs, entries, jobs, wrap); chunkErr != nil {
				break
			}
		}
		if chunkErr != nil {
			break
		}
	}
	if chunkErr != nil {
		// Book the jobs this client never resolved so LocalStats stays
		// balanced; their verdicts belong to whichever backend re-runs
		// them.
		for i := range jobs {
			if !acked[i] {
				c.countFailure(chunkErr)
			}
		}
	}
	return chunkErr
}

// ackPost ships one wire chunk through POST /v1/suite?ack=1, resolving
// each job as its row arrives and watching for the peer's end
// acknowledgement — the marker that distinguishes a complete stream
// from a severed one.
func (c *Client) ackPost(ctx context.Context, techs []string, entries []wireEntry, jobs []engine.Job, ack func(int, engine.Result)) error {
	m := bench.Manifest{Technologies: techs}
	pending := make(map[string]pendingJob, len(entries))
	for _, e := range entries {
		m.Jobs = append(m.Jobs, e.mj)
		pending[e.mj.Name] = e.pj
	}
	body, err := json.Marshal(&m)
	if err != nil {
		return fmt.Errorf("remote %s: encode manifest: %w", c.base, err)
	}
	resp, err := c.post(ctx, "/v1/suite?ack=1", body)
	if err != nil {
		return c.classify(ctx, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return c.statusErr(resp)
	}
	ended := false
	streamErr := scanAckRows(resp.Body,
		func(jr bench.JobReport) bool {
			p, ok := pending[jr.Name]
			if !ok {
				// A row for a job we never sent (or already resolved):
				// ignore it rather than mis-crediting some other job.
				return true
			}
			delete(pending, jr.Name)
			row := jr
			row.Name = p.name // undo any wire-level "#n" deduplication
			ack(p.index, c.rowResult(jobs[p.index].ID, &row))
			return true // scan on to the end ack
		},
		func(a ackRow) bool {
			if a.Ack == "end" {
				ended = true
				return false
			}
			return true // "start" (and future kinds) just confirm liveness
		})
	switch {
	case streamErr != nil:
		return c.classify(ctx, fmt.Errorf("remote %s: chunk stream: %w", c.base, streamErr))
	case !ended && len(pending) > 0:
		return c.classify(ctx, fmt.Errorf("remote %s: chunk stream severed with %d jobs unacknowledged: %w",
			c.base, len(pending), engine.ErrUnavailable))
	case len(pending) > 0:
		// The peer signalled a clean end yet skipped rows — a peer-side
		// fault, resolved as backend-level failures so a balancer may
		// re-run them elsewhere.
		missErr := c.classify(ctx, fmt.Errorf("remote %s: peer ended chunk stream with %d jobs unresolved: %w",
			c.base, len(pending), engine.ErrUnavailable))
		for _, p := range pending {
			c.countFailure(missErr)
			ack(p.index, engine.Result{ID: jobs[p.index].ID, Err: missErr, Worker: -1})
		}
	}
	return nil
}

// ackRow is one acknowledgement line of the ?ack=1 /v1/suite stream
// variant (internal/serve's suiteAck, redefined here to keep
// serve → remote a one-way dependency): "start" when the peer accepted
// the chunk, "end" after the last result row. The end ack's absence is
// how a severed stream is told apart from a complete one.
type ackRow struct {
	Ack  string `json:"ack"`
	Jobs int    `json:"jobs,omitempty"`
	Rows int    `json:"rows,omitempty"`
}

// scanAckRows consumes the acknowledged NDJSON stream variant: result
// rows go to onRow, acknowledgement rows to onAck, and either handler
// returning false stops the scan cleanly. The row kind is detected by
// the "ack" field, which a JobReport never carries. Blank lines are
// skipped; a malformed or over-long line stops the scan with an error.
// Like scanRows this is the one parser of its stream, extracted so it
// can be fuzzed directly against arbitrary peer bytes.
func scanAckRows(r io.Reader, onRow func(bench.JobReport) bool, onAck func(ackRow) bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxRow)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Ack string `json:"ack"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return fmt.Errorf("malformed NDJSON row %.80q: %w", line, err)
		}
		if probe.Ack != "" {
			var a ackRow
			if err := json.Unmarshal(line, &a); err != nil {
				return fmt.Errorf("malformed ack row %.80q: %w", line, err)
			}
			if !onAck(a) {
				return nil
			}
			continue
		}
		var jr bench.JobReport
		if err := json.Unmarshal(line, &jr); err != nil {
			return fmt.Errorf("malformed NDJSON row %.80q: %w", line, err)
		}
		if !onRow(jr) {
			return nil
		}
	}
	return sc.Err()
}

// Capacity implements engine.CapacityReporter with a GET /v1/capacity
// scrape — the lightweight fast path the balancer's probe loop folds
// into chunk sizing — falling back to deriving the snapshot from
// /v1/stats for peers that predate the endpoint.
func (c *Client) Capacity(ctx context.Context) (engine.Capacity, error) {
	if c.closed.Load() {
		return engine.Capacity{}, engine.ErrClosed
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/capacity", nil)
	if err != nil {
		return engine.Capacity{}, fmt.Errorf("remote %s: capacity: %w", c.base, err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return engine.Capacity{}, fmt.Errorf("remote %s: capacity: %w: %w", c.base, engine.ErrUnavailable, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxRow))
		st, err := c.PeerStats(ctx)
		if err != nil {
			return engine.Capacity{}, err
		}
		return engine.CapacityFromStats(st), nil
	}
	if resp.StatusCode != http.StatusOK {
		return engine.Capacity{}, fmt.Errorf("remote %s: capacity: %w: %s", c.base, engine.ErrUnavailable, resp.Status)
	}
	var snap engine.Capacity
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxRow)).Decode(&snap); err != nil {
		return engine.Capacity{}, fmt.Errorf("remote %s: capacity: decode: %w", c.base, err)
	}
	return snap, nil
}

// scanRows consumes an NDJSON report stream, calling fn for each
// decoded row until fn returns false (the caller is satisfied) or the
// input ends. Blank lines are skipped; a malformed row or an over-long
// line (> maxRow) stops the scan with an error. This is the one row
// parser of the client, extracted so it can be fuzzed directly against
// arbitrary peer bytes.
func scanRows(r io.Reader, fn func(bench.JobReport) bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxRow)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var jr bench.JobReport
		if err := json.Unmarshal(line, &jr); err != nil {
			return fmt.Errorf("malformed NDJSON row %.80q: %w", line, err)
		}
		if !fn(jr) {
			return nil
		}
	}
	return sc.Err()
}

// wireJobOf renders one job as the manifest entry shipped to the peer:
// the spec's entry, defaulting the name to the job ID and forwarding an
// engine-level per-job timeout the spec did not already carry.
func wireJobOf(j engine.Job, spec *bench.JobSpec) bench.ManifestJob {
	mj := spec.Job
	if mj.Name == "" {
		mj.Name = j.ID
	}
	if mj.TimeoutMS == 0 && j.Timeout > 0 {
		mj.TimeoutMS = j.Timeout.Milliseconds()
	}
	return mj
}

// rowResult converts one peer report row into an engine result,
// preserving the peer's elapsed time and worker index.
func (c *Client) rowResult(id string, jr *bench.JobReport) engine.Result {
	r := engine.Result{
		ID:      id,
		Value:   jr,
		Elapsed: time.Duration(jr.ElapsedMS * float64(time.Millisecond)),
		Worker:  jr.Worker,
	}
	if jr.OK {
		c.completed.Add(1)
		return r
	}
	c.failed.Add(1)
	// Re-type the classified failures so errors.Is works the same
	// whether the job failed in-process or in a peer's NDJSON row —
	// "unavailable" in particular keeps failover composing across
	// serve→serve tiers (an upper Balancer re-runs the job elsewhere).
	switch jr.ErrorKind {
	case "closed":
		r.Err = fmt.Errorf("remote %s: job %q: %w: %s", c.base, jr.Name, engine.ErrClosed, jr.Error)
	case "timeout":
		r.Err = fmt.Errorf("remote %s: job %q: %w: %s", c.base, jr.Name, engine.ErrTimeout, jr.Error)
	case "unavailable":
		r.Err = fmt.Errorf("remote %s: job %q: %w: %s", c.base, jr.Name, engine.ErrUnavailable, jr.Error)
	default:
		r.Err = fmt.Errorf("remote %s: job %q: %s", c.base, jr.Name, jr.Error)
	}
	return r
}

// fail resolves every still-pending job with err, counting each one.
func (c *Client) fail(jobs []engine.Job, pending map[string]pendingJob, emit func(int, engine.Result), err error) {
	for _, p := range pending {
		c.countFailure(err)
		emit(p.index, engine.Result{ID: jobs[p.index].ID, Err: err, Worker: -1})
	}
}

// countFailure books one unresolved job as canceled (the caller's
// context ended) or failed (everything else), keeping LocalStats
// balanced the way engine.Stats documents.
func (c *Client) countFailure(err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		c.canceled.Add(1)
	} else {
		c.failed.Add(1)
	}
}

// classify folds the caller's context ending into the context's own
// error; anything else is a peer failure, wrapped with
// engine.ErrUnavailable (unless already carrying a typed verdict) so a
// Balancer knows the job itself never got a verdict and may be re-run
// on another backend.
func (c *Client) classify(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return fmt.Errorf("remote %s: %w", c.base, ctxErr)
	}
	if errors.Is(err, engine.ErrClosed) || errors.Is(err, engine.ErrTimeout) ||
		errors.Is(err, engine.ErrUnavailable) || errors.Is(err, ErrNotRemotable) {
		return err
	}
	return fmt.Errorf("%w: %w", engine.ErrUnavailable, err)
}

// statusErr renders a non-200 peer response, unwrapping the typed
// conditions the serve layer maps: 503 (peer draining/closed, or —
// when the body's error_kind says "unavailable" — a peer whose own
// backends are unreachable) and 504 (peer-side evaluation timeout).
// Distinguishing the two 503 kinds keeps errors.Is answers identical
// across serve→serve tiers.
func (c *Client) statusErr(resp *http.Response) error {
	var body struct {
		Error     string `json:"error"`
		ErrorKind string `json:"error_kind"`
	}
	json.NewDecoder(io.LimitReader(resp.Body, maxRow)).Decode(&body)
	msg := body.Error
	if msg == "" {
		msg = resp.Status
	}
	switch {
	case resp.StatusCode == http.StatusServiceUnavailable && body.ErrorKind == "unavailable":
		return fmt.Errorf("remote %s: %w: %s", c.base, engine.ErrUnavailable, msg)
	case resp.StatusCode == http.StatusServiceUnavailable:
		return fmt.Errorf("remote %s: %w: %s", c.base, engine.ErrClosed, msg)
	case resp.StatusCode == http.StatusGatewayTimeout:
		return fmt.Errorf("remote %s: %w: %s", c.base, engine.ErrTimeout, msg)
	default:
		return fmt.Errorf("remote %s: peer returned %d: %s", c.base, resp.StatusCode, msg)
	}
}

// post issues one POST, re-dialling on connect errors up to the retry
// budget with exponential backoff. Only errors raised before the peer
// accepted the connection are retried — once bytes may have flowed, the
// caller owns the failure (re-sending could double-evaluate).
func (c *Client) post(ctx context.Context, path string, body []byte) (*http.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("remote %s: %w", c.base, err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.hc.Do(req)
		if err == nil {
			return resp, nil
		}
		lastErr = fmt.Errorf("remote %s: %w", c.base, err)
		if attempt >= c.retries || !isConnectError(err) || ctx.Err() != nil {
			return nil, lastErr
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("remote %s: %w", c.base, ctx.Err())
		case <-time.After(c.retryDelay << attempt):
		}
	}
}

// isConnectError reports whether err happened while dialling — the peer
// was down or unreachable, the retryable window where no request bytes
// were accepted.
func isConnectError(err error) bool {
	var op *net.OpError
	if errors.As(err, &op) && op.Op == "dial" {
		return true
	}
	return errors.Is(err, syscall.ECONNREFUSED)
}

// SplitPeerList parses a comma-separated peer-URL flag value, dropping
// blanks so trailing commas are harmless — shared by the art9-batch and
// art9-serve CLIs.
func SplitPeerList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// optionNames maps each fleet-configuration knob to the name a user
// knows it by, so the one validation rule set renders identical
// diagnostics for library callers (functional options) and CLI
// operators (flags).
type optionNames struct {
	failover, chunk, maxRetries, healthInterval   string
	autoscale, standbyPeers, shards, peers        string
	scaleThresholds, scaleCooldown, scaleInterval string
	cache, cachePeers, cacheMaxBytes, cacheEpoch  string
}

var libraryNames = optionNames{
	failover: "WithFailover", chunk: "WithChunk",
	maxRetries: "WithMaxRetries", healthInterval: "WithHealthInterval",
	autoscale: "WithAutoscale", standbyPeers: "WithStandbyPeers",
	shards: "WithShards", peers: "WithPeers",
	scaleThresholds: "WithScaleThresholds",
	scaleCooldown:   "WithScaleCooldown", scaleInterval: "WithScaleInterval",
	cache: "WithResultCache", cachePeers: "WithCachePeers",
	cacheMaxBytes: "WithCacheMaxBytes", cacheEpoch: "WithCacheEpoch",
}

var flagNames = optionNames{
	failover: "-failover", chunk: "-chunk",
	maxRetries: "-max-retries", healthInterval: "-health-interval",
	autoscale: "-autoscale-min/-autoscale-max", standbyPeers: "-standby-peers",
	shards: "-shards", peers: "-peers",
	scaleThresholds: "-scale-up/-scale-down",
	scaleCooldown:   "-scale-cooldown", scaleInterval: "-scale-interval",
	cache: "-cache", cachePeers: "-cache-peers",
	cacheMaxBytes: "-cache-max-bytes", cacheEpoch: "-cache-epoch",
}

// ValidateConfig vets a BackendConfig's option coherence with library
// naming (WithFailover, WithChunk, ...). NewBackendWith applies it, so
// art9.New and serve.New reject incoherent combinations with an error
// wrapping engine.ErrInvalidOptions instead of silently ignoring
// options. The warning (non-fatal advice, e.g. failover over a single
// backend) is surfaced by the CLIs and ignored by the library.
func ValidateConfig(cfg BackendConfig) (warning string, err error) {
	return validateTopology(cfg, libraryNames)
}

// ValidateFleetFlags vets the same rule set with CLI flag naming — the
// one validation behind both art9-batch and art9-serve. Each CLI folds
// its flag values into a BackendConfig (its -shards default rides in as
// Shards) and reports the warning on stderr.
func ValidateFleetFlags(cfg BackendConfig) (warning string, err error) {
	return validateTopology(cfg, flagNames)
}

// validateTopology is the one rule set: options that only tune an
// absent front (failover tuning without Failover, scale tuning or
// standby peers without Autoscale) error out, since silently ignoring
// them would leave the user believing they are in effect; incoherent
// autoscale bounds and thresholds error out; topologies that merely
// waste a front (failover or autoscale with nothing to move jobs
// between) warn. Hard errors wrap engine.ErrInvalidOptions.
func validateTopology(cfg BackendConfig, n optionNames) (warning string, err error) {
	invalid := func(format string, args ...any) error {
		return fmt.Errorf(format+": %w", append(args, engine.ErrInvalidOptions)...)
	}
	if cfg.Chunk < 0 {
		return "", invalid("%s must be >= 0 (got %d)", n.chunk, cfg.Chunk)
	}
	if cfg.CacheMaxBytes < 0 {
		return "", invalid("%s must be >= 0 (got %d)", n.cacheMaxBytes, cfg.CacheMaxBytes)
	}
	if !cfg.Cache && cfg.CacheStore == nil {
		var orphaned []string
		if len(cfg.CachePeers) > 0 {
			orphaned = append(orphaned, n.cachePeers)
		}
		if cfg.CacheMaxBytes != 0 {
			orphaned = append(orphaned, n.cacheMaxBytes)
		}
		if cfg.CacheEpoch != 0 {
			orphaned = append(orphaned, n.cacheEpoch)
		}
		if len(orphaned) > 0 {
			return "", invalid("%s: only meaningful with %s (otherwise silently ignored); add %s or drop it",
				strings.Join(orphaned, ", "), n.cache, n.cache)
		}
	}
	autoscale := cfg.AutoscaleMin != 0 || cfg.AutoscaleMax != 0
	if !cfg.Failover {
		var orphaned []string
		if cfg.Chunk > 0 {
			orphaned = append(orphaned, n.chunk)
		}
		if cfg.MaxRetries != 0 {
			orphaned = append(orphaned, n.maxRetries)
		}
		if cfg.HealthInterval != 0 {
			orphaned = append(orphaned, n.healthInterval)
		}
		if len(orphaned) > 0 {
			return "", invalid("%s: only meaningful with %s (otherwise silently ignored); add %s or drop it",
				strings.Join(orphaned, ", "), n.failover, n.failover)
		}
	}
	if !autoscale {
		var orphaned []string
		if len(cfg.StandbyPeers) > 0 {
			orphaned = append(orphaned, n.standbyPeers)
		}
		if cfg.ScaleUpThreshold != 0 || cfg.ScaleDownThreshold != 0 {
			orphaned = append(orphaned, n.scaleThresholds)
		}
		if cfg.ScaleCooldown != 0 {
			orphaned = append(orphaned, n.scaleCooldown)
		}
		if cfg.ScaleInterval != 0 {
			orphaned = append(orphaned, n.scaleInterval)
		}
		if len(orphaned) > 0 {
			return "", invalid("%s: only meaningful with %s (otherwise silently ignored); add %s or drop it",
				strings.Join(orphaned, ", "), n.autoscale, n.autoscale)
		}
	}
	if autoscale {
		if cfg.AutoscaleMin < 0 || cfg.AutoscaleMax < 0 {
			return "", invalid("%s bounds must be >= 0 (got min %d, max %d)",
				n.autoscale, cfg.AutoscaleMin, cfg.AutoscaleMax)
		}
		if cfg.AutoscaleMax < cfg.AutoscaleMin {
			return "", invalid("%s bounds inverted: max %d < min %d",
				n.autoscale, cfg.AutoscaleMax, cfg.AutoscaleMin)
		}
		// The autoscaler owns its topology — an elastic local pool plus
		// standby peers. Fixed shard counts, fixed peer sets, and a
		// second dispatch front cannot compose with it coherently.
		if cfg.Failover {
			return "", invalid("%s and %s are both dispatch fronts; use %s for an elastic pool or %s for a fixed fleet",
				n.autoscale, n.failover, n.autoscale, n.failover)
		}
		if cfg.Shards > 0 {
			return "", invalid("%s fixes the shard count, which contradicts %s; drop %s (the pool floats between the bounds)",
				n.shards, n.autoscale, n.shards)
		}
		if len(cfg.Peers) > 0 {
			return "", invalid("%s is a fixed backend set, which contradicts %s; list elastic peers with %s instead",
				n.peers, n.autoscale, n.standbyPeers)
		}
		up, down := cfg.ScaleUpThreshold, cfg.ScaleDownThreshold
		if up < 0 || up > 1 || down < 0 || down >= 1 {
			return "", invalid("%s thresholds must be within [0,1] with down < 1 (got up %g, down %g)",
				n.scaleThresholds, up, down)
		}
		if up != 0 && down != 0 && down >= up {
			return "", invalid("%s scale-down threshold %g must be below the scale-up threshold %g (hysteresis needs a gap)",
				n.scaleThresholds, down, up)
		}
		if cfg.AutoscaleMin == cfg.AutoscaleMax && len(cfg.StandbyPeers) == 0 {
			return fmt.Sprintf("%s bounds pin the pool at %d with no standby peers; nothing will ever scale",
				n.autoscale, cfg.AutoscaleMax), nil
		}
		return "", nil
	}
	if cfg.Failover {
		backends := cfg.Shards + len(cfg.Peers)
		if cfg.Shards <= 0 && len(cfg.Peers) == 0 {
			backends = 1 // the implicit single local shard
		}
		if backends <= 1 {
			return fmt.Sprintf("%s over a single backend has nothing to fail over to; add %s or %s",
				n.failover, n.peers, n.shards), nil
		}
	}
	return "", nil
}

// BackendConfig describes the backend topology NewBackendWith builds —
// the one place the composition rules live so art9.New and serve.New
// cannot drift.
type BackendConfig struct {
	// Shards is the number of local engines (0: one, unless Peers makes
	// a proxy-only topology meaningful).
	Shards int
	// Engine configures each local shard.
	Engine engine.Options
	// Peers lists art9-serve base URLs, one remote Client each.
	Peers []string
	// Failover fronts the backends with a health-aware engine.Balancer
	// (least-loaded dispatch, probe loop, job-level failover) instead of
	// the round-robin ShardSet.
	Failover bool
	// HealthInterval and MaxRetries tune the Balancer (engine defaults
	// apply at zero); ignored without Failover.
	HealthInterval time.Duration
	MaxRetries     int
	// Chunk makes the Balancer dispatch in chunks of up to this many
	// jobs — remote backends receive a chunk as one acknowledged
	// /v1/suite stream instead of per-job /v1/eval requests, sized down
	// by scraped live capacity. 0 keeps per-job placement; ignored
	// without Failover.
	Chunk int
	// AutoscaleMin and AutoscaleMax, when either is non-zero, select
	// the elastic engine.Autoscaler front instead of a fixed topology:
	// the local shard count floats between the bounds (min 0 selects 1)
	// driven by queue depth and utilization. Incompatible with Shards,
	// Peers and Failover — the autoscaler owns its topology.
	AutoscaleMin, AutoscaleMax int
	// StandbyPeers lists art9-serve base URLs the autoscaler dials only
	// when the local bound is exhausted and retires first when load
	// drops. URLs are validated at construction; connections happen at
	// scale-up. Requires autoscaling.
	StandbyPeers []string
	// ScaleUpThreshold and ScaleDownThreshold are the hysteresis bounds
	// on pool utilization (0 selects 0.8 and 0.25); ScaleCooldown is
	// the minimum gap between scale events (0 selects 2s, negative
	// none) and ScaleInterval the evaluation period (0 selects 1s,
	// negative manual-only). All require autoscaling.
	ScaleUpThreshold, ScaleDownThreshold float64
	ScaleCooldown, ScaleInterval         time.Duration
	// Cache enables the fleet-wide result cache: the dispatch front
	// consults a content-addressed store before placing a job, so a hit
	// short-circuits evaluation entirely (Worker -1). The store is a
	// bounded local LRU (CacheMaxBytes, 0 selects the rescache default)
	// fronting one /v1/cache client per CachePeers URL. CachePeers and
	// CacheMaxBytes require Cache.
	Cache         bool
	CacheMaxBytes int64
	CachePeers    []string
	// CacheEpoch is the fleet-wide invalidation generation: it is
	// stamped onto every /v1/cache exchange and folded into the tier,
	// so bumping it abandons every previously cached row without
	// touching peers still on the old generation (their rows become
	// standing misses). Requires Cache.
	CacheEpoch uint64
	// CacheStore substitutes a pre-built store (serve passes its own
	// tier here so the HTTP endpoints and the dispatch path share one
	// cache); it implies Cache and ignores CacheMaxBytes/CachePeers/
	// CacheEpoch.
	CacheStore rescache.Cache
}

// NewBackend assembles the standard backend topology shared by art9.New
// and serve.New: localShards engines configured by opts plus one Client
// per peer URL, composed behind a ShardSet when there is more than one
// backend. Cache fields go private exactly when backends multiply, so a
// solitary local pool keeps the process-wide shared caches. With zero
// shards and zero peers it falls back to one local engine.
func NewBackend(localShards int, opts engine.Options, peers []string) (engine.Evaluator, error) {
	return NewBackendWith(BackendConfig{Shards: localShards, Engine: opts, Peers: peers})
}

// NewBackendWith is NewBackend with the full topology configuration,
// including the health-aware failover front and the elastic autoscaler
// front. Incoherent configurations are rejected through ValidateConfig
// with an error wrapping engine.ErrInvalidOptions.
func NewBackendWith(cfg BackendConfig) (engine.Evaluator, error) {
	if _, err := ValidateConfig(cfg); err != nil {
		return nil, err
	}
	// The result cache attaches to the dispatch FRONT only — the
	// autoscaler or balancer when one fronts the topology, otherwise
	// each local engine — so one lookup answers one job and hit/miss
	// counters are not doubled by inner layers re-consulting the store.
	var resultCache engine.ResultCache
	if cfg.Cache || cfg.CacheStore != nil {
		store := cfg.CacheStore
		if store == nil {
			tier, err := NewResultCacheWith(ResultCacheConfig{
				MaxBytes: cfg.CacheMaxBytes,
				Peers:    cfg.CachePeers,
				Epoch:    cfg.CacheEpoch,
			})
			if err != nil {
				return nil, err
			}
			store = tier
		}
		resultCache = bench.NewResultCache(store)
	}
	if cfg.AutoscaleMin != 0 || cfg.AutoscaleMax != 0 {
		var standbys []engine.StandbyBackend
		for _, p := range cfg.StandbyPeers {
			p := p
			// Validate eagerly so a misconfigured fleet fails at
			// construction, not at the first burst; the probe client is
			// discarded and each recruitment dials fresh.
			probe, err := New(p)
			if err != nil {
				return nil, err
			}
			// The probe never carried a job, so its close verdict is
			// uninteresting by construction.
			_ = probe.Close()
			standbys = append(standbys, engine.StandbyBackend{
				Name: p,
				Dial: func() (engine.Evaluator, error) { return New(p) },
			})
		}
		return engine.NewAutoscaler(engine.AutoscalerOptions{
			Min:           cfg.AutoscaleMin,
			Max:           cfg.AutoscaleMax,
			Engine:        cfg.Engine,
			Standby:       standbys,
			UpThreshold:   cfg.ScaleUpThreshold,
			DownThreshold: cfg.ScaleDownThreshold,
			Cooldown:      cfg.ScaleCooldown,
			Interval:      cfg.ScaleInterval,
			Cache:         resultCache,
		}), nil
	}
	localShards := cfg.Shards
	if localShards < 0 {
		localShards = 0
	}
	if localShards == 0 && len(cfg.Peers) == 0 {
		localShards = 1
	}
	opts := cfg.Engine
	opts.PrivateCaches = localShards+len(cfg.Peers) > 1
	if resultCache != nil && !cfg.Failover {
		// No front to attach the cache to: each local engine consults
		// it before running a job (remote shards stay pass-through).
		opts.Cache = resultCache
	}
	var backends []engine.Evaluator
	for i := 0; i < localShards; i++ {
		backends = append(backends, engine.New(opts))
	}
	for _, p := range cfg.Peers {
		client, err := New(p)
		if err != nil {
			for _, b := range backends {
				// Construction failed before any job was submitted;
				// the dial error is the one worth returning.
				_ = b.Close()
			}
			return nil, err
		}
		backends = append(backends, client)
	}
	if cfg.Failover {
		return engine.NewBalancer(engine.BalancerOptions{
			MaxRetries:     cfg.MaxRetries,
			HealthInterval: cfg.HealthInterval,
			Chunk:          cfg.Chunk,
			Cache:          resultCache,
		}, backends...), nil
	}
	if len(backends) == 1 {
		return backends[0], nil
	}
	return engine.NewShardSetOf(backends...), nil
}
