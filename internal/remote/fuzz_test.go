package remote

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/bench"
)

// FuzzScanRows throws arbitrary peer bytes at the client's NDJSON row
// parser — the surface a malicious or dying art9-serve peer writes to.
// Invariants: never panic, never error on blank input, stop cleanly
// when the row handler is satisfied, and decode every row it reports.
// Seed corpus: f.Add cases below plus testdata/fuzz/FuzzScanRows.
func FuzzScanRows(f *testing.F) {
	f.Add([]byte(`{"name":"a","ok":true,"elapsed_ms":1.5,"worker":3}` + "\n"))
	f.Add([]byte("{\"name\":\"a\",\"ok\":true}\n\n{\"name\":\"b\",\"ok\":false,\"error\":\"boom\",\"error_kind\":\"timeout\"}\n"))
	f.Add([]byte(`{"name": nonsense`))
	f.Add([]byte("\n\n  \n"))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`"just a string"`))
	f.Add([]byte(`{"name":"dup"}` + "\n" + `{"name":"dup"}` + "\n"))
	f.Add([]byte(`{"name":"a","metrics":{"checksum":-1},"implementations":[{"tech":"cntfet32"}]}`))
	f.Add(bytes.Repeat([]byte("x"), 70<<10))                // one over-long unterminated token
	f.Add([]byte(strings.Repeat("{\"name\":\"r\"}\n", 64))) // many rows

	f.Fuzz(func(t *testing.T, data []byte) {
		rows := 0
		err := scanRows(bytes.NewReader(data), func(jr bench.JobReport) bool {
			rows++
			return true
		})
		if err == nil && rows == 0 && len(bytes.TrimSpace(data)) > 0 {
			// Every non-blank line must either decode into a row or
			// stop the scan with an error; swallowing peer bytes
			// silently would let a dying peer's suite "succeed" short.
			t.Fatalf("input %.80q produced neither rows nor an error", data)
		}
		if err != nil && len(bytes.TrimSpace(data)) == 0 {
			t.Fatalf("blank input errored: %v", err)
		}

		// The early-stop path must never error: the first row decided.
		stopped := 0
		if stopErr := scanRows(bytes.NewReader(data), func(bench.JobReport) bool {
			stopped++
			return false
		}); stopped > 0 && stopErr != nil {
			t.Fatalf("satisfied scan still errored: %v", stopErr)
		}
		if stopped > 1 {
			t.Fatalf("scan continued after the handler was satisfied (%d rows)", stopped)
		}
	})
}

// FuzzScanCacheRows throws arbitrary peer bytes at the /v1/cache/lookup
// reply parser — the surface a malicious or dying cache peer writes to,
// where a mis-parsed line could replay the wrong cached value under a
// caller's key. Invariants: never panic, never error on blank input,
// classify every non-blank line as exactly one of cache row / scan
// error, and stop cleanly when the handler is satisfied. Seed corpus:
// f.Add cases below plus testdata/fuzz/FuzzScanCacheRows.
func FuzzScanCacheRows(f *testing.F) {
	f.Add([]byte(`{"key":"ab12","found":true,"value":{"ok":true,"worker":-1}}` + "\n"))
	f.Add([]byte("{\"key\":\"a\",\"found\":false}\n\n{\"key\":\"b\",\"found\":true,\"value\":7}\n"))
	f.Add([]byte(`{"key":"a","found":true}`))            // found without a value
	f.Add([]byte(`{"key":"","found":true,"value":{}}`))  // empty key
	f.Add([]byte(`{"key":5}`))                           // wrong key type
	f.Add([]byte(`{"key":"a","value":"not an object"}`)) // raw value kinds pass through
	f.Add([]byte("{\"key\": nonsense"))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("\n  \n\n"))
	f.Add([]byte(strings.Repeat("{\"key\":\"r\",\"found\":true,\"value\":0}\n", 64)))
	f.Add(bytes.Repeat([]byte("z"), 70<<10)) // one over-long unterminated token

	f.Fuzz(func(t *testing.T, data []byte) {
		rows := 0
		err := scanCacheRows(bytes.NewReader(data), func(r cacheRow) bool {
			rows++
			// A reported value must be valid JSON or absent: anything
			// else means the parser handed through bytes Unmarshal
			// would have rejected.
			if len(r.Value) > 0 && !json.Valid(r.Value) {
				t.Fatalf("row carried invalid JSON value %.80q", r.Value)
			}
			return true
		})
		if err == nil && rows == 0 && len(bytes.TrimSpace(data)) > 0 {
			t.Fatalf("input %.80q produced neither rows nor an error", data)
		}
		if err != nil && len(bytes.TrimSpace(data)) == 0 {
			t.Fatalf("blank input errored: %v", err)
		}

		// The early-stop path must never error: the first row decided.
		stopped := 0
		if stopErr := scanCacheRows(bytes.NewReader(data), func(cacheRow) bool {
			stopped++
			return false
		}); stopped > 0 && stopErr != nil {
			t.Fatalf("satisfied scan still errored: %v", stopErr)
		}
		if stopped > 1 {
			t.Fatalf("scan continued after the handler was satisfied (%d rows)", stopped)
		}
	})
}

// FuzzScanAckRows throws arbitrary peer bytes at the acknowledged
// stream variant's parser — the surface a malicious or dying peer
// writes to during chunked dispatch, where a mis-parsed line could
// resolve the wrong job or fake a clean chunk end. Invariants: never
// panic, never error on blank input, classify every non-blank line as
// exactly one of ack row / result row / scan error, and stop cleanly
// when a handler is satisfied. Seed corpus: f.Add cases below plus
// testdata/fuzz/FuzzScanAckRows.
func FuzzScanAckRows(f *testing.F) {
	f.Add([]byte("{\"ack\":\"start\",\"jobs\":2}\n{\"name\":\"a\",\"ok\":true}\n{\"name\":\"b\",\"ok\":true}\n{\"ack\":\"end\",\"rows\":2}\n"))
	f.Add([]byte(`{"ack":"start","jobs":3}` + "\n" + `{"name":"a","ok":true}`)) // severed before the end ack
	f.Add([]byte(`{"ack":"end","rows":0}`))
	f.Add([]byte(`{"ack":"flush"}` + "\n")) // unknown ack kinds must pass through, not error
	f.Add([]byte(`{"ack":5}`))              // wrong ack type
	f.Add([]byte(`{"ack":""}` + "\n"))      // empty ack is a result row, not an ack
	f.Add([]byte(`{"name":"a","ack":"end"}`))
	f.Add([]byte("{\"name\": nonsense"))
	f.Add([]byte("\n  \n\n"))
	f.Add([]byte(strings.Repeat("{\"ack\":\"start\"}\n{\"name\":\"r\"}\n", 32)))
	f.Add(bytes.Repeat([]byte("y"), 70<<10)) // one over-long unterminated token

	f.Fuzz(func(t *testing.T, data []byte) {
		rows, acks := 0, 0
		err := scanAckRows(bytes.NewReader(data),
			func(bench.JobReport) bool { rows++; return true },
			func(a ackRow) bool {
				if a.Ack == "" {
					t.Fatal("ack handler called with an empty ack kind")
				}
				acks++
				return true
			})
		if err == nil && rows == 0 && acks == 0 && len(bytes.TrimSpace(data)) > 0 {
			t.Fatalf("input %.80q produced neither rows, acks, nor an error", data)
		}
		if err != nil && len(bytes.TrimSpace(data)) == 0 {
			t.Fatalf("blank input errored: %v", err)
		}

		// Either handler returning false must stop the scan cleanly.
		stopped := 0
		if stopErr := scanAckRows(bytes.NewReader(data),
			func(bench.JobReport) bool { stopped++; return false },
			func(ackRow) bool { stopped++; return false }); stopped > 0 && stopErr != nil {
			t.Fatalf("satisfied scan still errored: %v", stopErr)
		}
		if stopped > 1 {
			t.Fatalf("scan continued after a handler was satisfied (%d lines)", stopped)
		}
	})
}
