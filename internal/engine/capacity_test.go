package engine

import (
	"context"
	"errors"
	"testing"
)

// TestCapacityFromStats pins the counter→snapshot derivation every
// capacity consumer (chunk sizing, the autoscaler's load signal,
// /v1/capacity) relies on, including the degenerate corners: a
// zero-worker pool puts all in-flight work in the queue, the queue
// only appears once busy exceeds the pool, and counters that resolved
// more than they submitted (a torn multi-counter read) clamp to idle
// instead of going negative.
func TestCapacityFromStats(t *testing.T) {
	tests := []struct {
		name string
		st   Stats
		want Capacity
	}{
		{name: "idle pool",
			st:   Stats{Workers: 4},
			want: Capacity{Workers: 4, Free: 4}},
		{name: "partially busy",
			st:   Stats{Workers: 4, Submitted: 10, Completed: 7, Failed: 1},
			want: Capacity{Workers: 4, Busy: 2, Free: 2}},
		{name: "saturated, no queue",
			st:   Stats{Workers: 3, Submitted: 3},
			want: Capacity{Workers: 3, Busy: 3}},
		{name: "queue beyond the pool",
			st:   Stats{Workers: 2, Submitted: 9, Completed: 2, Canceled: 1},
			want: Capacity{Workers: 2, Busy: 6, Queue: 4}},
		{name: "zero workers is pure queue",
			st:   Stats{Workers: 0, Submitted: 5, Completed: 2},
			want: Capacity{Workers: 0, Busy: 3, Queue: 3}},
		{name: "zero workers idle",
			st:   Stats{Workers: 0},
			want: Capacity{}},
		{name: "every verdict kind counts as resolved",
			st: Stats{Workers: 8, Submitted: 10,
				Completed: 4, Failed: 3, Canceled: 2, Rejected: 1},
			want: Capacity{Workers: 8, Free: 8}},
		{name: "resolved beyond submitted clamps to idle",
			st:   Stats{Workers: 2, Submitted: 3, Completed: 5},
			want: Capacity{Workers: 2, Free: 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CapacityFromStats(tt.st); got != tt.want {
				t.Errorf("CapacityFromStats(%+v) = %+v, want %+v", tt.st, got, tt.want)
			}
		})
	}
}

// failingCapacity is an Evaluator whose capacity query always errors —
// the shape of a peer whose /v1/capacity and /v1/stats scrapes both
// failed.
type failingCapacity struct {
	Evaluator
}

func (failingCapacity) Capacity(context.Context) (Capacity, error) {
	return Capacity{}, errors.New("scrape failed")
}

func (failingCapacity) LocalStats() Stats { return Stats{Workers: 2, Submitted: 1} }

// TestLocalCapacityIgnoresScrapeFailure pins the fallback contract:
// LocalCapacity never performs (or propagates) a network scrape — a
// backend whose CapacityReporter fails still yields a snapshot derived
// from its process-local counters, so liveness probes and /v1/capacity
// stay network-free.
func TestLocalCapacityIgnoresScrapeFailure(t *testing.T) {
	inner := New(Options{Workers: 2})
	defer inner.Close()
	ev := failingCapacity{Evaluator: inner}

	got := LocalCapacity(ev)
	want := Capacity{Workers: 2, Busy: 1, Free: 1}
	if got != want {
		t.Errorf("LocalCapacity = %+v, want %+v (from LocalStats, not the failing scrape)", got, want)
	}
}
