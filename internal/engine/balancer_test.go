package engine_test

// The fault-injection suite of the health-aware Balancer: every
// scenario drives scripted faulttest backends (dying mid-stream,
// all-down, slow, wedged) and asserts the property the balancer exists
// for — the merged result set of a faulty fleet is identical to a
// healthy single-engine run, resolved exactly once per job, within a
// bounded retry budget. Job sets, result rendering and the healthy
// reference come from the shared scenariotest harness — which also runs
// the full topology × fault matrix — leaving this file the
// balancer-specific property tests. Run under -race in CI, twice
// (-count=2).

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/engine/faulttest"
	"repro/internal/engine/scenariotest"
)

func newBalancer(t *testing.T, opts engine.BalancerOptions, backends ...engine.Evaluator) *engine.Balancer {
	t.Helper()
	if opts.HealthInterval == 0 {
		opts.HealthInterval = -1 // deterministic: probe only via ProbeNow
	}
	b := engine.NewBalancer(opts, backends...)
	t.Cleanup(func() { b.Close() })
	return b
}

// TestBalancerHealthyMatchesSingleEngine pins the no-fault baseline:
// balanced dispatch over two live backends yields exactly the healthy
// single-engine result set, via both Run and Stream.
func TestBalancerHealthyMatchesSingleEngine(t *testing.T) {
	const n = 12
	want := scenariotest.Reference(t, scenariotest.Jobs(n))

	b := newBalancer(t, engine.BalancerOptions{},
		engine.New(engine.Options{Workers: 2, PrivateCaches: true}),
		engine.New(engine.Options{Workers: 2, PrivateCaches: true}))

	rs, err := b.Run(context.Background(), scenariotest.Jobs(n))
	if err != nil {
		t.Fatal(err)
	}
	if got := scenariotest.Render(t, rs); got != want {
		t.Errorf("Run result set diverged from healthy single engine:\ngot:\n%s\nwant:\n%s", got, want)
	}

	var streamed []engine.Result
	for r := range b.Stream(context.Background(), scenariotest.Jobs(n)) {
		streamed = append(streamed, r)
	}
	if got := scenariotest.Render(t, streamed); got != want {
		t.Errorf("Stream result set diverged from healthy single engine:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestBalancerFailoverBackendDiesMidSuite is the headline scenario: one
// of two backends executes a couple of jobs and dies mid-suite; the
// suite must still resolve completely, deduplicated, identical to a
// healthy run, and the balancer must record the failovers.
func TestBalancerFailoverBackendDiesMidSuite(t *testing.T) {
	const n = 16
	want := scenariotest.Reference(t, scenariotest.Jobs(n))

	for _, mode := range []string{"run", "stream"} {
		t.Run(mode, func(t *testing.T) {
			// Width 2 guarantees the initial dispatch burst hands the
			// dying backend two jobs — one executes, the second trips
			// the scripted death mid-suite under any scheduling — and
			// the 10ms job body keeps dispatch rounds stable so the
			// death lands while most of the suite is still pending.
			flaky := faulttest.New("dying-peer").Width(2).FailAfter(1, nil)
			b := newBalancer(t, engine.BalancerOptions{},
				flaky,
				engine.New(engine.Options{Workers: 2, PrivateCaches: true}))

			var rs []engine.Result
			if mode == "run" {
				var err error
				rs, err = b.Run(context.Background(), scenariotest.SlowJobs(n, 10*time.Millisecond))
				if err != nil {
					t.Fatal(err)
				}
			} else {
				for r := range b.Stream(context.Background(), scenariotest.SlowJobs(n, 10*time.Millisecond)) {
					rs = append(rs, r)
				}
			}

			if len(rs) != n {
				t.Fatalf("resolved %d results for %d jobs", len(rs), n)
			}
			seen := map[string]int{}
			for _, r := range rs {
				seen[r.ID]++
			}
			for id, c := range seen {
				if c != 1 {
					t.Errorf("job %s resolved %d times, want exactly once", id, c)
				}
			}
			if got := scenariotest.Render(t, rs); got != want {
				t.Errorf("faulty-fleet result set diverged from healthy run:\ngot:\n%s\nwant:\n%s", got, want)
			}

			var failovers uint64
			var flakyDown bool
			for _, h := range b.Health() {
				failovers += h.Failovers
				if h.Name == "dying-peer" {
					flakyDown = !h.Healthy
				}
			}
			if failovers == 0 {
				t.Error("balancer recorded no failovers though a backend died mid-suite")
			}
			if !flakyDown {
				t.Error("dead backend still marked healthy after failing jobs")
			}
			if b.Retries() == 0 {
				t.Error("balancer recorded no retries though jobs were re-dispatched")
			}
		})
	}
}

// TestBalancerAllBackendsDown pins the bounded-failure path: with every
// backend dead, each job resolves (no hang) with a retryable error, and
// the total attempts stay inside jobs × (1 + MaxRetries).
func TestBalancerAllBackendsDown(t *testing.T) {
	const n, retries = 6, 2
	f1 := faulttest.New("down-1").FailAfter(0, nil)
	f2 := faulttest.New("down-2").FailAfter(0, nil)
	b := newBalancer(t, engine.BalancerOptions{MaxRetries: retries}, f1, f2)

	done := make(chan struct{})
	var rs []engine.Result
	go func() {
		defer close(done)
		rs, _ = b.Run(context.Background(), scenariotest.Jobs(n))
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("all-backends-down batch hung instead of resolving")
	}

	for _, r := range rs {
		if r.Err == nil {
			t.Fatalf("job %s succeeded on a fleet with every backend down", r.ID)
		}
		if !engine.Retryable(r.Err) {
			t.Errorf("job %s failed with non-backend error %v", r.ID, r.Err)
		}
	}
	attempts := f1.Stats().Submitted + f2.Stats().Submitted
	if max := uint64(n * (1 + retries)); attempts > max {
		t.Errorf("fleet saw %d attempts for %d jobs, budget allows at most %d", attempts, n, max)
	}
	for _, h := range b.Health() {
		if h.Healthy {
			t.Errorf("backend %s still marked healthy though dead on arrival", h.Name)
		}
	}
}

// TestBalancerSlowBackendDoesNotStarveSuite pins least-loaded dispatch:
// a slow-but-correct backend (width 1, 150ms per job) must hold only
// the job it is running while the fast backend carries the rest, so the
// suite finishes far sooner than the slow backend serializing it would.
func TestBalancerSlowBackendDoesNotStarveSuite(t *testing.T) {
	const n = 20
	want := scenariotest.Reference(t, scenariotest.Jobs(n))
	slow := faulttest.New("slow-peer").Delay(150 * time.Millisecond).Width(1)
	b := newBalancer(t, engine.BalancerOptions{},
		slow,
		engine.New(engine.Options{Workers: 4, PrivateCaches: true}))

	start := time.Now()
	rs, err := b.Run(context.Background(), scenariotest.Jobs(n))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	if got := scenariotest.Render(t, rs); got != want {
		t.Errorf("slow-peer result set diverged from healthy run:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Serialized through the slow peer the suite would take n×150ms = 3s.
	// The generous half-budget bound still proves the fast backend
	// carried the bulk without making the test timing-fragile.
	if budget := time.Duration(n) * 150 * time.Millisecond / 2; elapsed > budget {
		t.Errorf("suite took %v; slow peer starved dispatch (budget %v)", elapsed, budget)
	}
	if exec := slow.Executed(); exec > n/2 {
		t.Errorf("slow width-1 backend executed %d of %d jobs; least-loaded dispatch failed", exec, n)
	}
}

// TestBalancerCancelDuringFailover wedges the only retry target and
// cancels mid-failover: every job must still resolve exactly once —
// with the context error, never a hang — and the stream must close.
func TestBalancerCancelDuringFailover(t *testing.T) {
	const n = 4
	dead := faulttest.New("dead").FailAfter(0, nil)
	wedged := faulttest.New("wedged").StallAfter(0)
	b := newBalancer(t, engine.BalancerOptions{MaxRetries: 3}, dead, wedged)

	ctx, cancel := context.WithCancel(context.Background())
	ch := b.Stream(ctx, scenariotest.Jobs(n))
	// Let dispatch reach the wedged backend, then cancel mid-failover.
	time.Sleep(50 * time.Millisecond)
	cancel()

	var rs []engine.Result
	deadline := time.After(10 * time.Second)
	for {
		select {
		case r, ok := <-ch:
			if !ok {
				if len(rs) != n {
					t.Fatalf("stream closed after %d results, want %d", len(rs), n)
				}
				for _, r := range rs {
					if r.Err == nil {
						t.Errorf("job %s reported success during cancelled failover", r.ID)
						continue
					}
					if !errors.Is(r.Err, context.Canceled) && !engine.Retryable(r.Err) {
						t.Errorf("job %s resolved with unexpected error %v", r.ID, r.Err)
					}
				}
				return
			}
			rs = append(rs, r)
		case <-deadline:
			t.Fatalf("stream did not close after cancel; got %d of %d results", len(rs), n)
		}
	}
}

// TestBalancerProbeRevivesBackend drives the health cycle end to end: a
// killed backend goes unhealthy via job results and is excluded, then a
// revival plus ProbeNow brings it back into dispatch.
func TestBalancerProbeRevivesBackend(t *testing.T) {
	flaky := faulttest.New("cycling")
	eng := engine.New(engine.Options{Workers: 2, PrivateCaches: true})
	b := newBalancer(t, engine.BalancerOptions{}, flaky, eng)

	// Healthy round-trip first, then kill and mark down via a probe.
	if rs, _ := b.Run(context.Background(), scenariotest.Jobs(4)); len(rs) != 4 {
		t.Fatalf("warm-up run resolved %d of 4 jobs", len(rs))
	}
	flaky.Kill(nil)
	b.ProbeNow(context.Background())
	if h := b.Health(); h[0].Healthy {
		t.Fatal("probe left a dead backend marked healthy")
	}

	// While down, everything lands on the live engine.
	before := flaky.Stats().Submitted
	if rs, _ := b.Run(context.Background(), scenariotest.Jobs(6)); len(rs) != 6 {
		t.Fatal("run against degraded fleet did not resolve")
	}
	if after := flaky.Stats().Submitted; after != before {
		t.Errorf("dead backend saw %d new submissions while marked down", after-before)
	}

	// Revive; the probe loop (here: an explicit round) readmits it.
	flaky.Revive()
	b.ProbeNow(context.Background())
	if h := b.Health(); !h[0].Healthy {
		t.Fatal("probe did not revive a healthy backend")
	}
	b.Run(context.Background(), scenariotest.Jobs(8))
	if flaky.Executed() == 0 {
		t.Error("revived backend received no work")
	}
}

// TestBalancerClosedResolvesJobs pins the Close contract: jobs
// submitted after Close resolve with ErrClosed and Close is idempotent.
func TestBalancerClosedResolvesJobs(t *testing.T) {
	b := engine.NewBalancer(engine.BalancerOptions{HealthInterval: -1},
		engine.New(engine.Options{Workers: 1, PrivateCaches: true}))
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	rs, _ := b.Run(context.Background(), scenariotest.Jobs(3))
	for _, r := range rs {
		if !errors.Is(r.Err, engine.ErrClosed) {
			t.Errorf("job %s after Close resolved with %v, want ErrClosed", r.ID, r.Err)
		}
	}
	for r := range b.Stream(context.Background(), scenariotest.Jobs(2)) {
		if !errors.Is(r.Err, engine.ErrClosed) {
			t.Errorf("streamed job %s after Close resolved with %v, want ErrClosed", r.ID, r.Err)
		}
	}
}

// TestBalancerLocalStats pins the composite LocalStats walk: balanced
// local engines report their pool sizes without any scraping.
func TestBalancerLocalStats(t *testing.T) {
	b := newBalancer(t, engine.BalancerOptions{},
		engine.New(engine.Options{Workers: 2, PrivateCaches: true}),
		engine.New(engine.Options{Workers: 3, PrivateCaches: true}))
	b.Run(context.Background(), scenariotest.Jobs(5))
	st := engine.LocalStats(b)
	if st.Workers != 5 {
		t.Errorf("LocalStats workers = %d, want 5", st.Workers)
	}
	if st.Submitted != 5 || st.Completed != 5 {
		t.Errorf("LocalStats %+v, want 5 submitted and completed", st)
	}
}

// TestBalancerAbandonsWedgedBackend pins the partition-fault rescue: a
// backend that accepts jobs and never finishes them (wedged, not
// crashed) is detected by a failing probe, its in-flight attempts are
// abandoned and re-classified backend-level, and the jobs complete on
// the survivor — the suite must not hang on its caller's context.
func TestBalancerAbandonsWedgedBackend(t *testing.T) {
	const n = 6
	want := scenariotest.Reference(t, scenariotest.Jobs(n))
	wedged := faulttest.New("wedged-peer").StallAfter(0).
		ProbeSick(errors.New("healthz timed out"))
	b := newBalancer(t, engine.BalancerOptions{},
		wedged,
		engine.New(engine.Options{Workers: 2, PrivateCaches: true}))

	done := make(chan []engine.Result, 1)
	go func() {
		rs, _ := b.Run(context.Background(), scenariotest.Jobs(n))
		done <- rs
	}()
	// Let dispatch trap at least one job on the wedged backend, then
	// deliver the probe verdict that rescues it.
	time.Sleep(50 * time.Millisecond)
	b.ProbeNow(context.Background())

	var rs []engine.Result
	select {
	case rs = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("suite hung on the wedged backend despite the probe verdict")
	}
	if got := scenariotest.Render(t, rs); got != want {
		t.Errorf("wedged-backend result set diverged from healthy run:\ngot:\n%s\nwant:\n%s", got, want)
	}
	var h engine.BackendHealth
	for _, m := range b.Health() {
		if m.Name == "wedged-peer" {
			h = m
		}
	}
	if h.Failovers == 0 {
		t.Error("no failovers recorded for the abandoned attempts")
	}
	if h.Healthy {
		t.Error("wedged backend still marked healthy after a failing probe")
	}
	if h.ProbeFailures == 0 {
		t.Error("probe failure not recorded")
	}
}

// TestBalancerProbeLeavesNonProberAlone pins the no-oracle rule: a
// probe round must not revive a backend without a Prober that job
// results marked down — fabricated health would route fresh jobs into
// a dead backend.
func TestBalancerProbeLeavesNonProberAlone(t *testing.T) {
	dead := &proberlessBackend{err: fmt.Errorf("boom: %w", engine.ErrUnavailable)}
	b := newBalancer(t, engine.BalancerOptions{},
		dead,
		engine.New(engine.Options{Workers: 1, PrivateCaches: true}))

	if rs, _ := b.Run(context.Background(), scenariotest.Jobs(4)); len(rs) != 4 {
		t.Fatal("run did not resolve")
	}
	h := b.Health()
	if h[0].Healthy {
		t.Fatal("failing proberless backend not marked down by job results")
	}
	b.ProbeNow(context.Background())
	h = b.Health()
	if h[0].Healthy {
		t.Error("probe round revived a proberless backend with no evidence")
	}
	if h[0].Probes != 0 {
		t.Errorf("probe round counted %d probes against a proberless backend", h[0].Probes)
	}
}

// proberlessBackend fails every job with a backend-level error and
// implements only the bare Evaluator surface — no Probe.
type proberlessBackend struct{ err error }

func (p *proberlessBackend) Run(ctx context.Context, jobs []engine.Job) ([]engine.Result, error) {
	out := make([]engine.Result, len(jobs))
	for i, j := range jobs {
		out[i] = engine.Result{ID: j.ID, Err: p.err, Worker: -1}
	}
	return out, ctx.Err()
}

func (p *proberlessBackend) Stream(ctx context.Context, jobs []engine.Job) <-chan engine.Result {
	out := make(chan engine.Result, len(jobs))
	rs, _ := p.Run(ctx, jobs)
	for _, r := range rs {
		out <- r
	}
	close(out)
	return out
}

func (p *proberlessBackend) Stats() engine.Stats { return engine.Stats{Workers: 1} }
func (p *proberlessBackend) Close() error        { return nil }

// TestBalancerRevivalRescuesLastResortAttempt pins the all-down rescue:
// with every backend down, a job is dispatched last-resort onto a
// wedged backend that never finishes it; when the other backend
// revives, the stuck attempt must be abandoned and the job re-run on
// the survivor — the suite must not stay hostage to the wedge.
func TestBalancerRevivalRescuesLastResortAttempt(t *testing.T) {
	wedged := faulttest.New("wedged").StallAfter(0).
		ProbeSick(errors.New("healthz timed out"))
	other := faulttest.New("other")
	b := newBalancer(t, engine.BalancerOptions{MaxRetries: 3}, wedged, other)

	other.Kill(nil)
	b.ProbeNow(context.Background())
	for _, h := range b.Health() {
		if h.Healthy {
			t.Fatalf("backend %s still healthy before the all-down scenario", h.Name)
		}
	}

	// rr starts at the wedged member, so the single last-resort job
	// lands there deterministically and stalls.
	done := make(chan engine.Result, 1)
	go func() {
		rs, _ := b.Run(context.Background(), scenariotest.Jobs(1))
		done <- rs[0]
	}()
	time.Sleep(50 * time.Millisecond)
	select {
	case r := <-done:
		t.Fatalf("job resolved before any backend revived: %+v", r)
	default:
	}

	other.Revive()
	b.ProbeNow(context.Background())
	select {
	case r := <-done:
		if r.Err != nil {
			t.Fatalf("job failed after a backend revived: %v", r.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("revival did not rescue the job stuck on the wedged backend")
	}
	if other.Executed() == 0 {
		t.Error("revived backend executed nothing; the rescue did not re-dispatch")
	}
}

// TestBalancerFailoverAccounting pins the scorecard semantics: a
// backend-level failure books a failover exactly when the job is
// re-dispatched and a terminal failure when the budget is spent, so
// dispatched = completed + failed + failovers on every backend.
func TestBalancerFailoverAccounting(t *testing.T) {
	const n, retries = 4, 2
	dead := faulttest.New("dead").FailAfter(0, nil)
	b := newBalancer(t, engine.BalancerOptions{MaxRetries: retries}, dead)

	b.Run(context.Background(), scenariotest.Jobs(n))
	h := b.Health()[0]
	if h.Dispatched != h.Completed+h.Failed+h.Failovers {
		t.Errorf("scorecard does not balance: dispatched %d != completed %d + failed %d + failovers %d",
			h.Dispatched, h.Completed, h.Failed, h.Failovers)
	}
	// Every job fails terminally on the only backend: n terminal
	// failures, n×retries failovers (each re-dispatch), zero completed.
	if h.Failed != n || h.Failovers != uint64(n*retries) || h.Completed != 0 {
		t.Errorf("scorecard %+v, want failed=%d failovers=%d completed=0", h, n, n*retries)
	}
}

// TestBalancerOwnRecoveryDoesNotAbortAttempt pins the revival edge: on
// a sole unhealthy backend, a last-resort attempt must survive that
// same backend's recovery mid-flight — the running job is the evidence
// it recovered, and aborting it would oscillate health forever.
func TestBalancerOwnRecoveryDoesNotAbortAttempt(t *testing.T) {
	solo := faulttest.New("solo").Delay(300 * time.Millisecond).
		ProbeSick(errors.New("healthz flapping"))
	// MaxRetries < 0: no failover budget, so an abort would surface as
	// a failed job instead of being papered over by a retry.
	b := newBalancer(t, engine.BalancerOptions{MaxRetries: -1}, solo)

	b.ProbeNow(context.Background())
	if b.Health()[0].Healthy {
		t.Fatal("probe did not mark the flapping backend down")
	}

	done := make(chan engine.Result, 1)
	go func() {
		rs, _ := b.Run(context.Background(), scenariotest.Jobs(1))
		done <- rs[0]
	}()
	time.Sleep(50 * time.Millisecond)
	solo.ProbeSick(nil)
	b.ProbeNow(context.Background()) // the member itself revives mid-attempt

	select {
	case r := <-done:
		if r.Err != nil {
			t.Fatalf("job aborted by its own backend's recovery: %v", r.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("job did not resolve")
	}
	if !b.Health()[0].Healthy {
		t.Error("recovered backend marked down again by its own surviving attempt")
	}
}

// capacityBackend is a correct backend that reports a scripted capacity
// snapshot and records the largest batch handed to it — the probe for
// capacity-aware chunk sizing.
type capacityBackend struct {
	snap engine.Capacity

	mu       sync.Mutex
	maxBatch int
}

func (c *capacityBackend) Run(ctx context.Context, jobs []engine.Job) ([]engine.Result, error) {
	c.mu.Lock()
	if len(jobs) > c.maxBatch {
		c.maxBatch = len(jobs)
	}
	c.mu.Unlock()
	out := make([]engine.Result, len(jobs))
	for i, j := range jobs {
		v, err := j.Fn(ctx)
		out[i] = engine.Result{ID: j.ID, Value: v, Err: err, Worker: 0}
	}
	return out, ctx.Err()
}

func (c *capacityBackend) Stream(ctx context.Context, jobs []engine.Job) <-chan engine.Result {
	out := make(chan engine.Result, len(jobs))
	rs, _ := c.Run(ctx, jobs)
	for _, r := range rs {
		out <- r
	}
	close(out)
	return out
}

func (c *capacityBackend) Stats() engine.Stats { return engine.Stats{Workers: c.snap.Workers} }
func (c *capacityBackend) Close() error        { return nil }

func (c *capacityBackend) Probe(context.Context) error { return nil }

func (c *capacityBackend) Capacity(context.Context) (engine.Capacity, error) {
	return c.snap, nil
}

func (c *capacityBackend) max() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxBatch
}

// TestBalancerCapacitySizesChunks pins capacity-aware chunk sizing: a
// probe round scrapes the backend's capacity into its scorecard, and
// subsequent chunks are capped at the scraped free workers — a busy
// peer sheds load — even when the configured chunk and the static
// width would both allow more.
func TestBalancerCapacitySizesChunks(t *testing.T) {
	tests := []struct {
		name     string
		snap     engine.Capacity
		maxChunk int
	}{
		{"free workers cap the chunk", engine.Capacity{Workers: 8, Busy: 6, Free: 2}, 2},
		// A saturated peer (zero free, deep queue) must shed down to
		// the 1-job minimum, not bypass the cap and take full chunks.
		{"saturated peer sheds to one job", engine.Capacity{Workers: 8, Busy: 8, Queue: 12}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cb := &capacityBackend{snap: tt.snap}
			b := newBalancer(t, engine.BalancerOptions{Chunk: 6}, cb)

			b.ProbeNow(context.Background())
			h := b.Health()[0]
			if h.CapacityScrapes == 0 || h.Capacity == nil {
				t.Fatalf("probe round did not scrape capacity: %+v", h)
			}
			if h.Capacity.Free != tt.snap.Free {
				t.Fatalf("scorecard capacity %+v, want the scripted snapshot", h.Capacity)
			}

			rs, err := b.Run(context.Background(), scenariotest.Jobs(12))
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rs {
				if r.Err != nil {
					t.Fatalf("job %s failed: %v", r.ID, r.Err)
				}
			}
			if got := cb.max(); got > tt.maxChunk {
				t.Errorf("largest chunk was %d jobs; scraped capacity should cap it at %d", got, tt.maxChunk)
			}
			if want := uint64(12 / tt.maxChunk); b.Chunks() < want {
				t.Errorf("12 jobs dispatched as %d chunks, want at least %d", b.Chunks(), want)
			}
		})
	}
}
