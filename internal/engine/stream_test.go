package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestStreamCompletionOrder gates job completions in reverse submission
// order and asserts the stream yields them in that completion order —
// the property that distinguishes Stream from RunAll.
func TestStreamCompletionOrder(t *testing.T) {
	const n = 4
	e := New(Options{Workers: n, PrivateCaches: true})
	defer e.Close()

	gates := make([]chan struct{}, n)
	running := make(chan int, n)
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		gates[i] = make(chan struct{})
		jobs[i] = Job{
			ID: fmt.Sprintf("job-%d", i),
			Fn: func(context.Context) (any, error) {
				running <- i
				<-gates[i]
				return i, nil
			},
		}
	}
	out := e.Stream(context.Background(), jobs)
	for i := 0; i < n; i++ {
		<-running // all jobs are resident on the n workers
	}
	for i := n - 1; i >= 0; i-- {
		close(gates[i]) // release in reverse order
		r := <-out
		if r.Err != nil {
			t.Fatalf("job %s: %v", r.ID, r.Err)
		}
		if r.Value.(int) != i {
			t.Fatalf("stream yielded job %v, want %d (completion order)", r.Value, i)
		}
	}
	if _, ok := <-out; ok {
		t.Fatal("stream not closed after last result")
	}
	if s := e.Stats(); s.Streams != 1 {
		t.Errorf("stats %+v, want 1 stream", s)
	}
}

// TestStreamEmpty: a zero-job stream closes immediately.
func TestStreamEmpty(t *testing.T) {
	e := New(Options{Workers: 1, PrivateCaches: true})
	defer e.Close()
	select {
	case _, ok := <-e.Stream(context.Background(), nil):
		if ok {
			t.Fatal("empty stream yielded a result")
		}
	case <-time.After(time.Second):
		t.Fatal("empty stream never closed")
	}
}

// TestStreamCancelMidStream cancels the context while one job holds the
// only worker; every outstanding job must resolve (with the context
// error) and the stream must close.
func TestStreamCancelMidStream(t *testing.T) {
	e := New(Options{Workers: 1, PrivateCaches: true})
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Every job gates on release, so whichever one the single worker
	// dispatches first is the one pinned mid-run; dispatch order across
	// the stream's concurrent submitters is unspecified.
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	jobs := make([]Job, 12)
	for i := range jobs {
		jobs[i] = Job{ID: fmt.Sprintf("q%d", i), Fn: func(context.Context) (any, error) {
			started <- struct{}{}
			<-release
			return nil, nil
		}}
	}

	out := e.Stream(ctx, jobs)
	<-started // one job is resident on the only worker
	cancel()  // cancel ≺ close(release) ≺ the worker's next ctx check
	close(release)

	var got, canceled int
	deadline := time.After(5 * time.Second)
	for {
		select {
		case r, ok := <-out:
			if !ok {
				if got != len(jobs) {
					t.Fatalf("stream closed after %d results, want %d", got, len(jobs))
				}
				if canceled != len(jobs)-1 {
					t.Errorf("%d canceled results, want %d", canceled, len(jobs)-1)
				}
				return
			}
			got++
			if errors.Is(r.Err, context.Canceled) {
				canceled++
			} else if r.Err != nil {
				t.Errorf("job %s: error %v, want nil or context.Canceled", r.ID, r.Err)
			}
		case <-deadline:
			t.Fatalf("stream stalled after %d results — cancellation stranded a job", got)
		}
	}
}

// TestStreamCloseRaceStress interleaves Stream batches with a concurrent
// Close under the race detector: every stream must terminate, and every
// result must be success, ErrClosed, or a context error — nothing
// stranded, no double-resolution, no races on the counters.
func TestStreamCloseRaceStress(t *testing.T) {
	e := New(Options{Workers: 4, Queue: 2, PrivateCaches: true})

	const streams, perStream = 8, 25
	var wg sync.WaitGroup
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			jobs := make([]Job, perStream)
			for i := range jobs {
				jobs[i] = Job{
					ID: fmt.Sprintf("s%d-j%d", s, i),
					Fn: func(context.Context) (any, error) { return s, nil },
				}
			}
			n := 0
			for r := range e.Stream(context.Background(), jobs) {
				n++
				if r.Err != nil && !errors.Is(r.Err, ErrClosed) {
					t.Errorf("job %s: error %v, want nil or ErrClosed", r.ID, r.Err)
				}
			}
			if n != perStream {
				t.Errorf("stream %d yielded %d results, want %d", s, n, perStream)
			}
		}(s)
	}
	e.Close() // race shutdown against the in-flight streams
	wg.Wait()

	s := e.Stats()
	if s.Submitted != s.Completed+s.Failed+s.Canceled+s.Rejected {
		t.Errorf("stats %+v do not balance after Close", s)
	}
}

func TestShardSetRunAllAndStream(t *testing.T) {
	s := NewShardSet(3, Options{Workers: 2})
	defer s.Close()
	if s.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", s.Shards())
	}

	jobs := make([]Job, 30)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			ID: fmt.Sprintf("job-%d", i),
			Fn: func(context.Context) (any, error) { return i, nil },
		}
	}
	results, err := s.RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil || r.Value.(int) != i {
			t.Errorf("result %d = %+v, want value %d in submission order", i, r, i)
		}
	}

	seen := map[string]bool{}
	for r := range s.Stream(context.Background(), jobs) {
		if r.Err != nil {
			t.Errorf("job %s: %v", r.ID, r.Err)
		}
		if seen[r.ID] {
			t.Errorf("job %s delivered twice", r.ID)
		}
		seen[r.ID] = true
	}
	if len(seen) != len(jobs) {
		t.Errorf("stream delivered %d distinct jobs, want %d", len(seen), len(jobs))
	}

	// Round-robin must spread a 30-job batch run twice (RunAll + Stream)
	// as 10+10 per shard, and the totals must equal the sum.
	var sum uint64
	for i, st := range s.ShardStats() {
		if st.Submitted != 20 {
			t.Errorf("shard %d submitted %d, want 20", i, st.Submitted)
		}
		sum += st.Submitted
	}
	if tot := s.Stats(); tot.Submitted != sum || tot.Workers != 6 {
		t.Errorf("Stats %+v, want submitted %d over 6 workers", tot, sum)
	}
}

// TestShardSetCursorBalancesSmallBatches drives many one-job batches —
// the resident server's /v1/eval pattern — and asserts the persistent
// round-robin cursor spreads them evenly instead of piling every batch
// onto shard 0.
func TestShardSetCursorBalancesSmallBatches(t *testing.T) {
	s := NewShardSet(3, Options{Workers: 1})
	defer s.Close()

	for i := 0; i < 30; i++ {
		if _, err := s.RunAll(context.Background(), []Job{{
			ID: fmt.Sprintf("one-%d", i),
			Fn: func(context.Context) (any, error) { return nil, nil },
		}}); err != nil {
			t.Fatal(err)
		}
	}
	for i, st := range s.ShardStats() {
		if st.Submitted != 10 {
			t.Errorf("shard %d got %d of 30 one-job batches, want 10", i, st.Submitted)
		}
	}
}

// TestShardSetIndependentCaches asserts the shards do not share engine
// cache fields — the property that makes them rehearsals for remote
// peers.
func TestShardSetIndependentCaches(t *testing.T) {
	s := NewShardSet(2, Options{Workers: 1})
	defer s.Close()
	e0, ok0 := s.Backend(0).(*Engine)
	e1, ok1 := s.Backend(1).(*Engine)
	if !ok0 || !ok1 {
		t.Fatal("NewShardSet backends are not local engines")
	}
	if e0.Programs == e1.Programs {
		t.Error("shards share a ProgramCache")
	}
	if e0.Programs == SharedPrograms {
		t.Error("shard 0 uses the process-wide ProgramCache")
	}
}
