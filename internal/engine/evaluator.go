package engine

import (
	"context"
	"io"
	"sync"
)

// Evaluator is the one backend interface of the evaluation stack: a thing
// that runs batches of Jobs and reports lifetime counters. Every way of
// evaluating — a local worker pool (*Engine), a partition over other
// evaluators (*ShardSet), an HTTP client proxying to a remote art9-serve
// instance (internal/remote.Client) — implements it, so consumers
// (internal/serve, cmd/art9-batch, the art9.New facade) are written once
// against this surface and composed freely: shards of shards, shards
// mixing local pools with remote peers, a serve instance fronting a fleet
// of other serve instances.
//
// The contract every backend honours:
//
//   - Run returns exactly one Result per job, index-aligned with the
//     input slice (submission order); per-job failures travel in
//     Result.Err, and the batch error is non-nil only when ctx ended
//     before the batch drained.
//   - Stream yields one Result per job in completion order, then closes.
//     The channel is buffered to len(jobs), so an abandoned stream never
//     blocks the backend. Cancelling ctx resolves outstanding jobs with
//     the context error; the channel still closes.
//   - Stats is a point-in-time snapshot of the backend's counters; for
//     composite backends it aggregates the members.
//   - Close releases the backend's resources. Jobs already executing
//     finish; anything undispatched resolves with ErrClosed. Idempotent.
type Evaluator interface {
	Run(ctx context.Context, jobs []Job) ([]Result, error)
	Stream(ctx context.Context, jobs []Job) <-chan Result
	Stats() Stats
	Close() error
}

// The local backends satisfy the interface; internal/remote.Client
// asserts its own conformance next to its definition.
var (
	_ Evaluator = (*Engine)(nil)
	_ Evaluator = (*ShardSet)(nil)
	_ Evaluator = (*Balancer)(nil)
)

// Composite is implemented by backends that front an ordered set of
// other backends — ShardSet and Balancer. Generic consumers (stats
// drill-downs, per-shard reports, LocalStats) introspect through it
// instead of enumerating concrete types, so a new composite backend
// works with all of them unmodified.
type Composite interface {
	Evaluator
	// Size returns the number of fronted backends.
	Size() int
	// Backend returns fronted backend i.
	Backend(i int) Evaluator
}

var (
	_ Composite = (*ShardSet)(nil)
	_ Composite = (*Balancer)(nil)
)

// BackendStats returns one Stats snapshot per fronted backend of a
// composite, in backend order — queried concurrently, since a remote
// backend's Stats is a network scrape — or a single-element slice for
// a non-composite backend.
func BackendStats(ev Evaluator) []Stats {
	c, ok := ev.(Composite)
	if !ok {
		return []Stats{ev.Stats()}
	}
	out := make([]Stats, c.Size())
	var wg sync.WaitGroup
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = c.Backend(i).Stats()
		}(i)
	}
	wg.Wait()
	return out
}

// Prober is implemented by backends that can answer a cheap liveness
// check: nil means the backend is fit to take jobs, an error explains
// why it is not. Local engines answer from their closed flag; the
// remote client performs a bounded GET /v1/healthz. The Balancer's
// health loop probes every backend that implements it and treats the
// rest as always-alive (their failures still surface reactively through
// job results).
type Prober interface {
	Probe(ctx context.Context) error
}

// Every local backend carries its own liveness oracle.
var (
	_ Prober = (*Engine)(nil)
	_ Prober = (*ShardSet)(nil)
	_ Prober = (*Balancer)(nil)
)

// ChunkDispatcher is implemented by backends that can run a whole chunk
// of jobs as one dispatch unit with per-job acknowledgement — the
// capability a chunking Balancer detects on internal/remote.Client so a
// chunk travels as one /v1/suite NDJSON stream instead of per-job
// /v1/eval requests.
//
// DispatchChunk resolves jobs through ack(i, result), where i indexes
// the chunk slice; ack is called at most once per index, from a single
// goroutine. A nil return means every job was acknowledged. A non-nil
// return is a chunk-level failure (the stream was severed, the peer
// unreachable): jobs not yet acknowledged received no verdict at all,
// and the caller owns re-dispatching exactly those — which is how a
// severed chunk resumes on survivors without re-running rows that
// already arrived.
type ChunkDispatcher interface {
	DispatchChunk(ctx context.Context, jobs []Job, ack func(i int, r Result)) error
}

// Capacity is a backend's point-in-time load snapshot: live pool size,
// jobs in flight, free workers, and queue depth beyond the pool. A
// chunking Balancer sizes chunks from it so a busy peer sheds load
// before it wedges — the scraped replacement for the static width hint.
type Capacity struct {
	Workers int `json:"workers"`
	Busy    int `json:"busy"`
	Free    int `json:"free"`
	Queue   int `json:"queue"`
}

// CapacityReporter is implemented by backends that can answer a cheap
// capacity query: local backends derive it from their own counters, the
// remote client scrapes the peer's /v1/capacity fast path. The
// Balancer's probe loop folds the answer into BackendHealth and chunk
// sizing; backends without one are dispatched by static width alone.
type CapacityReporter interface {
	Capacity(ctx context.Context) (Capacity, error)
}

// The local backends answer capacity from their own counters.
var (
	_ CapacityReporter = (*Engine)(nil)
	_ CapacityReporter = (*ShardSet)(nil)
	_ CapacityReporter = (*Balancer)(nil)
)

// CapacityFromStats derives a Capacity snapshot from lifetime counters:
// busy is the in-flight count (submitted minus every terminal verdict),
// free is the idle remainder of the pool, queue is whatever in-flight
// work exceeds it.
func CapacityFromStats(st Stats) Capacity {
	resolved := st.Completed + st.Failed + st.Canceled + st.Rejected
	busy := 0
	if st.Submitted > resolved {
		busy = int(st.Submitted - resolved)
	}
	c := Capacity{Workers: st.Workers, Busy: busy}
	if busy < st.Workers {
		c.Free = st.Workers - busy
	} else {
		c.Queue = busy - st.Workers
	}
	return c
}

// LocalCapacity snapshots ev's capacity without any network I/O — the
// view the serve layer's /v1/capacity endpoint reports, so a capacity
// scrape never blocks on a further peer.
func LocalCapacity(ev Evaluator) Capacity {
	return CapacityFromStats(LocalStats(ev))
}

// ResultCache is the dispatch-path view of the fleet-wide result cache
// (internal/rescache behind the internal/bench codec): a store of
// finished job results keyed by the job's serializable Spec. Fronts
// consult it before placing a job — a hit short-circuits dispatch
// entirely, so a hot job never occupies a worker, rides a chunk, or
// triggers a scale-up — and record successful results after execution.
//
// Both methods are best-effort by contract: Lookup answers (nil, false)
// for specs it cannot key or entries it cannot decode, and Store
// silently drops values it cannot encode. A broken or unreachable
// cache tier therefore degrades to computing, never to failing.
type ResultCache interface {
	// Lookup returns a replayable result value for the job spec, or
	// false when the fleet has not seen this work before.
	Lookup(ctx context.Context, spec any) (any, bool)
	// Store records a successful result value under the spec's key.
	Store(ctx context.Context, spec any, value any)
}

// ResultCached is implemented by fronts that carry a result cache —
// Engine, Balancer, and Autoscaler — so report builders can find the
// tier's counters without knowing the topology.
type ResultCached interface {
	ResultCache() ResultCache
}

// closeResultCache releases a result cache attached to a front, when
// it holds resources to release — a tiered store drains its queued
// write-behind peer fills here, which is what lets a short-lived batch
// run still seed the fleet before exit. Safe on nil and on caches
// without teardown; safe to call from several fronts sharing one
// adapter (the tier's own Close is idempotent).
func closeResultCache(c ResultCache) error {
	if cl, ok := c.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// ResultCacheOf walks ev for the result cache consulted on its
// dispatch path: the front's own cache when it has one, otherwise the
// first cache found among a composite's backends. Nil when the
// topology runs uncached.
func ResultCacheOf(ev Evaluator) ResultCache {
	if rc, ok := ev.(ResultCached); ok {
		if c := rc.ResultCache(); c != nil {
			return c
		}
	}
	if comp, ok := ev.(Composite); ok {
		for i := 0; i < comp.Size(); i++ {
			if c := ResultCacheOf(comp.Backend(i)); c != nil {
				return c
			}
		}
	}
	return nil
}

// LocalStatser is implemented by backends whose Stats involves network
// I/O (the remote client scrapes its peer) and that can also report a
// cheap process-local view of the work submitted through them.
type LocalStatser interface {
	LocalStats() Stats
}

// LocalStats returns ev's counters without any network I/O: composite
// backends are walked, LocalStatser backends report their local view,
// and plain local backends answer Stats directly. Use it where blocking
// on a peer is unacceptable (liveness probes) or where only this
// process's submissions should be counted (per-run reports).
func LocalStats(ev Evaluator) Stats {
	if c, ok := ev.(Composite); ok {
		var t Stats
		for i := 0; i < c.Size(); i++ {
			t = t.Add(LocalStats(c.Backend(i)))
		}
		return t
	}
	if ls, ok := ev.(LocalStatser); ok {
		return ls.LocalStats()
	}
	return ev.Stats()
}
