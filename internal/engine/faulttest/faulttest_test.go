package faulttest

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/engine"
)

func jobs(n int) []engine.Job {
	out := make([]engine.Job, n)
	for i := range out {
		i := i
		out[i] = engine.Job{ID: fmt.Sprintf("j%d", i),
			Fn: func(context.Context) (any, error) { return i, nil }}
	}
	return out
}

// TestHealthyFlakyIsAConformingEvaluator pins the no-script baseline:
// results in submission order, correct values, balanced stats, passing
// probe.
func TestHealthyFlakyIsAConformingEvaluator(t *testing.T) {
	f := New("ok")
	rs, err := f.Run(context.Background(), jobs(5))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r.Err != nil || r.Value.(int) != i {
			t.Errorf("result %d = %+v, want value %d", i, r, i)
		}
	}
	if st := f.Stats(); st.Submitted != 5 || st.Completed != 5 {
		t.Errorf("stats %+v, want 5 submitted and completed", st)
	}
	if err := f.Probe(context.Background()); err != nil {
		t.Errorf("healthy probe failed: %v", err)
	}
	n := 0
	for range f.Stream(context.Background(), jobs(3)) {
		n++
	}
	if n != 3 {
		t.Errorf("stream yielded %d results, want 3", n)
	}
}

// TestFailAfterDiesMidBatch pins the mid-stream death: exactly n jobs
// execute, the rest fail with a retryable error, and the probe reports
// the death.
func TestFailAfterDiesMidBatch(t *testing.T) {
	f := New("dying").FailAfter(2, nil)
	rs, _ := f.Run(context.Background(), jobs(5))
	for i, r := range rs {
		if i < 2 && r.Err != nil {
			t.Errorf("job %d failed before the scripted death: %v", i, r.Err)
		}
		if i >= 2 && !engine.Retryable(r.Err) {
			t.Errorf("job %d after death resolved with %v, want retryable", i, r.Err)
		}
	}
	if f.Executed() != 2 {
		t.Errorf("executed %d jobs, want exactly 2", f.Executed())
	}
	if f.Probe(context.Background()) == nil {
		t.Error("probe passed on a dead backend")
	}

	f.Revive()
	if f.Probe(context.Background()) != nil {
		t.Error("probe failed after revival")
	}
	if rs, _ := f.Run(context.Background(), jobs(1)); rs[0].Err != nil {
		t.Errorf("revived backend failed a job: %v", rs[0].Err)
	}
}

// TestStallAndRelease pins the wedge script: a stalled job blocks until
// Release, or resolves with the context error on cancellation.
func TestStallAndRelease(t *testing.T) {
	f := New("wedged").StallAfter(0)
	done := make(chan engine.Result, 1)
	go func() {
		rs, _ := f.Run(context.Background(), jobs(1))
		done <- rs[0]
	}()
	select {
	case r := <-done:
		t.Fatalf("stalled job resolved early: %+v", r)
	case <-time.After(50 * time.Millisecond):
	}
	f.Release()
	select {
	case r := <-done:
		if r.Err != nil {
			t.Errorf("released job failed: %v", r.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Release did not unblock the stalled job")
	}

	g := New("wedged-2").StallAfter(0)
	ctx, cancel := context.WithCancel(context.Background())
	ch := g.Stream(ctx, jobs(1))
	cancel()
	select {
	case r := <-ch:
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("cancelled stalled job resolved with %v, want context.Canceled", r.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not unblock the stalled job")
	}
}

// TestCloseIsKill pins Close semantics: jobs after Close resolve with
// engine.ErrClosed, the error a Balancer treats as retryable.
func TestCloseIsKill(t *testing.T) {
	f := New("closing")
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rs, _ := f.Run(context.Background(), jobs(2))
	for _, r := range rs {
		if !errors.Is(r.Err, engine.ErrClosed) {
			t.Errorf("job %s after Close resolved with %v, want ErrClosed", r.ID, r.Err)
		}
	}
	if st := f.Stats(); st.Rejected != 2 {
		t.Errorf("stats %+v, want 2 rejected", st)
	}
}
