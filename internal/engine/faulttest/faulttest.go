// Package faulttest provides a scriptable faulty Evaluator for
// fault-injection tests across the evaluation stack. A Flaky backend
// executes jobs inline (one at a time, in submission order, like a
// one-worker pool) until its script trips: it can die after N jobs,
// stall from the Nth job until released or cancelled, delay every job
// (a slow peer), or be killed and revived from the test at any point.
// It implements engine.Evaluator and engine.Prober, so the same faults
// drive Balancer failover tests, ShardSet merge tests, and serve-layer
// suite tests without any of them spawning real processes.
package faulttest

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/engine"
)

// Flaky is the scriptable faulty backend. Configure it with the chained
// setters before submitting work; Kill/Revive/Release may be called at
// any time.
type Flaky struct {
	name string

	mu       sync.Mutex
	admitted int // jobs that passed the script gate (sequence numbers)
	executed int // jobs whose Fn actually ran
	dead     bool
	deadErr  error
	failAt   int // die when executed reaches this (<0: never)
	stallAt  int // stall jobs from this sequence number on (<0: never)
	delay    time.Duration
	workers  int
	release  chan struct{}
	probeErr error // scripted probe verdict while alive

	submitted uint64
	completed uint64
	failed    uint64
	canceled  uint64
	rejected  uint64
	streams   uint64
}

var (
	_ engine.Evaluator = (*Flaky)(nil)
	_ engine.Prober    = (*Flaky)(nil)
)

// New returns a healthy Flaky backend named name (the name shows up in
// Balancer health reports). Without any script it behaves as a correct
// sequential one-worker evaluator.
func New(name string) *Flaky {
	return &Flaky{
		name:    name,
		failAt:  -1,
		stallAt: -1,
		workers: 1,
		release: make(chan struct{}),
	}
}

// Name labels the backend in health reports.
func (f *Flaky) Name() string { return f.name }

// FailAfter scripts death: the first n jobs execute normally, then the
// backend dies and every later job resolves with err (nil selects an
// engine.ErrUnavailable-wrapped default, the transport-failure class a
// Balancer retries). FailAfter(0, nil) is dead on arrival.
func (f *Flaky) FailAfter(n int, err error) *Flaky {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt = n
	f.deadErr = err
	return f
}

// StallAfter scripts a wedge: jobs from sequence number n on (0-based)
// block until the caller's context ends or Release is called.
// StallAfter(0) stalls every job.
func (f *Flaky) StallAfter(n int) *Flaky {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stallAt = n
	return f
}

// Delay makes every executed job take at least d — a slow-but-correct
// peer.
func (f *Flaky) Delay(d time.Duration) *Flaky {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delay = d
	return f
}

// Width sets the Workers field of the backend's Stats (the Balancer
// reads it as the dispatch-width hint). Execution stays sequential.
func (f *Flaky) Width(n int) *Flaky {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.workers = n
	return f
}

// ProbeSick scripts the probe verdict while the backend is otherwise
// alive: Probe reports err although jobs still execute as scripted — a
// wedged-but-connected backend (network partition, stopped process)
// whose failure is only visible to health checks. ProbeSick(nil)
// restores the healthy verdict.
func (f *Flaky) ProbeSick(err error) *Flaky {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.probeErr = err
	return f
}

// Kill downs the backend now: every subsequent job resolves with err
// (nil selects the ErrUnavailable-wrapped default) and Probe reports it.
func (f *Flaky) Kill(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dead = true
	if err != nil {
		f.deadErr = err
	}
}

// Revive brings a dead backend back: jobs execute again and Probe
// passes. The executed count (and any FailAfter trigger) is reset.
func (f *Flaky) Revive() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dead = false
	f.admitted = 0
	f.executed = 0
}

// Release unblocks every job currently stalled (and disables stalling
// for future jobs).
func (f *Flaky) Release() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stallAt = -1
	close(f.release)
	f.release = make(chan struct{})
}

// Executed reports how many jobs actually ran (their Fn was called).
func (f *Flaky) Executed() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.executed
}

// Probe reports the scripted liveness: nil while alive, the death error
// once dead — what a Balancer's health loop sees.
func (f *Flaky) Probe(context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return f.deathErrLocked()
	}
	return f.probeErr
}

// Run executes the batch sequentially, in submission order, applying
// the script to each job — engine.Evaluator Run semantics.
func (f *Flaky) Run(ctx context.Context, jobs []engine.Job) ([]engine.Result, error) {
	out := make([]engine.Result, len(jobs))
	for i, j := range jobs {
		out[i] = f.one(ctx, j)
	}
	return out, ctx.Err()
}

// Stream executes sequentially like Run, emitting each result as it
// resolves. The channel is buffered to len(jobs) and always closes.
func (f *Flaky) Stream(ctx context.Context, jobs []engine.Job) <-chan engine.Result {
	f.mu.Lock()
	f.streams++
	f.mu.Unlock()
	out := make(chan engine.Result, len(jobs))
	go func() {
		defer close(out)
		for _, j := range jobs {
			out <- f.one(ctx, j)
		}
	}()
	return out
}

// Stats reports the backend's counters; Workers carries the scripted
// width.
func (f *Flaky) Stats() engine.Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return engine.Stats{
		Workers:   f.workers,
		Submitted: f.submitted,
		Completed: f.completed,
		Failed:    f.failed,
		Canceled:  f.canceled,
		Rejected:  f.rejected,
		Streams:   f.streams,
	}
}

// Close kills the backend with engine.ErrClosed. Idempotent.
func (f *Flaky) Close() error {
	f.Kill(engine.ErrClosed)
	return nil
}

// one applies the script to a single job and resolves it exactly once.
func (f *Flaky) one(ctx context.Context, j engine.Job) engine.Result {
	f.mu.Lock()
	f.submitted++
	if f.dead {
		err := f.deathErrLocked()
		f.rejected++
		f.mu.Unlock()
		return engine.Result{ID: j.ID, Err: err, Worker: -1}
	}
	seq := f.admitted
	if f.failAt >= 0 && seq >= f.failAt {
		f.dead = true
		err := f.deathErrLocked()
		f.rejected++
		f.mu.Unlock()
		return engine.Result{ID: j.ID, Err: err, Worker: -1}
	}
	f.admitted++
	stall := f.stallAt >= 0 && seq >= f.stallAt
	release := f.release
	delay := f.delay
	f.mu.Unlock()

	if stall {
		select {
		case <-ctx.Done():
			f.mu.Lock()
			f.canceled++
			f.mu.Unlock()
			return engine.Result{ID: j.ID, Err: ctx.Err(), Worker: -1}
		case <-release:
		}
	}
	if delay > 0 {
		select {
		case <-ctx.Done():
			f.mu.Lock()
			f.canceled++
			f.mu.Unlock()
			return engine.Result{ID: j.ID, Err: ctx.Err(), Worker: -1}
		case <-time.After(delay):
		}
	}
	if err := ctx.Err(); err != nil {
		f.mu.Lock()
		f.canceled++
		f.mu.Unlock()
		return engine.Result{ID: j.ID, Err: err, Worker: -1}
	}

	start := time.Now()
	v, err := j.Fn(ctx)
	r := engine.Result{ID: j.ID, Value: v, Err: err, Elapsed: time.Since(start), Worker: 0}
	f.mu.Lock()
	f.executed++
	if err != nil {
		f.failed++
	} else {
		f.completed++
	}
	f.mu.Unlock()
	return r
}

// deathErrLocked renders the configured (or default) death error;
// callers hold f.mu.
func (f *Flaky) deathErrLocked() error {
	if f.deadErr != nil {
		return f.deadErr
	}
	return fmt.Errorf("faulttest %s: scripted death: %w", f.name, engine.ErrUnavailable)
}
