package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrInvalidOptions is returned (wrapped, with the offending options
// named) when an evaluator is configured with an incoherent option
// combination — failover tuning without a failover front, inverted
// autoscale bounds, standby peers without an autoscaler. Check with
// errors.Is; the art9.New facade and both CLIs reject configurations
// through the same rule set, so library and flag users get identical
// diagnostics.
var ErrInvalidOptions = errors.New("engine: invalid option combination")

// Autoscaler is the elastic Evaluator: it fronts a pool of local shard
// engines that grows and shrinks between configured bounds — and
// optionally dials configured standby backends when the local bound is
// exhausted — driven by the same capacity/queue-depth signal the
// Balancer scrapes. Dispatch is least-loaded over the active members,
// with bounded job-level failover on backend errors.
//
// Scaling follows hysteresis: the pool grows when jobs are queued
// beyond the active capacity (or utilization crosses UpThreshold),
// shrinks when utilization falls below DownThreshold with nothing
// queued, and a cooldown separates consecutive scale events so a noisy
// load signal cannot thrash the pool. A retired member is drained
// before it is released: it stops receiving new jobs immediately, its
// in-flight jobs run to completion, and only then is its Close — the
// same drain-safe contract every Evaluator honours — invoked, so no
// job is ever lost to a shrink.
type Autoscaler struct {
	min, max   int
	up, down   float64
	cooldown   time.Duration
	interval   time.Duration
	width      int
	maxRetries int
	spawn      func() Evaluator
	standby    []StandbyBackend
	// cache, when non-nil, short-circuits placement on known Specs —
	// a hit never parks in the queue, so it cannot trigger a scale-up.
	cache ResultCache

	mu        sync.Mutex
	cond      *sync.Cond
	closed    bool
	members   []*scaledMember // every member ever started, retired ones included
	locals    int             // currently active local members
	live      []bool          // per standby factory: dialed and active
	waiting   int             // jobs parked for a dispatch slot — the queue-depth signal
	last      time.Time       // most recent scale event, for the cooldown
	events    []ScaleEvent
	seq       int    // scale-event sequence
	spawned   int    // local members ever spawned, for stable naming
	ups       uint64 // lifetime scale-up events
	downs     uint64 // lifetime scale-down events
	retries   uint64 // re-dispatches after backend-level failures
	cacheHits uint64 // jobs resolved from the result cache, never placed

	stop     chan struct{}
	stopOnce sync.Once
	drains   sync.WaitGroup
}

// scaledMember is one pooled backend plus the autoscaler's book-keeping.
// Mutable fields are guarded by Autoscaler.mu.
type scaledMember struct {
	ev      Evaluator
	name    string
	width   int  // max concurrent jobs dispatched here
	standby int  // index into the standby factories, -1 for a local shard
	active  bool // accepting new jobs
	retired bool // scaled down; drained and closed once inflight hits 0

	inflight   int
	dispatched uint64
	completed  uint64
	failed     uint64
	failovers  uint64
	lastErr    string
}

// StandbyBackend is one standby member the autoscaler may dial when the
// local bound is exhausted and retire first when load drops.
type StandbyBackend struct {
	// Name labels the backend in health reports and scale events.
	Name string
	// Dial builds the backend. It is called on each scale-up that
	// recruits this standby (a retired standby is re-dialed fresh) and
	// must not block — the remote client's constructor, which validates
	// the URL without connecting, is the intended shape.
	Dial func() (Evaluator, error)
}

// ScaleEvent records one pool transition — the fleet-breathing record
// BENCH artifacts and /v1/stats carry.
type ScaleEvent struct {
	Seq       int    `json:"seq"`
	Direction string `json:"direction"` // "up" or "down"
	Backend   string `json:"backend"`   // the member added or retired
	Reason    string `json:"reason"`    // the signal that triggered it
	Width     int    `json:"width"`     // active dispatch width after the event
	UnixMS    int64  `json:"unix_ms"`
}

// ScaleState is the autoscaler's point-in-time summary, served by the
// serve layer's /v1/stats.
type ScaleState struct {
	Min            int     `json:"min"`
	Max            int     `json:"max"`
	ActiveShards   int     `json:"active_shards"`
	ActiveStandbys int     `json:"active_standbys"`
	Standbys       int     `json:"standbys"` // configured standby backends
	Width          int     `json:"width"`    // active dispatch width
	Busy           int     `json:"busy"`     // jobs in flight on active members
	Queue          int     `json:"queue"`    // jobs waiting for a slot
	UpThreshold    float64 `json:"up_threshold"`
	DownThreshold  float64 `json:"down_threshold"`
	ScaleUps       uint64  `json:"scale_ups"`
	ScaleDowns     uint64  `json:"scale_downs"`
}

// AutoscalerOptions configure an Autoscaler. The zero value of each
// field selects the documented default.
type AutoscalerOptions struct {
	// Min and Max bound the local shard count (Min 0 selects 1; Max 0
	// selects Min). Standby backends are recruited beyond Max.
	Min, Max int
	// Engine configures each spawned local shard. PrivateCaches is
	// forced on when the pool can ever hold more than one member, so
	// shards stay independent exactly like a ShardSet's.
	Engine Options
	// Spawn overrides how a local shard is built (tests inject scripted
	// backends); nil selects engine.New(Engine).
	Spawn func() Evaluator
	// Standby lists backends dialed when the local bound is exhausted
	// and retired first when load drops.
	Standby []StandbyBackend
	// UpThreshold is the busy/width utilization at or above which the
	// pool grows (0 selects 0.8); queued jobs grow it regardless.
	UpThreshold float64
	// DownThreshold is the utilization below which an idle-enough pool
	// shrinks (0 selects 0.25).
	DownThreshold float64
	// Cooldown is the minimum gap between consecutive scale events
	// (0 selects 2s; negative disables the gap).
	Cooldown time.Duration
	// Interval is the period of the background evaluation loop
	// (0 selects 1s; negative disables the loop — scaling then only
	// happens through ScaleNow, which tests use for determinism).
	Interval time.Duration
	// Width caps concurrent dispatch to members that report no local
	// workers — standby remote peers (0 selects 8).
	Width int
	// MaxRetries bounds per-job failover after a backend-level failure
	// (0 selects 2; negative disables failover retries).
	MaxRetries int
	// Cache, when set, is the fleet-wide result cache consulted before
	// every placement: a hit resolves the job without taking a slot —
	// so hot work neither queues nor triggers a scale-up — and every
	// successful attempt is stored back.
	Cache ResultCache
}

// NewAutoscaler starts an elastic pool at its minimum size and, unless
// the evaluation interval is negative, the background scale loop.
// Close drains and releases every member. The autoscaler owns its
// members: locals are spawned, standbys dialed and retired, entirely
// by the scale loop.
func NewAutoscaler(opts AutoscalerOptions) *Autoscaler {
	if opts.Min <= 0 {
		opts.Min = 1
	}
	if opts.Max <= 0 {
		opts.Max = opts.Min
	}
	if opts.Max < opts.Min {
		opts.Max = opts.Min
	}
	if opts.UpThreshold <= 0 {
		opts.UpThreshold = 0.8
	}
	if opts.DownThreshold <= 0 {
		opts.DownThreshold = 0.25
	}
	if opts.Cooldown == 0 {
		opts.Cooldown = 2 * time.Second
	}
	if opts.Interval == 0 {
		opts.Interval = time.Second
	}
	if opts.Width <= 0 {
		opts.Width = 8
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 2
	} else if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	}
	spawn := opts.Spawn
	if spawn == nil {
		eo := opts.Engine
		// Pools that can ever hold more than one member keep shards
		// independent, matching NewBackendWith's composition rule.
		if opts.Max > 1 || len(opts.Standby) > 0 {
			eo.PrivateCaches = true
		}
		spawn = func() Evaluator { return New(eo) }
	}
	a := &Autoscaler{
		min:        opts.Min,
		max:        opts.Max,
		up:         opts.UpThreshold,
		down:       opts.DownThreshold,
		cooldown:   opts.Cooldown,
		interval:   opts.Interval,
		width:      opts.Width,
		maxRetries: opts.MaxRetries,
		spawn:      spawn,
		standby:    opts.Standby,
		cache:      opts.Cache,
		live:       make([]bool, len(opts.Standby)),
		stop:       make(chan struct{}),
	}
	a.cond = sync.NewCond(&a.mu)
	a.mu.Lock()
	for i := 0; i < a.min; i++ {
		a.addLocalLocked()
	}
	a.mu.Unlock()
	if a.interval > 0 {
		go a.loop()
	}
	return a
}

// The autoscaler is a first-class member of the evaluation stack.
var (
	_ Evaluator        = (*Autoscaler)(nil)
	_ Composite        = (*Autoscaler)(nil)
	_ Prober           = (*Autoscaler)(nil)
	_ CapacityReporter = (*Autoscaler)(nil)
)

// addLocalLocked spawns one local shard and makes it active. Callers
// hold a.mu.
func (a *Autoscaler) addLocalLocked() *scaledMember {
	ev := a.spawn()
	w := LocalStats(ev).Workers
	if w <= 0 {
		w = a.width
	}
	m := &scaledMember{
		ev:      ev,
		name:    fmt.Sprintf("pool/%d", a.spawned),
		width:   w,
		standby: -1,
		active:  true,
	}
	a.spawned++
	a.locals++
	a.members = append(a.members, m)
	return m
}

// loop drives periodic scale evaluation until Close.
func (a *Autoscaler) loop() {
	t := time.NewTicker(a.interval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			a.ScaleNow()
		}
	}
}

// ScaleNow evaluates the load signal once and applies at most one scale
// event — the loop's body, exported so tests (and operators reacting to
// a known burst) can force a deterministic round. It reports whether
// the pool changed.
func (a *Autoscaler) ScaleNow() bool {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return false
	}
	now := time.Now()
	if a.cooldown > 0 && !a.last.IsZero() && now.Sub(a.last) < a.cooldown {
		a.mu.Unlock()
		return false
	}
	width, busy := a.loadLocked()
	queue := a.waiting
	util := 0.0
	if width > 0 {
		util = float64(busy) / float64(width)
	}
	var scaled bool
	switch {
	case (queue > 0 || util >= a.up) && a.canGrowLocked():
		reason := fmt.Sprintf("utilization %.2f >= %.2f", util, a.up)
		if queue > 0 {
			reason = fmt.Sprintf("queue depth %d", queue)
		}
		scaled = a.growLocked(now, reason)
	case queue == 0 && util < a.down && a.canShrinkLocked():
		scaled = a.shrinkLocked(now, fmt.Sprintf("utilization %.2f < %.2f", util, a.down))
	}
	a.mu.Unlock()
	if scaled {
		// New capacity (or a retirement) changes what waiters can get.
		a.cond.Broadcast()
	}
	return scaled
}

// loadLocked sums the active members' dispatch width and in-flight jobs.
func (a *Autoscaler) loadLocked() (width, busy int) {
	for _, m := range a.members {
		if m.active {
			width += m.width
			busy += m.inflight
		}
	}
	return width, busy
}

func (a *Autoscaler) canGrowLocked() bool {
	if a.locals < a.max {
		return true
	}
	for _, l := range a.live {
		if !l {
			return true
		}
	}
	return false
}

func (a *Autoscaler) canShrinkLocked() bool {
	if a.locals > a.min {
		return true
	}
	for _, l := range a.live {
		if l {
			return true
		}
	}
	return false
}

// growLocked adds one member: a local shard while the local bound
// allows, then the first idle standby. A standby whose dial fails is
// skipped this round.
func (a *Autoscaler) growLocked(now time.Time, reason string) bool {
	var m *scaledMember
	if a.locals < a.max {
		m = a.addLocalLocked()
	} else {
		for i := range a.standby {
			if a.live[i] {
				continue
			}
			ev, err := a.standby[i].Dial()
			if err != nil {
				continue
			}
			name := a.standby[i].Name
			if name == "" {
				name = fmt.Sprintf("standby/%d", i)
			}
			w := LocalStats(ev).Workers
			if w <= 0 {
				w = a.width
			}
			m = &scaledMember{ev: ev, name: name, width: w, standby: i, active: true}
			a.live[i] = true
			a.members = append(a.members, m)
			break
		}
	}
	if m == nil {
		return false
	}
	a.ups++
	a.recordLocked(now, "up", m.name, reason)
	return true
}

// shrinkLocked retires one member — standbys first (they cost a wire
// hop), then locals down to the minimum, preferring the least-loaded
// candidate — and hands it to a drainer that closes it only once its
// in-flight jobs have resolved.
func (a *Autoscaler) shrinkLocked(now time.Time, reason string) bool {
	var victim *scaledMember
	for _, m := range a.members {
		if !m.active {
			continue
		}
		if m.standby < 0 && a.locals <= a.min {
			continue // the local floor
		}
		if victim == nil ||
			(m.standby >= 0 && victim.standby < 0) || // standbys retire first
			(boolEq(m.standby >= 0, victim.standby >= 0) && m.inflight < victim.inflight) {
			victim = m
		}
	}
	if victim == nil {
		return false
	}
	victim.active = false
	victim.retired = true
	if victim.standby >= 0 {
		a.live[victim.standby] = false
	} else {
		a.locals--
	}
	a.downs++
	a.recordLocked(now, "down", victim.name, reason)
	a.drains.Add(1)
	go a.drainAndClose(victim)
	return true
}

func boolEq(x, y bool) bool { return x == y }

// drainAndClose waits for a retired member's in-flight jobs to resolve,
// then closes it — drain-before-retire. If the autoscaler itself closes
// first, Close owns the member shutdown and the drainer just exits.
func (a *Autoscaler) drainAndClose(m *scaledMember) {
	defer a.drains.Done()
	a.mu.Lock()
	for m.inflight > 0 && !a.closed {
		a.cond.Wait()
	}
	closed := a.closed
	a.mu.Unlock()
	if !closed {
		// The member is drained, so nothing resolves with ErrClosed
		// here; a failure would only repeat what the job results
		// already reported.
		_ = m.ev.Close()
	}
}

// recordLocked appends one scale event, bounding the retained history.
func (a *Autoscaler) recordLocked(now time.Time, dir, backend, reason string) {
	a.seq++
	width, _ := a.loadLocked()
	a.last = now
	a.events = append(a.events, ScaleEvent{
		Seq:       a.seq,
		Direction: dir,
		Backend:   backend,
		Reason:    reason,
		Width:     width,
		UnixMS:    now.UnixMilli(),
	})
	const maxEvents = 256
	if len(a.events) > maxEvents {
		a.events = append(a.events[:0:0], a.events[len(a.events)-maxEvents:]...)
	}
}

// Size returns how many members the pool has ever held (retired members
// keep reporting their counters).
func (a *Autoscaler) Size() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.members)
}

// Backend returns member i, for stats drill-down and tests. Members are
// only ever appended, so an index observed via Size stays valid.
func (a *Autoscaler) Backend(i int) Evaluator {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.members[i].ev
}

// Min and Max report the configured local-shard bounds.
func (a *Autoscaler) Min() int { return a.min }
func (a *Autoscaler) Max() int { return a.max }

// MaxRetries returns the per-job failover budget.
func (a *Autoscaler) MaxRetries() int { return a.maxRetries }

// Retries returns how many re-dispatches (attempts after each job's
// first) the autoscaler has performed over its lifetime.
func (a *Autoscaler) Retries() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.retries
}

// ResultCache returns the result-cache tier consulted before every
// placement, or nil when the pool runs uncached.
func (a *Autoscaler) ResultCache() ResultCache { return a.cache }

// CacheHits returns how many jobs were resolved from the result cache
// without ever being placed on a member.
func (a *Autoscaler) CacheHits() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cacheHits
}

// ScaleUps and ScaleDowns report the lifetime scale-event counters.
func (a *Autoscaler) ScaleUps() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ups
}

func (a *Autoscaler) ScaleDowns() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.downs
}

// Events snapshots the retained scale-event history, oldest first.
func (a *Autoscaler) Events() []ScaleEvent {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]ScaleEvent, len(a.events))
	copy(out, a.events)
	return out
}

// ScaleState snapshots the pool's shape and load signal.
func (a *Autoscaler) ScaleState() ScaleState {
	a.mu.Lock()
	defer a.mu.Unlock()
	width, busy := a.loadLocked()
	st := ScaleState{
		Min:           a.min,
		Max:           a.max,
		Standbys:      len(a.standby),
		Width:         width,
		Busy:          busy,
		Queue:         a.waiting,
		UpThreshold:   a.up,
		DownThreshold: a.down,
		ScaleUps:      a.ups,
		ScaleDowns:    a.downs,
	}
	for _, m := range a.members {
		if !m.active {
			continue
		}
		if m.standby >= 0 {
			st.ActiveStandbys++
		} else {
			st.ActiveShards++
		}
	}
	return st
}

// Health snapshots every member's scorecard, spawn order, retired
// members included — the same shape the Balancer reports, so stats
// endpoints and BENCH artifacts render both fronts identically.
func (a *Autoscaler) Health() []BackendHealth {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]BackendHealth, len(a.members))
	for i, m := range a.members {
		out[i] = BackendHealth{
			Name:       m.name,
			Healthy:    m.active,
			Width:      m.width,
			Inflight:   m.inflight,
			Dispatched: m.dispatched,
			Completed:  m.completed,
			Failed:     m.failed,
			Failovers:  m.failovers,
			Retired:    m.retired,
			Standby:    m.standby >= 0,
			LastError:  m.lastErr,
		}
	}
	return out
}

// Stats sums every member's own counters — the Evaluator view. Retired
// members stay included: the jobs they completed happened.
func (a *Autoscaler) Stats() Stats {
	var t Stats
	for _, st := range BackendStats(a) {
		t = t.Add(st)
	}
	return t
}

// Capacity reports the active pool's load snapshot: live width, jobs in
// flight, and the dispatch queue — the signal the scale loop itself
// consumes, so /v1/capacity shows exactly what scaling decisions see.
func (a *Autoscaler) Capacity(context.Context) (Capacity, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	width, busy := a.loadLocked()
	c := Capacity{Workers: width, Busy: busy, Queue: a.waiting}
	if busy < width {
		c.Free = width - busy
	}
	return c, nil
}

// Probe reports liveness: an open autoscaler always has at least its
// minimum pool accepting jobs.
func (a *Autoscaler) Probe(context.Context) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return ErrClosed
	}
	return nil
}

// Close stops the scale loop, wakes every waiter (their jobs resolve
// with ErrClosed), waits for retirement drains, closes every member
// concurrently, and releases the attached result cache last (a tier
// drains its queued peer fills there), joining every error. Idempotent.
// Scale-down retirements never touch the cache: it is attached to the
// front, not to the members.
func (a *Autoscaler) Close() error {
	var err error
	a.stopOnce.Do(func() {
		a.mu.Lock()
		a.closed = true
		members := make([]*scaledMember, len(a.members))
		copy(members, a.members)
		a.mu.Unlock()
		close(a.stop)
		a.cond.Broadcast()
		a.drains.Wait()
		errs := make([]error, len(members), len(members)+1)
		var wg sync.WaitGroup
		for i, m := range members {
			wg.Add(1)
			go func(i int, ev Evaluator) {
				defer wg.Done()
				errs[i] = ev.Close()
			}(i, m.ev)
		}
		wg.Wait()
		errs = append(errs, closeResultCache(a.cache))
		err = errors.Join(errs...)
	})
	return err
}

// Run dispatches every job to the least-loaded active member, failing
// over on backend-level errors, and returns results in submission
// order — Engine.Run semantics over the elastic pool.
func (a *Autoscaler) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	out := make([]Result, len(jobs))
	a.dispatch(ctx, jobs, func(i int, r Result) { out[i] = r })
	return out, ctx.Err()
}

// Stream dispatches like Run but yields each result the moment its job
// resolves, in completion order. The channel is buffered to len(jobs)
// and always closes — the Evaluator contract.
func (a *Autoscaler) Stream(ctx context.Context, jobs []Job) <-chan Result {
	out := make(chan Result, len(jobs))
	if len(jobs) == 0 {
		close(out)
		return out
	}
	go func() {
		defer close(out)
		a.dispatch(ctx, jobs, func(_ int, r Result) { out <- r })
	}()
	return out
}

// dispatch resolves every job exactly once through emit(jobIndex,
// result). One placement goroutine per job parks in acquire until an
// active member has a free slot; the parked count is the queue-depth
// signal the scale loop grows the pool from. A watcher broadcasts on
// the context ending so parked jobs observe the cancellation.
func (a *Autoscaler) dispatch(ctx context.Context, jobs []Job, emit func(int, Result)) {
	if len(jobs) == 0 {
		return
	}
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			// Broadcast under mu so the wakeup cannot fire into the gap
			// between a waiter's last ctx check and its park.
			a.mu.Lock()
			a.cond.Broadcast()
			a.mu.Unlock()
		case <-watchDone:
		}
	}()
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			emit(i, a.runJob(ctx, jobs[i]))
		}(i)
	}
	wg.Wait()
	close(watchDone)
}

// runJob places one job, retrying backend-level failures on other
// members within the failover budget — members already tried are
// excluded until every active member has been, then the exclusion
// resets so a freshly scaled-up pool gets another pass.
func (a *Autoscaler) runJob(ctx context.Context, j Job) Result {
	// A cache hit is a finished job: it neither takes a slot nor parks
	// in the queue, so hot work cannot talk the pool into growing.
	if a.cache != nil && j.Spec != nil {
		if v, ok := a.cache.Lookup(ctx, j.Spec); ok {
			a.mu.Lock()
			a.cacheHits++
			a.mu.Unlock()
			return Result{ID: j.ID, Value: v, Worker: -1}
		}
	}
	exclude := make(map[*scaledMember]bool)
	var last Result
	for attempt := 0; ; attempt++ {
		m, err := a.acquire(ctx, exclude)
		if err == errAllTried {
			exclude = make(map[*scaledMember]bool)
			m, err = a.acquire(ctx, exclude)
		}
		if err != nil {
			return Result{ID: j.ID, Err: err, Worker: -1}
		}
		if attempt > 0 {
			a.mu.Lock()
			a.retries++
			a.mu.Unlock()
		}
		last = a.attempt(ctx, m, j)
		if !Retryable(last.Err) {
			return last
		}
		a.mu.Lock()
		if attempt >= a.maxRetries {
			m.failed++
			a.mu.Unlock()
			return last
		}
		m.failovers++
		a.mu.Unlock()
		exclude[m] = true
	}
}

// acquire reserves a dispatch slot on the active member with the fewest
// in-flight jobs and a free slot. When every active member is saturated
// it parks — counted in waiting, which is what makes queued demand
// visible to the scale loop — until a completion, a scale event,
// cancellation, or Close wakes it.
func (a *Autoscaler) acquire(ctx context.Context, exclude map[*scaledMember]bool) (*scaledMember, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if a.closed {
			return nil, ErrClosed
		}
		var best *scaledMember
		allTried := true
		for _, m := range a.members {
			if !m.active || exclude[m] {
				continue
			}
			allTried = false
			if m.width-m.inflight > 0 && (best == nil || m.inflight < best.inflight) {
				best = m
			}
		}
		if allTried && len(exclude) > 0 {
			return nil, errAllTried
		}
		if best != nil {
			best.inflight++
			best.dispatched++
			return best, nil
		}
		a.waiting++
		a.cond.Wait()
		a.waiting--
	}
}

// attempt runs one job on one member and scores the outcome. Whether a
// retryable failure becomes a failover or a terminal failure is
// runJob's call — it owns the retry budget.
func (a *Autoscaler) attempt(ctx context.Context, m *scaledMember, j Job) Result {
	rs, _ := m.ev.Run(ctx, []Job{j})
	var r Result
	if len(rs) >= 1 {
		r = rs[0]
	} else {
		r = Result{ID: j.ID, Worker: -1,
			Err: fmt.Errorf("engine: backend %s returned no result: %w", m.name, ErrUnavailable)}
	}
	a.mu.Lock()
	m.inflight--
	switch {
	case r.Err == nil:
		m.completed++
	case Retryable(r.Err):
		m.lastErr = r.Err.Error()
	default:
		m.failed++
	}
	a.mu.Unlock()
	a.cond.Broadcast()
	if r.Err == nil && a.cache != nil && j.Spec != nil {
		a.cache.Store(ctx, j.Spec, r.Value)
	}
	return r
}
