package engine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunAllOrderAndValues(t *testing.T) {
	e := New(Options{Workers: 4, PrivateCaches: true})
	defer e.Close()

	jobs := make([]Job, 32)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			ID: fmt.Sprintf("job-%d", i),
			Fn: func(context.Context) (any, error) { return i * i, nil },
		}
	}
	results, err := e.RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	for i, r := range results {
		if r.ID != jobs[i].ID {
			t.Errorf("result %d: ID %q, want %q (submission order must be preserved)", i, r.ID, jobs[i].ID)
		}
		if r.Err != nil {
			t.Errorf("result %d: unexpected error %v", i, r.Err)
		}
		if r.Value.(int) != i*i {
			t.Errorf("result %d: value %v, want %d", i, r.Value, i*i)
		}
		if r.Worker < 0 || r.Worker >= 4 {
			t.Errorf("result %d: worker %d out of pool range", i, r.Worker)
		}
	}
	s := e.Stats()
	if s.Submitted != 32 || s.Completed != 32 || s.Failed != 0 || s.Canceled != 0 {
		t.Errorf("stats %+v, want 32 submitted/completed", s)
	}
}

func TestRunAllReportsJobErrors(t *testing.T) {
	e := New(Options{Workers: 2, PrivateCaches: true})
	defer e.Close()

	boom := errors.New("boom")
	jobs := []Job{
		{ID: "ok", Fn: func(context.Context) (any, error) { return 1, nil }},
		{ID: "bad", Fn: func(context.Context) (any, error) { return nil, boom }},
		{ID: "ok2", Fn: func(context.Context) (any, error) { return 2, nil }},
	}
	results, err := e.RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatalf("batch error %v; job failures must be per-result", err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("healthy jobs failed: %v, %v", results[0].Err, results[2].Err)
	}
	if !errors.Is(results[1].Err, boom) {
		t.Errorf("bad job error = %v, want %v", results[1].Err, boom)
	}
	if s := e.Stats(); s.Failed != 1 || s.Completed != 2 {
		t.Errorf("stats %+v, want 1 failed / 2 completed", s)
	}
}

func TestSubmitSingle(t *testing.T) {
	e := New(Options{Workers: 1, PrivateCaches: true})
	defer e.Close()

	r := <-e.Submit(context.Background(), Job{
		ID: "one",
		Fn: func(context.Context) (any, error) { return "done", nil },
	})
	if r.Err != nil || r.Value != "done" || r.ID != "one" {
		t.Fatalf("unexpected result %+v", r)
	}
}

func TestCancellationMidBatch(t *testing.T) {
	// One worker, pinned on a gated first job. The batch queued behind
	// it is cancelled while the worker is busy: every queued job must
	// resolve with the context error without executing.
	e := New(Options{Workers: 1, PrivateCaches: true})
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	started := make(chan struct{})
	release := make(chan struct{})
	var executed atomic.Int32
	first := e.Submit(ctx, Job{ID: "pinned", Fn: func(context.Context) (any, error) {
		executed.Add(1)
		close(started)
		<-release
		return "first", nil
	}})
	<-started // the only worker is now mid-job

	queued := make([]Job, 15)
	for i := range queued {
		queued[i] = Job{ID: fmt.Sprintf("queued-%d", i), Fn: func(context.Context) (any, error) {
			executed.Add(1)
			return nil, nil
		}}
	}
	resCh := make(chan []Result, 1)
	go func() {
		rs, _ := e.RunAll(ctx, queued)
		resCh <- rs
	}()

	cancel()       // cancel the batch while the worker is still busy
	close(release) // then let the pinned job finish

	if r := <-first; r.Err != nil || r.Value != "first" {
		t.Fatalf("pinned job should have completed, got %+v", r)
	}
	for _, r := range <-resCh {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %s: error %v, want context.Canceled", r.ID, r.Err)
		}
	}
	if n := executed.Load(); n != 1 {
		t.Errorf("%d jobs executed, want only the pinned one", n)
	}
	if s := e.Stats(); s.Canceled != 15 {
		t.Errorf("stats %+v, want 15 canceled", s)
	}
}

func TestPerJobTimeout(t *testing.T) {
	e := New(Options{Workers: 1, PrivateCaches: true})
	defer e.Close()

	r := <-e.Submit(context.Background(), Job{
		ID:      "slow",
		Timeout: 10 * time.Millisecond,
		Fn: func(ctx context.Context) (any, error) {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(10 * time.Second):
				return "too late", nil
			}
		},
	})
	if !errors.Is(r.Err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", r.Err)
	}
}

func TestEngineDefaultTimeout(t *testing.T) {
	e := New(Options{Workers: 1, JobTimeout: 10 * time.Millisecond, PrivateCaches: true})
	defer e.Close()

	r := <-e.Submit(context.Background(), Job{
		ID: "slow",
		Fn: func(ctx context.Context) (any, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	if !errors.Is(r.Err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", r.Err)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	e := New(Options{Workers: 1, PrivateCaches: true})
	e.Close()
	e.Close() // idempotent

	r := <-e.Submit(context.Background(), Job{
		ID: "late",
		Fn: func(context.Context) (any, error) { return nil, nil },
	})
	if !errors.Is(r.Err, ErrClosed) {
		t.Fatalf("error = %v, want ErrClosed", r.Err)
	}
	s := e.Stats()
	if s.Rejected != 1 {
		t.Errorf("stats %+v, want 1 rejected", s)
	}
	if s.Submitted != s.Completed+s.Failed+s.Canceled+s.Rejected {
		t.Errorf("stats %+v do not balance", s)
	}
}

func TestDefaultWorkerCount(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	if e.Workers() < 1 {
		t.Fatalf("default worker count %d, want >= 1", e.Workers())
	}
}

// TestRaceStress drives many small jobs through shared caches; its value
// is under `go test -race`, where any unsynchronised access in the
// engine, the caches, or the memoized netlist turns into a failure.
func TestRaceStress(t *testing.T) {
	e := New(Options{Workers: 8, PrivateCaches: true})
	defer e.Close()

	sources := []string{
		"LDI T1, 1\nHALT",
		"LDI T1, 2\nADDI T1, 1\nHALT",
		"LDI T1, 3\nADDI T1, -1\nHALT",
	}
	jobs := make([]Job, 300)
	for i := range jobs {
		src := sources[i%len(sources)]
		jobs[i] = Job{
			ID: fmt.Sprintf("stress-%d", i),
			Fn: func(context.Context) (any, error) {
				p, err := e.Programs.Assemble(src)
				if err != nil {
					return nil, err
				}
				return len(p.Text), nil
			},
		}
	}
	results, err := e.RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("job %s: %v", r.ID, r.Err)
		}
	}
	ps := e.Programs.Stats()
	if ps.Entries != len(sources) {
		t.Errorf("program cache entries = %d, want %d", ps.Entries, len(sources))
	}
	if ps.Hits+ps.Misses != 300 {
		t.Errorf("cache lookups = %d, want 300", ps.Hits+ps.Misses)
	}
}
