// Autoscaler tests drive scaling deterministically: a negative
// Interval disables the background loop and a negative Cooldown the
// event gap, so every pool transition happens inside an explicit
// ScaleNow call the test controls.
package engine_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
)

// manualScaler builds an autoscaler whose pool only moves when the test
// calls ScaleNow.
func manualScaler(t *testing.T, opts engine.AutoscalerOptions) *engine.Autoscaler {
	t.Helper()
	opts.Interval = -1
	opts.Cooldown = -1
	a := engine.NewAutoscaler(opts)
	t.Cleanup(func() { a.Close() })
	return a
}

// blockingJob returns a job that parks until release is closed.
func blockingJob(id string, release <-chan struct{}) engine.Job {
	return engine.Job{ID: id, Fn: func(ctx context.Context) (any, error) {
		select {
		case <-release:
			return id, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// drainStream collects every result of a stream.
func drainStream(ch <-chan engine.Result) []engine.Result {
	var out []engine.Result
	for r := range ch {
		out = append(out, r)
	}
	return out
}

// TestAutoscalerGrowsUnderQueue pins the scale-up signal: jobs parked
// beyond the active capacity grow the pool one member per round until
// the local ceiling, and every transition lands in the event log.
func TestAutoscalerGrowsUnderQueue(t *testing.T) {
	a := manualScaler(t, engine.AutoscalerOptions{
		Min: 1, Max: 3,
		Engine: engine.Options{Workers: 1},
	})
	if got := a.Size(); got != 1 {
		t.Fatalf("pool starts with %d members, want the minimum 1", got)
	}

	release := make(chan struct{})
	jobs := make([]engine.Job, 5)
	for i := range jobs {
		jobs[i] = blockingJob(fmt.Sprintf("j%d", i), release)
	}
	stream := a.Stream(context.Background(), jobs)

	// One slot exists, so four jobs park — the queue-depth signal.
	waitUntil(t, "jobs to queue", func() bool { return a.ScaleState().Queue >= 2 })
	for round := 0; round < 2; round++ {
		if !a.ScaleNow() {
			t.Fatalf("round %d: ScaleNow did not grow a queued pool", round)
		}
	}
	if got := a.Size(); got != 3 {
		t.Fatalf("pool has %d members after two scale-ups, want 3", got)
	}
	// The ceiling holds even though jobs are still queued.
	waitUntil(t, "queue after growth", func() bool { return a.ScaleState().Queue >= 1 })
	if a.ScaleNow() {
		t.Fatal("ScaleNow grew past the local ceiling with no standbys")
	}

	close(release)
	results := drainStream(stream)
	if len(results) != len(jobs) {
		t.Fatalf("stream yielded %d results, want %d", len(results), len(jobs))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("job %s failed across the scaling pool: %v", r.ID, r.Err)
		}
	}
	if ups, downs := a.ScaleUps(), a.ScaleDowns(); ups != 2 || downs != 0 {
		t.Errorf("scale counters ups=%d downs=%d, want 2/0", ups, downs)
	}
	events := a.Events()
	if len(events) != 2 {
		t.Fatalf("event log has %d entries, want 2", len(events))
	}
	for i, e := range events {
		if e.Direction != "up" || e.Seq != i+1 || e.Backend == "" || e.Reason == "" {
			t.Errorf("event %d = %+v, want an up event with seq %d and a named backend/reason", i, e, i+1)
		}
	}
}

// closeTracker wraps a member so the test observes exactly when the
// autoscaler releases it.
type closeTracker struct {
	engine.Evaluator
	closed atomic.Bool
}

func (c *closeTracker) Close() error {
	c.closed.Store(true)
	return c.Evaluator.Close()
}

// TestAutoscalerDrainsBeforeRetire pins the shrink contract: a retired
// member stops receiving new jobs immediately but is closed only after
// its in-flight jobs resolve, so a shrink never loses work.
func TestAutoscalerDrainsBeforeRetire(t *testing.T) {
	var trackers []*closeTracker
	a := manualScaler(t, engine.AutoscalerOptions{
		Min: 1, Max: 2,
		DownThreshold: 0.9,
		Spawn: func() engine.Evaluator {
			ct := &closeTracker{Evaluator: engine.New(engine.Options{Workers: 2, PrivateCaches: true})}
			trackers = append(trackers, ct)
			return ct
		},
	})

	// Grow to two members by queuing past the first one's width.
	release := make(chan struct{})
	var jobs []engine.Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, blockingJob(fmt.Sprintf("burst%d", i), release))
	}
	stream := a.Stream(context.Background(), jobs)
	waitUntil(t, "burst to queue", func() bool { return a.ScaleState().Queue >= 1 })
	if !a.ScaleNow() {
		t.Fatal("ScaleNow did not grow under the burst")
	}
	waitUntil(t, "both members busy", func() bool {
		for _, h := range a.Health() {
			if h.Inflight == 0 {
				return false
			}
		}
		return len(a.Health()) == 2
	})

	// Both members carry in-flight work; utilization 4/4 is busy, so
	// first drain the queue down to one blocked job per member by
	// releasing nothing yet — instead force the shrink signal with the
	// high DownThreshold once the queue clears. Release two jobs.
	st := a.ScaleState()
	if st.ActiveShards != 2 {
		t.Fatalf("active shards = %d, want 2", st.ActiveShards)
	}

	close(release)
	results := drainStream(stream)
	if len(results) != len(jobs) {
		t.Fatalf("burst yielded %d results, want %d", len(results), len(jobs))
	}

	// Pin a fresh blocking job on each member so the shrink victim is
	// guaranteed to have in-flight work when it is retired.
	hold := make(chan struct{})
	s2 := a.Stream(context.Background(), []engine.Job{
		blockingJob("hold0", hold), blockingJob("hold1", hold),
	})
	waitUntil(t, "one held job per member", func() bool {
		hs := a.Health()
		return len(hs) == 2 && hs[0].Inflight == 1 && hs[1].Inflight == 1
	})

	// util = 2/4 = 0.5 < 0.9, queue empty → shrink. Equal load means
	// the first member is the victim.
	if !a.ScaleNow() {
		t.Fatal("ScaleNow did not shrink the underutilized pool")
	}
	hs := a.Health()
	if !hs[0].Retired || hs[0].Healthy {
		t.Fatalf("victim health %+v, want retired and not healthy", hs[0])
	}
	if trackers[0].closed.Load() {
		t.Fatal("victim closed while its job was still in flight — drain-before-retire violated")
	}

	close(hold)
	for _, r := range drainStream(s2) {
		if r.Err != nil {
			t.Errorf("held job %s failed: %v", r.ID, r.Err)
		}
	}
	waitUntil(t, "victim to drain and close", func() bool { return trackers[0].closed.Load() })
	if trackers[1].closed.Load() {
		t.Fatal("surviving member was closed by the shrink")
	}
	if ups, downs := a.ScaleUps(), a.ScaleDowns(); ups != 1 || downs != 1 {
		t.Errorf("scale counters ups=%d downs=%d, want 1/1", ups, downs)
	}

	// The shrunken pool still serves jobs.
	rs, err := a.Run(context.Background(), []engine.Job{
		{ID: "after", Fn: func(context.Context) (any, error) { return 42, nil }},
	})
	if err != nil || rs[0].Err != nil || rs[0].Value.(int) != 42 {
		t.Fatalf("post-shrink run = (%+v, %v), want value 42", rs, err)
	}
}

// TestAutoscalerRecruitsAndRetiresStandbys pins the standby lifecycle:
// standbys are dialed only once the local ceiling is exhausted, carry
// jobs like any member, and retire before local shards when load drops.
func TestAutoscalerRecruitsAndRetiresStandbys(t *testing.T) {
	var dials atomic.Int32
	a := manualScaler(t, engine.AutoscalerOptions{
		Min: 1, Max: 1,
		Engine:        engine.Options{Workers: 1},
		DownThreshold: 0.9,
		Standby: []engine.StandbyBackend{{
			Name: "reserve-a",
			Dial: func() (engine.Evaluator, error) {
				dials.Add(1)
				return engine.New(engine.Options{Workers: 1, PrivateCaches: true}), nil
			},
		}},
	})

	release := make(chan struct{})
	stream := a.Stream(context.Background(), []engine.Job{
		blockingJob("b0", release), blockingJob("b1", release), blockingJob("b2", release),
	})
	waitUntil(t, "jobs to queue", func() bool { return a.ScaleState().Queue >= 1 })
	if !a.ScaleNow() {
		t.Fatal("ScaleNow did not recruit the standby at the local ceiling")
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("standby dialed %d times, want 1", got)
	}
	st := a.ScaleState()
	if st.ActiveShards != 1 || st.ActiveStandbys != 1 {
		t.Fatalf("scale state %+v, want 1 local + 1 standby active", st)
	}
	hs := a.Health()
	if len(hs) != 2 || !hs[1].Standby || hs[1].Name != "reserve-a" {
		t.Fatalf("health %+v, want the second member to be standby reserve-a", hs)
	}

	close(release)
	results := drainStream(stream)
	if len(results) != 3 {
		t.Fatalf("stream yielded %d results, want 3", len(results))
	}
	waitUntil(t, "pool to go idle", func() bool { return a.ScaleState().Busy == 0 })

	// Idle: the standby retires first — and the local floor of one means
	// a second shrink round has no victim.
	if !a.ScaleNow() {
		t.Fatal("ScaleNow did not retire the idle standby")
	}
	hs = a.Health()
	if !hs[1].Retired || hs[1].Healthy {
		t.Fatalf("standby health %+v, want retired", hs[1])
	}
	if hs[0].Retired {
		t.Fatalf("local shard %+v retired before the standby", hs[0])
	}
	if a.ScaleNow() {
		t.Fatal("ScaleNow shrank below the local floor")
	}
	if ev := a.Events(); len(ev) != 2 || ev[0].Direction != "up" || ev[1].Direction != "down" {
		t.Fatalf("events %+v, want exactly one up then one down", ev)
	}
}

// TestAutoscalerStandbyDialFailureSkipsRound pins the failure path: a
// standby whose dial errors is skipped without a scale event, and the
// pool keeps serving from its local members.
func TestAutoscalerStandbyDialFailureSkipsRound(t *testing.T) {
	a := manualScaler(t, engine.AutoscalerOptions{
		Min: 1, Max: 1,
		Engine: engine.Options{Workers: 1},
		Standby: []engine.StandbyBackend{{
			Name: "broken",
			Dial: func() (engine.Evaluator, error) { return nil, errors.New("dial refused") },
		}},
	})

	release := make(chan struct{})
	stream := a.Stream(context.Background(), []engine.Job{
		blockingJob("b0", release), blockingJob("b1", release),
	})
	waitUntil(t, "a job to queue", func() bool { return a.ScaleState().Queue >= 1 })
	if a.ScaleNow() {
		t.Fatal("ScaleNow reported growth although the only standby's dial failed")
	}
	if got := a.ScaleUps(); got != 0 {
		t.Errorf("ScaleUps = %d after a failed dial, want 0", got)
	}
	close(release)
	for _, r := range drainStream(stream) {
		if r.Err != nil {
			t.Errorf("job %s failed: %v", r.ID, r.Err)
		}
	}
}

// TestAutoscalerCooldownGatesEvents pins the hysteresis gap: with a
// long cooldown, a second trigger inside the window is ignored.
func TestAutoscalerCooldownGatesEvents(t *testing.T) {
	a := engine.NewAutoscaler(engine.AutoscalerOptions{
		Min: 1, Max: 3,
		Engine:   engine.Options{Workers: 1},
		Interval: -1,
		Cooldown: time.Hour,
	})
	defer a.Close()

	release := make(chan struct{})
	var jobs []engine.Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, blockingJob(fmt.Sprintf("c%d", i), release))
	}
	stream := a.Stream(context.Background(), jobs)
	waitUntil(t, "jobs to queue", func() bool { return a.ScaleState().Queue >= 2 })
	if !a.ScaleNow() {
		t.Fatal("first ScaleNow did not grow")
	}
	if a.ScaleNow() {
		t.Fatal("second ScaleNow ignored the cooldown")
	}
	if got := a.ScaleUps(); got != 1 {
		t.Errorf("ScaleUps = %d, want 1 inside the cooldown window", got)
	}
	close(release)
	drainStream(stream)
}

// TestAutoscalerCloseResolvesParkedJobs pins the Close contract over
// the elastic pool: in-flight jobs finish, parked jobs resolve with
// ErrClosed, and Close is idempotent.
func TestAutoscalerCloseResolvesParkedJobs(t *testing.T) {
	a := engine.NewAutoscaler(engine.AutoscalerOptions{
		Min: 1, Max: 1,
		Engine:   engine.Options{Workers: 1},
		Interval: -1,
	})

	release := make(chan struct{})
	jobs := []engine.Job{
		blockingJob("running", release),
		blockingJob("parked0", release),
		blockingJob("parked1", release),
	}
	stream := a.Stream(context.Background(), jobs)
	waitUntil(t, "jobs to park", func() bool { return a.ScaleState().Queue == 2 })

	done := make(chan error, 1)
	go func() { done <- a.Close() }()
	// Close drains the in-flight job; let it finish.
	time.Sleep(10 * time.Millisecond)
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Close() = %v", err)
	}

	// Any of the three jobs may have won the single slot — dispatch is
	// concurrent — but the Close contract fixes the shape: exactly the
	// one in-flight job drains successfully, the two parked ones resolve
	// with ErrClosed.
	var drained, refused int
	for _, r := range drainStream(stream) {
		switch {
		case r.Err == nil:
			drained++
		case errors.Is(r.Err, engine.ErrClosed):
			refused++
		default:
			t.Errorf("job %s = %+v, want success or ErrClosed", r.ID, r)
		}
	}
	if drained != 1 || refused != 2 {
		t.Fatalf("close resolved %d drained + %d refused, want 1 + 2", drained, refused)
	}
	if err := a.Close(); err != nil {
		t.Errorf("second Close() = %v, want idempotent nil", err)
	}
}

// TestAutoscalerRunKeepsSubmissionOrder pins the Run contract over a
// scaling pool: one result per job, in submission order.
func TestAutoscalerRunKeepsSubmissionOrder(t *testing.T) {
	a := manualScaler(t, engine.AutoscalerOptions{
		Min: 2, Max: 2,
		Engine: engine.Options{Workers: 1},
	})
	var jobs []engine.Job
	for i := 0; i < 20; i++ {
		i := i
		jobs = append(jobs, engine.Job{
			ID: fmt.Sprintf("n%02d", i),
			Fn: func(context.Context) (any, error) { return i, nil },
		})
	}
	results, err := a.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.ID != jobs[i].ID || r.Err != nil || r.Value.(int) != i {
			t.Errorf("result %d = %+v, want job %s with value %d", i, r, jobs[i].ID, i)
		}
	}
	st := a.Stats()
	if st.Completed != 20 {
		t.Errorf("stats %+v, want 20 completed", st)
	}
}

// TestAutoscalerFailoverRetriesOnDeadMember pins job-level failover
// inside the pool: a member that starts failing retryably has its jobs
// re-run on another member within the budget.
func TestAutoscalerFailoverRetriesOnDeadMember(t *testing.T) {
	var spawned int
	a := manualScaler(t, engine.AutoscalerOptions{
		Min: 2, Max: 2,
		Spawn: func() engine.Evaluator {
			spawned++
			if spawned == 1 {
				// The first member dies immediately: every dispatch to it
				// resolves with the retryable closed error.
				e := engine.New(engine.Options{Workers: 1, PrivateCaches: true})
				e.Close()
				return e
			}
			return engine.New(engine.Options{Workers: 1, PrivateCaches: true})
		},
	})

	results, err := a.Run(context.Background(), []engine.Job{
		{ID: "a", Fn: func(context.Context) (any, error) { return 1, nil }},
		{ID: "b", Fn: func(context.Context) (any, error) { return 2, nil }},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil || r.Value.(int) != i+1 {
			t.Errorf("result %d = %+v, want value %d despite the dead member", i, r, i+1)
		}
	}
	var failovers uint64
	for _, h := range a.Health() {
		failovers += h.Failovers
	}
	if failovers == 0 && a.Retries() == 0 {
		t.Error("no failovers or retries recorded although one member was dead")
	}
}
