package engine

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/asm"
	"repro/internal/gate"
)

// CacheStats snapshot one memoization cache's counters: lookups,
// resident entries, the approximate bytes they pin, and how many
// entries the bounds have evicted.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Entries   int
	Bytes     int64
	Evictions uint64
}

// Default bounds for the memoization caches. The entry caps carry the
// serve layer's historical 4096-program purge threshold into the caches
// themselves; the byte caps keep a long-lived instance fed unbounded
// distinct sources from growing without limit.
const (
	DefaultProgramCacheEntries  = 4096
	DefaultProgramCacheBytes    = 64 << 20
	DefaultAnalysisCacheEntries = 4096
	DefaultAnalysisCacheBytes   = 16 << 20

	// programFootprint and analysisFootprint are the accounted
	// per-entry overheads beyond the key text: an assembled program is
	// on the order of its source, an analysis is a fixed-size struct
	// plus a small histogram. Approximate by design — the bound is a
	// memory backstop, not an allocator.
	programFootprint  = 1 << 10
	analysisFootprint = 4 << 10
)

// The process-wide caches every engine shares by default, so repeated
// suite evaluations — successive RunAll calls, the bench harness, the
// batch CLI — reuse each other's work. Both are LRU-bounded (the
// Default*Cache* limits), so a long-lived embedder feeding unbounded
// distinct sources through Compile/AssembleCached ages cold entries
// out instead of growing without limit.
var (
	SharedPrograms = NewProgramCache()
	SharedAnalyses = NewAnalysisCache()
)

// lruEntry is one resident cache value with its accounted cost.
type lruEntry[E any] struct {
	key  string
	cost int64
	val  E
}

// lruIndex is the bookkeeping shared by both memoization caches — the
// same recency-list eviction and size accounting internal/rescache
// uses for the fleet-wide result cache. Not self-locking: callers
// operate under their cache's mutex.
type lruIndex[E any] struct {
	m          map[string]*list.Element
	order      *list.List // front = most recently used
	maxEntries int
	maxBytes   int64
	bytes      int64
	evictions  uint64
}

func newLRUIndex[E any](maxEntries int, maxBytes int64) *lruIndex[E] {
	return &lruIndex[E]{
		m:          map[string]*list.Element{},
		order:      list.New(),
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
	}
}

// get returns the entry for key, refreshing its recency.
func (x *lruIndex[E]) get(key string) (E, bool) {
	el, ok := x.m[key]
	if !ok {
		var zero E
		return zero, false
	}
	x.order.MoveToFront(el)
	return el.Value.(*lruEntry[E]).val, true
}

// add inserts a new entry and evicts from the cold end until the
// bounds hold; the entry just inserted is never evicted, so a single
// oversized source still computes and memoizes.
func (x *lruIndex[E]) add(key string, cost int64, v E) {
	x.m[key] = x.order.PushFront(&lruEntry[E]{key: key, cost: cost, val: v})
	x.bytes += cost
	for (x.maxBytes > 0 && x.bytes > x.maxBytes) ||
		(x.maxEntries > 0 && x.order.Len() > x.maxEntries) {
		el := x.order.Back()
		if el == nil || x.order.Len() == 1 {
			break
		}
		e := x.order.Remove(el).(*lruEntry[E])
		delete(x.m, e.key)
		x.bytes -= e.cost
		x.evictions++
	}
}

// purge drops every entry; eviction counters are kept.
func (x *lruIndex[E]) purge() {
	x.m = map[string]*list.Element{}
	x.order.Init()
	x.bytes = 0
}

// progEntry memoizes one assembly, including its error: a source that
// fails to assemble fails identically every time.
type progEntry struct {
	once sync.Once
	p    *asm.Program
	err  error
}

// ProgramCache memoizes asm.Assemble keyed by source text, bounded by
// LRU eviction. Assembly is deterministic and the resulting Program is
// never mutated by the simulators (State.Load copies it into machine
// memory), so one shared instance per source is safe under
// concurrency. An evicted source simply re-assembles on next use —
// holders of the evicted Program keep a valid value.
type ProgramCache struct {
	mu     sync.Mutex
	idx    *lruIndex[*progEntry]
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewProgramCache returns a cache with the default bounds.
func NewProgramCache() *ProgramCache {
	return NewProgramCacheSized(0, 0)
}

// NewProgramCacheSized returns a cache bounded to maxEntries entries
// and maxBytes accounted bytes; 0 selects the package default for that
// dimension, negative leaves it unbounded.
func NewProgramCacheSized(maxEntries int, maxBytes int64) *ProgramCache {
	if maxEntries == 0 {
		maxEntries = DefaultProgramCacheEntries
	}
	if maxBytes == 0 {
		maxBytes = DefaultProgramCacheBytes
	}
	return &ProgramCache{idx: newLRUIndex[*progEntry](maxEntries, maxBytes)}
}

// Assemble returns the memoized program for src, assembling it on first
// use. Concurrent callers with the same source block on one assembly
// instead of duplicating it.
func (c *ProgramCache) Assemble(src string) (*asm.Program, error) {
	c.mu.Lock()
	e, ok := c.idx.get(src)
	if !ok {
		e = &progEntry{}
		c.idx.add(src, int64(len(src))+programFootprint, e)
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() { e.p, e.err = asm.Assemble(src) })
	return e.p, e.err
}

// Stats returns a snapshot of the counters.
func (c *ProgramCache) Stats() CacheStats {
	c.mu.Lock()
	n, bytes, ev := c.idx.order.Len(), c.idx.bytes, c.idx.evictions
	c.mu.Unlock()
	return CacheStats{
		Hits: c.hits.Load(), Misses: c.misses.Load(),
		Entries: n, Bytes: bytes, Evictions: ev,
	}
}

// Purge drops every entry (counters are kept).
func (c *ProgramCache) Purge() {
	c.mu.Lock()
	c.idx.purge()
	c.mu.Unlock()
}

type analysisEntry struct {
	once sync.Once
	an   *gate.Analysis
}

// AnalysisCache memoizes gate.Analyze keyed by (netlist, technology
// fingerprint), bounded by LRU eviction. gate.Analyze is pure — it only
// reads the netlist and the technology — so a shared Analysis per key is
// safe; callers must treat the returned Analysis (including its
// Histogram map) as read-only.
type AnalysisCache struct {
	mu     sync.Mutex
	idx    *lruIndex[*analysisEntry]
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewAnalysisCache returns a cache with the default bounds.
func NewAnalysisCache() *AnalysisCache {
	return NewAnalysisCacheSized(0, 0)
}

// NewAnalysisCacheSized returns a cache bounded to maxEntries entries
// and maxBytes accounted bytes; 0 selects the package default for that
// dimension, negative leaves it unbounded.
func NewAnalysisCacheSized(maxEntries int, maxBytes int64) *AnalysisCache {
	if maxEntries == 0 {
		maxEntries = DefaultAnalysisCacheEntries
	}
	if maxBytes == 0 {
		maxBytes = DefaultAnalysisCacheBytes
	}
	return &AnalysisCache{idx: newLRUIndex[*analysisEntry](maxEntries, maxBytes)}
}

// Analyze returns the memoized analysis for (netlistKey, tech), building
// the netlist and running the analyzer on first use. netlistKey must
// uniquely name what build() constructs.
func (c *AnalysisCache) Analyze(netlistKey string, build func() *gate.Netlist, tech *gate.Technology) *gate.Analysis {
	key := netlistKey + "\x00" + tech.Fingerprint()
	c.mu.Lock()
	e, ok := c.idx.get(key)
	if !ok {
		e = &analysisEntry{}
		c.idx.add(key, int64(len(key))+analysisFootprint, e)
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() { e.an = gate.Analyze(build(), tech) })
	return e.an
}

// Stats returns a snapshot of the counters.
func (c *AnalysisCache) Stats() CacheStats {
	c.mu.Lock()
	n, bytes, ev := c.idx.order.Len(), c.idx.bytes, c.idx.evictions
	c.mu.Unlock()
	return CacheStats{
		Hits: c.hits.Load(), Misses: c.misses.Load(),
		Entries: n, Bytes: bytes, Evictions: ev,
	}
}

// Purge drops every entry (counters are kept).
func (c *AnalysisCache) Purge() {
	c.mu.Lock()
	c.idx.purge()
	c.mu.Unlock()
}

// The ART-9 pipelined-core netlist is immutable once built and the
// analyzer never writes to it, so one process-wide copy serves every
// technology analysis.
var (
	art9Once sync.Once
	art9Net  *gate.Netlist
)

// ART9Netlist returns the memoized structural netlist of the pipelined
// ART-9 core. Treat it as read-only.
func ART9Netlist() *gate.Netlist {
	art9Once.Do(func() { art9Net = gate.BuildART9() })
	return art9Net
}

// AssembleCached assembles ART-9 source through the shared program cache.
func AssembleCached(src string) (*asm.Program, error) {
	return SharedPrograms.Assemble(src)
}

// AnalyzeART9 analyzes the ART-9 core netlist for tech through the shared
// analysis cache.
func AnalyzeART9(tech *gate.Technology) *gate.Analysis {
	return SharedAnalyses.Analyze("art9", ART9Netlist, tech)
}
