package engine

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/asm"
	"repro/internal/gate"
)

// CacheStats snapshot the hit/miss counters of one cache.
type CacheStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
}

// The process-wide caches every engine shares by default, so repeated
// suite evaluations — successive RunAll calls, the bench harness, the
// batch CLI — reuse each other's work. They are unbounded: fine for the
// fixed benchmark suite and CLI runs, but a long-lived embedder feeding
// unbounded distinct sources through Compile/AssembleCached should call
// Purge between batches (or route its own work through private caches).
var (
	SharedPrograms = NewProgramCache()
	SharedAnalyses = NewAnalysisCache()
)

// progEntry memoizes one assembly, including its error: a source that
// fails to assemble fails identically every time.
type progEntry struct {
	once sync.Once
	p    *asm.Program
	err  error
}

// ProgramCache memoizes asm.Assemble keyed by source text. Assembly is
// deterministic and the resulting Program is never mutated by the
// simulators (State.Load copies it into machine memory), so one shared
// instance per source is safe under concurrency.
type ProgramCache struct {
	mu     sync.Mutex
	m      map[string]*progEntry
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewProgramCache returns an empty cache.
func NewProgramCache() *ProgramCache {
	return &ProgramCache{m: map[string]*progEntry{}}
}

// Assemble returns the memoized program for src, assembling it on first
// use. Concurrent callers with the same source block on one assembly
// instead of duplicating it.
func (c *ProgramCache) Assemble(src string) (*asm.Program, error) {
	c.mu.Lock()
	e, ok := c.m[src]
	if !ok {
		e = &progEntry{}
		c.m[src] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() { e.p, e.err = asm.Assemble(src) })
	return e.p, e.err
}

// Stats returns a snapshot of the counters.
func (c *ProgramCache) Stats() CacheStats {
	c.mu.Lock()
	n := len(c.m)
	c.mu.Unlock()
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: n}
}

// Purge drops every entry (counters are kept).
func (c *ProgramCache) Purge() {
	c.mu.Lock()
	c.m = map[string]*progEntry{}
	c.mu.Unlock()
}

type analysisEntry struct {
	once sync.Once
	an   *gate.Analysis
}

// AnalysisCache memoizes gate.Analyze keyed by (netlist, technology
// fingerprint). gate.Analyze is pure — it only reads the netlist and the
// technology — so a shared Analysis per key is safe; callers must treat
// the returned Analysis (including its Histogram map) as read-only.
type AnalysisCache struct {
	mu     sync.Mutex
	m      map[string]*analysisEntry
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewAnalysisCache returns an empty cache.
func NewAnalysisCache() *AnalysisCache {
	return &AnalysisCache{m: map[string]*analysisEntry{}}
}

// Analyze returns the memoized analysis for (netlistKey, tech), building
// the netlist and running the analyzer on first use. netlistKey must
// uniquely name what build() constructs.
func (c *AnalysisCache) Analyze(netlistKey string, build func() *gate.Netlist, tech *gate.Technology) *gate.Analysis {
	key := netlistKey + "\x00" + techFingerprint(tech)
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &analysisEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() { e.an = gate.Analyze(build(), tech) })
	return e.an
}

// Stats returns a snapshot of the counters.
func (c *AnalysisCache) Stats() CacheStats {
	c.mu.Lock()
	n := len(c.m)
	c.mu.Unlock()
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: n}
}

// Purge drops every entry (counters are kept).
func (c *AnalysisCache) Purge() {
	c.mu.Lock()
	c.m = map[string]*analysisEntry{}
	c.mu.Unlock()
}

// techFingerprint derives a content key from every field the analyzer
// reads, so two Technology values that would analyze identically share a
// cache entry and a modified copy (even under the same Name) does not.
func techFingerprint(t *gate.Technology) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%g|%g|%g|%g|%g|%g|%g|%g",
		t.Name, t.ClkQPs, t.SetupPs, t.Activity, t.StaticW, t.IOW,
		t.MemReadEnergyFJ, t.MemWriteEnergyFJ, t.MemLeakageNWPerTrit)
	for k := gate.CellKind(0); k < gate.NumCellKinds; k++ {
		if p, ok := t.Props[k]; ok {
			fmt.Fprintf(&b, "|%d:%g,%g,%g,%g", k, p.DelayPs, p.EnergyFJ, p.LeakNW, p.ALMs)
		}
	}
	return b.String()
}

// The ART-9 pipelined-core netlist is immutable once built and the
// analyzer never writes to it, so one process-wide copy serves every
// technology analysis.
var (
	art9Once sync.Once
	art9Net  *gate.Netlist
)

// ART9Netlist returns the memoized structural netlist of the pipelined
// ART-9 core. Treat it as read-only.
func ART9Netlist() *gate.Netlist {
	art9Once.Do(func() { art9Net = gate.BuildART9() })
	return art9Net
}

// AssembleCached assembles ART-9 source through the shared program cache.
func AssembleCached(src string) (*asm.Program, error) {
	return SharedPrograms.Assemble(src)
}

// AnalyzeART9 analyzes the ART-9 core netlist for tech through the shared
// analysis cache.
func AnalyzeART9(tech *gate.Technology) *gate.Analysis {
	return SharedAnalyses.Analyze("art9", ART9Netlist, tech)
}
