package engine

import (
	"sync"
	"testing"

	"repro/internal/gate"
)

const goodSrc = "LDI T1, 42\nADDI T1, 1\nHALT"

func TestProgramCacheHit(t *testing.T) {
	c := NewProgramCache()
	p1, err := c.Assemble(goodSrc)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Assemble(goodSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("second Assemble returned a different program; want the memoized one")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Errorf("stats %+v, want 1 hit / 1 miss / 1 entry", s)
	}
}

func TestProgramCacheDistinctSources(t *testing.T) {
	c := NewProgramCache()
	p1, err := c.Assemble("LDI T1, 1\nHALT")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Assemble("LDI T1, 2\nHALT")
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Error("distinct sources shared one cache entry")
	}
	if s := c.Stats(); s.Misses != 2 || s.Entries != 2 {
		t.Errorf("stats %+v, want 2 misses / 2 entries", s)
	}
}

func TestProgramCacheMemoizesErrors(t *testing.T) {
	c := NewProgramCache()
	_, err1 := c.Assemble("NOT AN OPCODE")
	_, err2 := c.Assemble("NOT AN OPCODE")
	if err1 == nil || err2 == nil {
		t.Fatal("invalid source assembled")
	}
	if err1.Error() != err2.Error() {
		t.Errorf("memoized error changed: %v vs %v", err1, err2)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats %+v, want the failure memoized like a success", s)
	}
}

func TestProgramCacheSingleflight(t *testing.T) {
	c := NewProgramCache()
	const n = 32
	progs := make([]any, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			defer wg.Done()
			p, err := c.Assemble(goodSrc)
			if err != nil {
				t.Error(err)
				return
			}
			progs[i] = p
		}()
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if progs[i] != progs[0] {
			t.Fatalf("goroutine %d got a different program instance", i)
		}
	}
	if s := c.Stats(); s.Misses != 1 || s.Entries != 1 {
		t.Errorf("stats %+v, want exactly one miss for %d concurrent callers", s, n)
	}
}

func TestAnalysisCacheKeying(t *testing.T) {
	c := NewAnalysisCache()

	// Two independently constructed descriptions of the same
	// technology must share one entry: the key is content, not
	// pointer identity.
	a1 := c.Analyze("art9", ART9Netlist, gate.CNTFET32())
	a2 := c.Analyze("art9", ART9Netlist, gate.CNTFET32())
	if a1 != a2 {
		t.Error("identical technologies missed the cache")
	}

	// A different technology gets its own entry.
	a3 := c.Analyze("art9", ART9Netlist, gate.StratixVEmulation())
	if a3 == a1 {
		t.Error("distinct technologies shared an entry")
	}

	// A modified copy under the same name must NOT collide.
	custom := *gate.CNTFET32()
	custom.ClkQPs *= 2
	a4 := c.Analyze("art9", ART9Netlist, &custom)
	if a4 == a1 {
		t.Error("modified technology collided with the original")
	}
	if a4.FmaxMHz >= a1.FmaxMHz {
		t.Errorf("doubled clk-q should lower fmax: %v vs %v", a4.FmaxMHz, a1.FmaxMHz)
	}

	if s := c.Stats(); s.Hits != 1 || s.Misses != 3 || s.Entries != 3 {
		t.Errorf("stats %+v, want 1 hit / 3 misses / 3 entries", s)
	}
}

func TestProgramCacheEvictsByEntryBound(t *testing.T) {
	c := NewProgramCacheSized(2, -1)
	srcs := []string{"LDI T1, 1\nHALT", "LDI T1, 2\nHALT", "LDI T1, 3\nHALT"}
	for _, s := range srcs {
		if _, err := c.Assemble(s); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Entries != 2 || s.Evictions != 1 {
		t.Fatalf("stats %+v, want 2 entries / 1 eviction", s)
	}
	// The evicted (coldest) source re-assembles as a miss, not a hit.
	if _, err := c.Assemble(srcs[0]); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Misses != 4 {
		t.Fatalf("stats %+v, want the evicted source to miss again", s)
	}
}

func TestProgramCacheEvictsByByteBound(t *testing.T) {
	// Each entry costs len(src)+programFootprint, so two entries
	// overflow this bound and the colder one ages out.
	c := NewProgramCacheSized(-1, programFootprint+512)
	if _, err := c.Assemble("LDI T1, 1\nHALT"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Assemble("LDI T1, 2\nHALT"); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Entries != 1 || s.Evictions != 1 {
		t.Fatalf("stats %+v, want 1 entry / 1 eviction under byte pressure", s)
	}
	if s.Bytes > programFootprint+512 {
		t.Fatalf("bytes %d exceed the bound", s.Bytes)
	}
	// Recency governs which entry survives: the latest source hits.
	if _, err := c.Assemble("LDI T1, 2\nHALT"); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Hits != 1 {
		t.Fatalf("stats %+v, want the surviving entry to hit", s)
	}
}

func TestAnalysisCacheEvictsAndRecomputes(t *testing.T) {
	c := NewAnalysisCacheSized(1, -1)
	a1 := c.Analyze("art9", ART9Netlist, gate.CNTFET32())
	c.Analyze("art9", ART9Netlist, gate.StratixVEmulation()) // evicts the first
	s := c.Stats()
	if s.Entries != 1 || s.Evictions != 1 {
		t.Fatalf("stats %+v, want 1 entry / 1 eviction", s)
	}
	// The evicted analysis recomputes to an equivalent result.
	a2 := c.Analyze("art9", ART9Netlist, gate.CNTFET32())
	if a1 == a2 {
		t.Fatal("evicted analysis returned the same instance; want a recompute")
	}
	if a1.Gates != a2.Gates || a1.FmaxMHz != a2.FmaxMHz {
		t.Errorf("recomputed analysis diverged: %+v vs %+v", a1, a2)
	}
}

func TestAnalyzeART9MatchesDirect(t *testing.T) {
	tech := gate.CNTFET32()
	cached := AnalyzeART9(tech)
	direct := gate.Analyze(gate.BuildART9(), tech)
	if cached.Gates != direct.Gates || cached.FmaxMHz != direct.FmaxMHz ||
		cached.CriticalPathPs != direct.CriticalPathPs || cached.LeakageW != direct.LeakageW {
		t.Errorf("cached analysis diverges from direct analysis:\n%+v\n%+v", cached, direct)
	}
}
