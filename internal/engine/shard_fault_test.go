package engine_test

// Fault injection against the round-robin ShardSet, reusing the same
// scripted faulttest backends the Balancer suite drives. The pinned
// contrast motivates the Balancer: a ShardSet resolves every job
// exactly once even when a shard dies mid-batch, but the dead shard's
// jobs FAIL — no second chances — whereas the Balancer re-runs them.

import (
	"context"
	"testing"

	"repro/internal/engine"
	"repro/internal/engine/faulttest"
	"repro/internal/engine/scenariotest"
)

// TestShardSetDeadShardFailsItsShareOnly pins the no-failover baseline:
// with one of two shards dead mid-batch, its jobs resolve with the
// backend error while the live shard's share is untouched — and the
// same jobs behind a Balancer all succeed.
func TestShardSetDeadShardFailsItsShareOnly(t *testing.T) {
	const n = 10
	flaky := faulttest.New("dying-shard").FailAfter(2, nil)
	live := engine.New(engine.Options{Workers: 2, PrivateCaches: true})
	s := engine.NewShardSetOf(flaky, live)
	defer s.Close()

	rs, err := s.Run(context.Background(), scenariotest.Jobs(n))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != n {
		t.Fatalf("resolved %d results for %d jobs", len(rs), n)
	}
	var failed, ok int
	for i, r := range rs {
		if r.ID != scenariotest.Jobs(n)[i].ID {
			t.Errorf("result %d out of submission order: %s", i, r.ID)
		}
		if r.Err != nil {
			if !engine.Retryable(r.Err) {
				t.Errorf("job %s failed with non-backend error %v", r.ID, r.Err)
			}
			failed++
			continue
		}
		ok++
	}
	// Round-robin gives the dying shard 5 of 10 jobs; it executes 2 and
	// drops 3. The live shard's 5 all succeed.
	if failed != 3 || ok != 7 {
		t.Errorf("dead shard run: %d ok / %d failed, want 7/3 (no failover in a ShardSet)", ok, failed)
	}

	// The identical fault behind a Balancer loses nothing.
	b := engine.NewBalancer(engine.BalancerOptions{HealthInterval: -1},
		faulttest.New("dying-shard").FailAfter(2, nil),
		engine.New(engine.Options{Workers: 2, PrivateCaches: true}))
	defer b.Close()
	brs, err := b.Run(context.Background(), scenariotest.Jobs(n))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range brs {
		if r.Err != nil {
			t.Errorf("balancer lost job %s to the dying backend: %v", r.ID, r.Err)
		}
	}
}

// TestShardSetStreamWithDeadShardStillCloses pins the merge contract
// under faults: the merged stream yields one result per job and closes
// even when a shard is dead on arrival.
func TestShardSetStreamWithDeadShardStillCloses(t *testing.T) {
	s := engine.NewShardSetOf(
		faulttest.New("doa").FailAfter(0, nil),
		engine.New(engine.Options{Workers: 2, PrivateCaches: true}))
	defer s.Close()

	seen := 0
	for range s.Stream(context.Background(), scenariotest.Jobs(8)) {
		seen++
	}
	if seen != 8 {
		t.Errorf("merged stream yielded %d results, want 8", seen)
	}
}
