package scenariotest_test

// Autoscaler scenarios: the elastic pool must be invisible in the
// results. Whatever the pool does while a suite runs — growing under
// the burst, recruiting a standby peer, draining members back down to
// idle — the merged report stays byte-identical to a healthy fixed-size
// run; only the scale counters and event log may differ.

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/engine/scenariotest"
	"repro/internal/remote"
	"repro/internal/serve"
)

// fastScaler builds an autoscaler whose background loop re-evaluates
// every millisecond with no cooldown, so a test-sized burst reliably
// triggers scale events within the run.
func fastScaler(t *testing.T, opts engine.AutoscalerOptions) *engine.Autoscaler {
	t.Helper()
	opts.Interval = time.Millisecond
	opts.Cooldown = -1
	a := engine.NewAutoscaler(opts)
	t.Cleanup(func() { a.Close() })
	return a
}

// waitForScaler polls cond until it holds or the deadline passes.
func waitForScaler(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAutoscaleUpUnderBurst pins the scale-up scenario: a burst queued
// behind a one-worker minimum pool grows it mid-suite, and the results
// stay byte-identical to the healthy fixed-size reference.
func TestAutoscaleUpUnderBurst(t *testing.T) {
	const n = 10
	jobs := scenariotest.BenchJobs(t, n)
	want := scenariotest.ReferenceRows(t, jobs)

	a := fastScaler(t, engine.AutoscalerOptions{
		Min: 1, Max: 3,
		Engine: engine.Options{Workers: 1},
	})

	scenariotest.Check(t, a, scenariotest.BenchJobs(t, n), want,
		scenariotest.RenderRows, scenariotest.Identical)

	if got := a.ScaleUps(); got == 0 {
		t.Error("burst produced no scale-up events")
	}
	if got := a.Size(); got < 2 {
		t.Errorf("pool held %d members after the burst, want growth beyond the minimum", got)
	}
	for _, e := range a.Events() {
		if e.Direction == "up" && e.Reason == "" {
			t.Errorf("scale-up event %+v carries no reason", e)
		}
	}
}

// TestAutoscaleDownToIdle pins the scale-down scenario: after the burst
// drains, the idle pool shrinks back to its minimum — every retired
// member drained before close — and a follow-up suite on the shrunken
// pool still matches the reference byte-for-byte.
func TestAutoscaleDownToIdle(t *testing.T) {
	const n = 10
	jobs := scenariotest.BenchJobs(t, n)
	want := scenariotest.ReferenceRows(t, jobs)

	a := fastScaler(t, engine.AutoscalerOptions{
		Min: 1, Max: 3,
		Engine: engine.Options{Workers: 1},
	})

	scenariotest.Check(t, a, scenariotest.BenchJobs(t, n), want,
		scenariotest.RenderRows, scenariotest.Identical)
	if a.ScaleUps() == 0 {
		t.Fatal("burst produced no scale-up events to shrink back from")
	}

	// The suite is done: the loop now sees an idle pool and retires
	// members down to the floor.
	waitForScaler(t, "the pool to shrink to its minimum", func() bool {
		return a.ScaleDowns() > 0 && a.ScaleState().ActiveShards == 1
	})
	retired := 0
	for _, h := range a.Health() {
		if h.Retired {
			retired++
			if h.Healthy {
				t.Errorf("retired member %+v still marked healthy", h)
			}
		}
	}
	if retired == 0 {
		t.Error("no member scorecard shows a retirement")
	}

	// The shrunken pool serves the same suite identically.
	scenariotest.Check(t, a, scenariotest.BenchJobs(t, n), want,
		scenariotest.RenderRows, scenariotest.Identical)
}

// TestAutoscaleStandbyBurst pins the standby scenario across the HTTP
// stack: a pool capped at one local shard recruits a real art9-serve
// peer under burst, and the merged rows stay byte-identical to the
// healthy reference even though some jobs ran remotely.
func TestAutoscaleStandbyBurst(t *testing.T) {
	const n = 10
	jobs := scenariotest.BenchJobs(t, n)
	want := scenariotest.ReferenceRows(t, jobs)

	peer := serve.NewWithBackend(engine.New(engine.Options{Workers: 2, PrivateCaches: true}))
	ts := httptest.NewServer(peer.Handler())
	t.Cleanup(func() {
		ts.Close()
		peer.Close()
	})

	a := fastScaler(t, engine.AutoscalerOptions{
		Min: 1, Max: 1,
		Engine: engine.Options{Workers: 1},
		Standby: []engine.StandbyBackend{{
			Name: "standby-peer",
			Dial: func() (engine.Evaluator, error) { return remote.New(ts.URL) },
		}},
	})

	scenariotest.Check(t, a, scenariotest.BenchJobs(t, n), want,
		scenariotest.RenderRows, scenariotest.Identical)

	if a.ScaleUps() == 0 {
		t.Error("burst never recruited the standby peer")
	}
	sawStandby := false
	for _, h := range a.Health() {
		if h.Standby && h.Name == "standby-peer" {
			sawStandby = true
			if h.Dispatched == 0 {
				t.Error("recruited standby peer carried no jobs")
			}
		}
	}
	if !sawStandby {
		t.Error("no standby member appears in the health scorecards")
	}
}
