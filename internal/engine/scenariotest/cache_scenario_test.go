package scenariotest_test

// The result-cache scenarios: a cache-enabled topology must be
// invisible in the rows — warm (replayed) output byte-identical to the
// cold computed run and to the healthy no-cache reference — and a cache
// peer dying mid-suite must degrade dispatch to computing, never to
// lost, duplicated, or failed jobs.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/engine/scenariotest"
	"repro/internal/remote"
	"repro/internal/serve"
)

// cacheServePeer spins a cache-enabled art9-serve instance and returns
// its base URL — a live /v1/cache tier for the topology under test.
func cacheServePeer(t *testing.T) string {
	t.Helper()
	s, err := serve.New(serve.Config{Workers: 1, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts.URL
}

// TestScenarioResultCacheWarmIdentical pins the cache's transparency
// contract across every dispatch front: the cold run computes and the
// warm run replays, and both render byte-identical to the healthy
// no-cache single-engine reference. Check's Run pass is the cold run
// and its Stream pass re-submits the same jobs on the same evaluator —
// the warm run — so one Check covers both halves of the pin; the hit
// counters afterwards prove the warm half actually rode the cache.
func TestScenarioResultCacheWarmIdentical(t *testing.T) {
	topologies := []struct {
		name  string
		build func(t *testing.T) engine.Evaluator
	}{
		{name: "engine", build: func(t *testing.T) engine.Evaluator {
			return mustBackend(t, remote.BackendConfig{
				Cache: true, Engine: engine.Options{Workers: 2}})
		}},
		{name: "shard-set", build: func(t *testing.T) engine.Evaluator {
			return mustBackend(t, remote.BackendConfig{
				Cache: true, Shards: 2, Engine: engine.Options{Workers: 2}})
		}},
		{name: "failover", build: func(t *testing.T) engine.Evaluator {
			return mustBackend(t, remote.BackendConfig{
				Cache: true, Failover: true, Shards: 2,
				HealthInterval: -1, Engine: engine.Options{Workers: 2}})
		}},
		{name: "failover-chunked", build: func(t *testing.T) engine.Evaluator {
			return mustBackend(t, remote.BackendConfig{
				Cache: true, Failover: true, Shards: 2, Chunk: 3,
				HealthInterval: -1, Engine: engine.Options{Workers: 2}})
		}},
		{name: "autoscale", build: func(t *testing.T) engine.Evaluator {
			return mustBackend(t, remote.BackendConfig{
				Cache: true, AutoscaleMin: 1, AutoscaleMax: 2,
				ScaleInterval: -1, Engine: engine.Options{Workers: 2}})
		}},
		{name: "engine-with-cache-peer", build: func(t *testing.T) engine.Evaluator {
			return mustBackend(t, remote.BackendConfig{
				Cache: true, CachePeers: []string{cacheServePeer(t)},
				Engine: engine.Options{Workers: 2}})
		}},
	}
	for _, tc := range topologies {
		t.Run(tc.name, func(t *testing.T) {
			jobs := scenariotest.BenchJobs(t, 6)
			want := scenariotest.ReferenceRows(t, jobs)
			ev := tc.build(t)
			defer ev.Close()

			scenariotest.Check(t, ev, jobs, want, scenariotest.RenderRows, scenariotest.Identical)

			adapter, ok := engine.ResultCacheOf(ev).(*bench.ResultCache)
			if !ok {
				t.Fatal("no result cache reachable from the topology")
			}
			st := adapter.Stats()
			if st.Hits == 0 {
				t.Errorf("cache stats %+v: the warm pass never hit", st)
			}
			if st.Puts == 0 {
				t.Errorf("cache stats %+v: the cold pass never stored", st)
			}
		})
	}
}

// dyingCachePeer proxies a healthy cache-enabled serve instance but
// severs every connection after the first `healthy` requests — the
// cache peer that dies mid-suite.
type dyingCachePeer struct {
	inner   http.Handler
	healthy int32
	count   atomic.Int32
}

func (d *dyingCachePeer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d.count.Add(1) > d.healthy {
		panic(http.ErrAbortHandler) // sever the connection mid-request
	}
	d.inner.ServeHTTP(w, r)
}

// TestScenarioCachePeerDiesMidSuite pins the degradation contract: when
// the cache peer starts severing connections partway through a suite,
// dispatch falls back to computing — every job resolves exactly once,
// rows stay byte-identical to the healthy reference, and the transport
// failures surface as PeerErrors counters, never as job errors.
func TestScenarioCachePeerDiesMidSuite(t *testing.T) {
	backendPeer, err := serve.New(serve.Config{Workers: 1, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	// A budget of one: the cold run's first peer lookup succeeds, and
	// everything after — including the write-behind fill flushes, which
	// batch into far fewer requests than there are jobs — is severed.
	dying := &dyingCachePeer{inner: backendPeer.Handler(), healthy: 1}
	ts := httptest.NewServer(dying)
	t.Cleanup(func() {
		ts.Close()
		backendPeer.Close()
	})

	jobs := scenariotest.BenchJobs(t, 8)
	want := scenariotest.ReferenceRows(t, jobs)
	ev := mustBackend(t, remote.BackendConfig{
		Cache: true, CachePeers: []string{ts.URL},
		Engine: engine.Options{Workers: 2},
	})
	defer ev.Close()

	rs, err := ev.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	scenariotest.CheckExactlyOnce(t, jobs, rs)
	if got := scenariotest.RenderRows(t, rs); got != want {
		t.Errorf("rows diverged with a dying cache peer:\ngot:\n%s\nwant:\n%s", got, want)
	}

	adapter, ok := engine.ResultCacheOf(ev).(*bench.ResultCache)
	if !ok {
		t.Fatal("no result cache reachable from the topology")
	}
	st := adapter.Stats()

	// The tier stays usable after the peer's death: a warm re-run
	// answers from the local store, still byte-identical.
	warm, err := ev.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	scenariotest.CheckExactlyOnce(t, jobs, warm)
	if got := scenariotest.RenderRows(t, warm); got != want {
		t.Errorf("warm rows diverged after the cache peer died:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if after := adapter.Stats(); after.Hits <= st.Hits {
		t.Errorf("warm run after peer death never hit the local store: %+v -> %+v", st, after)
	}

	// Peer fills are write-behind, so the transport failures against
	// the severed peer are only guaranteed visible once Close drains
	// the queue. The drain itself must not error: a dead peer degrades,
	// never fails.
	if err := ev.Close(); err != nil {
		t.Fatalf("Close with a dead cache peer: %v", err)
	}
	if after := adapter.Stats(); after.PeerErrors == 0 {
		t.Errorf("cache stats %+v: the dying peer never surfaced as PeerErrors", after)
	}
}

// mustBackend builds a topology through the shared composition rules,
// failing the test on a config the rule set rejects.
func mustBackend(t *testing.T, cfg remote.BackendConfig) engine.Evaluator {
	t.Helper()
	ev, err := remote.NewBackendWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}
