package scenariotest_test

// The cache-invalidation scenario: the result cache keys on technology
// content, so editing a technology table between runs must turn every
// affected entry into a standing miss — the edited run recomputes and
// renders byte-identical to a fresh uncached run under the edited
// table, never replaying a row priced under the old numbers.

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/gate"
	"repro/internal/remote"
	"repro/internal/xlate"
)

// techManifest builds n bubble jobs evaluated against cntfet32 — unlike
// scenariotest.BenchJobs, these specs carry a technology list, so their
// cache keys cover the table content under edit. Distinct iteration
// counts keep the keys distinct (the name alone never participates), so
// the hit counters below track jobs one to one.
func techManifest(t *testing.T, n int) (*bench.Manifest, []engine.Job) {
	t.Helper()
	m := &bench.Manifest{Technologies: []string{"cntfet32"}}
	for i := 0; i < n; i++ {
		m.Jobs = append(m.Jobs, bench.ManifestJob{
			Name: fmt.Sprintf("bubble-%02d", i), Workload: "bubble",
			Iterations: i + 1})
	}
	jobs, err := m.EngineJobs("", xlate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m, jobs
}

// renderImplRows canonicalizes a result set including the per-technology
// implementation rows — scenariotest.RenderRows covers metrics only,
// and a technology edit is invisible there: the cycle counts don't move,
// only the timing/energy/area numbers priced from the table do.
func renderImplRows(t *testing.T, rs []engine.Result, techs []*gate.Technology) string {
	t.Helper()
	lines := make([]string, len(rs))
	for i, r := range rs {
		jr := bench.JobReportOf(r, techs)
		if !jr.OK {
			t.Fatalf("job %s failed: %s", jr.Name, jr.Error)
		}
		row, err := json.Marshal(struct {
			Metrics         *bench.MetricsReport `json:"metrics"`
			Implementations []bench.ImplReport   `json:"implementations"`
		}{jr.Metrics, jr.Implementations})
		if err != nil {
			t.Fatalf("marshalling row of %s: %v", jr.Name, err)
		}
		lines[i] = fmt.Sprintf("%s=%s", jr.Name, row)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// uncachedRows runs jobs on a fresh cache-less engine and renders them
// with implementations — the oracle for both halves of the scenario.
func uncachedRows(t *testing.T, jobs []engine.Job, techs []*gate.Technology) string {
	t.Helper()
	eng := engine.New(engine.Options{Workers: 2, PrivateCaches: true})
	defer eng.Close()
	rs, err := eng.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	return renderImplRows(t, rs, techs)
}

// TestScenarioTechnologyEditedBetweenRuns pins the tentpole end to end:
// warm a cached evaluator, edit the technology table it evaluates
// against, and re-run the same jobs on the same evaluator. The edited
// run must score zero cache hits — the fingerprint moved, so every old
// entry is unreachable — and its rows must be byte-identical to a fresh
// uncached run under the edited table (and therefore differ from the
// pre-edit rows wherever the edit is visible).
func TestScenarioTechnologyEditedBetweenRuns(t *testing.T) {
	m, jobs := techManifest(t, 4)
	techs, err := m.ResolveTechnologies()
	if err != nil {
		t.Fatal(err)
	}

	ev := mustBackend(t, remote.BackendConfig{
		Cache: true, Engine: engine.Options{Workers: 2}})
	defer ev.Close()
	adapter, ok := engine.ResultCacheOf(ev).(*bench.ResultCache)
	if !ok {
		t.Fatal("no result cache reachable from the topology")
	}

	// Cold and warm runs under the shipped table: the second run replays.
	cold, err := ev.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	before := renderImplRows(t, cold, techs)
	if want := uncachedRows(t, jobs, techs); before != want {
		t.Fatalf("cold cached rows diverged from the uncached oracle:\ngot:\n%s\nwant:\n%s", before, want)
	}
	warm, err := ev.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderImplRows(t, warm, techs); got != before {
		t.Fatalf("warm rows diverged from cold:\ngot:\n%s\nwant:\n%s", got, before)
	}
	warmed := adapter.Stats()
	if warmed.Hits != uint64(len(jobs)) {
		t.Fatalf("warm stats %+v, want %d hits", warmed, len(jobs))
	}

	// Edit the table out from under the warmed cache: one DelayPs on one
	// cell kind, the smallest edit that reprices the implementation rows.
	t.Cleanup(bench.RegisterTechnology("cntfet32", func() *gate.Technology {
		tech := gate.CNTFET32()
		props := make(map[gate.CellKind]gate.CellProps, len(tech.Props))
		for k, v := range tech.Props {
			props[k] = v
		}
		p := props[gate.TFA]
		p.DelayPs *= 2
		props[gate.TFA] = p
		tech.Props = props
		return tech
	}))
	editedTechs, err := m.ResolveTechnologies()
	if err != nil {
		t.Fatal(err)
	}
	want := uncachedRows(t, jobs, editedTechs)
	if want == before {
		t.Fatal("the table edit is invisible in the rendered rows; the scenario proves nothing")
	}

	// Same evaluator, same jobs, edited table: zero new hits, and the
	// rows match the edited-table oracle byte for byte — the stale rows
	// priced under the old numbers never replay.
	edited, err := ev.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderImplRows(t, edited, editedTechs); got != want {
		t.Fatalf("post-edit rows diverged from the edited-table oracle:\ngot:\n%s\nwant:\n%s", got, want)
	}
	after := adapter.Stats()
	if after.Hits != warmed.Hits {
		t.Fatalf("post-edit run replayed from cache: %d hits -> %d", warmed.Hits, after.Hits)
	}
	if after.Puts <= warmed.Puts {
		t.Fatalf("post-edit run never stored under the new keys: %+v", after)
	}
}
