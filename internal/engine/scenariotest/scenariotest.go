// Package scenariotest is the shared fault-injection harness of the
// evaluation stack: deterministic job sets, a healthy single-engine
// reference, canonical result rendering, and one Check entry point that
// pins a topology × fault scenario's merged output — byte-identical to
// the healthy reference for failover topologies, exactly-once with
// typed backend errors for the rest. Every Evaluator topology (Engine,
// ShardSet, Balancer — per-job or chunked — remote clients, and mixes)
// runs through the same harness, so the balancer, shard and serve fault
// suites stop re-implementing their own setup and a new topology gets
// the whole fault matrix by writing one builder.
//
// The harness only imports engine, faulttest and bench; topologies that
// need the HTTP layers (internal/remote, internal/serve) are built by
// the caller and handed in as plain Evaluators, which keeps this
// package importable from every layer's tests without cycles.
package scenariotest

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/xlate"
)

// Jobs builds n deterministic closure jobs; job i resolves to i*i.
// Closure jobs run on any local backend (including faulttest.Flaky) but
// cannot travel to remote backends — use BenchJobs for those.
func Jobs(n int) []engine.Job {
	return SlowJobs(n, 0)
}

// SlowJobs builds the same deterministic jobs with a per-job execution
// time, so dispatch rounds are stable under any scheduling — scenarios
// that need a backend to receive work across several rounds (e.g. to
// hit a scripted mid-suite death) use these.
func SlowJobs(n int, d time.Duration) []engine.Job {
	jobs := make([]engine.Job, n)
	for i := range jobs {
		i := i
		jobs[i] = engine.Job{ID: fmt.Sprintf("job-%02d", i),
			Fn: func(ctx context.Context) (any, error) {
				if d > 0 {
					select {
					case <-ctx.Done():
						return nil, ctx.Err()
					case <-time.After(d):
					}
				}
				return i * i, nil
			}}
	}
	return jobs
}

// BenchJobs builds n spec-carrying evaluation jobs — copies of the fast
// "bubble" workload under distinct names — able to run on any backend:
// local pools execute the closure, remote clients ship the spec over
// the wire. Results render comparably through RenderRows whichever path
// they took.
func BenchJobs(t *testing.T, n int) []engine.Job {
	t.Helper()
	var m bench.Manifest
	for i := 0; i < n; i++ {
		m.Jobs = append(m.Jobs, bench.ManifestJob{
			Name: fmt.Sprintf("bubble-%02d", i), Workload: "bubble"})
	}
	jobs, err := m.EngineJobs("", xlate.Options{})
	if err != nil {
		t.Fatalf("scenariotest: building bench jobs: %v", err)
	}
	return jobs
}

// Render canonicalizes a closure-job result set for byte-identical
// comparison: one "id=value" line per result, sorted. Errors render as
// their message so a faulty run can never masquerade as a healthy one.
func Render(t *testing.T, rs []engine.Result) string {
	t.Helper()
	lines := make([]string, len(rs))
	for i, r := range rs {
		if r.Err != nil {
			lines[i] = fmt.Sprintf("%s=ERR(%v)", r.ID, r.Err)
			continue
		}
		lines[i] = fmt.Sprintf("%s=%v", r.ID, r.Value)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// RenderRows canonicalizes a bench-job result set: one
// "name=metricsJSON" line per result, sorted. Local results (*Outcome)
// and remote results (the peer's *JobReport row) render through the one
// bench.JobReportOf mapping, so a mixed fleet's merged output compares
// byte for byte against a purely local reference.
func RenderRows(t *testing.T, rs []engine.Result) string {
	t.Helper()
	lines := make([]string, len(rs))
	for i, r := range rs {
		jr := bench.JobReportOf(r, nil)
		if !jr.OK {
			kind := jr.ErrorKind
			if kind == "" {
				kind = jr.Error
			}
			lines[i] = fmt.Sprintf("%s=ERR(%s)", jr.Name, kind)
			continue
		}
		mb, err := json.Marshal(jr.Metrics)
		if err != nil {
			t.Fatalf("scenariotest: marshalling metrics of %s: %v", jr.Name, err)
		}
		lines[i] = fmt.Sprintf("%s=%s", jr.Name, mb)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// reference runs jobs on a plain single engine and renders the result
// set — the oracle every fault scenario's merged output is pinned
// against.
func reference(t *testing.T, jobs []engine.Job, render func(*testing.T, []engine.Result) string) string {
	t.Helper()
	eng := engine.New(engine.Options{Workers: 2, PrivateCaches: true})
	defer eng.Close()
	rs, err := eng.Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("scenariotest: healthy reference run: %v", err)
	}
	return render(t, rs)
}

// Reference is the healthy single-engine oracle for closure jobs.
func Reference(t *testing.T, jobs []engine.Job) string {
	t.Helper()
	return reference(t, jobs, Render)
}

// ReferenceRows is the healthy single-engine oracle for bench jobs.
func ReferenceRows(t *testing.T, jobs []engine.Job) string {
	t.Helper()
	return reference(t, jobs, RenderRows)
}

// CheckExactlyOnce asserts the dedup contract: every submitted job
// resolved exactly once — no result lost to a dying backend, none
// duplicated by failover.
func CheckExactlyOnce(t *testing.T, jobs []engine.Job, rs []engine.Result) {
	t.Helper()
	if len(rs) != len(jobs) {
		t.Errorf("resolved %d results for %d jobs", len(rs), len(jobs))
	}
	seen := map[string]int{}
	for _, r := range rs {
		seen[r.ID]++
	}
	for _, j := range jobs {
		switch c := seen[j.ID]; {
		case c == 0:
			t.Errorf("job %s never resolved", j.ID)
		case c > 1:
			t.Errorf("job %s resolved %d times, want exactly once", j.ID, c)
		}
	}
}

// Expect describes what a scenario's merged output must satisfy.
type Expect int

const (
	// Identical: the merged result set must be byte-identical to the
	// healthy single-engine reference — the guarantee failover
	// topologies (Balancer fronts, per-job or chunked) make for every
	// survivable fault.
	Identical Expect = iota
	// Degraded: every job still resolves exactly once, but jobs held by
	// a dead backend may fail — and every such failure must carry a
	// backend-level (engine.Retryable) error, never a silent wrong
	// value. The no-failover (ShardSet) baseline.
	Degraded
)

// Check runs jobs through ev via both Run and Stream and pins the
// scenario's contract: exactly-once resolution always, plus — per
// expect — byte-identity with the healthy reference want (rendered by
// render, which must match how want was produced) or typed degradation.
// Stream runs after Run on the same evaluator, so scripted faults that
// tripped during Run stay tripped — a dead backend stays dead across
// both modes, exactly like a real dead peer.
func Check(t *testing.T, ev engine.Evaluator, jobs []engine.Job, want string,
	render func(*testing.T, []engine.Result) string, expect Expect) {
	t.Helper()

	run := func(mode string, rs []engine.Result) {
		t.Helper()
		CheckExactlyOnce(t, jobs, rs)
		switch expect {
		case Identical:
			if got := render(t, rs); got != want {
				t.Errorf("%s result set diverged from healthy single engine:\ngot:\n%s\nwant:\n%s", mode, got, want)
			}
		case Degraded:
			for _, r := range rs {
				if r.Err != nil && !engine.Retryable(r.Err) {
					t.Errorf("%s: job %s failed with non-backend error %v", mode, r.ID, r.Err)
				}
			}
		}
	}

	rs, err := ev.Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	run("Run", rs)

	var streamed []engine.Result
	for r := range ev.Stream(context.Background(), jobs) {
		streamed = append(streamed, r)
	}
	run("Stream", streamed)
}
