package scenariotest_test

// The scenario matrix: every Evaluator topology × every fault script,
// one harness. Each cell builds its fleet around a scripted
// faulttest.Flaky backend, runs the same job set through Run and
// Stream, and pins the contract the topology makes — failover fronts
// (Balancer, per-job or chunked, local or across the HTTP stack) must
// merge byte-identical to a healthy single-engine run; the no-failover
// ShardSet must stay exactly-once with typed backend errors on the dead
// share. Run under -race in CI, twice (-count=2).

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/engine/faulttest"
	"repro/internal/engine/scenariotest"
	"repro/internal/remote"
	"repro/internal/serve"
)

// localEngine is the healthy survivor every fleet includes.
func localEngine() *engine.Engine {
	return engine.New(engine.Options{Workers: 2, PrivateCaches: true})
}

// serveClient wraps a backend in an httptest art9-serve instance and
// returns a remote client speaking /v1 to it — the HTTP hop of the
// remote topologies. The server and client are torn down with the test;
// the server owns (and closes) the backend.
func serveClient(t *testing.T, backend engine.Evaluator) *remote.Client {
	t.Helper()
	s := serve.NewWithBackend(backend)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	client, err := remote.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

func TestScenarioMatrix(t *testing.T) {
	faults := []struct {
		name   string
		script func(f *faulttest.Flaky)
		deadly bool // jobs held by the faulty backend die with it
	}{
		{name: "healthy", script: func(f *faulttest.Flaky) {}},
		// Width 2 guarantees the initial dispatch burst hands the dying
		// backend two jobs — one executes, the second trips the
		// scripted death mid-suite under any scheduling.
		{name: "dies-mid-suite", script: func(f *faulttest.Flaky) { f.Width(2).FailAfter(1, nil) }, deadly: true},
		{name: "dead-on-arrival", script: func(f *faulttest.Flaky) { f.FailAfter(0, nil) }, deadly: true},
		// A slow-but-correct peer: every job eventually succeeds, so
		// even the no-failover topologies stay identical to healthy.
		{name: "slow-peer", script: func(f *faulttest.Flaky) { f.Width(1).Delay(20 * time.Millisecond) }},
	}

	topologies := []struct {
		name string
		// build assembles the evaluator under test around the scripted
		// faulty backend (nil for topologies without a faulty slot).
		build func(t *testing.T, flaky *faulttest.Flaky) engine.Evaluator
		// failover topologies re-run a dead backend's jobs on the
		// survivors, so deadly faults still merge identical to healthy.
		failover bool
		// faultless topologies have no slot for the scripted backend
		// and only run the healthy cell.
		faultless bool
	}{
		{name: "engine", faultless: true, failover: true,
			build: func(t *testing.T, _ *faulttest.Flaky) engine.Evaluator {
				return localEngine()
			}},
		{name: "shardset",
			build: func(t *testing.T, flaky *faulttest.Flaky) engine.Evaluator {
				return engine.NewShardSetOf(flaky, localEngine())
			}},
		{name: "balancer", failover: true,
			build: func(t *testing.T, flaky *faulttest.Flaky) engine.Evaluator {
				return engine.NewBalancer(engine.BalancerOptions{HealthInterval: -1},
					flaky, localEngine())
			}},
		{name: "balancer-chunked", failover: true,
			build: func(t *testing.T, flaky *faulttest.Flaky) engine.Evaluator {
				return engine.NewBalancer(engine.BalancerOptions{HealthInterval: -1, Chunk: 4},
					flaky, localEngine())
			}},
		// The faulty backend sits on the far side of an HTTP hop: its
		// failures reach the balancer as typed NDJSON rows and severed
		// streams, not direct errors.
		{name: "remote", failover: true,
			build: func(t *testing.T, flaky *faulttest.Flaky) engine.Evaluator {
				return engine.NewBalancer(engine.BalancerOptions{HealthInterval: -1},
					serveClient(t, flaky), localEngine())
			}},
		{name: "remote-chunked", failover: true,
			build: func(t *testing.T, flaky *faulttest.Flaky) engine.Evaluator {
				return engine.NewBalancer(engine.BalancerOptions{HealthInterval: -1, Chunk: 4},
					serveClient(t, flaky), localEngine())
			}},
		// A three-way mix: scripted backend, local pool, and a healthy
		// peer behind HTTP, all under one chunked failover front.
		{name: "mixed-chunked", failover: true,
			build: func(t *testing.T, flaky *faulttest.Flaky) engine.Evaluator {
				return engine.NewBalancer(engine.BalancerOptions{HealthInterval: -1, Chunk: 4},
					flaky, localEngine(), serveClient(t, localEngine()))
			}},
	}

	const n = 10
	jobs := scenariotest.BenchJobs(t, n)
	want := scenariotest.ReferenceRows(t, jobs)

	for _, topo := range topologies {
		for _, fault := range faults {
			topo, fault := topo, fault
			if topo.faultless && fault.name != "healthy" {
				continue
			}
			t.Run(topo.name+"/"+fault.name, func(t *testing.T) {
				t.Parallel()
				flaky := faulttest.New("flaky")
				fault.script(flaky)
				ev := topo.build(t, flaky)
				t.Cleanup(func() { ev.Close() })

				expect := scenariotest.Identical
				if fault.deadly && !topo.failover {
					expect = scenariotest.Degraded
				}
				scenariotest.Check(t, ev, scenariotest.BenchJobs(t, n), want,
					scenariotest.RenderRows, expect)
			})
		}
	}
}

// TestChunkedBalancerRecordsResumes pins the tentpole's counters
// through the harness: a chunked sweep over a backend that dies
// mid-chunk stays byte-identical to healthy AND books the severed
// chunk — nonzero chunk and chunk-resume counters, with the resumed
// jobs appearing as failovers on the dead backend's scorecard.
func TestChunkedBalancerRecordsResumes(t *testing.T) {
	const n = 12
	jobs := scenariotest.BenchJobs(t, n)
	want := scenariotest.ReferenceRows(t, jobs)

	flaky := faulttest.New("dying-chunk-peer").Width(4).FailAfter(1, nil)
	b := engine.NewBalancer(engine.BalancerOptions{HealthInterval: -1, Chunk: 4},
		flaky, localEngine())
	t.Cleanup(func() { b.Close() })

	scenariotest.Check(t, b, scenariotest.BenchJobs(t, n), want,
		scenariotest.RenderRows, scenariotest.Identical)

	if b.Chunks() == 0 {
		t.Error("chunked balancer issued no chunks")
	}
	if b.ChunkResumes() == 0 {
		t.Error("mid-chunk death recorded no chunk resumes")
	}
	var failovers uint64
	for _, h := range b.Health() {
		failovers += h.Failovers
		if h.Name == "dying-chunk-peer" {
			if h.Chunks == 0 {
				t.Error("dying backend's scorecard shows no chunks")
			}
			if h.ChunkResumes == 0 {
				t.Error("dying backend's scorecard shows no chunk resumes")
			}
			if h.Healthy {
				t.Error("dying backend still marked healthy after a severed chunk")
			}
		}
	}
	if failovers == 0 {
		t.Error("no failovers booked for the resumed chunk jobs")
	}
}
