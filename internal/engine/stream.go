package engine

import (
	"context"
	"sync"
)

// Stream submits every job and returns a channel that yields each Result
// the moment its job resolves — completion order, not submission order —
// then closes after the last one. It is the push-style dual of RunAll:
// a consumer (the NDJSON suite endpoint, a progress bar) can act on fast
// jobs while slow ones are still running.
//
// Cancelling ctx resolves every outstanding job with the context error;
// Close on the engine resolves undispatched jobs with ErrClosed. Either
// way the channel always closes, and it is buffered to len(jobs), so an
// abandoned stream never leaks the forwarding goroutines.
func (e *Engine) Stream(ctx context.Context, jobs []Job) <-chan Result {
	e.streams.Add(1)
	out := make(chan Result, len(jobs))
	if len(jobs) == 0 {
		close(out)
		return out
	}
	var pending sync.WaitGroup
	pending.Add(len(jobs))
	for _, j := range jobs {
		ch := e.Submit(ctx, j)
		go func() {
			defer pending.Done()
			out <- <-ch
		}()
	}
	go func() {
		pending.Wait()
		close(out)
	}()
	return out
}
