package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Balancer is the health-aware front of the Evaluator stack: it wraps a
// set of backends — local pools, remote peers, shard sets, in any mix —
// and dispatches each job to the least-loaded healthy one, failing jobs
// over to another backend when the one that held them dies. Where a
// ShardSet partitions a batch blindly (round-robin, wire-efficient, no
// second chances), a Balancer places every job individually and keeps a
// suite complete through mid-stream backend deaths:
//
//   - Health: a periodic loop probes every backend that implements
//     Prober (local engines answer from their closed flag, remote
//     clients GET /v1/healthz) and each job result updates the score
//     reactively — a backend-level failure (Retryable: ErrClosed or
//     ErrUnavailable) marks the backend down immediately, the next
//     success or clean probe revives it.
//   - Dispatch: each job takes a slot on the healthy backend with the
//     fewest in-flight jobs (ties rotate), bounded per backend by its
//     local worker count (or Width for backends that report none, i.e.
//     remote peers), so a slow backend holds only the jobs it is
//     actually running while the rest of the suite flows around it.
//   - Failover: a job whose result is a backend-level failure is re-run
//     on another backend — bounded by MaxRetries, excluding backends
//     already tried until every one has been — and resolves exactly
//     once, so merged Run/Stream output stays deduplicated. Job-level
//     failures (a bad program, a per-job timeout, the caller's context
//     ending) are never retried.
//
// Failover re-runs jobs, so jobs must be idempotent — true of the whole
// evaluation suite (pure simulation), and the same assumption the remote
// client's dial retry already makes. Jobs reach remote backends through
// their serializable Job.Spec exactly as with a ShardSet; spec-less
// closure jobs fail on remote backends with a not-remotable error and
// are not retried (placement cannot fix a job that cannot travel).
//
// The wire tradeoff is explicit: dispatch is job-granular, so remote
// jobs travel as individual /v1/eval requests (at most width concurrent
// per peer) rather than the ShardSet's chunked /v1/suite streams —
// placement precision and per-job failover bought with per-request
// overhead. Wire-efficiency-critical batch sweeps over a healthy fleet
// belong on a ShardSet; fleets that must survive member deaths belong
// here.
type Balancer struct {
	members      []*member
	maxRetries   int
	interval     time.Duration
	probeTimeout time.Duration
	threshold    int
	// slots is the fleet's total dispatch width — the admission cap on
	// concurrently-placed jobs, so a huge batch doesn't park one cond
	// waiter per job (see dispatch).
	slots int

	retries atomic.Uint64

	// mu guards every member's mutable state plus closed and rr; cond
	// (on mu) wakes acquire waiters when a slot frees, a probe changes a
	// backend's health, or the balancer closes. Dispatch contexts get a
	// watcher goroutine that broadcasts on cancellation so waiters
	// observe it.
	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
	rr     int

	// revived is closed (and replaced) whenever any member transitions
	// to healthy; last-resort attempts on unhealthy backends watch it
	// so a recovery elsewhere rescues jobs stuck on a wedged backend.
	revived chan struct{}

	stop     chan struct{}
	stopOnce sync.Once
}

// member is one backend plus the balancer's book-keeping about it. All
// mutable fields are guarded by Balancer.mu.
type member struct {
	ev    Evaluator
	name  string
	width int // max concurrent jobs dispatched to this backend

	healthy     bool
	inflight    int
	consecutive int // consecutive backend-level failures
	lastErr     string
	// down is closed when the member transitions to unhealthy and
	// replaced with a fresh channel on revival; in-flight attempts
	// watch it so a backend declared dead (by a probe, or by another
	// job's failure) does not hold its jobs hostage.
	down chan struct{}

	dispatched    uint64
	completed     uint64
	failed        uint64
	failovers     uint64 // backend-level failures: jobs moved away from here
	probes        uint64
	probeFailures uint64
}

// setHealthLocked applies a health transition (callers hold b.mu):
// going down closes the member's down channel so in-flight attempts
// abandon the backend; coming up replaces it, clears the failure
// streak, and fires the balancer-wide revived signal so last-resort
// attempts stuck on other dead backends re-dispatch here.
func (b *Balancer) setHealthLocked(m *member, h bool) {
	if m.healthy == h {
		if h {
			m.consecutive = 0
		}
		return
	}
	m.healthy = h
	if h {
		m.consecutive = 0
		m.down = make(chan struct{})
		close(b.revived)
		b.revived = make(chan struct{})
	} else {
		close(m.down)
	}
}

// BackendHealth is one backend's point-in-time scorecard — the
// fleet-behaviour record BENCH reports and /v1/stats carry.
type BackendHealth struct {
	Name     string `json:"name"`
	Healthy  bool   `json:"healthy"`
	Width    int    `json:"width"`
	Inflight int    `json:"inflight"`
	// Dispatched counts jobs handed to this backend (including retries
	// of jobs other backends dropped). Completed counts successes;
	// Failed counts failures that ended the job here (its own fault, or
	// a backend-level failure with the retry budget spent); Failovers
	// counts backend-level failures whose job was re-queued elsewhere.
	Dispatched    uint64 `json:"dispatched"`
	Completed     uint64 `json:"completed"`
	Failed        uint64 `json:"failed"`
	Failovers     uint64 `json:"failovers"`
	Probes        uint64 `json:"probes"`
	ProbeFailures uint64 `json:"probe_failures"`
	LastError     string `json:"last_error,omitempty"`
}

// BalancerOptions tune a Balancer. The zero value selects the defaults
// documented per field.
type BalancerOptions struct {
	// MaxRetries is how many times one job is re-dispatched after a
	// backend-level failure (0 selects 2; negative disables failover).
	MaxRetries int
	// HealthInterval is the period of the background probe loop
	// (0 selects 2s; negative disables the loop — probes then only run
	// through ProbeNow, which tests use for determinism).
	HealthInterval time.Duration
	// ProbeTimeout bounds one backend's probe (0 selects 2s).
	ProbeTimeout time.Duration
	// FailThreshold is how many consecutive backend-level failures mark
	// a backend unhealthy (0 selects 1: the first failure downs it).
	FailThreshold int
	// Width caps concurrent dispatch to backends that report no local
	// workers — remote peers, whose pool lives on the other machine
	// (0 selects 8). Backends with a local pool are capped at its size.
	Width int
}

// Retryable reports whether a job result's error is a backend-level
// failure — the class a Balancer responds to by re-running the job on
// another backend. Job-level failures (the job ran and was wrong, timed
// out, or the caller cancelled) are not retryable.
func Retryable(err error) bool {
	return err != nil && (errors.Is(err, ErrClosed) || errors.Is(err, ErrUnavailable))
}

// NewBalancer builds a health-aware front over the given backends and
// takes ownership of them (Close closes every one). An empty call
// selects one default local engine, mirroring NewShardSetOf.
func NewBalancer(opts BalancerOptions, backends ...Evaluator) *Balancer {
	if len(backends) == 0 {
		backends = []Evaluator{New(Options{PrivateCaches: true})}
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 2
	} else if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	}
	if opts.HealthInterval == 0 {
		opts.HealthInterval = 2 * time.Second
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = 2 * time.Second
	}
	if opts.FailThreshold <= 0 {
		opts.FailThreshold = 1
	}
	if opts.Width <= 0 {
		opts.Width = 8
	}
	b := &Balancer{
		maxRetries:   opts.MaxRetries,
		interval:     opts.HealthInterval,
		probeTimeout: opts.ProbeTimeout,
		threshold:    opts.FailThreshold,
		revived:      make(chan struct{}),
		stop:         make(chan struct{}),
	}
	b.cond = sync.NewCond(&b.mu)
	for i, ev := range backends {
		w := LocalStats(ev).Workers
		if w <= 0 {
			w = opts.Width
		}
		b.members = append(b.members, &member{
			ev:      ev,
			name:    backendName(ev, i),
			width:   w,
			healthy: true,
			down:    make(chan struct{}),
		})
		b.slots += w
	}
	if b.interval > 0 {
		go b.healthLoop()
	}
	return b
}

// backendName labels one backend for health reports: its peer URL when
// it has one (the remote client), its self-reported name, or a
// positional fallback.
func backendName(ev Evaluator, i int) string {
	if p, ok := ev.(interface{ Peer() string }); ok {
		return p.Peer()
	}
	if n, ok := ev.(interface{ Name() string }); ok {
		return n.Name()
	}
	switch ev.(type) {
	case *Engine:
		return fmt.Sprintf("local/%d", i)
	case *ShardSet:
		return fmt.Sprintf("shards/%d", i)
	default:
		return fmt.Sprintf("backend/%d", i)
	}
}

// Size returns the number of backends behind the balancer.
func (b *Balancer) Size() int { return len(b.members) }

// Backend returns backend i, for stats drill-down and tests.
func (b *Balancer) Backend(i int) Evaluator { return b.members[i].ev }

// MaxRetries returns the per-job failover budget.
func (b *Balancer) MaxRetries() int { return b.maxRetries }

// Retries returns how many re-dispatches (attempts after each job's
// first) the balancer has performed over its lifetime.
func (b *Balancer) Retries() uint64 { return b.retries.Load() }

// Health snapshots every backend's scorecard, in backend order. It
// reads only balancer-local state — no network I/O — so it is safe in
// liveness paths.
func (b *Balancer) Health() []BackendHealth {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]BackendHealth, len(b.members))
	for i, m := range b.members {
		out[i] = BackendHealth{
			Name:          m.name,
			Healthy:       m.healthy,
			Width:         m.width,
			Inflight:      m.inflight,
			Dispatched:    m.dispatched,
			Completed:     m.completed,
			Failed:        m.failed,
			Failovers:     m.failovers,
			Probes:        m.probes,
			ProbeFailures: m.probeFailures,
			LastError:     m.lastErr,
		}
	}
	return out
}

// Stats sums the backends' own counters — the Evaluator view, matching
// ShardSet.Stats. Remote backends answer with a peer scrape; for the
// balancer's dispatch/failover view use Health.
func (b *Balancer) Stats() Stats {
	var t Stats
	for _, st := range b.BackendStats() {
		t = t.Add(st)
	}
	return t
}

// BackendStats returns one stats snapshot per backend, in backend
// order, queried concurrently (a remote backend's Stats is a network
// scrape, so the set pays the slowest backend, not the sum).
func (b *Balancer) BackendStats() []Stats { return BackendStats(b) }

// Close stops the health loop, wakes every dispatch waiting for a slot
// (they resolve their jobs with ErrClosed), and closes every backend
// concurrently, joining their errors. Idempotent.
func (b *Balancer) Close() error {
	var err error
	b.stopOnce.Do(func() {
		b.mu.Lock()
		b.closed = true
		b.mu.Unlock()
		close(b.stop)
		b.cond.Broadcast()
		errs := make([]error, len(b.members))
		var wg sync.WaitGroup
		for i, m := range b.members {
			wg.Add(1)
			go func(i int, ev Evaluator) {
				defer wg.Done()
				errs[i] = ev.Close()
			}(i, m.ev)
		}
		wg.Wait()
		err = errors.Join(errs...)
	})
	return err
}

// Run dispatches every job to the healthiest least-loaded backend,
// failing over on backend-level errors, and returns results in
// submission order — Engine.Run semantics over the set.
func (b *Balancer) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	out := make([]Result, len(jobs))
	b.dispatch(ctx, jobs, func(i int, r Result) { out[i] = r })
	return out, ctx.Err()
}

// RunAll is Run under the engine's historical batch name.
func (b *Balancer) RunAll(ctx context.Context, jobs []Job) ([]Result, error) {
	return b.Run(ctx, jobs)
}

// Stream dispatches like Run but yields each result the moment its job
// resolves (after any failover), in completion order. The channel is
// buffered to len(jobs) and always closes — the Evaluator contract.
func (b *Balancer) Stream(ctx context.Context, jobs []Job) <-chan Result {
	out := make(chan Result, len(jobs))
	if len(jobs) == 0 {
		close(out)
		return out
	}
	go func() {
		defer close(out)
		b.dispatch(ctx, jobs, func(_ int, r Result) { out <- r })
	}()
	return out
}

// dispatch resolves every job exactly once through emit(jobIndex,
// result). Placement goroutines are admitted up to the fleet's total
// slot count: beyond that a batch waits cheaply on the admission
// channel instead of parking one cond waiter per job, which would cost
// O(jobs²) wakeups on big manifests (every completion broadcasts to
// every waiter). A watcher broadcasts on the context ending so slot
// waiters observe the cancellation.
func (b *Balancer) dispatch(ctx context.Context, jobs []Job, emit func(int, Result)) {
	if len(jobs) == 0 {
		return
	}
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			// Broadcast under mu: a waiter that checked ctx.Err() just
			// before the cancellation still holds mu until its Wait
			// parks it, so taking the lock here orders this wakeup
			// after that park — an unlocked Broadcast could fire into
			// the gap and strand the waiter forever.
			b.mu.Lock()
			b.cond.Broadcast()
			b.mu.Unlock()
		case <-watchDone:
		}
	}()
	sem := make(chan struct{}, b.slots)
	var wg sync.WaitGroup
	for i := range jobs {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			emit(i, Result{ID: jobs[i].ID, Err: ctx.Err(), Worker: -1})
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			emit(i, b.runJob(ctx, jobs[i]))
		}(i)
	}
	wg.Wait()
	close(watchDone)
}

// runJob places one job, retrying backend-level failures on other
// backends within the failover budget. Backends already tried are
// excluded until every backend has been — a budget larger than the set
// then starts a fresh pass, so a revived backend gets another chance.
func (b *Balancer) runJob(ctx context.Context, j Job) Result {
	exclude := make(map[*member]bool)
	var last Result
	for attempt := 0; ; attempt++ {
		m, err := b.acquire(ctx, exclude)
		if err == errAllTried {
			exclude = make(map[*member]bool)
			m, err = b.acquire(ctx, exclude)
		}
		if err != nil {
			return Result{ID: j.ID, Err: err, Worker: -1}
		}
		if attempt > 0 {
			b.retries.Add(1)
		}
		last = b.attempt(ctx, m, j)
		if !Retryable(last.Err) {
			return last
		}
		// Backend-level failure: book it as a failover exactly when the
		// job is re-dispatched, as a terminal failure when the budget
		// is spent — so the scorecards mean what they say.
		b.mu.Lock()
		if attempt >= b.maxRetries {
			m.failed++
			b.mu.Unlock()
			return last
		}
		m.failovers++
		b.mu.Unlock()
		exclude[m] = true
	}
}

// errAllTried is acquire's signal that every backend is excluded for
// this job — the caller decides whether the retry budget allows a fresh
// pass.
var errAllTried = errors.New("engine: every backend already tried")

// acquire reserves a dispatch slot: the healthy non-excluded backend
// with the fewest in-flight jobs and a free slot, ties rotated. When
// every non-excluded backend is unhealthy, the least-loaded unhealthy
// one is used as a last resort (its failure re-confirms it is down and
// keeps all-backends-down batches resolving instead of hanging). When
// eligible backends exist but all slots are taken, acquire waits for a
// release, a health change, cancellation, or Close.
func (b *Balancer) acquire(ctx context.Context, exclude map[*member]bool) (*member, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if b.closed {
			return nil, ErrClosed
		}
		start := b.rr
		b.rr++
		var best *member
		allTried, healthyLeft := true, false
		for k := range b.members {
			m := b.members[(start+k)%len(b.members)]
			if exclude[m] {
				continue
			}
			allTried = false
			if m.healthy {
				healthyLeft = true
				if m.inflight < m.width && (best == nil || m.inflight < best.inflight) {
					best = m
				}
			}
		}
		if allTried {
			return nil, errAllTried
		}
		if best == nil && !healthyLeft {
			for k := range b.members {
				m := b.members[(start+k)%len(b.members)]
				if exclude[m] || m.inflight >= m.width {
					continue
				}
				if best == nil || m.inflight < best.inflight {
					best = m
				}
			}
		}
		if best != nil {
			best.inflight++
			best.dispatched++
			return best, nil
		}
		b.cond.Wait()
	}
}

// attempt runs one job on one backend as a single-job batch — the
// granularity at which placement and failover operate — then releases
// the slot and scores the outcome.
//
// While the attempt is in flight it watches an abandonment signal: for
// a healthy member, its down channel — a backend declared dead
// mid-attempt (a failed probe, another job's backend-level failure)
// has its attempt abandoned and re-classified ErrUnavailable, so a
// wedged-but-connected peer — a network partition, a stopped process
// holding its TCP connections open — cannot hold the job hostage past
// the health verdict. For a member already unhealthy at dispatch (the
// all-backends-down last resort) the watch is the balancer-wide
// revived signal instead: the attempt runs (there is nowhere better to
// go, and a success redeems the backend) until some other backend
// comes back, at which point the job abandons the wedge and
// re-dispatches to the survivor.
func (b *Balancer) attempt(ctx context.Context, m *member, j Job) Result {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := make(chan struct{})
	defer close(stop)
	go b.watchAttempt(m, stop, cancel)

	rs, _ := m.ev.Run(actx, []Job{j})
	var r Result
	if len(rs) >= 1 {
		r = rs[0]
	} else {
		r = Result{ID: j.ID, Worker: -1,
			Err: fmt.Errorf("engine: backend %s returned no result: %w", m.name, ErrUnavailable)}
	}
	if r.Err != nil && actx.Err() != nil && ctx.Err() == nil {
		// The balancer abandoned the attempt, not the caller: make the
		// failure backend-level so the job is re-run elsewhere.
		r.Err = fmt.Errorf("engine: attempt on %s abandoned after the fleet's health changed: %w", m.name, ErrUnavailable)
		r.Worker = -1
	}

	b.mu.Lock()
	m.inflight--
	switch {
	case r.Err == nil:
		m.completed++
		b.setHealthLocked(m, true)
	case Retryable(r.Err):
		// Health scoring only — whether this failure becomes a
		// failover (re-dispatched) or a terminal failure is runJob's
		// call, which owns the retry budget.
		m.consecutive++
		m.lastErr = r.Err.Error()
		if m.consecutive >= b.threshold {
			b.setHealthLocked(m, false)
		}
	default:
		// The job ran and failed on its own terms; the backend is fine.
		m.failed++
		m.consecutive = 0
	}
	b.mu.Unlock()
	b.cond.Broadcast()
	return r
}

// watchAttempt watches one in-flight attempt on m and cancels it when
// the fleet's health says the job should move: a healthy member's
// attempt abandons when that member goes down; a last-resort attempt on
// an unhealthy member abandons when some OTHER member becomes healthy.
// The member's own recovery mid-attempt is not an abandonment — the
// running job is the evidence it recovered — so the watch re-arms on
// the member's fresh down channel instead of cancelling.
func (b *Balancer) watchAttempt(m *member, stop <-chan struct{}, cancel context.CancelFunc) {
	for {
		b.mu.Lock()
		wasHealthy := m.healthy
		ch := m.down
		if !wasHealthy {
			ch = b.revived
		}
		b.mu.Unlock()
		select {
		case <-stop:
			return
		case <-ch:
		}
		b.mu.Lock()
		abandon := wasHealthy // the member we were running on went down
		if !wasHealthy && !m.healthy {
			// A revival fired elsewhere while m stayed down: move the
			// job if somewhere healthy actually exists right now.
			for _, o := range b.members {
				if o != m && o.healthy {
					abandon = true
					break
				}
			}
		}
		b.mu.Unlock()
		if abandon {
			cancel()
			return
		}
	}
}

// healthLoop drives periodic probing until Close.
func (b *Balancer) healthLoop() {
	t := time.NewTicker(b.interval)
	defer t.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-t.C:
			b.ProbeNow(context.Background())
		}
	}
}

// ProbeNow probes every backend once, concurrently, and applies the
// verdicts — the health loop's body, exported so tests (and callers
// that just revived a peer) can force a deterministic round.
func (b *Balancer) ProbeNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, m := range b.members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			b.probe(ctx, m)
		}(m)
	}
	wg.Wait()
}

// probe checks one backend's liveness under the probe timeout and
// applies the verdict. A clean probe revives a backend that job
// results had marked down; waiters are woken either way, since a
// health change can unblock placement. Backends without a Prober are
// left untouched: fabricating health with no evidence would revive a
// reactively-down backend and route fresh jobs into it — their
// verdicts come from job results alone (and from the last-resort
// dispatch path, where a success redeems them).
func (b *Balancer) probe(ctx context.Context, m *member) {
	p, ok := m.ev.(Prober)
	if !ok {
		return
	}
	pctx, cancel := context.WithTimeout(ctx, b.probeTimeout)
	err := p.Probe(pctx)
	cancel()
	b.mu.Lock()
	m.probes++
	if err != nil {
		m.probeFailures++
		m.lastErr = err.Error()
		b.setHealthLocked(m, false)
	} else {
		b.setHealthLocked(m, true)
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Probe reports the balancer's own aggregate verdict — alive while any
// backend is marked healthy — so balancers nest behind other balancers.
// It reads only tracked state; no backend is contacted.
func (b *Balancer) Probe(context.Context) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	for _, m := range b.members {
		if m.healthy {
			return nil
		}
	}
	return fmt.Errorf("%w: all %d backends unhealthy", ErrUnavailable, len(b.members))
}
