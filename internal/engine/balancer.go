package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Balancer is the health-aware front of the Evaluator stack: it wraps a
// set of backends — local pools, remote peers, shard sets, in any mix —
// and dispatches each job to the least-loaded healthy one, failing jobs
// over to another backend when the one that held them dies. Where a
// ShardSet partitions a batch blindly (round-robin, wire-efficient, no
// second chances), a Balancer places every job individually and keeps a
// suite complete through mid-stream backend deaths:
//
//   - Health: a periodic loop probes every backend that implements
//     Prober (local engines answer from their closed flag, remote
//     clients GET /v1/healthz) and each job result updates the score
//     reactively — a backend-level failure (Retryable: ErrClosed or
//     ErrUnavailable) marks the backend down immediately, the next
//     success or clean probe revives it.
//   - Dispatch: each job takes a slot on the healthy backend with the
//     fewest in-flight jobs (ties rotate), bounded per backend by its
//     local worker count (or Width for backends that report none, i.e.
//     remote peers), so a slow backend holds only the jobs it is
//     actually running while the rest of the suite flows around it.
//   - Failover: a job whose result is a backend-level failure is re-run
//     on another backend — bounded by MaxRetries, excluding backends
//     already tried until every one has been — and resolves exactly
//     once, so merged Run/Stream output stays deduplicated. Job-level
//     failures (a bad program, a per-job timeout, the caller's context
//     ending) are never retried.
//
// Failover re-runs jobs, so jobs must be idempotent — true of the whole
// evaluation suite (pure simulation), and the same assumption the remote
// client's dial retry already makes. Jobs reach remote backends through
// their serializable Job.Spec exactly as with a ShardSet; spec-less
// closure jobs fail on remote backends with a not-remotable error and
// are not retried (placement cannot fix a job that cannot travel).
//
// The wire tradeoff is explicit: dispatch is job-granular, so remote
// jobs travel as individual /v1/eval requests (at most width concurrent
// per peer) rather than the ShardSet's chunked /v1/suite streams —
// placement precision and per-job failover bought with per-request
// overhead. Wire-efficiency-critical batch sweeps over a healthy fleet
// belong on a ShardSet; fleets that must survive member deaths belong
// here.
type Balancer struct {
	members      []*member
	maxRetries   int
	interval     time.Duration
	probeTimeout time.Duration
	threshold    int
	// slots is the fleet's total dispatch width — the admission cap on
	// concurrently-placed jobs, so a huge batch doesn't park one cond
	// waiter per job (see dispatch).
	slots int
	// chunk caps one chunked dispatch unit; 0 selects the historical
	// per-job placement (see dispatchChunked).
	chunk int
	// cache, when non-nil, is consulted before every placement: a hit
	// resolves the job without taking a slot or riding a chunk, and
	// successful attempts are stored back.
	cache ResultCache

	retries      atomic.Uint64
	chunks       atomic.Uint64
	chunkResumes atomic.Uint64
	cacheHits    atomic.Uint64

	// mu guards every member's mutable state plus closed and rr; cond
	// (on mu) wakes acquire waiters when a slot frees, a probe changes a
	// backend's health, or the balancer closes. Dispatch contexts get a
	// watcher goroutine that broadcasts on cancellation so waiters
	// observe it.
	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
	rr     int

	// revived is closed (and replaced) whenever any member transitions
	// to healthy; last-resort attempts on unhealthy backends watch it
	// so a recovery elsewhere rescues jobs stuck on a wedged backend.
	revived chan struct{}

	stop     chan struct{}
	stopOnce sync.Once
}

// member is one backend plus the balancer's book-keeping about it. All
// mutable fields are guarded by Balancer.mu.
type member struct {
	ev    Evaluator
	name  string
	width int // max concurrent jobs dispatched to this backend

	healthy     bool
	inflight    int
	consecutive int // consecutive backend-level failures
	lastErr     string
	// down is closed when the member transitions to unhealthy and
	// replaced with a fresh channel on revival; in-flight attempts
	// watch it so a backend declared dead (by a probe, or by another
	// job's failure) does not hold its jobs hostage.
	down chan struct{}

	dispatched    uint64
	completed     uint64
	failed        uint64
	failovers     uint64 // backend-level failures: jobs moved away from here
	probes        uint64
	probeFailures uint64

	chunks       uint64 // chunks dispatched to this backend
	chunkResumes uint64 // chunks severed here with unresolved jobs re-queued

	// cap is the most recent capacity scrape (nil until the first one
	// succeeds); chunk sizing and effective width read it so a busy
	// peer sheds load before it wedges.
	cap        *Capacity
	capScrapes uint64
}

// freeSlotsLocked reports how many more jobs this member can take right
// now: its static width — refined down to the live worker count when a
// capacity scrape has reported one — minus the jobs already in flight.
// Callers hold b.mu.
func (m *member) freeSlotsLocked() int {
	w := m.width
	if m.cap != nil && m.cap.Workers > 0 && m.cap.Workers < w {
		w = m.cap.Workers
	}
	return w - m.inflight
}

// setHealthLocked applies a health transition (callers hold b.mu):
// going down closes the member's down channel so in-flight attempts
// abandon the backend; coming up replaces it, clears the failure
// streak, and fires the balancer-wide revived signal so last-resort
// attempts stuck on other dead backends re-dispatch here.
func (b *Balancer) setHealthLocked(m *member, h bool) {
	if m.healthy == h {
		if h {
			m.consecutive = 0
		}
		return
	}
	m.healthy = h
	if h {
		m.consecutive = 0
		m.down = make(chan struct{})
		close(b.revived)
		b.revived = make(chan struct{})
	} else {
		close(m.down)
	}
}

// BackendHealth is one backend's point-in-time scorecard — the
// fleet-behaviour record BENCH reports and /v1/stats carry.
type BackendHealth struct {
	Name     string `json:"name"`
	Healthy  bool   `json:"healthy"`
	Width    int    `json:"width"`
	Inflight int    `json:"inflight"`
	// Dispatched counts jobs handed to this backend (including retries
	// of jobs other backends dropped). Completed counts successes;
	// Failed counts failures that ended the job here (its own fault, or
	// a backend-level failure with the retry budget spent); Failovers
	// counts backend-level failures whose job was re-queued elsewhere.
	Dispatched    uint64 `json:"dispatched"`
	Completed     uint64 `json:"completed"`
	Failed        uint64 `json:"failed"`
	Failovers     uint64 `json:"failovers"`
	Probes        uint64 `json:"probes"`
	ProbeFailures uint64 `json:"probe_failures"`
	// Chunks counts chunked dispatch units handed to this backend;
	// ChunkResumes counts chunks severed here whose unresolved jobs
	// were re-chunked onto other backends.
	Chunks       uint64 `json:"chunks,omitempty"`
	ChunkResumes uint64 `json:"chunk_resumes,omitempty"`
	// Capacity is the backend's most recent scraped load snapshot (nil
	// until a probe round's capacity query has succeeded);
	// CapacityScrapes counts the successful scrapes.
	Capacity        *Capacity `json:"capacity,omitempty"`
	CapacityScrapes uint64    `json:"capacity_scrapes,omitempty"`
	// Retired and Standby are the Autoscaler's scale-event plumbing: a
	// retired member was scaled down (drained, then closed) and no
	// longer takes jobs; a standby member was dialed from the
	// configured standby list rather than spawned locally. Always false
	// on a fixed-size Balancer's scorecards.
	Retired   bool   `json:"retired,omitempty"`
	Standby   bool   `json:"standby,omitempty"`
	LastError string `json:"last_error,omitempty"`
}

// BalancerOptions tune a Balancer. The zero value selects the defaults
// documented per field.
type BalancerOptions struct {
	// MaxRetries is how many times one job is re-dispatched after a
	// backend-level failure (0 selects 2; negative disables failover).
	MaxRetries int
	// HealthInterval is the period of the background probe loop
	// (0 selects 2s; negative disables the loop — probes then only run
	// through ProbeNow, which tests use for determinism).
	HealthInterval time.Duration
	// ProbeTimeout bounds one backend's probe (0 selects 2s).
	ProbeTimeout time.Duration
	// FailThreshold is how many consecutive backend-level failures mark
	// a backend unhealthy (0 selects 1: the first failure downs it).
	FailThreshold int
	// Width caps concurrent dispatch to backends that report no local
	// workers — remote peers, whose pool lives on the other machine
	// (0 selects 8). Backends with a local pool are capped at its size.
	Width int
	// Chunk enables chunked dispatch: up to Chunk jobs travel to a
	// backend as one dispatch unit — over one /v1/suite NDJSON stream
	// for backends implementing ChunkDispatcher, one Run batch
	// otherwise — with per-row acknowledgement, so a severed chunk
	// re-dispatches only its unresolved jobs. Chunks are sized down by
	// the backend's free slots and scraped live capacity. 0 (or
	// negative) selects the historical per-job placement; 1 is
	// equivalent to it and also dispatches per-job.
	Chunk int
	// Cache, when set, is the fleet-wide result cache consulted before
	// every placement: a hit short-circuits dispatch (the job never
	// takes a backend slot or rides a chunk) and every successful
	// attempt is stored back for the rest of the fleet.
	Cache ResultCache
}

// Retryable reports whether a job result's error is a backend-level
// failure — the class a Balancer responds to by re-running the job on
// another backend. Job-level failures (the job ran and was wrong, timed
// out, or the caller cancelled) are not retryable.
func Retryable(err error) bool {
	return err != nil && (errors.Is(err, ErrClosed) || errors.Is(err, ErrUnavailable))
}

// NewBalancer builds a health-aware front over the given backends and
// takes ownership of them (Close closes every one). An empty call
// selects one default local engine, mirroring NewShardSetOf.
func NewBalancer(opts BalancerOptions, backends ...Evaluator) *Balancer {
	if len(backends) == 0 {
		backends = []Evaluator{New(Options{PrivateCaches: true})}
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 2
	} else if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	}
	if opts.HealthInterval == 0 {
		opts.HealthInterval = 2 * time.Second
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = 2 * time.Second
	}
	if opts.FailThreshold <= 0 {
		opts.FailThreshold = 1
	}
	if opts.Width <= 0 {
		opts.Width = 8
	}
	if opts.Chunk < 0 {
		opts.Chunk = 0
	}
	b := &Balancer{
		maxRetries:   opts.MaxRetries,
		interval:     opts.HealthInterval,
		probeTimeout: opts.ProbeTimeout,
		threshold:    opts.FailThreshold,
		chunk:        opts.Chunk,
		cache:        opts.Cache,
		revived:      make(chan struct{}),
		stop:         make(chan struct{}),
	}
	b.cond = sync.NewCond(&b.mu)
	for i, ev := range backends {
		w := LocalStats(ev).Workers
		if w <= 0 {
			w = opts.Width
		}
		b.members = append(b.members, &member{
			ev:      ev,
			name:    backendName(ev, i),
			width:   w,
			healthy: true,
			down:    make(chan struct{}),
		})
		b.slots += w
	}
	if b.interval > 0 {
		go b.healthLoop()
	}
	return b
}

// backendName labels one backend for health reports: its peer URL when
// it has one (the remote client), its self-reported name, or a
// positional fallback.
func backendName(ev Evaluator, i int) string {
	if p, ok := ev.(interface{ Peer() string }); ok {
		return p.Peer()
	}
	if n, ok := ev.(interface{ Name() string }); ok {
		return n.Name()
	}
	switch ev.(type) {
	case *Engine:
		return fmt.Sprintf("local/%d", i)
	case *ShardSet:
		return fmt.Sprintf("shards/%d", i)
	default:
		return fmt.Sprintf("backend/%d", i)
	}
}

// Size returns the number of backends behind the balancer.
func (b *Balancer) Size() int { return len(b.members) }

// Backend returns backend i, for stats drill-down and tests.
func (b *Balancer) Backend(i int) Evaluator { return b.members[i].ev }

// MaxRetries returns the per-job failover budget.
func (b *Balancer) MaxRetries() int { return b.maxRetries }

// Retries returns how many re-dispatches (attempts after each job's
// first) the balancer has performed over its lifetime.
func (b *Balancer) Retries() uint64 { return b.retries.Load() }

// Chunk returns the configured chunk cap (0: per-job dispatch).
func (b *Balancer) Chunk() int { return b.chunk }

// Chunks returns how many chunked dispatch units the balancer has
// issued over its lifetime.
func (b *Balancer) Chunks() uint64 { return b.chunks.Load() }

// ChunkResumes returns how many chunks ended with unresolved jobs that
// were re-chunked onto other backends — the severed-stream recoveries.
func (b *Balancer) ChunkResumes() uint64 { return b.chunkResumes.Load() }

// ResultCache returns the result-cache tier consulted before every
// placement, or nil when the balancer runs uncached.
func (b *Balancer) ResultCache() ResultCache { return b.cache }

// CacheHits returns how many jobs were resolved from the result cache
// without ever being placed on a backend.
func (b *Balancer) CacheHits() uint64 { return b.cacheHits.Load() }

// Health snapshots every backend's scorecard, in backend order. It
// reads only balancer-local state — no network I/O — so it is safe in
// liveness paths.
func (b *Balancer) Health() []BackendHealth {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]BackendHealth, len(b.members))
	for i, m := range b.members {
		out[i] = BackendHealth{
			Name:            m.name,
			Healthy:         m.healthy,
			Width:           m.width,
			Inflight:        m.inflight,
			Dispatched:      m.dispatched,
			Completed:       m.completed,
			Failed:          m.failed,
			Failovers:       m.failovers,
			Probes:          m.probes,
			ProbeFailures:   m.probeFailures,
			Chunks:          m.chunks,
			ChunkResumes:    m.chunkResumes,
			CapacityScrapes: m.capScrapes,
			LastError:       m.lastErr,
		}
		if m.cap != nil {
			c := *m.cap
			out[i].Capacity = &c
		}
	}
	return out
}

// Stats sums the backends' own counters — the Evaluator view, matching
// ShardSet.Stats. Remote backends answer with a peer scrape; for the
// balancer's dispatch/failover view use Health.
func (b *Balancer) Stats() Stats {
	var t Stats
	for _, st := range b.BackendStats() {
		t = t.Add(st)
	}
	return t
}

// BackendStats returns one stats snapshot per backend, in backend
// order, queried concurrently (a remote backend's Stats is a network
// scrape, so the set pays the slowest backend, not the sum).
func (b *Balancer) BackendStats() []Stats { return BackendStats(b) }

// Close stops the health loop, wakes every dispatch waiting for a slot
// (they resolve their jobs with ErrClosed), closes every backend
// concurrently, and releases the attached result cache last (a tier
// drains its queued peer fills there), joining every error. Idempotent.
func (b *Balancer) Close() error {
	var err error
	b.stopOnce.Do(func() {
		b.mu.Lock()
		b.closed = true
		b.mu.Unlock()
		close(b.stop)
		b.cond.Broadcast()
		errs := make([]error, len(b.members), len(b.members)+1)
		var wg sync.WaitGroup
		for i, m := range b.members {
			wg.Add(1)
			go func(i int, ev Evaluator) {
				defer wg.Done()
				errs[i] = ev.Close()
			}(i, m.ev)
		}
		wg.Wait()
		errs = append(errs, closeResultCache(b.cache))
		err = errors.Join(errs...)
	})
	return err
}

// Run dispatches every job to the healthiest least-loaded backend,
// failing over on backend-level errors, and returns results in
// submission order — Engine.Run semantics over the set.
func (b *Balancer) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	out := make([]Result, len(jobs))
	b.dispatch(ctx, jobs, func(i int, r Result) { out[i] = r })
	return out, ctx.Err()
}

// RunAll is Run under the engine's historical batch name.
func (b *Balancer) RunAll(ctx context.Context, jobs []Job) ([]Result, error) {
	return b.Run(ctx, jobs)
}

// Stream dispatches like Run but yields each result the moment its job
// resolves (after any failover), in completion order. The channel is
// buffered to len(jobs) and always closes — the Evaluator contract.
func (b *Balancer) Stream(ctx context.Context, jobs []Job) <-chan Result {
	out := make(chan Result, len(jobs))
	if len(jobs) == 0 {
		close(out)
		return out
	}
	go func() {
		defer close(out)
		b.dispatch(ctx, jobs, func(_ int, r Result) { out <- r })
	}()
	return out
}

// dispatch resolves every job exactly once through emit(jobIndex,
// result). Placement goroutines are admitted up to the fleet's total
// slot count: beyond that a batch waits cheaply on the admission
// channel instead of parking one cond waiter per job, which would cost
// O(jobs²) wakeups on big manifests (every completion broadcasts to
// every waiter). A watcher broadcasts on the context ending so slot
// waiters observe the cancellation.
func (b *Balancer) dispatch(ctx context.Context, jobs []Job, emit func(int, Result)) {
	if len(jobs) == 0 {
		return
	}
	if b.chunk > 1 {
		b.dispatchChunked(ctx, jobs, emit)
		return
	}
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			// Broadcast under mu: a waiter that checked ctx.Err() just
			// before the cancellation still holds mu until its Wait
			// parks it, so taking the lock here orders this wakeup
			// after that park — an unlocked Broadcast could fire into
			// the gap and strand the waiter forever.
			b.mu.Lock()
			b.cond.Broadcast()
			b.mu.Unlock()
		case <-watchDone:
		}
	}()
	sem := make(chan struct{}, b.slots)
	var wg sync.WaitGroup
	for i := range jobs {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			emit(i, Result{ID: jobs[i].ID, Err: ctx.Err(), Worker: -1})
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if r, ok := b.cachedResult(ctx, jobs[i]); ok {
				emit(i, r)
				return
			}
			emit(i, b.runJob(ctx, jobs[i]))
		}(i)
	}
	wg.Wait()
	close(watchDone)
}

// cachedResult consults the result cache for one job before placement;
// a hit is a finished job that never touches a backend.
func (b *Balancer) cachedResult(ctx context.Context, j Job) (Result, bool) {
	if b.cache == nil || j.Spec == nil {
		return Result{}, false
	}
	v, ok := b.cache.Lookup(ctx, j.Spec)
	if !ok {
		return Result{}, false
	}
	b.cacheHits.Add(1)
	return Result{ID: j.ID, Value: v, Worker: -1}, true
}

// cacheStore records one successful result in the result cache,
// best-effort — called outside b.mu because a tiered cache fans the
// fill out to peers.
func (b *Balancer) cacheStore(ctx context.Context, j Job, v any) {
	if b.cache == nil || j.Spec == nil {
		return
	}
	b.cache.Store(ctx, j.Spec, v)
}

// filterCached resolves every cache-hit job up front — concurrently,
// since a miss may cost a peer round-trip — and returns the indices
// still needing dispatch, so a hot job never rides a chunk.
func (b *Balancer) filterCached(ctx context.Context, jobs []Job, emit func(int, Result)) []int {
	hit := make([]bool, len(jobs))
	vals := make([]any, len(jobs))
	sem := make(chan struct{}, 16)
	var wg sync.WaitGroup
	for i := range jobs {
		if jobs[i].Spec == nil || ctx.Err() != nil {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			vals[i], hit[i] = b.cache.Lookup(ctx, jobs[i].Spec)
		}(i)
	}
	wg.Wait()
	pending := make([]int, 0, len(jobs))
	for i := range jobs {
		if hit[i] {
			b.cacheHits.Add(1)
			emit(i, Result{ID: jobs[i].ID, Value: vals[i], Worker: -1})
		} else {
			pending = append(pending, i)
		}
	}
	return pending
}

// runJob places one job, retrying backend-level failures on other
// backends within the failover budget. Backends already tried are
// excluded until every backend has been — a budget larger than the set
// then starts a fresh pass, so a revived backend gets another chance.
func (b *Balancer) runJob(ctx context.Context, j Job) Result {
	exclude := make(map[*member]bool)
	var last Result
	for attempt := 0; ; attempt++ {
		m, err := b.acquire(ctx, exclude)
		if err == errAllTried {
			exclude = make(map[*member]bool)
			m, err = b.acquire(ctx, exclude)
		}
		if err != nil {
			return Result{ID: j.ID, Err: err, Worker: -1}
		}
		if attempt > 0 {
			b.retries.Add(1)
		}
		last = b.attempt(ctx, m, j)
		if !Retryable(last.Err) {
			return last
		}
		// Backend-level failure: book it as a failover exactly when the
		// job is re-dispatched, as a terminal failure when the budget
		// is spent — so the scorecards mean what they say.
		b.mu.Lock()
		if attempt >= b.maxRetries {
			m.failed++
			b.mu.Unlock()
			return last
		}
		m.failovers++
		b.mu.Unlock()
		exclude[m] = true
	}
}

// errAllTried is acquire's signal that every backend is excluded for
// this job — the caller decides whether the retry budget allows a fresh
// pass.
var errAllTried = errors.New("engine: every backend already tried")

// acquire reserves a dispatch slot: the healthy non-excluded backend
// with the fewest in-flight jobs and a free slot, ties rotated. When
// every non-excluded backend is unhealthy, the least-loaded unhealthy
// one is used as a last resort (its failure re-confirms it is down and
// keeps all-backends-down batches resolving instead of hanging). When
// eligible backends exist but all slots are taken, acquire waits for a
// release, a health change, cancellation, or Close.
func (b *Balancer) acquire(ctx context.Context, exclude map[*member]bool) (*member, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if b.closed {
			return nil, ErrClosed
		}
		start := b.rr
		b.rr++
		var best *member
		allTried, healthyLeft := true, false
		for k := range b.members {
			m := b.members[(start+k)%len(b.members)]
			if exclude[m] {
				continue
			}
			allTried = false
			if m.healthy {
				healthyLeft = true
				// freeSlotsLocked refines the static width with the live
				// worker count a capacity scrape reported, so a peer
				// that shrank sheds load before it wedges.
				if m.freeSlotsLocked() > 0 && (best == nil || m.inflight < best.inflight) {
					best = m
				}
			}
		}
		if allTried {
			return nil, errAllTried
		}
		if best == nil && !healthyLeft {
			for k := range b.members {
				m := b.members[(start+k)%len(b.members)]
				if exclude[m] || m.freeSlotsLocked() <= 0 {
					continue
				}
				if best == nil || m.inflight < best.inflight {
					best = m
				}
			}
		}
		if best != nil {
			best.inflight++
			best.dispatched++
			return best, nil
		}
		b.cond.Wait()
	}
}

// chunkItem is one job's book-keeping in the chunked dispatch path: its
// index in the batch, how many attempts it has consumed, and the
// backends excluded by earlier failures. An item is owned by exactly
// one party at a time — the dispatch loop while queued, one chunk
// attempt while in flight — so its fields need no lock of their own.
type chunkItem struct {
	idx     int
	attempt int
	exclude map[*member]bool
}

// dispatchChunked resolves every job exactly once through emit, moving
// jobs in chunks of up to b.chunk instead of one at a time: a chunk
// rides one dispatch unit (one /v1/suite NDJSON stream on a
// ChunkDispatcher backend), each arriving row acknowledges its job, and
// a severed chunk re-queues only its unresolved jobs — so failover
// costs re-running the jobs a dying backend actually dropped, not the
// whole chunk, and a healthy sweep pays one request per chunk instead
// of one per job.
//
// A single placement loop owns the queue: it waits for a slot on the
// best backend (most free slots, refined by scraped capacity), pops the
// largest admissible chunk, and hands it to a concurrent attempt.
// Attempts re-queue unresolved or retryable items and wake the loop;
// the loop exits when the queue is empty and nothing is in flight.
func (b *Balancer) dispatchChunked(ctx context.Context, jobs []Job, emit func(int, Result)) {
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			// See dispatch: Broadcast under mu so a waiter between its
			// ctx check and its park cannot miss the wakeup.
			b.mu.Lock()
			b.cond.Broadcast()
			b.mu.Unlock()
		case <-watchDone:
		}
	}()
	defer close(watchDone)

	// Cache hits resolve before the queue exists: a hot job neither
	// rides a chunk nor occupies a reservation another job could use.
	pending := make([]int, 0, len(jobs))
	if b.cache != nil {
		pending = b.filterCached(ctx, jobs, emit)
	} else {
		for i := range jobs {
			pending = append(pending, i)
		}
	}

	var (
		mu       sync.Mutex
		queue    = make([]*chunkItem, 0, len(pending))
		inflight int
		wake     = make(chan struct{}, 1)
	)
	for _, i := range pending {
		queue = append(queue, &chunkItem{idx: i, exclude: map[*member]bool{}})
	}
	signal := func() {
		select {
		case wake <- struct{}{}:
		default:
		}
	}

	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		mu.Lock()
		if len(queue) == 0 {
			if inflight == 0 {
				mu.Unlock()
				return
			}
			mu.Unlock()
			<-wake // an attempt always signals on completion
			continue
		}
		front := queue[0]
		mu.Unlock()

		// Place the front item first — acquire honours its exclusions,
		// so the oldest re-queued job cannot starve behind fresh ones —
		// then widen the chunk with other items that admit the same
		// backend.
		m, want, err := b.acquireChunk(ctx, front.exclude)
		if err == errAllTried {
			clear(front.exclude)
			continue
		}
		if err != nil {
			// The caller's context ended or the balancer closed: resolve
			// everything still queued; in-flight attempts resolve their
			// own items against the same condition.
			mu.Lock()
			rest := queue
			queue = nil
			mu.Unlock()
			for _, it := range rest {
				emit(it.idx, Result{ID: jobs[it.idx].ID, Err: err, Worker: -1})
			}
			continue
		}

		mu.Lock()
		take := make([]*chunkItem, 0, want)
		rest := queue[:0]
		for _, it := range queue {
			if len(take) < want && !it.exclude[m] {
				take = append(take, it)
			} else {
				rest = append(rest, it)
			}
		}
		queue = rest
		inflight += len(take)
		mu.Unlock()
		if extra := want - len(take); extra > 0 {
			b.releaseSlots(m, extra)
		}
		redispatched := 0
		for _, it := range take {
			if it.attempt > 0 {
				redispatched++
			}
		}
		if redispatched > 0 {
			b.retries.Add(uint64(redispatched))
		}

		wg.Add(1)
		go func(m *member, take []*chunkItem) {
			defer wg.Done()
			requeue := b.attemptChunk(ctx, m, jobs, take, emit)
			mu.Lock()
			queue = append(queue, requeue...)
			inflight -= len(take)
			mu.Unlock()
			signal()
		}(m, take)
	}
}

// acquireChunk reserves up to b.chunk dispatch slots on one backend:
// the healthy non-excluded backend with the most free slots (static
// width refined by the live worker count a capacity scrape reported),
// the chunk capped further by the peer's scraped free workers so a
// busy peer sheds load. The same last-resort and errAllTried rules as
// acquire apply; the caller returns unused reservations through
// releaseSlots.
func (b *Balancer) acquireChunk(ctx context.Context, exclude map[*member]bool) (*member, int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		if b.closed {
			return nil, 0, ErrClosed
		}
		start := b.rr
		b.rr++
		var best *member
		bestFree := 0
		allTried, healthyLeft := true, false
		for k := range b.members {
			m := b.members[(start+k)%len(b.members)]
			if exclude[m] {
				continue
			}
			allTried = false
			if !m.healthy {
				continue
			}
			healthyLeft = true
			if free := m.freeSlotsLocked(); free > 0 && (best == nil || free > bestFree) {
				best, bestFree = m, free
			}
		}
		if allTried {
			return nil, 0, errAllTried
		}
		if best == nil && !healthyLeft {
			for k := range b.members {
				m := b.members[(start+k)%len(b.members)]
				if exclude[m] {
					continue
				}
				if free := m.freeSlotsLocked(); free > 0 && (best == nil || free > bestFree) {
					best, bestFree = m, free
				}
			}
		}
		if best != nil {
			n := bestFree
			if n > b.chunk {
				n = b.chunk
			}
			// Live capacity caps the chunk further — including Free 0,
			// which caps to the 1-job minimum: a saturated peer must
			// shed load, not receive the largest chunk. Scrapes with no
			// reported pool (a proxy-only front's meaningless zeros)
			// are ignored, like freeSlotsLocked does.
			if c := best.cap; c != nil && c.Workers > 0 && c.Free < n {
				n = c.Free
			}
			if n < 1 {
				n = 1
			}
			best.inflight += n
			return best, n, nil
		}
		b.cond.Wait()
	}
}

// releaseSlots returns n unused dispatch-slot reservations on m and
// wakes waiters.
func (b *Balancer) releaseSlots(m *member, n int) {
	b.mu.Lock()
	m.inflight -= n
	b.mu.Unlock()
	b.cond.Broadcast()
}

// attemptChunk runs one chunk on one backend, resolving acknowledged
// jobs and returning the items the dispatch loop must re-queue: jobs
// the chunk left unresolved (the stream was severed under them) and
// jobs whose acknowledged result is a backend-level failure within the
// retry budget. The same abandonment watch as attempt covers the whole
// chunk: a backend declared dead mid-chunk has the chunk cancelled,
// and its unresolved jobs move on without waiting out the wedge.
func (b *Balancer) attemptChunk(ctx context.Context, m *member, jobs []Job, items []*chunkItem, emit func(int, Result)) []*chunkItem {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := make(chan struct{})
	go b.watchAttempt(m, stop, cancel)

	b.mu.Lock()
	m.dispatched += uint64(len(items))
	m.chunks++
	b.mu.Unlock()
	b.chunks.Add(1)

	chunkJobs := make([]Job, len(items))
	for i, it := range items {
		chunkJobs[i] = jobs[it.idx]
	}
	resolved := make([]bool, len(items))
	results := make([]Result, len(items))
	var chunkErr error
	if cd, ok := m.ev.(ChunkDispatcher); ok {
		chunkErr = cd.DispatchChunk(actx, chunkJobs, func(i int, r Result) {
			if i < 0 || i >= len(items) || resolved[i] {
				return
			}
			resolved[i], results[i] = true, r
		})
	} else {
		// Backends without the chunk capability run the chunk as one
		// Run batch — every result arrives together, which is still one
		// dispatch decision per chunk.
		rs, _ := m.ev.Run(actx, chunkJobs)
		for i := range items {
			if i < len(rs) {
				resolved[i], results[i] = true, rs[i]
			}
		}
		if len(rs) < len(items) {
			chunkErr = fmt.Errorf("engine: backend %s returned %d results for a %d-job chunk: %w",
				m.name, len(rs), len(items), ErrUnavailable)
		}
	}
	close(stop)
	abandoned := actx.Err() != nil && ctx.Err() == nil

	type pending struct {
		idx int
		r   Result
	}
	var toEmit []pending
	var requeue []*chunkItem
	sawSuccess, sawRetryable, sawJobLevel := false, false, false
	b.mu.Lock()
	m.inflight -= len(items)
	for i, it := range items {
		r := results[i]
		if !resolved[i] {
			err := chunkErr
			if err == nil {
				err = fmt.Errorf("engine: chunk on %s ended with job %q unresolved: %w",
					m.name, chunkJobs[i].ID, ErrUnavailable)
			}
			if abandoned {
				err = fmt.Errorf("engine: chunk on %s abandoned after the fleet's health changed: %w",
					m.name, ErrUnavailable)
			}
			r = Result{ID: chunkJobs[i].ID, Err: err, Worker: -1}
		} else if r.Err != nil && abandoned {
			// The balancer abandoned the chunk, not the caller: the
			// failure is backend-level, so the job may run elsewhere.
			r.Err = fmt.Errorf("engine: chunk attempt on %s abandoned after the fleet's health changed: %w",
				m.name, ErrUnavailable)
			r.Worker = -1
		}
		switch {
		case r.Err == nil:
			m.completed++
			sawSuccess = true
			toEmit = append(toEmit, pending{it.idx, r})
		case Retryable(r.Err):
			sawRetryable = true
			m.lastErr = r.Err.Error()
			if it.attempt >= b.maxRetries {
				m.failed++
				toEmit = append(toEmit, pending{it.idx, r})
			} else {
				m.failovers++
				it.attempt++
				it.exclude[m] = true
				requeue = append(requeue, it)
			}
		default:
			// The job ran and failed on its own terms (or the caller's
			// context ended); the backend is not at fault.
			m.failed++
			sawJobLevel = true
			toEmit = append(toEmit, pending{it.idx, r})
		}
	}
	// Mirror the per-job attempt's health scoring: evidence the backend
	// ran jobs (a success, or a job-level failure) clears the failure
	// streak before this chunk's own backend-level failures count
	// against it, so a live backend is not marked down by stale streaks.
	if sawSuccess {
		b.setHealthLocked(m, true)
	} else if sawJobLevel {
		m.consecutive = 0
	}
	if sawRetryable {
		m.consecutive++
		if m.consecutive >= b.threshold {
			b.setHealthLocked(m, false)
		}
	}
	if len(requeue) > 0 {
		m.chunkResumes++
		b.chunkResumes.Add(1)
	}
	b.mu.Unlock()
	b.cond.Broadcast()
	for _, p := range toEmit {
		if p.r.Err == nil {
			b.cacheStore(ctx, jobs[p.idx], p.r.Value)
		}
		emit(p.idx, p.r)
	}
	return requeue
}

// attempt runs one job on one backend as a single-job batch — the
// granularity at which placement and failover operate — then releases
// the slot and scores the outcome.
//
// While the attempt is in flight it watches an abandonment signal: for
// a healthy member, its down channel — a backend declared dead
// mid-attempt (a failed probe, another job's backend-level failure)
// has its attempt abandoned and re-classified ErrUnavailable, so a
// wedged-but-connected peer — a network partition, a stopped process
// holding its TCP connections open — cannot hold the job hostage past
// the health verdict. For a member already unhealthy at dispatch (the
// all-backends-down last resort) the watch is the balancer-wide
// revived signal instead: the attempt runs (there is nowhere better to
// go, and a success redeems the backend) until some other backend
// comes back, at which point the job abandons the wedge and
// re-dispatches to the survivor.
func (b *Balancer) attempt(ctx context.Context, m *member, j Job) Result {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := make(chan struct{})
	defer close(stop)
	go b.watchAttempt(m, stop, cancel)

	rs, _ := m.ev.Run(actx, []Job{j})
	var r Result
	if len(rs) >= 1 {
		r = rs[0]
	} else {
		r = Result{ID: j.ID, Worker: -1,
			Err: fmt.Errorf("engine: backend %s returned no result: %w", m.name, ErrUnavailable)}
	}
	if r.Err != nil && actx.Err() != nil && ctx.Err() == nil {
		// The balancer abandoned the attempt, not the caller: make the
		// failure backend-level so the job is re-run elsewhere.
		r.Err = fmt.Errorf("engine: attempt on %s abandoned after the fleet's health changed: %w", m.name, ErrUnavailable)
		r.Worker = -1
	}

	b.mu.Lock()
	m.inflight--
	switch {
	case r.Err == nil:
		m.completed++
		b.setHealthLocked(m, true)
	case Retryable(r.Err):
		// Health scoring only — whether this failure becomes a
		// failover (re-dispatched) or a terminal failure is runJob's
		// call, which owns the retry budget.
		m.consecutive++
		m.lastErr = r.Err.Error()
		if m.consecutive >= b.threshold {
			b.setHealthLocked(m, false)
		}
	default:
		// The job ran and failed on its own terms; the backend is fine.
		m.failed++
		m.consecutive = 0
	}
	b.mu.Unlock()
	b.cond.Broadcast()
	if r.Err == nil {
		b.cacheStore(ctx, j, r.Value)
	}
	return r
}

// watchAttempt watches one in-flight attempt on m and cancels it when
// the fleet's health says the job should move: a healthy member's
// attempt abandons when that member goes down; a last-resort attempt on
// an unhealthy member abandons when some OTHER member becomes healthy.
// The member's own recovery mid-attempt is not an abandonment — the
// running job is the evidence it recovered — so the watch re-arms on
// the member's fresh down channel instead of cancelling.
func (b *Balancer) watchAttempt(m *member, stop <-chan struct{}, cancel context.CancelFunc) {
	for {
		b.mu.Lock()
		wasHealthy := m.healthy
		ch := m.down
		if !wasHealthy {
			ch = b.revived
		}
		b.mu.Unlock()
		select {
		case <-stop:
			return
		case <-ch:
		}
		b.mu.Lock()
		abandon := wasHealthy // the member we were running on went down
		if !wasHealthy && !m.healthy {
			// A revival fired elsewhere while m stayed down: move the
			// job if somewhere healthy actually exists right now.
			for _, o := range b.members {
				if o != m && o.healthy {
					abandon = true
					break
				}
			}
		}
		b.mu.Unlock()
		if abandon {
			cancel()
			return
		}
	}
}

// healthLoop drives periodic probing until Close.
func (b *Balancer) healthLoop() {
	t := time.NewTicker(b.interval)
	defer t.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-t.C:
			b.ProbeNow(context.Background())
		}
	}
}

// ProbeNow probes every backend once, concurrently, and applies the
// verdicts — the health loop's body, exported so tests (and callers
// that just revived a peer) can force a deterministic round.
func (b *Balancer) ProbeNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, m := range b.members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			b.probe(ctx, m)
		}(m)
	}
	wg.Wait()
}

// probe checks one backend's liveness under the probe timeout and
// applies the verdict. A clean probe revives a backend that job
// results had marked down; waiters are woken either way, since a
// health change can unblock placement. Backends without a Prober are
// left untouched: fabricating health with no evidence would revive a
// reactively-down backend and route fresh jobs into it — their
// verdicts come from job results alone (and from the last-resort
// dispatch path, where a success redeems them).
func (b *Balancer) probe(ctx context.Context, m *member) {
	p, ok := m.ev.(Prober)
	if !ok {
		return
	}
	pctx, cancel := context.WithTimeout(ctx, b.probeTimeout)
	err := p.Probe(pctx)
	cancel()
	b.mu.Lock()
	m.probes++
	if err != nil {
		m.probeFailures++
		m.lastErr = err.Error()
		b.setHealthLocked(m, false)
	} else {
		b.setHealthLocked(m, true)
	}
	b.mu.Unlock()
	b.cond.Broadcast()
	if err == nil {
		b.scrapeCapacity(ctx, m)
	}
}

// scrapeCapacity refreshes one live backend's capacity snapshot — the
// probe round's second question, asked only after a clean liveness
// verdict so a dead peer is not asked twice. A failed scrape keeps the
// previous snapshot: stale capacity still beats the static width hint,
// and liveness is the probe's verdict to give, not this one's.
func (b *Balancer) scrapeCapacity(ctx context.Context, m *member) {
	cr, ok := m.ev.(CapacityReporter)
	if !ok {
		return
	}
	cctx, cancel := context.WithTimeout(ctx, b.probeTimeout)
	c, err := cr.Capacity(cctx)
	cancel()
	if err != nil {
		return
	}
	b.mu.Lock()
	m.cap = &c
	m.capScrapes++
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Capacity answers the CapacityReporter query from the balancer's
// tracked state — the members' most recent scrapes where one exists,
// local counters otherwise — so nested balancers report fleet capacity
// without a fresh network round.
func (b *Balancer) Capacity(context.Context) (Capacity, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return Capacity{}, ErrClosed
	}
	var t Capacity
	for _, m := range b.members {
		if m.cap != nil {
			t.Workers += m.cap.Workers
			t.Busy += m.cap.Busy
			t.Free += m.cap.Free
			t.Queue += m.cap.Queue
			continue
		}
		c := CapacityFromStats(LocalStats(m.ev))
		t.Workers += c.Workers
		t.Busy += c.Busy
		t.Free += c.Free
		t.Queue += c.Queue
	}
	return t, nil
}

// Probe reports the balancer's own aggregate verdict — alive while any
// backend is marked healthy — so balancers nest behind other balancers.
// It reads only tracked state; no backend is contacted.
func (b *Balancer) Probe(context.Context) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	for _, m := range b.members {
		if m.healthy {
			return nil
		}
	}
	return fmt.Errorf("%w: all %d backends unhealthy", ErrUnavailable, len(b.members))
}
