// Package engine is the concurrent batch-evaluation subsystem: a
// worker-pool job runner that fans the paper's §V evaluation matrix
// (workload × core model × technology) out across GOMAXPROCS workers,
// plus memoization caches for the two expensive pure computations of the
// pipeline — assembling ART-9 programs and gate-level analysis — so
// repeated evaluations are near-free.
//
// The engine is deliberately generic: a Job is a closure, so the higher
// layers (internal/bench, internal/core, internal/serve, cmd/art9-batch)
// can submit any unit of work without this package depending on them.
// RunAll returns results in submission order, which is how the
// concurrent suite reproduces the serial tables byte for byte; Stream
// delivers them in completion order, which is how the evaluation server
// pushes NDJSON rows to a client the moment each job finishes.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned for jobs submitted to a closed engine.
var ErrClosed = errors.New("engine: closed")

// ErrUnavailable marks a backend-level failure: the backend could not
// carry the job at all — a peer was unreachable, a result stream was
// severed mid-suite — as opposed to the job itself running and failing.
// Backends wrap transport-class errors with it (internal/remote does for
// dial failures, severed NDJSON streams and truncated responses) so a
// Balancer can tell "re-run this job elsewhere" from "this job is bad".
var ErrUnavailable = errors.New("engine: backend unavailable")

// ErrTimeout wraps a job failure caused by the per-job timeout (the
// job's own Timeout or the engine's JobTimeout) expiring while the job
// ran. A deadline or cancellation that arrived on the caller's context
// is reported as that context's error instead.
var ErrTimeout = errors.New("engine: job timeout")

// Options configure an Engine.
type Options struct {
	// Workers is the pool size; 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// JobTimeout bounds each job's execution unless the job sets its
	// own Timeout; 0 means no per-job deadline.
	JobTimeout time.Duration
	// Queue is the depth of the buffered dispatch queue between Submit
	// and the workers; 0 selects 2×Workers. A deeper queue lets bursty
	// submitters (the HTTP suite endpoint, Stream fan-outs) hand off
	// without parking one goroutine per pending send.
	Queue int
	// PrivateCaches gives the engine's Programs/Analyses fields fresh
	// caches instead of pointing them at the process-wide shared ones.
	// Only jobs that route work through those fields are isolated —
	// the bench/core helpers (AssembleCached, AnalyzeART9) always use
	// the shared caches. Useful for tests that assert exact hit/miss
	// counts on work they submit themselves.
	PrivateCaches bool
	// Cache, when set, is consulted with each job's Spec before the
	// job is enqueued: a hit resolves the Submit immediately with the
	// cached value (Worker -1, counted as completed) and the job never
	// occupies a worker. Successful executions are stored back. Jobs
	// without a Spec bypass the cache entirely.
	Cache ResultCache
}

// Job is one unit of evaluation work.
type Job struct {
	// ID labels the job in its Result (e.g. the workload name).
	ID string
	// Timeout overrides the engine's JobTimeout for this job.
	Timeout time.Duration
	// Fn does the work. It should honour ctx cancellation where it
	// can; the engine always checks ctx before dispatching.
	Fn func(ctx context.Context) (any, error)
	// Spec optionally carries a serializable description of the work
	// (e.g. a *bench.JobSpec) so backends that cannot ship closures —
	// the internal/remote HTTP client — can re-create the job on a
	// peer. Local backends ignore it.
	Spec any
}

// Result is the outcome of one job.
type Result struct {
	ID      string
	Value   any
	Err     error
	Elapsed time.Duration
	// Worker is the pool index that executed the job (-1 if the job
	// was cancelled before dispatch or answered by the result cache).
	Worker int
}

// Stats are the engine's lifetime counters. Every submitted job ends in
// exactly one of Completed, Failed (its Fn ran and returned an error,
// including a per-job timeout the Fn honoured), Canceled (its context
// ended before the Fn ran), or Rejected (the engine closed first), so
// Submitted - (Completed+Failed+Canceled+Rejected) is the in-flight
// count.
type Stats struct {
	Workers   int    `json:"workers"`
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	Rejected  uint64 `json:"rejected"`
	// Streams counts Stream calls started on this engine.
	Streams uint64 `json:"streams"`
}

// Add accumulates another engine's counters into s, summing every job
// counter and the pool sizes — how a ShardSet reports set-wide totals.
func (s Stats) Add(o Stats) Stats {
	s.Workers += o.Workers
	s.Submitted += o.Submitted
	s.Completed += o.Completed
	s.Failed += o.Failed
	s.Canceled += o.Canceled
	s.Rejected += o.Rejected
	s.Streams += o.Streams
	return s
}

type task struct {
	ctx  context.Context
	job  Job
	done chan<- Result
}

// Engine is a fixed-size worker pool with a buffered dispatch queue,
// submission-order (RunAll) and completion-order (Stream) result
// collection, and shared memoization caches.
type Engine struct {
	workers int
	timeout time.Duration
	jobs    chan task
	quit    chan struct{}
	wg      sync.WaitGroup
	once    sync.Once

	// mu orders Submit against Close: Submit registers its enqueue
	// goroutine in submitters under a read lock while closed is false,
	// so Close — which flips closed under the write lock — can wait for
	// every in-flight enqueue before sweeping the queue. Without the
	// handshake a Submit racing Close could park a task in the buffer
	// after the sweep and strand its done channel forever.
	mu         sync.RWMutex
	closed     bool
	submitters sync.WaitGroup

	// cache, when non-nil, short-circuits Submit on known Specs and
	// records successful executions — the fleet-wide result tier.
	cache ResultCache

	submitted atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	canceled  atomic.Uint64
	rejected  atomic.Uint64
	streams   atomic.Uint64

	// Programs memoizes assembled ART-9 programs by source text.
	Programs *ProgramCache
	// Analyses memoizes gate-level analyses by (netlist, technology).
	Analyses *AnalysisCache
}

// New starts a worker pool. Call Close when done with it.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	q := opts.Queue
	if q <= 0 {
		q = 2 * w
	}
	e := &Engine{
		workers:  w,
		timeout:  opts.JobTimeout,
		jobs:     make(chan task, q),
		quit:     make(chan struct{}),
		cache:    opts.Cache,
		Programs: SharedPrograms,
		Analyses: SharedAnalyses,
	}
	if opts.PrivateCaches {
		e.Programs = NewProgramCache()
		e.Analyses = NewAnalysisCache()
	}
	e.wg.Add(w)
	for i := 0; i < w; i++ {
		go e.worker(i)
	}
	return e
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// ResultCache returns the result-cache tier consulted on this pool's
// dispatch path, or nil when the pool runs uncached.
func (e *Engine) ResultCache() ResultCache { return e.cache }

// Probe answers the Prober liveness check locally: a running pool is
// healthy, a closed one reports ErrClosed so a Balancer stops routing
// jobs at it.
func (e *Engine) Probe(context.Context) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	return nil
}

// Capacity answers the CapacityReporter query from the pool's own
// counters — no I/O, so a probe round over local backends stays cheap.
func (e *Engine) Capacity(context.Context) (Capacity, error) {
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return Capacity{}, ErrClosed
	}
	return CapacityFromStats(e.Stats()), nil
}

// Close stops the workers. Jobs already executing finish, and workers
// drain jobs already sitting in the dispatch queue before exiting; any
// task still undispatched when the pool is gone — plus everything
// submitted afterwards — resolves with ErrClosed. Every Submit channel
// resolves exactly once; Close never strands a waiter. Idempotent. An
// attached result cache is released last (a tier drains its queued
// peer fills there), and its close verdict is the only error Close can
// return.
func (e *Engine) Close() error {
	var err error
	e.once.Do(func() {
		e.mu.Lock()
		e.closed = true
		e.mu.Unlock()
		close(e.quit)
		// Every registered enqueue resolves promptly now that quit is
		// closed: the send either lands in the queue or loses to the
		// quit case and rejects. Only then is the queue membership
		// final and the sweep below sound.
		e.submitters.Wait()
		e.wg.Wait()
	sweep:
		for {
			select {
			case t := <-e.jobs:
				e.rejected.Add(1)
				t.done <- Result{ID: t.job.ID, Err: ErrClosed, Worker: -1}
			default:
				break sweep
			}
		}
		err = closeResultCache(e.cache)
	})
	return err
}

// Stats returns a snapshot of the lifetime counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Workers:   e.workers,
		Submitted: e.submitted.Load(),
		Completed: e.completed.Load(),
		Failed:    e.failed.Load(),
		Canceled:  e.canceled.Load(),
		Rejected:  e.rejected.Load(),
		Streams:   e.streams.Load(),
	}
}

// Submit enqueues one job and returns a channel that will receive its
// Result exactly once. Cancelling ctx before a worker picks the job up
// resolves it immediately with ctx's error.
func (e *Engine) Submit(ctx context.Context, j Job) <-chan Result {
	e.submitted.Add(1)
	done := make(chan Result, 1)
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		e.rejected.Add(1)
		done <- Result{ID: j.ID, Err: ErrClosed, Worker: -1}
		return done
	}
	e.submitters.Add(1)
	e.mu.RUnlock()
	go func() {
		defer e.submitters.Done()
		// Consult the result cache before the job touches the queue: a
		// hit is a finished job — no worker, no queue slot. The lookup
		// happens off the caller's goroutine because a tiered cache may
		// do a peer round-trip on a local miss.
		if e.cache != nil && j.Spec != nil {
			if v, ok := e.cache.Lookup(ctx, j.Spec); ok {
				e.completed.Add(1)
				done <- Result{ID: j.ID, Value: v, Worker: -1}
				return
			}
		}
		select {
		case e.jobs <- task{ctx: ctx, job: j, done: done}:
		case <-ctx.Done():
			e.canceled.Add(1)
			done <- Result{ID: j.ID, Err: ctx.Err(), Worker: -1}
		case <-e.quit:
			e.rejected.Add(1)
			done <- Result{ID: j.ID, Err: ErrClosed, Worker: -1}
		}
	}()
	return done
}

// Run submits every job and waits for all of them, returning results in
// submission order regardless of completion order — the Evaluator batch
// entry point. Individual job failures are reported per-result; the
// returned error is non-nil only when ctx ended before the batch
// drained.
func (e *Engine) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	return e.RunAll(ctx, jobs)
}

// RunAll is Run under its historical name.
func (e *Engine) RunAll(ctx context.Context, jobs []Job) ([]Result, error) {
	chans := make([]<-chan Result, len(jobs))
	for i, j := range jobs {
		chans[i] = e.Submit(ctx, j)
	}
	out := make([]Result, len(jobs))
	for i, ch := range chans {
		out[i] = <-ch
	}
	return out, ctx.Err()
}

func (e *Engine) worker(id int) {
	defer e.wg.Done()
	for {
		// Bias dispatch toward the queue: a two-way select with both
		// cases ready picks at random, so a worker racing Close could
		// take quit and abandon a job that was accepted before
		// shutdown began. Draining ready work first means quit is only
		// honoured when the queue is (momentarily) empty.
		select {
		case t := <-e.jobs:
			t.done <- e.execute(id, t)
			continue
		default:
		}
		select {
		case t := <-e.jobs:
			t.done <- e.execute(id, t)
		case <-e.quit:
			return
		}
	}
}

func (e *Engine) execute(worker int, t task) Result {
	r := Result{ID: t.job.ID, Worker: worker}
	if err := t.ctx.Err(); err != nil {
		e.canceled.Add(1)
		r.Err = err
		r.Worker = -1
		return r
	}
	ctx := t.ctx
	timeout := t.job.Timeout
	if timeout <= 0 {
		timeout = e.timeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	r.Value, r.Err = t.job.Fn(ctx)
	r.Elapsed = time.Since(start)
	// A deadline the engine itself imposed surfaces as the typed
	// ErrTimeout; a deadline or cancellation that was already on the
	// caller's context stays the caller's error.
	if timeout > 0 && errors.Is(r.Err, context.DeadlineExceeded) && t.ctx.Err() == nil {
		r.Err = fmt.Errorf("%w after %v: %w", ErrTimeout, timeout, r.Err)
	}
	if r.Err != nil {
		e.failed.Add(1)
	} else {
		e.completed.Add(1)
		if e.cache != nil && t.job.Spec != nil {
			e.cache.Store(t.ctx, t.job.Spec, r.Value)
		}
	}
	return r
}
