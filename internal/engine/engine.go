// Package engine is the concurrent batch-evaluation subsystem: a
// worker-pool job runner that fans the paper's §V evaluation matrix
// (workload × core model × technology) out across GOMAXPROCS workers,
// plus memoization caches for the two expensive pure computations of the
// pipeline — assembling ART-9 programs and gate-level analysis — so
// repeated evaluations are near-free.
//
// The engine is deliberately generic: a Job is a closure, so the higher
// layers (internal/bench, internal/core, cmd/art9-batch) can submit any
// unit of work without this package depending on them. Results come back
// in submission order, which is how the concurrent suite reproduces the
// serial tables byte for byte.
package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned for jobs submitted to a closed engine.
var ErrClosed = errors.New("engine: closed")

// Options configure an Engine.
type Options struct {
	// Workers is the pool size; 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// JobTimeout bounds each job's execution unless the job sets its
	// own Timeout; 0 means no per-job deadline.
	JobTimeout time.Duration
	// PrivateCaches gives the engine's Programs/Analyses fields fresh
	// caches instead of pointing them at the process-wide shared ones.
	// Only jobs that route work through those fields are isolated —
	// the bench/core helpers (AssembleCached, AnalyzeART9) always use
	// the shared caches. Useful for tests that assert exact hit/miss
	// counts on work they submit themselves.
	PrivateCaches bool
}

// Job is one unit of evaluation work.
type Job struct {
	// ID labels the job in its Result (e.g. the workload name).
	ID string
	// Timeout overrides the engine's JobTimeout for this job.
	Timeout time.Duration
	// Fn does the work. It should honour ctx cancellation where it
	// can; the engine always checks ctx before dispatching.
	Fn func(ctx context.Context) (any, error)
}

// Result is the outcome of one job.
type Result struct {
	ID      string
	Value   any
	Err     error
	Elapsed time.Duration
	// Worker is the pool index that executed the job (-1 if the job
	// was cancelled before dispatch).
	Worker int
}

// Stats are the engine's lifetime counters. Every submitted job ends in
// exactly one of Completed, Failed (its Fn ran and returned an error,
// including a per-job timeout the Fn honoured), Canceled (its context
// ended before the Fn ran), or Rejected (the engine closed first), so
// Submitted - (Completed+Failed+Canceled+Rejected) is the in-flight
// count.
type Stats struct {
	Workers   int
	Submitted uint64
	Completed uint64
	Failed    uint64
	Canceled  uint64
	Rejected  uint64
}

type task struct {
	ctx  context.Context
	job  Job
	done chan<- Result
}

// Engine is a fixed-size worker pool with submission-order result
// collection and shared memoization caches.
type Engine struct {
	workers int
	timeout time.Duration
	jobs    chan task
	quit    chan struct{}
	wg      sync.WaitGroup
	once    sync.Once

	submitted atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	canceled  atomic.Uint64
	rejected  atomic.Uint64

	// Programs memoizes assembled ART-9 programs by source text.
	Programs *ProgramCache
	// Analyses memoizes gate-level analyses by (netlist, technology).
	Analyses *AnalysisCache
}

// New starts a worker pool. Call Close when done with it.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		workers:  w,
		timeout:  opts.JobTimeout,
		jobs:     make(chan task),
		quit:     make(chan struct{}),
		Programs: SharedPrograms,
		Analyses: SharedAnalyses,
	}
	if opts.PrivateCaches {
		e.Programs = NewProgramCache()
		e.Analyses = NewAnalysisCache()
	}
	e.wg.Add(w)
	for i := 0; i < w; i++ {
		go e.worker(i)
	}
	return e
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// Close stops the workers. Jobs already executing finish; jobs still
// waiting for dispatch resolve with ErrClosed. Close is idempotent.
func (e *Engine) Close() {
	e.once.Do(func() {
		close(e.quit)
		e.wg.Wait()
	})
}

// Stats returns a snapshot of the lifetime counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Workers:   e.workers,
		Submitted: e.submitted.Load(),
		Completed: e.completed.Load(),
		Failed:    e.failed.Load(),
		Canceled:  e.canceled.Load(),
		Rejected:  e.rejected.Load(),
	}
}

// Submit enqueues one job and returns a channel that will receive its
// Result exactly once. Cancelling ctx before a worker picks the job up
// resolves it immediately with ctx's error.
func (e *Engine) Submit(ctx context.Context, j Job) <-chan Result {
	e.submitted.Add(1)
	done := make(chan Result, 1)
	go func() {
		select {
		case e.jobs <- task{ctx: ctx, job: j, done: done}:
		case <-ctx.Done():
			e.canceled.Add(1)
			done <- Result{ID: j.ID, Err: ctx.Err(), Worker: -1}
		case <-e.quit:
			e.rejected.Add(1)
			done <- Result{ID: j.ID, Err: ErrClosed, Worker: -1}
		}
	}()
	return done
}

// RunAll submits every job and waits for all of them, returning results
// in submission order regardless of completion order. Individual job
// failures are reported per-result; the returned error is non-nil only
// when ctx ended before the batch drained.
func (e *Engine) RunAll(ctx context.Context, jobs []Job) ([]Result, error) {
	chans := make([]<-chan Result, len(jobs))
	for i, j := range jobs {
		chans[i] = e.Submit(ctx, j)
	}
	out := make([]Result, len(jobs))
	for i, ch := range chans {
		out[i] = <-ch
	}
	return out, ctx.Err()
}

func (e *Engine) worker(id int) {
	defer e.wg.Done()
	for {
		select {
		case <-e.quit:
			return
		case t := <-e.jobs:
			t.done <- e.execute(id, t)
		}
	}
}

func (e *Engine) execute(worker int, t task) Result {
	r := Result{ID: t.job.ID, Worker: worker}
	if err := t.ctx.Err(); err != nil {
		e.canceled.Add(1)
		r.Err = err
		r.Worker = -1
		return r
	}
	ctx := t.ctx
	timeout := t.job.Timeout
	if timeout <= 0 {
		timeout = e.timeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	r.Value, r.Err = t.job.Fn(ctx)
	r.Elapsed = time.Since(start)
	if r.Err != nil {
		e.failed.Add(1)
	} else {
		e.completed.Add(1)
	}
	return r
}
