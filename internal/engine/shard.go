package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ShardSet partitions batches round-robin across n backends, each any
// Evaluator — a local worker pool, a remote art9-serve peer
// (internal/remote.Client), or another ShardSet, so shards compose
// recursively. It is the one seam of the scaling story: the partition
// and merge logic is identical whether a shard is a local pool or a
// remote machine. Note the bench/core helpers (AssembleCached,
// AnalyzeART9) always use the process-wide shared caches regardless of
// sharding.
type ShardSet struct {
	backends []Evaluator
	// next is the persistent round-robin cursor. Each batch starts at
	// the next shard rather than shard 0, so a resident server issuing
	// many small batches (single-job /v1/eval requests, short suites)
	// spreads them across the set instead of piling onto shard 0.
	next atomic.Uint64
}

// NewShardSet starts n local engines (n < 1 selects 1), each configured
// from opts with PrivateCaches forced on so the shards stay independent.
// The per-shard pool size is opts.Workers. Call Close when done with it.
func NewShardSet(n int, opts Options) *ShardSet {
	if n < 1 {
		n = 1
	}
	opts.PrivateCaches = true
	backends := make([]Evaluator, n)
	for i := range backends {
		backends[i] = New(opts)
	}
	return NewShardSetOf(backends...)
}

// NewShardSetOf builds a set over caller-supplied backends — local
// engines, remote clients, other shard sets, in any mix. The set takes
// ownership: Close closes every backend. An empty call selects one
// default local engine.
func NewShardSetOf(backends ...Evaluator) *ShardSet {
	if len(backends) == 0 {
		backends = []Evaluator{New(Options{PrivateCaches: true})}
	}
	return &ShardSet{backends: backends}
}

// Shards returns the number of backends in the set.
func (s *ShardSet) Shards() int { return len(s.backends) }

// Size is Shards under the Composite interface's name.
func (s *ShardSet) Size() int { return len(s.backends) }

// Backend returns shard i, for callers that need direct access (tests,
// stats drill-down).
func (s *ShardSet) Backend(i int) Evaluator { return s.backends[i] }

// Probe answers the Prober liveness check for the set: alive while at
// least one backend is, since round-robin still lands jobs on the live
// shards. Backends that do not implement Prober count as alive (their
// health is only observable through job results); when every backend
// is probeable and down, the joined errors are returned.
func (s *ShardSet) Probe(ctx context.Context) error {
	var errs []error
	for _, b := range s.backends {
		p, ok := b.(Prober)
		if !ok {
			return nil
		}
		err := p.Probe(ctx)
		if err == nil {
			return nil
		}
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// Capacity answers the CapacityReporter query from the set's local
// counters (remote shards contribute the work submitted through them,
// not a peer scrape), keeping the query I/O-free.
func (s *ShardSet) Capacity(context.Context) (Capacity, error) {
	return LocalCapacity(s), nil
}

// Close stops every backend, concurrently, and joins their errors. Each
// local shard's Close drains its own queue, so every Submit channel
// across the set resolves.
func (s *ShardSet) Close() error {
	errs := make([]error, len(s.backends))
	var wg sync.WaitGroup
	for i, b := range s.backends {
		wg.Add(1)
		go func(i int, b Evaluator) {
			defer wg.Done()
			errs[i] = b.Close()
		}(i, b)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Stats sums the per-backend counters into one set-wide snapshot — the
// Evaluator view of the set.
func (s *ShardSet) Stats() Stats {
	var t Stats
	for _, st := range s.ShardStats() {
		t = t.Add(st)
	}
	return t
}

// ShardStats returns one snapshot per backend, in shard order. The
// backends are queried concurrently: a remote shard's Stats is a
// network scrape, so a set with slow peers pays the slowest one, not
// the sum.
func (s *ShardSet) ShardStats() []Stats { return BackendStats(s) }

// cursor reserves n consecutive round-robin slots and returns the first.
func (s *ShardSet) cursor(n int) uint64 {
	return s.next.Add(uint64(n)) - uint64(n)
}

// split partitions jobs round-robin from the persistent cursor: job i of
// this batch goes to shard (cursor+i) mod n, which balances homogeneous
// batches of any size — including many one-job batches — without
// inspecting job contents. The second slice maps each part entry back to
// its index in jobs.
func (s *ShardSet) split(jobs []Job) ([][]Job, [][]int) {
	parts := make([][]Job, len(s.backends))
	index := make([][]int, len(s.backends))
	start := s.cursor(len(jobs))
	for i, j := range jobs {
		k := (start + uint64(i)) % uint64(len(s.backends))
		parts[k] = append(parts[k], j)
		index[k] = append(index[k], i)
	}
	return parts, index
}

// Stream fans jobs out round-robin across the backends and merges their
// completion-order streams into one channel, closed after the last
// backend's stream drains. Ordering across shards is whatever completion
// interleaving produces — the same contract as Engine.Stream.
func (s *ShardSet) Stream(ctx context.Context, jobs []Job) <-chan Result {
	out := make(chan Result, len(jobs))
	parts, _ := s.split(jobs)
	var wg sync.WaitGroup
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(ch <-chan Result) {
			defer wg.Done()
			for r := range ch {
				out <- r
			}
		}(s.backends[i].Stream(ctx, part))
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// Run fans jobs out round-robin, runs every part on its backend
// concurrently, and reassembles the results in submission order —
// Engine.Run semantics over the set.
func (s *ShardSet) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	parts, index := s.split(jobs)
	out := make([]Result, len(jobs))
	var wg sync.WaitGroup
	for k := range parts {
		if len(parts[k]) == 0 {
			continue
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			rs, _ := s.backends[k].Run(ctx, parts[k])
			for i, idx := range index[k] {
				if i < len(rs) {
					out[idx] = rs[i]
					continue
				}
				// A conforming backend returns one result per job;
				// guard against a short slice so no slot stays zero.
				out[idx] = Result{ID: parts[k][i].ID, Worker: -1,
					Err: fmt.Errorf("engine: shard %d returned %d results for %d jobs", k, len(rs), len(parts[k]))}
			}
		}(k)
	}
	wg.Wait()
	return out, ctx.Err()
}

// RunAll is Run under its historical name.
func (s *ShardSet) RunAll(ctx context.Context, jobs []Job) ([]Result, error) {
	return s.Run(ctx, jobs)
}
