package engine

import (
	"context"
	"sync"
	"sync/atomic"
)

// ShardSet partitions batches across n independent engines — separate
// worker pools, separate dispatch queues, and (for jobs that route work
// through the engines' cache fields) separate caches. It is the
// single-process rehearsal of multi-machine sharding: the partition and
// merge logic is identical whether a shard is a local pool or a remote
// peer, so scaling work past one host can reuse this seam. Note the
// bench/core helpers (AssembleCached, AnalyzeART9) always use the
// process-wide shared caches regardless of sharding.
type ShardSet struct {
	engines []*Engine
	// next is the persistent round-robin cursor. Each batch starts at
	// the next shard rather than shard 0, so a resident server issuing
	// many small batches (single-job /v1/eval requests, short suites)
	// spreads them across the set instead of piling onto shard 0.
	next atomic.Uint64
}

// NewShardSet starts n engines (n < 1 selects 1), each configured from
// opts with PrivateCaches forced on so the shards stay independent. The
// per-shard pool size is opts.Workers. Call Close when done with it.
func NewShardSet(n int, opts Options) *ShardSet {
	if n < 1 {
		n = 1
	}
	opts.PrivateCaches = true
	s := &ShardSet{engines: make([]*Engine, n)}
	for i := range s.engines {
		s.engines[i] = New(opts)
	}
	return s
}

// Shards returns the number of engines in the set.
func (s *ShardSet) Shards() int { return len(s.engines) }

// Engine returns shard i, for callers that need direct access (tests,
// stats drill-down).
func (s *ShardSet) Engine(i int) *Engine { return s.engines[i] }

// Close stops every shard, concurrently. Each shard's Close drains its
// own queue, so every Submit channel across the set resolves.
func (s *ShardSet) Close() {
	var wg sync.WaitGroup
	for _, e := range s.engines {
		wg.Add(1)
		go func(e *Engine) {
			defer wg.Done()
			e.Close()
		}(e)
	}
	wg.Wait()
}

// Stats returns one snapshot per shard, in shard order.
func (s *ShardSet) Stats() []Stats {
	out := make([]Stats, len(s.engines))
	for i, e := range s.engines {
		out[i] = e.Stats()
	}
	return out
}

// TotalStats sums the per-shard counters into one set-wide snapshot.
func (s *ShardSet) TotalStats() Stats {
	var t Stats
	for _, e := range s.engines {
		t = t.Add(e.Stats())
	}
	return t
}

// cursor reserves n consecutive round-robin slots and returns the first.
func (s *ShardSet) cursor(n int) uint64 {
	return s.next.Add(uint64(n)) - uint64(n)
}

// split partitions jobs round-robin from the persistent cursor: job i of
// this batch goes to shard (cursor+i) mod n, which balances homogeneous
// batches of any size — including many one-job batches — without
// inspecting job contents.
func (s *ShardSet) split(jobs []Job) [][]Job {
	parts := make([][]Job, len(s.engines))
	start := s.cursor(len(jobs))
	for i, j := range jobs {
		k := (start + uint64(i)) % uint64(len(s.engines))
		parts[k] = append(parts[k], j)
	}
	return parts
}

// Stream fans jobs out round-robin across the shards and merges their
// completion-order streams into one channel, closed after the last
// shard's stream drains. Ordering across shards is whatever completion
// interleaving produces — the same contract as Engine.Stream.
func (s *ShardSet) Stream(ctx context.Context, jobs []Job) <-chan Result {
	out := make(chan Result, len(jobs))
	var wg sync.WaitGroup
	for i, part := range s.split(jobs) {
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(ch <-chan Result) {
			defer wg.Done()
			for r := range ch {
				out <- r
			}
		}(s.engines[i].Stream(ctx, part))
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// RunAll fans jobs out round-robin and waits for all of them, returning
// results in submission order — Engine.RunAll semantics over the set.
func (s *ShardSet) RunAll(ctx context.Context, jobs []Job) ([]Result, error) {
	chans := make([]<-chan Result, len(jobs))
	start := s.cursor(len(jobs))
	for i, j := range jobs {
		chans[i] = s.engines[(start+uint64(i))%uint64(len(s.engines))].Submit(ctx, j)
	}
	out := make([]Result, len(jobs))
	for i, ch := range chans {
		out[i] = <-ch
	}
	return out, ctx.Err()
}
