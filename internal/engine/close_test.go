package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestCloseResolvesQueuedJobs is the regression test for the shutdown
// contract: Close with jobs buffered in the dispatch queue (and more
// parked in pending Submit sends) must resolve every Submit channel —
// each job either executed or rejected with ErrClosed, never stranded.
// The pre-fix engine could strand a queued task when a worker's two-way
// select took quit over a ready job, leaving its done channel forever
// unresolved and RunAll blocked. The race window opens only when quit
// closes while the queue is non-empty, so the scenario is staged — pin
// the single worker, fill the queue, begin Close, then let the worker
// go — and repeated, since the pre-fix select loses it with probability
// 1/2 per ready job.
func TestCloseResolvesQueuedJobs(t *testing.T) {
	for round := 0; round < 8; round++ {
		const queued = 24
		e := New(Options{Workers: 1, Queue: 4, PrivateCaches: true})

		started := make(chan struct{})
		release := make(chan struct{})
		pinned := e.Submit(context.Background(), Job{ID: "pinned", Fn: func(context.Context) (any, error) {
			close(started)
			<-release
			return "pinned", nil
		}})
		<-started // the only worker is mid-job; everything below queues

		chans := make([]<-chan Result, queued)
		for i := range chans {
			chans[i] = e.Submit(context.Background(), Job{
				ID: fmt.Sprintf("queued-%d", i),
				Fn: func(context.Context) (any, error) { return "ran", nil },
			})
		}

		closed := make(chan struct{})
		go func() {
			e.Close()
			close(closed)
		}()
		// Let Close reach its shutdown signal while the worker is still
		// pinned, so the worker's next dispatch select races it.
		time.Sleep(10 * time.Millisecond)
		close(release)

		if r := <-pinned; r.Err != nil {
			t.Fatalf("pinned job: %v, want success (already executing when Close began)", r.Err)
		}
		var ran, rejected int
		for i, ch := range chans {
			select {
			case r := <-ch:
				switch {
				case r.Err == nil:
					ran++
				case errors.Is(r.Err, ErrClosed):
					rejected++
				default:
					t.Errorf("queued-%d: error %v, want nil or ErrClosed", i, r.Err)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("round %d, queued-%d: Submit channel never resolved — Close stranded it", round, i)
			}
		}
		select {
		case <-closed:
		case <-time.After(5 * time.Second):
			t.Fatal("Close never returned")
		}
		if ran+rejected != queued {
			t.Errorf("ran %d + rejected %d != %d queued", ran, rejected, queued)
		}
		s := e.Stats()
		if s.Submitted != s.Completed+s.Failed+s.Canceled+s.Rejected {
			t.Errorf("stats %+v do not balance after Close", s)
		}
		if s.Rejected != uint64(rejected) {
			t.Errorf("stats %+v, want %d rejected", s, rejected)
		}
	}
}

// TestCloseRejectsWithoutWaiters drives the same shutdown race without
// anyone reading the result channels first: Close itself must not block
// on unread done channels (they are buffered), and reads afterwards must
// still see every result.
func TestCloseRejectsWithoutWaiters(t *testing.T) {
	e := New(Options{Workers: 2, Queue: 2, PrivateCaches: true})
	var chans []<-chan Result
	for i := 0; i < 16; i++ {
		chans = append(chans, e.Submit(context.Background(), Job{
			ID: fmt.Sprintf("j%d", i),
			Fn: func(context.Context) (any, error) { return nil, nil },
		}))
	}
	done := make(chan struct{})
	go func() {
		e.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked with unread result channels")
	}
	for i, ch := range chans {
		select {
		case r := <-ch:
			if r.Err != nil && !errors.Is(r.Err, ErrClosed) {
				t.Errorf("job %d: error %v, want nil or ErrClosed", i, r.Err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("job %d never resolved", i)
		}
	}
}
