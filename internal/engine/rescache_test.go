package engine

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeResultCache is a map-backed ResultCache keyed by the job's Spec
// (a plain string in these tests), counting its traffic.
type fakeResultCache struct {
	mu      sync.Mutex
	m       map[string]any
	lookups int
	hits    int
	stores  int
}

func newFakeResultCache() *fakeResultCache {
	return &fakeResultCache{m: map[string]any{}}
}

func (f *fakeResultCache) Lookup(_ context.Context, spec any) (any, bool) {
	key, ok := spec.(string)
	if !ok {
		return nil, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lookups++
	v, ok := f.m[key]
	if ok {
		f.hits++
	}
	return v, ok
}

func (f *fakeResultCache) Store(_ context.Context, spec any, value any) {
	key, ok := spec.(string)
	if !ok {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stores++
	f.m[key] = value
}

func cachedJobs(n int, ran *atomic.Int64) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		id := string(rune('a' + i))
		jobs[i] = Job{
			ID:   id,
			Spec: "spec-" + id,
			Fn: func(context.Context) (any, error) {
				ran.Add(1)
				return "value-" + id, nil
			},
		}
	}
	return jobs
}

func TestEngineResultCacheShortCircuits(t *testing.T) {
	cache := newFakeResultCache()
	e := New(Options{Workers: 2, PrivateCaches: true, Cache: cache})
	defer e.Close()
	if e.ResultCache() != ResultCache(cache) {
		t.Fatal("ResultCache accessor does not return the configured cache")
	}

	var ran atomic.Int64
	jobs := cachedJobs(3, &ran)
	ctx := context.Background()

	// Cold run: every job computes and is stored.
	rs, err := e.Run(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 3 {
		t.Fatalf("cold run executed %d jobs, want 3", got)
	}
	if cache.stores != 3 {
		t.Fatalf("stores = %d, want 3", cache.stores)
	}

	// Warm run: every job answers from the cache, no Fn runs, and the
	// replayed value matches the computed one.
	warm, err := e.Run(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 3 {
		t.Fatalf("warm run executed %d extra jobs, want 0", got-3)
	}
	for i := range warm {
		if warm[i].Err != nil {
			t.Fatalf("warm job %s failed: %v", warm[i].ID, warm[i].Err)
		}
		if warm[i].Value != rs[i].Value {
			t.Fatalf("warm job %s value = %v, want %v", warm[i].ID, warm[i].Value, rs[i].Value)
		}
		if warm[i].Worker != -1 {
			t.Fatalf("warm job %s ran on worker %d, want -1 (cache hit)", warm[i].ID, warm[i].Worker)
		}
	}
	// Hits count as completed: the accounting invariant holds.
	if st := e.Stats(); st.Submitted != 6 || st.Completed != 6 {
		t.Fatalf("stats %+v, want 6 submitted / 6 completed", st)
	}
}

func TestEngineResultCacheSkipsSpeclessAndFailedJobs(t *testing.T) {
	cache := newFakeResultCache()
	e := New(Options{Workers: 1, PrivateCaches: true, Cache: cache})
	defer e.Close()

	rs, _ := e.Run(context.Background(), []Job{
		{ID: "nospec", Fn: func(context.Context) (any, error) { return 1, nil }},
		{ID: "fails", Spec: "spec-fails", Fn: func(context.Context) (any, error) {
			return nil, context.DeadlineExceeded
		}},
	})
	if rs[0].Err != nil {
		t.Fatal(rs[0].Err)
	}
	if cache.lookups != 1 {
		t.Fatalf("lookups = %d, want 1 (spec-less jobs bypass the cache)", cache.lookups)
	}
	if cache.stores != 0 {
		t.Fatalf("stores = %d, want 0 (failures are never cached)", cache.stores)
	}
}

func TestBalancerResultCacheShortCircuits(t *testing.T) {
	for _, chunk := range []int{0, 4} {
		cache := newFakeResultCache()
		b := NewBalancer(BalancerOptions{Cache: cache, Chunk: chunk, HealthInterval: -1},
			New(Options{Workers: 2, PrivateCaches: true}))

		var ran atomic.Int64
		jobs := cachedJobs(6, &ran)
		ctx := context.Background()
		if _, err := b.Run(ctx, jobs); err != nil {
			t.Fatal(err)
		}
		if got := ran.Load(); got != 6 {
			t.Fatalf("chunk=%d: cold run executed %d jobs, want 6", chunk, got)
		}
		warm, err := b.Run(ctx, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if got := ran.Load(); got != 6 {
			t.Fatalf("chunk=%d: warm run executed %d extra jobs, want 0", chunk, got-6)
		}
		for _, r := range warm {
			if r.Err != nil || r.Worker != -1 {
				t.Fatalf("chunk=%d: warm result %+v, want cache hit", chunk, r)
			}
		}
		if hits := b.CacheHits(); hits != 6 {
			t.Fatalf("chunk=%d: CacheHits = %d, want 6", chunk, hits)
		}
		if b.ResultCache() == nil {
			t.Fatalf("chunk=%d: ResultCache accessor returned nil", chunk)
		}
		b.Close()
	}
}

func TestAutoscalerResultCacheShortCircuits(t *testing.T) {
	cache := newFakeResultCache()
	a := NewAutoscaler(AutoscalerOptions{
		Min: 1, Max: 1, Interval: -1, Cache: cache,
		Engine: Options{Workers: 2},
	})
	defer a.Close()

	var ran atomic.Int64
	jobs := cachedJobs(4, &ran)
	ctx := context.Background()
	if _, err := a.Run(ctx, jobs); err != nil {
		t.Fatal(err)
	}
	warm, err := a.Run(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 4 {
		t.Fatalf("warm run executed %d extra jobs, want 0", got-4)
	}
	for _, r := range warm {
		if r.Err != nil || r.Worker != -1 {
			t.Fatalf("warm result %+v, want cache hit", r)
		}
	}
	if hits := a.CacheHits(); hits != 4 {
		t.Fatalf("CacheHits = %d, want 4", hits)
	}
}
