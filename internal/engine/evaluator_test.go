package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// fakeBackend is a minimal non-Engine Evaluator: it resolves every job
// by calling its Fn inline and tags the result with its name, so tests
// can tell which backend a ShardSet routed each job to.
type fakeBackend struct {
	name  string
	stats Stats
}

func (f *fakeBackend) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	out := make([]Result, len(jobs))
	for i, j := range jobs {
		v, err := j.Fn(ctx)
		out[i] = Result{ID: j.ID, Value: fmt.Sprintf("%s:%v", f.name, v), Err: err}
		f.stats.Submitted++
		f.stats.Completed++
	}
	return out, ctx.Err()
}

func (f *fakeBackend) Stream(ctx context.Context, jobs []Job) <-chan Result {
	out := make(chan Result, len(jobs))
	rs, _ := f.Run(ctx, jobs)
	for _, r := range rs {
		out <- r
	}
	close(out)
	return out
}

func (f *fakeBackend) Stats() Stats { return f.stats }
func (f *fakeBackend) Close() error { return nil }

// TestShardSetOfMixedBackends composes a local Engine with a non-Engine
// backend and checks submission-order reassembly, stream merging, and
// aggregate stats across the heterogeneous set — the property that lets
// a shard be a remote peer.
func TestShardSetOfMixedBackends(t *testing.T) {
	local := New(Options{Workers: 2, PrivateCaches: true})
	fake := &fakeBackend{name: "peer"}
	s := NewShardSetOf(local, fake)
	defer s.Close()

	if s.Shards() != 2 {
		t.Fatalf("Shards() = %d, want 2", s.Shards())
	}
	if s.Backend(1) != Evaluator(fake) {
		t.Error("Backend(1) is not the fake peer")
	}
	if _, ok := s.Backend(1).(*Engine); ok {
		t.Error("Backend(1) should not be a local *Engine")
	}
	if e, ok := s.Backend(0).(*Engine); !ok || e != local {
		t.Error("Backend(0) should be the local engine")
	}

	jobs := make([]Job, 10)
	for i := range jobs {
		i := i
		jobs[i] = Job{ID: fmt.Sprintf("job-%d", i),
			Fn: func(context.Context) (any, error) { return i, nil }}
	}
	results, err := s.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	var viaFake int
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %s: %v", r.ID, r.Err)
		}
		if r.ID != jobs[i].ID {
			t.Errorf("result %d is %s, want %s (submission order)", i, r.ID, jobs[i].ID)
		}
		if sv, ok := r.Value.(string); ok && len(sv) > 5 && sv[:5] == "peer:" {
			viaFake++
		}
	}
	if viaFake != 5 {
		t.Errorf("fake backend ran %d of 10 jobs, want 5 (round-robin)", viaFake)
	}

	seen := 0
	for r := range s.Stream(context.Background(), jobs) {
		if r.Err != nil {
			t.Errorf("stream job %s: %v", r.ID, r.Err)
		}
		seen++
	}
	if seen != len(jobs) {
		t.Errorf("stream yielded %d results, want %d", seen, len(jobs))
	}

	if tot := s.Stats(); tot.Submitted != local.Stats().Submitted+fake.stats.Submitted {
		t.Errorf("aggregate Stats %+v do not sum the backends", tot)
	}
}

// TestShardSetComposesRecursively nests a ShardSet inside a ShardSet and
// checks jobs still resolve with submission-order results.
func TestShardSetComposesRecursively(t *testing.T) {
	inner := NewShardSet(2, Options{Workers: 1})
	outer := NewShardSetOf(inner, New(Options{Workers: 1, PrivateCaches: true}))
	defer outer.Close()

	jobs := make([]Job, 8)
	for i := range jobs {
		i := i
		jobs[i] = Job{ID: fmt.Sprintf("r-%d", i),
			Fn: func(context.Context) (any, error) { return i, nil }}
	}
	results, err := outer.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil || r.Value.(int) != i {
			t.Errorf("result %d = %+v, want value %d", i, r, i)
		}
	}
	if tot := outer.Stats(); tot.Submitted != 8 {
		t.Errorf("aggregate Stats %+v, want 8 submitted", tot)
	}
}

// TestJobTimeoutIsTyped pins the typed error surface: an engine-imposed
// per-job deadline surfaces as ErrTimeout (still unwrappable to
// context.DeadlineExceeded), while a cancellation on the caller's own
// context stays the caller's error.
func TestJobTimeoutIsTyped(t *testing.T) {
	e := New(Options{Workers: 1, JobTimeout: 5 * time.Millisecond, PrivateCaches: true})
	defer e.Close()

	r := <-e.Submit(context.Background(), Job{ID: "slow",
		Fn: func(ctx context.Context) (any, error) { <-ctx.Done(); return nil, ctx.Err() }})
	if !errors.Is(r.Err, ErrTimeout) {
		t.Errorf("engine-deadline error %v, want ErrTimeout", r.Err)
	}
	if !errors.Is(r.Err, context.DeadlineExceeded) {
		t.Errorf("error %v no longer unwraps to DeadlineExceeded", r.Err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	ch := e.Submit(ctx, Job{ID: "caller-cancel",
		Fn: func(ctx context.Context) (any, error) { close(started); <-ctx.Done(); return nil, ctx.Err() }})
	<-started
	cancel()
	if r := <-ch; errors.Is(r.Err, ErrTimeout) || !errors.Is(r.Err, context.Canceled) {
		t.Errorf("caller-cancel error %v, want context.Canceled without ErrTimeout", r.Err)
	}
}
