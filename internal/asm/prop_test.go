package asm

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/ternary"
)

// Property: any valid instruction stream survives the
// render → assemble → encode → disassemble → reassemble cycle intact.
func TestAssembleDisassembleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		// Build a random but label-free instruction stream (numeric
		// branch offsets kept in range and pointing anywhere — the
		// assembler does not execute them).
		n := rng.Intn(40) + 5
		var src strings.Builder
		for i := 0; i < n; i++ {
			op := isa.Op(rng.Intn(isa.NumOps))
			in := isa.Inst{Op: op}
			if op.HasTa() {
				in.Ta = isa.Reg(rng.Intn(isa.NumRegs))
			}
			if op.HasTb() {
				in.Tb = isa.Reg(rng.Intn(isa.NumRegs))
			}
			if k := op.ImmTrits(); k > 0 {
				max := ternary.MaxForTrits(k)
				in.Imm = rng.Intn(2*max+1) - max
			}
			if op.IsBranch() {
				in.B = ternary.Trit(rng.Intn(3) - 1)
			}
			src.WriteString(in.String())
			src.WriteByte('\n')
		}
		p1, err := Assemble(src.String())
		if err != nil {
			t.Fatalf("trial %d: assemble: %v\n%s", trial, err, src.String())
		}
		// Disassemble and reassemble.
		var back strings.Builder
		for _, l := range strings.Split(strings.TrimSpace(Disassemble(p1.Words)), "\n") {
			f := strings.Fields(l)
			back.WriteString(strings.Join(f[2:], " ") + "\n")
		}
		p2, err := Assemble(back.String())
		if err != nil {
			t.Fatalf("trial %d: reassemble: %v\n%s", trial, err, back.String())
		}
		if len(p1.Words) != len(p2.Words) {
			t.Fatalf("trial %d: length drift %d -> %d", trial, len(p1.Words), len(p2.Words))
		}
		for i := range p1.Words {
			if p1.Words[i] != p2.Words[i] {
				t.Fatalf("trial %d: word %d drift", trial, i)
			}
		}
	}
}

// Property: label-based branches always land exactly on their targets, at
// any distance (exercising all three relaxation levels).
func TestBranchTargetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, gap := range []int{1, 5, 39, 40, 41, 80, 120, 121, 122, 200, 400} {
		var src strings.Builder
		src.WriteString("\tBEQ T1, 0, target\n")
		for i := 0; i < gap; i++ {
			// Filler that never branches.
			fmt.Fprintf(&src, "\tADDI T%d, %d\n", rng.Intn(7)+1, rng.Intn(3))
		}
		src.WriteString("target:\tHALT\n")
		p, err := Assemble(src.String())
		if err != nil {
			t.Fatalf("gap %d: %v", gap, err)
		}
		target := p.Symbols["target"]
		// Simulate just the branch resolution: walk the first emitted
		// instruction group manually.
		in := p.Text[0]
		switch in.Op {
		case isa.BEQ:
			if 0+in.Imm != target {
				t.Errorf("gap %d: short branch lands at %d, want %d", gap, in.Imm, target)
			}
		case isa.BNE: // inverted forms
			// Level 1: BNE +2; JAL off. Level 2: BNE +4; LUI; LI; JALR.
			next := p.Text[1]
			if next.Op == isa.JAL {
				if 1+next.Imm != target {
					t.Errorf("gap %d: near branch lands at %d, want %d", gap, 1+next.Imm, target)
				}
			} else if next.Op == isa.LUI {
				w := ternary.Word{}.SetField(5, 8, next.Imm)
				low := ternary.Word{}.SetField(0, 4, p.Text[2].Imm)
				for k := 0; k < 5; k++ {
					w[k] = low[k]
				}
				if w.Int() != target {
					t.Errorf("gap %d: far branch lands at %d, want %d", gap, w.Int(), target)
				}
			} else {
				t.Errorf("gap %d: unexpected relaxation shape %v", gap, next)
			}
		default:
			t.Errorf("gap %d: unexpected first op %v", gap, in)
		}
	}
}

// Property: program text cells equal 9 × instruction count for arbitrary
// programs (the Fig. 5 accounting).
func TestTextCellsProperty(t *testing.T) {
	for _, n := range []int{1, 7, 50, 333} {
		var src strings.Builder
		for i := 0; i < n; i++ {
			src.WriteString("NOP\n")
		}
		p, err := Assemble(src.String())
		if err != nil {
			t.Fatal(err)
		}
		if p.TextCells() != 9*n {
			t.Errorf("n=%d: cells %d, want %d", n, p.TextCells(), 9*n)
		}
	}
}

func TestScratchRegOption(t *testing.T) {
	// Far branches with a custom scratch register must use it.
	var src strings.Builder
	src.WriteString("BEQ T1, 0, far\n")
	for i := 0; i < 300; i++ {
		src.WriteString("NOP\n")
	}
	src.WriteString("far: HALT\n")
	p, err := AssembleOpts(src.String(), Options{ScratchReg: 5})
	if err != nil {
		t.Fatal(err)
	}
	if p.Text[1].Op != isa.LUI || p.Text[1].Ta != 5 {
		t.Errorf("custom scratch not used: %v", p.Text[1])
	}
}
