package asm

import (
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/ternary"
)

// emit runs the second pass: encode every item at its assigned address.
func (a *assembler) emit() (*Program, error) {
	p := &Program{
		Data:    map[int]ternary.Word{},
		Symbols: map[string]int{},
	}
	for n, v := range a.equ {
		p.Symbols[n] = v
	}
	for n, v := range a.labels {
		p.Symbols[n] = v
	}
	for _, it := range a.items {
		switch {
		case it.sec == secData:
			if err := a.emitData(p, it); err != nil {
				a.errs = append(a.errs, err)
			}
		default:
			if err := a.emitText(p, it); err != nil {
				a.errs = append(a.errs, err)
			}
		}
	}
	if err := a.errs.or(); err != nil {
		return nil, err
	}
	return p, nil
}

// emitData places .word/.space/.org contents into the TDM image.
func (a *assembler) emitData(p *Program, it *item) error {
	st := it.stmt
	switch st.kind {
	case stWord:
		for k, v := range st.values {
			val, err := a.evalValue(v, st.line)
			if err != nil {
				return err
			}
			p.Data[it.addr+k] = ternary.FromInt(val)
		}
	case stSpace, stOrg:
		// Reserved space is implicitly zero; nothing to record.
	case stInst:
		return fmt.Errorf("line %d: instruction %q in .data section", st.line, st.mnemonic)
	}
	return nil
}

// appendInst validates, encodes and appends one instruction.
func (a *assembler) appendInst(p *Program, line int, in isa.Inst) error {
	w, err := isa.Encode(in)
	if err != nil {
		return fmt.Errorf("line %d: %v", line, err)
	}
	p.Text = append(p.Text, in)
	p.Words = append(p.Words, w)
	p.Lines = append(p.Lines, line)
	return nil
}

// emitText encodes a text-section item at its laid-out address.
func (a *assembler) emitText(p *Program, it *item) error {
	st := it.stmt
	if len(p.Text) != it.addr && st.kind != stOrg && st.kind != stSpace {
		// Interior misalignment would be an assembler bug; surface loudly.
		if len(p.Text) > it.addr {
			return fmt.Errorf("line %d: internal: text overlap at %d", st.line, it.addr)
		}
	}
	switch st.kind {
	case stOrg, stSpace:
		for len(p.Text) < it.addr+it.size {
			if err := a.appendInst(p, st.line, isa.NOP()); err != nil {
				return err
			}
		}
		return nil
	case stWord:
		return fmt.Errorf("line %d: .word in .text section (use .data)", st.line)
	}

	m, args := st.mnemonic, st.args
	argN := func(want int) error {
		if len(args) != want {
			return fmt.Errorf("line %d: %s wants %d operands, got %d", st.line, m, want, len(args))
		}
		return nil
	}
	reg := func(s string) (isa.Reg, error) {
		r, err := isa.ParseReg(s)
		if err != nil {
			return 0, fmt.Errorf("line %d: %v", st.line, err)
		}
		return r, nil
	}
	imm := func(s string) (int, error) {
		v, err := a.evalValue(s, st.line)
		if err != nil {
			return 0, err
		}
		return v, nil
	}

	switch m {
	case "NOP":
		if err := argN(0); err != nil {
			return err
		}
		return a.appendInst(p, st.line, isa.NOP())

	case "HALT":
		// Jump-to-self; the simulator recognises it as program exit.
		if err := argN(0); err != nil {
			return err
		}
		return a.appendInst(p, st.line, isa.Inst{Op: isa.JAL, Ta: a.opts.ScratchReg, Imm: 0})

	case "LDI", "LDA":
		if err := argN(2); err != nil {
			return err
		}
		ta, err := reg(args[0])
		if err != nil {
			return err
		}
		v, err := imm(args[1])
		if err != nil {
			return err
		}
		if !ternary.FitsTrits(v, 9) {
			return fmt.Errorf("line %d: %s: value %d exceeds 9 trits", st.line, m, v)
		}
		hi, lo := splitConst(v)
		if err := a.appendInst(p, st.line, isa.Inst{Op: isa.LUI, Ta: ta, Imm: hi}); err != nil {
			return err
		}
		if lo != 0 || m == "LDA" {
			return a.appendInst(p, st.line, isa.Inst{Op: isa.LI, Ta: ta, Imm: lo})
		}
		return nil

	case "BEQ", "BNE":
		if err := argN(3); err != nil {
			return err
		}
		tb, err := reg(args[0])
		if err != nil {
			return err
		}
		bv, err := imm(args[1])
		if err != nil {
			return err
		}
		if bv < -1 || bv > 1 {
			return fmt.Errorf("line %d: %s condition trit %d out of range", st.line, m, bv)
		}
		op := isa.BEQ
		if m == "BNE" {
			op = isa.BNE
		}
		var off int
		if a.isSymbol(args[2]) {
			target, ok := a.labels[args[2]]
			if !ok {
				return fmt.Errorf("line %d: undefined label %q", st.line, args[2])
			}
			off = target - it.addr
		} else {
			if off, err = imm(args[2]); err != nil {
				return err
			}
			if !ternary.FitsTrits(off, 4) {
				return fmt.Errorf("line %d: branch offset %d exceeds 4 trits", st.line, off)
			}
		}
		return a.emitBranch(p, st.line, it, op, tb, ternary.Trit(bv), off)

	case "JAL":
		if err := argN(2); err != nil {
			return err
		}
		ta, err := reg(args[0])
		if err != nil {
			return err
		}
		var off int
		if a.isSymbol(args[1]) {
			target, ok := a.labels[args[1]]
			if !ok {
				return fmt.Errorf("line %d: undefined label %q", st.line, args[1])
			}
			off = target - it.addr
		} else {
			if off, err = imm(args[1]); err != nil {
				return err
			}
			if !ternary.FitsTrits(off, 5) {
				return fmt.Errorf("line %d: jump offset %d exceeds 5 trits", st.line, off)
			}
		}
		if it.relaxed == relaxShort {
			return a.appendInst(p, st.line, isa.Inst{Op: isa.JAL, Ta: ta, Imm: off})
		}
		// Far jump: absolute address via scratch, true link in Ta.
		s := a.opts.ScratchReg
		hi, lo := splitConst(it.addr + off)
		if err := a.appendInst(p, st.line, isa.Inst{Op: isa.LUI, Ta: s, Imm: hi}); err != nil {
			return err
		}
		if err := a.appendInst(p, st.line, isa.Inst{Op: isa.LI, Ta: s, Imm: lo}); err != nil {
			return err
		}
		return a.appendInst(p, st.line, isa.Inst{Op: isa.JALR, Ta: ta, Tb: s, Imm: 0})
	}

	// Plain Table I instructions.
	op, ok := isa.OpByName[m]
	if !ok {
		return fmt.Errorf("line %d: unknown mnemonic %q", st.line, m)
	}
	in := isa.Inst{Op: op}
	var err error
	switch op {
	case isa.MV, isa.PTI, isa.NTI, isa.STI, isa.AND, isa.OR, isa.XOR,
		isa.ADD, isa.SUB, isa.SR, isa.SL, isa.COMP:
		if err = argN(2); err != nil {
			return err
		}
		if in.Ta, err = reg(args[0]); err != nil {
			return err
		}
		if in.Tb, err = reg(args[1]); err != nil {
			return err
		}
	case isa.ANDI, isa.ADDI, isa.SRI, isa.SLI, isa.LUI, isa.LI:
		if err = argN(2); err != nil {
			return err
		}
		if in.Ta, err = reg(args[0]); err != nil {
			return err
		}
		if in.Imm, err = imm(args[1]); err != nil {
			return err
		}
	case isa.JALR, isa.LOAD, isa.STORE:
		if err = argN(3); err != nil {
			return err
		}
		if in.Ta, err = reg(args[0]); err != nil {
			return err
		}
		if in.Tb, err = reg(args[1]); err != nil {
			return err
		}
		if in.Imm, err = imm(args[2]); err != nil {
			return err
		}
	default:
		return fmt.Errorf("line %d: %s cannot be written directly", st.line, m)
	}
	return a.appendInst(p, st.line, in)
}

// emitBranch emits a conditional branch at its chosen relaxation level.
// off is relative to the first emitted word (the item address).
func (a *assembler) emitBranch(p *Program, line int, it *item, op isa.Op, tb isa.Reg, b ternary.Trit, off int) error {
	switch it.relaxed {
	case relaxShort:
		return a.appendInst(p, line, isa.Inst{Op: op, Tb: tb, B: b, Imm: off})
	case relaxNear:
		// Inverted branch over a JAL. The link register of JAL is the
		// scratch register (its value is clobbered, documented).
		inv := isa.BEQ
		if op == isa.BEQ {
			inv = isa.BNE
		}
		if err := a.appendInst(p, line, isa.Inst{Op: inv, Tb: tb, B: b, Imm: 2}); err != nil {
			return err
		}
		return a.appendInst(p, line, isa.Inst{Op: isa.JAL, Ta: a.opts.ScratchReg, Imm: off - 1})
	default: // relaxFar
		if a.opts.NoRelax {
			return fmt.Errorf("line %d: branch target out of range and relaxation disabled", line)
		}
		inv := isa.BEQ
		if op == isa.BEQ {
			inv = isa.BNE
		}
		s := a.opts.ScratchReg
		hi, lo := splitConst(it.addr + off)
		if err := a.appendInst(p, line, isa.Inst{Op: inv, Tb: tb, B: b, Imm: 4}); err != nil {
			return err
		}
		if err := a.appendInst(p, line, isa.Inst{Op: isa.LUI, Ta: s, Imm: hi}); err != nil {
			return err
		}
		if err := a.appendInst(p, line, isa.Inst{Op: isa.LI, Ta: s, Imm: lo}); err != nil {
			return err
		}
		return a.appendInst(p, line, isa.Inst{Op: isa.JALR, Ta: s, Tb: s, Imm: 0})
	}
}

// Disassemble renders an encoded TIM image as assembly text, one
// instruction per line with addresses, for the CLI and for debugging
// translated programs.
func Disassemble(words []ternary.Word) string {
	var b strings.Builder
	for i, w := range words {
		in, err := isa.Decode(w)
		if err != nil {
			fmt.Fprintf(&b, "%5d: %v  <illegal: %v>\n", i, w, err)
			continue
		}
		fmt.Fprintf(&b, "%5d: %v  %s\n", i, w, in)
	}
	return b.String()
}
