package asm

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/ternary"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble failed: %v\nsource:\n%s", err, src)
	}
	return p
}

func TestBasicInstructions(t *testing.T) {
	p := mustAssemble(t, `
		; every operand shape
		ADD T1, T2
		MV  T0, T3
		ADDI T4, -13
		SRI  T5, 2
		LUI  T6, 40
		LI   T7, -121
		JAL  T1, 5
		JALR T1, T2, 3
		LOAD T3, T4, -1
		STORE T3, T4, 1
		BEQ T2, 1, 4
		BNE T2, -1, -4
	`)
	want := []isa.Inst{
		{Op: isa.ADD, Ta: 1, Tb: 2},
		{Op: isa.MV, Ta: 0, Tb: 3},
		{Op: isa.ADDI, Ta: 4, Imm: -13},
		{Op: isa.SRI, Ta: 5, Imm: 2},
		{Op: isa.LUI, Ta: 6, Imm: 40},
		{Op: isa.LI, Ta: 7, Imm: -121},
		{Op: isa.JAL, Ta: 1, Imm: 5},
		{Op: isa.JALR, Ta: 1, Tb: 2, Imm: 3},
		{Op: isa.LOAD, Ta: 3, Tb: 4, Imm: -1},
		{Op: isa.STORE, Ta: 3, Tb: 4, Imm: 1},
		{Op: isa.BEQ, Tb: 2, B: ternary.Pos, Imm: 4},
		{Op: isa.BNE, Tb: 2, B: ternary.Neg, Imm: -4},
	}
	if len(p.Text) != len(want) {
		t.Fatalf("got %d instructions, want %d:\n%s", len(p.Text), len(want), Disassemble(p.Words))
	}
	for i, w := range want {
		if p.Text[i] != w {
			t.Errorf("inst %d = %v, want %v", i, p.Text[i], w)
		}
	}
	// Encoded words must decode back to the same instructions.
	for i, w := range p.Words {
		in, err := isa.Decode(w)
		if err != nil || in != p.Text[i] {
			t.Errorf("word %d decode mismatch: %v vs %v (%v)", i, in, p.Text[i], err)
		}
	}
}

func TestCommentsAndBlank(t *testing.T) {
	p := mustAssemble(t, `
		# hash comment
		// slash comment

		NOP ; trailing
	`)
	if len(p.Text) != 1 || !p.Text[0].IsNOP() {
		t.Fatalf("got %v", p.Text)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
	start:
		ADDI T1, 1
	loop:
		ADDI T1, -1
		BNE T1, 0, loop
		JAL T0, start
	done:
		HALT
	`)
	if p.Symbols["start"] != 0 || p.Symbols["loop"] != 1 || p.Symbols["done"] != 4 {
		t.Fatalf("symbols wrong: %v", p.Symbols)
	}
	// BNE at address 2 targeting 1 → offset −1.
	if in := p.Text[2]; in.Op != isa.BNE || in.Imm != -1 {
		t.Errorf("branch = %v, want BNE offset -1", in)
	}
	// JAL at address 3 targeting 0 → offset −3.
	if in := p.Text[3]; in.Op != isa.JAL || in.Imm != -3 {
		t.Errorf("jump = %v, want JAL offset -3", in)
	}
	// HALT is a jump-to-self.
	if in := p.Text[4]; in.Op != isa.JAL || in.Imm != 0 {
		t.Errorf("halt = %v, want JAL x, 0", in)
	}
}

func TestLDIExpansion(t *testing.T) {
	cases := []struct {
		val  int
		want int // instruction count
	}{
		{0, 1},     // LUI 0 alone (lo == 0)
		{243, 1},   // exactly hi·3^5
		{5, 2},     // LUI 0 + LI 5
		{9841, 2},  // max: LUI 40 + LI 121
		{-9841, 2}, // min
		{-121, 2},  //
		{486, 1},   // hi=2, lo=0
	}
	for _, c := range cases {
		p := mustAssemble(t, fmt.Sprintf("LDI T3, %d", c.val))
		if len(p.Text) != c.want {
			t.Errorf("LDI %d expanded to %d instructions, want %d: %v", c.val, len(p.Text), c.want, p.Text)
			continue
		}
		// Verify the expansion actually builds the constant:
		// LUI sets {imm, 00000}; LI merges low 5 trits.
		w := ternary.Word{}
		for _, in := range p.Text {
			switch in.Op {
			case isa.LUI:
				w = ternary.Word{}.SetField(5, 8, in.Imm)
			case isa.LI:
				low := ternary.Word{}.SetField(0, 4, in.Imm)
				for k := 0; k < 5; k++ {
					w[k] = low[k]
				}
			}
		}
		if w.Int() != c.val {
			t.Errorf("LDI %d builds %d", c.val, w.Int())
		}
	}
}

func TestEquAndTernaryLiterals(t *testing.T) {
	p := mustAssemble(t, `
		.equ K, 7
		.equ NEGK, -7
		ADDI T1, K
		ADDI T1, NEGK
		ADDI T2, 0t1T   ; = 2
		ADDI T2, -0t1T  ; = -2
	`)
	imms := []int{7, -7, 2, -2}
	for i, im := range imms {
		if p.Text[i].Imm != im {
			t.Errorf("inst %d imm = %d, want %d", i, p.Text[i].Imm, im)
		}
	}
}

func TestDataSection(t *testing.T) {
	p := mustAssemble(t, `
		.data
		.org 5
	vec:
		.word 1, -2, 3
		.space 2
	after:
		.word 0t111
		.text
		LDA T1, vec
		LOAD T2, T1, 0
		HALT
	`)
	if p.Symbols["vec"] != 5 || p.Symbols["after"] != 10 {
		t.Fatalf("data symbols wrong: %v", p.Symbols)
	}
	wantData := map[int]int{5: 1, 6: -2, 7: 3, 10: 13}
	for a, v := range wantData {
		if got := p.Data[a].Int(); got != v {
			t.Errorf("data[%d] = %d, want %d", a, got, v)
		}
	}
	// LDA is always two instructions.
	if p.Text[0].Op != isa.LUI || p.Text[1].Op != isa.LI {
		t.Errorf("LDA expansion = %v %v", p.Text[0], p.Text[1])
	}
}

func TestOrgInText(t *testing.T) {
	p := mustAssemble(t, `
		NOP
		.org 4
	entry:
		ADDI T1, 1
	`)
	if len(p.Text) != 5 {
		t.Fatalf("text length %d, want 5", len(p.Text))
	}
	for i := 1; i < 4; i++ {
		if !p.Text[i].IsNOP() {
			t.Errorf("filler at %d is %v, not NOP", i, p.Text[i])
		}
	}
	if p.Symbols["entry"] != 4 {
		t.Errorf("entry = %d, want 4", p.Symbols["entry"])
	}
}

func TestBranchRelaxationNear(t *testing.T) {
	// Distance ~60: beyond imm4 (±40), within JAL's ±121.
	var b strings.Builder
	b.WriteString("BEQ T1, 0, far\n")
	for i := 0; i < 60; i++ {
		b.WriteString("NOP\n")
	}
	b.WriteString("far: HALT\n")
	p := mustAssemble(t, b.String())
	// Expansion: BNE +2; JAL scratch, off.
	if p.Text[0].Op != isa.BNE || p.Text[0].Imm != 2 {
		t.Fatalf("inverted branch = %v", p.Text[0])
	}
	if p.Text[1].Op != isa.JAL {
		t.Fatalf("relaxed jump = %v", p.Text[1])
	}
	target := p.Symbols["far"]
	if got := 1 + p.Text[1].Imm; got != target {
		t.Errorf("relaxed jump reaches %d, want %d", got, target)
	}
}

func TestBranchRelaxationFar(t *testing.T) {
	// Distance ~300: beyond JAL too; needs the absolute LDA+JALR form.
	var b strings.Builder
	b.WriteString("BNE T1, 1, far\n")
	for i := 0; i < 300; i++ {
		b.WriteString("NOP\n")
	}
	b.WriteString("far: HALT\n")
	p := mustAssemble(t, b.String())
	if p.Text[0].Op != isa.BEQ || p.Text[0].Imm != 4 {
		t.Fatalf("inverted branch = %v", p.Text[0])
	}
	if p.Text[1].Op != isa.LUI || p.Text[2].Op != isa.LI || p.Text[3].Op != isa.JALR {
		t.Fatalf("far sequence = %v %v %v", p.Text[1], p.Text[2], p.Text[3])
	}
	// The LUI/LI pair must build the absolute target address.
	w := ternary.Word{}.SetField(5, 8, p.Text[1].Imm)
	low := ternary.Word{}.SetField(0, 4, p.Text[2].Imm)
	for k := 0; k < 5; k++ {
		w[k] = low[k]
	}
	if w.Int() != p.Symbols["far"] {
		t.Errorf("far target builds %d, want %d", w.Int(), p.Symbols["far"])
	}
}

func TestFarJAL(t *testing.T) {
	var b strings.Builder
	b.WriteString("JAL T1, far\n")
	for i := 0; i < 200; i++ {
		b.WriteString("NOP\n")
	}
	b.WriteString("far: HALT\n")
	p := mustAssemble(t, b.String())
	if p.Text[0].Op != isa.LUI || p.Text[1].Op != isa.LI || p.Text[2].Op != isa.JALR {
		t.Fatalf("far JAL = %v %v %v", p.Text[0], p.Text[1], p.Text[2])
	}
	if p.Text[2].Ta != 1 {
		t.Errorf("far JAL link register = %v, want T1", p.Text[2].Ta)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"FOO T1, T2",           // unknown mnemonic
		"ADD T1",               // missing operand
		"ADD T1, T2, T3",       // extra operand
		"ADDI T1, 99",          // imm out of range
		"ADDI T9, 1",           // bad register
		"BEQ T1, 2, 0",         // bad condition trit
		"BEQ T1, 0, nowhere",   // undefined label
		"JAL T0, 400",          // numeric offset out of range
		".word 1",              // .word in .text
		".org 5\n.org 2",       // backwards org
		".equ X, 1\n.equ X, 2", // duplicate equ
		"x: NOP\nx: NOP",       // duplicate label
		"LDI T1, 999999",       // constant too wide
		".bogus 3",             // unknown directive
		"BEQ T1, 0, 41",        // numeric branch out of range
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestNoRelaxErrors(t *testing.T) {
	var b strings.Builder
	b.WriteString("BEQ T1, 0, far\n")
	for i := 0; i < 300; i++ {
		b.WriteString("NOP\n")
	}
	b.WriteString("far: HALT\n")
	if _, err := AssembleOpts(b.String(), Options{ScratchReg: 8, NoRelax: true}); err == nil {
		t.Error("NoRelax far branch assembled without error")
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
		ADDI T1, 5
		ADD T1, T2
		STORE T1, T0, 3
		BEQ T1, 0, 2
		HALT
	`
	p := mustAssemble(t, src)
	dis := Disassemble(p.Words)
	// Every mnemonic should appear in the disassembly.
	for _, m := range []string{"ADDI", "ADD", "STORE", "BEQ", "JAL"} {
		if !strings.Contains(dis, m) {
			t.Errorf("disassembly missing %s:\n%s", m, dis)
		}
	}
	// Reassembling the disassembly of straight-line code (minus the
	// address column) must reproduce the same words.
	var b strings.Builder
	for _, l := range strings.Split(strings.TrimSpace(dis), "\n") {
		f := strings.Fields(l) // "addr:", "word", mnemonic, operands...
		b.WriteString(strings.Join(f[2:], " ") + "\n")
	}
	p2 := mustAssemble(t, b.String())
	if len(p2.Words) != len(p.Words) {
		t.Fatalf("reassembly length %d vs %d", len(p2.Words), len(p.Words))
	}
	for i := range p.Words {
		if p.Words[i] != p2.Words[i] {
			t.Errorf("word %d differs after reassembly", i)
		}
	}
}

func TestTextCells(t *testing.T) {
	p := mustAssemble(t, "NOP\nNOP\nNOP")
	if p.TextCells() != 27 {
		t.Errorf("TextCells = %d, want 27", p.TextCells())
	}
}

func TestLabelAtEOF(t *testing.T) {
	p := mustAssemble(t, "NOP\nend:")
	if p.Symbols["end"] != 1 {
		t.Errorf("EOF label = %d, want 1", p.Symbols["end"])
	}
}

func TestMultipleErrorsReported(t *testing.T) {
	_, err := Assemble("FOO\nBAR\n")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "FOO") && !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error lacks line info: %v", err)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("second error not reported: %v", err)
	}
}
