package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/ternary"
)

// Relaxation levels for label-target control transfers.
const (
	relaxShort = iota // single instruction, immediate reaches
	relaxNear         // branch: inverted branch over a JAL
	relaxFar          // absolute target via LDA + JALR
)

// sizeOf returns the number of TIM/TDM words a statement occupies at the
// given relaxation level. It must be deterministic per (stmt, level) so the
// fixed-point layout converges.
func (a *assembler) sizeOf(st *statement, sec section, level int) (int, error) {
	switch st.kind {
	case stWord:
		return len(st.values), nil
	case stSpace:
		return st.count, nil
	case stOrg:
		return 0, nil // handled specially in layout
	}
	m := st.mnemonic
	switch m {
	case "NOP", "HALT":
		return 1, nil
	case "LDI":
		if len(st.args) != 2 {
			return 0, fmt.Errorf("line %d: LDI wants Ta, value", st.line)
		}
		v, err := a.evalConst(st.args[1], st.line)
		if err != nil {
			return 0, err
		}
		_, lo := splitConst(v)
		if lo == 0 {
			return 1, nil
		}
		return 2, nil
	case "LDA":
		return 2, nil
	case "BEQ", "BNE":
		switch level {
		case relaxShort:
			return 1, nil
		case relaxNear:
			return 2, nil
		default:
			return 4, nil
		}
	case "JAL":
		if level == relaxShort {
			return 1, nil
		}
		return 3, nil
	}
	if _, ok := isa.OpByName[m]; ok {
		return 1, nil
	}
	return 0, fmt.Errorf("line %d: unknown mnemonic %q", st.line, st.mnemonic)
}

// splitConst decomposes a 9-trit value into hi·3^5 + lo with lo in the
// 5-trit balanced range, the LUI/LI pair of §IV-A.
func splitConst(v int) (hi, lo int) {
	w := ternary.FromInt(v)
	lo = w.Field(0, 4)
	hi = w.Field(5, 8)
	return hi, lo
}

// layout assigns addresses to all statements, iterating branch relaxation
// to a fixed point. Relaxation levels only ever increase, so the loop
// terminates.
func (a *assembler) layout() error {
	// Build items once.
	a.items = a.items[:0]
	levels := make([]int, len(a.stmts))
	for iter := 0; ; iter++ {
		if iter > 2+len(a.stmts) {
			return fmt.Errorf("asm: branch relaxation did not converge")
		}
		a.items = a.items[:0]
		lc := map[section]int{}
		a.labels = map[string]int{}
		stmtAddr := make([]int, len(a.stmts)+1)
		var layoutErrs errList
		for i, st := range a.stmts {
			sec := a.secOf[i]
			stmtAddr[i] = lc[sec]
			if st.kind == stOrg {
				if st.count < lc[sec] {
					layoutErrs = append(layoutErrs, fmt.Errorf("line %d: .org %d before current location %d", st.line, st.count, lc[sec]))
					continue
				}
				it := &item{stmt: st, sec: sec, addr: lc[sec], size: st.count - lc[sec]}
				a.items = append(a.items, it)
				lc[sec] = st.count
				continue
			}
			size, err := a.sizeOf(st, sec, levels[i])
			if err != nil {
				layoutErrs = append(layoutErrs, err)
				continue
			}
			a.items = append(a.items, &item{stmt: st, sec: sec, addr: lc[sec], size: size, relaxed: levels[i]})
			lc[sec] += size
		}
		if err := layoutErrs.or(); err != nil {
			return err
		}
		stmtAddr[len(a.stmts)] = 0 // see below: EOF labels
		// Bind labels: a label binds to the address of the next statement
		// in its own section, or the section end if none follows.
		for _, d := range a.labelDecls {
			addr, found := lc[d.sec], false
			for j := d.idx; j < len(a.stmts); j++ {
				if a.secOf[j] == d.sec {
					addr, found = stmtAddr[j], true
					break
				}
			}
			_ = found
			if prev, dup := a.labels[d.name]; dup && prev != addr {
				return fmt.Errorf("line %d: duplicate label %q", d.line, d.name)
			}
			a.labels[d.name] = addr
		}
		// Check reach of every label-target control transfer; bump levels.
		changed := false
		itemIdx := 0
		for i, st := range a.stmts {
			if a.secOf[i] == secData || st.kind != stInst {
				itemIdx++
				continue
			}
			it := a.items[itemIdx]
			itemIdx++
			switch st.mnemonic {
			case "BEQ", "BNE":
				if len(st.args) != 3 || !a.isSymbol(st.args[2]) {
					continue // numeric offset: no relaxation
				}
				target, ok := a.labels[st.args[2]]
				if !ok {
					continue // undefined label reported at emit
				}
				need := neededBranchLevel(it.addr, target)
				if need > levels[i] {
					levels[i] = need
					changed = true
				}
			case "JAL":
				if len(st.args) != 2 || !a.isSymbol(st.args[1]) {
					continue
				}
				target, ok := a.labels[st.args[1]]
				if !ok {
					continue
				}
				if levels[i] == relaxShort && !ternary.FitsTrits(target-it.addr, 5) {
					levels[i] = relaxFar
					changed = true
				}
			}
		}
		if !changed {
			return nil
		}
	}
}

// neededBranchLevel picks the smallest relaxation level that reaches
// target from a branch at addr.
func neededBranchLevel(addr, target int) int {
	if ternary.FitsTrits(target-addr, 4) {
		return relaxShort
	}
	// Near form: the JAL sits at addr+1.
	if ternary.FitsTrits(target-(addr+1), 5) {
		return relaxNear
	}
	return relaxFar
}

// isSymbol reports whether the operand is a symbol reference rather than a
// number or register.
func (a *assembler) isSymbol(s string) bool {
	if s == "" {
		return false
	}
	if s[0] == '+' || s[0] == '-' || (s[0] >= '0' && s[0] <= '9') {
		return false
	}
	if _, err := isa.ParseReg(s); err == nil {
		return false
	}
	return isIdent(s)
}

// evalConst evaluates a parse-time constant: decimal, 0t trit literal, or a
// previously defined .equ name.
func (a *assembler) evalConst(s string, line int) (int, error) {
	if v, ok := a.equ[s]; ok {
		return v, nil
	}
	if strings.HasPrefix(s, "0t") || strings.HasPrefix(s, "-0t") {
		neg := strings.HasPrefix(s, "-")
		w, err := ternary.ParseWord(strings.TrimPrefix(s, "-"))
		if err != nil {
			return 0, fmt.Errorf("line %d: %v", line, err)
		}
		if neg {
			return -w.Int(), nil
		}
		return w.Int(), nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("line %d: cannot evaluate %q as a constant", line, s)
	}
	return v, nil
}

// evalValue evaluates an emit-time operand: constants plus labels.
func (a *assembler) evalValue(s string, line int) (int, error) {
	if v, ok := a.labels[s]; ok {
		return v, nil
	}
	return a.evalConst(s, line)
}
