// Package asm implements the ART-9 assembler: the textual front door of
// both frameworks in the paper. It turns assembly source into TIM images
// (encoded 9-trit instructions) and TDM initialisation, resolving labels,
// expanding pseudo-instructions and relaxing out-of-range branches.
//
// Syntax (one statement per line):
//
//	; comment   # comment   // comment
//	label:               ; text or data label at the current location
//	MNEMONIC operands    ; any Table I instruction, e.g.  ADD T1, T2
//	NOP                  ; pseudo: ADDI T0, 0 (§IV-B)
//	LDI T3, 1234         ; pseudo: load full 9-trit constant (LUI [+ LI])
//	LDA T3, label        ; pseudo: load an address/symbol
//	HALT                 ; pseudo: jump-to-self, stops the simulator
//	.text / .data        ; section switch (TIM vs TDM)
//	.org N               ; advance the location counter
//	.word N [, N]...     ; literal words (decimal or 0t trit literal)
//	.space N             ; reserve N zero words
//	.equ NAME, N         ; assemble-time constant
//
// Branch operands may be numeric offsets or labels; label branches that do
// not reach are relaxed automatically (inverted branch over a JAL, or an
// absolute LDA+JALR for far targets) using a scratch register that defaults
// to T8.
package asm

import (
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/ternary"
)

// Program is the output of the assembler: a TIM image plus TDM
// initialisation and the symbol table.
type Program struct {
	// Text is the decoded instruction stream, one entry per TIM word.
	Text []isa.Inst
	// Words is the encoded TIM image, parallel to Text.
	Words []ternary.Word
	// Data maps TDM addresses to initial words.
	Data map[int]ternary.Word
	// Symbols maps label/constant names to values.
	Symbols map[string]int
	// Lines maps each Text index to its 1-based source line, for traces.
	Lines []int
}

// TextCells returns the number of ternary memory cells the program's
// instructions occupy — the Fig. 5 metric for ART-9.
func (p *Program) TextCells() int { return len(p.Text) * ternary.WordTrits }

// Options configure assembly.
type Options struct {
	// ScratchReg is the register used by branch relaxation and by the
	// LDA/far-jump pseudos. Defaults to T8.
	ScratchReg isa.Reg
	// NoRelax disables branch relaxation: out-of-range label branches
	// become errors instead.
	NoRelax bool
}

// Assemble assembles src with default options.
func Assemble(src string) (*Program, error) { return AssembleOpts(src, Options{ScratchReg: 8}) }

// AssembleOpts assembles src with explicit options.
func AssembleOpts(src string, opts Options) (*Program, error) {
	a := &assembler{opts: opts, equ: map[string]int{}, labels: map[string]int{}}
	if err := a.parse(src); err != nil {
		return nil, err
	}
	if err := a.layout(); err != nil {
		return nil, err
	}
	return a.emit()
}

// statement is one parsed source statement bound to its location.
type statement struct {
	line int // 1-based source line
	kind stmtKind

	// instruction statements
	mnemonic string
	args     []string

	// directive payloads
	values []string // .word
	count  int      // .space / .org target
	name   string   // .equ
}

type stmtKind uint8

const (
	stInst stmtKind = iota
	stWord
	stSpace
	stOrg
)

type section uint8

const (
	secText section = iota
	secData
)

// item is a laid-out unit: an instruction group (a source statement that
// expands to one or more machine instructions) or data words.
type item struct {
	stmt    *statement
	sec     section
	addr    int // location counter at start of item
	size    int // words occupied (instructions for text)
	relaxed int // relaxation level for branches: 0 short, 1 medium, 2 far
}

type assembler struct {
	opts   Options
	stmts  []*statement
	secOf  []section // parallel to stmts
	equ    map[string]int
	labels map[string]int // name -> address (filled during layout)
	// label declarations in source order: (name, stmt index, section)
	labelDecls []labelDecl
	items      []*item
	errs       errList
}

type labelDecl struct {
	name string
	idx  int // index into stmts of the following statement (== len at EOF)
	sec  section
	line int
}

type errList []error

func (e errList) Error() string {
	var b strings.Builder
	for i, err := range e {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(err.Error())
	}
	return b.String()
}

func (e errList) or() error {
	if len(e) == 0 {
		return nil
	}
	return e
}

func (a *assembler) errorf(line int, format string, args ...interface{}) {
	a.errs = append(a.errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

// parse splits the source into statements, labels and .equ definitions.
func (a *assembler) parse(src string) error {
	sec := secText
	for ln, raw := range strings.Split(src, "\n") {
		line := ln + 1
		s := stripComment(raw)
		// Peel off any leading labels (several may share a line).
		for {
			s = strings.TrimSpace(s)
			i := strings.Index(s, ":")
			if i < 0 {
				break
			}
			name := strings.TrimSpace(s[:i])
			if !isIdent(name) {
				break
			}
			a.labelDecls = append(a.labelDecls, labelDecl{name, len(a.stmts), sec, line})
			s = s[i+1:]
		}
		if s == "" {
			continue
		}
		fields := splitOperands(s)
		head := strings.ToUpper(fields[0])
		args := fields[1:]
		switch head {
		case ".TEXT":
			sec = secText
		case ".DATA":
			sec = secData
		case ".EQU":
			if len(args) != 2 {
				a.errorf(line, ".equ wants NAME, VALUE")
				continue
			}
			if !isIdent(args[0]) {
				a.errorf(line, ".equ: invalid name %q", args[0])
				continue
			}
			v, err := a.evalConst(args[1], line)
			if err != nil {
				a.errs = append(a.errs, err)
				continue
			}
			if _, dup := a.equ[args[0]]; dup {
				a.errorf(line, ".equ: duplicate constant %q", args[0])
				continue
			}
			a.equ[args[0]] = v
		case ".WORD":
			if len(args) == 0 {
				a.errorf(line, ".word wants at least one value")
				continue
			}
			a.stmts = append(a.stmts, &statement{line: line, kind: stWord, values: args})
			a.secOf = append(a.secOf, sec)
		case ".SPACE", ".ORG":
			if len(args) != 1 {
				a.errorf(line, "%s wants one value", strings.ToLower(head))
				continue
			}
			v, err := a.evalConst(args[0], line)
			if err != nil {
				a.errs = append(a.errs, err)
				continue
			}
			if v < 0 {
				a.errorf(line, "%s: negative value %d", strings.ToLower(head), v)
				continue
			}
			kind := stSpace
			if head == ".ORG" {
				kind = stOrg
			}
			a.stmts = append(a.stmts, &statement{line: line, kind: kind, count: v})
			a.secOf = append(a.secOf, sec)
		default:
			if strings.HasPrefix(head, ".") {
				a.errorf(line, "unknown directive %s", fields[0])
				continue
			}
			a.stmts = append(a.stmts, &statement{line: line, kind: stInst, mnemonic: head, args: args})
			a.secOf = append(a.secOf, sec)
		}
	}
	return a.errs.or()
}

// stripComment removes ;, # and // comments.
func stripComment(s string) string {
	for _, sep := range []string{";", "#", "//"} {
		if i := strings.Index(s, sep); i >= 0 {
			s = s[:i]
		}
	}
	return s
}

// splitOperands splits "OP a, b, c" into ["OP", "a", "b", "c"].
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return []string{s}
	}
	out := []string{s[:i]}
	for _, f := range strings.Split(s[i:], ",") {
		f = strings.TrimSpace(f)
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
