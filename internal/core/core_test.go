package core

import (
	"strings"
	"testing"

	"repro/internal/gate"
	"repro/internal/sim"
)

const tinyRV = `
	li   a0, 6
	li   a1, 7
	mul  a2, a0, a1
	ebreak
`

func TestSoftwareFrameworkCompile(t *testing.T) {
	f := &SoftwareFramework{}
	res, err := f.Compile(tinyRV)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Binary.Insts) == 0 || len(res.Program.Text) == 0 {
		t.Fatal("empty compile result")
	}
	if !strings.Contains(res.Ternary.Asm, "HALT") {
		t.Error("generated assembly lacks HALT")
	}
	// End-to-end value check through the functional core.
	state, _, err := RunFunctional(res.Program, res.Data, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Ternary.ReadBack(state, 12) // a2
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("6*7 = %d, want 42", got)
	}
}

func TestSoftwareFrameworkBadInput(t *testing.T) {
	f := &SoftwareFramework{}
	if _, err := f.Compile("bogus instruction"); err == nil {
		t.Error("bad RV32 source compiled")
	}
	if _, err := f.Compile("auipc a0, 1\nebreak"); err == nil {
		t.Error("untranslatable source compiled")
	}
}

func TestHardwareFrameworkCNTFET(t *testing.T) {
	f := &SoftwareFramework{}
	res, err := f.Compile(tinyRV)
	if err != nil {
		t.Fatal(err)
	}
	hw := &HardwareFramework{} // defaults: CNTFET at fmax
	ev, err := hw.Evaluate(res.Program, res.Data, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Cycles.Retired == 0 {
		t.Error("no instructions retired")
	}
	if ev.Analysis.FmaxMHz <= 0 || ev.Impl.PowerW <= 0 || ev.Impl.DMIPSPerW <= 0 {
		t.Errorf("degenerate evaluation: %+v", ev.Impl)
	}
	if ev.Impl.FreqMHz != ev.Analysis.FmaxMHz {
		t.Error("default frequency is not fmax")
	}
}

func TestHardwareFrameworkFPGA(t *testing.T) {
	f := &SoftwareFramework{}
	res, err := f.Compile(tinyRV)
	if err != nil {
		t.Fatal(err)
	}
	hw := &HardwareFramework{
		Tech:     gate.StratixVEmulation(),
		FreqMHz:  150,
		MemWords: 256,
	}
	ev, err := hw.Evaluate(res.Program, res.Data, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Impl.RAMBits != 9216 {
		t.Errorf("RAM bits = %d, want 9216", ev.Impl.RAMBits)
	}
	if ev.Impl.ALMs == 0 || ev.Impl.Registers == 0 {
		t.Error("FPGA resources missing")
	}
}

func TestHardwareFrameworkIterationNormalisation(t *testing.T) {
	f := &SoftwareFramework{}
	res, err := f.Compile(tinyRV)
	if err != nil {
		t.Fatal(err)
	}
	hw := &HardwareFramework{}
	one, err := hw.Evaluate(res.Program, res.Data, 1)
	if err != nil {
		t.Fatal(err)
	}
	ten, err := hw.Evaluate(res.Program, res.Data, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Ten "iterations" of the same cycles → 10× the DMIPS.
	if ten.Impl.DMIPS < 9.9*one.Impl.DMIPS {
		t.Errorf("iteration normalisation wrong: %f vs %f", ten.Impl.DMIPS, one.Impl.DMIPS)
	}
	// iterations < 1 clamps to 1.
	clamped, err := hw.Evaluate(res.Program, res.Data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if clamped.Impl.DMIPS != one.Impl.DMIPS {
		t.Error("iterations=0 not clamped to 1")
	}
}

func TestRunFunctionalNilData(t *testing.T) {
	f := &SoftwareFramework{}
	res, err := f.Compile("li a0, 5\nebreak")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunFunctional(res.Program, nil, sim.Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateAnalysisIsCallerOwned(t *testing.T) {
	// Evaluate serves the gate-level analysis from the engine's shared
	// cache, but each Evaluation must own its copy: mutating one run's
	// Analysis must not leak into the next.
	f := &SoftwareFramework{}
	res, err := f.Compile(tinyRV)
	if err != nil {
		t.Fatal(err)
	}
	hw := &HardwareFramework{}
	ev1, err := hw.Evaluate(res.Program, res.Data, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantFmax := ev1.Analysis.FmaxMHz
	ev1.Analysis.FmaxMHz = -1
	for k := range ev1.Analysis.Histogram {
		ev1.Analysis.Histogram[k] = -1
	}

	ev2, err := hw.Evaluate(res.Program, res.Data, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ev2.Analysis == ev1.Analysis {
		t.Fatal("evaluations share one Analysis instance")
	}
	if ev2.Analysis.FmaxMHz != wantFmax {
		t.Errorf("fmax %v after mutation of a previous evaluation, want %v", ev2.Analysis.FmaxMHz, wantFmax)
	}
	for k, v := range ev2.Analysis.Histogram {
		if v < 0 {
			t.Fatalf("histogram[%v] leaked a mutated value", k)
		}
	}
}
