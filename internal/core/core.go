// Package core composes the paper's two contributions into the high-level
// API the rest of the repository (and the public art9 facade) builds on:
//
//   - SoftwareFramework — the software-level compiling framework of §III-A
//     (Fig. 2): RV32 assembly in, verified ART-9 ternary assembly out.
//   - HardwareFramework — the hardware-level evaluation framework of
//     §III-B (Fig. 3): cycle-accurate simulation, gate-level analysis
//     against a technology description, and performance estimation.
package core

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/engine"
	"repro/internal/gate"
	"repro/internal/perf"
	"repro/internal/rv32"
	"repro/internal/sim"
	"repro/internal/ternary"
	"repro/internal/xlate"
)

// SoftwareFramework is the compiling pipeline of Fig. 2.
type SoftwareFramework struct {
	// Options tune the instruction-mapping phase.
	Options xlate.Options
}

// CompileResult is the output of the software-level framework.
type CompileResult struct {
	// Binary is the assembled RV32 input program.
	Binary *rv32.Program
	// Ternary is the generated ART-9 assembly and its metadata.
	Ternary *xlate.Output
	// Program is the assembled ART-9 program (TIM image).
	Program *asm.Program
	// Data is the TDM initialisation derived from the RV32 data image.
	Data map[int]ternary.Word
}

// Compile runs the full pipeline on RV32 assembly source: binary assembly
// → instruction mapping → operand conversion → redundancy checking →
// ternary assembly.
func (f *SoftwareFramework) Compile(rvSource string) (*CompileResult, error) {
	binProg, err := rv32.Assemble(rvSource)
	if err != nil {
		return nil, fmt.Errorf("core: binary front end: %w", err)
	}
	out, err := xlate.Translate(binProg, f.Options)
	if err != nil {
		return nil, fmt.Errorf("core: translation: %w", err)
	}
	ternProg, err := engine.AssembleCached(out.Asm)
	if err != nil {
		return nil, fmt.Errorf("core: ternary back end: %w", err)
	}
	return &CompileResult{
		Binary:  binProg,
		Ternary: out,
		Program: ternProg,
		Data:    xlate.DataImage(binProg),
	}, nil
}

// HardwareFramework is the evaluation pipeline of Fig. 3.
type HardwareFramework struct {
	// Tech is the technology property description; nil selects the
	// CNTFET model of Table IV.
	Tech *gate.Technology
	// FreqMHz is the operating frequency; 0 means the analyzed fmax.
	FreqMHz float64
	// MemWords sizes TIM and TDM for the power model (0: full space,
	// whose leakage term is then omitted as off-datapath).
	MemWords int
	// Config sizes the simulated machine.
	Config sim.Config
}

// Evaluation is the combined output of the hardware-level framework.
type Evaluation struct {
	Cycles   sim.Result
	Analysis *gate.Analysis
	Impl     perf.Implementation
}

// Evaluate runs the assembled program on the pipelined ART-9 core, then
// feeds the cycle count and the gate-level analysis into the performance
// estimator. iterations scales the Dhrystone-style per-iteration metrics
// (pass 1 for plain programs).
func (f *HardwareFramework) Evaluate(p *asm.Program, data map[int]ternary.Word, iterations int) (*Evaluation, error) {
	tech := f.Tech
	if tech == nil {
		tech = gate.CNTFET32()
	}
	pl := sim.NewPipeline(f.Config)
	if err := pl.S.Load(p); err != nil {
		return nil, err
	}
	if data != nil {
		if err := pl.S.TDM.SetAll(data); err != nil {
			return nil, err
		}
	}
	res, err := pl.Run()
	if err != nil {
		return nil, fmt.Errorf("core: cycle-accurate simulation: %w", err)
	}

	// The ART-9 netlist analysis depends only on the technology, so it
	// is served from the engine's shared memoization cache; repeated
	// evaluations re-simulate but never re-analyze. The cache entry is
	// shared process-wide, so hand the caller its own copy — Evaluation
	// has always been safe to mutate.
	cached := engine.AnalyzeART9(tech)
	an := &gate.Analysis{}
	*an = *cached
	an.Histogram = make(map[gate.CellKind]int, len(cached.Histogram))
	for k, v := range cached.Histogram {
		an.Histogram[k] = v
	}
	if iterations < 1 {
		iterations = 1
	}
	memTrits, ramBits := 0, 0
	if f.MemWords > 0 {
		memTrits = 2 * f.MemWords * ternary.WordTrits
		ramBits = memTrits * ternary.BitsPerTrit
	}
	impl := perf.Estimate(an, tech, f.FreqMHz,
		float64(res.Cycles)/float64(iterations), memTrits, 1.2, ramBits)
	return &Evaluation{Cycles: res, Analysis: an, Impl: impl}, nil
}

// RunFunctional executes a program on the functional reference core and
// returns the final state alongside the run statistics — the quick
// verification path of the framework.
func RunFunctional(p *asm.Program, data map[int]ternary.Word, cfg sim.Config) (*sim.State, sim.Result, error) {
	fn := sim.NewFunctional(cfg)
	if err := fn.S.Load(p); err != nil {
		return nil, sim.Result{}, err
	}
	if data != nil {
		if err := fn.S.TDM.SetAll(data); err != nil {
			return nil, sim.Result{}, err
		}
	}
	res, err := fn.Run()
	return fn.S, res, err
}
