package rv32

import (
	"testing"
)

func assemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v\n%s", err, src)
	}
	return p
}

func run(t *testing.T, src string) *Machine {
	t.Helper()
	m := NewMachine(1 << 16)
	if err := m.Load(assemble(t, src)); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func TestBasicALU(t *testing.T) {
	m := run(t, `
		li a0, 100
		li a1, -42
		add a2, a0, a1     # 58
		sub a3, a0, a1     # 142
		xor a4, a0, a1
		and a5, a0, a1
		or  a6, a0, a1
		ebreak
	`)
	if got := int32(m.Reg(12)); got != 58 {
		t.Errorf("add = %d", got)
	}
	if got := int32(m.Reg(13)); got != 142 {
		t.Errorf("sub = %d", got)
	}
	if got := m.Reg(14); got != 100^uint32(0xffffffd6) {
		t.Errorf("xor = %#x", got)
	}
}

func TestX0IsZero(t *testing.T) {
	m := run(t, `
		li zero, 55
		addi x0, x0, 7
		mv a0, zero
		ebreak
	`)
	if m.Reg(0) != 0 || m.Reg(10) != 0 {
		t.Error("x0 not hardwired to zero")
	}
}

func TestLoadStore(t *testing.T) {
	m := run(t, `
		.data
	buf:	.word 0, 0
	bytes:	.byte 0xff, 1, 2, 3
		.text
		li t0, 0x12345678
		la t1, buf
		sw t0, 0(t1)
		lw t2, 0(t1)
		la t3, bytes
		lb t4, 0(t3)       # sign-extended 0xff = -1
		lbu t5, 0(t3)      # 255
		lh t6, 0(t3)       # 0x01ff
		ebreak
	`)
	if m.Reg(7) != 0x12345678 {
		t.Errorf("lw = %#x", m.Reg(7))
	}
	if int32(m.Reg(29)) != -1 {
		t.Errorf("lb = %d, want -1", int32(m.Reg(29)))
	}
	if m.Reg(30) != 255 {
		t.Errorf("lbu = %d", m.Reg(30))
	}
	if m.Reg(31) != 0x01ff {
		t.Errorf("lh = %#x", m.Reg(31))
	}
}

func TestHalfStore(t *testing.T) {
	m := run(t, `
		.data
	buf:	.word 0
		.text
		la t0, buf
		li t1, 0xabcd
		sh t1, 0(t0)
		lhu t2, 0(t0)
		ebreak
	`)
	if m.Reg(7) != 0xabcd {
		t.Errorf("sh/lhu = %#x", m.Reg(7))
	}
}

func TestBranchesAndLoop(t *testing.T) {
	m := run(t, `
		li a0, 0          # sum
		li a1, 1          # i
		li a2, 10         # n
	loop:
		add a0, a0, a1
		addi a1, a1, 1
		ble a1, a2, loop
		ebreak
	`)
	if got := m.Reg(10); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
	if m.Taken != 9 || m.NotTkn != 1 {
		t.Errorf("taken/not = %d/%d", m.Taken, m.NotTkn)
	}
}

func TestSignedUnsignedBranches(t *testing.T) {
	m := run(t, `
		li t0, -1
		li t1, 1
		li a0, 0
		li a1, 0
		blt t0, t1, s1     # signed: -1 < 1, taken
		j s2
	s1:	li a0, 1
	s2:	bltu t0, t1, u1    # unsigned: 0xffffffff > 1, not taken
		li a1, 2
	u1:	ebreak
	`)
	if m.Reg(10) != 1 {
		t.Error("blt signed failed")
	}
	if m.Reg(11) != 2 {
		t.Error("bltu unsigned failed")
	}
}

func TestSltVariants(t *testing.T) {
	m := run(t, `
		li t0, -5
		li t1, 3
		slt  a0, t0, t1    # 1
		sltu a1, t0, t1    # 0 (0xfffffffb > 3)
		slti a2, t0, 0     # 1
		sltiu a3, t1, 10   # 1
		seqz a4, zero      # 1
		snez a5, t1        # 1
		ebreak
	`)
	want := map[Reg]uint32{10: 1, 11: 0, 12: 1, 13: 1, 14: 1, 15: 1}
	for r, v := range want {
		if m.Reg(r) != v {
			t.Errorf("%v = %d, want %d", r, m.Reg(r), v)
		}
	}
}

func TestShifts(t *testing.T) {
	m := run(t, `
		li t0, -16
		srai a0, t0, 2     # -4
		srli a1, t0, 28    # 0xf
		slli a2, t0, 1     # -32
		li t1, 3
		sll a3, t0, t1     # -128
		ebreak
	`)
	if int32(m.Reg(10)) != -4 || m.Reg(11) != 0xf || int32(m.Reg(12)) != -32 || int32(m.Reg(13)) != -128 {
		t.Errorf("shifts = %d %#x %d %d", int32(m.Reg(10)), m.Reg(11), int32(m.Reg(12)), int32(m.Reg(13)))
	}
}

func TestCallRet(t *testing.T) {
	m := run(t, `
		li a0, 20
		call double
		call double
		ebreak
	double:
		add a0, a0, a0
		ret
	`)
	if m.Reg(10) != 80 {
		t.Errorf("double twice = %d, want 80", m.Reg(10))
	}
}

func TestMulDiv(t *testing.T) {
	m := run(t, `
		li t0, -7
		li t1, 3
		mul a0, t0, t1     # -21
		div a1, t0, t1     # -2
		rem a2, t0, t1     # -1
		li t2, 0
		div a3, t0, t2     # -1 (div by zero per spec)
		rem a4, t0, t2     # rs1
		mulh a5, t0, t1    # high word of -21
		ebreak
	`)
	if int32(m.Reg(10)) != -21 || int32(m.Reg(11)) != -2 || int32(m.Reg(12)) != -1 {
		t.Errorf("mul/div/rem = %d %d %d", int32(m.Reg(10)), int32(m.Reg(11)), int32(m.Reg(12)))
	}
	if m.Reg(13) != ^uint32(0) {
		t.Errorf("div by zero = %#x, want all ones", m.Reg(13))
	}
	if int32(m.Reg(14)) != -7 {
		t.Errorf("rem by zero = %d, want -7", int32(m.Reg(14)))
	}
	if m.Reg(15) != ^uint32(0) {
		t.Errorf("mulh(-21) high = %#x", m.Reg(15))
	}
}

func TestMisalignedFaults(t *testing.T) {
	p := assemble(t, `
		li t0, 2
		lw t1, 0(t0)
		ebreak
	`)
	m := NewMachine(1 << 12)
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err == nil {
		t.Error("misaligned lw did not fault")
	}
}

func TestOutOfRAMFaults(t *testing.T) {
	p := assemble(t, `
		li t0, 0x10000
		sw t0, 0(t0)
		ebreak
	`)
	m := NewMachine(1 << 12)
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err == nil {
		t.Error("out-of-RAM store did not fault")
	}
}

func TestJumpToSelfHalts(t *testing.T) {
	m := run(t, `
		li a0, 1
	self:	j self
	`)
	if m.Reg(10) != 1 {
		t.Error("program state wrong after jump-to-self halt")
	}
}

func TestAsciz(t *testing.T) {
	m := run(t, `
		.data
	msg:	.asciz "Hi"
		.text
		la t0, msg
		lbu a0, 0(t0)
		lbu a1, 1(t0)
		lbu a2, 2(t0)
		ebreak
	`)
	if m.Reg(10) != 'H' || m.Reg(11) != 'i' || m.Reg(12) != 0 {
		t.Errorf("asciz bytes = %d %d %d", m.Reg(10), m.Reg(11), m.Reg(12))
	}
}

func TestAlignDirective(t *testing.T) {
	p := assemble(t, `
		.data
		.byte 1
		.align 2
	w:	.word 7
		.text
		ebreak
	`)
	if p.Symbols["w"] != 4 {
		t.Errorf("aligned word at %d, want 4", p.Symbols["w"])
	}
}

func TestAsmErrors(t *testing.T) {
	cases := []string{
		"bogus a0, a1",
		"add a0, a1",          // missing operand
		"lw a0, 4(q7)",        // bad register
		"beq a0, a1, nowhere", // undefined label
		"li a0",               // missing value
		".data\n.word x",      // bad value
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded", src)
		}
	}
}

func TestVexRiscvModelBasics(t *testing.T) {
	// Independent straight-line code: CPI → 1.
	src := "li a0, 1\nli a1, 2\nli a2, 3\nli a3, 4\nli a4, 5\nli t0, 1\nli t1, 2\nli t2, 3\nebreak\n"
	m := NewMachine(1 << 12)
	vex := NewVexRiscvModel()
	m.Observe(vex)
	if err := m.Load(assemble(t, src)); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// 9 instructions, no hazards: 9 slots + 4 drain.
	if vex.TotalCycles() != 13 {
		t.Errorf("vex cycles = %d, want 13", vex.TotalCycles())
	}

	// A dependent chain stalls 2 per link.
	src = "li a0, 1\nadd a0, a0, a0\nadd a0, a0, a0\nebreak\n"
	m = NewMachine(1 << 12)
	vex = NewVexRiscvModel()
	m.Observe(vex)
	m.Load(assemble(t, src))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// slots: li@1, add@4 (ready 1+3), add@7, ebreak@8; +4 drain = 12.
	if vex.TotalCycles() != 12 {
		t.Errorf("dependent chain cycles = %d, want 12", vex.TotalCycles())
	}
}

func TestPicoModelTable(t *testing.T) {
	src := `
		li t0, 4          # ALU: 3
		lw t1, 0(zero)    # load: 5
		sw t1, 4(zero)    # store: 5
		beq t1, t1, next  # taken: 5
	next:	ebreak            # sys → ALU: 3
	`
	m := NewMachine(1 << 12)
	pico := NewPicoRV32Model()
	m.Observe(pico)
	m.Load(assemble(t, src))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := pico.TotalCycles(); got != 21 {
		t.Errorf("pico cycles = %d, want 21", got)
	}
}

func TestPicoSerialShift(t *testing.T) {
	src := "li t0, 1\nslli t1, t0, 16\nebreak\n"
	m := NewMachine(1 << 12)
	pico := NewPicoRV32Model()
	pico.SerialShift = true
	m.Observe(pico)
	m.Load(assemble(t, src))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// li 3 + shift (3+16) + ebreak 3 = 25.
	if got := pico.TotalCycles(); got != 25 {
		t.Errorf("serial shift cycles = %d, want 25", got)
	}
}

func TestDualModelObservation(t *testing.T) {
	// One run feeds both models.
	src := "li a0, 7\nadd a0, a0, a0\nebreak\n"
	m := NewMachine(1 << 12)
	vex, pico := NewVexRiscvModel(), NewPicoRV32Model()
	m.Observe(vex)
	m.Observe(pico)
	m.Load(assemble(t, src))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if vex.TotalCycles() == 0 || pico.TotalCycles() == 0 {
		t.Error("models not fed")
	}
	if m.Reg(10) != 14 {
		t.Error("architectural result wrong")
	}
}

func TestARMv6MEstimator(t *testing.T) {
	p := assemble(t, `
		li t0, 5          # small imm: 1 halfword
		li t1, 0x12345    # wide: folded pair = 3 halfwords
		add t2, t0, t1    # distinct dest: 2
		add t0, t0, t1    # in-place: 1
		lw a0, 0(t0)      # 1
		beq t0, t1, x     # cmp+bcc: 2
	x:	beqz t0, y        # vs zero: 1
	y:	ebreak            # 1
	`)
	bits := EstimateProgram(p)
	// halfwords: 1 + 3 + 2 + 1 + 1 + 2 + 1 + 1 = 12 → 192 bits.
	if bits != 192 {
		t.Errorf("ARMv6-M estimate = %d bits, want 192", bits)
	}
	// The estimate must be below the RV32I size (Fig. 5 ordering) for
	// realistic code.
	if bits >= p.TextBits() {
		t.Errorf("ARMv6-M (%d) not smaller than RV32I (%d)", bits, p.TextBits())
	}
}

func TestTextBits(t *testing.T) {
	p := assemble(t, "nop\nnop\nebreak")
	if p.TextBits() != 96 {
		t.Errorf("TextBits = %d, want 96", p.TextBits())
	}
}
