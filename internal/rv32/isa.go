// Package rv32 implements the binary baseline substrate the paper compares
// against (§V, Tables II/III and Fig. 5): the RV32I base ISA (40
// instructions) plus the M extension (48 total, the PicoRV32 RV32IM
// configuration), a two-pass assembler, an instruction-accurate simulator,
// and trace-driven cycle models of the two baseline cores:
//
//   - VexRiscv-like: 5-stage in-order pipeline in its small interlocked
//     (no-bypass) configuration, the published ≈0.65 DMIPS/MHz operating
//     point the paper cites, and
//   - PicoRV32-like: the non-pipelined multi-cycle core, using the
//     per-instruction cycle costs from the PicoRV32 documentation
//     (≈0.31 DMIPS/MHz, CPI ≈ 4).
//
// An ARMv6-M (Thumb-1) code-size estimator provides the third column of
// Fig. 5. See DESIGN.md §4 for the substitution rationale.
package rv32

import "fmt"

// Op identifies an RV32IM instruction.
type Op uint8

// RV32I base instructions (40) followed by the M extension (8).
const (
	LUI Op = iota
	AUIPC
	JAL
	JALR
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU
	LB
	LH
	LW
	LBU
	LHU
	SB
	SH
	SW
	ADDI
	SLTI
	SLTIU
	XORI
	ORI
	ANDI
	SLLI
	SRLI
	SRAI
	ADD
	SUB
	SLL
	SLT
	SLTU
	XOR
	SRL
	SRA
	OR
	AND
	FENCE
	ECALL
	EBREAK

	// M extension.
	MUL
	MULH
	MULHSU
	MULHU
	DIV
	DIVU
	REM
	REMU

	NumOps
)

// NumRV32I is the instruction count of the base ISA, the Table II figure
// for VexRiscv; NumRV32IM is the PicoRV32 figure.
const (
	NumRV32I  = 40
	NumRV32IM = 48
)

var opNames = [NumOps]string{
	"lui", "auipc", "jal", "jalr",
	"beq", "bne", "blt", "bge", "bltu", "bgeu",
	"lb", "lh", "lw", "lbu", "lhu", "sb", "sh", "sw",
	"addi", "slti", "sltiu", "xori", "ori", "andi", "slli", "srli", "srai",
	"add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
	"fence", "ecall", "ebreak",
	"mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu",
}

// String returns the assembler mnemonic.
func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// OpByName maps mnemonics to opcodes.
var OpByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for i, n := range opNames {
		m[n] = Op(i)
	}
	return m
}()

// Format classes, mirroring the RISC-V instruction formats.
type Format uint8

const (
	FmtR   Format = iota // rd, rs1, rs2
	FmtI                 // rd, rs1, imm (also loads: rd, imm(rs1))
	FmtS                 // rs2, imm(rs1)
	FmtB                 // rs1, rs2, target
	FmtU                 // rd, imm20
	FmtJ                 // rd, target
	FmtSys               // no operands
)

// Fmt returns the encoding format of op.
func (op Op) Fmt() Format {
	switch op {
	case LUI, AUIPC:
		return FmtU
	case JAL:
		return FmtJ
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return FmtB
	case SB, SH, SW:
		return FmtS
	case FENCE, ECALL, EBREAK:
		return FmtSys
	case ADD, SUB, SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND,
		MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU:
		return FmtR
	default:
		return FmtI
	}
}

// IsLoad reports whether op reads data memory.
func (op Op) IsLoad() bool { return op >= LB && op <= LHU }

// IsStore reports whether op writes data memory.
func (op Op) IsStore() bool { return op >= SB && op <= SW }

// IsBranch reports whether op is a conditional branch.
func (op Op) IsBranch() bool { return op >= BEQ && op <= BGEU }

// IsMul reports whether op belongs to the M extension.
func (op Op) IsMul() bool { return op >= MUL }

// IsShift reports whether op is a shift (serial on PicoRV32 without the
// barrel shifter).
func (op Op) IsShift() bool {
	switch op {
	case SLL, SRL, SRA, SLLI, SRLI, SRAI:
		return true
	}
	return false
}

// WritesRd reports whether op writes a destination register.
func (op Op) WritesRd() bool {
	switch op.Fmt() {
	case FmtS, FmtB, FmtSys:
		return false
	}
	return true
}

// ReadsRs1 and ReadsRs2 report the source-register usage.
func (op Op) ReadsRs1() bool {
	switch op.Fmt() {
	case FmtU, FmtJ, FmtSys:
		return false
	}
	return true
}

func (op Op) ReadsRs2() bool {
	switch op.Fmt() {
	case FmtR, FmtS, FmtB:
		return true
	}
	return false
}

// Reg is an RV32 register index x0..x31.
type Reg uint8

// NumRegs is the architectural register count — the paper's register
// renaming (§III-A) maps these 32 onto ART-9's 9.
const NumRegs = 32

var abiNames = [NumRegs]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// String returns the ABI name of r.
func (r Reg) String() string {
	if r < NumRegs {
		return abiNames[r]
	}
	return fmt.Sprintf("x%d", uint8(r))
}

// ParseReg accepts both "x7" numeric and ABI names ("t2", "fp"...).
func ParseReg(s string) (Reg, error) {
	if len(s) >= 2 && (s[0] == 'x' || s[0] == 'X') {
		n := 0
		for _, c := range s[1:] {
			if c < '0' || c > '9' {
				n = -1
				break
			}
			n = n*10 + int(c-'0')
		}
		if n >= 0 && n < NumRegs {
			return Reg(n), nil
		}
	}
	if s == "fp" { // frame pointer alias
		return 8, nil
	}
	for i, n := range abiNames {
		if n == s {
			return Reg(i), nil
		}
	}
	return 0, fmt.Errorf("rv32: invalid register %q", s)
}

// Inst is a decoded RV32IM instruction.
type Inst struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int32
}

// String disassembles i.
func (i Inst) String() string {
	switch i.Op.Fmt() {
	case FmtR:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs1, i.Rs2)
	case FmtI:
		if i.Op.IsLoad() || i.Op == JALR {
			return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rd, i.Imm, i.Rs1)
		}
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case FmtS:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rs2, i.Imm, i.Rs1)
	case FmtB:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case FmtU:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	case FmtJ:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	default:
		return i.Op.String()
	}
}
