package rv32

import "fmt"

// Machine is an instruction-accurate RV32IM simulator with a Harvard
// layout: text indexed by PC/4, a byte-addressed data RAM from address 0.
// It produces the retired-instruction trace events the cycle models
// consume, so one run yields both VexRiscv-like and PicoRV32-like cycle
// counts.
type Machine struct {
	PC   uint32
	X    [NumRegs]uint32
	Text []Inst
	RAM  []byte

	MaxSteps int

	// Stats.
	Retired uint64
	Loads   uint64
	Stores  uint64
	Taken   uint64
	NotTkn  uint64

	// Timing observers, attached via Observe.
	observers []Observer
}

// Observer consumes the retired instruction stream for timing models.
type Observer interface {
	// Retire is called for every architecturally retired instruction.
	// taken reports branch outcome; shamt the effective shift amount.
	Retire(in Inst, taken bool, shamt uint32)
}

// NewMachine builds a machine with ramBytes of data memory.
func NewMachine(ramBytes int) *Machine {
	return &Machine{RAM: make([]byte, ramBytes), MaxSteps: 200_000_000}
}

// Load initialises the machine from an assembled program.
func (m *Machine) Load(p *Program) error {
	if len(p.Data) > len(m.RAM) {
		return fmt.Errorf("rv32: data image %d bytes exceeds RAM %d", len(p.Data), len(m.RAM))
	}
	m.Text = p.Insts
	copy(m.RAM, p.Data)
	m.PC = 0
	m.X = [NumRegs]uint32{}
	return nil
}

// Observe attaches a timing observer.
func (m *Machine) Observe(o Observer) { m.observers = append(m.observers, o) }

// Reg returns x[r].
func (m *Machine) Reg(r Reg) uint32 { return m.X[r] }

func (m *Machine) load(addr uint32, size int, signed bool) (uint32, error) {
	if int(addr)+size > len(m.RAM) {
		return 0, fmt.Errorf("rv32: load at %#x out of RAM", addr)
	}
	if addr%uint32(size) != 0 {
		return 0, fmt.Errorf("rv32: misaligned %d-byte load at %#x", size, addr)
	}
	var v uint32
	for k := size - 1; k >= 0; k-- {
		v = v<<8 | uint32(m.RAM[addr+uint32(k)])
	}
	if signed {
		shift := 32 - 8*size
		v = uint32(int32(v<<shift) >> shift)
	}
	m.Loads++
	return v, nil
}

func (m *Machine) store(addr uint32, size int, v uint32) error {
	if int(addr)+size > len(m.RAM) {
		return fmt.Errorf("rv32: store at %#x out of RAM", addr)
	}
	if addr%uint32(size) != 0 {
		return fmt.Errorf("rv32: misaligned %d-byte store at %#x", size, addr)
	}
	for k := 0; k < size; k++ {
		m.RAM[addr+uint32(k)] = byte(v >> (8 * k))
	}
	m.Stores++
	return nil
}

// Step executes one instruction; done=true on halt (EBREAK/ECALL or
// jump-to-self).
func (m *Machine) Step() (done bool, err error) {
	idx := m.PC / 4
	if m.PC%4 != 0 || int(idx) >= len(m.Text) {
		return false, fmt.Errorf("rv32: PC %#x outside text", m.PC)
	}
	in := m.Text[idx]
	rs1, rs2 := m.X[in.Rs1], m.X[in.Rs2]
	nextPC := m.PC + 4
	var rd uint32
	wb := in.Op.WritesRd()
	taken := false
	var shamt uint32

	switch in.Op {
	case LUI:
		rd = uint32(in.Imm) << 12
	case AUIPC:
		rd = m.PC + uint32(in.Imm)<<12
	case JAL:
		rd = m.PC + 4
		nextPC = m.PC + uint32(in.Imm)
		taken = true
	case JALR:
		rd = m.PC + 4
		nextPC = (rs1 + uint32(in.Imm)) &^ 1
		taken = true
	case BEQ:
		taken = rs1 == rs2
	case BNE:
		taken = rs1 != rs2
	case BLT:
		taken = int32(rs1) < int32(rs2)
	case BGE:
		taken = int32(rs1) >= int32(rs2)
	case BLTU:
		taken = rs1 < rs2
	case BGEU:
		taken = rs1 >= rs2
	case LB:
		rd, err = m.load(rs1+uint32(in.Imm), 1, true)
	case LH:
		rd, err = m.load(rs1+uint32(in.Imm), 2, true)
	case LW:
		rd, err = m.load(rs1+uint32(in.Imm), 4, false)
	case LBU:
		rd, err = m.load(rs1+uint32(in.Imm), 1, false)
	case LHU:
		rd, err = m.load(rs1+uint32(in.Imm), 2, false)
	case SB:
		err = m.store(rs1+uint32(in.Imm), 1, rs2)
	case SH:
		err = m.store(rs1+uint32(in.Imm), 2, rs2)
	case SW:
		err = m.store(rs1+uint32(in.Imm), 4, rs2)
	case ADDI:
		rd = rs1 + uint32(in.Imm)
	case SLTI:
		if int32(rs1) < in.Imm {
			rd = 1
		}
	case SLTIU:
		if rs1 < uint32(in.Imm) {
			rd = 1
		}
	case XORI:
		rd = rs1 ^ uint32(in.Imm)
	case ORI:
		rd = rs1 | uint32(in.Imm)
	case ANDI:
		rd = rs1 & uint32(in.Imm)
	case SLLI:
		shamt = uint32(in.Imm) & 31
		rd = rs1 << shamt
	case SRLI:
		shamt = uint32(in.Imm) & 31
		rd = rs1 >> shamt
	case SRAI:
		shamt = uint32(in.Imm) & 31
		rd = uint32(int32(rs1) >> shamt)
	case ADD:
		rd = rs1 + rs2
	case SUB:
		rd = rs1 - rs2
	case SLL:
		shamt = rs2 & 31
		rd = rs1 << shamt
	case SLT:
		if int32(rs1) < int32(rs2) {
			rd = 1
		}
	case SLTU:
		if rs1 < rs2 {
			rd = 1
		}
	case XOR:
		rd = rs1 ^ rs2
	case SRL:
		shamt = rs2 & 31
		rd = rs1 >> shamt
	case SRA:
		shamt = rs2 & 31
		rd = uint32(int32(rs1) >> shamt)
	case OR:
		rd = rs1 | rs2
	case AND:
		rd = rs1 & rs2
	case FENCE:
		// no-op in this memory model
	case ECALL, EBREAK:
		m.Retired++
		m.notify(in, false, 0)
		return true, nil
	case MUL:
		rd = rs1 * rs2
	case MULH:
		rd = uint32(int64(int32(rs1)) * int64(int32(rs2)) >> 32)
	case MULHSU:
		rd = uint32(int64(int32(rs1)) * int64(rs2) >> 32)
	case MULHU:
		rd = uint32(uint64(rs1) * uint64(rs2) >> 32)
	case DIV:
		switch {
		case rs2 == 0:
			rd = ^uint32(0)
		case int32(rs1) == -1<<31 && int32(rs2) == -1:
			rd = rs1
		default:
			rd = uint32(int32(rs1) / int32(rs2))
		}
	case DIVU:
		if rs2 == 0 {
			rd = ^uint32(0)
		} else {
			rd = rs1 / rs2
		}
	case REM:
		switch {
		case rs2 == 0:
			rd = rs1
		case int32(rs1) == -1<<31 && int32(rs2) == -1:
			rd = 0
		default:
			rd = uint32(int32(rs1) % int32(rs2))
		}
	case REMU:
		if rs2 == 0 {
			rd = rs1
		} else {
			rd = rs1 % rs2
		}
	default:
		return false, fmt.Errorf("rv32: unimplemented op %v", in.Op)
	}
	if err != nil {
		return false, fmt.Errorf("rv32: at PC %#x: %w", m.PC, err)
	}
	if in.Op.IsBranch() {
		if taken {
			nextPC = m.PC + uint32(in.Imm)
			m.Taken++
		} else {
			m.NotTkn++
		}
	}
	if wb && in.Rd != 0 {
		m.X[in.Rd] = rd
	}
	m.Retired++
	m.notify(in, taken, shamt)
	if nextPC == m.PC {
		return true, nil // jump-to-self halt idiom
	}
	m.PC = nextPC
	return false, nil
}

func (m *Machine) notify(in Inst, taken bool, shamt uint32) {
	for _, o := range m.observers {
		o.Retire(in, taken, shamt)
	}
}

// Run executes until halt.
func (m *Machine) Run() error {
	for steps := 0; steps < m.MaxSteps; steps++ {
		done, err := m.Step()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
	return fmt.Errorf("rv32: no halt within %d steps", m.MaxSteps)
}
