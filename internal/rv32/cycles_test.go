package rv32

import "testing"

func runWithModels(t *testing.T, src string) (*VexRiscvModel, *PicoRV32Model) {
	t.Helper()
	m := NewMachine(1 << 14)
	vex, pico := NewVexRiscvModel(), NewPicoRV32Model()
	m.Observe(vex)
	m.Observe(pico)
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return vex, pico
}

func TestVexBranchPenalty(t *testing.T) {
	// Taken branch: +2 flush; not-taken: free.
	vexT, _ := runWithModels(t, `
		li t0, 1
		beq t0, t0, next   # taken
	next:	ebreak
	`)
	vexN, _ := runWithModels(t, `
		li t0, 1
		bne t0, t0, never  # not taken
		ebreak
	never:	ebreak
	`)
	// Interlock first (beq reads t0, ready at 1+3=4), then the taken
	// penalty: li@1, beq@4(+2), ebreak@7 → 7+4 = 11.
	// Not taken: li@1, bne@4, ebreak@5 → 5+4 = 9.
	if vexT.TotalCycles() != 11 {
		t.Errorf("taken-branch cycles = %d, want 11", vexT.TotalCycles())
	}
	if vexN.TotalCycles() != 9 {
		t.Errorf("not-taken cycles = %d, want 9", vexN.TotalCycles())
	}
	if vexT.TotalCycles()-vexN.TotalCycles() != 2 {
		t.Error("taken-branch penalty is not 2 cycles")
	}
}

func TestVexMulDivLatency(t *testing.T) {
	vex, _ := runWithModels(t, `
		li t0, 6
		li t1, 7
		mul t2, t0, t1
		ebreak
	`)
	// li@1, li@2, mul waits for t1 (ready@5) then +4 extra → next
	// issue @10, ebreak@10 → 10+4 = 14.
	if vex.TotalCycles() != 14 {
		t.Errorf("mul cycles = %d, want 14", vex.TotalCycles())
	}
	vexd, _ := runWithModels(t, `
		li t0, 42
		li t1, 7
		div t2, t0, t1
		ebreak
	`)
	// div@5 + 33 extra → ebreak@39 → 39+4 = 43.
	if vexd.TotalCycles() != 43 {
		t.Errorf("div cycles = %d, want 43", vexd.TotalCycles())
	}
}

func TestVexLoadInterlock(t *testing.T) {
	// lw then immediate use: no bypass → consumer waits for writeback.
	vex, _ := runWithModels(t, `
		.data
	v:	.word 5
		.text
		la t0, v
		lw t1, 0(t0)
		addi t1, t1, 1
		ebreak
	`)
	// la@1, lw@2(interlock on t0: ready@1+3=4 → lw@4), addi: t1 ready@7
	// → addi@7, ebreak@8 → 12.
	if vex.TotalCycles() != 12 {
		t.Errorf("load interlock cycles = %d, want 12", vex.TotalCycles())
	}
}

func TestPicoJalrAndJumpCosts(t *testing.T) {
	_, pico := runWithModels(t, `
		call fn            # jal: 3
		ebreak             # 3
	fn:	ret                # jalr: 6
	`)
	if got := pico.TotalCycles(); got != 12 {
		t.Errorf("pico call/ret cycles = %d, want 12", got)
	}
}

func TestPicoMulConfiguration(t *testing.T) {
	// The shipped configuration uses the sequential multiplier.
	_, pico := runWithModels(t, `
		li t0, 3
		li t1, 4
		mul t2, t0, t1
		ebreak
	`)
	// 3 + 3 + 35 + 3 = 44.
	if got := pico.TotalCycles(); got != 44 {
		t.Errorf("pico mul cycles = %d, want 44", got)
	}
	// Fast-multiply ablation.
	m := NewMachine(1 << 12)
	fast := NewPicoRV32Model()
	fast.Mul = 4
	m.Observe(fast)
	p, _ := Assemble("li t0, 3\nli t1, 4\nmul t2, t0, t1\nebreak")
	m.Load(p)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := fast.TotalCycles(); got != 13 {
		t.Errorf("fast-mul cycles = %d, want 13", got)
	}
}

func TestModelsEmptyProgram(t *testing.T) {
	vex, pico := runWithModels(t, "ebreak")
	if vex.TotalCycles() != 5 { // 1 slot + 4 drain
		t.Errorf("vex single-instruction cycles = %d, want 5", vex.TotalCycles())
	}
	if pico.TotalCycles() != 3 {
		t.Errorf("pico single-instruction cycles = %d, want 3", pico.TotalCycles())
	}
}

func TestVexZeroRegisterNeverInterlocks(t *testing.T) {
	// Writes to x0 must not create dependencies.
	vex, _ := runWithModels(t, `
		add zero, zero, zero
		add t0, zero, zero
		ebreak
	`)
	// No interlocks: 3 slots + 4 = 7.
	if vex.TotalCycles() != 7 {
		t.Errorf("x0 interlock: %d cycles, want 7", vex.TotalCycles())
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Rd: 10, Rs1: 11, Rs2: 12}, "add a0, a1, a2"},
		{Inst{Op: ADDI, Rd: 10, Rs1: 0, Imm: 5}, "addi a0, zero, 5"},
		{Inst{Op: LW, Rd: 5, Rs1: 2, Imm: 8}, "lw t0, 8(sp)"},
		{Inst{Op: SW, Rs1: 2, Rs2: 5, Imm: -4}, "sw t0, -4(sp)"},
		{Inst{Op: BEQ, Rs1: 5, Rs2: 6, Imm: 16}, "beq t0, t1, 16"},
		{Inst{Op: JAL, Rd: 1, Imm: 64}, "jal ra, 64"},
		{Inst{Op: LUI, Rd: 7, Imm: 9}, "lui t2, 9"},
		{Inst{Op: EBREAK}, "ebreak"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}
