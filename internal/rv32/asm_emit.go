package rv32

import (
	"fmt"
	"strconv"
	"strings"
)

// dataSize returns the byte size of a data-section statement. For .org it
// returns the gap from cur (already validated non-negative by the caller's
// layout loop).
func (a *rvAsm) dataSize(st *rvStmt, cur int32) (int32, error) {
	switch st.mnemonic {
	case ".word":
		return int32(4 * len(st.args)), nil
	case ".half":
		return int32(2 * len(st.args)), nil
	case ".byte":
		return int32(len(st.args)), nil
	case ".space":
		if len(st.args) != 1 {
			return 0, fmt.Errorf("line %d: .space wants one size", st.line)
		}
		v, err := a.evalInt(st.args[0], st.line)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("line %d: bad .space size", st.line)
		}
		return v, nil
	case ".asciz":
		if len(st.args) != 1 {
			return 0, fmt.Errorf("line %d: .asciz wants one string", st.line)
		}
		s, err := strconv.Unquote(st.args[0])
		if err != nil {
			return 0, fmt.Errorf("line %d: bad string: %v", st.line, err)
		}
		return int32(len(s) + 1), nil
	case ".align":
		if len(st.args) != 1 {
			return 0, fmt.Errorf("line %d: .align wants one value", st.line)
		}
		n, err := a.evalInt(st.args[0], st.line)
		if err != nil || n < 0 || n > 12 {
			return 0, fmt.Errorf("line %d: bad .align", st.line)
		}
		size := int32(1) << n
		return (size - cur%size) % size, nil
	case ".org":
		if len(st.args) != 1 {
			return 0, fmt.Errorf("line %d: .org wants one address", st.line)
		}
		v, err := a.evalInt(st.args[0], st.line)
		if err != nil {
			return 0, err
		}
		if v < cur {
			return 0, fmt.Errorf("line %d: .org %d before current %d", st.line, v, cur)
		}
		return v - cur, nil
	}
	return 0, fmt.Errorf("line %d: %q not valid in .data", st.line, st.mnemonic)
}

// emitData appends the statement's bytes to the image.
func (a *rvAsm) emitData(st *rvStmt, data []byte, cur int32) ([]byte, int32, error) {
	put := func(v int32, n int) {
		for k := 0; k < n; k++ {
			data = append(data, byte(v>>(8*k)))
		}
		cur += int32(n)
	}
	switch st.mnemonic {
	case ".word", ".half", ".byte":
		n := map[string]int{".word": 4, ".half": 2, ".byte": 1}[st.mnemonic]
		for _, arg := range st.args {
			v, err := a.evalSym(arg, st.line)
			if err != nil {
				return data, cur, err
			}
			put(v, n)
		}
	case ".space", ".align", ".org":
		sz, err := a.dataSize(st, cur)
		if err != nil {
			return data, cur, err
		}
		for k := int32(0); k < sz; k++ {
			data = append(data, 0)
		}
		cur += sz
	case ".asciz":
		s, err := strconv.Unquote(st.args[0])
		if err != nil {
			return data, cur, err
		}
		data = append(data, s...)
		data = append(data, 0)
		cur += int32(len(s) + 1)
	}
	return data, cur, nil
}

// textSize returns how many machine instructions a text statement expands
// to. It must agree exactly with emitText.
func (a *rvAsm) textSize(st *rvStmt) (int32, error) {
	switch st.mnemonic {
	case "li", "la":
		if len(st.args) != 2 {
			return 0, fmt.Errorf("line %d: %s wants rd, value", st.line, st.mnemonic)
		}
		v, err := a.evalDataSym(st.args[1], st.line)
		if err != nil {
			return 0, err
		}
		return sizeLI(v), nil
	case "call":
		return 1, nil // jal ra, target (±1 MiB covers the suite)
	case ".org":
		return 0, fmt.Errorf("line %d: .org not supported in .text", st.line)
	}
	return 1, nil
}

// evalDataSym evaluates constants and *data* labels (available before text
// layout). Text labels are rejected here to keep pseudo sizes stable.
func (a *rvAsm) evalDataSym(s string, line int) (int32, error) {
	if v, ok := a.labels[s]; ok {
		return v, nil
	}
	return a.evalInt(s, line)
}

// parseMem parses "imm(reg)" or "(reg)" or "imm" address syntax.
func (a *rvAsm) parseMem(s string, line int) (Reg, int32, error) {
	open := strings.Index(s, "(")
	if open < 0 {
		v, err := a.evalSym(s, line)
		return 0, v, err // absolute: offset from x0
	}
	if !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("line %d: bad address %q", line, s)
	}
	r, err := ParseReg(strings.TrimSpace(s[open+1 : len(s)-1]))
	if err != nil {
		return 0, 0, fmt.Errorf("line %d: %v", line, err)
	}
	offStr := strings.TrimSpace(s[:open])
	var off int32
	if offStr != "" {
		off, err = a.evalSym(offStr, line)
		if err != nil {
			return 0, 0, err
		}
	}
	return r, off, nil
}

// emitText appends the statement's instructions to the program. idx is the
// statement's laid-out instruction index (the PC in words).
func (a *rvAsm) emitText(p *Program, st *rvStmt, idx int32) error {
	emit := func(in Inst) {
		p.Insts = append(p.Insts, in)
		p.Lines = append(p.Lines, st.line)
	}
	reg := func(s string) (Reg, error) {
		r, err := ParseReg(s)
		if err != nil {
			return 0, fmt.Errorf("line %d: %v", st.line, err)
		}
		return r, nil
	}
	// branchTarget resolves a label or numeric word offset into a byte
	// offset relative to the instruction at index idx+slot.
	branchTarget := func(s string, slot int32) (int32, error) {
		if v, ok := a.labels[s]; ok {
			return (v - (idx + slot)) * 4, nil
		}
		v, err := a.evalInt(s, st.line)
		if err != nil {
			return 0, err
		}
		return v * 4, nil // numeric operands are word offsets
	}
	args := st.args
	argN := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("line %d: %s wants %d operands, got %d", st.line, st.mnemonic, n, len(args))
		}
		return nil
	}

	switch st.mnemonic {
	case "nop":
		emit(Inst{Op: ADDI})
		return nil
	case "halt":
		emit(Inst{Op: EBREAK})
		return nil
	case "li":
		if err := argN(2); err != nil {
			return err
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		v, err := a.evalDataSym(args[1], st.line)
		if err != nil {
			return err
		}
		emitLI(emit, rd, v)
		return nil
	case "la":
		if err := argN(2); err != nil {
			return err
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		v, err := a.evalDataSym(args[1], st.line)
		if err != nil {
			return err
		}
		emitLI(emit, rd, v)
		return nil
	case "mv":
		if err := argN(2); err != nil {
			return err
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		rs, err := reg(args[1])
		if err != nil {
			return err
		}
		emit(Inst{Op: ADDI, Rd: rd, Rs1: rs})
		return nil
	case "not":
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		rs, err := reg(args[1])
		if err != nil {
			return err
		}
		emit(Inst{Op: XORI, Rd: rd, Rs1: rs, Imm: -1})
		return nil
	case "neg":
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		rs, err := reg(args[1])
		if err != nil {
			return err
		}
		emit(Inst{Op: SUB, Rd: rd, Rs2: rs})
		return nil
	case "seqz":
		rd, _ := reg(args[0])
		rs, err := reg(args[1])
		if err != nil {
			return err
		}
		emit(Inst{Op: SLTIU, Rd: rd, Rs1: rs, Imm: 1})
		return nil
	case "snez":
		rd, _ := reg(args[0])
		rs, err := reg(args[1])
		if err != nil {
			return err
		}
		emit(Inst{Op: SLTU, Rd: rd, Rs1: 0, Rs2: rs})
		return nil
	case "j":
		if err := argN(1); err != nil {
			return err
		}
		off, err := branchTarget(args[0], 0)
		if err != nil {
			return err
		}
		emit(Inst{Op: JAL, Rd: 0, Imm: off})
		return nil
	case "jr":
		rs, err := reg(args[0])
		if err != nil {
			return err
		}
		emit(Inst{Op: JALR, Rd: 0, Rs1: rs})
		return nil
	case "ret":
		emit(Inst{Op: JALR, Rd: 0, Rs1: 1})
		return nil
	case "call":
		if err := argN(1); err != nil {
			return err
		}
		off, err := branchTarget(args[0], 0)
		if err != nil {
			return err
		}
		emit(Inst{Op: JAL, Rd: 1, Imm: off})
		return nil
	case "beqz", "bnez", "bltz", "bgez", "bgtz", "blez":
		if err := argN(2); err != nil {
			return err
		}
		rs, err := reg(args[0])
		if err != nil {
			return err
		}
		off, err := branchTarget(args[1], 0)
		if err != nil {
			return err
		}
		switch st.mnemonic {
		case "beqz":
			emit(Inst{Op: BEQ, Rs1: rs, Imm: off})
		case "bnez":
			emit(Inst{Op: BNE, Rs1: rs, Imm: off})
		case "bltz":
			emit(Inst{Op: BLT, Rs1: rs, Imm: off})
		case "bgez":
			emit(Inst{Op: BGE, Rs1: rs, Imm: off})
		case "bgtz":
			emit(Inst{Op: BLT, Rs1: 0, Rs2: rs, Imm: off})
		case "blez":
			emit(Inst{Op: BGE, Rs1: 0, Rs2: rs, Imm: off})
		}
		return nil
	case "bgt", "ble", "bgtu", "bleu":
		if err := argN(3); err != nil {
			return err
		}
		rs, err := reg(args[0])
		if err != nil {
			return err
		}
		rt, err := reg(args[1])
		if err != nil {
			return err
		}
		off, err := branchTarget(args[2], 0)
		if err != nil {
			return err
		}
		// Swap operands: bgt a,b == blt b,a.
		switch st.mnemonic {
		case "bgt":
			emit(Inst{Op: BLT, Rs1: rt, Rs2: rs, Imm: off})
		case "ble":
			emit(Inst{Op: BGE, Rs1: rt, Rs2: rs, Imm: off})
		case "bgtu":
			emit(Inst{Op: BLTU, Rs1: rt, Rs2: rs, Imm: off})
		case "bleu":
			emit(Inst{Op: BGEU, Rs1: rt, Rs2: rs, Imm: off})
		}
		return nil
	}

	op, ok := OpByName[st.mnemonic]
	if !ok {
		return fmt.Errorf("line %d: unknown mnemonic %q", st.line, st.mnemonic)
	}
	in := Inst{Op: op}
	switch op.Fmt() {
	case FmtR:
		if err := argN(3); err != nil {
			return err
		}
		var err error
		if in.Rd, err = ParseReg(args[0]); err != nil {
			return fmt.Errorf("line %d: %v", st.line, err)
		}
		if in.Rs1, err = ParseReg(args[1]); err != nil {
			return fmt.Errorf("line %d: %v", st.line, err)
		}
		if in.Rs2, err = ParseReg(args[2]); err != nil {
			return fmt.Errorf("line %d: %v", st.line, err)
		}
	case FmtI:
		if op.IsLoad() || op == JALR {
			if op == JALR && len(args) == 1 {
				// "jalr rs" shorthand: rd=ra.
				rs, err := ParseReg(args[0])
				if err != nil {
					return fmt.Errorf("line %d: %v", st.line, err)
				}
				in.Rd, in.Rs1 = 1, rs
				break
			}
			if err := argN(2); err != nil {
				return err
			}
			var err error
			if in.Rd, err = ParseReg(args[0]); err != nil {
				return fmt.Errorf("line %d: %v", st.line, err)
			}
			if in.Rs1, in.Imm, err = a.parseMem(args[1], st.line); err != nil {
				return err
			}
			break
		}
		if err := argN(3); err != nil {
			return err
		}
		var err error
		if in.Rd, err = ParseReg(args[0]); err != nil {
			return fmt.Errorf("line %d: %v", st.line, err)
		}
		if in.Rs1, err = ParseReg(args[1]); err != nil {
			return fmt.Errorf("line %d: %v", st.line, err)
		}
		if in.Imm, err = a.evalSym(args[2], st.line); err != nil {
			return err
		}
	case FmtS:
		if err := argN(2); err != nil {
			return err
		}
		var err error
		if in.Rs2, err = ParseReg(args[0]); err != nil {
			return fmt.Errorf("line %d: %v", st.line, err)
		}
		if in.Rs1, in.Imm, err = a.parseMem(args[1], st.line); err != nil {
			return err
		}
	case FmtB:
		if err := argN(3); err != nil {
			return err
		}
		var err error
		if in.Rs1, err = ParseReg(args[0]); err != nil {
			return fmt.Errorf("line %d: %v", st.line, err)
		}
		if in.Rs2, err = ParseReg(args[1]); err != nil {
			return fmt.Errorf("line %d: %v", st.line, err)
		}
		if in.Imm, err = branchTarget(args[2], 0); err != nil {
			return err
		}
	case FmtU:
		if err := argN(2); err != nil {
			return err
		}
		var err error
		if in.Rd, err = ParseReg(args[0]); err != nil {
			return fmt.Errorf("line %d: %v", st.line, err)
		}
		if in.Imm, err = a.evalSym(args[1], st.line); err != nil {
			return err
		}
	case FmtJ:
		if err := argN(2); err != nil {
			return err
		}
		var err error
		if in.Rd, err = ParseReg(args[0]); err != nil {
			return fmt.Errorf("line %d: %v", st.line, err)
		}
		if in.Imm, err = branchTarget(args[1], 0); err != nil {
			return err
		}
	case FmtSys:
		if err := argN(0); err != nil {
			return err
		}
	}
	emit(in)
	return nil
}

// sizeLI returns the expansion length of "li rd, v"; it must agree with
// emitLI.
func sizeLI(v int32) int32 {
	if fitsSigned(v, 12) || v&0xfff == 0 {
		return 1
	}
	return 2
}

// emitLI expands "li rd, v" into the canonical lui/addi pair.
func emitLI(emit func(Inst), rd Reg, v int32) {
	if fitsSigned(v, 12) {
		emit(Inst{Op: ADDI, Rd: rd, Imm: v})
		return
	}
	hi := (v + 0x800) >> 12 & 0xfffff
	lo := v - hi<<12
	emit(Inst{Op: LUI, Rd: rd, Imm: hi})
	if lo != 0 {
		emit(Inst{Op: ADDI, Rd: rd, Rs1: rd, Imm: lo})
	}
}
