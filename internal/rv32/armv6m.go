package rv32

// ARMv6-M (Thumb-1) code-size estimator for the Fig. 5 comparison. The
// paper compiled the benchmarks for ARMv6-M with 16-bit instructions [18];
// with no ARM toolchain available offline we estimate the Thumb-1
// instruction count from the RV32 instruction stream (DESIGN.md §4,
// substitution 4). The estimate is per-instruction:
//
//   - most ALU/load/store/branch instructions map 1:1 onto 16-bit Thumb
//     encodings (Thumb's 2-operand ALU and the low-register forms cover the
//     compiler patterns our suite uses);
//   - wide immediates cost an extra instruction or a literal-pool entry
//     (counted as 2 halfwords: one for the LDR literal, one for the pool);
//   - 3-operand ALU ops with distinct destination need a preparatory MOV
//     with some probability; we charge the deterministic worst case only
//     when Rd differs from both sources;
//   - RV32 SLT/SLTU-style compare-into-register sequences cost CMP + two
//     conditional paths, charged as 3 halfwords (Thumb-1 has no CSEL);
//   - multiplies map to MULS (1); divides call a runtime routine, charged
//     as the BL pair (2) — the library body is shared and not charged per
//     site, matching how code-size tables are usually quoted.
type ARMv6MEstimator struct {
	Halfwords int
}

// Add accounts one RV32 instruction.
func (e *ARMv6MEstimator) Add(in Inst) {
	switch {
	case in.Op == LUI || in.Op == AUIPC:
		// 32-bit constant: LDR literal + pool share ≈ 2 halfwords; but a
		// LUI followed by ADDI (the li expansion) is a single pool load,
		// handled by the caller via EstimateProgram's pairing.
		e.Halfwords += 2
	case in.Op == JAL:
		e.Halfwords++ // B or BL
	case in.Op == JALR:
		e.Halfwords++ // BX/BLX
	case in.Op.IsBranch():
		// Thumb-1: CMP + Bcc. Comparisons against zero fold into the
		// flag-setting ALU op.
		if in.Rs2 == 0 || in.Rs1 == 0 {
			e.Halfwords++
		} else {
			e.Halfwords += 2
		}
	case in.Op.IsLoad() || in.Op.IsStore():
		e.Halfwords++ // LDR/STR with immediate offset
	case in.Op == SLT || in.Op == SLTU || in.Op == SLTI || in.Op == SLTIU:
		e.Halfwords += 3 // CMP; MOV #0/#1 on two paths
	case in.Op == DIV || in.Op == DIVU || in.Op == REM || in.Op == REMU:
		e.Halfwords += 2 // BL __aeabi_idiv
	case in.Op == MUL || in.Op == MULH || in.Op == MULHSU || in.Op == MULHU:
		e.Halfwords++ // MULS
	case in.Op == FENCE || in.Op == ECALL || in.Op == EBREAK:
		e.Halfwords++ // DMB/SVC/BKPT
	case in.Op.Fmt() == FmtI:
		// Immediate ALU: Thumb-1 immediates are 8-bit unsigned on MOVS/
		// ADDS/SUBS/CMP; wider or logical immediates need a literal.
		if immFitsThumb(in) {
			e.Halfwords++
		} else {
			e.Halfwords += 2
		}
	default: // FmtR ALU
		// Thumb-1 ALU is two-operand: charge a MOV when the destination
		// differs from both sources (the compiler usually avoids this).
		if in.Rd != in.Rs1 && in.Rd != in.Rs2 {
			e.Halfwords += 2
		} else {
			e.Halfwords++
		}
	}
}

func immFitsThumb(in Inst) bool {
	switch in.Op {
	case ADDI:
		return in.Imm >= -255 && in.Imm <= 255 // ADDS/SUBS #imm8
	case SLLI, SRLI, SRAI:
		return true // LSLS/LSRS/ASRS #imm5
	case ANDI, ORI, XORI:
		// Thumb-1 has no immediate forms: MOVS r, #imm + op ≈ 2.
		return false
	}
	return false
}

// EstimateProgram returns the estimated ARMv6-M instruction-memory size in
// bits for an assembled RV32 program. It folds li-style LUI+ADDI pairs
// into a single literal-pool load before accounting.
func EstimateProgram(p *Program) int {
	var e ARMv6MEstimator
	for i := 0; i < len(p.Insts); i++ {
		in := p.Insts[i]
		if in.Op == LUI && i+1 < len(p.Insts) {
			next := p.Insts[i+1]
			if next.Op == ADDI && next.Rd == in.Rd && next.Rs1 == in.Rd {
				// One LDR literal + pool entry for the whole constant.
				e.Halfwords += 3 // LDR(1) + 32-bit pool (2)
				i++
				continue
			}
		}
		e.Add(in)
	}
	return e.Halfwords * 16
}
