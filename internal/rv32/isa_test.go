package rv32

import (
	"math/rand"
	"testing"
)

func TestOpCount(t *testing.T) {
	if NumOps != NumRV32IM {
		t.Fatalf("NumOps = %d, want %d", NumOps, NumRV32IM)
	}
	// Table II quotes 40 instructions for the RV32I VexRiscv and 48 for
	// the RV32IM PicoRV32.
	if MUL != NumRV32I {
		t.Fatalf("base ISA has %d instructions before MUL, want %d", MUL, NumRV32I)
	}
}

func TestParseRegForms(t *testing.T) {
	cases := map[string]Reg{
		"zero": 0, "x0": 0, "ra": 1, "sp": 2, "fp": 8, "s0": 8,
		"a0": 10, "a7": 17, "t6": 31, "x31": 31, "t0": 5,
	}
	for s, want := range cases {
		got, err := ParseReg(s)
		if err != nil || got != want {
			t.Errorf("ParseReg(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	for _, bad := range []string{"x32", "q1", "", "a8", "x-1"} {
		if _, err := ParseReg(bad); err == nil {
			t.Errorf("ParseReg(%q) succeeded", bad)
		}
	}
}

// randomRVInst builds a random valid instruction for round-trip testing.
func randomRVInst(rng *rand.Rand) Inst {
	for {
		op := Op(rng.Intn(int(NumOps)))
		in := Inst{Op: op}
		switch op.Fmt() {
		case FmtR:
			in.Rd = Reg(rng.Intn(32))
			in.Rs1 = Reg(rng.Intn(32))
			in.Rs2 = Reg(rng.Intn(32))
		case FmtI:
			in.Rd = Reg(rng.Intn(32))
			in.Rs1 = Reg(rng.Intn(32))
			if op == SLLI || op == SRLI || op == SRAI {
				in.Imm = int32(rng.Intn(32))
			} else {
				in.Imm = int32(rng.Intn(4096) - 2048)
			}
		case FmtS:
			in.Rs1 = Reg(rng.Intn(32))
			in.Rs2 = Reg(rng.Intn(32))
			in.Imm = int32(rng.Intn(4096) - 2048)
		case FmtB:
			in.Rs1 = Reg(rng.Intn(32))
			in.Rs2 = Reg(rng.Intn(32))
			in.Imm = int32(rng.Intn(4096)-2048) * 2
		case FmtU:
			in.Rd = Reg(rng.Intn(32))
			in.Imm = int32(rng.Intn(1 << 20))
		case FmtJ:
			in.Rd = Reg(rng.Intn(32))
			in.Imm = int32(rng.Intn(1<<20)-1<<19) * 2
		}
		return in
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 0; n < 5000; n++ {
		in := randomRVInst(rng)
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%08x) of %v: %v", w, in, err)
		}
		if out != in {
			t.Fatalf("round trip %v -> %08x -> %v", in, w, out)
		}
	}
}

func TestKnownEncodings(t *testing.T) {
	// Golden words checked against the RISC-V spec examples.
	cases := []struct {
		in   Inst
		want uint32
	}{
		{Inst{Op: ADDI, Rd: 0, Rs1: 0, Imm: 0}, 0x00000013},    // nop
		{Inst{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}, 0x003100b3},     // add ra,sp,gp
		{Inst{Op: LUI, Rd: 5, Imm: 0x12345}, 0x123452b7},       // lui t0,0x12345
		{Inst{Op: LW, Rd: 10, Rs1: 2, Imm: 8}, 0x00812503},     // lw a0,8(sp)
		{Inst{Op: SW, Rs1: 2, Rs2: 10, Imm: 12}, 0x00a12623},   // sw a0,12(sp)
		{Inst{Op: BEQ, Rs1: 10, Rs2: 11, Imm: -4}, 0xfeb50ee3}, // beq a0,a1,-4
		{Inst{Op: JAL, Rd: 1, Imm: 2048}, 0x001000ef},          // jal ra,+2048
		{Inst{Op: EBREAK}, 0x00100073},
		{Inst{Op: ECALL}, 0x00000073},
		{Inst{Op: MUL, Rd: 10, Rs1: 11, Rs2: 12}, 0x02c58533}, // mul a0,a1,a2
		{Inst{Op: SRAI, Rd: 6, Rs1: 6, Imm: 4}, 0x40435313},   // srai t1,t1,4
	}
	for _, c := range cases {
		w, err := Encode(c.in)
		if err != nil {
			t.Errorf("Encode(%v): %v", c.in, err)
			continue
		}
		if w != c.want {
			t.Errorf("Encode(%v) = %08x, want %08x", c.in, w, c.want)
		}
	}
}

func TestEncodeRejects(t *testing.T) {
	bad := []Inst{
		{Op: ADDI, Imm: 5000}, // imm12 overflow
		{Op: BEQ, Imm: 3},     // odd branch offset
		{Op: SLLI, Imm: 32},   // shift > 31
		{Op: LUI, Imm: -1},    // U-imm negative
		{Op: ADD, Rd: 40},     // bad register
	}
	for _, in := range bad {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%v) succeeded", in)
		}
	}
}

func TestDecodeRejects(t *testing.T) {
	for _, w := range []uint32{0x00000000, 0xffffffff, 0x0000007f} {
		if _, err := Decode(w); err == nil {
			t.Errorf("Decode(%08x) succeeded", w)
		}
	}
}

func TestPredicates(t *testing.T) {
	if !LW.IsLoad() || LW.IsStore() || !SW.IsStore() {
		t.Error("load/store predicates wrong")
	}
	if !BEQ.IsBranch() || JAL.IsBranch() {
		t.Error("branch predicate wrong")
	}
	if !MUL.IsMul() || ADD.IsMul() {
		t.Error("mul predicate wrong")
	}
	if !SLLI.IsShift() || !SRA.IsShift() || ADD.IsShift() {
		t.Error("shift predicate wrong")
	}
	if SW.WritesRd() || BEQ.WritesRd() || !ADD.WritesRd() {
		t.Error("WritesRd wrong")
	}
	if LUI.ReadsRs1() || !ADDI.ReadsRs1() {
		t.Error("ReadsRs1 wrong")
	}
	if ADDI.ReadsRs2() || !ADD.ReadsRs2() || !SW.ReadsRs2() {
		t.Error("ReadsRs2 wrong")
	}
}
