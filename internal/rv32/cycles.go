package rv32

// Trace-driven cycle models of the two baseline cores of Tables II/III.
// Both attach to the Machine as Observers, so a single architectural run
// produces every baseline's cycle count.

// CycleModel is an Observer that accumulates a cycle count.
type CycleModel interface {
	Observer
	TotalCycles() uint64
}

// VexRiscvModel approximates the VexRiscv core at its small interlocked
// operating point (the ≈0.65 DMIPS/MHz configuration the paper cites):
// a 5-stage in-order pipeline *without* a bypass network, so a consumer
// stalls in decode until its producer reaches writeback (write-first
// register file: a producer decoded at cycle t is readable at t+3), plus a
// flush penalty for every taken control transfer (branches resolve in EX).
type VexRiscvModel struct {
	// BranchPenalty is the flush cost of a taken transfer.
	BranchPenalty uint64
	// MulExtra/DivExtra are the additional EX-occupancy cycles of the
	// iterative multiplier/divider options (Table II marks VexRiscv as
	// having a multiplier).
	MulExtra uint64
	DivExtra uint64

	t       uint64 // decode cycle of the most recently retired instruction
	ready   [NumRegs]uint64
	started bool
}

// NewVexRiscvModel returns the model with the small-config parameters.
func NewVexRiscvModel() *VexRiscvModel {
	return &VexRiscvModel{BranchPenalty: 2, MulExtra: 4, DivExtra: 33}
}

// Retire implements Observer.
func (v *VexRiscvModel) Retire(in Inst, taken bool, _ uint32) {
	t := v.t + 1
	if !v.started {
		v.started = true
		t = 1
	}
	use := func(r Reg) {
		if r != 0 && v.ready[r] > t {
			t = v.ready[r] // interlock until the producer's writeback
		}
	}
	if in.Op.ReadsRs1() {
		use(in.Rs1)
	}
	if in.Op.ReadsRs2() {
		use(in.Rs2)
	}
	var extra uint64
	switch in.Op {
	case MUL, MULH, MULHSU, MULHU:
		extra = v.MulExtra
	case DIV, DIVU, REM, REMU:
		extra = v.DivExtra
	}
	t += extra
	if in.Op.WritesRd() && in.Rd != 0 {
		v.ready[in.Rd] = t + 3
	}
	if taken || in.Op == JAL || in.Op == JALR {
		t += v.BranchPenalty
	}
	v.t = t
}

// TotalCycles returns decode-slot cycles plus the pipeline drain.
func (v *VexRiscvModel) TotalCycles() uint64 {
	if !v.started {
		return 0
	}
	return v.t + 4
}

// PicoRV32Model applies the per-instruction cycle costs from the PicoRV32
// documentation (non-pipelined, multi-cycle; CPI ≈ 4, ≈0.31 DMIPS/MHz on
// Dhrystone with the dual-port register file and fast-multiply options the
// paper's RV32IM configuration implies).
type PicoRV32Model struct {
	Cycles uint64

	// Cost table, overridable for ablation studies.
	ALU, Load, Store, BranchTaken, BranchNot, Jump, Jalr, ShiftBase, Mul, Div uint64
	// SerialShift, when true, adds one cycle per shifted bit (the
	// BARREL_SHIFTER=0 configuration).
	SerialShift bool
}

// NewPicoRV32Model returns the documented default timing: the sequential
// ENABLE_MUL multiplier (~35 cycles) rather than the DSP-based fast
// multiply — the configuration consistent with the paper's Table III GEMM
// ratio (see EXPERIMENTS.md); switch Mul to ≈4 for the ENABLE_FAST_MUL
// ablation.
func NewPicoRV32Model() *PicoRV32Model {
	return &PicoRV32Model{
		ALU: 3, Load: 5, Store: 5,
		BranchTaken: 5, BranchNot: 3,
		Jump: 3, Jalr: 6,
		ShiftBase: 3, SerialShift: false,
		Mul: 35, Div: 40,
	}
}

// Retire implements Observer.
func (p *PicoRV32Model) Retire(in Inst, taken bool, shamt uint32) {
	switch {
	case in.Op == JAL:
		p.Cycles += p.Jump
	case in.Op == JALR:
		p.Cycles += p.Jalr
	case in.Op.IsBranch():
		if taken {
			p.Cycles += p.BranchTaken
		} else {
			p.Cycles += p.BranchNot
		}
	case in.Op.IsLoad():
		p.Cycles += p.Load
	case in.Op.IsStore():
		p.Cycles += p.Store
	case in.Op == MUL || in.Op == MULH || in.Op == MULHSU || in.Op == MULHU:
		p.Cycles += p.Mul
	case in.Op == DIV || in.Op == DIVU || in.Op == REM || in.Op == REMU:
		p.Cycles += p.Div
	case in.Op.IsShift():
		p.Cycles += p.ShiftBase
		if p.SerialShift {
			p.Cycles += uint64(shamt)
		}
	default:
		p.Cycles += p.ALU
	}
}

// TotalCycles implements CycleModel.
func (p *PicoRV32Model) TotalCycles() uint64 { return p.Cycles }

var (
	_ CycleModel = (*VexRiscvModel)(nil)
	_ CycleModel = (*PicoRV32Model)(nil)
)
