package rv32

import "fmt"

// 32-bit RISC-V machine encoding (The RISC-V Instruction Set Manual,
// Volume I [15]). Fig. 5 only needs instruction *counts* × 32 bits, but the
// full encoder/decoder keeps the substrate honest and testable, and the
// software-level framework's front end decodes real words.

type encInfo struct {
	opcode uint32 // 7-bit major opcode
	funct3 uint32
	funct7 uint32
}

var encTable = map[Op]encInfo{
	LUI:    {0b0110111, 0, 0},
	AUIPC:  {0b0010111, 0, 0},
	JAL:    {0b1101111, 0, 0},
	JALR:   {0b1100111, 0b000, 0},
	BEQ:    {0b1100011, 0b000, 0},
	BNE:    {0b1100011, 0b001, 0},
	BLT:    {0b1100011, 0b100, 0},
	BGE:    {0b1100011, 0b101, 0},
	BLTU:   {0b1100011, 0b110, 0},
	BGEU:   {0b1100011, 0b111, 0},
	LB:     {0b0000011, 0b000, 0},
	LH:     {0b0000011, 0b001, 0},
	LW:     {0b0000011, 0b010, 0},
	LBU:    {0b0000011, 0b100, 0},
	LHU:    {0b0000011, 0b101, 0},
	SB:     {0b0100011, 0b000, 0},
	SH:     {0b0100011, 0b001, 0},
	SW:     {0b0100011, 0b010, 0},
	ADDI:   {0b0010011, 0b000, 0},
	SLTI:   {0b0010011, 0b010, 0},
	SLTIU:  {0b0010011, 0b011, 0},
	XORI:   {0b0010011, 0b100, 0},
	ORI:    {0b0010011, 0b110, 0},
	ANDI:   {0b0010011, 0b111, 0},
	SLLI:   {0b0010011, 0b001, 0b0000000},
	SRLI:   {0b0010011, 0b101, 0b0000000},
	SRAI:   {0b0010011, 0b101, 0b0100000},
	ADD:    {0b0110011, 0b000, 0b0000000},
	SUB:    {0b0110011, 0b000, 0b0100000},
	SLL:    {0b0110011, 0b001, 0b0000000},
	SLT:    {0b0110011, 0b010, 0b0000000},
	SLTU:   {0b0110011, 0b011, 0b0000000},
	XOR:    {0b0110011, 0b100, 0b0000000},
	SRL:    {0b0110011, 0b101, 0b0000000},
	SRA:    {0b0110011, 0b101, 0b0100000},
	OR:     {0b0110011, 0b110, 0b0000000},
	AND:    {0b0110011, 0b111, 0b0000000},
	FENCE:  {0b0001111, 0b000, 0},
	ECALL:  {0b1110011, 0b000, 0},
	EBREAK: {0b1110011, 0b000, 0},
	MUL:    {0b0110011, 0b000, 0b0000001},
	MULH:   {0b0110011, 0b001, 0b0000001},
	MULHSU: {0b0110011, 0b010, 0b0000001},
	MULHU:  {0b0110011, 0b011, 0b0000001},
	DIV:    {0b0110011, 0b100, 0b0000001},
	DIVU:   {0b0110011, 0b101, 0b0000001},
	REM:    {0b0110011, 0b110, 0b0000001},
	REMU:   {0b0110011, 0b111, 0b0000001},
}

func fitsSigned(v int32, bits int) bool {
	max := int32(1)<<(bits-1) - 1
	return v >= -max-1 && v <= max
}

// Encode produces the 32-bit machine word for i.
func Encode(i Inst) (uint32, error) {
	e, ok := encTable[i.Op]
	if !ok {
		return 0, fmt.Errorf("rv32: cannot encode %v", i.Op)
	}
	if i.Rd >= NumRegs || i.Rs1 >= NumRegs || i.Rs2 >= NumRegs {
		return 0, fmt.Errorf("rv32: bad register in %v", i)
	}
	rd, rs1, rs2 := uint32(i.Rd), uint32(i.Rs1), uint32(i.Rs2)
	imm := uint32(i.Imm)
	switch i.Op.Fmt() {
	case FmtR:
		return e.funct7<<25 | rs2<<20 | rs1<<15 | e.funct3<<12 | rd<<7 | e.opcode, nil
	case FmtI:
		if i.Op == SLLI || i.Op == SRLI || i.Op == SRAI {
			if i.Imm < 0 || i.Imm > 31 {
				return 0, fmt.Errorf("rv32: shift amount %d out of range", i.Imm)
			}
			return e.funct7<<25 | imm<<20 | rs1<<15 | e.funct3<<12 | rd<<7 | e.opcode, nil
		}
		if !fitsSigned(i.Imm, 12) {
			return 0, fmt.Errorf("rv32: imm %d exceeds 12 bits in %v", i.Imm, i)
		}
		return (imm&0xfff)<<20 | rs1<<15 | e.funct3<<12 | rd<<7 | e.opcode, nil
	case FmtS:
		if !fitsSigned(i.Imm, 12) {
			return 0, fmt.Errorf("rv32: imm %d exceeds 12 bits in %v", i.Imm, i)
		}
		return (imm>>5&0x7f)<<25 | rs2<<20 | rs1<<15 | e.funct3<<12 | (imm&0x1f)<<7 | e.opcode, nil
	case FmtB:
		if !fitsSigned(i.Imm, 13) || i.Imm&1 != 0 {
			return 0, fmt.Errorf("rv32: branch offset %d invalid", i.Imm)
		}
		return (imm>>12&1)<<31 | (imm>>5&0x3f)<<25 | rs2<<20 | rs1<<15 |
			e.funct3<<12 | (imm>>1&0xf)<<8 | (imm>>11&1)<<7 | e.opcode, nil
	case FmtU:
		if i.Imm < 0 || i.Imm > 0xfffff {
			return 0, fmt.Errorf("rv32: U-imm %d exceeds 20 bits", i.Imm)
		}
		return imm<<12 | rd<<7 | e.opcode, nil
	case FmtJ:
		if !fitsSigned(i.Imm, 21) || i.Imm&1 != 0 {
			return 0, fmt.Errorf("rv32: jump offset %d invalid", i.Imm)
		}
		return (imm>>20&1)<<31 | (imm>>1&0x3ff)<<21 | (imm>>11&1)<<20 |
			(imm>>12&0xff)<<12 | rd<<7 | e.opcode, nil
	default: // FmtSys
		switch i.Op {
		case ECALL:
			return 0x00000073, nil
		case EBREAK:
			return 0x00100073, nil
		default: // FENCE
			return 0x0ff0000f, nil
		}
	}
}

func signExtend(v uint32, bits int) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

// Decode decodes a 32-bit machine word.
func Decode(w uint32) (Inst, error) {
	opcode := w & 0x7f
	rd := Reg(w >> 7 & 0x1f)
	funct3 := w >> 12 & 0x7
	rs1 := Reg(w >> 15 & 0x1f)
	rs2 := Reg(w >> 20 & 0x1f)
	funct7 := w >> 25 & 0x7f

	switch opcode {
	case 0b0110111:
		return Inst{Op: LUI, Rd: rd, Imm: int32(w >> 12)}, nil
	case 0b0010111:
		return Inst{Op: AUIPC, Rd: rd, Imm: int32(w >> 12)}, nil
	case 0b1101111:
		imm := (w>>31&1)<<20 | (w>>12&0xff)<<12 | (w>>20&1)<<11 | (w>>21&0x3ff)<<1
		return Inst{Op: JAL, Rd: rd, Imm: signExtend(imm, 21)}, nil
	case 0b1100111:
		return Inst{Op: JALR, Rd: rd, Rs1: rs1, Imm: signExtend(w>>20, 12)}, nil
	case 0b1100011:
		var op Op
		switch funct3 {
		case 0b000:
			op = BEQ
		case 0b001:
			op = BNE
		case 0b100:
			op = BLT
		case 0b101:
			op = BGE
		case 0b110:
			op = BLTU
		case 0b111:
			op = BGEU
		default:
			return Inst{}, fmt.Errorf("rv32: illegal branch funct3 %b", funct3)
		}
		imm := (w>>31&1)<<12 | (w>>7&1)<<11 | (w>>25&0x3f)<<5 | (w>>8&0xf)<<1
		return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: signExtend(imm, 13)}, nil
	case 0b0000011:
		var op Op
		switch funct3 {
		case 0b000:
			op = LB
		case 0b001:
			op = LH
		case 0b010:
			op = LW
		case 0b100:
			op = LBU
		case 0b101:
			op = LHU
		default:
			return Inst{}, fmt.Errorf("rv32: illegal load funct3 %b", funct3)
		}
		return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: signExtend(w>>20, 12)}, nil
	case 0b0100011:
		var op Op
		switch funct3 {
		case 0b000:
			op = SB
		case 0b001:
			op = SH
		case 0b010:
			op = SW
		default:
			return Inst{}, fmt.Errorf("rv32: illegal store funct3 %b", funct3)
		}
		imm := (w>>25&0x7f)<<5 | w>>7&0x1f
		return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: signExtend(imm, 12)}, nil
	case 0b0010011:
		var op Op
		switch funct3 {
		case 0b000:
			op = ADDI
		case 0b010:
			op = SLTI
		case 0b011:
			op = SLTIU
		case 0b100:
			op = XORI
		case 0b110:
			op = ORI
		case 0b111:
			op = ANDI
		case 0b001:
			op = SLLI
		case 0b101:
			if funct7 == 0b0100000 {
				op = SRAI
			} else {
				op = SRLI
			}
		}
		if op == SLLI || op == SRLI || op == SRAI {
			return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
		}
		return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: signExtend(w>>20, 12)}, nil
	case 0b0110011:
		key := funct7<<3 | funct3
		var op Op
		found := true
		switch key {
		case 0b0000000<<3 | 0b000:
			op = ADD
		case 0b0100000<<3 | 0b000:
			op = SUB
		case 0b0000000<<3 | 0b001:
			op = SLL
		case 0b0000000<<3 | 0b010:
			op = SLT
		case 0b0000000<<3 | 0b011:
			op = SLTU
		case 0b0000000<<3 | 0b100:
			op = XOR
		case 0b0000000<<3 | 0b101:
			op = SRL
		case 0b0100000<<3 | 0b101:
			op = SRA
		case 0b0000000<<3 | 0b110:
			op = OR
		case 0b0000000<<3 | 0b111:
			op = AND
		case 0b0000001<<3 | 0b000:
			op = MUL
		case 0b0000001<<3 | 0b001:
			op = MULH
		case 0b0000001<<3 | 0b010:
			op = MULHSU
		case 0b0000001<<3 | 0b011:
			op = MULHU
		case 0b0000001<<3 | 0b100:
			op = DIV
		case 0b0000001<<3 | 0b101:
			op = DIVU
		case 0b0000001<<3 | 0b110:
			op = REM
		case 0b0000001<<3 | 0b111:
			op = REMU
		default:
			found = false
		}
		if !found {
			return Inst{}, fmt.Errorf("rv32: illegal R-type funct %b/%b", funct7, funct3)
		}
		return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, nil
	case 0b0001111:
		return Inst{Op: FENCE}, nil
	case 0b1110011:
		if w>>20&1 == 1 {
			return Inst{Op: EBREAK}, nil
		}
		return Inst{Op: ECALL}, nil
	}
	return Inst{}, fmt.Errorf("rv32: illegal opcode %07b", opcode)
}
