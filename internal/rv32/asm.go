package rv32

import (
	"fmt"
	"strconv"
	"strings"
)

// The RV32 assembler: a two-pass assembler for the subset of GNU syntax the
// benchmark suite uses. It stands in for the open-source RISC-V toolchain
// of §III-A (DESIGN.md §4, substitution 1): its output is exactly what the
// software-level compiling framework consumes.
//
// Program layout is Harvard: instructions are indexed by word (PC/4 = text
// index), data lives in a separate byte-addressed space starting at 0.
//
// Supported directives: .text .data .equ .word .half .byte .space .align
// .asciz .org — and the usual pseudo-instructions (li la mv not neg nop j
// jr ret call beqz bnez bltz bgez bgtz blez bgt ble bgtu bleu seqz snez
// sgtz sltz halt).

// Program is an assembled RV32 program.
type Program struct {
	Insts   []Inst   // decoded text
	Words   []uint32 // encoded text, parallel to Insts
	Data    []byte   // initialised data image (byte-addressed from 0)
	Symbols map[string]int32
	Lines   []int // source line per instruction
}

// TextBytes returns the instruction-memory footprint in bytes.
func (p *Program) TextBytes() int { return 4 * len(p.Insts) }

// TextBits returns the instruction-memory footprint in bits — the Fig. 5
// metric for the RV32I column.
func (p *Program) TextBits() int { return 32 * len(p.Insts) }

type rvAsm struct {
	equ    map[string]int32
	labels map[string]int32 // text labels: instruction index; data: byte addr
	errs   []string
}

func (a *rvAsm) errorf(line int, format string, args ...interface{}) {
	a.errs = append(a.errs, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

func (a *rvAsm) err() error {
	if len(a.errs) == 0 {
		return nil
	}
	return fmt.Errorf("%s", strings.Join(a.errs, "\n"))
}

type rvStmt struct {
	line     int
	sec      string // "text" or "data"
	mnemonic string
	args     []string
}

// Assemble assembles RV32 source text.
func Assemble(src string) (*Program, error) {
	a := &rvAsm{equ: map[string]int32{}, labels: map[string]int32{}}

	// ---- Pass 0: scan statements and labels.
	var stmts []rvStmt
	type lblDecl struct {
		name string
		idx  int
		sec  string
		line int
	}
	var decls []lblDecl
	sec := "text"
	for ln, raw := range strings.Split(src, "\n") {
		line := ln + 1
		s := raw
		for _, sep := range []string{"#", "//", ";"} {
			if i := strings.Index(s, sep); i >= 0 {
				s = s[:i]
			}
		}
		for {
			s = strings.TrimSpace(s)
			i := strings.Index(s, ":")
			if i < 0 || strings.ContainsAny(s[:i], " \t\",(") {
				break
			}
			decls = append(decls, lblDecl{strings.TrimSpace(s[:i]), len(stmts), sec, line})
			s = s[i+1:]
		}
		if s == "" {
			continue
		}
		f := splitRVOperands(s)
		head := strings.ToLower(f[0])
		switch head {
		case ".text":
			sec = "text"
			continue
		case ".data":
			sec = "data"
			continue
		case ".equ", ".set":
			if len(f) != 3 {
				a.errorf(line, "%s wants NAME, VALUE", head)
				continue
			}
			v, err := a.evalInt(f[2], line)
			if err != nil {
				a.errs = append(a.errs, err.Error())
				continue
			}
			a.equ[f[1]] = v
			continue
		case ".globl", ".global", ".p2align":
			continue // accepted and ignored where harmless
		}
		stmts = append(stmts, rvStmt{line: line, sec: sec, mnemonic: head, args: f[1:]})
	}
	if err := a.err(); err != nil {
		return nil, err
	}

	// ---- Pass 1: lay out data (independent of text), then text.
	dataAddr := int32(0)
	dataSize := map[int]int32{} // stmt index -> size in bytes
	for si := range stmts {
		st := &stmts[si]
		if st.sec != "data" {
			continue
		}
		sz, err := a.dataSize(st, dataAddr)
		if err != nil {
			a.errs = append(a.errs, err.Error())
			continue
		}
		dataSize[si] = sz
		dataAddr += sz
	}
	// Bind data labels before text layout (la/li of data symbols).
	dataAddrs := make([]int32, len(stmts)+1)
	{
		cur := int32(0)
		for si := range stmts {
			dataAddrs[si] = cur
			if stmts[si].sec == "data" {
				if stmts[si].mnemonic == ".org" {
					// .org sets the absolute byte address.
					v, err := a.evalInt(stmts[si].args[0], stmts[si].line)
					if err == nil && v >= cur {
						cur = v
					}
				} else {
					cur += dataSize[si]
				}
			}
		}
		dataAddrs[len(stmts)] = cur
	}
	for _, d := range decls {
		if d.sec != "data" {
			continue
		}
		addr := dataAddrs[len(stmts)]
		for j := d.idx; j < len(stmts); j++ {
			if stmts[j].sec == "data" {
				addr = dataAddrs[j]
				break
			}
		}
		if _, dup := a.labels[d.name]; dup {
			a.errorf(d.line, "duplicate label %q", d.name)
		}
		a.labels[d.name] = addr
	}
	if err := a.err(); err != nil {
		return nil, err
	}

	// Text layout: instruction index per statement (pseudo expansion).
	textIdx := make([]int32, len(stmts)+1)
	cur := int32(0)
	for si := range stmts {
		textIdx[si] = cur
		if stmts[si].sec != "text" {
			continue
		}
		n, err := a.textSize(&stmts[si])
		if err != nil {
			a.errs = append(a.errs, err.Error())
			continue
		}
		cur += n
	}
	textIdx[len(stmts)] = cur
	for _, d := range decls {
		if d.sec != "text" {
			continue
		}
		addr := textIdx[len(stmts)]
		for j := d.idx; j < len(stmts); j++ {
			if stmts[j].sec == "text" {
				addr = textIdx[j]
				break
			}
		}
		if _, dup := a.labels[d.name]; dup {
			a.errorf(d.line, "duplicate label %q", d.name)
		}
		a.labels[d.name] = addr
	}
	if err := a.err(); err != nil {
		return nil, err
	}

	// ---- Pass 2: emit.
	p := &Program{Symbols: map[string]int32{}}
	for n, v := range a.equ {
		p.Symbols[n] = v
	}
	for n, v := range a.labels {
		p.Symbols[n] = v
	}
	var data []byte
	dcur := int32(0)
	for si := range stmts {
		st := &stmts[si]
		if st.sec == "data" {
			var err error
			data, dcur, err = a.emitData(st, data, dcur)
			if err != nil {
				a.errs = append(a.errs, err.Error())
			}
			continue
		}
		if err := a.emitText(p, st, textIdx[si]); err != nil {
			a.errs = append(a.errs, err.Error())
		}
	}
	p.Data = data
	if err := a.err(); err != nil {
		return nil, err
	}
	// Encode.
	p.Words = make([]uint32, len(p.Insts))
	for i, in := range p.Insts {
		w, err := Encode(in)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", p.Lines[i], err)
		}
		p.Words[i] = w
	}
	return p, nil
}

// splitRVOperands tokenises "op a, b, 4(sp)" keeping parenthesised forms
// intact and honouring quoted strings.
func splitRVOperands(s string) []string {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return []string{s}
	}
	head := s[:i]
	rest := strings.TrimSpace(s[i:])
	var out []string
	out = append(out, head)
	depth, start := 0, 0
	inStr := false
	for j := 0; j < len(rest); j++ {
		switch rest[j] {
		case '"':
			inStr = !inStr
		case '(':
			if !inStr {
				depth++
			}
		case ')':
			if !inStr {
				depth--
			}
		case ',':
			if depth == 0 && !inStr {
				if f := strings.TrimSpace(rest[start:j]); f != "" {
					out = append(out, f)
				}
				start = j + 1
			}
		}
	}
	if f := strings.TrimSpace(rest[start:]); f != "" {
		out = append(out, f)
	}
	return out
}

// evalInt evaluates numbers (decimal, hex, char) and .equ constants.
func (a *rvAsm) evalInt(s string, line int) (int32, error) {
	if v, ok := a.equ[s]; ok {
		return v, nil
	}
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body := s[1 : len(s)-1]
		if body == "\\n" {
			return '\n', nil
		}
		if body == "\\0" {
			return 0, nil
		}
		if len(body) == 1 {
			return int32(body[0]), nil
		}
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("line %d: cannot evaluate %q", line, s)
	}
	return int32(v), nil
}

// evalSym evaluates numbers, constants and labels.
func (a *rvAsm) evalSym(s string, line int) (int32, error) {
	if v, ok := a.labels[s]; ok {
		return v, nil
	}
	return a.evalInt(s, line)
}
