package bench

import (
	"testing"

	"repro/internal/xlate"
)

func TestStrSearchCorrect(t *testing.T) {
	o, err := Run(StrSearch, xlate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Reference in Go: same haystack, needle {9,3,9,9,3} at position 42
	// (0-based) only; checksum accumulates pos+1 per match.
	hay := []int{
		3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3,
		2, 3, 8, 4, 6, 2, 6, 4, 3, 3, 8, 3, 2, 7, 9, 5,
		0, 2, 8, 8, 4, 1, 9, 7, 1, 6, 9, 3, 9, 9, 3, 7,
		5, 1, 0, 5, 8, 2, 0, 9, 7, 4, 9, 4, 4, 5, 9, 2,
	}
	needle := []int{9, 3, 9, 9, 3}
	want := 0
	for i := 0; i < 60; i++ {
		match := true
		for j := range needle {
			if hay[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			want += i + 1
		}
	}
	if want == 0 {
		t.Fatal("test data has no match; needle misplaced")
	}
	if o.Checksum != want {
		t.Errorf("strsearch checksum = %d, want %d", o.Checksum, want)
	}
	// The extension is discoverable by name but not in the paper suite.
	if _, ok := ByName("strsearch"); !ok {
		t.Error("strsearch not addressable by name")
	}
	for _, w := range Workloads {
		if w.Name == "strsearch" {
			t.Error("extension leaked into the paper suite")
		}
	}
}

func TestStrSearchShapes(t *testing.T) {
	o, err := Run(StrSearch, xlate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Branch-dense early-exit code: ART-9 still beats Pico, and the
	// ternary image stays under the binary one.
	if o.ART9Cycles >= o.PicoCycles {
		t.Errorf("ART-9 %d not faster than Pico %d", o.ART9Cycles, o.PicoCycles)
	}
	if o.ARTTrits >= o.RVBits {
		t.Errorf("ART %d trits not below RV32I %d bits", o.ARTTrits, o.RVBits)
	}
}
