package bench

import (
	"context"
	"errors"

	"repro/internal/engine"
	"repro/internal/gate"
)

// This file defines the JSON report rows shared by cmd/art9-batch (the
// archived BENCH_*.json documents) and internal/serve (each NDJSON line
// of POST /v1/suite is one JobReport), so a job renders identically
// whether it ran from a file manifest or an HTTP request.

// Report is the batch output, one BENCH_*.json per run.
type Report struct {
	Schema  string      `json:"schema"`
	Created string      `json:"created"`
	Workers int         `json:"workers"`
	WallMS  float64     `json:"wall_ms"`
	Jobs    []JobReport `json:"jobs"`
	// Peers counts remote art9-serve backends the batch fanned out to
	// (0 for a purely local run, the historical shape).
	Peers  int          `json:"peers,omitempty"`
	Cache  CacheReport  `json:"cache"`
	Engine EngineReport `json:"engine"`
	// Balancer is present exactly when the batch ran behind a
	// health-aware failover front or an elastic autoscaling front:
	// per-backend dispatch, failover and health-probe counters, so
	// BENCH artifacts record fleet behaviour (which backends carried
	// the work, which dropped jobs that were re-run elsewhere, which
	// were spawned or retired by scaling).
	Balancer *BalancerReport `json:"balancer,omitempty"`
	Failures int             `json:"failures"`
}

// BalancerReport snapshots a fleet front's dispatch behaviour — an
// engine.Balancer's failover counters or an engine.Autoscaler's scale
// trajectory: the budget it ran with, how many re-dispatches it
// performed, and one scorecard per backend.
type BalancerReport struct {
	MaxRetries int `json:"max_retries"`
	// Retries counts re-dispatches (attempts after each job's first);
	// Failovers counts backend-level failures that caused them, summed
	// over the backends.
	Retries   uint64 `json:"retries"`
	Failovers uint64 `json:"failovers"`
	// Chunk is the configured chunked-dispatch cap (0: per-job
	// placement); Chunks counts dispatch units issued and ChunkResumes
	// the chunks severed mid-stream whose unresolved jobs were
	// re-chunked onto survivors — the wire-overhead trajectory the
	// BENCH artifacts track.
	Chunk        int    `json:"chunk,omitempty"`
	Chunks       uint64 `json:"chunks,omitempty"`
	ChunkResumes uint64 `json:"chunk_resumes,omitempty"`
	// CacheHits counts jobs the front resolved from the fleet-wide
	// result cache without placing them on any backend.
	CacheHits uint64 `json:"cache_hits,omitempty"`
	// ScaleUps/ScaleDowns count an Autoscaler front's pool transitions
	// and ScaleEvents is its event log (capped by the engine) — the
	// elasticity trajectory the BENCH artifacts track. Absent behind a
	// fixed-size Balancer.
	ScaleUps    uint64                 `json:"scale_ups,omitempty"`
	ScaleDowns  uint64                 `json:"scale_downs,omitempty"`
	ScaleEvents []engine.ScaleEvent    `json:"scale_events,omitempty"`
	Backends    []engine.BackendHealth `json:"backends"`
}

// BalancerReportFor renders the fleet scorecard of a Balancer- or
// Autoscaler-fronted backend, or nil when ev is any other Evaluator —
// callers attach it to a Report exactly when it exists.
func BalancerReportFor(ev engine.Evaluator) *BalancerReport {
	var rep *BalancerReport
	switch front := ev.(type) {
	case *engine.Balancer:
		rep = &BalancerReport{
			MaxRetries:   front.MaxRetries(),
			Retries:      front.Retries(),
			Chunk:        front.Chunk(),
			Chunks:       front.Chunks(),
			ChunkResumes: front.ChunkResumes(),
			CacheHits:    front.CacheHits(),
			Backends:     front.Health(),
		}
	case *engine.Autoscaler:
		rep = &BalancerReport{
			MaxRetries: front.MaxRetries(),
			Retries:    front.Retries(),
			CacheHits:  front.CacheHits(),
			ScaleUps:   front.ScaleUps(),
			ScaleDowns: front.ScaleDowns(),
			// Events is already bounded engine-side, so the report
			// carries the full log it kept.
			ScaleEvents: front.Events(),
			Backends:    front.Health(),
		}
	default:
		return nil
	}
	for _, h := range rep.Backends {
		rep.Failovers += h.Failovers
	}
	return rep
}

// JobReport carries one job's result. Metrics is present exactly when
// OK is true, with every field always emitted — a checksum of 0 stays
// distinguishable from "job failed" for consumers diffing reports.
type JobReport struct {
	Name  string `json:"name"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// ErrorKind classifies a failure ("closed", "timeout",
	// "unavailable"; empty for anything else) so the engine's typed
	// errors survive the NDJSON wire — the remote client maps it back
	// to ErrClosed/ErrTimeout/ErrUnavailable, which is what lets
	// job-level failover compose across serve→serve tiers.
	ErrorKind string  `json:"error_kind,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Worker    int     `json:"worker"`

	Metrics         *MetricsReport `json:"metrics,omitempty"`
	Implementations []ImplReport   `json:"implementations,omitempty"`
}

// MetricsReport mirrors Outcome for one successful job.
type MetricsReport struct {
	Checksum   int    `json:"checksum"`
	RVInsts    int    `json:"rv_insts"`
	RVBits     int    `json:"rv_bits"`
	ARTInsts   int    `json:"art_insts"`
	ARTTrits   int    `json:"art_trits"`
	ART9Cycles uint64 `json:"art9_cycles"`
	VexCycles  uint64 `json:"vex_cycles"`
	PicoCycles uint64 `json:"pico_cycles"`
	Removed    int    `json:"redundancy_removed"`
}

// ImplReport is one (job, technology) implementation estimate, at the
// operating point of the paper's Table IV (native) / Table V (FPGA).
type ImplReport struct {
	Tech      string  `json:"tech"`
	Gates     int     `json:"gates,omitempty"`
	ALMs      int     `json:"alms,omitempty"`
	Registers int     `json:"registers,omitempty"`
	RAMBits   int     `json:"ram_bits,omitempty"`
	FreqMHz   float64 `json:"freq_mhz"`
	PowerW    float64 `json:"power_w"`
	DMIPS     float64 `json:"dmips"`
	DMIPSPerW float64 `json:"dmips_per_w"`
}

// CacheReport snapshots a pair of memoization caches, plus — when the
// run had a fleet-wide result cache on its dispatch path — that tier's
// counters.
type CacheReport struct {
	ProgramHits    uint64 `json:"program_hits"`
	ProgramMisses  uint64 `json:"program_misses"`
	AnalysisHits   uint64 `json:"analysis_hits"`
	AnalysisMisses uint64 `json:"analysis_misses"`
	// ProgramEvictions/AnalysisEvictions count entries the bounded
	// memoization caches dropped under byte or entry pressure.
	ProgramEvictions  uint64 `json:"program_evictions,omitempty"`
	AnalysisEvictions uint64 `json:"analysis_evictions,omitempty"`
	// Results is the fleet-wide result-cache section (internal/rescache
	// via bench.ResultCache), present exactly when the run was cached.
	Results *ResultCacheReport `json:"results,omitempty"`
}

// EngineReport snapshots the engine's lifetime job counters, plus the
// shard count for sharded front ends (1 for a single engine).
type EngineReport struct {
	Workers   int    `json:"workers"`
	Shards    int    `json:"shards"`
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	Rejected  uint64 `json:"rejected"`
	Streams   uint64 `json:"streams"`
}

// JobReportOf renders one engine result as a report row, evaluating a
// successful outcome against every requested technology.
//
// A result whose Value is already a *JobReport — what the
// internal/remote backend yields, having received the row from its peer
// — passes through unchanged (the peer already evaluated its own
// technologies), so local and remote shards render identically in one
// merged report.
func JobReportOf(r engine.Result, techs []*gate.Technology) JobReport {
	if remote, ok := r.Value.(*JobReport); ok {
		jr := *remote
		if jr.Name == "" {
			jr.Name = r.ID
		}
		return jr
	}
	jr := JobReport{
		Name:      r.ID,
		OK:        r.Err == nil,
		ElapsedMS: float64(r.Elapsed.Microseconds()) / 1e3,
		Worker:    r.Worker,
	}
	if r.Err != nil {
		jr.Error = r.Err.Error()
		jr.ErrorKind = ErrorKindOf(r.Err)
		return jr
	}
	o := r.Value.(*Outcome)
	jr.Metrics = MetricsReportOf(o)
	jr.Implementations = ImplReports(o, techs)
	return jr
}

// MetricsReportOf renders one outcome's metrics row — the one
// Outcome→MetricsReport mapping, shared with tests that compare
// streamed rows against a serial oracle.
func MetricsReportOf(o *Outcome) *MetricsReport {
	return &MetricsReport{
		Checksum:   o.Checksum,
		RVInsts:    o.RVInsts,
		RVBits:     o.RVBits,
		ARTInsts:   o.ARTInsts,
		ARTTrits:   o.ARTTrits,
		ART9Cycles: o.ART9Cycles,
		VexCycles:  o.VexCycles,
		PicoCycles: o.PicoCycles,
		Removed:    o.Removed,
	}
}

// ErrorKindOf classifies a job failure for the wire ("closed",
// "timeout", "unavailable"; empty for job-level failures) — the one
// classifier behind JobReport.ErrorKind and the serve layer's typed
// error bodies, so every hop of a serve→serve tier re-types the same
// way.
func ErrorKindOf(err error) string {
	switch {
	case errors.Is(err, engine.ErrClosed):
		return "closed"
	case errors.Is(err, engine.ErrTimeout), errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, engine.ErrUnavailable):
		return "unavailable"
	default:
		return ""
	}
}

// ImplReports evaluates one outcome against every requested technology
// at the same operating point the paper's tables use (ImplFor), so
// report rows are comparable to Tables IV/V. The analysis itself comes
// from the engine's shared cache, so only the first job per technology
// pays for it.
func ImplReports(o *Outcome, techs []*gate.Technology) []ImplReport {
	var irs []ImplReport
	for _, tech := range techs {
		impl := ImplFor(o, tech)
		irs = append(irs, ImplReport{
			Tech:      impl.Tech,
			Gates:     impl.Gates,
			ALMs:      impl.ALMs,
			Registers: impl.Registers,
			RAMBits:   impl.RAMBits,
			FreqMHz:   impl.FreqMHz,
			PowerW:    impl.PowerW,
			DMIPS:     impl.DMIPS,
			DMIPSPerW: impl.DMIPSPerW,
		})
	}
	return irs
}

// CacheReportOf snapshots an engine's cache counters.
func CacheReportOf(e *engine.Engine) CacheReport {
	return cacheReport(e.Programs.Stats(), e.Analyses.Stats())
}

// SharedCacheReport snapshots the process-wide memoization caches — the
// ones every bench job feeds regardless of which backend ran it.
func SharedCacheReport() CacheReport {
	return cacheReport(engine.SharedPrograms.Stats(), engine.SharedAnalyses.Stats())
}

func cacheReport(ps, as engine.CacheStats) CacheReport {
	return CacheReport{
		ProgramHits: ps.Hits, ProgramMisses: ps.Misses,
		AnalysisHits: as.Hits, AnalysisMisses: as.Misses,
		ProgramEvictions: ps.Evictions, AnalysisEvictions: as.Evictions,
	}
}

// EngineReportOf renders one engine's counters (a single shard).
func EngineReportOf(e *engine.Engine) EngineReport {
	return engineReport(e.Stats(), 1)
}

// ShardSetReportOf renders a shard set's aggregate counters.
func ShardSetReportOf(s *engine.ShardSet) EngineReport {
	return engineReport(s.Stats(), s.Shards())
}

// EngineReportFrom renders an already-taken stats snapshot — for
// callers (the serve stats endpoint) that must not trigger a second
// scrape of remote backends.
func EngineReportFrom(st engine.Stats, shards int) EngineReport {
	return engineReport(st, shards)
}

// EngineReportFor renders any Evaluator backend's counters, resolving
// the shard count through engine.Composite and falling back to a
// single logical shard for anything else (a remote client, a custom
// backend). Remote backends answer with their peer's lifetime
// counters; for a report scoped to one run, use RunReportFor.
func EngineReportFor(ev engine.Evaluator) EngineReport {
	if c, ok := ev.(engine.Composite); ok {
		return engineReport(c.Stats(), c.Size())
	}
	return engineReport(ev.Stats(), 1)
}

// RunReportFor renders only the counters attributable to this process's
// use of the backend — remote shards report the work submitted through
// them (engine.LocalStats), not their peer's lifetime totals — which is
// what a per-run document like BENCH_*.json should carry. Workers
// consequently counts local pools only; remote capacity is the report's
// peers field.
func RunReportFor(ev engine.Evaluator) EngineReport {
	shards := 1
	if c, ok := ev.(engine.Composite); ok {
		shards = c.Size()
	}
	return engineReport(engine.LocalStats(ev), shards)
}

func engineReport(st engine.Stats, shards int) EngineReport {
	return EngineReport{
		Workers:   st.Workers,
		Shards:    shards,
		Submitted: st.Submitted,
		Completed: st.Completed,
		Failed:    st.Failed,
		Canceled:  st.Canceled,
		Rejected:  st.Rejected,
		Streams:   st.Streams,
	}
}
