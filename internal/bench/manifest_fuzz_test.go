package bench

import (
	"testing"
	"unicode/utf8"

	"repro/internal/xlate"
)

// FuzzParseManifest throws arbitrary bytes at the one manifest loader
// shared by art9-batch (files from disk) and art9-serve (HTTP request
// bodies — attacker-reachable input). The invariants: never panic, an
// accepted manifest always has jobs, and everything downstream of an
// accepted manifest (entry resolution with file jobs forbidden,
// technology mapping, engine-job construction) stays panic-free too.
// Seed corpus: f.Add cases below plus testdata/fuzz/FuzzParseManifest.
func FuzzParseManifest(f *testing.F) {
	f.Add([]byte(`{"technologies":["cntfet32"],"jobs":[{"name":"b","workload":"bubble"}]}`))
	f.Add([]byte(`{"jobs":[{"name":"s","source":"li a0, 1\nebreak","iterations":3,"timeout_ms":10}]}`))
	f.Add([]byte(`{"jobs":[{"name":"f","file":"../secret.s"}]}`))
	f.Add([]byte(`{"jobs":[]}`))
	f.Add([]byte(`{"jobs":[{"name":"two","workload":"bubble","source":"x"}]}`))
	f.Add([]byte(`{"technologies":["nand"],"jobs":[{"workload":"bubble"}]}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"jobs": 3}`))
	f.Add([]byte(`{"jobs":[{"iterations":-9000000000000000000}]}`))
	f.Add([]byte("{\"jobs\":[{\"name\":\"\xff\xfe\",\"workload\":\"bubble\"}]}"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseManifest(data)
		if err != nil {
			if m != nil {
				t.Fatalf("ParseManifest returned both a manifest and error %v", err)
			}
			return
		}
		if len(m.Jobs) == 0 {
			t.Fatalf("ParseManifest accepted a manifest with no jobs: %q", data)
		}
		// Everything a server does with an accepted manifest must be
		// panic-free: per-entry resolution (dir "" forbids file jobs, so
		// fuzzed paths can never touch the filesystem), technology
		// mapping, and engine-job construction.
		for _, mj := range m.Jobs {
			if w, err := mj.Resolve(""); err == nil && w.Iterations < 1 {
				t.Fatalf("Resolve normalised job %q to %d iterations", mj.Name, w.Iterations)
			}
		}
		m.ResolveTechnologies()
		if jobs, err := m.EngineJobs("", xlate.Options{}); err == nil {
			for i, j := range jobs {
				if j.Spec == nil {
					t.Fatalf("engine job %d of accepted manifest has no spec", i)
				}
			}
			if len(jobs) != len(m.Jobs) {
				t.Fatalf("EngineJobs built %d jobs for %d entries", len(jobs), len(m.Jobs))
			}
		}
		// Accepted names survive a JSON round trip (NDJSON rows key on
		// them); invalid UTF-8 is legal JSON-in-Go but worth knowing.
		for _, mj := range m.Jobs {
			_ = utf8.ValidString(mj.Name)
		}
	})
}
