package bench

// Extended workloads beyond the paper's four: available to the harness and
// the CLI (art9-bench -run strsearch) but not part of the Fig. 5 /
// Table III reproduction, whose rows are fixed by the paper.

// StrSearch is a word-string search (naive two-level matcher with early
// exit) — a control-flow pattern none of the paper's four benchmarks
// exercises: data-dependent inner-loop exits under translated ternary
// branches.
var StrSearch = Workload{
	Name:        "strsearch",
	Description: "naive substring search over a 64-word haystack (extension)",
	Source:      strSearchSrc,
	Iterations:  1,
}

// ExtendedWorkloads lists the additional programs. They are addressable
// by name (ByName falls back to this list) but stay out of Workloads so
// the Fig. 5 / Table III reproduction keeps the paper's exact rows.
var ExtendedWorkloads = []Workload{StrSearch}

const strSearchSrc = `
# Find every occurrence of a 5-word needle in a 64-word haystack; the
# checksum accumulates the match positions. Word-grain "characters" keep
# the value contract.
.data
hay:	.word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
	.word 2, 3, 8, 4, 6, 2, 6, 4, 3, 3, 8, 3, 2, 7, 9, 5
	.word 0, 2, 8, 8, 4, 1, 9, 7, 1, 6, 9, 3, 9, 9, 3, 7
	.word 5, 1, 0, 5, 8, 2, 0, 9, 7, 4, 9, 4, 4, 5, 9, 2
.org 256
needle:	.word 9, 3, 9, 9, 3
.text
	li   s1, 0           # i: start position, 0..59
	li   a0, 0           # checksum of match positions
outer:
	la   s2, hay
	slli t0, s1, 2
	add  s2, s2, t0      # &hay[i]
	la   s3, needle
	li   s4, 5           # j counter
inner:
	lw   t0, 0(s2)
	lw   t1, 0(s3)
	bne  t0, t1, miss
	addi s2, s2, 4
	addi s3, s3, 4
	addi s4, s4, -1
	bgtz s4, inner
	# full match at position i
	add  a0, a0, s1
	addi a0, a0, 1
miss:
	addi s1, s1, 1
	li   t0, 60
	blt  s1, t0, outer
	ebreak
`
