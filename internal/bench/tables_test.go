package bench

import (
	"strings"
	"testing"
)

// Tests of the table/figure renderers (E2–E6 of DESIGN.md): numbers and
// formatting both matter — the CLI prints these verbatim.

func suite(t *testing.T) map[string]*Outcome {
	t.Helper()
	all, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	return all
}

func TestFig5Rendering(t *testing.T) {
	all := suite(t)
	rows, text := Fig5(all)
	if len(rows) != 4 {
		t.Fatalf("Fig5 rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.ARTTrits <= 0 || r.RVBits <= 0 || r.ARMBits <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
	for _, want := range []string{"Fig. 5", "bubble", "gemm", "sobel", "dhrystone", "ART-9"} {
		if !strings.Contains(text, want) {
			t.Errorf("Fig5 text missing %q", want)
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	all := suite(t)
	rows, text := Table2(all["dhrystone"])
	if len(rows) != 3 {
		t.Fatalf("Table2 rows = %d, want 3", len(rows))
	}
	// Row identity and the Table II structural facts.
	if rows[0].Instructions != 24 || rows[0].Stages != 5 || rows[0].Multiplier {
		t.Errorf("ART-9 row wrong: %+v", rows[0])
	}
	if rows[1].Instructions != 40 || !rows[1].Multiplier {
		t.Errorf("VexRiscv row wrong: %+v", rows[1])
	}
	if rows[2].Instructions != 48 || rows[2].Stages != 1 {
		t.Errorf("PicoRV32 row wrong: %+v", rows[2])
	}
	// DMIPS/MHz ordering: Pico < ART-9 < Vex.
	if !(rows[2].DMIPSPerMHz < rows[0].DMIPSPerMHz && rows[0].DMIPSPerMHz < rows[1].DMIPSPerMHz) {
		t.Errorf("DMIPS/MHz ordering broken: %f %f %f",
			rows[0].DMIPSPerMHz, rows[1].DMIPSPerMHz, rows[2].DMIPSPerMHz)
	}
	// Magnitudes within the paper's class (±40 %).
	bands := []struct{ lo, hi float64 }{{0.30, 0.62}, {0.45, 0.90}, {0.22, 0.44}}
	for i, r := range rows {
		if r.DMIPSPerMHz < bands[i].lo || r.DMIPSPerMHz > bands[i].hi {
			t.Errorf("%s DMIPS/MHz = %.3f outside band [%.2f, %.2f]",
				r.Name, r.DMIPSPerMHz, bands[i].lo, bands[i].hi)
		}
	}
	if !strings.Contains(text, "Table II") {
		t.Error("Table2 header missing")
	}
}

func TestTable3Rendering(t *testing.T) {
	all := suite(t)
	rows, text := Table3(all)
	if len(rows) != 4 {
		t.Fatalf("Table3 rows = %d, want 4", len(rows))
	}
	byName := map[string]Table3Row{}
	for _, r := range rows {
		byName[r.Benchmark] = r
		if r.ART9Cycles >= r.PicoCycles {
			t.Errorf("%s: ART-9 does not win (%d vs %d)", r.Benchmark, r.ART9Cycles, r.PicoCycles)
		}
	}
	// GEMM's advantage must be the smallest of the suite (the paper's
	// crossover: no multiplier).
	gemmRatio := float64(byName["gemm"].PicoCycles) / float64(byName["gemm"].ART9Cycles)
	for _, r := range rows {
		if r.Benchmark == "gemm" {
			continue
		}
		ratio := float64(r.PicoCycles) / float64(r.ART9Cycles)
		if ratio <= gemmRatio {
			t.Errorf("crossover lost: %s ratio %.2f ≤ gemm %.2f", r.Benchmark, ratio, gemmRatio)
		}
	}
	if !strings.Contains(text, "Table III") {
		t.Error("Table3 header missing")
	}
}

func TestTable4Rendering(t *testing.T) {
	all := suite(t)
	impl, text := Table4(all["dhrystone"])
	if impl.Gates < 489 || impl.Gates > 815 {
		t.Errorf("gates = %d, want ≈652", impl.Gates)
	}
	if impl.PowerW < 30e-6 || impl.PowerW > 65e-6 {
		t.Errorf("power = %.1f µW, want ≈42.7", impl.PowerW*1e6)
	}
	if impl.DMIPSPerW < 1.5e6 || impl.DMIPSPerW > 6e6 {
		t.Errorf("DMIPS/W = %.3g, want ≈3.06e6 class", impl.DMIPSPerW)
	}
	if !strings.Contains(text, "Table IV") || !strings.Contains(text, "CNTFET") {
		t.Error("Table4 text wrong")
	}
}

func TestTable5Rendering(t *testing.T) {
	all := suite(t)
	impl, text := Table5(all["dhrystone"])
	if impl.RAMBits != 9216 {
		t.Errorf("RAM bits = %d, want exactly 9216", impl.RAMBits)
	}
	if impl.FreqMHz != 150 {
		t.Errorf("frequency = %.0f, want 150", impl.FreqMHz)
	}
	if impl.PowerW < 0.85 || impl.PowerW > 1.35 {
		t.Errorf("power = %.2f W, want ≈1.09", impl.PowerW)
	}
	if impl.DMIPSPerW < 35 || impl.DMIPSPerW > 110 {
		t.Errorf("DMIPS/W = %.1f, want ≈57.8 class", impl.DMIPSPerW)
	}
	if impl.ALMs < 600 || impl.ALMs > 1000 {
		t.Errorf("ALMs = %d, want ≈803", impl.ALMs)
	}
	if !strings.Contains(text, "Table V") {
		t.Error("Table5 header missing")
	}
}

func TestDMIPSPerWGapBetweenTechnologies(t *testing.T) {
	// The paper's headline: CNTFET is orders of magnitude above the
	// FPGA emulation. Require ≥ 4 orders.
	all := suite(t)
	cntfet, _ := Table4(all["dhrystone"])
	fpga, _ := Table5(all["dhrystone"])
	if cntfet.DMIPSPerW/fpga.DMIPSPerW < 1e4 {
		t.Errorf("technology gap only %.3g×, want ≥1e4",
			cntfet.DMIPSPerW/fpga.DMIPSPerW)
	}
}

func TestAllTablesOneShot(t *testing.T) {
	s, err := AllTables()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig. 5", "Table II", "Table III", "Table IV", "Table V"} {
		if !strings.Contains(s, want) {
			t.Errorf("AllTables missing %q", want)
		}
	}
}

func TestOutcomeCyclesPerIteration(t *testing.T) {
	o := &Outcome{Workload: Dhrystone, ART9Cycles: 134200}
	if got := o.CyclesPerIteration(); got != 1342 {
		t.Errorf("CyclesPerIteration = %f, want 1342", got)
	}
	o = &Outcome{Workload: BubbleSort, ART9Cycles: 100}
	if got := o.CyclesPerIteration(); got != 100 {
		t.Errorf("iterations=1 normalisation wrong: %f", got)
	}
}

func TestTranslationDiagnosticsSurface(t *testing.T) {
	// The harness must carry translator diagnostics through (the value
	// contract is visible to users).
	all := suite(t)
	found := false
	for _, o := range all {
		if len(o.Diagnostics) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no diagnostics surfaced across the whole suite (mul/div/boolean ops should produce them)")
	}
}
