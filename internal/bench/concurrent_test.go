package bench

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/gate"
	"repro/internal/xlate"
)

// TestRunAllMatchesSerial is the determinism contract of the concurrent
// engine: fanning the suite out must change nothing but wall-clock time.
func TestRunAllMatchesSerial(t *testing.T) {
	serial, err := RunAllSerial()
	if err != nil {
		t.Fatal(err)
	}
	conc, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(conc) != len(serial) {
		t.Fatalf("concurrent run produced %d outcomes, serial %d", len(conc), len(serial))
	}
	for name, so := range serial {
		co, ok := conc[name]
		if !ok {
			t.Fatalf("workload %s missing from concurrent run", name)
		}
		if !reflect.DeepEqual(so, co) {
			t.Errorf("workload %s: concurrent outcome diverges from serial:\nserial:     %+v\nconcurrent: %+v", name, so, co)
		}
	}
}

// TestAllTablesByteIdentical pins the acceptance criterion directly: the
// engine-backed AllTables must render byte-identical artifacts to the
// serial path.
func TestAllTablesByteIdentical(t *testing.T) {
	serial, err := RunAllSerial()
	if err != nil {
		t.Fatal(err)
	}
	want := RenderTables(serial)

	got, err := AllTables()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("concurrent tables differ from serial rendering:\n--- serial ---\n%s\n--- concurrent ---\n%s", want, got)
	}

	eng := engine.New(engine.Options{Workers: 3})
	defer eng.Close()
	got2, err := AllTablesOn(context.Background(), eng)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != want {
		t.Error("AllTablesOn output differs from serial rendering")
	}
}

func TestRunCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, BubbleSort, xlate.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

func TestImplForMatchesTables(t *testing.T) {
	dhry, err := Run(Dhrystone, xlate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cntfet, _ := Table4(dhry)
	if got := ImplFor(dhry, gate.CNTFET32()); got != cntfet {
		t.Errorf("ImplFor(cntfet) = %+v, want Table IV's %+v", got, cntfet)
	}
	fpga, _ := Table5(dhry)
	if got := ImplFor(dhry, gate.StratixVEmulation()); got != fpga {
		t.Errorf("ImplFor(fpga) = %+v, want Table V's %+v", got, fpga)
	}
}

func TestRunAllOnCancelled(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2})
	defer eng.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunAllOn(ctx, eng)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

func TestSuiteJobsCoverEveryWorkload(t *testing.T) {
	jobs := SuiteJobs(Workloads, xlate.Options{})
	if len(jobs) != len(Workloads) {
		t.Fatalf("%d jobs for %d workloads", len(jobs), len(Workloads))
	}
	for i, j := range jobs {
		if j.ID != Workloads[i].Name {
			t.Errorf("job %d: ID %q, want %q", i, j.ID, Workloads[i].Name)
		}
	}
}

// The committed speedup demonstration: BenchmarkRunAllSerial vs
// BenchmarkRunAllEngine. On a single core the two are equivalent (the
// engine degenerates to one worker); on >= 2 cores the engine path wins
// because the four workloads run concurrently.
func BenchmarkRunAllSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunAllSerial(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunAllEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAllEngineShared reuses one engine (pool and caches warm)
// across iterations — the steady-state batch-serving shape.
func BenchmarkRunAllEngineShared(b *testing.B) {
	eng := engine.New(engine.Options{})
	defer eng.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunAllOn(ctx, eng); err != nil {
			b.Fatal(err)
		}
	}
}
