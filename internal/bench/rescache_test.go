package bench

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/gate"
	"repro/internal/rescache"
	"repro/internal/xlate"
)

// warmManifest is a two-job manifest over the built-in suite with both
// technologies — the shape the cache-smoke CI job replays.
func warmManifest(t *testing.T) ([]engine.Job, *Manifest) {
	t.Helper()
	m, err := ParseManifest([]byte(`{
		"technologies": ["cntfet32", "stratixv"],
		"jobs": [
			{"name": "bubble", "workload": "bubble"},
			{"name": "dhry", "workload": "dhrystone"}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := m.EngineJobs("", xlate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return jobs, m
}

func TestResultCacheRoundTripRendersIdentically(t *testing.T) {
	jobs, m := warmManifest(t)
	techs, err := m.ResolveTechnologies()
	if err != nil {
		t.Fatal(err)
	}
	cache := NewResultCache(rescache.NewLRU(0, 0))

	cold := engine.New(engine.Options{Workers: 2, PrivateCaches: true, Cache: cache})
	defer cold.Close()
	coldRes, err := cold.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Puts != uint64(len(jobs)) || st.Hits != 0 {
		t.Fatalf("cold stats %+v, want %d puts / 0 hits", st, len(jobs))
	}

	// A fresh engine sharing the store answers every job from cache.
	warm := engine.New(engine.Options{Workers: 2, PrivateCaches: true, Cache: cache})
	defer warm.Close()
	warmRes, err := warm.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != uint64(len(jobs)) {
		t.Fatalf("warm stats %+v, want %d hits", st, len(jobs))
	}

	for i := range jobs {
		if warmRes[i].Worker != -1 {
			t.Fatalf("job %s: warm Worker = %d, want -1", jobs[i].ID, warmRes[i].Worker)
		}
		cr := JobReportOf(coldRes[i], techs)
		wr := JobReportOf(warmRes[i], techs)
		// The replayed row matches the computed one on everything that
		// describes the work — name, verdict, metrics, implementations.
		// Elapsed/worker are run-local by design.
		cr.ElapsedMS, wr.ElapsedMS = 0, 0
		cr.Worker, wr.Worker = 0, 0
		if !reflect.DeepEqual(cr, wr) {
			cj, _ := json.Marshal(cr)
			wj, _ := json.Marshal(wr)
			t.Fatalf("job %s: cached row diverges:\ncold %s\nwarm %s", jobs[i].ID, cj, wj)
		}
		if wr.Name != jobs[i].ID {
			t.Fatalf("job %s: replayed name %q", jobs[i].ID, wr.Name)
		}
		if wr.Metrics == nil || len(wr.Implementations) != len(techs) {
			t.Fatalf("job %s: replayed row missing metrics or implementations", jobs[i].ID)
		}
	}
}

func TestResultCacheKeying(t *testing.T) {
	base := &JobSpec{
		Job:          ManifestJob{Name: "a", Source: "LDI T1, 1\nHALT", Iterations: 1},
		Technologies: []string{"cntfet32"},
	}
	k1, ok := resultKey(base)
	if !ok {
		t.Fatal("base spec did not key")
	}

	// Name and timeout are excluded: renamed/re-bounded jobs hit.
	renamed := *base
	renamed.Job.Name, renamed.Job.TimeoutMS = "other", 500
	if k2, _ := resultKey(&renamed); k2 != k1 {
		t.Error("rename/timeout changed the key")
	}

	// Source, iterations, and technologies all participate.
	for _, mutate := range []func(*JobSpec){
		func(s *JobSpec) { s.Job.Source = "LDI T1, 2\nHALT" },
		func(s *JobSpec) { s.Job.Iterations = 2 },
		func(s *JobSpec) { s.Technologies = []string{"stratixv"} },
		func(s *JobSpec) { s.Technologies = nil },
	} {
		mut := *base
		mutate(&mut)
		if k2, ok := resultKey(&mut); !ok || k2 == k1 {
			t.Errorf("mutation did not change the key (%+v)", mut)
		}
	}

	// File jobs and empty programs are not content-addressable.
	if _, ok := resultKey(&JobSpec{Job: ManifestJob{File: "prog.s"}}); ok {
		t.Error("file spec keyed; a path is not content")
	}
	if _, ok := resultKey(&JobSpec{}); ok {
		t.Error("empty spec keyed")
	}
	if _, ok := resultKey(nil); ok {
		t.Error("nil spec keyed")
	}

	// An unresolvable technology name makes the spec uncacheable — the
	// key covers model content, and there is no model to fingerprint.
	unknown := *base
	unknown.Technologies = []string{"no-such-tech"}
	if _, ok := resultKey(&unknown); ok {
		t.Error("spec with unknown technology keyed")
	}
}

// TestResultKeyTechnologyListCollision is the regression test for the
// \x00-join bug: ["a\x00b"] and ["a","b"] collapsed into one joined
// key part and collided. Each technology is now its own
// length-prefixed part pair, so the two lists must derive distinct
// keys.
func TestResultKeyTechnologyListCollision(t *testing.T) {
	for _, name := range []string{"a", "b", "a\x00b"} {
		t.Cleanup(RegisterTechnology(name, gate.CNTFET32))
	}
	spec := func(techs ...string) *JobSpec {
		return &JobSpec{
			Job:          ManifestJob{Source: "LDI T1, 1\nHALT", Iterations: 1},
			Technologies: techs,
		}
	}
	joined, ok1 := resultKey(spec("a\x00b"))
	split, ok2 := resultKey(spec("a", "b"))
	if !ok1 || !ok2 {
		t.Fatal("collision specs did not key")
	}
	if joined == split {
		t.Fatal(`["a\x00b"] and ["a","b"] derive the same key`)
	}
}

// TestResultKeyCoversTechnologyContent pins the tentpole: editing one
// number in a technology table — here a single cell DelayPs — must
// change every key derived under that technology's name, so a stale
// row can never replay as a hit.
func TestResultKeyCoversTechnologyContent(t *testing.T) {
	spec := &JobSpec{
		Job:          ManifestJob{Source: "LDI T1, 1\nHALT", Iterations: 1},
		Technologies: []string{"cntfet32"},
	}
	before, ok := resultKey(spec)
	if !ok {
		t.Fatal("spec did not key")
	}
	restore := RegisterTechnology("cntfet32", func() *gate.Technology {
		tech := gate.CNTFET32()
		props := make(map[gate.CellKind]gate.CellProps, len(tech.Props))
		for k, v := range tech.Props {
			props[k] = v
		}
		p := props[gate.TFA]
		p.DelayPs++
		props[gate.TFA] = p
		tech.Props = props
		return tech
	})
	defer restore()
	after, ok := resultKey(spec)
	if !ok {
		t.Fatal("edited spec did not key")
	}
	if before == after {
		t.Fatal("editing a DelayPs did not change the result key")
	}
}

func TestResultCacheRejectsCorruptAndFailedEntries(t *testing.T) {
	store := rescache.NewLRU(0, 0)
	cache := NewResultCache(store)
	ctx := context.Background()
	spec := &JobSpec{Job: ManifestJob{Source: "LDI T1, 1\nHALT", Iterations: 1}}

	// Corrupt bytes under the right key degrade to a miss, are counted,
	// and are evicted on first read — left in place they would re-fail
	// on every lookup forever.
	key, _ := resultKey(spec)
	store.Put(ctx, key, []byte("not json"))
	if _, ok := cache.Lookup(ctx, spec); ok {
		t.Fatal("corrupt entry answered a lookup")
	}
	if _, ok := store.Get(ctx, key); ok {
		t.Fatal("corrupt entry survived its first read")
	}
	if got := cache.Stats().Corrupt; got != 1 {
		t.Fatalf("Corrupt = %d, want 1", got)
	}

	// A stored-but-not-OK row is corrupt too: evicted and counted.
	raw, _ := json.Marshal(&JobReport{OK: false})
	store.Put(ctx, key, raw)
	if _, ok := cache.Lookup(ctx, spec); ok {
		t.Fatal("non-OK entry answered a lookup")
	}
	if _, ok := store.Get(ctx, key); ok {
		t.Fatal("non-OK entry survived its first read")
	}
	if got := cache.Stats().Corrupt; got != 2 {
		t.Fatalf("Corrupt = %d, want 2", got)
	}

	// Failed rows are refused at store time.
	cache.Store(ctx, spec, &JobReport{OK: false, Error: "boom"})
	if _, ok := cache.Lookup(ctx, spec); ok {
		t.Fatal("failed row was cached")
	}

	// A peer row stores normalized: name/elapsed/worker scrubbed.
	cache.Store(ctx, spec, &JobReport{
		Name: "peer-name", OK: true, ElapsedMS: 12.5, Worker: 3,
		Metrics: &MetricsReport{Checksum: 7},
	})
	v, ok := cache.Lookup(ctx, spec)
	if !ok {
		t.Fatal("stored peer row missed")
	}
	jr := v.(*JobReport)
	if jr.Name != "" || jr.ElapsedMS != 0 || jr.Worker != -1 {
		t.Fatalf("peer row not normalized: %+v", jr)
	}
	if jr.Metrics == nil || jr.Metrics.Checksum != 7 {
		t.Fatalf("peer row lost metrics: %+v", jr)
	}
}
