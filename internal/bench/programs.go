// Package bench carries the benchmark suite of §V-A of the paper — bubble
// sort, general matrix multiplication (GEMM), Sobel filter, and the
// Dhrystone-class workload — written in RV32 assembly (the input side of
// the software-level compiling framework), plus the harness that runs each
// program on every core model and regenerates Fig. 5 and Tables II–V.
//
// Every program ends by leaving an order-sensitive checksum in a0 and
// halting; the harness verifies that the RV32 machine and the translated
// ART-9 program (functional and pipelined) agree on it. All runtime values
// honour the translator's 9-trit value contract.
package bench

import (
	"fmt"
	"strings"
)

// Workload is one benchmark program.
type Workload struct {
	Name        string
	Description string
	Source      string // RV32 assembly
	// Iterations is the outer-loop count for per-iteration metrics
	// (only Dhrystone uses it; 1 otherwise).
	Iterations int
}

// The suite of §V-A.
var (
	BubbleSort = Workload{
		Name:        "bubble",
		Description: "bubble sort of 22 words, worst-case (descending) input",
		Source:      bubbleSrc,
		Iterations:  1,
	}
	GEMM = Workload{
		Name:        "gemm",
		Description: "6×6 integer GEMM with small-magnitude operands ([22]-style)",
		Source:      gemmSrc,
		Iterations:  1,
	}
	Sobel = Workload{
		Name:        "sobel",
		Description: "3×3 Sobel gradient over a 16×16 image ([21])",
		Source:      sobelSrc(),
		Iterations:  1,
	}
	Dhrystone = Workload{
		Name:        "dhrystone",
		Description: "Dhrystone-class synthetic integer workload, 100 iterations ([23])",
		Source:      dhrystoneSrc,
		Iterations:  100,
	}
)

// Workloads lists the suite in the paper's order.
var Workloads = []Workload{BubbleSort, GEMM, Sobel, Dhrystone}

// ByName returns the workload with the given name, searching the paper
// suite first and then the extended workloads.
func ByName(name string) (Workload, bool) {
	for _, w := range Workloads {
		if w.Name == name {
			return w, true
		}
	}
	for _, w := range ExtendedWorkloads {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

const bubbleSrc = `
# Bubble sort, N = 22, descending input (worst case: every compare swaps).
.equ N, 22
.data
arr:	.word 221, 210, 205, 198, 187, 176, 165, 154, 143, 132, 121
	.word 110, 99, 88, 77, 66, 55, 44, 33, 22, 11, 5
.text
	la   s0, arr
	li   s1, 21          # outer: passes remaining (N-1)
outer:
	mv   s2, s0          # ptr
	li   s3, 0           # j
inner:
	lw   t0, 0(s2)
	lw   t1, 4(s2)
	ble  t0, t1, noswap
	sw   t1, 0(s2)
	sw   t0, 4(s2)
noswap:
	addi s2, s2, 4
	addi s3, s3, 1
	blt  s3, s1, inner
	addi s1, s1, -1
	bgtz s1, outer

	# Order-sensitive checksum: alternating sum of the array.
	la   s0, arr
	li   s1, N
	li   a0, 0
	li   t2, 0
chk:
	lw   t0, 0(s0)
	bnez t2, odd
	add  a0, a0, t0
	li   t2, 1
	j    next
odd:
	sub  a0, a0, t0
	li   t2, 0
next:
	addi s0, s0, 4
	addi s1, s1, -1
	bgtz s1, chk
	ebreak
`

const gemmSrc = `
# GEMM: C = A×B, 6×6, row-major words, with B stored transposed (BT) so
# the inner product walks both operands with unit stride — the layout a
# DD-based quantum-simulation kernel uses ([22]). Operands are small
# (two-trit) integers, the regime where the ART-9 software multiply's
# early exit makes Table III report near-parity with the
# hardware-multiplier PicoRV32.
.equ N, 6
.data
A:	.word  2, -3,  4,  1, -2,  3
	.word -1,  2,  3, -4,  2,  1
	.word  3,  1, -2,  2,  4, -1
	.word  2, -2,  1,  3, -3,  2
	.word -4,  3,  2, -1,  2,  2
	.word  1,  2, -3,  4,  1, -2
.org 144
BT:	.word  3,  2, -1,  4,  2, -3
	.word -2,  1,  4, -3,  2,  1
	.word  1, -3,  2,  2, -1,  4
	.word  4,  2, -2,  1,  3, -2
	.word -1,  3,  1,  2, -2,  4
	.word  2, -2,  3, -4,  1,  2
.org 288
C:	.space 144
.text
	la   s5, A
	la   s6, BT
	la   s7, C
	li   s0, 0           # i*24 (A/C row byte offset)
iloop:
	li   s1, 0           # j*24 (BT row byte offset)
	li   s8, 0           # j*4 (C column byte offset)
jloop:
	li   a0, 0           # acc
	add  s2, s5, s0      # &A[i][0]
	add  s3, s6, s1      # &BT[j][0]
	li   s4, N           # k
kloop:
	lw   t0, 0(s2)
	lw   t1, 0(s3)
	mul  t0, t0, t1
	add  a0, a0, t0
	addi s2, s2, 4
	addi s3, s3, 4
	addi s4, s4, -1
	bgtz s4, kloop
	add  t2, s7, s0      # &C[i][0]
	add  t2, t2, s8
	sw   a0, 0(t2)
	addi s8, s8, 4
	addi s1, s1, 24
	li   t3, 144
	blt  s1, t3, jloop
	addi s0, s0, 24
	li   t3, 144
	blt  s0, t3, iloop

	# Alternating-sum checksum over C.
	la   s0, C
	li   s1, 36
	li   a0, 0
	li   t2, 0
chk:
	lw   t0, 0(s0)
	bnez t2, odd
	add  a0, a0, t0
	li   t2, 1
	j    next
odd:
	sub  a0, a0, t0
	li   t2, 0
next:
	addi s0, s0, 4
	addi s1, s1, -1
	bgtz s1, chk
	ebreak
`

// sobelSrc builds the Sobel benchmark with the 16×16 test image emitted as
// static data: img[r][c] = (r*3 + c*5) % 21 (the same formula the
// reference implementation in the tests uses).
func sobelSrc() string {
	var img strings.Builder
	for r := 0; r < 16; r++ {
		img.WriteString("\t.word ")
		for c := 0; c < 16; c++ {
			if c > 0 {
				img.WriteString(", ")
			}
			fmt.Fprintf(&img, "%d", (r*3+c*5)%21)
		}
		img.WriteByte('\n')
	}
	return `
# Sobel 3×3 gradient: out[r][c] = |Gx| + |Gy| over the 14×14 interior of a
# 16×16 image. Kernel weights are ±1/±2, so the filter maps entirely onto
# adds/doublings — no multiplier on either core. Pointers advance
# incrementally (s3 input, s4 output).
.data
img:
` + img.String() + `
.org 1024
out:	.space 784
.text
	la   s3, img         # &img[r-1][c-1]
	la   s4, out
	li   s1, 14          # rows
rloop:
	li   s2, 14          # cols
cloop:
	# Row r-1: p00, p01, p02.
	lw   t0, 0(s3)
	lw   t1, 8(s3)
	sub  a1, t1, t0      # gx = p02 - p00
	add  a2, t0, t1      # gy_neg = p00 + p02
	lw   t0, 4(s3)
	add  a2, a2, t0
	add  a2, a2, t0      # gy_neg += 2*p01
	# Row r: p10, p12 (weight 2 in gx), through a row pointer.
	addi t2, s3, 64
	lw   t0, 0(t2)
	lw   t1, 8(t2)
	sub  t1, t1, t0
	add  a1, a1, t1
	add  a1, a1, t1      # gx += 2*(p12 - p10)
	# Row r+1: p20, p21, p22.
	addi t2, t2, 64
	neg  a2, a2          # gy = -gy_neg so far
	lw   t0, 0(t2)
	lw   t1, 8(t2)
	add  a2, a2, t0
	add  a2, a2, t1      # gy += p20 + p22
	sub  t1, t1, t0
	add  a1, a1, t1      # gx += p22 - p20
	lw   t0, 4(t2)
	add  a2, a2, t0
	add  a2, a2, t0      # gy += 2*p21
	# |gx| + |gy|
	bgez a1, gxok
	neg  a1, a1
gxok:
	bgez a2, gyok
	neg  a2, a2
gyok:
	add  a1, a1, a2
	sw   a1, 0(s4)
	addi s3, s3, 4
	addi s4, s4, 4
	addi s2, s2, -1
	bgtz s2, cloop
	addi s3, s3, 8       # skip the two border cells to the next row
	addi s1, s1, -1
	bgtz s1, rloop

	# Alternating-sum checksum over out (196 words).
	la   s0, out
	li   s1, 196
	li   a0, 0
	li   t2, 0
chk:
	lw   t0, 0(s0)
	bnez t2, odd
	add  a0, a0, t0
	li   t2, 1
	j    next
odd:
	sub  a0, a0, t0
	li   t2, 0
next:
	addi s0, s0, 4
	addi s1, s1, -1
	bgtz s1, chk
	ebreak
`
}
