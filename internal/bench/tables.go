package bench

import (
	"fmt"
	"strings"

	"repro/internal/gate"
	"repro/internal/perf"
	"repro/internal/rv32"
)

// This file regenerates every table and figure of the paper's evaluation
// (§V): Fig. 5 and Tables II–V, in the same row/column structure.

// FPGA prototype memory configuration of Table V: two 256-word
// binary-encoded ternary memories.
const (
	fpgaMemWords = 256
	fpgaMemTrits = 2 * fpgaMemWords * 9
	fpgaRAMBits  = fpgaMemTrits * 2
	fpgaFreqMHz  = 150
)

// memAccess returns the measured TIM+TDM word-access rate of a run: one
// instruction fetch per issue slot plus the data-access duty cycle — the
// activity input of the memory power model.
func memAccess(o *Outcome) float64 {
	if o.ART9Cycles == 0 {
		return 1
	}
	return (float64(o.ARTRetired) + float64(o.ARTLoads+o.ARTStores)) /
		float64(o.ART9Cycles)
}

// Fig5Row is one benchmark group of Fig. 5.
type Fig5Row struct {
	Benchmark string
	ARTTrits  int
	RVBits    int
	ARMBits   int
}

// Fig5 renders the memory-cell comparison of Fig. 5.
func Fig5(all map[string]*Outcome) ([]Fig5Row, string) {
	var rows []Fig5Row
	var b strings.Builder
	b.WriteString("Fig. 5 — memory cells for storing benchmark programs\n")
	fmt.Fprintf(&b, "%-12s %14s %14s %14s %10s\n",
		"benchmark", "ART-9 (trits)", "RV32I (bits)", "ARMv6-M (bits)", "vs RV32I")
	for _, w := range Workloads {
		o := all[w.Name]
		rows = append(rows, Fig5Row{w.Name, o.ARTTrits, o.RVBits, o.ARMBits})
		fmt.Fprintf(&b, "%-12s %14d %14d %14d %9.0f%%\n",
			w.Name, o.ARTTrits, o.RVBits, o.ARMBits,
			100*(1-float64(o.ARTTrits)/float64(o.RVBits)))
	}
	return rows, b.String()
}

// Table2 renders the Dhrystone comparison of Table II.
func Table2(dhry *Outcome) ([]perf.CoreRow, string) {
	iters := float64(dhry.Workload.Iterations)
	rows := []perf.CoreRow{
		{
			Name: "ART-9 (this work)", ISA: "ART-9 ISA",
			Instructions: 24, Stages: 5, Multiplier: false,
			DMIPSPerMHz: perf.DMIPSPerMHz(float64(dhry.ART9Cycles) / iters),
			MemoryCells: dhry.ARTTrits, CellUnit: "trits",
		},
		{
			Name: "VexRiscv", ISA: "RV32I",
			Instructions: rv32.NumRV32I, Stages: 5, Multiplier: true,
			DMIPSPerMHz: perf.DMIPSPerMHz(float64(dhry.VexCycles) / iters),
			MemoryCells: dhry.RVBits, CellUnit: "bits",
		},
		{
			Name: "PicoRV32", ISA: "RV32IM",
			Instructions: rv32.NumRV32IM, Stages: 1, Multiplier: true,
			DMIPSPerMHz: perf.DMIPSPerMHz(float64(dhry.PicoCycles) / iters),
			MemoryCells: dhry.RVBits, CellUnit: "bits",
		},
	}
	var b strings.Builder
	b.WriteString("Table II — simulation results of dhrystone benchmark\n")
	fmt.Fprintf(&b, "%-20s %-10s %7s %7s %11s %12s %15s\n",
		"core", "ISA", "#instr", "stages", "multiplier", "DMIPS/MHz", "memory cells")
	for _, r := range rows {
		mult := "X"
		if r.Multiplier {
			mult = "O"
		}
		fmt.Fprintf(&b, "%-20s %-10s %7d %7d %11s %12.2f %15s\n",
			r.Name, r.ISA, r.Instructions, r.Stages, mult, r.DMIPSPerMHz, r.FormatCell())
	}
	return rows, b.String()
}

// Table3Row is one column of Table III.
type Table3Row struct {
	Benchmark  string
	ART9Cycles uint64
	PicoCycles uint64
}

// Table3 renders the processing-cycle comparison of Table III.
func Table3(all map[string]*Outcome) ([]Table3Row, string) {
	var rows []Table3Row
	var b strings.Builder
	b.WriteString("Table III — processing cycles for different test programs\n")
	fmt.Fprintf(&b, "%-12s %12s %12s %8s\n", "benchmark", "ART-9", "PicoRV32", "speedup")
	for _, w := range Workloads {
		o := all[w.Name]
		rows = append(rows, Table3Row{w.Name, o.ART9Cycles, o.PicoCycles})
		fmt.Fprintf(&b, "%-12s %12d %12d %7.2fx\n",
			w.Name, o.ART9Cycles, o.PicoCycles,
			float64(o.PicoCycles)/float64(o.ART9Cycles))
	}
	return rows, b.String()
}

// Table4 renders the CNTFET implementation results of Table IV.
func Table4(dhry *Outcome) (perf.Implementation, string) {
	n := gate.BuildART9()
	tech := gate.CNTFET32()
	an := gate.Analyze(n, tech)
	cyclesPerIter := float64(dhry.ART9Cycles) / float64(dhry.Workload.Iterations)
	impl := perf.Estimate(an, tech, 0, cyclesPerIter, 0, memAccess(dhry), 0)
	var b strings.Builder
	b.WriteString("Table IV — implementation results using CNTFET ternary gates\n")
	fmt.Fprintf(&b, "%-10s %12s %10s %12s\n", "voltage", "total gates", "power", "DMIPS/W")
	fmt.Fprintf(&b, "%-10s %12d %9.1fuW %12.3g\n",
		fmt.Sprintf("%.1fV", impl.VoltageV), impl.Gates, impl.PowerW*1e6, impl.DMIPSPerW)
	fmt.Fprintf(&b, "(fmax %.1f MHz, %.2f DMIPS)\n", impl.FreqMHz, impl.DMIPS)
	return impl, b.String()
}

// Table5 renders the FPGA implementation results of Table V.
func Table5(dhry *Outcome) (perf.Implementation, string) {
	n := gate.BuildART9()
	tech := gate.StratixVEmulation()
	an := gate.Analyze(n, tech)
	cyclesPerIter := float64(dhry.ART9Cycles) / float64(dhry.Workload.Iterations)
	impl := perf.Estimate(an, tech, fpgaFreqMHz, cyclesPerIter,
		fpgaMemTrits, memAccess(dhry), fpgaRAMBits)
	var b strings.Builder
	b.WriteString("Table V — implementation results using FPGA-based ternary logics\n")
	fmt.Fprintf(&b, "%-10s %10s %8s %10s %10s %8s %10s\n",
		"voltage", "frequency", "ALMs", "registers", "RAM", "power", "DMIPS/W")
	fmt.Fprintf(&b, "%-10s %7dMHz %8d %10d %6dbits %7.2fW %10.1f\n",
		fmt.Sprintf("%.1fV", impl.VoltageV), int(impl.FreqMHz), impl.ALMs,
		impl.Registers, impl.RAMBits, impl.PowerW, impl.DMIPSPerW)
	return impl, b.String()
}

// AllTables runs the suite and renders every artifact.
func AllTables() (string, error) {
	all, err := RunAll()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	_, s := Fig5(all)
	b.WriteString(s + "\n")
	_, s = Table2(all["dhrystone"])
	b.WriteString(s + "\n")
	_, s = Table3(all)
	b.WriteString(s + "\n")
	_, s = Table4(all["dhrystone"])
	b.WriteString(s + "\n")
	_, s = Table5(all["dhrystone"])
	b.WriteString(s)
	return b.String(), nil
}
