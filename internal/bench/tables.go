package bench

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/gate"
	"repro/internal/perf"
	"repro/internal/rv32"
)

// This file regenerates every table and figure of the paper's evaluation
// (§V): Fig. 5 and Tables II–V, in the same row/column structure.

// FPGA prototype memory configuration of Table V: two 256-word
// binary-encoded ternary memories.
const (
	fpgaMemWords = 256
	fpgaMemTrits = 2 * fpgaMemWords * 9
	fpgaRAMBits  = fpgaMemTrits * 2
	fpgaFreqMHz  = 150
)

// Fig5Row is one benchmark group of Fig. 5.
type Fig5Row struct {
	Benchmark string
	ARTTrits  int
	RVBits    int
	ARMBits   int
}

// Fig5 renders the memory-cell comparison of Fig. 5.
func Fig5(all map[string]*Outcome) ([]Fig5Row, string) {
	var rows []Fig5Row
	var b strings.Builder
	b.WriteString("Fig. 5 — memory cells for storing benchmark programs\n")
	fmt.Fprintf(&b, "%-12s %14s %14s %14s %10s\n",
		"benchmark", "ART-9 (trits)", "RV32I (bits)", "ARMv6-M (bits)", "vs RV32I")
	for _, w := range Workloads {
		o := all[w.Name]
		rows = append(rows, Fig5Row{w.Name, o.ARTTrits, o.RVBits, o.ARMBits})
		fmt.Fprintf(&b, "%-12s %14d %14d %14d %9.0f%%\n",
			w.Name, o.ARTTrits, o.RVBits, o.ARMBits,
			100*(1-float64(o.ARTTrits)/float64(o.RVBits)))
	}
	return rows, b.String()
}

// Table2 renders the Dhrystone comparison of Table II.
func Table2(dhry *Outcome) ([]perf.CoreRow, string) {
	iters := float64(dhry.Workload.Iterations)
	rows := []perf.CoreRow{
		{
			Name: "ART-9 (this work)", ISA: "ART-9 ISA",
			Instructions: 24, Stages: 5, Multiplier: false,
			DMIPSPerMHz: perf.DMIPSPerMHz(float64(dhry.ART9Cycles) / iters),
			MemoryCells: dhry.ARTTrits, CellUnit: "trits",
		},
		{
			Name: "VexRiscv", ISA: "RV32I",
			Instructions: rv32.NumRV32I, Stages: 5, Multiplier: true,
			DMIPSPerMHz: perf.DMIPSPerMHz(float64(dhry.VexCycles) / iters),
			MemoryCells: dhry.RVBits, CellUnit: "bits",
		},
		{
			Name: "PicoRV32", ISA: "RV32IM",
			Instructions: rv32.NumRV32IM, Stages: 1, Multiplier: true,
			DMIPSPerMHz: perf.DMIPSPerMHz(float64(dhry.PicoCycles) / iters),
			MemoryCells: dhry.RVBits, CellUnit: "bits",
		},
	}
	var b strings.Builder
	b.WriteString("Table II — simulation results of dhrystone benchmark\n")
	fmt.Fprintf(&b, "%-20s %-10s %7s %7s %11s %12s %15s\n",
		"core", "ISA", "#instr", "stages", "multiplier", "DMIPS/MHz", "memory cells")
	for _, r := range rows {
		mult := "X"
		if r.Multiplier {
			mult = "O"
		}
		fmt.Fprintf(&b, "%-20s %-10s %7d %7d %11s %12.2f %15s\n",
			r.Name, r.ISA, r.Instructions, r.Stages, mult, r.DMIPSPerMHz, r.FormatCell())
	}
	return rows, b.String()
}

// Table3Row is one column of Table III.
type Table3Row struct {
	Benchmark  string
	ART9Cycles uint64
	PicoCycles uint64
}

// Table3 renders the processing-cycle comparison of Table III.
func Table3(all map[string]*Outcome) ([]Table3Row, string) {
	var rows []Table3Row
	var b strings.Builder
	b.WriteString("Table III — processing cycles for different test programs\n")
	fmt.Fprintf(&b, "%-12s %12s %12s %8s\n", "benchmark", "ART-9", "PicoRV32", "speedup")
	for _, w := range Workloads {
		o := all[w.Name]
		rows = append(rows, Table3Row{w.Name, o.ART9Cycles, o.PicoCycles})
		fmt.Fprintf(&b, "%-12s %12d %12d %7.2fx\n",
			w.Name, o.ART9Cycles, o.PicoCycles,
			float64(o.PicoCycles)/float64(o.ART9Cycles))
	}
	return rows, b.String()
}

// ImplFor estimates the implementation metrics of one outcome against a
// technology, at the operating point the paper's tables use: native
// technologies run at the analyzed fmax with the off-datapath memory
// power terms omitted (Table IV), while FPGA emulations (recognised by
// their ALM costs) use the prototype's clock and two 256-word
// binary-encoded memories (Table V). Batch reports computed through
// this helper stay comparable to the repo's own tables.
func ImplFor(o *Outcome, tech *gate.Technology) perf.Implementation {
	an := engine.AnalyzeART9(tech)
	if an.ALMs > 0 {
		return perf.Estimate(an, tech, fpgaFreqMHz, o.CyclesPerIteration(),
			fpgaMemTrits, o.MemAccessRate(), fpgaRAMBits)
	}
	return perf.Estimate(an, tech, 0, o.CyclesPerIteration(), 0, o.MemAccessRate(), 0)
}

// Table4 renders the CNTFET implementation results of Table IV.
func Table4(dhry *Outcome) (perf.Implementation, string) {
	impl := ImplFor(dhry, gate.CNTFET32())
	var b strings.Builder
	b.WriteString("Table IV — implementation results using CNTFET ternary gates\n")
	fmt.Fprintf(&b, "%-10s %12s %10s %12s\n", "voltage", "total gates", "power", "DMIPS/W")
	fmt.Fprintf(&b, "%-10s %12d %9.1fuW %12.3g\n",
		fmt.Sprintf("%.1fV", impl.VoltageV), impl.Gates, impl.PowerW*1e6, impl.DMIPSPerW)
	fmt.Fprintf(&b, "(fmax %.1f MHz, %.2f DMIPS)\n", impl.FreqMHz, impl.DMIPS)
	return impl, b.String()
}

// Table5 renders the FPGA implementation results of Table V.
func Table5(dhry *Outcome) (perf.Implementation, string) {
	impl := ImplFor(dhry, gate.StratixVEmulation())
	var b strings.Builder
	b.WriteString("Table V — implementation results using FPGA-based ternary logics\n")
	fmt.Fprintf(&b, "%-10s %10s %8s %10s %10s %8s %10s\n",
		"voltage", "frequency", "ALMs", "registers", "RAM", "power", "DMIPS/W")
	fmt.Fprintf(&b, "%-10s %7dMHz %8d %10d %6dbits %7.2fW %10.1f\n",
		fmt.Sprintf("%.1fV", impl.VoltageV), int(impl.FreqMHz), impl.ALMs,
		impl.Registers, impl.RAMBits, impl.PowerW, impl.DMIPSPerW)
	return impl, b.String()
}

// AllTables runs the suite — concurrently, through a transient engine —
// and renders every artifact. Rendering iterates the fixed Workloads
// order, so the output is byte-identical to the serial path.
func AllTables() (string, error) {
	all, err := RunAll()
	if err != nil {
		return "", err
	}
	return RenderTables(all), nil
}

// AllTablesOn is AllTables running on an existing engine under ctx.
func AllTablesOn(ctx context.Context, eng *engine.Engine) (string, error) {
	all, err := RunAllOn(ctx, eng)
	if err != nil {
		return "", err
	}
	return RenderTables(all), nil
}

// RenderTables renders every §V artifact from a completed suite run.
func RenderTables(all map[string]*Outcome) string {
	var b strings.Builder
	_, s := Fig5(all)
	b.WriteString(s + "\n")
	_, s = Table2(all["dhrystone"])
	b.WriteString(s + "\n")
	_, s = Table3(all)
	b.WriteString(s + "\n")
	_, s = Table4(all["dhrystone"])
	b.WriteString(s + "\n")
	_, s = Table5(all["dhrystone"])
	b.WriteString(s)
	return b.String()
}
