package bench

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/rv32"
	"repro/internal/sim"
	"repro/internal/xlate"
)

// Outcome is the result of running one workload on every core model.
type Outcome struct {
	Workload Workload

	// Static program sizes (Fig. 5 inputs).
	RVInsts  int // RV32 instruction count
	RVBits   int // RV32I instruction-memory bits
	ARMBits  int // estimated ARMv6-M (Thumb-1) bits
	ARTInsts int // translated ART-9 instruction count
	ARTTrits int // ART-9 instruction-memory trits

	// Checksums (must all agree).
	Checksum int

	// Cycle counts (Table III inputs).
	ART9Cycles uint64 // pipelined ART-9
	VexCycles  uint64 // VexRiscv-like model
	PicoCycles uint64 // PicoRV32-like model

	// ART-9 microarchitectural detail.
	ARTRetired      uint64
	ARTStallsLoad   uint64
	ARTStallsBranch uint64
	ARTLoads        uint64
	ARTStores       uint64

	// RV32 retired instructions (dynamic).
	RVRetired uint64

	// Diagnostics from the translator.
	Diagnostics []string
	// Removed is the redundancy-checking yield.
	Removed int
}

// CyclesPerIteration returns the ART-9 cycles normalised by the
// workload's iteration count.
func (o *Outcome) CyclesPerIteration() float64 {
	return float64(o.ART9Cycles) / float64(max(1, o.Workload.Iterations))
}

// Run executes the workload on the RV32 machine (feeding both baseline
// cycle models), translates it with the software-level framework, runs
// the result on the functional and pipelined ART-9 cores, verifies that
// all checksums agree, and collects every metric.
func Run(w Workload, opts xlate.Options) (*Outcome, error) {
	rvProg, err := rv32.Assemble(w.Source)
	if err != nil {
		return nil, fmt.Errorf("bench %s: rv32 assemble: %w", w.Name, err)
	}

	m := rv32.NewMachine(1 << 16)
	vex := rv32.NewVexRiscvModel()
	pico := rv32.NewPicoRV32Model()
	m.Observe(vex)
	m.Observe(pico)
	if err := m.Load(rvProg); err != nil {
		return nil, err
	}
	if err := m.Run(); err != nil {
		return nil, fmt.Errorf("bench %s: rv32 run: %w", w.Name, err)
	}
	ref := int(int32(m.Reg(10)))

	out, err := xlate.Translate(rvProg, opts)
	if err != nil {
		return nil, fmt.Errorf("bench %s: translate: %w", w.Name, err)
	}
	artProg, err := asm.Assemble(out.Asm)
	if err != nil {
		return nil, fmt.Errorf("bench %s: art9 assemble: %w", w.Name, err)
	}
	data := xlate.DataImage(rvProg)

	fn := sim.NewFunctional(sim.Config{})
	if err := fn.S.Load(artProg); err != nil {
		return nil, err
	}
	if err := fn.S.TDM.SetAll(data); err != nil {
		return nil, err
	}
	if _, err := fn.Run(); err != nil {
		return nil, fmt.Errorf("bench %s: art9 functional: %w", w.Name, err)
	}
	fchk, err := out.ReadBack(fn.S, 10)
	if err != nil {
		return nil, err
	}
	if fchk != ref {
		return nil, fmt.Errorf("bench %s: functional checksum %d != rv32 %d", w.Name, fchk, ref)
	}

	pl := sim.NewPipeline(sim.Config{})
	if err := pl.S.Load(artProg); err != nil {
		return nil, err
	}
	if err := pl.S.TDM.SetAll(data); err != nil {
		return nil, err
	}
	pres, err := pl.Run()
	if err != nil {
		return nil, fmt.Errorf("bench %s: art9 pipeline: %w", w.Name, err)
	}
	pchk, err := out.ReadBack(pl.S, 10)
	if err != nil {
		return nil, err
	}
	if pchk != ref {
		return nil, fmt.Errorf("bench %s: pipelined checksum %d != rv32 %d", w.Name, pchk, ref)
	}

	return &Outcome{
		Workload:        w,
		RVInsts:         len(rvProg.Insts),
		RVBits:          rvProg.TextBits(),
		ARMBits:         rv32.EstimateProgram(rvProg),
		ARTInsts:        len(artProg.Text),
		ARTTrits:        artProg.TextCells(),
		Checksum:        ref,
		ART9Cycles:      pres.Cycles,
		VexCycles:       vex.TotalCycles(),
		PicoCycles:      pico.TotalCycles(),
		ARTRetired:      pres.Retired,
		ARTStallsLoad:   pres.StallsLoad,
		ARTStallsBranch: pres.StallsBranch,
		ARTLoads:        pres.Loads,
		ARTStores:       pres.Stores,
		RVRetired:       m.Retired,
		Diagnostics:     out.Diagnostics,
		Removed:         out.Removed,
	}, nil
}

// RunAll runs the whole suite with default translation options.
func RunAll() (map[string]*Outcome, error) {
	res := map[string]*Outcome{}
	for _, w := range Workloads {
		o, err := Run(w, xlate.Options{})
		if err != nil {
			return nil, err
		}
		res[w.Name] = o
	}
	return res, nil
}
