package bench

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/rv32"
	"repro/internal/sim"
	"repro/internal/xlate"
)

// Outcome is the result of running one workload on every core model.
type Outcome struct {
	Workload Workload

	// Static program sizes (Fig. 5 inputs).
	RVInsts  int // RV32 instruction count
	RVBits   int // RV32I instruction-memory bits
	ARMBits  int // estimated ARMv6-M (Thumb-1) bits
	ARTInsts int // translated ART-9 instruction count
	ARTTrits int // ART-9 instruction-memory trits

	// Checksums (must all agree).
	Checksum int

	// Cycle counts (Table III inputs).
	ART9Cycles uint64 // pipelined ART-9
	VexCycles  uint64 // VexRiscv-like model
	PicoCycles uint64 // PicoRV32-like model

	// ART-9 microarchitectural detail.
	ARTRetired      uint64
	ARTStallsLoad   uint64
	ARTStallsBranch uint64
	ARTLoads        uint64
	ARTStores       uint64

	// RV32 retired instructions (dynamic).
	RVRetired uint64

	// Diagnostics from the translator.
	Diagnostics []string
	// Removed is the redundancy-checking yield.
	Removed int
}

// CyclesPerIteration returns the ART-9 cycles normalised by the
// workload's iteration count.
func (o *Outcome) CyclesPerIteration() float64 {
	return float64(o.ART9Cycles) / float64(max(1, o.Workload.Iterations))
}

// MemAccessRate returns the measured TIM+TDM word-access rate of the
// run: one instruction fetch per issue slot plus the data-access duty
// cycle — the activity input of the memory power model.
func (o *Outcome) MemAccessRate() float64 {
	if o.ART9Cycles == 0 {
		return 1
	}
	return (float64(o.ARTRetired) + float64(o.ARTLoads+o.ARTStores)) /
		float64(o.ART9Cycles)
}

// Run executes the workload on the RV32 machine (feeding both baseline
// cycle models), translates it with the software-level framework, runs
// the result on the functional and pipelined ART-9 cores, verifies that
// all checksums agree, and collects every metric.
func Run(w Workload, opts xlate.Options) (*Outcome, error) {
	return RunCtx(context.Background(), w, opts)
}

// RunCtx is Run with stage-granular cancellation: the context is checked
// before each expensive stage (every machine run and the translation),
// so an expired engine job timeout or a cancelled batch stops the
// workload at the next stage boundary. The simulators themselves run to
// completion once started — each is bounded by its step budget.
func RunCtx(ctx context.Context, w Workload, opts xlate.Options) (*Outcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("bench %s: %w", w.Name, err)
	}
	rvProg, err := rv32.Assemble(w.Source)
	if err != nil {
		return nil, fmt.Errorf("bench %s: rv32 assemble: %w", w.Name, err)
	}

	m := rv32.NewMachine(1 << 16)
	vex := rv32.NewVexRiscvModel()
	pico := rv32.NewPicoRV32Model()
	m.Observe(vex)
	m.Observe(pico)
	if err := m.Load(rvProg); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("bench %s: %w", w.Name, err)
	}
	if err := m.Run(); err != nil {
		return nil, fmt.Errorf("bench %s: rv32 run: %w", w.Name, err)
	}
	ref := int(int32(m.Reg(10)))

	out, err := xlate.Translate(rvProg, opts)
	if err != nil {
		return nil, fmt.Errorf("bench %s: translate: %w", w.Name, err)
	}
	artProg, err := engine.AssembleCached(out.Asm)
	if err != nil {
		return nil, fmt.Errorf("bench %s: art9 assemble: %w", w.Name, err)
	}
	data := xlate.DataImage(rvProg)

	fn := sim.NewFunctional(sim.Config{})
	if err := fn.S.Load(artProg); err != nil {
		return nil, err
	}
	if err := fn.S.TDM.SetAll(data); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("bench %s: %w", w.Name, err)
	}
	if _, err := fn.Run(); err != nil {
		return nil, fmt.Errorf("bench %s: art9 functional: %w", w.Name, err)
	}
	fchk, err := out.ReadBack(fn.S, 10)
	if err != nil {
		return nil, err
	}
	if fchk != ref {
		return nil, fmt.Errorf("bench %s: functional checksum %d != rv32 %d", w.Name, fchk, ref)
	}

	pl := sim.NewPipeline(sim.Config{})
	if err := pl.S.Load(artProg); err != nil {
		return nil, err
	}
	if err := pl.S.TDM.SetAll(data); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("bench %s: %w", w.Name, err)
	}
	pres, err := pl.Run()
	if err != nil {
		return nil, fmt.Errorf("bench %s: art9 pipeline: %w", w.Name, err)
	}
	pchk, err := out.ReadBack(pl.S, 10)
	if err != nil {
		return nil, err
	}
	if pchk != ref {
		return nil, fmt.Errorf("bench %s: pipelined checksum %d != rv32 %d", w.Name, pchk, ref)
	}

	return &Outcome{
		Workload:        w,
		RVInsts:         len(rvProg.Insts),
		RVBits:          rvProg.TextBits(),
		ARMBits:         rv32.EstimateProgram(rvProg),
		ARTInsts:        len(artProg.Text),
		ARTTrits:        artProg.TextCells(),
		Checksum:        ref,
		ART9Cycles:      pres.Cycles,
		VexCycles:       vex.TotalCycles(),
		PicoCycles:      pico.TotalCycles(),
		ARTRetired:      pres.Retired,
		ARTStallsLoad:   pres.StallsLoad,
		ARTStallsBranch: pres.StallsBranch,
		ARTLoads:        pres.Loads,
		ARTStores:       pres.Stores,
		RVRetired:       m.Retired,
		Diagnostics:     out.Diagnostics,
		Removed:         out.Removed,
	}, nil
}

// RunAll runs the whole suite with default translation options,
// fanned out across GOMAXPROCS workers by a transient engine. The
// result is identical to RunAllSerial — jobs are independent and
// results are collected by name — just faster on multicore hosts.
func RunAll() (res map[string]*Outcome, err error) {
	eng := engine.New(engine.Options{})
	defer func() {
		// The engine is transient and fully drained by RunAllOn, but a
		// close failure still signals leaked work — surface it unless a
		// run error already explains the state.
		if cerr := eng.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return RunAllOn(context.Background(), eng)
}

// RunAllSerial runs the whole suite one workload at a time — the
// reference path the concurrent engine is checked against.
func RunAllSerial() (map[string]*Outcome, error) {
	res := map[string]*Outcome{}
	for _, w := range Workloads {
		o, err := Run(w, xlate.Options{})
		if err != nil {
			return nil, err
		}
		res[w.Name] = o
	}
	return res, nil
}

// RunAllOn fans the suite out on an existing engine. The first workload
// failure (or a ctx cancellation) is returned as an error, matching the
// serial path's fail-fast contract.
func RunAllOn(ctx context.Context, eng *engine.Engine) (map[string]*Outcome, error) {
	results, _ := eng.RunAll(ctx, SuiteJobs(Workloads, xlate.Options{}))
	res := make(map[string]*Outcome, len(results))
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("bench %s: %w", r.ID, r.Err)
		}
		res[r.ID] = r.Value.(*Outcome)
	}
	return res, nil
}

// SuiteJobs wraps workloads as engine jobs, one per workload; each job
// itself exercises every core model (RV32 reference with both baseline
// cycle observers, then the functional and pipelined ART-9 cores).
//
// Each job also carries a *JobSpec with the workload inlined as source
// text, so remote backends (internal/remote) can ship the exact same
// work to a peer; attach technologies with JobSpec.Technologies (done by
// Manifest.EngineJobs) when the peer should also estimate
// implementations.
func SuiteJobs(ws []Workload, opts xlate.Options) []engine.Job {
	jobs := make([]engine.Job, len(ws))
	for i, w := range ws {
		w := w
		jobs[i] = engine.Job{
			ID:   w.Name,
			Fn:   func(ctx context.Context) (any, error) { return RunCtx(ctx, w, opts) },
			Spec: &JobSpec{Job: ManifestJob{Name: w.Name, Source: w.Source, Iterations: w.Iterations}},
		}
	}
	return jobs
}
