package bench

import (
	"context"
	"encoding/json"
	"io"
	"strconv"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/gate"
	"repro/internal/rescache"
	"repro/internal/sim"
)

// This file is the codec between the dispatch path and the fleet-wide
// result cache: internal/rescache stores opaque bytes under opaque
// keys, the engine speaks Job.Spec and result values, and only bench
// knows both vocabularies. The cached value is a normalized JobReport —
// the exact row a remote peer would have sent — so a cache hit replays
// through JobReportOf identically to a row computed anywhere in the
// fleet.

// ResultCache adapts a rescache store to engine.ResultCache: it keys
// entries by the job's content-addressed identity (program source
// text, iterations, technology content fingerprints — never the
// display name, path, or timeout) and encodes results as normalized
// report rows.
type ResultCache struct {
	store   rescache.Cache
	corrupt atomic.Uint64
}

var _ engine.ResultCache = (*ResultCache)(nil)

// NewResultCache wraps a rescache store (an LRU, or a Tiered local +
// peers composition) for the dispatch path.
func NewResultCache(store rescache.Cache) *ResultCache {
	return &ResultCache{store: store}
}

// Stats exposes the underlying tier's counters for reports, folding in
// the codec-level corrupt-entry count only this adapter can observe.
func (c *ResultCache) Stats() rescache.Stats {
	st := c.store.Stats()
	st.Corrupt = c.corrupt.Load()
	return st
}

// Close releases the underlying store if it holds resources — a Tiered
// store drains its write-behind peer fills here. Fronts call it from
// their own Close, so a short batch run still seeds the fleet.
func (c *ResultCache) Close() error {
	if cl, ok := c.store.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// Lookup answers a job spec from the cache. Only specs the key
// derivation can address hit; an entry that fails to decode (or was
// somehow stored non-OK) is treated as a miss AND deleted from the
// store — left in place it would re-fail on every future lookup — and
// counted in Stats().Corrupt.
func (c *ResultCache) Lookup(ctx context.Context, spec any) (any, bool) {
	key, ok := resultKey(jobSpecOf(spec))
	if !ok {
		return nil, false
	}
	raw, ok := c.store.Get(ctx, key)
	if !ok {
		return nil, false
	}
	var jr JobReport
	if err := json.Unmarshal(raw, &jr); err != nil || !jr.OK {
		c.corrupt.Add(1)
		if d, ok := c.store.(rescache.Deleter); ok {
			d.Delete(ctx, key)
		}
		return nil, false
	}
	return &jr, true
}

// Store records one successful result under the spec's key — the
// engine calls it after a local execution, the balancer and autoscaler
// after a successful attempt (whose value may already be a peer's
// *JobReport). Failures are never cached: a timeout or a dead backend
// says nothing about the program.
func (c *ResultCache) Store(ctx context.Context, spec any, value any) {
	s := jobSpecOf(spec)
	key, ok := resultKey(s)
	if !ok {
		return
	}
	jr, ok := cacheRowOf(s, value)
	if !ok {
		return
	}
	raw, err := json.Marshal(jr)
	if err != nil {
		return
	}
	c.store.Put(ctx, key, raw)
}

// jobSpecOf recognizes the spec shapes the suite attaches to jobs.
func jobSpecOf(spec any) *JobSpec {
	switch s := spec.(type) {
	case *JobSpec:
		return s
	case JobSpec:
		return &s
	default:
		return nil
	}
}

// resultKey derives the content-addressed cache key for a job spec.
// Only the fields that determine the computation participate: the
// simulator semantics version, the program (a built-in workload name
// or inline source — file jobs are refused, a path is not content),
// the iteration count, and each requested technology as its own
// name+fingerprint part pair (request order orders the implementations
// row; the fingerprint covers every timing/energy/area number, so an
// edited table can never replay a stale row). Name and TimeoutMS are
// display/placement concerns and are excluded, so renamed or
// re-bounded jobs still hit.
//
// Passing each technology as its own KeyOf part matters: the parts are
// length-prefixed, so ["a\x00b"] and ["a","b"] — which a joined list
// part would collapse — derive distinct keys. A technology name the
// registry doesn't know makes the spec uncacheable rather than keying
// on an unresolvable name.
func resultKey(s *JobSpec) (string, bool) {
	if s == nil {
		return "", false
	}
	j := s.Job
	if j.File != "" || (j.Workload == "" && j.Source == "") {
		return "", false
	}
	techs, err := Technologies(s.Technologies)
	if err != nil {
		return "", false
	}
	parts := make([]string, 0, 5+2*len(techs))
	parts = append(parts,
		"art9/result/v2",
		sim.SemanticsVersion,
		j.Workload,
		j.Source,
		strconv.Itoa(j.Iterations),
	)
	for i, tech := range techs {
		parts = append(parts, s.Technologies[i], tech.Fingerprint())
	}
	return rescache.KeyOf(parts...), true
}

// cacheRowOf renders one successful result value as the canonical
// cached row: a JobReport normalized to be run-independent (no name,
// no elapsed time, Worker -1 — JobReportOf re-stamps the name on
// replay). A local execution's *Outcome is evaluated against the
// spec's technologies, exactly as the cold path would; a *JobReport
// from a remote peer is normalized as-is.
func cacheRowOf(s *JobSpec, value any) (*JobReport, bool) {
	switch v := value.(type) {
	case *Outcome:
		techs, err := Technologies(s.Technologies)
		if err != nil {
			return nil, false
		}
		return &JobReport{
			OK:              true,
			Worker:          -1,
			Metrics:         MetricsReportOf(v),
			Implementations: ImplReports(v, techs),
		}, true
	case *JobReport:
		if !v.OK {
			return nil, false
		}
		jr := *v
		jr.Name, jr.Error, jr.ErrorKind = "", "", ""
		jr.ElapsedMS, jr.Worker = 0, -1
		return &jr, true
	default:
		return nil, false
	}
}

// ResultCacheReport snapshots the fleet-wide result-cache tier for
// BENCH reports and /v1/stats — the Results section of CacheReport.
type ResultCacheReport struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes,omitempty"`
	// Peer counters describe the /v1/cache tier: lookups answered by a
	// peer, lookups no peer could answer, and transport failures (each
	// of which degraded to a local compute, never an error).
	PeerHits   uint64 `json:"peer_hits,omitempty"`
	PeerMisses uint64 `json:"peer_misses,omitempty"`
	PeerErrors uint64 `json:"peer_errors,omitempty"`
	// Coalesced counts lookups that piggybacked on an identical
	// in-flight peer lookup — the singleflight guard at work.
	Coalesced uint64 `json:"coalesced,omitempty"`
	// Epoch is the tier's invalidation generation; ModelDigest names
	// the compiled-in technology tables, so two fleet members with
	// different digests were built from different numbers.
	Epoch       uint64 `json:"epoch"`
	ModelDigest string `json:"model_digest,omitempty"`
	// Write-behind queue state: fills waiting, fills discarded (full
	// queue or cut-short drain), and exchanges refused over an epoch
	// disagreement.
	FillQueue    int    `json:"fill_queue,omitempty"`
	FillsDropped uint64 `json:"fills_dropped,omitempty"`
	EpochRejects uint64 `json:"epoch_rejects,omitempty"`
	// Corrupt counts entries that failed to decode and were evicted.
	Corrupt uint64 `json:"corrupt,omitempty"`
}

// ResultCacheReportFrom renders a store snapshot as a report section.
func ResultCacheReportFrom(st rescache.Stats) *ResultCacheReport {
	return &ResultCacheReport{
		Hits:         st.Hits,
		Misses:       st.Misses,
		Puts:         st.Puts,
		Evictions:    st.Evictions,
		Entries:      st.Entries,
		Bytes:        st.Bytes,
		MaxBytes:     st.MaxBytes,
		PeerHits:     st.PeerHits,
		PeerMisses:   st.PeerMisses,
		PeerErrors:   st.PeerErrors,
		Coalesced:    st.Coalesced,
		Epoch:        st.Epoch,
		ModelDigest:  gate.ModelDigest(),
		FillQueue:    st.FillQueue,
		FillsDropped: st.FillsDropped,
		EpochRejects: st.EpochRejects,
		Corrupt:      st.Corrupt,
	}
}

// ResultCacheReportFor walks an Evaluator topology for the result
// cache on its dispatch path (engine.ResultCacheOf) and renders its
// counters, or nil when the topology runs uncached — callers attach it
// to CacheReport.Results exactly when it exists.
func ResultCacheReportFor(ev engine.Evaluator) *ResultCacheReport {
	a, ok := engine.ResultCacheOf(ev).(*ResultCache)
	if !ok {
		return nil
	}
	return ResultCacheReportFrom(a.Stats())
}
