package bench

import (
	"testing"

	"repro/internal/rv32"
	"repro/internal/xlate"
)

// runW runs one workload, failing the test on any error (including the
// built-in checksum cross-check between RV32 and translated ART-9).
func runW(t *testing.T, w Workload) *Outcome {
	t.Helper()
	o, err := Run(w, xlate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestBubbleSortCorrectAndSorted(t *testing.T) {
	o := runW(t, BubbleSort)
	if o.Checksum == 0 {
		t.Error("degenerate checksum")
	}
	// Independently verify sortedness on a fresh RV32 run.
	p, err := rv32.Assemble(BubbleSort.Source)
	if err != nil {
		t.Fatal(err)
	}
	m := rv32.NewMachine(1 << 16)
	m.Load(p)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	prev := int32(-1 << 30)
	for i := 0; i < 22; i++ {
		v := int32(uint32(m.RAM[i*4]) | uint32(m.RAM[i*4+1])<<8 |
			uint32(m.RAM[i*4+2])<<16 | uint32(m.RAM[i*4+3])<<24)
		if v < prev {
			t.Fatalf("array not sorted at %d: %d < %d", i, v, prev)
		}
		prev = v
	}
}

func TestGEMMCorrect(t *testing.T) {
	o := runW(t, GEMM)
	// Reference: compute C = A×B in Go and the same alternating sum.
	A := [][]int{
		{2, -3, 4, 1, -2, 3}, {-1, 2, 3, -4, 2, 1}, {3, 1, -2, 2, 4, -1},
		{2, -2, 1, 3, -3, 2}, {-4, 3, 2, -1, 2, 2}, {1, 2, -3, 4, 1, -2}}
	// B as stored transposed in the program (BT rows are B columns).
	BT := [][]int{
		{3, 2, -1, 4, 2, -3}, {-2, 1, 4, -3, 2, 1}, {1, -3, 2, 2, -1, 4},
		{4, 2, -2, 1, 3, -2}, {-1, 3, 1, 2, -2, 4}, {2, -2, 3, -4, 1, 2}}
	B := make([][]int, 6)
	for k := range B {
		B[k] = make([]int, 6)
		for j := range B[k] {
			B[k][j] = BT[j][k]
		}
	}
	sum, sign := 0, 1
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			acc := 0
			for k := 0; k < 6; k++ {
				acc += A[i][k] * B[k][j]
			}
			sum += sign * acc
			sign = -sign
		}
	}
	if o.Checksum != sum {
		t.Errorf("GEMM checksum = %d, want %d", o.Checksum, sum)
	}
}

func TestSobelCorrect(t *testing.T) {
	o := runW(t, Sobel)
	// Reference Sobel in Go over the same synthetic image.
	img := make([][]int, 16)
	for r := range img {
		img[r] = make([]int, 16)
		for c := range img[r] {
			img[r][c] = (r*3 + c*5) % 21
		}
	}
	abs := func(x int) int {
		if x < 0 {
			return -x
		}
		return x
	}
	sum, sign := 0, 1
	for r := 1; r < 15; r++ {
		for c := 1; c < 15; c++ {
			gx := (img[r-1][c+1] + 2*img[r][c+1] + img[r+1][c+1]) -
				(img[r-1][c-1] + 2*img[r][c-1] + img[r+1][c-1])
			gy := (img[r+1][c-1] + 2*img[r+1][c] + img[r+1][c+1]) -
				(img[r-1][c-1] + 2*img[r-1][c] + img[r-1][c+1])
			sum += sign * (abs(gx) + abs(gy))
			sign = -sign
		}
	}
	if o.Checksum != sum {
		t.Errorf("Sobel checksum = %d, want %d", o.Checksum, sum)
	}
}

func TestDhrystoneRuns(t *testing.T) {
	o := runW(t, Dhrystone)
	if o.Checksum == 0 {
		t.Error("dhrystone checksum degenerate")
	}
	// 100 iterations must dominate the cycle counts.
	if o.ART9Cycles < 10000 {
		t.Errorf("suspiciously few ART-9 cycles: %d", o.ART9Cycles)
	}
}

func TestSuiteShapes(t *testing.T) {
	// The qualitative results the paper reports (DESIGN.md §2) that do
	// not depend on calibration details.
	all, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	for name, o := range all {
		// Fig. 5 primary ordering: ART-9 ternary cells always beat the
		// RV32I binary cells, by a wide margin (paper: −54 % on
		// Dhrystone), and ARMv6-M sits between RV32I and roughly the
		// ART-9 level. (On our hand-written kernels the ARM column can
		// edge below ART-9 — the fixed ternary runtime library is not
		// amortised the way the paper's 794-instruction Dhrystone
		// amortises it; EXPERIMENTS.md records the measured values.)
		if o.ARTTrits >= o.RVBits {
			t.Errorf("%s: ART %d trits not below RV32I %d bits",
				name, o.ARTTrits, o.RVBits)
		}
		// Minimum cell reduction vs RV32I per row: Dhrystone (the
		// paper's −54 % headline) must clear 30 %; bubble clears 45 %;
		// the multiplier-dominated micro-kernels clear 15 % (their
		// fixed ternary runtime is unamortised; see EXPERIMENTS.md).
		min := map[string]float64{
			"dhrystone": 0.30, "bubble": 0.45, "gemm": 0.15, "sobel": 0.15,
		}[name]
		if reduction := 1 - float64(o.ARTTrits)/float64(o.RVBits); reduction < min {
			t.Errorf("%s: ART-9 cell reduction vs RV32I only %.0f%%, want ≥%.0f%% (paper: 54%% on Dhrystone)",
				name, reduction*100, min*100)
		}
		if o.ARMBits >= o.RVBits {
			t.Errorf("%s: ARMv6-M %d bits not below RV32I %d bits", name, o.ARMBits, o.RVBits)
		}
		// ART-9 (pipelined, CPI≈1) always beats the multi-cycle Pico.
		if o.ART9Cycles >= o.PicoCycles {
			t.Errorf("%s: ART-9 %d cycles not faster than Pico %d",
				name, o.ART9Cycles, o.PicoCycles)
		}
		// The translation expands the instruction count.
		if o.ARTInsts <= o.RVInsts {
			t.Errorf("%s: translation did not expand: %d vs %d",
				name, o.ARTInsts, o.RVInsts)
		}
	}
	// The bubble-sort row achieves the full paper ordering including the
	// ARMv6-M column.
	if b := all["bubble"]; !(b.ARTTrits < b.ARMBits && b.ARMBits < b.RVBits) {
		t.Errorf("bubble: full Fig. 5 ordering lost: ART %d trits, ARM %d bits, RV %d bits",
			b.ARTTrits, b.ARMBits, b.RVBits)
	}
	// Bubble sort: large ART-9 advantage (paper: ≈3.8×); GEMM: near
	// parity (paper: ≈1.05×) because ART-9 multiplies in software.
	bub := float64(all["bubble"].PicoCycles) / float64(all["bubble"].ART9Cycles)
	gem := float64(all["gemm"].PicoCycles) / float64(all["gemm"].ART9Cycles)
	if bub < 2.0 {
		t.Errorf("bubble advantage %.2f×, want ≫1 (paper 3.8×)", bub)
	}
	if gem > 2.0 || gem < 0.7 {
		t.Errorf("GEMM ratio %.2f×, want ≈1 (paper 1.05×)", gem)
	}
	if bub <= gem {
		t.Errorf("crossover lost: bubble %.2f× should exceed GEMM %.2f×", bub, gem)
	}
}

func TestDhrystoneDMIPSBand(t *testing.T) {
	// Table II shape: Pico < ART-9 < Vex in DMIPS/MHz.
	o := runW(t, Dhrystone)
	art := float64(o.ART9Cycles)
	if !(float64(o.VexCycles) < art && art < float64(o.PicoCycles)) {
		t.Errorf("DMIPS/MHz ordering broken: vex %d, art %d, pico %d",
			o.VexCycles, o.ART9Cycles, o.PicoCycles)
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("gemm"); !ok {
		t.Error("gemm not found")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("bogus name found")
	}
}
