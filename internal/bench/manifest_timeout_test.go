package bench

import (
	"testing"
	"time"

	"repro/internal/xlate"
)

// TestManifestTimeoutRidesTheJobs pins the timeout_ms plumbing: a
// manifest entry's bound lands on the engine job (local enforcement)
// and on its JobSpec (remote enforcement), and its absence leaves both
// zero.
func TestManifestTimeoutRidesTheJobs(t *testing.T) {
	m, err := ParseManifest([]byte(`{
		"technologies": ["cntfet32"],
		"jobs": [
			{"name": "bounded", "workload": "bubble", "timeout_ms": 1500},
			{"name": "unbounded", "workload": "gemm"}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := m.EngineJobs("", xlate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := jobs[0].Timeout; got != 1500*time.Millisecond {
		t.Errorf("bounded job Timeout = %v, want 1.5s", got)
	}
	spec := jobs[0].Spec.(*JobSpec)
	if spec.Job.TimeoutMS != 1500 {
		t.Errorf("bounded job spec TimeoutMS = %d, want 1500 (must ride the wire)", spec.Job.TimeoutMS)
	}
	if len(spec.Technologies) != 1 || spec.Technologies[0] != "cntfet32" {
		t.Errorf("spec technologies %v, want the manifest's", spec.Technologies)
	}
	if jobs[1].Timeout != 0 || jobs[1].Spec.(*JobSpec).Job.TimeoutMS != 0 {
		t.Errorf("unbounded job gained a timeout: %v / %d",
			jobs[1].Timeout, jobs[1].Spec.(*JobSpec).Job.TimeoutMS)
	}
}
