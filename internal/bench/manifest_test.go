package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseManifestErrors(t *testing.T) {
	tests := []struct {
		name    string
		raw     string
		wantErr string
	}{
		{"not json", "{", "manifest:"},
		{"no jobs", `{"technologies":["cntfet32"]}`, "no jobs"},
		{"empty jobs", `{"jobs":[]}`, "no jobs"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseManifest([]byte(tt.raw))
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("ParseManifest(%q) error = %v, want containing %q", tt.raw, err, tt.wantErr)
			}
		})
	}
}

func TestManifestJobResolveErrors(t *testing.T) {
	tests := []struct {
		name    string
		job     ManifestJob
		dir     string
		wantErr string
	}{
		{"none set", ManifestJob{Name: "x"}, ".",
			`job "x": exactly one of workload, source, file required`},
		{"two set", ManifestJob{Name: "x", Workload: "bubble", Source: "nop"}, ".",
			`job "x": exactly one of workload, source, file required`},
		{"all set", ManifestJob{Name: "x", Workload: "bubble", Source: "nop", File: "f.s"}, ".",
			`job "x": exactly one of workload, source, file required`},
		{"unknown workload", ManifestJob{Name: "x", Workload: "nope"}, ".",
			`job "x": unknown workload "nope"`},
		{"file without base dir", ManifestJob{Name: "x", File: "prog.s"}, "",
			`job "x": file jobs are not allowed here`},
		{"missing file", ManifestJob{Name: "x", File: "definitely-missing.s"}, t.TempDir(),
			"definitely-missing.s"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := tt.job.Resolve(tt.dir)
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("Resolve error = %v, want containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestManifestJobResolveKinds(t *testing.T) {
	// Built-in workload: rename + iteration override apply.
	w, err := (ManifestJob{Name: "renamed", Workload: "bubble", Iterations: 7}).Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "renamed" || w.Iterations != 7 || w.Source == "" {
		t.Errorf("workload job resolved to %+v, want renamed ×7 with suite source", w)
	}

	// Inline source: default iteration count is 1.
	w, err = (ManifestJob{Name: "inline", Source: "addi a0, zero, 1"}).Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	if w.Iterations != 1 || w.Source != "addi a0, zero, 1" {
		t.Errorf("source job resolved to %+v", w)
	}

	// File: read relative to dir.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "prog.s"), []byte("addi a0, zero, 2"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err = (ManifestJob{Name: "fromfile", File: "prog.s"}).Resolve(dir)
	if err != nil {
		t.Fatal(err)
	}
	if w.Source != "addi a0, zero, 2" {
		t.Errorf("file job source = %q", w.Source)
	}
}

func TestTechnologiesErrors(t *testing.T) {
	if _, err := Technologies([]string{"cntfet32", "tfet"}); err == nil ||
		!strings.Contains(err.Error(), `unknown technology "tfet" (want cntfet32 or stratixv)`) {
		t.Fatalf("Technologies error = %v, want unknown-technology", err)
	}
	techs, err := Technologies([]string{"cntfet32", "stratixv"})
	if err != nil || len(techs) != 2 {
		t.Fatalf("Technologies = %v, %v; want both models", techs, err)
	}
	if techs, err := Technologies(nil); err != nil || len(techs) != 0 {
		t.Fatalf("Technologies(nil) = %v, %v; want empty", techs, err)
	}
}

func TestManifestWorkloadsPropagatesJobError(t *testing.T) {
	m := &Manifest{Jobs: []ManifestJob{
		{Name: "ok", Workload: "bubble"},
		{Name: "bad", Workload: "nope"},
	}}
	if _, err := m.Workloads(""); err == nil ||
		!strings.Contains(err.Error(), `job "bad": unknown workload "nope"`) {
		t.Fatalf("Workloads error = %v, want bad-job error", err)
	}
}
