package bench

// The Dhrystone-class workload: a synthetic integer benchmark with the
// operation mix of Dhrystone 2.1 ([23]; DESIGN.md §4, substitution 2) —
// record assignment (unrolled word copies, the way -O2 compiles small
// struct assignment), word-string comparison and copy, nested function
// calls, array indexing, integer expressions with one multiply and one
// divide per iteration, and a branchy state-machine fragment. 100
// iterations; every iteration folds into the running checksum in a0.
//
// Per iteration the RV32 machine retires ≈460 instructions, matching the
// dynamic weight of one Dhrystone loop on RV32 (the paper's Table II/III
// cycle figures imply the same: 1866 PicoRV32 cycles at CPI ≈ 4).
const dhrystoneSrc = `
.equ RUNS, 100
.data
# Two 16-word records (Dhrystone's Rec_Type: discriminant, a pointer-like
# word index, an integer block, and a 10-word string payload).
rec1:	.word 1, 40, 2, 7, 0, 3, 8, 15, 23, 42, 77, 3, 9, 4, 6, 2
.org 64
rec2:	.space 64
.org 128
# Two 20-word character strings ("DHRYSTONE PROGRAM, 1" style, one char
# per word), populated by the Proc_0-style initialisation code.
str1:	.space 80
.org 208
str2:	.space 80
.org 288
strdst:	.space 80
.org 368
# Array fragment state (Arr_1_Glob flavour).
arrg:	.word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3
.org 408
glob:	.word 0, 0, 5
.org 420
tab1:	.space 80
.org 500
tab2:	.space 80
.text
	# ---- Proc_0 flavour: one-time initialisation, the way Dhrystone's
	# main() populates its globals before the timed loop. Straight-line
	# stores with small offsets and pointer bumps (compiled -O2 style).
	la   s0, str1
	li   t0, 68          # 'D'
	sw   t0, 0(s0)
	li   t0, 72          # 'H'
	sw   t0, 4(s0)
	li   t0, 82          # 'R'
	sw   t0, 8(s0)
	li   t0, 89          # 'Y'
	sw   t0, 12(s0)
	addi s0, s0, 16
	li   t0, 83          # 'S'
	sw   t0, 0(s0)
	li   t0, 84          # 'T'
	sw   t0, 4(s0)
	li   t0, 79          # 'O'
	sw   t0, 8(s0)
	li   t0, 78          # 'N'
	sw   t0, 12(s0)
	addi s0, s0, 16
	li   t0, 69          # 'E'
	sw   t0, 0(s0)
	li   t0, 32          # ' '
	sw   t0, 4(s0)
	li   t0, 80          # 'P'
	sw   t0, 8(s0)
	li   t0, 82          # 'R'
	sw   t0, 12(s0)
	addi s0, s0, 16
	li   t0, 79          # 'O'
	sw   t0, 0(s0)
	li   t0, 71          # 'G'
	sw   t0, 4(s0)
	li   t0, 82          # 'R'
	sw   t0, 8(s0)
	li   t0, 65          # 'A'
	sw   t0, 12(s0)
	addi s0, s0, 16
	li   t0, 77          # 'M'
	sw   t0, 0(s0)
	li   t0, 44          # ','
	sw   t0, 4(s0)
	li   t0, 32          # ' '
	sw   t0, 8(s0)
	li   t0, 49          # '1'
	sw   t0, 12(s0)
	# str2 := str1 with the last character changed (unrolled copy).
	la   s0, str1
	la   s1, str2
	lw   t0, 0(s0)
	sw   t0, 0(s1)
	lw   t1, 4(s0)
	sw   t1, 4(s1)
	lw   t0, 8(s0)
	sw   t0, 8(s1)
	lw   t1, 12(s0)
	sw   t1, 12(s1)
	addi s0, s0, 16
	addi s1, s1, 16
	lw   t0, 0(s0)
	sw   t0, 0(s1)
	lw   t1, 4(s0)
	sw   t1, 4(s1)
	lw   t0, 8(s0)
	sw   t0, 8(s1)
	lw   t1, 12(s0)
	sw   t1, 12(s1)
	addi s0, s0, 16
	addi s1, s1, 16
	lw   t0, 0(s0)
	sw   t0, 0(s1)
	lw   t1, 4(s0)
	sw   t1, 4(s1)
	lw   t0, 8(s0)
	sw   t0, 8(s1)
	lw   t1, 12(s0)
	sw   t1, 12(s1)
	addi s0, s0, 16
	addi s1, s1, 16
	lw   t0, 0(s0)
	sw   t0, 0(s1)
	lw   t1, 4(s0)
	sw   t1, 4(s1)
	lw   t0, 8(s0)
	sw   t0, 8(s1)
	lw   t1, 12(s0)
	sw   t1, 12(s1)
	addi s0, s0, 16
	addi s1, s1, 16
	lw   t0, 0(s0)
	sw   t0, 0(s1)
	lw   t1, 4(s0)
	sw   t1, 4(s1)
	lw   t0, 8(s0)
	sw   t0, 8(s1)
	li   t1, 50          # '2': strings differ at the last word
	sw   t1, 12(s1)
	# Working tables: tab1[i] = i + 3, tab2[i] = tab1[i] copied.
	la   s0, tab1
	li   t0, 3
	sw   t0, 0(s0)
	li   t0, 4
	sw   t0, 4(s0)
	li   t0, 5
	sw   t0, 8(s0)
	li   t0, 6
	sw   t0, 12(s0)
	addi s0, s0, 16
	li   t0, 7
	sw   t0, 0(s0)
	li   t0, 8
	sw   t0, 4(s0)
	li   t0, 9
	sw   t0, 8(s0)
	li   t0, 10
	sw   t0, 12(s0)
	la   s0, tab1
	la   s1, tab2
	lw   t0, 0(s0)
	sw   t0, 0(s1)
	lw   t1, 4(s0)
	sw   t1, 4(s1)
	lw   t0, 8(s0)
	sw   t0, 8(s1)
	lw   t1, 12(s0)
	sw   t1, 12(s1)
	addi s0, s0, 16
	addi s1, s1, 16
	lw   t0, 0(s0)
	sw   t0, 0(s1)
	lw   t1, 4(s0)
	sw   t1, 4(s1)
	lw   t0, 8(s0)
	sw   t0, 8(s1)
	lw   t1, 12(s0)
	sw   t1, 12(s1)

	li   s5, 0           # iteration counter
	li   a0, 0           # checksum
main_loop:
	# --- Proc_1/Proc_3 flavour: rec2 := rec1, a 16-word copy unrolled
	# by four (struct assignment the way -O2 emits it for a loop-copied
	# record), then a field update.
	la   s0, rec1
	la   s1, rec2
	li   s2, 4
reccopy:
	lw   t0, 0(s0)
	sw   t0, 0(s1)
	lw   t1, 4(s0)
	sw   t1, 4(s1)
	lw   t0, 8(s0)
	sw   t0, 8(s1)
	lw   t1, 12(s0)
	sw   t1, 12(s1)
	addi s0, s0, 16
	addi s1, s1, 16
	addi s2, s2, -1
	bgtz s2, reccopy
	la   s1, rec2
	lw   t0, 8(s1)       # rec2.kind++
	addi t0, t0, 1
	sw   t0, 8(s1)

	# --- Func_2 flavour: compare the two 20-word strings; they differ
	# at the last position.
	la   s0, str1
	la   s1, str2
	li   s2, 20
	li   s3, 0
strcmp:
	lw   t0, 0(s0)
	lw   t1, 0(s1)
	bne  t0, t1, strdiff
	addi s0, s0, 4
	addi s1, s1, 4
	addi s2, s2, -1
	bgtz s2, strcmp
	j    strdone
strdiff:
	li   s3, 1
strdone:
	add  a0, a0, s3      # +1 per iteration

	# --- Proc_6 flavour: copy the first string into strdst.
	la   s0, str1
	la   s1, strdst
	li   s2, 20
strcpy:
	lw   t0, 0(s0)
	sw   t0, 0(s1)
	addi s0, s0, 4
	addi s1, s1, 4
	addi s2, s2, -1
	bgtz s2, strcpy

	# --- Proc_8 flavour: array sweep with computed indices.
	la   s0, arrg
	li   s2, 10
	li   t2, 0
arrsum:
	lw   t0, 0(s0)
	add  t2, t2, t0
	addi s0, s0, 4
	addi s2, s2, -1
	bgtz s2, arrsum
	la   s0, arrg
	lw   t0, 28(s0)      # arrg[7]++
	addi t0, t0, 1
	sw   t0, 28(s0)
	li   t1, 45
	blt  t2, t1, arrok   # keep arrg[7] bounded across iterations
	sw   zero, 28(s0)
arrok:

	# --- Proc_6/Proc_7 flavour: calls through small functions.
	mv   a1, t2
	call func_add3
	call func_ident
	call func_classify
	add  a0, a0, a1

	# --- Arithmetic kernel: one multiply, one divide (Int_1/2/3
	# expressions), values kept in 9-trit range.
	lw   t1, 16(s0)      # arrg[4]
	addi t1, t1, 2
	mul  t2, t1, t1      # ≤ 49
	la   t4, glob
	lw   t5, 8(t4)       # 5
	div  t3, t2, t5
	rem  t6, t2, t5
	add  t3, t3, t6
	add  a0, a0, t3

	# --- Branchy state machine (Proc_4 flavour).
	lw   t0, 0(t4)
	beqz t0, st_a
	li   t1, 2
	beq  t0, t1, st_c
	li   t0, 0
	j    st_done
st_a:
	li   t0, 1
	j    st_done
st_c:
	li   t0, 0
st_done:
	sw   t0, 0(t4)
	add  a0, a0, t0

	# --- keep the checksum inside the value contract: a0 ∈ [0, 999].
	li   t1, 1000
	blt  a0, t1, cksmall
	sub  a0, a0, t1
cksmall:

	addi s5, s5, 1
	li   t1, RUNS
	blt  s5, t1, main_loop
	ebreak

func_add3:
	addi a1, a1, 3
	ret
func_ident:
	mv   t0, a1
	mv   a1, t0
	ret
func_classify:
	# Ch_1 flavour: classify a1 into small bands.
	li   t0, 20
	blt  a1, t0, cls_lo
	li   t0, 60
	blt  a1, t0, cls_mid
	addi a1, a1, -7
	ret
cls_lo:
	addi a1, a1, 2
	ret
cls_mid:
	addi a1, a1, 1
	ret
`
