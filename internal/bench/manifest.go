package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/gate"
	"repro/internal/xlate"
)

// This file is the one manifest loader shared by every front end —
// cmd/art9-batch reads manifests from disk, internal/serve receives them
// as HTTP request bodies — so the two cannot drift on validation rules
// or error wording.

// Manifest names a batch of evaluation jobs plus the technologies to
// estimate each successful job's implementation against.
type Manifest struct {
	// Technologies lists design-technology models to evaluate each
	// job against: "cntfet32" and/or "stratixv".
	Technologies []string      `json:"technologies"`
	Jobs         []ManifestJob `json:"jobs"`
}

// ManifestJob names one program: exactly one of Workload (a built-in
// suite name), Source (inline RV32 assembly), or File (a path to RV32
// assembly, relative to the manifest) must be set.
type ManifestJob struct {
	Name       string `json:"name"`
	Workload   string `json:"workload,omitempty"`
	Source     string `json:"source,omitempty"`
	File       string `json:"file,omitempty"`
	Iterations int    `json:"iterations,omitempty"`
	// TimeoutMS bounds this job's evaluation in milliseconds (0: the
	// engine's default). It rides the wire, so the bound holds whether
	// the job runs locally or on a remote peer.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ParseManifest decodes and validates a manifest document.
func ParseManifest(raw []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	if len(m.Jobs) == 0 {
		return nil, fmt.Errorf("manifest: no jobs")
	}
	return &m, nil
}

// LoadManifest reads and parses a manifest file.
func LoadManifest(path string) (*Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	m, err := ParseManifest(raw)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return m, nil
}

// Resolve turns one manifest entry into a runnable workload. dir is the
// base for relative File paths; the empty string disables File jobs
// entirely — the network-facing server resolves with dir == "" so a
// request body can never read server-side files.
func (mj ManifestJob) Resolve(dir string) (Workload, error) {
	set := 0
	for _, s := range []string{mj.Workload, mj.Source, mj.File} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		return Workload{}, fmt.Errorf("job %q: exactly one of workload, source, file required", mj.Name)
	}
	iters := mj.Iterations
	if iters < 1 {
		iters = 1
	}
	switch {
	case mj.Workload != "":
		w, ok := ByName(mj.Workload)
		if !ok {
			return Workload{}, fmt.Errorf("job %q: unknown workload %q", mj.Name, mj.Workload)
		}
		if mj.Name != "" {
			w.Name = mj.Name
		}
		if mj.Iterations > 0 {
			w.Iterations = mj.Iterations
		}
		return w, nil
	case mj.Source != "":
		return Workload{Name: mj.Name, Description: "manifest inline source",
			Source: mj.Source, Iterations: iters}, nil
	default:
		if dir == "" {
			return Workload{}, fmt.Errorf("job %q: file jobs are not allowed here", mj.Name)
		}
		path := mj.File
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, path)
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return Workload{}, fmt.Errorf("job %q: %w", mj.Name, err)
		}
		return Workload{Name: mj.Name, Description: "manifest file " + mj.File,
			Source: string(src), Iterations: iters}, nil
	}
}

// Workloads resolves every manifest entry (see ManifestJob.Resolve for
// the dir contract).
func (m *Manifest) Workloads(dir string) ([]Workload, error) {
	ws := make([]Workload, len(m.Jobs))
	for i, mj := range m.Jobs {
		w, err := mj.Resolve(dir)
		if err != nil {
			return nil, err
		}
		ws[i] = w
	}
	return ws, nil
}

// JobSpec is the serializable description of one engine job, attached
// to engine.Job.Spec by SuiteJobs. Backends that cannot ship closures —
// the internal/remote HTTP client — re-create the work on a peer from
// it: the job rendered as a manifest entry (with the program inlined as
// source text, so file jobs travel by content, never by path) plus the
// technologies the peer should estimate implementations against.
type JobSpec struct {
	Job          ManifestJob `json:"job"`
	Technologies []string    `json:"technologies,omitempty"`
}

// EngineJobs resolves the manifest into engine jobs ready to submit,
// each running the full multi-core evaluation of its workload. The
// manifest's technologies and each entry's timeout ride on the jobs'
// JobSpecs, so a remote backend applies the same implementation
// estimates and per-job bounds the local path does.
func (m *Manifest) EngineJobs(dir string, opts xlate.Options) ([]engine.Job, error) {
	ws, err := m.Workloads(dir)
	if err != nil {
		return nil, err
	}
	jobs := SuiteJobs(ws, opts)
	for i, j := range jobs {
		spec := j.Spec.(*JobSpec)
		spec.Technologies = m.Technologies
		spec.Job.TimeoutMS = m.Jobs[i].TimeoutMS
		if ms := m.Jobs[i].TimeoutMS; ms > 0 {
			jobs[i].Timeout = time.Duration(ms) * time.Millisecond
		}
	}
	return jobs, nil
}

// ApplyJobTimeout stamps a default per-job bound onto jobs that carry
// none — a manifest entry's own timeout_ms always wins. The job's
// Timeout rides the wire spec (wireJobOf forwards it), so stamping here
// is what makes a front end's timeout flag hold on remote peers, where
// a local engine option cannot reach. Shared by art9-batch and
// internal/serve so the precedence rule cannot drift between them.
func ApplyJobTimeout(jobs []engine.Job, d time.Duration) {
	if d <= 0 {
		return
	}
	for i := range jobs {
		if jobs[i].Timeout == 0 {
			jobs[i].Timeout = d
		}
	}
}

// ResolveTechnologies maps manifest technology names to their models.
func (m *Manifest) ResolveTechnologies() ([]*gate.Technology, error) {
	return Technologies(m.Technologies)
}

// techModels is the technology registry: name → model constructor.
// The built-ins are the paper's two implementation targets; tests (and,
// eventually, pluggable scenario models) swap entries via
// RegisterTechnology. Guarded by techModelsMu because the dispatch
// path resolves names concurrently.
var (
	techModelsMu sync.RWMutex
	techModels   = map[string]func() *gate.Technology{
		"cntfet32": gate.CNTFET32,
		"stratixv": gate.StratixVEmulation,
	}
)

// RegisterTechnology binds name to a model constructor, replacing any
// previous binding, and returns a function restoring the prior state.
// This is how a test edits the technology table between runs — the
// result cache must key on the model's content (Fingerprint), so the
// edit must produce misses, never stale hits.
func RegisterTechnology(name string, build func() *gate.Technology) (restore func()) {
	techModelsMu.Lock()
	prev, had := techModels[name]
	techModels[name] = build
	techModelsMu.Unlock()
	return func() {
		techModelsMu.Lock()
		if had {
			techModels[name] = prev
		} else {
			delete(techModels, name)
		}
		techModelsMu.Unlock()
	}
}

// Technologies maps technology names to their models.
func Technologies(names []string) ([]*gate.Technology, error) {
	techModelsMu.RLock()
	defer techModelsMu.RUnlock()
	var techs []*gate.Technology
	for _, n := range names {
		build, ok := techModels[n]
		if !ok {
			known := make([]string, 0, len(techModels))
			for k := range techModels {
				known = append(known, k)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown technology %q (want %s)", n, strings.Join(known, " or "))
		}
		techs = append(techs, build())
	}
	return techs, nil
}
