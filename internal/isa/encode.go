package isa

import (
	"fmt"

	"repro/internal/ternary"
)

// Instruction encoding (DESIGN.md §3). Trits are numbered t8 (most
// significant) … t0. The 2-trit major opcode lives in t8..t7; formats that
// need all seven remaining trits for operands get a dedicated major code,
// the R and I families add minor codes. All operand field widths of
// Table I are preserved exactly.

// Major opcode values (balanced value of the t8..t7 field, t7 is the low
// trit of the field).
const (
	majR     = -4 // (t8,t7) = (−1,−1)
	majI     = -1 // (−1, 0)
	majLI    = 2  // (−1,+1)
	majJAL   = -3 // ( 0,−1)
	majJALR  = 0  // ( 0, 0)
	majBEQ   = 3  // ( 0,+1)
	majBNE   = -2 // (+1,−1)
	majLOAD  = 1  // (+1, 0)
	majSTORE = 4  // (+1,+1)
)

// R-type minor codes (t6..t4), balanced values −5…+6.
var rMinor = map[Op]int{
	MV: -5, PTI: -4, NTI: -3, STI: -2, AND: -1, OR: 0,
	XOR: 1, ADD: 2, SUB: 3, SR: 4, SL: 5, COMP: 6,
}

// rMinorTab is the decode table for the 3-trit R-type minor field,
// indexed by minor+13 (the field ranges over [−13, 13]); −1 marks an
// illegal minor. An array lookup keeps the fetch/decode hot path free of
// map hashing.
var rMinorTab = func() (t [27]int8) {
	for i := range t {
		t[i] = -1
	}
	for op, v := range rMinor {
		t[v+13] = int8(op)
	}
	return
}()

// Encode encodes i into its 9-trit machine word. It returns an error if
// any operand is out of range for its field.
func Encode(i Inst) (ternary.Word, error) {
	if err := i.Validate(); err != nil {
		return ternary.Word{}, err
	}
	var w ternary.Word
	switch i.Op {
	case MV, PTI, NTI, STI, AND, OR, XOR, ADD, SUB, SR, SL, COMP:
		w = w.SetField(7, 8, majR)
		w = w.SetField(4, 6, rMinor[i.Op])
		w = w.SetField(2, 3, regField(i.Ta))
		w = w.SetField(0, 1, regField(i.Tb))
	case LUI:
		w = w.SetField(7, 8, majI)
		w = w.SetField(6, 6, -1)
		w = w.SetField(4, 5, regField(i.Ta))
		w = w.SetField(0, 3, i.Imm)
	case ANDI, ADDI, SRI, SLI:
		w = w.SetField(7, 8, majI)
		switch i.Op {
		case ANDI:
			w = w.SetField(6, 6, 0).SetField(5, 5, -1)
		case ADDI:
			w = w.SetField(6, 6, 0).SetField(5, 5, 0)
		case SRI:
			w = w.SetField(6, 6, 0).SetField(5, 5, 1)
		case SLI:
			w = w.SetField(6, 6, 1).SetField(5, 5, -1)
		}
		w = w.SetField(3, 4, regField(i.Ta))
		if i.Op == SRI || i.Op == SLI {
			w = w.SetField(0, 1, i.Imm) // imm[1:0], t2 stays 0
		} else {
			w = w.SetField(0, 2, i.Imm)
		}
	case LI, JAL:
		if i.Op == LI {
			w = w.SetField(7, 8, majLI)
		} else {
			w = w.SetField(7, 8, majJAL)
		}
		w = w.SetField(5, 6, regField(i.Ta))
		w = w.SetField(0, 4, i.Imm)
	case JALR, LOAD, STORE:
		switch i.Op {
		case JALR:
			w = w.SetField(7, 8, majJALR)
		case LOAD:
			w = w.SetField(7, 8, majLOAD)
		default:
			w = w.SetField(7, 8, majSTORE)
		}
		w = w.SetField(5, 6, regField(i.Ta))
		w = w.SetField(3, 4, regField(i.Tb))
		w = w.SetField(0, 2, i.Imm)
	case BEQ, BNE:
		if i.Op == BEQ {
			w = w.SetField(7, 8, majBEQ)
		} else {
			w = w.SetField(7, 8, majBNE)
		}
		w = w.SetField(6, 6, int(i.B))
		w = w.SetField(4, 5, regField(i.Tb))
		w = w.SetField(0, 3, i.Imm)
	default:
		return ternary.Word{}, fmt.Errorf("isa: cannot encode op %d", i.Op)
	}
	return w, nil
}

// MustEncode is Encode for known-valid instructions; it panics on error.
// It backs the assembler's emit path after validation.
func MustEncode(i Inst) ternary.Word {
	w, err := Encode(i)
	if err != nil {
		panic(err)
	}
	return w
}

// Decode decodes a 9-trit machine word into an instruction. Words that do
// not correspond to any of the 24 instructions return an error (the
// hardware raises an illegal-instruction condition).
func Decode(w ternary.Word) (Inst, error) { return DecodePacked(ternary.Pack(w)) }

// DecodePacked is Decode over the bit-plane form — the simulator fetch path
// decodes straight from packed instruction memory without unpacking. The
// two render identically, so error text is unchanged.
func DecodePacked(w ternary.Packed) (Inst, error) {
	switch w.Field(7, 8) {
	case majR:
		minor := w.Field(4, 6)
		op := rMinorTab[minor+13]
		if op < 0 {
			return Inst{}, fmt.Errorf("isa: illegal R-type minor %d in %v", minor, w)
		}
		return Inst{
			Op: Op(op),
			Ta: regFromField(w.Field(2, 3)),
			Tb: regFromField(w.Field(0, 1)),
		}, nil
	case majI:
		switch w.Field(6, 6) {
		case -1:
			return Inst{Op: LUI, Ta: regFromField(w.Field(4, 5)), Imm: w.Field(0, 3)}, nil
		case 0:
			var op Op
			switch w.Field(5, 5) {
			case -1:
				op = ANDI
			case 0:
				op = ADDI
			default:
				op = SRI
			}
			imm := w.Field(0, 2)
			if op == SRI {
				if w.Field(2, 2) != 0 {
					return Inst{}, fmt.Errorf("isa: illegal SRI padding in %v", w)
				}
				imm = w.Field(0, 1)
			}
			return Inst{Op: op, Ta: regFromField(w.Field(3, 4)), Imm: imm}, nil
		default: // t6 = +1
			if w.Field(5, 5) != -1 {
				return Inst{}, fmt.Errorf("isa: illegal I-type minor in %v", w)
			}
			if w.Field(2, 2) != 0 {
				return Inst{}, fmt.Errorf("isa: illegal SLI padding in %v", w)
			}
			return Inst{Op: SLI, Ta: regFromField(w.Field(3, 4)), Imm: w.Field(0, 1)}, nil
		}
	case majLI:
		return Inst{Op: LI, Ta: regFromField(w.Field(5, 6)), Imm: w.Field(0, 4)}, nil
	case majJAL:
		return Inst{Op: JAL, Ta: regFromField(w.Field(5, 6)), Imm: w.Field(0, 4)}, nil
	case majJALR, majLOAD, majSTORE:
		var op Op
		switch w.Field(7, 8) {
		case majJALR:
			op = JALR
		case majLOAD:
			op = LOAD
		default:
			op = STORE
		}
		return Inst{
			Op:  op,
			Ta:  regFromField(w.Field(5, 6)),
			Tb:  regFromField(w.Field(3, 4)),
			Imm: w.Field(0, 2),
		}, nil
	case majBEQ, majBNE:
		op := BEQ
		if w.Field(7, 8) == majBNE {
			op = BNE
		}
		return Inst{
			Op:  op,
			B:   ternary.Trit(w.Field(6, 6)),
			Tb:  regFromField(w.Field(4, 5)),
			Imm: w.Field(0, 3),
		}, nil
	}
	// Unreachable: the 2-trit major covers all 9 values.
	return Inst{}, fmt.Errorf("isa: undecodable word %v", w)
}
