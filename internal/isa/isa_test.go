package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ternary"
)

func TestOpNamesComplete(t *testing.T) {
	if len(opNames) != NumOps {
		t.Fatalf("opNames has %d entries, want %d", len(opNames), NumOps)
	}
	seen := map[string]bool{}
	for i := 0; i < NumOps; i++ {
		n := Op(i).String()
		if n == "" || strings.HasPrefix(n, "Op(") {
			t.Errorf("Op(%d) has no name", i)
		}
		if seen[n] {
			t.Errorf("duplicate mnemonic %q", n)
		}
		seen[n] = true
		if OpByName[n] != Op(i) {
			t.Errorf("OpByName[%q] = %v, want %v", n, OpByName[n], Op(i))
		}
	}
}

func TestCategories(t *testing.T) {
	// Table I: 12 R, 6 I, 4 B, 2 M.
	count := map[Category]int{}
	for i := 0; i < NumOps; i++ {
		count[Op(i).Category()]++
	}
	want := map[Category]int{CatR: 12, CatI: 6, CatB: 4, CatM: 2}
	for c, n := range want {
		if count[c] != n {
			t.Errorf("category %v has %d ops, want %d", c, count[c], n)
		}
	}
}

func TestImmWidthsMatchTableI(t *testing.T) {
	want := map[Op]int{
		MV: 0, PTI: 0, NTI: 0, STI: 0, AND: 0, OR: 0, XOR: 0,
		ADD: 0, SUB: 0, SR: 0, SL: 0, COMP: 0,
		ANDI: 3, ADDI: 3, SRI: 2, SLI: 2, LUI: 4, LI: 5,
		BEQ: 4, BNE: 4, JAL: 5, JALR: 3,
		LOAD: 3, STORE: 3,
	}
	for op, n := range want {
		if got := op.ImmTrits(); got != n {
			t.Errorf("%v.ImmTrits() = %d, want %d", op, got, n)
		}
	}
}

func TestParseReg(t *testing.T) {
	for i := 0; i < NumRegs; i++ {
		name := Reg(i).String()
		r, err := ParseReg(name)
		if err != nil || r != Reg(i) {
			t.Errorf("ParseReg(%q) = %v, %v", name, r, err)
		}
		r, err = ParseReg(strings.ToLower(name))
		if err != nil || r != Reg(i) {
			t.Errorf("ParseReg lower(%q) = %v, %v", name, r, err)
		}
	}
	for _, bad := range []string{"T9", "T", "X0", "t10", "", "9"} {
		if _, err := ParseReg(bad); err == nil {
			t.Errorf("ParseReg(%q) succeeded", bad)
		}
	}
}

// randomInst generates a uniformly random valid instruction.
func randomInst(rng *rand.Rand) Inst {
	op := Op(rng.Intn(NumOps))
	i := Inst{Op: op}
	if op.HasTa() {
		i.Ta = Reg(rng.Intn(NumRegs))
	}
	if op.HasTb() {
		i.Tb = Reg(rng.Intn(NumRegs))
	}
	if n := op.ImmTrits(); n > 0 {
		max := ternary.MaxForTrits(n)
		i.Imm = rng.Intn(2*max+1) - max
	}
	if op.IsBranch() {
		i.B = ternary.Trit(rng.Intn(3) - 1)
	}
	return i
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 0; n < 5000; n++ {
		in := randomInst(rng)
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(Encode(%v)) = %v: %v", in, w, err)
		}
		if out != in {
			t.Fatalf("round trip: %v -> %v -> %v", in, w, out)
		}
	}
}

func TestEncodeDeterministicExamples(t *testing.T) {
	// Pin a few encodings so the binary format cannot drift silently.
	cases := []struct {
		in   Inst
		want string // ternary word, MST first
	}{
		// Hand-checked against the field layout of DESIGN.md §3.
		{Inst{Op: ADD, Ta: 1, Tb: 2}, "TT01TT0T1"},
		{NOP(), "0T00TT000"},
		{Inst{Op: LI, Ta: 4, Imm: 121}, "1T0011111"},
		{Inst{Op: JAL, Ta: 8, Imm: -121}, "T011TTTTT"},
		{Inst{Op: BEQ, Tb: 0, B: ternary.Pos, Imm: 40}, "101TT1111"},
		{Inst{Op: STORE, Ta: 3, Tb: 2, Imm: -13}, "110TT1TTT"},
	}
	for _, c := range cases {
		w, err := Encode(c.in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", c.in, err)
		}
		if w.String() != c.want {
			t.Errorf("Encode(%v) = %s, want %s", c.in, w, c.want)
		}
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	bad := []Inst{
		{Op: ADDI, Ta: 0, Imm: 14},                    // imm3 max 13
		{Op: ADDI, Ta: 0, Imm: -14},                   //
		{Op: SRI, Ta: 0, Imm: 5},                      // imm2 max 4
		{Op: LUI, Ta: 0, Imm: 41},                     // imm4 max 40
		{Op: LI, Ta: 0, Imm: 122},                     // imm5 max 121
		{Op: JAL, Ta: 0, Imm: -122},                   //
		{Op: ADD, Ta: 9, Tb: 0},                       // bad register
		{Op: ADD, Ta: 0, Tb: 12},                      //
		{Op: BEQ, Tb: 0, B: 2, Imm: 0},                // bad condition trit
		{Op: ADD, Ta: 0, Tb: 0, Imm: 3},               // R-type with imm
		{Op: MV, Ta: 0, Tb: 0, B: ternary.Pos},        // non-branch with B
		{Op: Op(77), Ta: 0},                           // invalid op
		{Op: BEQ, Tb: 0, B: ternary.Neg, Imm: 41},     // branch imm4 max 40
		{Op: LOAD, Ta: 0, Tb: 0, Imm: ternary.MaxInt}, // way out
	}
	for _, in := range bad {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%+v) succeeded, want error", in)
		}
	}
}

func TestDecodeRejectsIllegal(t *testing.T) {
	// Illegal R-type minor (e.g. +13 is unassigned).
	w := ternary.Word{}.SetField(7, 8, majR).SetField(4, 6, 13)
	if _, err := Decode(w); err == nil {
		t.Error("Decode of illegal R minor succeeded")
	}
	// Illegal I-type minor: t6=+1, t5=0 (only t5=−1→SLI defined).
	w = ternary.Word{}.SetField(7, 8, majI).SetField(6, 6, 1).SetField(5, 5, 0)
	if _, err := Decode(w); err == nil {
		t.Error("Decode of illegal I minor succeeded")
	}
	// SRI with nonzero t2 padding.
	w = ternary.Word{}.SetField(7, 8, majI).SetField(6, 6, 0).SetField(5, 5, 1).SetField(2, 2, 1)
	if _, err := Decode(w); err == nil {
		t.Error("Decode of SRI with dirty padding succeeded")
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEncode of invalid inst did not panic")
		}
	}()
	MustEncode(Inst{Op: ADDI, Imm: 1000})
}

func TestNOP(t *testing.T) {
	n := NOP()
	if !n.IsNOP() {
		t.Error("NOP().IsNOP() = false")
	}
	if n.Op != ADDI || n.Imm != 0 {
		t.Errorf("NOP() = %v, want ADDI x,0", n)
	}
	if (Inst{Op: ADDI, Ta: 3, Imm: 0}).IsNOP() != true {
		t.Error("ADDI T3,0 should be a NOP")
	}
	if (Inst{Op: ADDI, Ta: 3, Imm: 1}).IsNOP() {
		t.Error("ADDI T3,1 is not a NOP")
	}
}

func TestDisassemblyForms(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Ta: 1, Tb: 2}, "ADD T1, T2"},
		{Inst{Op: STI, Ta: 0, Tb: 8}, "STI T0, T8"},
		{Inst{Op: ADDI, Ta: 5, Imm: -13}, "ADDI T5, -13"},
		{Inst{Op: LUI, Ta: 2, Imm: 40}, "LUI T2, 40"},
		{Inst{Op: BEQ, Tb: 3, B: ternary.Neg, Imm: 7}, "BEQ T3, -1, 7"},
		{Inst{Op: BNE, Tb: 3, B: ternary.Zero, Imm: -7}, "BNE T3, 0, -7"},
		{Inst{Op: JAL, Ta: 1, Imm: 20}, "JAL T1, 20"},
		{Inst{Op: JALR, Ta: 1, Tb: 2, Imm: 0}, "JALR T1, T2, 0"},
		{Inst{Op: LOAD, Ta: 1, Tb: 2, Imm: 3}, "LOAD T1, T2, 3"},
		{Inst{Op: STORE, Ta: 1, Tb: 2, Imm: -3}, "STORE T1, T2, -3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestEncodeIsInjective(t *testing.T) {
	// Two different valid instructions never share an encoding.
	rng := rand.New(rand.NewSource(8))
	seen := map[ternary.Word]Inst{}
	for n := 0; n < 3000; n++ {
		in := randomInst(rng)
		w := MustEncode(in)
		if prev, ok := seen[w]; ok && prev != in {
			t.Fatalf("encoding collision: %v and %v both encode to %v", prev, in, w)
		}
		seen[w] = in
	}
}

func TestDecodeTotalOverRandomWords(t *testing.T) {
	// Decode must never panic on arbitrary valid ternary words, and any
	// successful decode must re-encode to the same word.
	f := func(v int16) bool {
		w := ternary.FromInt(int(v) * 7)
		in, err := Decode(w)
		if err != nil {
			return true // illegal instruction is fine
		}
		w2, err := Encode(in)
		return err == nil && w2 == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDataflowPredicates(t *testing.T) {
	// STORE reads Ta (the stored value) but writes nothing.
	if !STORE.ReadsTa() || STORE.WritesReg() {
		t.Error("STORE dataflow wrong")
	}
	// MV reads only Tb.
	if MV.ReadsTa() || !MV.ReadsTb() || !MV.WritesReg() {
		t.Error("MV dataflow wrong")
	}
	// Branches write nothing and read Tb.
	if BEQ.WritesReg() || !BEQ.ReadsTb() || BEQ.ReadsTa() {
		t.Error("BEQ dataflow wrong")
	}
	// JAL writes the link register, reads nothing.
	if !JAL.WritesReg() || JAL.ReadsTa() || JAL.ReadsTb() {
		t.Error("JAL dataflow wrong")
	}
	// LI merges, so it reads and writes Ta.
	if !LI.ReadsTa() || !LI.WritesReg() {
		t.Error("LI dataflow wrong")
	}
	// LUI overwrites completely.
	if LUI.ReadsTa() {
		t.Error("LUI should not read Ta")
	}
}
