// Package isa defines the ART-9 instruction set architecture of Table I of
// the paper: 24 ternary instructions in four categories (R, I, B, M)
// operating on 9-trit words, nine general-purpose ternary registers
// (T0…T8) addressed by 2-trit indices, and the 9-trit instruction encoding
// described in DESIGN.md §3.
package isa

import (
	"fmt"

	"repro/internal/ternary"
)

// Op identifies one of the 24 ART-9 instructions.
type Op uint8

// The 24 ART-9 instructions (Table I), grouped by category.
const (
	// R-type: register/register logical and arithmetic operations.
	MV   Op = iota // TRF[Ta] = TRF[Tb]
	PTI            // TRF[Ta] = PTI(TRF[Tb])
	NTI            // TRF[Ta] = NTI(TRF[Tb])
	STI            // TRF[Ta] = STI(TRF[Tb])
	AND            // TRF[Ta] = TRF[Ta] & TRF[Tb]   (trit-wise min)
	OR             // TRF[Ta] = TRF[Ta] | TRF[Tb]   (trit-wise max)
	XOR            // TRF[Ta] = TRF[Ta] ⊕ TRF[Tb]   (trit-wise −(a·b))
	ADD            // TRF[Ta] = TRF[Ta] + TRF[Tb]
	SUB            // TRF[Ta] = TRF[Ta] − TRF[Tb]
	SR             // TRF[Ta] = TRF[Ta] ≫ TRF[Tb][1:0]
	SL             // TRF[Ta] = TRF[Ta] ≪ TRF[Tb][1:0]
	COMP           // TRF[Ta] = compare(TRF[Ta], TRF[Tb]) → sign in LST

	// I-type: immediate operations.
	ANDI // TRF[Ta] = TRF[Ta] & imm[2:0]
	ADDI // TRF[Ta] = TRF[Ta] + imm[2:0]; ADDI x,0 is the canonical NOP
	SRI  // TRF[Ta] = TRF[Ta] ≫ imm[1:0]
	SLI  // TRF[Ta] = TRF[Ta] ≪ imm[1:0]
	LUI  // TRF[Ta] = {imm[3:0], 00000}
	LI   // TRF[Ta] = {TRF[Ta][8:5], imm[4:0]}

	// B-type: control transfer.
	BEQ  // PC = PC + imm[3:0] if TRF[Tb][0] == B
	BNE  // PC = PC + imm[3:0] if TRF[Tb][0] != B
	JAL  // TRF[Ta] = PC+1, PC = PC + imm[4:0]
	JALR // TRF[Ta] = PC+1, PC = TRF[Tb] + imm[2:0]

	// M-type: memory access.
	LOAD  // TRF[Ta] = TDM[TRF[Tb] + imm[2:0]]
	STORE // TDM[TRF[Tb] + imm[2:0]] = TRF[Ta]

	NumOps = 24
)

var opNames = [NumOps]string{
	"MV", "PTI", "NTI", "STI", "AND", "OR", "XOR", "ADD", "SUB", "SR", "SL", "COMP",
	"ANDI", "ADDI", "SRI", "SLI", "LUI", "LI",
	"BEQ", "BNE", "JAL", "JALR",
	"LOAD", "STORE",
}

// String returns the assembler mnemonic of op.
func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// OpByName maps an assembler mnemonic (upper case) to its opcode.
var OpByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for i, n := range opNames {
		m[n] = Op(i)
	}
	return m
}()

// Category is the instruction category of Table I.
type Category uint8

const (
	CatR Category = iota // register/register
	CatI                 // immediate
	CatB                 // branch/jump
	CatM                 // memory
)

func (c Category) String() string {
	return [...]string{"R", "I", "B", "M"}[c]
}

// Category returns the Table I category of op.
func (op Op) Category() Category {
	switch {
	case op <= COMP:
		return CatR
	case op <= LI:
		return CatI
	case op <= JALR:
		return CatB
	default:
		return CatM
	}
}

// ImmTrits returns the width in trits of op's immediate field (Table I),
// or 0 if op takes no immediate.
func (op Op) ImmTrits() int {
	switch op {
	case ANDI, ADDI, JALR, LOAD, STORE:
		return 3
	case SRI, SLI:
		return 2
	case LUI, BEQ, BNE:
		return 4
	case LI, JAL:
		return 5
	}
	return 0
}

// HasTa reports whether op encodes a Ta register field.
func (op Op) HasTa() bool { return op != BEQ && op != BNE }

// HasTb reports whether op encodes a Tb register field.
func (op Op) HasTb() bool {
	switch op {
	case MV, PTI, NTI, STI, AND, OR, XOR, ADD, SUB, SR, SL, COMP,
		BEQ, BNE, JALR, LOAD, STORE:
		return true
	}
	return false
}

// ReadsTa reports whether the instruction reads TRF[Ta] as a source
// (two-address R/I-type ops read and overwrite Ta; LI merges into Ta's
// upper trits; STORE reads Ta as the value to store).
func (op Op) ReadsTa() bool {
	switch op {
	case AND, OR, XOR, ADD, SUB, SR, SL, COMP,
		ANDI, ADDI, SRI, SLI, LI, STORE:
		return true
	}
	return false
}

// ReadsTb reports whether the instruction reads TRF[Tb].
func (op Op) ReadsTb() bool {
	switch op {
	case MV, PTI, NTI, STI, AND, OR, XOR, ADD, SUB, SR, SL, COMP,
		BEQ, BNE, JALR, LOAD, STORE:
		return true
	}
	return false
}

// WritesReg reports whether the instruction writes a register, and which
// field names it (always Ta in ART-9).
func (op Op) WritesReg() bool {
	switch op {
	case BEQ, BNE, STORE:
		return false
	}
	return true
}

// IsBranch reports whether op is a conditional branch.
func (op Op) IsBranch() bool { return op == BEQ || op == BNE }

// IsJump reports whether op is an unconditional jump.
func (op Op) IsJump() bool { return op == JAL || op == JALR }

// IsMem reports whether op accesses TDM.
func (op Op) IsMem() bool { return op == LOAD || op == STORE }

// Reg is a general-purpose ternary register index, T0…T8 (§IV-A: the TRF
// holds nine registers, each addressed by a 2-trit value).
type Reg uint8

// NumRegs is the number of general-purpose ternary registers.
const NumRegs = 9

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// String returns the assembler name of r ("T0"…"T8").
func (r Reg) String() string { return fmt.Sprintf("T%d", uint8(r)) }

// ParseReg parses a register name of the form "T0"…"T8" (case-insensitive).
func ParseReg(s string) (Reg, error) {
	if len(s) == 2 && (s[0] == 'T' || s[0] == 't') && s[1] >= '0' && s[1] <= '8' {
		return Reg(s[1] - '0'), nil
	}
	return 0, fmt.Errorf("isa: invalid register %q (want T0..T8)", s)
}

// regField converts a register index to its 2-trit balanced field value.
func regField(r Reg) int { return int(r) - 4 }

// regFromField converts a 2-trit balanced field value to a register index.
func regFromField(v int) Reg { return Reg(v + 4) }

// Inst is a decoded ART-9 instruction. Fields that the opcode does not use
// are zero and ignored by Encode.
type Inst struct {
	Op  Op
	Ta  Reg          // destination (and first source for two-address ops)
	Tb  Reg          // second source / base register
	B   ternary.Trit // branch condition trit (BEQ/BNE only)
	Imm int          // balanced immediate value
}

// NOP returns the canonical no-operation: ADDI T0, 0 (§IV-B — the ISA has
// no dedicated NOP encoding).
func NOP() Inst { return Inst{Op: ADDI, Ta: 0, Imm: 0} }

// IsNOP reports whether i has no architectural effect (an ADDI with a zero
// immediate).
func (i Inst) IsNOP() bool { return i.Op == ADDI && i.Imm == 0 }

// Validate checks operand ranges against the encoding (register indices and
// immediate widths of Table I).
func (i Inst) Validate() error {
	if i.Op >= NumOps {
		return fmt.Errorf("isa: invalid opcode %d", i.Op)
	}
	if i.Op.HasTa() && !i.Ta.Valid() {
		return fmt.Errorf("isa: %s: invalid Ta %d", i.Op, i.Ta)
	}
	if i.Op.HasTb() && !i.Tb.Valid() {
		return fmt.Errorf("isa: %s: invalid Tb %d", i.Op, i.Tb)
	}
	if n := i.Op.ImmTrits(); n > 0 {
		if !ternary.FitsTrits(i.Imm, n) {
			return fmt.Errorf("isa: %s: immediate %d does not fit in %d trits (|imm| ≤ %d)",
				i.Op, i.Imm, n, ternary.MaxForTrits(n))
		}
	} else if i.Imm != 0 {
		return fmt.Errorf("isa: %s takes no immediate", i.Op)
	}
	if i.Op.IsBranch() {
		if !i.B.Valid() {
			return fmt.Errorf("isa: %s: invalid condition trit %d", i.Op, i.B)
		}
	} else if i.B != 0 {
		return fmt.Errorf("isa: %s takes no condition trit", i.Op)
	}
	return nil
}

// String disassembles i into assembler syntax.
func (i Inst) String() string {
	switch i.Op {
	case MV, PTI, NTI, STI, AND, OR, XOR, ADD, SUB, SR, SL, COMP:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Ta, i.Tb)
	case ANDI, ADDI, SRI, SLI, LUI, LI:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Ta, i.Imm)
	case BEQ, BNE:
		return fmt.Sprintf("%s %s, %d, %d", i.Op, i.Tb, int(i.B), i.Imm)
	case JAL:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Ta, i.Imm)
	case JALR, LOAD, STORE:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Ta, i.Tb, i.Imm)
	}
	return fmt.Sprintf("<invalid op %d>", uint8(i.Op))
}
