package gate

import "fmt"

// Netlist validation and structural statistics: sanity checks a synthesis
// flow would run before timing, used by the tests and available to tools.

// Validate checks structural invariants: topological construction order
// (guaranteed by Add, re-checked here), fanin arity per cell kind, and
// that no combinational cell is dangling with zero fanin.
func (n *Netlist) Validate() error {
	for i, c := range n.Cells {
		for _, f := range c.Fanin {
			if f >= i {
				return fmt.Errorf("gate: cell %d (%s) has non-topological fanin %d", i, c.Name, f)
			}
		}
		lo, hi := fanInArity(c.Kind)
		if len(c.Fanin) < lo || len(c.Fanin) > hi {
			return fmt.Errorf("gate: cell %d (%s, %v) has %d fanins, want %d..%d",
				i, c.Name, c.Kind, len(c.Fanin), lo, hi)
		}
	}
	return nil
}

// fanInArity returns the legal fanin range per cell kind.
func fanInArity(k CellKind) (lo, hi int) {
	switch k {
	case Input:
		return 0, 0
	case STI, NTI, PTI, TBUF, TDFF, TDEC:
		return 1, 1
	case TNAND, TNOR, TAND, TOR, TXOR, THA:
		return 2, 2
	case TCMP:
		return 2, 3 // ripple comparator slices take an optional chain-in
	case TFA:
		return 3, 3
	case TMUX:
		return 4, 4 // select + three data legs
	}
	return 0, 4
}

// FanoutStats summarises how many consumers each cell drives.
type FanoutStats struct {
	Max     int
	MaxCell string
	Mean    float64
	// Unused counts cells (excluding flops and primary inputs) whose
	// output drives nothing — top-level outputs or genuinely dead logic.
	Unused int
}

// Fanout computes driver statistics over the netlist.
func (n *Netlist) Fanout() FanoutStats {
	counts := make([]int, len(n.Cells))
	for _, c := range n.Cells {
		for _, f := range c.Fanin {
			counts[f]++
		}
	}
	var st FanoutStats
	total, driven := 0, 0
	for i, c := range n.Cells {
		if c.Kind == Input {
			continue
		}
		total += counts[i]
		driven++
		if counts[i] > st.Max {
			st.Max, st.MaxCell = counts[i], c.Name
		}
		if counts[i] == 0 && c.Kind != TDFF {
			st.Unused++
		}
	}
	if driven > 0 {
		st.Mean = float64(total) / float64(driven)
	}
	return st
}

// Depth returns the maximum combinational depth in cells (levels between
// sequential boundaries), a technology-independent complexity measure.
func (n *Netlist) Depth() int {
	depth := make([]int, len(n.Cells))
	max := 0
	for i, c := range n.Cells {
		switch c.Kind {
		case Input, TDFF:
			depth[i] = 0
		default:
			d := 0
			for _, f := range c.Fanin {
				if depth[f] > d {
					d = depth[f]
				}
			}
			depth[i] = d + 1
			if depth[i] > max {
				max = depth[i]
			}
		}
	}
	return max
}
