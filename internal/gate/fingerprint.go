package gate

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"strconv"
	"strings"
	"sync"
)

// This file gives every Technology a canonical content identity. The
// fleet-wide result cache (internal/rescache via internal/bench) folds
// these digests into its keys, so an edited timing/energy table — the
// very numbers the Tables II–V evaluation exists to produce — can never
// replay a stale metric as a cache hit, and the engine's analysis
// memoization distinguishes two models that merely share a Name.

// fingerprintVersion names the serialization layout below. Bump it when
// Technology gains a field or the rendering changes, so digests from
// different layouts can never collide. v2: added VoltageV.
const fingerprintVersion = "art9-tech/v2"

// Fingerprint returns a stable content digest of the technology model:
// every delay, energy, area and memory field the analyzer and the
// power/timing estimators read, serialized in a fixed field order and
// hashed. Two Technology values with identical tables share a
// fingerprint; changing any single number — one cell's DelayPs, a
// leakage, a memory energy — changes it.
func (t *Technology) Fingerprint() string {
	h := sha256.New()
	io.WriteString(h, t.canonical())
	return hex.EncodeToString(h.Sum(nil))
}

// canonical renders the serialization behind Fingerprint: the version
// tag, the scalar fields in declaration order, then each present cell
// kind in numeric order with its four properties. Floats render with
// strconv's shortest round-trippable form, so the text is identical
// across platforms for identical values; absent cell kinds are omitted
// (the kind index prefixes each group, so absence cannot be confused
// with zero-valued presence).
func (t *Technology) canonical() string {
	var b strings.Builder
	f := func(v float64) {
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		b.WriteByte('|')
	}
	b.WriteString(fingerprintVersion)
	b.WriteByte('|')
	b.WriteString(t.Name)
	b.WriteByte('|')
	f(t.VoltageV)
	f(t.ClkQPs)
	f(t.SetupPs)
	f(t.Activity)
	f(t.StaticW)
	f(t.IOW)
	f(t.MemReadEnergyFJ)
	f(t.MemWriteEnergyFJ)
	f(t.MemLeakageNWPerTrit)
	for k := CellKind(0); k < NumCellKinds; k++ {
		p, ok := t.Props[k]
		if !ok {
			continue
		}
		b.WriteString(strconv.Itoa(int(k)))
		b.WriteByte(':')
		f(p.DelayPs)
		f(p.EnergyFJ)
		f(p.LeakNW)
		f(p.ALMs)
	}
	return b.String()
}

var modelDigest struct {
	once sync.Once
	hex  string
}

// ModelDigest returns one digest covering every built-in technology
// model — the package-level version of Fingerprint, memoized. It names
// the compiled-in state of the gate-level timing/energy tables;
// /v1/stats and BENCH reports surface it so operators can tell at a
// glance whether two fleet members were built from the same tables.
func ModelDigest() string {
	modelDigest.once.Do(func() {
		h := sha256.New()
		for _, t := range []*Technology{CNTFET32(), StratixVEmulation()} {
			io.WriteString(h, t.canonical())
			h.Write([]byte{0})
		}
		modelDigest.hex = hex.EncodeToString(h.Sum(nil))
	})
	return modelDigest.hex
}
