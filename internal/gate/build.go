package gate

import "fmt"

// BuildART9 constructs the structural netlist of the 5-stage pipelined
// ART-9 core of §IV-B / Fig. 4: TRF, pipeline registers, the TALU with its
// adder/logic/shift/compare units, the ID-stage branch datapath and the
// forwarding multiplexers. Memories (TIM/TDM) are not cells — the
// framework accounts for them separately ([11]) — but their interface
// registers are included.
//
// The netlist is the "synthesizable RTL design corresponding to the
// high-level architecture description" input of Fig. 3, in structural
// form; the analyzer derives Table IV/V from it plus a technology file.
func BuildART9() *Netlist {
	n := &Netlist{}

	// --- IF stage: PC register and incrementer.
	pcNextIn := n.inputWord("pc_next") // closed at the end (PC mux drives it)
	pc := n.flopWord("pc", pcNextIn)
	pcInc := n.rippleAdder("pc_inc", pc, n.inputWord("const1"), n.AddInput("cin0"))

	// Fetched instruction arrives from TIM through the IF/ID register.
	instIn := n.inputWord("tim_rdata")
	ifidInst := n.flopWord("ifid_inst", instIn)
	ifidPC := n.flopWord("ifid_pc", pc)

	// --- ID stage: decoder, register file, branch datapath, HDU.
	// Main decoder: the prefix-code opcode (major t8..t7, R/I minors
	// t6..t4) decodes through first-level TDECs on the five opcode
	// trits, 24 per-instruction product terms, and a control encoding
	// layer — the dominant control structure of a 24-instruction ISA.
	var decoded []int
	for i := 4; i <= 8; i++ {
		d := n.Add(TDEC, fmt.Sprintf("dec_l1[%d]", i), ifidInst[i])
		decoded = append(decoded, d)
	}
	var opTerms []int
	for i := 0; i < 24; i++ {
		g1 := n.Add(TNAND, fmt.Sprintf("dec_op%d_a", i),
			decoded[i%5], decoded[(i+1)%5])
		g2 := n.Add(TNAND, fmt.Sprintf("dec_op%d_b", i), g1, decoded[(i+2)%5])
		opTerms = append(opTerms, g2)
	}
	var ctrl []int
	for i := 0; i < 15; i++ {
		g := n.Add(TNOR, fmt.Sprintf("dec_l2[%d]", i),
			opTerms[i], opTerms[(i+7)%24])
		ctrl = append(ctrl, n.Add(STI, fmt.Sprintf("dec_inv[%d]", i), g))
	}
	// Stall/NOP insertion muxes on the control bundle (§IV-B: "the main
	// decoder generates a stall control signal... selecting the NOP").
	stallSel := n.Add(TNAND, "stall_sel", ctrl[6], ctrl[7])
	for i := 0; i < 15; i++ {
		ctrl[i] = n.Add(TMUX, fmt.Sprintf("nop_mux[%d]", i), stallSel, ctrl[i], ctrl[i], ctrl[i])
	}

	// TRF: nine 9-trit registers with two asynchronous read ports and
	// one synchronous write port (§IV-B). Each register has its own
	// write-address match (two TCMP + combine) gating a per-trit
	// recirculation mux.
	wdata := n.inputWord("trf_wdata") // driven by WB; closed below
	waddrLo, waddrHi := n.AddInput("waddr_lo"), n.AddInput("waddr_hi")
	regs := make([]word, 9)
	for r := range regs {
		mLo := n.Add(TCMP, fmt.Sprintf("trf_wm%d_lo", r), waddrLo, n.AddInput(fmt.Sprintf("wid%d_lo", r)))
		mHi := n.Add(TCMP, fmt.Sprintf("trf_wm%d_hi", r), waddrHi, n.AddInput(fmt.Sprintf("wid%d_hi", r)))
		wen := n.Add(TNAND, fmt.Sprintf("trf_wen%d", r), mLo, mHi)
		var d word
		for i := 0; i < 9; i++ {
			g := n.Add(TMUX, fmt.Sprintf("trf_wmux%d[%d]", r, i), wen, wdata[i], wdata[i], wdata[i])
			d[i] = g
		}
		regs[r] = n.flopWord(fmt.Sprintf("trf%d", r), d)
	}
	// Read ports: 9:1 selection per trit as a two-level TMUX tree
	// (3 first-level 3:1 muxes + 1 second-level), per port.
	readPort := func(port string, selLo, selHi int) word {
		var out word
		for i := 0; i < 9; i++ {
			m0 := n.Add(TMUX, fmt.Sprintf("trf_%s_m0[%d]", port, i), selLo, regs[0][i], regs[1][i], regs[2][i])
			m1 := n.Add(TMUX, fmt.Sprintf("trf_%s_m1[%d]", port, i), selLo, regs[3][i], regs[4][i], regs[5][i])
			m2 := n.Add(TMUX, fmt.Sprintf("trf_%s_m2[%d]", port, i), selLo, regs[6][i], regs[7][i], regs[8][i])
			out[i] = n.Add(TMUX, fmt.Sprintf("trf_%s_m3[%d]", port, i), selHi, m0, m1, m2)
		}
		return out
	}
	raSelLo, raSelHi := ifidInst[2], ifidInst[3]
	rbSelLo, rbSelHi := ifidInst[0], ifidInst[1]
	ra := readPort("ra", raSelLo, raSelHi)
	rb := readPort("rb", rbSelLo, rbSelHi)

	// Forwarding multiplexers into the ID operand read (§IV-B: "we
	// actively apply the forwarding multiplexers").
	exFwd := n.inputWord("ex_result_fwd") // closed below
	memFwd := n.inputWord("mem_result_fwd")
	fwdSelA := ctrl[0]
	fwdSelB := ctrl[1]
	opA := n.mux3("fwd_a", fwdSelA, ra, exFwd, memFwd)
	opB := n.mux3("fwd_b", fwdSelB, rb, exFwd, memFwd)

	// Immediate extraction: sign-free field wiring plus a gate per trit
	// for the field select.
	var imm word
	for i := 0; i < 9; i++ {
		imm[i] = n.Add(TMUX, fmt.Sprintf("imm_sel[%d]", i), ctrl[2], ifidInst[i%5], ifidInst[i%4], ifidInst[i%3])
	}

	// Branch datapath in ID: dedicated target adder + condition checker
	// (one-trit compare against the B field), feeding the PC mux. JALR
	// selects the register base instead of the PC (shared adder,
	// Table I's base-register addressing).
	brBase := n.mux2("br_base", ctrl[8], ifidPC, opB)
	brTarget := n.rippleAdder("br_add", brBase, imm, n.AddInput("brcin"))
	condTrit := n.Add(TCMP, "cond_chk", opB[0], ifidInst[6])
	brTaken := n.Add(TNAND, "br_taken", condTrit, ctrl[3])
	pcMux := n.mux3("pc_mux", brTaken, pcInc, brTarget, opB)
	_ = pcMux // drives pc_next (input stub closed conceptually)

	// Forwarding unit: compare EX/MEM destinations against the ID
	// sources to steer the forwarding muxes.
	memDst := []int{n.AddInput("memdst_lo"), n.AddInput("memdst_hi")}
	f1 := n.Add(TCMP, "fwd_c1", raSelLo, memDst[0])
	f2 := n.Add(TCMP, "fwd_c2", raSelHi, memDst[1])
	f3 := n.Add(TCMP, "fwd_c3", rbSelLo, memDst[0])
	f4 := n.Add(TCMP, "fwd_c4", rbSelHi, memDst[1])
	n.Add(TNAND, "fwd_ma", f1, f2)
	n.Add(TNAND, "fwd_mb", f3, f4)

	// HDU: compares the ID source indices with the EX destination
	// (load-use detection): a handful of compare/NAND cells.
	exDst := []int{n.AddInput("exdst_lo"), n.AddInput("exdst_hi")}
	h1 := n.Add(TCMP, "hdu_c1", raSelLo, exDst[0])
	h2 := n.Add(TCMP, "hdu_c2", raSelHi, exDst[1])
	h3 := n.Add(TCMP, "hdu_c3", rbSelLo, exDst[0])
	h4 := n.Add(TCMP, "hdu_c4", rbSelHi, exDst[1])
	h5 := n.Add(TNAND, "hdu_a", h1, h2)
	h6 := n.Add(TNAND, "hdu_b", h3, h4)
	h7 := n.Add(TNOR, "hdu_or", h5, h6)
	stall := n.Add(TNAND, "hdu_stall", h7, ctrl[4])
	_ = stall

	// ID/EX pipeline registers: operand A, operand B (imm-muxed),
	// store data, and control.
	bSel := n.mux2("b_or_imm", ctrl[5], opB, imm)
	idexA := n.flopWord("idex_a", opA)
	idexB := n.flopWord("idex_b", bSel)
	idexSD := n.flopWord("idex_sd", opB)
	var idexCtrl []int
	for i := 0; i < 5; i++ {
		idexCtrl = append(idexCtrl, n.Add(TDFF, fmt.Sprintf("idex_ctl[%d]", i), ctrl[5+i]))
	}

	// --- EX stage: the TALU.
	// Subtract path: STI on operand B + shared ripple adder.
	negB := n.unary(STI, "alu_negb", idexB)
	addSel := n.mux2("alu_bsel", idexCtrl[0], idexB, negB)
	sum := n.rippleAdder("alu_add", idexA, addSel, idexCtrl[0])
	// Logic unit.
	andW := n.binary(TAND, "alu_and", idexA, idexB)
	orW := n.binary(TOR, "alu_or", idexA, idexB)
	xorW := n.binary(TXOR, "alu_xor", idexA, idexB)
	ntiW := n.unary(NTI, "alu_nti", idexB)
	ptiW := n.unary(PTI, "alu_pti", idexB)
	// Shifter.
	shifted := n.barrelShifter("alu_sh", idexA, idexB[0], idexB[1], idexCtrl[1])
	// Comparator.
	cmp := n.comparator("alu_cmp", idexA, idexB)
	var cmpW word
	for i := range cmpW {
		cmpW[i] = cmp
	}
	// Immediate-construction datapaths: LUI places imm in the upper
	// trits, LI merges the low five trits into the kept upper four
	// (Table I), and the link path routes PC+1 for JAL/JALR.
	idexPC := n.flopWord("idex_pc", ifidPC)
	luiW := n.mux2("alu_lui", idexCtrl[1], idexB, idexA)
	liW := n.mux2("alu_li", idexCtrl[2], idexA, idexB)
	// Link value PC+1: a half-adder increment chain.
	var linkW word
	carry := idexCtrl[0]
	for i := 0; i < 9; i++ {
		linkW[i] = n.Add(THA, fmt.Sprintf("alu_link[%d]", i), idexPC[i], carry)
		carry = linkW[i]
	}

	// Result selection tree (two TMUX levels per trit).
	m1 := n.mux3("alu_m1", idexCtrl[2], sum, andW, orW)
	m2 := n.mux3("alu_m2", idexCtrl[2], xorW, shifted, cmpW)
	m3 := n.mux3("alu_m3", idexCtrl[3], ntiW, ptiW, negB)
	m4 := n.mux3("alu_m4", idexCtrl[3], luiW, liW, linkW)
	resultLo := n.mux3("alu_res_lo", idexCtrl[4], m1, m2, m3)
	result := n.mux2("alu_res", idexCtrl[4], resultLo, m4)

	// EX/MEM registers.
	exmemRes := n.flopWord("exmem_res", result)
	exmemSD := n.flopWord("exmem_sd", idexSD)
	var exmemCtrl []int
	for i := 0; i < 4; i++ {
		exmemCtrl = append(exmemCtrl, n.Add(TDFF, fmt.Sprintf("exmem_ctl[%d]", i), idexCtrl[i]))
	}
	_ = exmemSD

	// --- MEM stage: TDM interface (memory cells accounted separately);
	// load data mux.
	tdmData := n.inputWord("tdm_rdata")
	memOut := n.mux2("mem_sel", exmemCtrl[0], exmemRes, tdmData)

	// MEM/WB registers.
	memwbRes := n.flopWord("memwb_res", memOut)
	var memwbCtrl []int
	for i := 0; i < 3; i++ {
		memwbCtrl = append(memwbCtrl, n.Add(TDFF, fmt.Sprintf("memwb_ctl[%d]", i), exmemCtrl[i]))
	}
	_ = memwbCtrl

	// WB drives trf_wdata; write-back buffers model the write drivers.
	n.unary(TBUF, "wb_drv", memwbRes)

	return n
}
