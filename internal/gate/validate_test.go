package gate

import "testing"

func TestValidateART9(t *testing.T) {
	for _, build := range []struct {
		name string
		n    *Netlist
	}{
		{"base", BuildART9()},
		{"multiplier", BuildTernaryMultiplier()},
		{"with-multiplier", BuildART9WithMultiplier()},
	} {
		if err := build.n.Validate(); err != nil {
			t.Errorf("%s: %v", build.name, err)
		}
	}
}

func TestValidateCatchesBadArity(t *testing.T) {
	n := &Netlist{}
	a := n.AddInput("a")
	n.Cells = append(n.Cells, Cell{Kind: TFA, Name: "bad", Fanin: []int{a}})
	if err := n.Validate(); err == nil {
		t.Error("TFA with one fanin validated")
	}
}

func TestValidateCatchesNonTopological(t *testing.T) {
	n := &Netlist{}
	n.AddInput("a")
	// Hand-build a forward reference (Add would panic, so bypass it).
	n.Cells = append(n.Cells, Cell{Kind: STI, Name: "fwd", Fanin: []int{5}})
	if err := n.Validate(); err == nil {
		t.Error("forward fanin validated")
	}
}

func TestFanoutStats(t *testing.T) {
	n := BuildART9()
	st := n.Fanout()
	if st.Max <= 1 {
		t.Errorf("max fanout = %d; the TRF write bus should fan out widely", st.Max)
	}
	if st.Mean <= 0 {
		t.Error("mean fanout not computed")
	}
	// A handful of true outputs (PC mux, stall, WB drivers) drive no
	// in-netlist consumer; anything beyond that class signals dead logic.
	if st.Unused > 60 {
		t.Errorf("%d unused cells — dead logic in the builder?", st.Unused)
	}
}

func TestDepth(t *testing.T) {
	n := BuildART9()
	d := n.Depth()
	// The ripple adder alone is 9 levels; muxing and decode add more.
	if d < 10 || d > 40 {
		t.Errorf("combinational depth = %d, want 10..40", d)
	}
	// Depth correlates with the analyzer's critical path.
	an := Analyze(n, CNTFET32())
	if an.CriticalPathPs < float64(d)*30 {
		t.Errorf("critical path %.0f ps implausibly short for depth %d",
			an.CriticalPathPs, d)
	}
}

func TestMultiplierDepthAtLeastBase(t *testing.T) {
	// The unweighted level count can tie the base datapath (both are
	// long ripple structures); the *weighted* critical-path growth is
	// asserted in TestART9WithMultiplierCosts. Here: never shallower.
	base, ext := BuildART9().Depth(), BuildART9WithMultiplier().Depth()
	if ext < base {
		t.Errorf("multiplier shortened the netlist depth: %d vs %d", ext, base)
	}
}
