package gate

// Technology is the "property description of the design technology" input
// of Fig. 3: per-cell delay, switching energy and leakage. Values for the
// two shipped technologies are calibrated to the publications the paper
// cites — the 32 nm CNTFET ternary gate studies [7][8] and a Stratix-V
// class FPGA emulating ternary logic in binary-encoded form [27] — so the
// analyzer reproduces the operating points of Tables IV and V; see
// EXPERIMENTS.md for the calibration record.
type Technology struct {
	Name string
	// Props per cell kind.
	Props map[CellKind]CellProps
	// VoltageV is the nominal supply voltage the delay/energy tables are
	// calibrated at; Tables IV/V quote it per technology.
	VoltageV float64
	// ClkQPs and SetupPs are the sequential overheads added to every
	// register-to-register path.
	ClkQPs  float64
	SetupPs float64
	// Activity is the default switching-activity factor.
	Activity float64
	// StaticW is the device-level static power floor (FPGA core static
	// power; zero for native technologies where cell leakage is the
	// whole story).
	StaticW float64
	// IOW is the I/O + clocking overhead of the prototype board
	// (Table V includes the whole powered device).
	IOW float64
	// Memory terms for the ternary SRAM arrays [11] / block RAM.
	MemReadEnergyFJ     float64
	MemWriteEnergyFJ    float64
	MemLeakageNWPerTrit float64
}

// CellProps are the per-cell technology characteristics.
type CellProps struct {
	DelayPs  float64 // propagation delay
	EnergyFJ float64 // switching energy per transition
	LeakNW   float64 // static leakage
	// ALMs is the Stratix-V adaptive-logic-module cost of the
	// binary-encoded emulation of this cell (FPGA technologies only).
	ALMs float64
}

// CNTFET32 returns the 32 nm CNTFET ternary technology ([7][8]; the
// "simplified models without considering the parasitic capacitance" of
// §V-B). CNTFET ternary gates switch at sub-fJ to few-fJ energies with
// nA-class leakage, which is what makes the µW-class core of Table IV
// possible.
func CNTFET32() *Technology {
	return &Technology{
		Name: "CNTFET-32nm",
		Props: map[CellKind]CellProps{
			Input: {},
			STI:   {DelayPs: 45, EnergyFJ: 0.43, LeakNW: 6.2},
			NTI:   {DelayPs: 40, EnergyFJ: 0.39, LeakNW: 5.5},
			PTI:   {DelayPs: 40, EnergyFJ: 0.39, LeakNW: 5.5},
			TNAND: {DelayPs: 65, EnergyFJ: 0.70, LeakNW: 10.3},
			TNOR:  {DelayPs: 65, EnergyFJ: 0.70, LeakNW: 10.3},
			TAND:  {DelayPs: 85, EnergyFJ: 0.93, LeakNW: 13.8},
			TOR:   {DelayPs: 85, EnergyFJ: 0.93, LeakNW: 13.8},
			TXOR:  {DelayPs: 110, EnergyFJ: 1.24, LeakNW: 18.0},
			TMUX:  {DelayPs: 90, EnergyFJ: 1.01, LeakNW: 15.5},
			TDEC:  {DelayPs: 75, EnergyFJ: 0.85, LeakNW: 13.1},
			THA:   {DelayPs: 160, EnergyFJ: 2.0, LeakNW: 29.3},
			TFA:   {DelayPs: 230, EnergyFJ: 3.3, LeakNW: 44.8},
			TCMP:  {DelayPs: 95, EnergyFJ: 1.1, LeakNW: 16.6},
			TDFF:  {DelayPs: 0, EnergyFJ: 2.4, LeakNW: 32.8},
			TBUF:  {DelayPs: 35, EnergyFJ: 0.35, LeakNW: 4.8},
		},
		VoltageV:            0.9,
		ClkQPs:              120,
		SetupPs:             80,
		Activity:            0.08,
		MemReadEnergyFJ:     12,
		MemWriteEnergyFJ:    15,
		MemLeakageNWPerTrit: 0.4,
	}
}

// StratixVEmulation returns the FPGA technology of Table V: every ternary
// signal is a 2-bit binary pair [27], each cell a small LUT network with
// adders mapped onto the hard carry chains. Delays include average
// routing; StaticW/IOW cover the powered device beyond the datapath,
// matching how Table V quotes whole-board wattage.
func StratixVEmulation() *Technology {
	return &Technology{
		Name: "StratixV-binary-encoded",
		Props: map[CellKind]CellProps{
			Input: {},
			STI:   {DelayPs: 220, EnergyFJ: 16e3, LeakNW: 310, ALMs: 1},
			NTI:   {DelayPs: 220, EnergyFJ: 16e3, LeakNW: 310, ALMs: 1},
			PTI:   {DelayPs: 220, EnergyFJ: 16e3, LeakNW: 310, ALMs: 1},
			TNAND: {DelayPs: 240, EnergyFJ: 20e3, LeakNW: 340, ALMs: 1},
			TNOR:  {DelayPs: 240, EnergyFJ: 20e3, LeakNW: 340, ALMs: 1},
			TAND:  {DelayPs: 240, EnergyFJ: 22e3, LeakNW: 360, ALMs: 1.5},
			TOR:   {DelayPs: 240, EnergyFJ: 22e3, LeakNW: 360, ALMs: 1.5},
			TXOR:  {DelayPs: 260, EnergyFJ: 23e3, LeakNW: 380, ALMs: 1.5},
			TMUX:  {DelayPs: 250, EnergyFJ: 22e3, LeakNW: 360, ALMs: 1.5},
			TDEC:  {DelayPs: 240, EnergyFJ: 20e3, LeakNW: 340, ALMs: 1},
			THA:   {DelayPs: 300, EnergyFJ: 32e3, LeakNW: 520, ALMs: 2.2},
			TFA:   {DelayPs: 380, EnergyFJ: 47e3, LeakNW: 700, ALMs: 3},
			TCMP:  {DelayPs: 270, EnergyFJ: 25e3, LeakNW: 420, ALMs: 1.8},
			TDFF:  {DelayPs: 0, EnergyFJ: 14e3, LeakNW: 260, ALMs: 0},
			TBUF:  {DelayPs: 120, EnergyFJ: 7e3, LeakNW: 120, ALMs: 0.5},
		},
		VoltageV:            0.9,
		ClkQPs:              300,
		SetupPs:             200,
		Activity:            0.12,
		StaticW:             0.55,
		IOW:                 0.25,
		MemReadEnergyFJ:     45e3,
		MemWriteEnergyFJ:    55e3,
		MemLeakageNWPerTrit: 45,
	}
}

// props returns the cell properties, zero-valued for unknown kinds.
func (t *Technology) props(k CellKind) CellProps { return t.Props[k] }
