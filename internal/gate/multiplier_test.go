package gate

import "testing"

func TestMultiplierStructure(t *testing.T) {
	n := BuildTernaryMultiplier()
	h := n.Histogram()
	// Partial products for the architecturally visible low 9 trits:
	// row 0 has 9, rows 1..8 have 9−j → 45 TXOR + 45 STI.
	if h[TXOR] != 45 || h[STI] != 45 {
		t.Errorf("partial products: %d TXOR, %d STI; want 45/45", h[TXOR], h[STI])
	}
	// Reduction: rows j=1..8 contribute (9−j) adders, the first of each
	// row a half adder: Σ(9−j) = 36 total, 8 of them THA.
	if h[THA] != 8 {
		t.Errorf("half adders = %d, want 8", h[THA])
	}
	if h[TFA] != 28 {
		t.Errorf("full adders = %d, want 28", h[TFA])
	}
	// The multiplier alone costs a fifth of the whole ART-9 datapath
	// (574 gates) — the paper's reason to omit it.
	if g := n.GateCount(); g < 100 || g > 200 {
		t.Errorf("multiplier gate count = %d, want 100..200", g)
	}
}

func TestART9WithMultiplierCosts(t *testing.T) {
	base := Analyze(BuildART9(), CNTFET32())
	ext := Analyze(BuildART9WithMultiplier(), CNTFET32())

	// Gate count must grow by the multiplier's size (126 cells + the
	// result mux).
	if ext.Gates <= base.Gates+100 {
		t.Errorf("extended core %d gates vs base %d; multiplier missing?",
			ext.Gates, base.Gates)
	}
	// The array multiplier's carry path is longer than the TALU ripple
	// adder: cycle time must degrade.
	if ext.CriticalPathPs <= base.CriticalPathPs {
		t.Errorf("critical path did not grow: %f vs %f",
			ext.CriticalPathPs, base.CriticalPathPs)
	}
	// Power at the base core's fmax must grow too.
	tech := CNTFET32()
	if ext.PowerW(tech, base.FmaxMHz, 0, 0) <= base.PowerW(tech, base.FmaxMHz, 0, 0) {
		t.Error("power did not grow with the multiplier")
	}
}

func TestMultiplierDeterministic(t *testing.T) {
	a, b := BuildART9WithMultiplier(), BuildART9WithMultiplier()
	if len(a.Cells) != len(b.Cells) {
		t.Fatal("nondeterministic extended build")
	}
}

func TestMatchIndexed(t *testing.T) {
	cases := []struct {
		name, prefix string
		want         int
	}{
		{"idex_a[3]", "idex_a", 3},
		{"idex_a[0]", "idex_a", 0},
		{"idex_ab[3]", "idex_a", -1},
		{"idex_a", "idex_a", -1},
		{"other[2]", "idex_a", -1},
	}
	for _, c := range cases {
		if got := matchIndexed(c.name, c.prefix); got != c.want {
			t.Errorf("matchIndexed(%q,%q) = %d, want %d", c.name, c.prefix, got, c.want)
		}
	}
}
