package gate

import (
	"math"
	"testing"
)

func TestNetlistBasics(t *testing.T) {
	n := &Netlist{}
	a := n.AddInput("a")
	b := n.AddInput("b")
	g := n.Add(TAND, "g", a, b)
	f := n.Add(TDFF, "q", g)
	if n.GateCount() != 1 {
		t.Errorf("GateCount = %d, want 1 (inputs and flops excluded)", n.GateCount())
	}
	if n.FlopTrits() != 1 {
		t.Errorf("FlopTrits = %d, want 1", n.FlopTrits())
	}
	if f != 3 || g != 2 {
		t.Errorf("indices %d,%d unexpected", g, f)
	}
}

func TestAddPanicsOnForwardRef(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("forward fanin reference did not panic")
		}
	}()
	n := &Netlist{}
	n.Add(TAND, "bad", 5)
}

func TestBuildART9Structure(t *testing.T) {
	n := BuildART9()
	gates := n.GateCount()
	// Table IV reports 652 standard ternary gates for the datapath; our
	// structural build must land in the same class (±25%).
	if gates < 489 || gates > 815 {
		t.Errorf("ART-9 gate count = %d, want ≈652 (±25%%)", gates)
	}
	// Register budget: TRF (81) + pipeline/PC registers; Table V's 339
	// binary-encoded bits imply ≈170 flop trits.
	flops := n.FlopTrits()
	if flops < 140 || flops > 210 {
		t.Errorf("flop trits = %d, want ≈170", flops)
	}
	// The TRF alone is 81 trits.
	if flops < 81 {
		t.Error("fewer flops than the TRF alone")
	}
	// Essential structures must exist.
	h := n.Histogram()
	if h[TFA] < 18 {
		t.Errorf("only %d TFA cells; adder + PC/branch adders expected ≥ 27", h[TFA])
	}
	if h[TMUX] == 0 || h[TCMP] == 0 || h[TDEC] == 0 {
		t.Error("missing mux/comparator/decoder structures")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, b := BuildART9(), BuildART9()
	if len(a.Cells) != len(b.Cells) {
		t.Fatal("nondeterministic build")
	}
	for i := range a.Cells {
		if a.Cells[i].Kind != b.Cells[i].Kind || a.Cells[i].Name != b.Cells[i].Name {
			t.Fatalf("cell %d differs between builds", i)
		}
	}
}

func TestAnalyzeCNTFET(t *testing.T) {
	n := BuildART9()
	an := Analyze(n, CNTFET32())
	// Table IV context: the CNTFET core runs near 300 MHz (0.42
	// DMIPS/MHz × ~311 MHz / 42.7 µW ≈ 3.06e6 DMIPS/W).
	if an.FmaxMHz < 200 || an.FmaxMHz > 450 {
		t.Errorf("CNTFET fmax = %.1f MHz, want ≈300", an.FmaxMHz)
	}
	// Datapath power at fmax should be tens of µW.
	p := an.PowerW(CNTFET32(), an.FmaxMHz, 0, 0)
	if p < 20e-6 || p > 80e-6 {
		t.Errorf("CNTFET power = %.2f µW, want ≈42.7", p*1e6)
	}
	if an.CriticalPathPs <= 0 {
		t.Error("no critical path found")
	}
}

func TestAnalyzeFPGA(t *testing.T) {
	n := BuildART9()
	tech := StratixVEmulation()
	an := Analyze(n, tech)
	// Table V: 150 MHz operating point — fmax must comfortably exceed it.
	if an.FmaxMHz < 150 {
		t.Errorf("FPGA fmax = %.1f MHz, must support the 150 MHz operating point", an.FmaxMHz)
	}
	if an.FmaxMHz > 400 {
		t.Errorf("FPGA fmax = %.1f MHz implausibly fast", an.FmaxMHz)
	}
	// Table V: 803 ALMs, 339 registers (same class).
	if an.ALMs < 600 || an.ALMs > 1000 {
		t.Errorf("ALMs = %d, want ≈803", an.ALMs)
	}
	if an.Registers < 280 || an.Registers > 420 {
		t.Errorf("registers = %d, want ≈339", an.Registers)
	}
}

func TestCriticalPathDominatedByAdder(t *testing.T) {
	// The ripple adder must dominate the cycle: removing TFA delay
	// should shorten the critical path substantially.
	n := BuildART9()
	tech := CNTFET32()
	base := Analyze(n, tech).CriticalPathPs

	fast := CNTFET32()
	p := fast.Props[TFA]
	p.DelayPs = 1
	fast.Props[TFA] = p
	quick := Analyze(n, fast).CriticalPathPs
	if quick >= base {
		t.Errorf("TFA speedup did not shorten critical path: %f vs %f", quick, base)
	}
	if base-quick < 0.3*base {
		t.Errorf("adder contributes only %.0f of %.0f ps; ripple chain not modelled", base-quick, base)
	}
}

func TestPowerScalesWithFrequency(t *testing.T) {
	n := BuildART9()
	tech := CNTFET32()
	an := Analyze(n, tech)
	p100 := an.PowerW(tech, 100, 0, 0)
	p300 := an.PowerW(tech, 300, 0, 0)
	if p300 <= p100 {
		t.Error("power does not increase with frequency")
	}
	// Dynamic part must scale linearly.
	dyn100 := p100 - an.LeakageW
	dyn300 := p300 - an.LeakageW
	if math.Abs(dyn300/dyn100-3) > 1e-9 {
		t.Errorf("dynamic power ratio = %f, want 3", dyn300/dyn100)
	}
}

func TestMemoryPowerAccounted(t *testing.T) {
	n := BuildART9()
	tech := StratixVEmulation()
	an := Analyze(n, tech)
	without := an.PowerW(tech, 150, 0, 0)
	with := an.PowerW(tech, 150, 2*256*9, 1.2)
	if with <= without {
		t.Error("memory terms not included in power")
	}
}

func TestHistogramComplete(t *testing.T) {
	n := BuildART9()
	h := n.Histogram()
	total := 0
	for _, c := range h {
		total += c
	}
	if total != len(n.Cells) {
		t.Errorf("histogram sums to %d, want %d", total, len(n.Cells))
	}
}

func TestAnalysisString(t *testing.T) {
	an := Analyze(BuildART9(), CNTFET32())
	s := an.String()
	for _, want := range []string{"ternary gates", "critical path", "TFA"} {
		if !containsStr(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(len(s) > 0 && indexOf(s, sub) >= 0))
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
