package gate

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Analysis is the gate-level analyzer's report for one (netlist,
// technology) pair: the inputs the performance estimator combines with
// cycle counts into Tables IV and V.
type Analysis struct {
	Tech      string
	Gates     int // combinational standard ternary cells (Table IV)
	FlopTrits int // one-trit storage elements
	Histogram map[CellKind]int

	CriticalPathPs float64
	FmaxMHz        float64

	LeakageW float64 // static power of the datapath cells
	// DynCoeffWPerMHz is the dynamic power per MHz at the technology's
	// activity factor; total power = Leakage + Dyn*MHz + memory terms.
	DynCoeffWPerMHz float64

	// FPGA-specific resources (zero for native technologies).
	ALMs      int
	Registers int // binary-encoded register bits (2 per flop trit)
}

// Analyze runs static timing and power analysis over the netlist.
func Analyze(n *Netlist, tech *Technology) *Analysis {
	a := &Analysis{
		Tech:      tech.Name,
		Gates:     n.GateCount(),
		FlopTrits: n.FlopTrits(),
		Histogram: n.Histogram(),
	}

	// Longest register-to-register (or input-to-register) path:
	// arrival[i] is the worst-case arrival time at cell i's output.
	// Flops and inputs start paths; a flop's D pin ends them.
	arrival := make([]float64, len(n.Cells))
	worstEnd := 0.0
	for i, c := range n.Cells {
		switch c.Kind {
		case Input:
			arrival[i] = 0
		case TDFF:
			// Path ends here: record fanin arrival + setup.
			for _, f := range c.Fanin {
				if end := arrival[f] + tech.SetupPs; end > worstEnd {
					worstEnd = end
				}
			}
			// And a new path starts at the flop output.
			arrival[i] = tech.ClkQPs
		default:
			worst := 0.0
			for _, f := range c.Fanin {
				if arrival[f] > worst {
					worst = arrival[f]
				}
			}
			arrival[i] = worst + tech.props(c.Kind).DelayPs
		}
	}
	// Combinational outputs that feed no flop still bound the cycle
	// (they reach the memories' address pins): include them.
	for i, c := range n.Cells {
		if c.Kind != TDFF && c.Kind != Input {
			if end := arrival[i] + tech.SetupPs; end > worstEnd {
				worstEnd = end
			}
		}
	}
	a.CriticalPathPs = worstEnd
	if worstEnd > 0 {
		a.FmaxMHz = 1e6 / worstEnd // ps → MHz
	}

	// Power: leakage is frequency-independent; dynamic scales with f.
	var leakNW, energyFJ float64
	for _, c := range n.Cells {
		p := tech.props(c.Kind)
		leakNW += p.LeakNW
		energyFJ += p.EnergyFJ
	}
	a.LeakageW = leakNW * 1e-9
	// P_dyn = α · ΣE · f  → (fJ · MHz) = 1e-15 J · 1e6 /s = 1e-9 W.
	a.DynCoeffWPerMHz = tech.Activity * energyFJ * 1e-9

	// FPGA resources.
	var alms float64
	for _, c := range n.Cells {
		alms += tech.props(c.Kind).ALMs
	}
	a.ALMs = int(math.Ceil(alms))
	a.Registers = a.FlopTrits * 2

	return a
}

// PowerW returns the total power at freqMHz: cell leakage + device static
// + I/O + dynamic, plus memory power for the given memory size (trits) and
// access rate (word accesses per cycle).
func (a *Analysis) PowerW(tech *Technology, freqMHz float64, memTrits int, memAccessPerCycle float64) float64 {
	p := a.LeakageW + tech.StaticW + tech.IOW + a.DynCoeffWPerMHz*freqMHz
	p += float64(memTrits) * tech.MemLeakageNWPerTrit * 1e-9
	p += memAccessPerCycle * tech.MemReadEnergyFJ * freqMHz * 1e-9
	return p
}

// String renders a human-readable summary.
func (a *Analysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "technology      %s\n", a.Tech)
	fmt.Fprintf(&b, "ternary gates   %d\n", a.Gates)
	fmt.Fprintf(&b, "flop trits      %d\n", a.FlopTrits)
	fmt.Fprintf(&b, "critical path   %.0f ps (fmax %.1f MHz)\n", a.CriticalPathPs, a.FmaxMHz)
	fmt.Fprintf(&b, "leakage         %.2f µW\n", a.LeakageW*1e6)
	if a.ALMs > 0 {
		fmt.Fprintf(&b, "ALMs            %d\n", a.ALMs)
		fmt.Fprintf(&b, "registers       %d\n", a.Registers)
	}
	kinds := make([]CellKind, 0, len(a.Histogram))
	for k := range a.Histogram {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		if k == Input {
			continue
		}
		fmt.Fprintf(&b, "  %-6s %4d\n", k, a.Histogram[k])
	}
	return b.String()
}
