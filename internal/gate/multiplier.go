package gate

import "fmt"

// The paper's ART-9 deliberately ships without a hardware multiplier
// (Table II) and synthesises MUL in software; its references include the
// ternary multiplier of Kang et al. [10]. This file builds that multiplier
// as a netlist extension so the evaluation framework can quantify the
// design decision: what a hardware multiplier would cost the ternary core
// in gates, cycle time and power (the BenchmarkAblationHWMultiplier
// harness reports the resulting trade-off).

// BuildTernaryMultiplier constructs a 9×9-trit array multiplier ([10]):
// 81 partial-product cells (trit product = STI∘TXOR) reduced by a ripple
// adder row per multiplier trit. Returns the netlist; the low 9 trits of
// the product feed the result bus.
func BuildTernaryMultiplier() *Netlist {
	n := &Netlist{}
	a := n.inputWord("mul_a")
	b := n.inputWord("mul_b")
	buildMultiplierInto(n, a, b)
	return n
}

// buildMultiplierInto appends the multiplier structure to an existing
// netlist and returns the product word (low 9 trits).
func buildMultiplierInto(n *Netlist, a, b word) word {
	// Row 0: partial products of b[0].
	acc := make([]int, 9)
	for i := 0; i < 9; i++ {
		x := n.Add(TXOR, fmt.Sprintf("pp0_x[%d]", i), a[i], b[0])
		acc[i] = n.Add(STI, fmt.Sprintf("pp0[%d]", i), x)
	}
	// Rows 1..8: partial products shifted left j positions, added into
	// the running sum with a ripple adder (only the low 9 trits are
	// architecturally visible, so each row adds 9−j full adders).
	for j := 1; j < 9; j++ {
		carry := -1
		for i := j; i < 9; i++ {
			x := n.Add(TXOR, fmt.Sprintf("pp%d_x[%d]", j, i), a[i-j], b[j])
			pp := n.Add(STI, fmt.Sprintf("pp%d[%d]", j, i), x)
			if carry < 0 {
				s := n.Add(THA, fmt.Sprintf("mrow%d_ha[%d]", j, i), acc[i], pp)
				acc[i], carry = s, s
			} else {
				s := n.Add(TFA, fmt.Sprintf("mrow%d_fa[%d]", j, i), acc[i], pp, carry)
				acc[i], carry = s, s
			}
		}
	}
	var out word
	copy(out[:], acc)
	return out
}

// BuildART9WithMultiplier constructs the ART-9 core extended with the
// hardware multiplier of [10] muxed into the EX result path — the design
// point the paper decided against.
func BuildART9WithMultiplier() *Netlist {
	n := BuildART9()
	// Operand buses for the multiplier: reuse the ID/EX operand
	// registers by name lookup (the builder appended them in order).
	var opA, opB word
	foundA, foundB := 0, 0
	for idx, c := range n.Cells {
		if c.Kind == TDFF {
			if k := matchIndexed(c.Name, "idex_a"); k >= 0 {
				opA[k] = idx
				foundA++
			}
			if k := matchIndexed(c.Name, "idex_b"); k >= 0 {
				opB[k] = idx
				foundB++
			}
		}
	}
	if foundA != 9 || foundB != 9 {
		panic("gate: ID/EX operand registers not found")
	}
	prod := buildMultiplierInto(n, opA, opB)
	// Mux the product into the writeback path.
	sel := n.AddInput("mul_sel")
	for i := 0; i < 9; i++ {
		n.Add(TMUX, fmt.Sprintf("mul_res[%d]", i), sel, prod[i], prod[i], prod[i])
	}
	return n
}

// matchIndexed parses names of the form "prefix[k]" and returns k, or −1.
func matchIndexed(name, prefix string) int {
	var k int
	if _, err := fmt.Sscanf(name, prefix+"[%d]", &k); err != nil {
		return -1
	}
	if len(name) != len(prefix)+len(fmt.Sprintf("[%d]", k)) {
		return -1
	}
	return k
}
