// Package gate implements the gate-level analyzer of the hardware-level
// evaluation framework (§III-B, Fig. 3 of the paper): a ternary
// standard-cell library, a structural netlist of the ART-9 datapath, a
// topological critical-path/power analyzer, and the "property description
// of the design technology" inputs — the 32 nm CNTFET ternary model of
// [7][8] and the binary-encoded FPGA emulation of Table V.
package gate

import "fmt"

// CellKind identifies a ternary standard cell ([7]–[10]).
type CellKind uint8

const (
	// Input is a pseudo-cell marking a primary input (zero delay).
	Input CellKind = iota
	// STI, NTI, PTI are the three ternary inverters of Fig. 1.
	STI
	NTI
	PTI
	// TNAND and TNOR are the primitive two-input gates of [7].
	TNAND
	TNOR
	// TAND, TOR, TXOR are the composed two-input logic gates.
	TAND
	TOR
	TXOR
	// TMUX is a 3:1 one-trit multiplexer with a trit select.
	TMUX
	// TDEC is a 1-trit to 3-way one-hot decoder.
	TDEC
	// THA and TFA are the ternary half/full adder cells ([9]).
	THA
	TFA
	// TCMP is a one-trit comparator slice (equality + order).
	TCMP
	// TDFF is a one-trit flip-flop ([11]-style storage).
	TDFF
	// TBUF is a buffer/driver.
	TBUF

	NumCellKinds
)

var kindNames = [NumCellKinds]string{
	"IN", "STI", "NTI", "PTI", "TNAND", "TNOR", "TAND", "TOR", "TXOR",
	"TMUX", "TDEC", "THA", "TFA", "TCMP", "TDFF", "TBUF",
}

// String returns the cell-library name of k.
func (k CellKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("cell(%d)", uint8(k))
}

// IsSequential reports whether the cell breaks timing paths.
func (k CellKind) IsSequential() bool { return k == TDFF }

// Cell is one instantiated cell.
type Cell struct {
	Kind  CellKind
	Name  string
	Fanin []int // indices of driving cells
}

// Netlist is a structural ternary netlist. Cells are appended in
// topological order (fanins always precede their consumers), which the
// builder guarantees and the analyzer exploits.
type Netlist struct {
	Cells []Cell
}

// Add appends a cell and returns its index.
func (n *Netlist) Add(kind CellKind, name string, fanin ...int) int {
	for _, f := range fanin {
		if f < 0 || f >= len(n.Cells) {
			panic(fmt.Sprintf("gate: cell %q fanin %d out of range", name, f))
		}
	}
	n.Cells = append(n.Cells, Cell{Kind: kind, Name: name, Fanin: fanin})
	return len(n.Cells) - 1
}

// AddInput appends a primary input.
func (n *Netlist) AddInput(name string) int { return n.Add(Input, name) }

// Count returns the number of cells of kind k.
func (n *Netlist) Count(k CellKind) int {
	c := 0
	for _, cell := range n.Cells {
		if cell.Kind == k {
			c++
		}
	}
	return c
}

// GateCount returns the number of combinational standard cells — the
// "total gates" metric of Table IV (inputs and flip-flops excluded).
func (n *Netlist) GateCount() int {
	c := 0
	for _, cell := range n.Cells {
		if cell.Kind != Input && cell.Kind != TDFF {
			c++
		}
	}
	return c
}

// FlopTrits returns the number of one-trit storage elements.
func (n *Netlist) FlopTrits() int { return n.Count(TDFF) }

// Histogram returns the per-kind cell counts.
func (n *Netlist) Histogram() map[CellKind]int {
	h := map[CellKind]int{}
	for _, c := range n.Cells {
		h[c.Kind]++
	}
	return h
}

// --- word-level helpers used by the builder ---

// word is a 9-trit bus: nine cell indices.
type word [9]int

// inputWord creates a 9-trit primary input bus.
func (n *Netlist) inputWord(name string) word {
	var w word
	for i := range w {
		w[i] = n.AddInput(fmt.Sprintf("%s[%d]", name, i))
	}
	return w
}

// flopWord creates a 9-trit register whose D inputs are d.
func (n *Netlist) flopWord(name string, d word) word {
	var w word
	for i := range w {
		w[i] = n.Add(TDFF, fmt.Sprintf("%s[%d]", name, i), d[i])
	}
	return w
}

// unary applies a one-input cell trit-wise.
func (n *Netlist) unary(kind CellKind, name string, a word) word {
	var w word
	for i := range w {
		w[i] = n.Add(kind, fmt.Sprintf("%s[%d]", name, i), a[i])
	}
	return w
}

// binary applies a two-input cell trit-wise.
func (n *Netlist) binary(kind CellKind, name string, a, b word) word {
	var w word
	for i := range w {
		w[i] = n.Add(kind, fmt.Sprintf("%s[%d]", name, i), a[i], b[i])
	}
	return w
}

// rippleAdder builds a 9-trit carry-ripple adder from TFA cells, the
// structure of [9]; returns the sum word (carry chain is internal).
func (n *Netlist) rippleAdder(name string, a, b word, cin int) word {
	var sum word
	carry := cin
	for i := 0; i < 9; i++ {
		s := n.Add(TFA, fmt.Sprintf("%s_fa[%d]", name, i), a[i], b[i], carry)
		// Model the carry as originating from the same cell: the next
		// stage depends on this TFA.
		sum[i] = s
		carry = s
	}
	return sum
}

// mux3 builds a trit-wise 3:1 multiplexer: sel routes one of x, y, z.
func (n *Netlist) mux3(name string, sel int, x, y, z word) word {
	var w word
	for i := range w {
		w[i] = n.Add(TMUX, fmt.Sprintf("%s[%d]", name, i), sel, x[i], y[i], z[i])
	}
	return w
}

// mux2 builds a 2-way selection (third leg tied to the first).
func (n *Netlist) mux2(name string, sel int, x, y word) word {
	return n.mux3(name, sel, x, y, x)
}

// comparator builds the 9-trit magnitude comparator: a TCMP slice per
// trit rippling from the most significant trit down (the COMP datapath).
func (n *Netlist) comparator(name string, a, b word) int {
	prev := -1
	for i := 8; i >= 0; i-- {
		if prev < 0 {
			prev = n.Add(TCMP, fmt.Sprintf("%s[%d]", name, i), a[i], b[i])
		} else {
			prev = n.Add(TCMP, fmt.Sprintf("%s[%d]", name, i), a[i], b[i], prev)
		}
	}
	return prev
}

// barrelShifter builds a two-stage ternary barrel shifter (shift by 0..8
// = stage for ×3^0/×3^1/×3^2 then a stage for ×3^0/×3^3/×3^6), with a
// direction stage, matching the SR/SL datapath.
func (n *Netlist) barrelShifter(name string, a word, amtLo, amtHi, dir int) word {
	// Stage 1: select among shift-by-0/1/2 (wiring permutations of a).
	shift := func(w word, by int) word {
		var out word
		for i := range out {
			src := i - by
			if src >= 0 && src < 9 {
				out[i] = w[src]
			} else {
				out[i] = w[i] // boundary trits zero-filled; keep dependency local
			}
		}
		return out
	}
	s1 := n.mux3(name+"_s1", amtLo, a, shift(a, 1), shift(a, 2))
	s2 := n.mux3(name+"_s2", amtHi, s1, shift(s1, 3), shift(s1, 6))
	// Direction: right shifts reuse the same network on the reversed
	// bus; modelled as a final 2:1 stage.
	rev := s2
	for i := range rev {
		rev[i] = s2[8-i]
	}
	return n.mux2(name+"_dir", dir, s2, rev)
}
