package gate

import (
	"regexp"
	"testing"
)

// TestFingerprintStable pins determinism and shape: the digest is a
// 64-hex sha256, identical across calls and across independently
// constructed copies of the same model.
func TestFingerprintStable(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func() *Technology
	}{
		{"cntfet32", CNTFET32},
		{"stratixv", StratixVEmulation},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a, b := tc.build().Fingerprint(), tc.build().Fingerprint()
			if a != b {
				t.Fatalf("fingerprint unstable: %s != %s", a, b)
			}
			if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(a) {
				t.Fatalf("fingerprint %q is not a sha256 hex digest", a)
			}
		})
	}
	if CNTFET32().Fingerprint() == StratixVEmulation().Fingerprint() {
		t.Fatal("distinct technologies share a fingerprint")
	}
}

// TestFingerprintFieldSensitivity flips each field class once and
// asserts the digest moves — the property the result cache's
// invalidation contract rests on.
func TestFingerprintFieldSensitivity(t *testing.T) {
	base := CNTFET32().Fingerprint()
	for _, tc := range []struct {
		name string
		edit func(*Technology)
	}{
		{"name", func(t *Technology) { t.Name = "CNTFET-32nm-edited" }},
		{"cell-delay", func(t *Technology) {
			p := t.Props[TFA]
			p.DelayPs++
			t.Props[TFA] = p
		}},
		{"cell-energy", func(t *Technology) {
			p := t.Props[TXOR]
			p.EnergyFJ += 0.01
			t.Props[TXOR] = p
		}},
		{"cell-leakage", func(t *Technology) {
			p := t.Props[TNAND]
			p.LeakNW += 0.1
			t.Props[TNAND] = p
		}},
		{"cell-alms", func(t *Technology) {
			p := t.Props[STI]
			p.ALMs += 0.5
			t.Props[STI] = p
		}},
		{"voltage", func(t *Technology) { t.VoltageV += 0.1 }},
		{"clkq", func(t *Technology) { t.ClkQPs++ }},
		{"setup", func(t *Technology) { t.SetupPs++ }},
		{"activity", func(t *Technology) { t.Activity += 0.01 }},
		{"static-w", func(t *Technology) { t.StaticW += 0.01 }},
		{"io-w", func(t *Technology) { t.IOW += 0.01 }},
		{"mem-read", func(t *Technology) { t.MemReadEnergyFJ++ }},
		{"mem-write", func(t *Technology) { t.MemWriteEnergyFJ++ }},
		{"mem-leak", func(t *Technology) { t.MemLeakageNWPerTrit += 0.1 }},
		{"drop-cell", func(t *Technology) { delete(t.Props, TBUF) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			edited := CNTFET32()
			// Copy the props map so the edit cannot alias another case.
			props := make(map[CellKind]CellProps, len(edited.Props))
			for k, v := range edited.Props {
				props[k] = v
			}
			edited.Props = props
			tc.edit(edited)
			if got := edited.Fingerprint(); got == base {
				t.Fatalf("editing %s did not change the fingerprint", tc.name)
			}
		})
	}
}

// TestFingerprintDistinguishesAbsentFromZero pins the presence
// encoding: a cell kind with all-zero properties is not the same model
// as one missing that kind entirely.
func TestFingerprintDistinguishesAbsentFromZero(t *testing.T) {
	absent := CNTFET32()
	delete(absent.Props, TBUF)
	zero := CNTFET32()
	zero.Props[TBUF] = CellProps{}
	if absent.Fingerprint() == zero.Fingerprint() {
		t.Fatal("absent cell kind and zero-valued cell kind share a fingerprint")
	}
}

// TestModelDigest pins the package digest: stable, hex, memoized, and
// derived from the built-in models (so it differs from any single
// model's own fingerprint).
func TestModelDigest(t *testing.T) {
	d := ModelDigest()
	if d != ModelDigest() {
		t.Fatal("ModelDigest unstable across calls")
	}
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(d) {
		t.Fatalf("ModelDigest %q is not a sha256 hex digest", d)
	}
	if d == CNTFET32().Fingerprint() || d == StratixVEmulation().Fingerprint() {
		t.Fatal("ModelDigest collides with a single model fingerprint")
	}
}
