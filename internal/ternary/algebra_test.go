package ternary

import (
	"testing"
	"testing/quick"
)

// Algebraic property suite over 9-trit words: the laws the TALU datapath
// silently relies on.

type pairArg struct{ A, B int16 }
type tripleArg struct{ A, B, C int16 }

func TestMulDistributesOverAdd(t *testing.T) {
	f := func(p tripleArg) bool {
		// Keep products in range so wrap-around does not mask errors…
		a, b, c := int(p.A)%60, int(p.B)%60, int(p.C)%60
		lhs := Mul(FromInt(a), AddWord(FromInt(b), FromInt(c)))
		rhs := AddWord(Mul(FromInt(a), FromInt(b)), Mul(FromInt(a), FromInt(c)))
		return lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAssociativeModuloWrap(t *testing.T) {
	// …but even under wrap, multiplication is associative modulo 3^9
	// (the ring structure survives truncation).
	f := func(p tripleArg) bool {
		a, b, c := FromInt(int(p.A)), FromInt(int(p.B)), FromInt(int(p.C))
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestShiftComposition(t *testing.T) {
	f := func(v int16, a, b uint8) bool {
		n, m := int(a%5), int(b%5)
		w := FromInt(int(v))
		return ShiftLeft(ShiftLeft(w, n), m) == ShiftLeft(w, n+m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShiftRightLeftInverseOnMultiples(t *testing.T) {
	// For values divisible by 3^n, right shift undoes left shift and
	// vice versa.
	f := func(v int16, a uint8) bool {
		n := int(a % 5)
		w := ShiftLeft(FromInt(int(v)%100), n) // low trits now zero
		return ShiftLeft(ShiftRight(w, n), n) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogicLattice(t *testing.T) {
	// (Word, And, Or) is a distributive lattice.
	f := func(p tripleArg) bool {
		a, b, c := FromInt(int(p.A)), FromInt(int(p.B)), FromInt(int(p.C))
		if And(a, b) != And(b, a) || Or(a, b) != Or(b, a) {
			return false
		}
		if And(a, And(b, c)) != And(And(a, b), c) {
			return false
		}
		if Or(a, Or(b, c)) != Or(Or(a, b), c) {
			return false
		}
		// Absorption.
		if And(a, Or(a, b)) != a || Or(a, And(a, b)) != a {
			return false
		}
		// Distributivity.
		return And(a, Or(b, c)) == Or(And(a, b), And(a, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXorProperties(t *testing.T) {
	f := func(p pairArg) bool {
		a, b := FromInt(int(p.A)), FromInt(int(p.B))
		// Commutative; Xor(a, -a) restricted per-trit: -(t·-t) = t².
		if Xor(a, b) != Xor(b, a) {
			return false
		}
		// Xor with zero annihilates (0 absorbs through the product).
		return Xor(a, Word{}) == Word{}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompIsTotalOrder(t *testing.T) {
	f := func(p tripleArg) bool {
		a, b, c := wrap(int(p.A)), wrap(int(p.B)), wrap(int(p.C))
		wa, wb, wc := FromInt(a), FromInt(b), FromInt(c)
		// Antisymmetry.
		if Cmp(wa, wb) != -Cmp(wb, wa) {
			return false
		}
		// Transitivity of <.
		if Cmp(wa, wb) == Neg && Cmp(wb, wc) == Neg && Cmp(wa, wc) != Neg {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeMorganOnWords(t *testing.T) {
	f := func(p pairArg) bool {
		a, b := FromInt(int(p.A)), FromInt(int(p.B))
		return Sti(And(a, b)) == Or(Sti(a), Sti(b)) &&
			Sti(Or(a, b)) == And(Sti(a), Sti(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHalfAdderComposesToFullAdder(t *testing.T) {
	// The gate-level identity behind the THA/TFA cells: a full adder is
	// two half adders plus a carry merge (carries never both non-zero
	// with the same sign overflowing).
	for _, a := range []Trit{Neg, Zero, Pos} {
		for _, b := range []Trit{Neg, Zero, Pos} {
			for _, c := range []Trit{Neg, Zero, Pos} {
				s1, c1 := HalfAdd(a, b)
				s2, c2 := HalfAdd(s1, c)
				sum, carry := FullAdd(a, b, c)
				mergedCarry, overflow := HalfAdd(c1, c2)
				if overflow != Zero {
					t.Fatalf("carry merge overflowed for %v %v %v", a, b, c)
				}
				if s2 != sum || mergedCarry != carry {
					t.Fatalf("HA∘HA ≠ FA for %v %v %v", a, b, c)
				}
			}
		}
	}
}
