// Package ternary implements the balanced ternary number system used by the
// ART-9 processor: trits, 9-trit words, the logic operations of Fig. 1 of the
// paper (STI/NTI/PTI, AND, OR, XOR) and the arithmetic operations of §II-B
// (addition, subtraction, negation, comparison, shifts, multiplication and
// division), plus parsing, formatting and the binary-encoded ternary form
// used by the FPGA emulation path (Frieder & Luk [27]).
//
// A balanced trit takes a value from {−1, 0, +1}; an n-trit word X encodes
// the integer Σ x_k·3^k. The same word read "unsigned" is that value taken
// modulo 3^n, which is how TIM/TDM addresses and register indices are
// interpreted.
package ternary

import "fmt"

// Trit is a single balanced ternary digit: −1, 0 or +1.
//
// The zero value is the trit 0, so Trit (and aggregates of it) are useful
// without initialization.
type Trit int8

// The three trit values.
const (
	Neg  Trit = -1
	Zero Trit = 0
	Pos  Trit = +1
)

// Valid reports whether t is one of −1, 0, +1.
func (t Trit) Valid() bool { return t >= Neg && t <= Pos }

// String renders the trit in the conventional balanced notation:
// "T" for −1, "0" for 0, "1" for +1.
func (t Trit) String() string {
	switch t {
	case Neg:
		return "T"
	case Zero:
		return "0"
	case Pos:
		return "1"
	}
	return fmt.Sprintf("Trit(%d)", int8(t))
}

// TritFromRune parses a single balanced-trit character. It accepts the
// canonical 'T'/'0'/'1' plus the common variants 't', '-' and '+'.
func TritFromRune(r rune) (Trit, error) {
	switch r {
	case 'T', 't', '-':
		return Neg, nil
	case '0':
		return Zero, nil
	case '1', '+':
		return Pos, nil
	}
	return 0, fmt.Errorf("ternary: invalid trit character %q", r)
}

// Sti is the standard ternary inverter: x ↦ −x.
// Truth table (Fig. 1): −1↦+1, 0↦0, +1↦−1.
func (t Trit) Sti() Trit { return -t }

// Nti is the negative ternary inverter.
// Truth table (Fig. 1): −1↦+1, 0↦−1, +1↦−1.
func (t Trit) Nti() Trit {
	if t == Neg {
		return Pos
	}
	return Neg
}

// Pti is the positive ternary inverter.
// Truth table (Fig. 1): −1↦+1, 0↦+1, +1↦−1.
func (t Trit) Pti() Trit {
	if t == Pos {
		return Neg
	}
	return Pos
}

// And is the balanced ternary conjunction: min(a, b) (Fig. 1).
func (t Trit) And(u Trit) Trit {
	if t < u {
		return t
	}
	return u
}

// Or is the balanced ternary disjunction: max(a, b) (Fig. 1).
func (t Trit) Or(u Trit) Trit {
	if t > u {
		return t
	}
	return u
}

// Xor is the balanced ternary exclusive-or −(a·b): the unique odd extension
// of binary XOR under the mapping false↦−1, true↦+1 (Fig. 1 family; see
// DESIGN.md §3). Any operand 0 yields 0.
func (t Trit) Xor(u Trit) Trit { return -(t * u) }

// Mul is the trit product, the building block of the ternary multiplier
// ([10], §II-B). It equals −Xor.
func (t Trit) Mul(u Trit) Trit { return t * u }

// Cmp returns the sign of t−u as a trit: +1 if t>u, 0 if equal, −1 if t<u.
func (t Trit) Cmp(u Trit) Trit {
	switch {
	case t > u:
		return Pos
	case t < u:
		return Neg
	}
	return Zero
}

// HalfAdd adds two trits returning the balanced sum trit and carry trit,
// exactly as a ternary half adder cell computes them ([9], §II-B).
func HalfAdd(a, b Trit) (sum, carry Trit) {
	return splitBalanced(int(a) + int(b))
}

// FullAdd adds three trits (two operands plus carry-in) returning the
// balanced sum and carry, as a ternary full adder cell ([9], §II-B).
// The carry of a balanced full adder is always in {−1, 0, +1}.
func FullAdd(a, b, cin Trit) (sum, carry Trit) {
	return splitBalanced(int(a) + int(b) + int(cin))
}

// splitBalanced decomposes s ∈ [−3, 3] into sum + 3·carry with both balanced.
func splitBalanced(s int) (sum, carry Trit) {
	switch {
	case s > 1:
		return Trit(s - 3), Pos
	case s < -1:
		return Trit(s + 3), Neg
	}
	return Trit(s), Zero
}

// SignTrit returns the sign of an integer as a trit.
func SignTrit(v int) Trit {
	switch {
	case v > 0:
		return Pos
	case v < 0:
		return Neg
	}
	return Zero
}
