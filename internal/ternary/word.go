package ternary

import (
	"fmt"
	"strings"
)

// Architectural widths of the ART-9 core (§IV-A of the paper).
const (
	// WordTrits is the trit width of an ART-9 machine word; instructions
	// and data share this width so TIM and TDM have a regular structure.
	WordTrits = 9

	// WordStates is the number of distinct 9-trit words, 3^9.
	WordStates = 19683

	// MaxInt and MinInt bound the balanced interpretation of a word:
	// ±(3^9 − 1)/2.
	MaxInt = (WordStates - 1) / 2
	MinInt = -MaxInt
)

// Word is a 9-trit balanced ternary machine word. Index 0 is the least
// significant trit (LST), index 8 the most significant. The zero value is
// the word representing 0.
type Word [WordTrits]Trit

// FromInt returns the word encoding v. Values outside [MinInt, MaxInt] wrap
// modulo 3^9, mirroring how a fixed-width ternary datapath overflows.
func FromInt(v int) Word {
	v %= WordStates
	if v > MaxInt {
		v -= WordStates
	} else if v < MinInt {
		v += WordStates
	}
	var w Word
	for i := 0; i < WordTrits; i++ {
		w[i], v = nextTrit(v)
	}
	return w
}

// nextTrit splits v into d + 3·v' with d balanced, returning (d, v').
func nextTrit(v int) (Trit, int) {
	m := v % 3
	if m < 0 {
		m += 3
	}
	switch m {
	case 1:
		return Pos, (v - 1) / 3
	case 2:
		return Neg, (v + 1) / 3
	}
	return Zero, v / 3
}

// Int returns the balanced (signed) integer value of w, in [MinInt, MaxInt].
func (w Word) Int() int {
	v, p := 0, 1
	for i := 0; i < WordTrits; i++ {
		v += int(w[i]) * p
		p *= 3
	}
	return v
}

// UIndex returns the unsigned interpretation of w used for addressing TIM
// and TDM (§II-A): the balanced value taken modulo 3^9 into [0, 3^9).
func (w Word) UIndex() int {
	v := w.Int()
	if v < 0 {
		v += WordStates
	}
	return v
}

// Valid reports whether every trit of w is a legal balanced trit. Words
// built via FromInt or trit-wise operations are always valid; Valid guards
// data arriving from external encodings.
func (w Word) Valid() bool {
	for _, t := range w {
		if !t.Valid() {
			return false
		}
	}
	return true
}

// IsZero reports whether w encodes 0.
func (w Word) IsZero() bool { return w == Word{} }

// Sign returns the sign of the balanced value of w as a trit: the most
// significant nonzero trit.
func (w Word) Sign() Trit {
	for i := WordTrits - 1; i >= 0; i-- {
		if w[i] != Zero {
			return w[i]
		}
	}
	return Zero
}

// Trit returns the trit at position i (0 = LST). It panics if i is out of
// range, matching slice semantics.
func (w Word) Trit(i int) Trit { return w[i] }

// WithTrit returns a copy of w with trit i replaced by t.
func (w Word) WithTrit(i int, t Trit) Word {
	w[i] = t
	return w
}

// Field extracts the balanced value of the trit subfield w[lo..hi]
// (inclusive), as used by the instruction decoder: e.g. a 2-trit register
// field yields a value in [−4, +4]. It panics if the range is invalid.
func (w Word) Field(lo, hi int) int {
	if lo < 0 || hi >= WordTrits || lo > hi {
		panic(fmt.Sprintf("ternary: invalid field [%d..%d]", lo, hi))
	}
	v, p := 0, 1
	for i := lo; i <= hi; i++ {
		v += int(w[i]) * p
		p *= 3
	}
	return v
}

// SetField returns a copy of w with the subfield [lo..hi] set to the
// balanced encoding of v. It panics if v does not fit in the field, so the
// instruction encoder surfaces out-of-range operands early.
func (w Word) SetField(lo, hi, v int) Word {
	if lo < 0 || hi >= WordTrits || lo > hi {
		panic(fmt.Sprintf("ternary: invalid field [%d..%d]", lo, hi))
	}
	n := hi - lo + 1
	if !FitsTrits(v, n) {
		panic(fmt.Sprintf("ternary: value %d does not fit in %d trits", v, n))
	}
	for i := lo; i <= hi; i++ {
		w[i], v = nextTrit(v)
	}
	return w
}

// FitsTrits reports whether v is representable in n balanced trits,
// i.e. |v| ≤ (3^n − 1)/2.
func FitsTrits(v, n int) bool {
	max := (pow3(n) - 1) / 2
	return v >= -max && v <= max
}

// MaxForTrits returns the largest magnitude representable in n balanced
// trits, (3^n − 1)/2.
func MaxForTrits(n int) int { return (pow3(n) - 1) / 2 }

func pow3(n int) int {
	p := 1
	for ; n > 0; n-- {
		p *= 3
	}
	return p
}

// String renders w most-significant trit first in T/0/1 notation, e.g. the
// word for −5 is "0000000T1".
func (w Word) String() string {
	var b strings.Builder
	for i := WordTrits - 1; i >= 0; i-- {
		b.WriteString(w[i].String())
	}
	return b.String()
}

// ParseWord parses a word in the notation emitted by String: up to 9 trit
// characters, most significant first, optionally prefixed with "0t".
// Shorter strings fill the upper positions with zeros (balanced words carry
// sign in the digits, so no sign extension is involved).
func ParseWord(s string) (Word, error) {
	runes := []rune(strings.TrimPrefix(s, "0t"))
	if len(runes) == 0 || len(runes) > WordTrits {
		return Word{}, fmt.Errorf("ternary: word literal %q must have 1..%d trits", s, WordTrits)
	}
	var w Word
	for i, r := range runes {
		t, err := TritFromRune(r)
		if err != nil {
			return Word{}, fmt.Errorf("ternary: word literal %q: %v", s, err)
		}
		w[len(runes)-1-i] = t
	}
	return w, nil
}

// Trits returns the trits of w as a slice, LST first. The slice is a copy;
// mutating it does not affect w.
func (w Word) Trits() []Trit {
	s := make([]Trit, WordTrits)
	copy(s, w[:])
	return s
}

// CountNonZero returns the number of nonzero trits, a proxy for switching
// activity used by the power model.
func (w Word) CountNonZero() int {
	n := 0
	for _, t := range w {
		if t != Zero {
			n++
		}
	}
	return n
}
