package ternary

// Arithmetic on 9-trit balanced words (§II-B of the paper). All operations
// are implemented trit-serially, the way the TALU's ripple structure
// computes them, so the simulator exercises the same digit-level behaviour
// as the gate-level netlist in internal/gate. Results wrap modulo 3^9.

// Add returns a+b and the carry out of the most significant trit position.
// A nonzero carry indicates balanced overflow (the true sum falls outside
// [MinInt, MaxInt]).
func Add(a, b Word) (sum Word, carry Trit) {
	c := Zero
	for i := 0; i < WordTrits; i++ {
		sum[i], c = FullAdd(a[i], b[i], c)
	}
	return sum, c
}

// AddWord returns a+b, discarding the carry (the datapath behaviour of the
// ADD instruction).
func AddWord(a, b Word) Word {
	s, _ := Add(a, b)
	return s
}

// Neg returns −a. In balanced ternary negation is a trit-wise STI — the
// "conversion-based negation property" ([8], [14]) that makes subtraction
// share the adder.
func NegWord(a Word) Word {
	for i := range a {
		a[i] = -a[i]
	}
	return a
}

// Sub returns a−b and the carry out, computed as a + STI(b) exactly like
// the SUB instruction's datapath.
func Sub(a, b Word) (diff Word, carry Trit) {
	return Add(a, NegWord(b))
}

// SubWord returns a−b, discarding the carry.
func SubWord(a, b Word) Word {
	d, _ := Sub(a, b)
	return d
}

// Cmp compares the balanced values of a and b and returns the sign of a−b
// as a trit. This is the compare() function of the COMP instruction
// (Table I): +1 if a>b, 0 if a=b, −1 if a<b.
func Cmp(a, b Word) Trit {
	for i := WordTrits - 1; i >= 0; i-- {
		if a[i] != b[i] {
			// In balanced representation the most significant
			// differing trit decides the order directly.
			return a[i].Cmp(b[i])
		}
	}
	return Zero
}

// CompWord materialises the COMP result word: sign(a−b) in the least
// significant trit, all other trits zero.
func CompWord(a, b Word) Word {
	var w Word
	w[0] = Cmp(a, b)
	return w
}

// ShiftAmount maps a k-trit balanced subfield value to a shift distance in
// [0, 9): the unsigned reading (§II-A) of the field modulo the word width.
// SR/SL take the 2-trit field TRF[Tb][1:0], range [−4, 4] → 0..8.
func ShiftAmount(v int) int {
	a := v % WordTrits
	if a < 0 {
		a += WordTrits
	}
	return a
}

// ShiftLeft shifts a left by n trit positions, filling with zeros
// (multiplication by 3^n modulo 3^9).
func ShiftLeft(a Word, n int) Word {
	if n <= 0 {
		return a
	}
	if n >= WordTrits {
		return Word{}
	}
	var w Word
	for i := WordTrits - 1; i >= n; i-- {
		w[i] = a[i-n]
	}
	return w
}

// ShiftRight shifts a right by n trit positions, filling with zeros.
// For balanced words this is division by 3^n with round-to-nearest
// (ties toward zero), the natural ternary arithmetic shift: there is no
// separate "arithmetic" variant because balanced words carry their sign in
// the digits themselves.
func ShiftRight(a Word, n int) Word {
	if n <= 0 {
		return a
	}
	if n >= WordTrits {
		return Word{}
	}
	var w Word
	for i := 0; i < WordTrits-n; i++ {
		w[i] = a[i+n]
	}
	return w
}

// Mul returns the low 9 trits of a×b. The ART-9 core has no multiply
// instruction (Table II: multiplier ✗); this helper backs the software
// multiply primitive emitted by the compiling framework and the reference
// ternary multiplier of [10] in the gate-level library.
func Mul(a, b Word) Word {
	var acc Word
	for i := 0; i < WordTrits; i++ {
		switch b[i] {
		case Pos:
			acc = AddWord(acc, ShiftLeft(a, i))
		case Neg:
			acc = SubWord(acc, ShiftLeft(a, i))
		}
	}
	return acc
}

// DivMod returns the quotient and remainder of the balanced values of a
// and b with truncation toward zero (matching RISC-V DIV/REM semantics so
// translated programs agree). It panics on division by zero, as the
// software-divide primitive traps that case before reaching here.
func DivMod(a, b Word) (q, r Word) {
	bv := b.Int()
	if bv == 0 {
		panic("ternary: division by zero")
	}
	av := a.Int()
	qv := av / bv
	rv := av % bv
	return FromInt(qv), FromInt(rv)
}

// AbsWord returns |a| (wrapping at the balanced boundary like NegWord).
func AbsWord(a Word) Word {
	if a.Sign() == Neg {
		return NegWord(a)
	}
	return a
}

// MinWord and MaxWord return the smaller/larger of a, b by balanced value.
func MinWord(a, b Word) Word {
	if Cmp(a, b) == Pos {
		return b
	}
	return a
}

func MaxWord(a, b Word) Word {
	if Cmp(a, b) == Neg {
		return b
	}
	return a
}

// Inc returns a+1; Dec returns a−1. These are the PC-increment datapaths.
func Inc(a Word) Word { return AddWord(a, FromInt(1)) }
func Dec(a Word) Word { return SubWord(a, FromInt(1)) }
