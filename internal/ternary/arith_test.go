package ternary

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// wrap reduces an integer into the balanced 9-trit range the way the
// datapath wraps.
func wrap(v int) int {
	v %= WordStates
	if v > MaxInt {
		v -= WordStates
	} else if v < MinInt {
		v += WordStates
	}
	return v
}

func TestAddMatchesIntegers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a := rng.Intn(WordStates) - MaxInt
		b := rng.Intn(WordStates) - MaxInt
		got := AddWord(FromInt(a), FromInt(b)).Int()
		if want := wrap(a + b); got != want {
			t.Fatalf("Add(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
}

func TestAddCarryFlagsOverflow(t *testing.T) {
	_, c := Add(FromInt(MaxInt), FromInt(1))
	if c != Pos {
		t.Errorf("MaxInt+1 carry = %v, want +1", c)
	}
	_, c = Add(FromInt(MinInt), FromInt(-1))
	if c != Neg {
		t.Errorf("MinInt-1 carry = %v, want -1", c)
	}
	_, c = Add(FromInt(100), FromInt(-100))
	if c != Zero {
		t.Errorf("100-100 carry = %v, want 0", c)
	}
}

func TestSubNegProperties(t *testing.T) {
	type pair struct{ A, B int16 }
	f := func(p pair) bool {
		a, b := int(p.A), int(p.B)
		wa, wb := FromInt(a), FromInt(b)
		if SubWord(wa, wb).Int() != wrap(a-b) {
			return false
		}
		if NegWord(wa).Int() != wrap(-a) {
			return false
		}
		// a − b == a + (−b)
		return SubWord(wa, wb) == AddWord(wa, NegWord(wb))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRingLaws(t *testing.T) {
	type triple struct{ A, B, C int16 }
	f := func(p triple) bool {
		a, b, c := FromInt(int(p.A)), FromInt(int(p.B)), FromInt(int(p.C))
		// Commutativity and associativity of addition.
		if AddWord(a, b) != AddWord(b, a) {
			return false
		}
		if AddWord(AddWord(a, b), c) != AddWord(a, AddWord(b, c)) {
			return false
		}
		// Identity and inverse.
		if AddWord(a, Word{}) != a {
			return false
		}
		return AddWord(a, NegWord(a)) == Word{}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNegIsTritwiseSti(t *testing.T) {
	f := func(v int16) bool {
		w := FromInt(int(v))
		return NegWord(w) == Sti(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCmp(t *testing.T) {
	cases := []struct {
		a, b int
		want Trit
	}{
		{0, 0, Zero}, {1, 0, Pos}, {0, 1, Neg},
		{MaxInt, MinInt, Pos}, {MinInt, MaxInt, Neg},
		{-5, -5, Zero}, {-5, -6, Pos}, {100, 250, Neg},
	}
	for _, c := range cases {
		if got := Cmp(FromInt(c.a), FromInt(c.b)); got != c.want {
			t.Errorf("Cmp(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCmpMatchesIntegerOrder(t *testing.T) {
	type pair struct{ A, B int16 }
	f := func(p pair) bool {
		a, b := wrap(int(p.A)), wrap(int(p.B))
		return Cmp(FromInt(a), FromInt(b)) == SignTrit(a-b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompWord(t *testing.T) {
	w := CompWord(FromInt(7), FromInt(3))
	if w[0] != Pos {
		t.Errorf("CompWord LST = %v, want +1", w[0])
	}
	for i := 1; i < WordTrits; i++ {
		if w[i] != Zero {
			t.Errorf("CompWord trit %d = %v, want 0", i, w[i])
		}
	}
	if CompWord(FromInt(3), FromInt(3))[0] != Zero {
		t.Error("CompWord equal inputs LST != 0")
	}
	if CompWord(FromInt(-9), FromInt(3))[0] != Neg {
		t.Error("CompWord less-than LST != -1")
	}
}

func TestShiftLeftIsMulByPow3(t *testing.T) {
	for n := 0; n <= 9; n++ {
		for _, v := range []int{0, 1, -1, 5, -13, 100, 9841} {
			got := ShiftLeft(FromInt(v), n).Int()
			want := wrap(v * pow3(min(n, 9)))
			if n >= 9 {
				want = 0
			}
			if got != want {
				t.Errorf("ShiftLeft(%d,%d) = %d, want %d", v, n, got, want)
			}
		}
	}
}

func TestShiftRightDropsTrits(t *testing.T) {
	// Shifting right n then examining reconstruction: w = sr(w,n)*3^n + low.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		v := rng.Intn(WordStates) - MaxInt
		n := rng.Intn(10)
		w := FromInt(v)
		hi := ShiftRight(w, n).Int()
		low := 0
		for k := 0; k < min(n, 9); k++ {
			low += int(w[k]) * pow3(k)
		}
		if n >= 9 && hi != 0 {
			t.Fatalf("ShiftRight(%d,%d) = %d, want 0", v, n, hi)
		}
		if n < 9 && hi*pow3(n)+low != v {
			t.Fatalf("ShiftRight(%d,%d): %d*3^%d+%d != %d", v, n, hi, n, low, v)
		}
	}
}

func TestShiftAmount(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 4: 4, -1: 8, -4: 5, 8: 8, 9: 0, -9: 0}
	for in, want := range cases {
		if got := ShiftAmount(in); got != want {
			t.Errorf("ShiftAmount(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestMulMatchesIntegers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		a := rng.Intn(199) - 99
		b := rng.Intn(199) - 99
		got := Mul(FromInt(a), FromInt(b)).Int()
		if want := wrap(a * b); got != want {
			t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
}

func TestMulProperties(t *testing.T) {
	type pair struct{ A, B int8 }
	f := func(p pair) bool {
		a, b := FromInt(int(p.A)), FromInt(int(p.B))
		if Mul(a, b) != Mul(b, a) {
			return false
		}
		if Mul(a, FromInt(1)) != a {
			return false
		}
		if Mul(a, FromInt(-1)) != NegWord(a) {
			return false
		}
		return Mul(a, Word{}) == (Word{})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivMod(t *testing.T) {
	cases := []struct{ a, b, q, r int }{
		{7, 2, 3, 1}, {-7, 2, -3, -1}, {7, -2, -3, 1}, {-7, -2, 3, -1},
		{9841, 3, 3280, 1}, {0, 5, 0, 0}, {4, 5, 0, 4},
	}
	for _, c := range cases {
		q, r := DivMod(FromInt(c.a), FromInt(c.b))
		if q.Int() != c.q || r.Int() != c.r {
			t.Errorf("DivMod(%d,%d) = %d,%d; want %d,%d",
				c.a, c.b, q.Int(), r.Int(), c.q, c.r)
		}
	}
}

func TestDivModInvariant(t *testing.T) {
	type pair struct{ A, B int16 }
	f := func(p pair) bool {
		a, b := int(p.A), int(p.B)
		if b == 0 {
			return true
		}
		a, b = wrap(a), wrap(b)
		if b == 0 {
			return true
		}
		q, r := DivMod(FromInt(a), FromInt(b))
		return q.Int()*b+r.Int() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("DivMod by zero did not panic")
		}
	}()
	DivMod(FromInt(1), Word{})
}

func TestAbsMinMaxIncDec(t *testing.T) {
	if AbsWord(FromInt(-7)).Int() != 7 || AbsWord(FromInt(7)).Int() != 7 {
		t.Error("AbsWord wrong")
	}
	if MinWord(FromInt(3), FromInt(-3)).Int() != -3 {
		t.Error("MinWord wrong")
	}
	if MaxWord(FromInt(3), FromInt(-3)).Int() != 3 {
		t.Error("MaxWord wrong")
	}
	if Inc(FromInt(41)).Int() != 42 || Dec(FromInt(43)).Int() != 42 {
		t.Error("Inc/Dec wrong")
	}
	if Inc(FromInt(MaxInt)).Int() != MinInt {
		t.Error("Inc(MaxInt) did not wrap to MinInt")
	}
}
