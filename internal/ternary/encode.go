package ternary

import "fmt"

// Binary-encoded ternary (Frieder & Luk [27]): the FPGA verification
// platform of §V-B emulates every ternary signal with two binary wires.
// Encoding: 0 → 00, +1 → 01, −1 → 11; the code 10 is unused and rejected on
// decode. A 9-trit word therefore occupies 18 bits, which is where the
// "9,216 RAM bits" of Table V come from (2 memories × 256 words × 18 bits).

// BitsPerTrit is the binary-encoded width of one trit.
const BitsPerTrit = 2

// WordBits is the binary-encoded width of a 9-trit word.
const WordBits = WordTrits * BitsPerTrit

// EncodeTrit returns the 2-bit binary encoding of t.
func EncodeTrit(t Trit) uint8 {
	switch t {
	case Pos:
		return 0b01
	case Neg:
		return 0b11
	}
	return 0b00
}

// DecodeTrit decodes a 2-bit binary-encoded trit. The unused code 10
// returns an error, modelling the invalid-state detection of the emulation
// wrapper.
func DecodeTrit(b uint8) (Trit, error) {
	switch b & 0b11 {
	case 0b00:
		return Zero, nil
	case 0b01:
		return Pos, nil
	case 0b11:
		return Neg, nil
	}
	return 0, fmt.Errorf("ternary: invalid binary-encoded trit 0b10")
}

// EncodeWord packs w into an 18-bit binary-encoded value, trit 0 in the low
// bits.
func EncodeWord(w Word) uint32 {
	var v uint32
	for i := WordTrits - 1; i >= 0; i-- {
		v = v<<BitsPerTrit | uint32(EncodeTrit(w[i]))
	}
	return v
}

// DecodeWord unpacks an 18-bit binary-encoded word produced by EncodeWord.
func DecodeWord(v uint32) (Word, error) {
	var w Word
	for i := 0; i < WordTrits; i++ {
		t, err := DecodeTrit(uint8(v >> (BitsPerTrit * i)))
		if err != nil {
			return Word{}, fmt.Errorf("trit %d: %v", i, err)
		}
		w[i] = t
	}
	if v>>WordBits != 0 {
		return Word{}, fmt.Errorf("ternary: binary-encoded word has bits above %d", WordBits)
	}
	return w, nil
}
