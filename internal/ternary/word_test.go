package ternary

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromIntRoundTrip(t *testing.T) {
	for v := MinInt; v <= MaxInt; v += 97 {
		if got := FromInt(v).Int(); got != v {
			t.Fatalf("FromInt(%d).Int() = %d", v, got)
		}
	}
	// Boundaries.
	for _, v := range []int{MinInt, -1, 0, 1, MaxInt} {
		if got := FromInt(v).Int(); got != v {
			t.Errorf("FromInt(%d).Int() = %d", v, got)
		}
	}
}

func TestFromIntWraps(t *testing.T) {
	cases := []struct{ in, want int }{
		{MaxInt + 1, MinInt},
		{MinInt - 1, MaxInt},
		{WordStates, 0},
		{-WordStates, 0},
		{WordStates + 5, 5},
		{2*WordStates + 7, 7},
		{-(WordStates + 5), -5},
	}
	for _, c := range cases {
		if got := FromInt(c.in).Int(); got != c.want {
			t.Errorf("FromInt(%d).Int() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestFromIntPropertyRoundTrip(t *testing.T) {
	f := func(v int16) bool {
		x := int(v) % (MaxInt + 1) // always in balanced range
		return FromInt(x).Int() == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUIndex(t *testing.T) {
	cases := []struct{ v, want int }{
		{0, 0}, {1, 1}, {-1, WordStates - 1},
		{MaxInt, MaxInt}, {MinInt, MaxInt + 1},
	}
	for _, c := range cases {
		if got := FromInt(c.v).UIndex(); got != c.want {
			t.Errorf("FromInt(%d).UIndex() = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestUIndexCongruentMod3n(t *testing.T) {
	f := func(v int16) bool {
		x := int(v)
		u := FromInt(x).UIndex()
		d := (u - x) % WordStates
		return u >= 0 && u < WordStates && d == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWordStringParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		w := FromInt(rng.Intn(WordStates) - MaxInt)
		got, err := ParseWord(w.String())
		if err != nil {
			t.Fatalf("ParseWord(%q): %v", w.String(), err)
		}
		if got != w {
			t.Fatalf("round trip %q: got %v", w.String(), got)
		}
	}
}

func TestParseWordForms(t *testing.T) {
	cases := []struct {
		in   string
		want int
		ok   bool
	}{
		{"0", 0, true},
		{"1", 1, true},
		{"T", -1, true},
		{"1T", 2, true},
		{"0t1T", 2, true},
		{"+-", 2, true},
		{"111111111", MaxInt, true},
		{"TTTTTTTTT", MinInt, true},
		{"", 0, false},
		{"1111111111", 0, false}, // 10 trits
		{"12T", 0, false},
	}
	for _, c := range cases {
		w, err := ParseWord(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseWord(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && w.Int() != c.want {
			t.Errorf("ParseWord(%q) = %d, want %d", c.in, w.Int(), c.want)
		}
	}
}

func TestSign(t *testing.T) {
	cases := map[int]Trit{0: Zero, 5: Pos, -5: Neg, MaxInt: Pos, MinInt: Neg, 1: Pos, -1: Neg}
	for v, want := range cases {
		if got := FromInt(v).Sign(); got != want {
			t.Errorf("FromInt(%d).Sign() = %v, want %v", v, got, want)
		}
	}
}

func TestFieldSetField(t *testing.T) {
	w := FromInt(0)
	w = w.SetField(2, 3, -4) // 2-trit register-style field
	if got := w.Field(2, 3); got != -4 {
		t.Errorf("Field(2,3) = %d, want -4", got)
	}
	// Neighbouring trits untouched.
	if w[0] != Zero || w[1] != Zero || w[4] != Zero {
		t.Errorf("SetField disturbed neighbours: %v", w)
	}
	// Full range of a 2-trit field.
	for v := -4; v <= 4; v++ {
		u := Word{}.SetField(5, 6, v)
		if got := u.Field(5, 6); got != v {
			t.Errorf("2-trit field round trip %d -> %d", v, got)
		}
	}
	// 5-trit immediate field (LI/JAL).
	for v := -121; v <= 121; v += 7 {
		u := Word{}.SetField(0, 4, v)
		if got := u.Field(0, 4); got != v {
			t.Errorf("5-trit field round trip %d -> %d", v, got)
		}
	}
}

func TestSetFieldPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("out-of-range value", func() { Word{}.SetField(0, 1, 5) })
	mustPanic("inverted range", func() { Word{}.SetField(3, 1, 0) })
	mustPanic("hi out of word", func() { Word{}.SetField(0, 9, 0) })
	mustPanic("Field inverted", func() { Word{}.Field(4, 2) })
}

func TestFitsTrits(t *testing.T) {
	cases := []struct {
		v, n int
		want bool
	}{
		{0, 1, true}, {1, 1, true}, {-1, 1, true}, {2, 1, false},
		{4, 2, true}, {-4, 2, true}, {5, 2, false},
		{13, 3, true}, {14, 3, false},
		{40, 4, true}, {41, 4, false},
		{121, 5, true}, {122, 5, false},
		{MaxInt, 9, true}, {MaxInt + 1, 9, false},
	}
	for _, c := range cases {
		if got := FitsTrits(c.v, c.n); got != c.want {
			t.Errorf("FitsTrits(%d,%d) = %v, want %v", c.v, c.n, got, c.want)
		}
	}
}

func TestMaxForTrits(t *testing.T) {
	want := map[int]int{1: 1, 2: 4, 3: 13, 4: 40, 5: 121, 9: MaxInt}
	for n, m := range want {
		if got := MaxForTrits(n); got != m {
			t.Errorf("MaxForTrits(%d) = %d, want %d", n, got, m)
		}
	}
}

func TestCountNonZero(t *testing.T) {
	if got := FromInt(0).CountNonZero(); got != 0 {
		t.Errorf("CountNonZero(0) = %d", got)
	}
	if got := FromInt(MaxInt).CountNonZero(); got != 9 {
		t.Errorf("CountNonZero(MaxInt) = %d, want 9", got)
	}
	w, _ := ParseWord("10T")
	if got := w.CountNonZero(); got != 2 {
		t.Errorf("CountNonZero(10T) = %d, want 2", got)
	}
}

func TestTritsCopy(t *testing.T) {
	w := FromInt(5)
	s := w.Trits()
	s[0] = Neg
	if w != FromInt(5) {
		t.Error("Trits() returned aliasing slice")
	}
}

func TestWithTrit(t *testing.T) {
	w := Word{}.WithTrit(0, Pos).WithTrit(8, Neg)
	if w[0] != Pos || w[8] != Neg || w.Int() != 1-pow3(8) {
		t.Errorf("WithTrit composition wrong: %v", w)
	}
}

func TestValid(t *testing.T) {
	if !(Word{}).Valid() {
		t.Error("zero word invalid")
	}
	w := Word{}
	w[3] = 2
	if w.Valid() {
		t.Error("word with trit=2 reported valid")
	}
}
