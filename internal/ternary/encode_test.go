package ternary

import (
	"testing"
	"testing/quick"
)

func TestEncodeTritValues(t *testing.T) {
	cases := map[Trit]uint8{Zero: 0b00, Pos: 0b01, Neg: 0b11}
	for tr, want := range cases {
		if got := EncodeTrit(tr); got != want {
			t.Errorf("EncodeTrit(%v) = %02b, want %02b", tr, got, want)
		}
	}
}

func TestDecodeTritRejectsInvalid(t *testing.T) {
	if _, err := DecodeTrit(0b10); err == nil {
		t.Error("DecodeTrit(0b10) succeeded, want error")
	}
	for _, b := range []uint8{0b00, 0b01, 0b11} {
		if _, err := DecodeTrit(b); err != nil {
			t.Errorf("DecodeTrit(%02b): %v", b, err)
		}
	}
}

func TestEncodeWordRoundTrip(t *testing.T) {
	f := func(v int16) bool {
		w := FromInt(int(v))
		got, err := DecodeWord(EncodeWord(w))
		return err == nil && got == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeWordWidth(t *testing.T) {
	// Any encoded word must fit in 18 bits — the Table V RAM accounting
	// depends on it.
	for _, v := range []int{0, 1, -1, MaxInt, MinInt} {
		if e := EncodeWord(FromInt(v)); e>>WordBits != 0 {
			t.Errorf("EncodeWord(%d) = %b exceeds %d bits", v, e, WordBits)
		}
	}
}

func TestDecodeWordRejectsBadTrit(t *testing.T) {
	// Plant the invalid 10 code at trit 4.
	v := EncodeWord(FromInt(123))
	v |= 0b10 << (BitsPerTrit * 4)
	v &^= 0b01 << (BitsPerTrit * 4)
	if _, err := DecodeWord(v); err == nil {
		t.Error("DecodeWord with invalid trit code succeeded")
	}
}

func TestDecodeWordRejectsHighBits(t *testing.T) {
	if _, err := DecodeWord(1 << WordBits); err == nil {
		t.Error("DecodeWord with bits above 18 succeeded")
	}
}
