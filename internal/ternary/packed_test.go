package ternary

import (
	"math/rand"
	"testing"
)

// edgeInts are the values every differential case always covers, alongside
// the random sweep: bounds, wrap points, and small magnitudes.
var edgeInts = []int{
	0, 1, -1, 2, -2, 3, -3, 40, -40, 121, -121, 242, -242,
	MaxInt, MinInt, MaxInt - 1, MinInt + 1, 9840, -9840, 6561, -6561,
}

// randWords returns n deterministic random words plus the edge set.
func randWords(n int) []Word {
	rng := rand.New(rand.NewSource(9))
	ws := make([]Word, 0, n+len(edgeInts))
	for _, v := range edgeInts {
		ws = append(ws, FromInt(v))
	}
	for i := 0; i < n; i++ {
		var w Word
		for k := range w {
			w[k] = Trit(rng.Intn(3) - 1)
		}
		ws = append(ws, w)
	}
	return ws
}

func TestPackRoundTrip(t *testing.T) {
	for _, w := range randWords(500) {
		q := Pack(w)
		if !q.Valid() {
			t.Fatalf("Pack(%v) = %+v violates the plane invariant", w, q)
		}
		if got := q.Unpack(); got != w {
			t.Fatalf("Unpack(Pack(%v)) = %v", w, got)
		}
	}
}

func TestPackedFromIntMatchesFromInt(t *testing.T) {
	for v := MinInt - 3; v <= MaxInt+3; v += 7 {
		want := Pack(FromInt(v))
		if got := PackedFromInt(v); got != want {
			t.Fatalf("PackedFromInt(%d) = %v, want %v", v, got, want)
		}
	}
	for _, v := range []int{MinInt, MaxInt, 0, WordStates, -WordStates, 3 * WordStates} {
		if got, want := PackedFromInt(v), Pack(FromInt(v)); got != want {
			t.Fatalf("PackedFromInt(%d) = %v, want %v", v, got, want)
		}
	}
}

func TestPackedScalarsMatchSerial(t *testing.T) {
	for _, w := range randWords(500) {
		q := Pack(w)
		if got, want := q.Int(), w.Int(); got != want {
			t.Fatalf("%v: Int = %d, want %d", w, got, want)
		}
		if got, want := q.UIndex(), w.UIndex(); got != want {
			t.Fatalf("%v: UIndex = %d, want %d", w, got, want)
		}
		if got, want := q.IsZero(), w.IsZero(); got != want {
			t.Fatalf("%v: IsZero = %v, want %v", w, got, want)
		}
		if got, want := q.Sign(), w.Sign(); got != want {
			t.Fatalf("%v: Sign = %v, want %v", w, got, want)
		}
		if got, want := q.CountNonZero(), w.CountNonZero(); got != want {
			t.Fatalf("%v: CountNonZero = %d, want %d", w, got, want)
		}
		if got, want := q.String(), w.String(); got != want {
			t.Fatalf("String = %q, want %q", got, want)
		}
		for i := 0; i < WordTrits; i++ {
			if got, want := q.Trit(i), w.Trit(i); got != want {
				t.Fatalf("%v: Trit(%d) = %v, want %v", w, i, got, want)
			}
		}
		for lo := 0; lo < WordTrits; lo++ {
			for hi := lo; hi < WordTrits; hi++ {
				if got, want := q.Field(lo, hi), w.Field(lo, hi); got != want {
					t.Fatalf("%v: Field(%d,%d) = %d, want %d", w, lo, hi, got, want)
				}
			}
		}
	}
}

func TestPackedUnaryMatchSerial(t *testing.T) {
	unary := []struct {
		name   string
		packed func(Packed) Packed
		serial func(Word) Word
	}{
		{"Sti", Packed.Sti, Sti},
		{"Nti", Packed.Nti, Nti},
		{"Pti", Packed.Pti, Pti},
		{"Neg", Packed.Neg, NegWord},
		{"Inc", Packed.Inc, Inc},
		{"Dec", Packed.Dec, Dec},
	}
	for _, w := range randWords(500) {
		q := Pack(w)
		for _, op := range unary {
			got := op.packed(q)
			if !got.Valid() {
				t.Fatalf("%s(%v) violates the plane invariant", op.name, w)
			}
			if want := Pack(op.serial(w)); got != want {
				t.Fatalf("%s(%v) = %v, want %v", op.name, w, got, want)
			}
		}
	}
}

func TestPackedBinaryMatchSerial(t *testing.T) {
	binary := []struct {
		name   string
		packed func(Packed, Packed) Packed
		serial func(Word, Word) Word
	}{
		{"And", Packed.And, And},
		{"Or", Packed.Or, Or},
		{"Xor", Packed.Xor, Xor},
		{"Add", Packed.Add, AddWord},
		{"Sub", Packed.Sub, SubWord},
		{"Comp", Packed.Comp, CompWord},
		{"Mul", Packed.Mul, Mul},
	}
	ws := randWords(120)
	for _, a := range ws {
		qa := Pack(a)
		for _, b := range ws {
			qb := Pack(b)
			for _, op := range binary {
				got := op.packed(qa, qb)
				if !got.Valid() {
					t.Fatalf("%s(%v, %v) violates the plane invariant", op.name, a, b)
				}
				if want := Pack(op.serial(a, b)); got != want {
					t.Fatalf("%s(%v, %v) = %v, want %v", op.name, a, b, got, want)
				}
			}
			if got, want := qa.Cmp(qb), Cmp(a, b); got != want {
				t.Fatalf("Cmp(%v, %v) = %v, want %v", a, b, got, want)
			}
			gs, gc := qa.AddCarry(qb)
			ws2, wc := Add(a, b)
			if gs != Pack(ws2) || gc != wc {
				t.Fatalf("AddCarry(%v, %v) = (%v, %v), want (%v, %v)", a, b, gs, gc, ws2, wc)
			}
			gs, gc = qa.SubCarry(qb)
			ws2, wc = Sub(a, b)
			if gs != Pack(ws2) || gc != wc {
				t.Fatalf("SubCarry(%v, %v) = (%v, %v), want (%v, %v)", a, b, gs, gc, ws2, wc)
			}
		}
	}
}

func TestPackedShiftsMatchSerial(t *testing.T) {
	for _, w := range randWords(200) {
		q := Pack(w)
		for n := -1; n <= WordTrits+1; n++ {
			if got, want := q.ShiftLeft(n), Pack(ShiftLeft(w, n)); got != want {
				t.Fatalf("ShiftLeft(%v, %d) = %v, want %v", w, n, got, want)
			}
			if got, want := q.ShiftRight(n), Pack(ShiftRight(w, n)); got != want {
				t.Fatalf("ShiftRight(%v, %d) = %v, want %v", w, n, got, want)
			}
		}
	}
}

func TestPackedFieldPanicsLikeWord(t *testing.T) {
	bad := [][2]int{{-1, 0}, {0, WordTrits}, {5, 4}}
	for _, c := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Field(%d,%d) did not panic", c[0], c[1])
				}
			}()
			Packed{}.Field(c[0], c[1])
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Trit(9) did not panic")
			}
		}()
		Packed{}.Trit(WordTrits)
	}()
}

// TestPackedAddExhaustiveSample pins the plane-ripple adder against exact
// integer arithmetic over a dense value grid, including both overflow
// directions.
func TestPackedAddExhaustiveSample(t *testing.T) {
	for a := MinInt; a <= MaxInt; a += 131 {
		qa := PackedFromInt(a)
		for b := MinInt; b <= MaxInt; b += 173 {
			sum, carry := qa.AddCarry(PackedFromInt(b))
			wrapped := sum.Int()
			if got, want := wrapped+int(carry)*WordStates, a+b; got != want {
				t.Fatalf("%d+%d: sum %d carry %v reconstructs %d", a, b, wrapped, carry, got)
			}
		}
	}
}
