package ternary

import "testing"

// FuzzPackedVsSerial differentially checks every packed kernel against the
// trit-serial reference. The fuzzer drives two integer word values (wrapped
// into range like FromInt) plus a shift amount, so the engine explores the
// full Word × Word space through a representation-independent seam.
func FuzzPackedVsSerial(f *testing.F) {
	f.Add(0, 0, 0)
	f.Add(1, -1, 1)
	f.Add(MaxInt, MaxInt, 4)
	f.Add(MinInt, MinInt, 8)
	f.Add(MaxInt, MinInt, 9)
	f.Add(4521, -7777, 2)
	f.Add(-3, 9840, 40)
	f.Fuzz(func(t *testing.T, av, bv, n int) {
		a, b := FromInt(av), FromInt(bv)
		qa, qb := Pack(a), Pack(b)

		if !qa.Valid() || !qb.Valid() {
			t.Fatalf("Pack produced invalid planes: %+v %+v", qa, qb)
		}
		if qa.Unpack() != a {
			t.Fatalf("round trip broke %v", a)
		}
		if got, want := PackedFromInt(av), qa; got != want {
			t.Fatalf("PackedFromInt(%d) = %v, want %v", av, got, want)
		}
		if got, want := qa.Int(), a.Int(); got != want {
			t.Fatalf("Int: %d vs %d", got, want)
		}
		if got, want := qa.UIndex(), a.UIndex(); got != want {
			t.Fatalf("UIndex: %d vs %d", got, want)
		}
		if got, want := qa.Sign(), a.Sign(); got != want {
			t.Fatalf("Sign: %v vs %v", got, want)
		}
		if got, want := qa.CountNonZero(), a.CountNonZero(); got != want {
			t.Fatalf("CountNonZero: %d vs %d", got, want)
		}

		type bin struct {
			name   string
			packed func(Packed, Packed) Packed
			serial func(Word, Word) Word
		}
		for _, op := range []bin{
			{"And", Packed.And, And},
			{"Or", Packed.Or, Or},
			{"Xor", Packed.Xor, Xor},
			{"Add", Packed.Add, AddWord},
			{"Sub", Packed.Sub, SubWord},
			{"Comp", Packed.Comp, CompWord},
			{"Mul", Packed.Mul, Mul},
		} {
			got := op.packed(qa, qb)
			if !got.Valid() {
				t.Fatalf("%s(%v, %v) invalid planes %+v", op.name, a, b, got)
			}
			if want := Pack(op.serial(a, b)); got != want {
				t.Fatalf("%s(%v, %v) = %v, want %v", op.name, a, b, got, want)
			}
		}
		type un struct {
			name   string
			packed func(Packed) Packed
			serial func(Word) Word
		}
		for _, op := range []un{
			{"Sti", Packed.Sti, Sti},
			{"Nti", Packed.Nti, Nti},
			{"Pti", Packed.Pti, Pti},
			{"Inc", Packed.Inc, Inc},
			{"Dec", Packed.Dec, Dec},
		} {
			if got, want := op.packed(qa), Pack(op.serial(a)); got != want {
				t.Fatalf("%s(%v) = %v, want %v", op.name, a, got, want)
			}
		}

		gs, gc := qa.AddCarry(qb)
		wsum, wc := Add(a, b)
		if gs != Pack(wsum) || gc != wc {
			t.Fatalf("AddCarry(%v, %v) = (%v, %v), want (%v, %v)", a, b, gs, gc, wsum, wc)
		}
		if got, want := qa.Cmp(qb), Cmp(a, b); got != want {
			t.Fatalf("Cmp(%v, %v) = %v, want %v", a, b, got, want)
		}

		s := ShiftAmount(n)
		if got, want := qa.ShiftLeft(s), Pack(ShiftLeft(a, s)); got != want {
			t.Fatalf("ShiftLeft(%v, %d) = %v, want %v", a, s, got, want)
		}
		if got, want := qa.ShiftRight(s), Pack(ShiftRight(a, s)); got != want {
			t.Fatalf("ShiftRight(%v, %d) = %v, want %v", a, s, got, want)
		}

		for lo := 0; lo < WordTrits; lo++ {
			for hi := lo; hi < WordTrits; hi++ {
				if got, want := qa.Field(lo, hi), a.Field(lo, hi); got != want {
					t.Fatalf("Field(%d,%d) on %v: %d vs %d", lo, hi, a, got, want)
				}
			}
		}
	})
}
