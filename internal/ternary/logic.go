package ternary

// Word-wide logic operations (Fig. 1 of the paper applied trit-wise), the
// datapaths of the AND/OR/XOR/STI/NTI/PTI instructions.

// And returns the trit-wise minimum of a and b.
func And(a, b Word) Word {
	var w Word
	for i := range w {
		w[i] = a[i].And(b[i])
	}
	return w
}

// Or returns the trit-wise maximum of a and b.
func Or(a, b Word) Word {
	var w Word
	for i := range w {
		w[i] = a[i].Or(b[i])
	}
	return w
}

// Xor returns the trit-wise balanced exclusive-or −(a·b).
func Xor(a, b Word) Word {
	var w Word
	for i := range w {
		w[i] = a[i].Xor(b[i])
	}
	return w
}

// Sti applies the standard ternary inverter trit-wise (identical to NegWord;
// kept as the logic-unit view of the same cell).
func Sti(a Word) Word {
	for i := range a {
		a[i] = a[i].Sti()
	}
	return a
}

// Nti applies the negative ternary inverter trit-wise.
func Nti(a Word) Word {
	for i := range a {
		a[i] = a[i].Nti()
	}
	return a
}

// Pti applies the positive ternary inverter trit-wise.
func Pti(a Word) Word {
	for i := range a {
		a[i] = a[i].Pti()
	}
	return a
}

// TruthTable renders the 3×3 truth table of a binary trit operation with
// rows/columns ordered −1, 0, +1, for regenerating Fig. 1.
func TruthTable(op func(Trit, Trit) Trit) [3][3]Trit {
	var tt [3][3]Trit
	for i, a := range [...]Trit{Neg, Zero, Pos} {
		for j, b := range [...]Trit{Neg, Zero, Pos} {
			tt[i][j] = op(a, b)
		}
	}
	return tt
}

// UnaryTruthTable renders the 3-entry truth table of a unary trit
// operation ordered −1, 0, +1.
func UnaryTruthTable(op func(Trit) Trit) [3]Trit {
	var tt [3]Trit
	for i, a := range [...]Trit{Neg, Zero, Pos} {
		tt[i] = op(a)
	}
	return tt
}
