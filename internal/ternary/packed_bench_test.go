package ternary

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"testing"
)

// benchWords is a fixed pseudo-random operand set shared by every kernel
// benchmark, large enough to defeat branch prediction on data-dependent
// paths and small enough to stay L1-resident in both representations.
const benchN = 1024

func benchOperands() ([]Word, []Packed) {
	rng := rand.New(rand.NewSource(77))
	ws := make([]Word, benchN)
	qs := make([]Packed, benchN)
	for i := range ws {
		for k := range ws[i] {
			ws[i][k] = Trit(rng.Intn(3) - 1)
		}
		qs[i] = Pack(ws[i])
	}
	return ws, qs
}

var sinkWord Word
var sinkPacked Packed
var sinkInt int
var sinkTrit Trit

func benchSerialBinary(b *testing.B, op func(Word, Word) Word) {
	ws, _ := benchOperands()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkWord = op(ws[i%benchN], ws[(i+1)%benchN])
	}
}

func benchPackedBinary(b *testing.B, op func(Packed, Packed) Packed) {
	_, qs := benchOperands()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkPacked = op(qs[i%benchN], qs[(i+1)%benchN])
	}
}

func BenchmarkAndSerial(b *testing.B) { benchSerialBinary(b, And) }
func BenchmarkAndPacked(b *testing.B) { benchPackedBinary(b, Packed.And) }
func BenchmarkOrSerial(b *testing.B)  { benchSerialBinary(b, Or) }
func BenchmarkOrPacked(b *testing.B)  { benchPackedBinary(b, Packed.Or) }
func BenchmarkXorSerial(b *testing.B) { benchSerialBinary(b, Xor) }
func BenchmarkXorPacked(b *testing.B) { benchPackedBinary(b, Packed.Xor) }
func BenchmarkAddSerial(b *testing.B) { benchSerialBinary(b, AddWord) }
func BenchmarkAddPacked(b *testing.B) { benchPackedBinary(b, Packed.Add) }
func BenchmarkSubSerial(b *testing.B) { benchSerialBinary(b, SubWord) }
func BenchmarkSubPacked(b *testing.B) { benchPackedBinary(b, Packed.Sub) }
func BenchmarkMulSerial(b *testing.B) { benchSerialBinary(b, Mul) }
func BenchmarkMulPacked(b *testing.B) { benchPackedBinary(b, Packed.Mul) }

func BenchmarkStiSerial(b *testing.B) {
	ws, _ := benchOperands()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkWord = Sti(ws[i%benchN])
	}
}

func BenchmarkStiPacked(b *testing.B) {
	_, qs := benchOperands()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkPacked = qs[i%benchN].Sti()
	}
}

func BenchmarkNtiSerial(b *testing.B) {
	ws, _ := benchOperands()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkWord = Nti(ws[i%benchN])
	}
}

func BenchmarkNtiPacked(b *testing.B) {
	_, qs := benchOperands()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkPacked = qs[i%benchN].Nti()
	}
}

func BenchmarkPtiSerial(b *testing.B) {
	ws, _ := benchOperands()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkWord = Pti(ws[i%benchN])
	}
}

func BenchmarkPtiPacked(b *testing.B) {
	_, qs := benchOperands()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkPacked = qs[i%benchN].Pti()
	}
}

func BenchmarkCmpSerial(b *testing.B) {
	ws, _ := benchOperands()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkTrit = Cmp(ws[i%benchN], ws[(i+1)%benchN])
	}
}

func BenchmarkCmpPacked(b *testing.B) {
	_, qs := benchOperands()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkTrit = qs[i%benchN].Cmp(qs[(i+1)%benchN])
	}
}

func BenchmarkShiftLeftSerial(b *testing.B) {
	ws, _ := benchOperands()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkWord = ShiftLeft(ws[i%benchN], i%WordTrits)
	}
}

func BenchmarkShiftLeftPacked(b *testing.B) {
	_, qs := benchOperands()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkPacked = qs[i%benchN].ShiftLeft(i % WordTrits)
	}
}

func BenchmarkIntSerial(b *testing.B) {
	ws, _ := benchOperands()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkInt = ws[i%benchN].Int()
	}
}

func BenchmarkIntPacked(b *testing.B) {
	_, qs := benchOperands()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkInt = qs[i%benchN].Int()
	}
}

func BenchmarkFromIntSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkWord = FromInt(i%WordStates - MaxInt)
	}
}

func BenchmarkFromIntPacked(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkPacked = PackedFromInt(i%WordStates - MaxInt)
	}
}

func BenchmarkCountNonZeroSerial(b *testing.B) {
	ws, _ := benchOperands()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkInt = ws[i%benchN].CountNonZero()
	}
}

func BenchmarkCountNonZeroPacked(b *testing.B) {
	_, qs := benchOperands()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkInt = qs[i%benchN].CountNonZero()
	}
}

func BenchmarkFieldSerial(b *testing.B) {
	ws, _ := benchOperands()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkInt = ws[i%benchN].Field(0, 4)
	}
}

func BenchmarkFieldPacked(b *testing.B) {
	_, qs := benchOperands()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkInt = qs[i%benchN].Field(0, 4)
	}
}

// TestPackedKernelSpeedupGate is the CI benchmark regression gate for the
// packed kernels: it re-times each serial/packed pair in-process and fails
// if the aggregate speedup drops below 3×. It runs only when ART9_BENCH_GATE
// is set (benchmarking under `go test` noise is pointless on laps that don't
// ask for it); when ART9_BENCH_GATE_OUT names a path, the per-kernel ns/op
// figures are written there as JSON for the BENCH artifact.
func TestPackedKernelSpeedupGate(t *testing.T) {
	if os.Getenv("ART9_BENCH_GATE") == "" {
		t.Skip("set ART9_BENCH_GATE=1 to run the kernel speedup gate")
	}
	kernels := []struct {
		name           string
		serial, packed func(b *testing.B)
	}{
		{"And", BenchmarkAndSerial, BenchmarkAndPacked},
		{"Or", BenchmarkOrSerial, BenchmarkOrPacked},
		{"Xor", BenchmarkXorSerial, BenchmarkXorPacked},
		{"Add", BenchmarkAddSerial, BenchmarkAddPacked},
		{"Sub", BenchmarkSubSerial, BenchmarkSubPacked},
		{"Cmp", BenchmarkCmpSerial, BenchmarkCmpPacked},
		{"ShiftLeft", BenchmarkShiftLeftSerial, BenchmarkShiftLeftPacked},
		{"Int", BenchmarkIntSerial, BenchmarkIntPacked},
		{"FromInt", BenchmarkFromIntSerial, BenchmarkFromIntPacked},
		{"CountNonZero", BenchmarkCountNonZeroSerial, BenchmarkCountNonZeroPacked},
		{"Field", BenchmarkFieldSerial, BenchmarkFieldPacked},
		{"Sti", BenchmarkStiSerial, BenchmarkStiPacked},
		{"Nti", BenchmarkNtiSerial, BenchmarkNtiPacked},
		{"Pti", BenchmarkPtiSerial, BenchmarkPtiPacked},
	}
	type row struct {
		Kernel      string  `json:"kernel"`
		SerialNsOp  float64 `json:"serial_ns_op"`
		PackedNsOp  float64 `json:"packed_ns_op"`
		Speedup     float64 `json:"speedup"`
		SerialAlloc int64   `json:"serial_allocs_op"`
		PackedAlloc int64   `json:"packed_allocs_op"`
	}
	var rows []row
	var serialTotal, packedTotal float64
	for _, k := range kernels {
		sr := testing.Benchmark(k.serial)
		pr := testing.Benchmark(k.packed)
		sNs := float64(sr.NsPerOp())
		pNs := float64(pr.NsPerOp())
		if pNs <= 0 {
			pNs = 0.5 // sub-ns kernels round to 0; count as half a ns
		}
		rows = append(rows, row{
			Kernel:      k.name,
			SerialNsOp:  sNs,
			PackedNsOp:  pNs,
			Speedup:     sNs / pNs,
			SerialAlloc: sr.AllocsPerOp(),
			PackedAlloc: pr.AllocsPerOp(),
		})
		serialTotal += sNs
		packedTotal += pNs
		t.Logf("%-12s serial %8.2f ns/op  packed %8.2f ns/op  speedup %5.1f×",
			k.name, sNs, pNs, sNs/pNs)
	}
	agg := serialTotal / packedTotal
	t.Logf("aggregate: serial %.2f ns packed %.2f ns speedup %.1f×", serialTotal, packedTotal, agg)
	if out := os.Getenv("ART9_BENCH_GATE_OUT"); out != "" {
		blob, err := json.MarshalIndent(struct {
			Aggregate float64 `json:"aggregate_speedup"`
			Kernels   []row   `json:"kernels"`
		}{agg, rows}, "", "  ")
		if err != nil {
			t.Fatalf("marshal bench rows: %v", err)
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			t.Fatalf("write %s: %v", out, err)
		}
		fmt.Printf("kernel bench table written to %s\n", out)
	}
	if agg < 3.0 {
		t.Fatalf("packed kernels regressed: aggregate speedup %.2f× < 3× floor", agg)
	}
}
