package ternary

import "testing"

func TestTritString(t *testing.T) {
	cases := []struct {
		tr   Trit
		want string
	}{{Neg, "T"}, {Zero, "0"}, {Pos, "1"}}
	for _, c := range cases {
		if got := c.tr.String(); got != c.want {
			t.Errorf("Trit(%d).String() = %q, want %q", c.tr, got, c.want)
		}
	}
}

func TestTritFromRune(t *testing.T) {
	ok := map[rune]Trit{'T': Neg, 't': Neg, '-': Neg, '0': Zero, '1': Pos, '+': Pos}
	for r, want := range ok {
		got, err := TritFromRune(r)
		if err != nil || got != want {
			t.Errorf("TritFromRune(%q) = %v, %v; want %v, nil", r, got, err, want)
		}
	}
	for _, r := range "2axZ " {
		if _, err := TritFromRune(r); err == nil {
			t.Errorf("TritFromRune(%q) succeeded, want error", r)
		}
	}
}

func TestTritValid(t *testing.T) {
	for _, tr := range []Trit{Neg, Zero, Pos} {
		if !tr.Valid() {
			t.Errorf("Trit(%d).Valid() = false", tr)
		}
	}
	for _, tr := range []Trit{-2, 2, 5, -7} {
		if tr.Valid() {
			t.Errorf("Trit(%d).Valid() = true", tr)
		}
	}
}

// TestTruthTablesFig1 pins the exact truth tables of Fig. 1 of the paper.
func TestTruthTablesFig1(t *testing.T) {
	// Unary inverters, inputs ordered −1, 0, +1.
	unary := []struct {
		name string
		op   func(Trit) Trit
		want [3]Trit
	}{
		{"STI", Trit.Sti, [3]Trit{Pos, Zero, Neg}},
		{"NTI", Trit.Nti, [3]Trit{Pos, Neg, Neg}},
		{"PTI", Trit.Pti, [3]Trit{Pos, Pos, Neg}},
	}
	for _, u := range unary {
		if got := UnaryTruthTable(u.op); got != u.want {
			t.Errorf("%s truth table = %v, want %v", u.name, got, u.want)
		}
	}

	binary := []struct {
		name string
		op   func(Trit, Trit) Trit
		want [3][3]Trit
	}{
		{"AND", Trit.And, [3][3]Trit{
			{Neg, Neg, Neg},
			{Neg, Zero, Zero},
			{Neg, Zero, Pos},
		}},
		{"OR", Trit.Or, [3][3]Trit{
			{Neg, Zero, Pos},
			{Zero, Zero, Pos},
			{Pos, Pos, Pos},
		}},
		{"XOR", Trit.Xor, [3][3]Trit{
			{Neg, Zero, Pos},
			{Zero, Zero, Zero},
			{Pos, Zero, Neg},
		}},
	}
	for _, b := range binary {
		if got := TruthTable(b.op); got != b.want {
			t.Errorf("%s truth table = %v, want %v", b.name, got, b.want)
		}
	}
}

func TestXorRestrictsToBinaryXor(t *testing.T) {
	// Under false↦−1, true↦+1, Xor must match binary XOR.
	toTrit := func(b bool) Trit {
		if b {
			return Pos
		}
		return Neg
	}
	for _, a := range []bool{false, true} {
		for _, b := range []bool{false, true} {
			want := toTrit(a != b)
			if got := toTrit(a).Xor(toTrit(b)); got != want {
				t.Errorf("Xor(%v,%v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestHalfAdd(t *testing.T) {
	for _, a := range []Trit{Neg, Zero, Pos} {
		for _, b := range []Trit{Neg, Zero, Pos} {
			sum, carry := HalfAdd(a, b)
			if got := int(sum) + 3*int(carry); got != int(a)+int(b) {
				t.Errorf("HalfAdd(%v,%v) = %v,%v: reconstructs %d, want %d",
					a, b, sum, carry, got, int(a)+int(b))
			}
			if !sum.Valid() || !carry.Valid() {
				t.Errorf("HalfAdd(%v,%v) produced invalid trits %v,%v", a, b, sum, carry)
			}
		}
	}
}

func TestFullAdd(t *testing.T) {
	for _, a := range []Trit{Neg, Zero, Pos} {
		for _, b := range []Trit{Neg, Zero, Pos} {
			for _, c := range []Trit{Neg, Zero, Pos} {
				sum, carry := FullAdd(a, b, c)
				if got := int(sum) + 3*int(carry); got != int(a)+int(b)+int(c) {
					t.Errorf("FullAdd(%v,%v,%v): got %d, want %d",
						a, b, c, got, int(a)+int(b)+int(c))
				}
				if !sum.Valid() || !carry.Valid() {
					t.Errorf("FullAdd(%v,%v,%v) invalid trits", a, b, c)
				}
			}
		}
	}
}

func TestTritCmp(t *testing.T) {
	for _, a := range []Trit{Neg, Zero, Pos} {
		for _, b := range []Trit{Neg, Zero, Pos} {
			want := SignTrit(int(a) - int(b))
			if got := a.Cmp(b); got != want {
				t.Errorf("Cmp(%v,%v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestSignTrit(t *testing.T) {
	cases := map[int]Trit{-100: Neg, -1: Neg, 0: Zero, 1: Pos, 9841: Pos}
	for v, want := range cases {
		if got := SignTrit(v); got != want {
			t.Errorf("SignTrit(%d) = %v, want %v", v, got, want)
		}
	}
}

// De Morgan duality via STI: STI(AND(a,b)) == OR(STI(a),STI(b)) for min/max.
func TestDeMorgan(t *testing.T) {
	for _, a := range []Trit{Neg, Zero, Pos} {
		for _, b := range []Trit{Neg, Zero, Pos} {
			if a.And(b).Sti() != a.Sti().Or(b.Sti()) {
				t.Errorf("De Morgan AND failed for %v,%v", a, b)
			}
			if a.Or(b).Sti() != a.Sti().And(b.Sti()) {
				t.Errorf("De Morgan OR failed for %v,%v", a, b)
			}
		}
	}
}

// Inverter composition identities: STI∘STI = id, NTI and PTI are related by
// NTI(x) = STI(PTI(STI(x))).
func TestInverterIdentities(t *testing.T) {
	for _, a := range []Trit{Neg, Zero, Pos} {
		if a.Sti().Sti() != a {
			t.Errorf("STI(STI(%v)) != %v", a, a)
		}
		if a.Sti().Pti().Sti() != a.Nti() {
			t.Errorf("STI∘PTI∘STI(%v) != NTI(%v)", a, a)
		}
	}
}
