package ternary

import (
	"fmt"
	"math/bits"
)

// Packed is the word-parallel form of a 9-trit balanced word: two bit-planes
// in one machine word each. Bit i of N is set iff trit i is −1; bit i of P is
// set iff trit i is +1; a zero trit has neither bit set. The encoding follows
// the binary-vs-ternary cost analyses (Etiemble; Tekum — see PAPERS.md):
// trit-wise logic (min/max/product, the STI/NTI/PTI inverters) collapses to a
// handful of bitwise operations over whole planes, and addition becomes a
// plane-parallel carry ripple that converges in a few rounds instead of nine
// serial full-adder steps.
//
// Invariants (checked by Valid, preserved by every kernel here):
//
//	N & P == 0                 — a trit cannot be −1 and +1 at once
//	N|P has no bits ≥ WordTrits — planes cover exactly the 9 architected trits
//
// The zero value is the word 0. Packed is comparable, and the mapping
// Word ↔ Packed is a bijection, so == on Packed agrees with == on Word.
// Word stays the source of truth for tests and wire formats; Packed is the
// in-memory hot-path form used by the simulator datapath.
type Packed struct {
	N uint32 // negative-trit mask
	P uint32 // positive-trit mask
}

// PlaneMask covers the 9 architected trit positions of one plane.
const PlaneMask = 1<<WordTrits - 1

// pow3Plane maps a 9-bit plane mask to Σ_{i∈mask} 3^i, so a packed word's
// balanced value is one table subtraction: pow3Plane[P] − pow3Plane[N].
var pow3Plane [1 << WordTrits]int32

// packLo and packHi map the low five / high four standard base-3 digits of
// the offset value v+MaxInt to their bit-planes; FromInt becomes two table
// lookups (the offset turns balanced digits b into standard digits b+1).
var (
	packLo [243]Packed // digits 0..4 of v+MaxInt
	packHi [81]Packed  // digits 5..8 of v+MaxInt
)

func init() {
	for m := range pow3Plane {
		v, p := int32(0), int32(1)
		for i := 0; i < WordTrits; i++ {
			if m&(1<<i) != 0 {
				v += p
			}
			p *= 3
		}
		pow3Plane[m] = v
	}
	fill := func(tab []Packed, first, digits int) {
		for u := range tab {
			x, q := u, Packed{}
			for k := 0; k < digits; k++ {
				switch x % 3 {
				case 0: // standard digit 0 ⇔ balanced digit −1
					q.N |= 1 << (first + k)
				case 2: // standard digit 2 ⇔ balanced digit +1
					q.P |= 1 << (first + k)
				}
				x /= 3
			}
			tab[u] = q
		}
	}
	fill(packLo[:], 0, 5)
	fill(packHi[:], 5, 4)
}

// Pack converts a trit-serial word to its bit-plane form. Trits outside
// {−1, 0, +1} fold by sign, so Pack of any Valid word is exact.
func Pack(w Word) Packed {
	var q Packed
	for i := 0; i < WordTrits; i++ {
		switch {
		case w[i] < Zero:
			q.N |= 1 << i
		case w[i] > Zero:
			q.P |= 1 << i
		}
	}
	return q
}

// Unpack converts back to the trit-serial form.
func (q Packed) Unpack() Word {
	var w Word
	for i := 0; i < WordTrits; i++ {
		b := uint32(1) << i
		if q.N&b != 0 {
			w[i] = Neg
		} else if q.P&b != 0 {
			w[i] = Pos
		}
	}
	return w
}

// Valid reports whether the planes are disjoint and confined to the 9
// architected positions — the representation invariant of every kernel.
func (q Packed) Valid() bool {
	return q.N&q.P == 0 && (q.N|q.P)&^uint32(PlaneMask) == 0
}

// PackedFromInt returns the packed word encoding v, wrapping modulo 3^9
// exactly like FromInt.
func PackedFromInt(v int) Packed {
	v %= WordStates
	if v > MaxInt {
		v -= WordStates
	} else if v < MinInt {
		v += WordStates
	}
	u := v + MaxInt
	lo, hi := packLo[u%243], packHi[u/243]
	return Packed{N: lo.N | hi.N, P: lo.P | hi.P}
}

// Int returns the balanced integer value, in [MinInt, MaxInt].
func (q Packed) Int() int {
	return int(pow3Plane[q.P]) - int(pow3Plane[q.N])
}

// UIndex returns the unsigned (addressing) interpretation of §II-A.
func (q Packed) UIndex() int {
	v := q.Int()
	if v < 0 {
		v += WordStates
	}
	return v
}

// IsZero reports whether q encodes 0.
func (q Packed) IsZero() bool { return q.N|q.P == 0 }

// Trit returns the trit at position i (0 = LST). It panics if i is out of
// range, matching Word.Trit.
func (q Packed) Trit(i int) Trit {
	if i < 0 || i >= WordTrits {
		panic(fmt.Sprintf("ternary: trit index %d out of range", i))
	}
	b := uint32(1) << i
	switch {
	case q.N&b != 0:
		return Neg
	case q.P&b != 0:
		return Pos
	}
	return Zero
}

// Sign returns the sign of the balanced value: the most significant nonzero
// trit, found with one leading-bit scan over the merged planes.
func (q Packed) Sign() Trit {
	u := q.N | q.P
	if u == 0 {
		return Zero
	}
	if q.P&(1<<(bits.Len32(u)-1)) != 0 {
		return Pos
	}
	return Neg
}

// CountNonZero returns the number of nonzero trits (one popcount).
func (q Packed) CountNonZero() int { return bits.OnesCount32(q.N | q.P) }

// Field extracts the balanced value of the trit subfield [lo..hi]
// (inclusive) with two shifted table lookups; it panics on an invalid
// range, matching Word.Field.
func (q Packed) Field(lo, hi int) int {
	if lo < 0 || hi >= WordTrits || lo > hi {
		panic(fmt.Sprintf("ternary: invalid field [%d..%d]", lo, hi))
	}
	m := uint32(1)<<(hi-lo+1) - 1
	return int(pow3Plane[(q.P>>lo)&m]) - int(pow3Plane[(q.N>>lo)&m])
}

// String renders the word exactly like Word.String (most significant trit
// first), so packed values drop into existing messages unchanged.
func (q Packed) String() string { return q.Unpack().String() }

// And is the trit-wise minimum: −1 wherever either operand is −1, +1 only
// where both are.
func (a Packed) And(b Packed) Packed {
	return Packed{N: a.N | b.N, P: a.P & b.P}
}

// Or is the trit-wise maximum.
func (a Packed) Or(b Packed) Packed {
	return Packed{N: a.N & b.N, P: a.P | b.P}
}

// Xor is the trit-wise −(a·b): −1 where the signs agree, +1 where they
// differ, 0 wherever an operand is 0.
func (a Packed) Xor(b Packed) Packed {
	return Packed{
		N: (a.P & b.P) | (a.N & b.N),
		P: (a.P & b.N) | (a.N & b.P),
	}
}

// Sti is the standard ternary inverter x ↦ −x: a plane swap.
func (q Packed) Sti() Packed { return Packed{N: q.P, P: q.N} }

// Neg returns −q (identical to Sti; kept as the arithmetic-unit name).
func (q Packed) Neg() Packed { return q.Sti() }

// Nti is the negative ternary inverter: +1 where the input is −1, −1
// everywhere else.
func (q Packed) Nti() Packed {
	return Packed{N: PlaneMask &^ q.N, P: q.N}
}

// Pti is the positive ternary inverter: −1 where the input is +1, +1
// everywhere else.
func (q Packed) Pti() Packed {
	return Packed{N: q.P, P: PlaneMask &^ q.P}
}

// AddCarry returns a+b and the carry out of the most significant trit,
// matching the trit-serial Add. Each round performs one word-parallel
// balanced half-add — digit planes for the carry-free sum, carry planes
// shifted up one position — and the loop runs until no carries remain.
// Two random words converge in two or three rounds; the planes are kept
// one position wider than the word during the ripple so the carry out
// falls out of bit 9.
func (a Packed) AddCarry(b Packed) (Packed, Trit) {
	an, ap := a.N, a.P
	bn, bp := b.N, b.P
	for bn|bp != 0 {
		az, bz := ^(an | ap), ^(bn | bp)
		sn := (an & bz) | (az & bn) | (ap & bp) // −1+0, 0+(−1), and the (+1)+(+1) wrap
		sp := (ap & bz) | (az & bp) | (an & bn) // +1+0, 0+(+1), and the (−1)+(−1) wrap
		bn, bp = (an&bn)<<1, (ap&bp)<<1         // carries into the next position
		an, ap = sn, sp
	}
	carry := Zero
	const out = 1 << WordTrits
	if an&out != 0 {
		carry = Neg
	} else if ap&out != 0 {
		carry = Pos
	}
	return Packed{N: an & PlaneMask, P: ap & PlaneMask}, carry
}

// Add returns a+b, discarding the carry (the ADD datapath).
func (a Packed) Add(b Packed) Packed {
	s, _ := a.AddCarry(b)
	return s
}

// SubCarry returns a−b and the carry out, computed as a + STI(b) exactly
// like the SUB datapath.
func (a Packed) SubCarry(b Packed) (Packed, Trit) { return a.AddCarry(b.Sti()) }

// Sub returns a−b, discarding the carry.
func (a Packed) Sub(b Packed) Packed {
	d, _ := a.AddCarry(b.Sti())
	return d
}

// Cmp returns the sign of a−b as a trit. The planes are XORed to find the
// most significant differing trit, which decides the order directly in
// balanced representation.
func (a Packed) Cmp(b Packed) Trit {
	d := (a.N ^ b.N) | (a.P ^ b.P)
	if d == 0 {
		return Zero
	}
	bit := uint32(1) << (bits.Len32(d) - 1)
	switch {
	case a.P&bit != 0: // a is +1 where b is 0 or −1
		return Pos
	case a.N&bit != 0:
		return Neg
	case b.N&bit != 0: // a is 0 where b is −1
		return Pos
	}
	return Neg // a is 0 where b is +1
}

// Comp materialises the COMP result word: sign(a−b) in the least
// significant trit.
func (a Packed) Comp(b Packed) Packed {
	switch a.Cmp(b) {
	case Pos:
		return Packed{P: 1}
	case Neg:
		return Packed{N: 1}
	}
	return Packed{}
}

// ShiftLeft shifts by n trit positions, filling with zeros: one shift per
// plane.
func (q Packed) ShiftLeft(n int) Packed {
	if n <= 0 {
		return q
	}
	if n >= WordTrits {
		return Packed{}
	}
	return Packed{N: (q.N << n) & PlaneMask, P: (q.P << n) & PlaneMask}
}

// ShiftRight shifts right by n trit positions, filling with zeros.
func (q Packed) ShiftRight(n int) Packed {
	if n <= 0 {
		return q
	}
	if n >= WordTrits {
		return Packed{}
	}
	return Packed{N: q.N >> n, P: q.P >> n}
}

// Mul returns the low 9 trits of a×b by balanced shift-add over b's nonzero
// trits, matching the trit-serial Mul.
func (a Packed) Mul(b Packed) Packed {
	var acc Packed
	for u := b.N | b.P; u != 0; u &= u - 1 {
		i := bits.TrailingZeros32(u)
		if b.P&(1<<i) != 0 {
			acc = acc.Add(a.ShiftLeft(i))
		} else {
			acc = acc.Sub(a.ShiftLeft(i))
		}
	}
	return acc
}

// Inc returns q+1 and Dec returns q−1 — the PC-increment datapaths.
func (q Packed) Inc() Packed { return q.Add(Packed{P: 1}) }
func (q Packed) Dec() Packed { return q.Sub(Packed{P: 1}) }
