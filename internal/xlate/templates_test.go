package xlate

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/rv32"
)

// Focused tests of the mapping templates added for mapping quality:
// ADDI chains, big memory offsets, commutative flips, bool-branch fast
// paths, and the variable-shift loops.

func TestAddiChainCorrectAndShort(t *testing.T) {
	// Immediates beyond the 3-trit field but within ±39 use an ADDI
	// chain instead of the LUI/LI construction.
	for _, imm := range []int{14, 26, 27, 39, -14, -39, 16} {
		e := runEquiv(t, fmt.Sprintf(`
			li a0, 100
			addi a1, a0, %d
			ebreak
		`, imm), Options{})
		e.checkReg(t, fmt.Sprintf("addi %d", imm), 11)
		// The chain must not use LUI for these values.
		for _, l := range e.out.Lines {
			if l.Op == "LUI" && l.Ta != regZero && l.Imm != 0 {
				// the prologue/li are LUI-based; check the chain only
				// via total length below
				break
			}
		}
	}
	// Size check: addi +16 translates to ≤ 3 instructions beyond the
	// base register copy.
	rvProg, err := rv32.Assemble("li a0, 1\naddi a1, a0, 16\nebreak")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Translate(rvProg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ops := 0
	for _, l := range out.Lines {
		if l.Op == "ADDI" {
			ops++
		}
	}
	if ops > 2 {
		t.Errorf("addi 16 expanded to %d ADDIs, want ≤2", ops)
	}
}

func TestBigMemoryOffsets(t *testing.T) {
	// Offsets across the folding regimes: in-field, ADDI-chain, far.
	for _, off := range []int{0, 12, 16, 40, 52, 56, 120, 2000} {
		e := runEquiv(t, fmt.Sprintf(`
			.data
			.org 2100
		end:	.word 0
			.text
			li   t0, 52
			li   a1, 777
			sw   a1, %d(t0)
			lw   a2, %d(t0)
			ebreak
		`, off, off), Options{})
		e.checkReg(t, fmt.Sprintf("off %d", off), 12)
		e.checkMem(t, fmt.Sprintf("mem off %d", off), 52+off)
	}
}

func TestBigOffsetSpilledValue(t *testing.T) {
	// Store of a *spilled* value at a far offset exercises the
	// park-in-runtime-slot path of memAddr.
	var b strings.Builder
	// Pressure: 8 hot registers so at least one spills.
	regs := []string{"a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7"}
	for i, r := range regs {
		fmt.Fprintf(&b, "li %s, %d\n", r, 100+i)
	}
	for i := 0; i < 3; i++ {
		for _, r := range regs {
			fmt.Fprintf(&b, "addi %s, %s, 1\n", r, r)
		}
	}
	b.WriteString("li t0, 100\n")
	for i, r := range regs {
		fmt.Fprintf(&b, "sw %s, %d(t0)\n", r, 900+4*i)
	}
	b.WriteString("ebreak\n")
	e := runEquiv(t, b.String(), Options{})
	for i := range regs {
		e.checkMem(t, fmt.Sprintf("spill store %d", i), 1000+4*i)
	}
}

func TestCommutativeFlip(t *testing.T) {
	// add a0, a1, a0 (rd == rs2): the flip avoids the save/copy dance.
	e := runEquiv(t, `
		li a0, 5
		li a1, 7
		add a0, a1, a0
		ebreak
	`, Options{})
	e.checkReg(t, "commutative", 10)
	// Non-commutative: sub a0, a1, a0 must still be exact.
	e = runEquiv(t, `
		li a0, 5
		li a1, 7
		sub a0, a1, a0
		ebreak
	`, Options{})
	e.checkReg(t, "sub-swap", 10)
}

func TestBoolBranchFastPath(t *testing.T) {
	// slt + beqz in one block: the branch must test the LST directly
	// (no COMP emitted between the SLT result and the branch).
	rvProg, err := rv32.Assemble(`
		li a0, 3
		li a1, 9
		slt t0, a1, a0
		beqz t0, ok
		li a2, 111
	ok:	ebreak
	`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Translate(rvProg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Count COMPs: the slt needs one; the branch must not add another.
	comps := 0
	for _, l := range out.Lines {
		if l.Op == "COMP" {
			comps++
		}
	}
	if comps != 1 {
		t.Errorf("bool branch did not use the fast path: %d COMPs, want 1", comps)
	}
	// And it must be semantically right for all outcomes.
	for _, pair := range [][2]int{{3, 9}, {9, 3}, {5, 5}} {
		e := runEquiv(t, fmt.Sprintf(`
			li a0, %d
			li a1, %d
			slt t0, a1, a0
			li a2, 0
			beqz t0, ok
			li a2, 111
		ok:	ebreak
		`, pair[0], pair[1]), Options{})
		e.checkReg(t, "bool-branch", 12)
	}
}

func TestBoolBranchInvalidatedByLabel(t *testing.T) {
	// The fast path must NOT fire across a label (merge point).
	rvProg, err := rv32.Assemble(`
		li t0, 1
	merge:
		beqz t0, out
		li t0, 0
		j merge
	out:	ebreak
	`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Translate(rvProg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	comps := 0
	for _, l := range out.Lines {
		if l.Op == "COMP" {
			comps++
		}
	}
	if comps == 0 {
		t.Error("branch after label used the fast path unsoundly")
	}
	// Semantics regardless.
	e := runEquiv(t, `
		li t0, 1
	merge:
		beqz t0, out
		li t0, 0
		j merge
	out:	li a0, 42
		ebreak
	`, Options{})
	e.checkReg(t, "merge", 10)
}

func TestVariableShiftEdges(t *testing.T) {
	for _, c := range [][2]int{{5, 0}, {5, 1}, {5, 6}, {-40, 2}, {100, 3}} {
		e := runEquiv(t, fmt.Sprintf(`
			li a0, %d
			li a1, %d
			sll a2, a0, a1
			ebreak
		`, c[0], c[1]), Options{})
		e.checkReg(t, fmt.Sprintf("sll(%d,%d)", c[0], c[1]), 12)
	}
	for _, c := range [][2]int{{80, 0}, {80, 2}, {81, 4}, {-80, 2}} {
		e := runEquiv(t, fmt.Sprintf(`
			li a0, %d
			li a1, %d
			sra a2, a0, a1
			ebreak
		`, c[0], c[1]), Options{})
		e.checkReg(t, fmt.Sprintf("sra(%d,%d)", c[0], c[1]), 12)
	}
}

func TestMulHReturnsZeroUnderContract(t *testing.T) {
	e := runEquiv(t, `
		li a0, 90
		li a1, 90
		mulh a2, a0, a1
		ebreak
	`, Options{})
	// Both sides give 0: the 32-bit high word of 8100 and the
	// translator's contract value.
	e.checkReg(t, "mulh", 12)
}

func TestXoriEquality(t *testing.T) {
	e := runEquiv(t, `
		li a0, 77
		xori t0, a0, 77
		seqz t1, t0
		xori t2, a0, 76
		snez t3, t2
		ebreak
	`, Options{})
	for _, r := range []rv32.Reg{6, 28} {
		e.checkReg(t, "xori", r)
	}
}

func TestStoreConstToSpilledRegister(t *testing.T) {
	// li of a wide constant into a register that ends up spilled.
	var b strings.Builder
	regs := []string{"a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "s2"}
	for i, r := range regs {
		fmt.Fprintf(&b, "li %s, %d\n", r, 9000+i)
	}
	// Touch all so none is dead.
	for i := 1; i < len(regs); i++ {
		fmt.Fprintf(&b, "sub %s, %s, %s\n", regs[i], regs[i], regs[i-1])
	}
	b.WriteString("ebreak\n")
	e := runEquiv(t, b.String(), Options{})
	for _, rn := range regs {
		r, _ := rv32.ParseReg(rn)
		e.checkReg(t, "wide-spill", r)
	}
}
