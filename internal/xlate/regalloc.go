package xlate

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/rv32"
	"repro/internal/sim"
)

// allocation is the register-renaming plan of the operand-conversion phase:
// the six hottest RV32 registers ride in T1..T6, the rest spill to TDM.
type allocation struct {
	direct map[rv32.Reg]isa.Reg // rv reg -> T1..T6
	slot   map[rv32.Reg]int     // rv reg -> TDM slot address (negative)
}

// allocate counts loop-depth-weighted register uses and builds the plan:
// registers hot in inner loops win the six direct GPTRs. Loop depth is
// estimated from backward branches (a branch to an earlier instruction
// nests everything in between one level deeper).
func allocate(p *rv32.Program) *allocation {
	depth := make([]int, len(p.Insts))
	for idx, in := range p.Insts {
		if (in.Op.IsBranch() || in.Op == rv32.JAL) && in.Imm < 0 {
			lo := idx + int(in.Imm)/4
			if lo < 0 {
				lo = 0
			}
			for k := lo; k <= idx; k++ {
				if depth[k] < 3 {
					depth[k]++
				}
			}
		}
	}
	var uses [rv32.NumRegs]int
	for idx, in := range p.Insts {
		w := 1 << (2 * depth[idx]) // 1, 4, 16, 64
		if in.Op.WritesRd() {
			uses[in.Rd] += w
		}
		if in.Op.ReadsRs1() {
			uses[in.Rs1] += w
		}
		if in.Op.ReadsRs2() {
			uses[in.Rs2] += w
		}
	}
	type cand struct {
		r rv32.Reg
		n int
	}
	var cands []cand
	for r := rv32.Reg(1); r < rv32.NumRegs; r++ { // x0 is pinned to T0
		if uses[r] > 0 {
			cands = append(cands, cand{r, uses[r]})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].n > cands[j].n })

	a := &allocation{direct: map[rv32.Reg]isa.Reg{}, slot: map[rv32.Reg]int{}}
	next := isa.Reg(1)
	for _, c := range cands {
		if int(next) <= numDirect {
			a.direct[c.r] = next
			next++
			continue
		}
		// Spill: cheap window first, then the overflow area.
		k := len(a.slot)
		if k < len(cheapSpillSlots) {
			a.slot[c.r] = cheapSpillSlots[k]
		} else {
			a.slot[c.r] = farBase - (k - len(cheapSpillSlots))
		}
	}
	return a
}

// isDirect reports whether rv lives in a GPTR (including x0 → T0).
func (a *allocation) isDirect(rv rv32.Reg) (isa.Reg, bool) {
	if rv == 0 {
		return regZero, true
	}
	r, ok := a.direct[rv]
	return r, ok
}

// slotOf returns the spill slot address of rv.
func (a *allocation) slotOf(rv rv32.Reg) int {
	s, ok := a.slot[rv]
	if !ok {
		panic(fmt.Sprintf("xlate: register %v has no location", rv))
	}
	return s
}

// cheap reports whether a slot is inside the T0 load/store window.
func cheapSlot(s int) bool { return s >= -13 && s <= 13 }

// read makes the value of rv available in a GPTR: either its direct home
// or the given scratch register, emitting spill loads as needed.
func (t *translator) read(rv rv32.Reg, scratch isa.Reg) isa.Reg {
	if r, ok := t.alloc.isDirect(rv); ok {
		return r
	}
	s := t.alloc.slotOf(rv)
	if cheapSlot(s) {
		t.mem("LOAD", scratch, regZero, s)
		return scratch
	}
	t.ldi(scratch, s)
	t.mem("LOAD", scratch, scratch, 0)
	return scratch
}

// writeTarget returns the register a template should compute rv's new value
// into: its direct home, or a scratch that writeBack will spill.
func (t *translator) writeTarget(rv rv32.Reg, scratch isa.Reg) isa.Reg {
	if r, ok := t.alloc.isDirect(rv); ok {
		return r
	}
	return scratch
}

// writeBack completes a write to rv if it is spilled (no-op for direct
// registers; writes to x0 are discarded by emitting nothing — callers
// check for x0 themselves where the whole template can be skipped).
func (t *translator) writeBack(rv rv32.Reg, from isa.Reg) {
	if rv == 0 {
		return
	}
	if _, ok := t.alloc.isDirect(rv); ok {
		return
	}
	s := t.alloc.slotOf(rv)
	if cheapSlot(s) {
		t.mem("STORE", from, regZero, s)
		return
	}
	// Address must go through the other scratch.
	other := scratchA
	if from == scratchA {
		other = scratchB
	}
	t.ldi(other, s)
	t.mem("STORE", from, other, 0)
}

// Location describes where an RV32 register's value lives after
// translation, for the equivalence tests and the CLI's state dump.
type Location struct {
	Direct bool
	Reg    isa.Reg // valid when Direct
	Slot   int     // TDM address when !Direct
}

// RegLocation exposes the allocation for a given RV32 register. The second
// result is false if the register never appeared in the program.
func (o *Output) RegLocation(rv rv32.Reg) (Location, bool) {
	if r, ok := o.alloc.isDirect(rv); ok {
		return Location{Direct: true, Reg: r}, true
	}
	if s, ok := o.alloc.slot[rv]; ok {
		return Location{Slot: s}, true
	}
	return Location{}, false
}

// ReadBack fetches the translated program's value of rv from a finished
// ART-9 machine state.
func (o *Output) ReadBack(s *sim.State, rv rv32.Reg) (int, error) {
	loc, ok := o.RegLocation(rv)
	if !ok {
		return 0, fmt.Errorf("xlate: %v not used by the program", rv)
	}
	if loc.Direct {
		return s.Reg(loc.Reg).Int(), nil
	}
	idx := loc.Slot
	if idx < 0 {
		idx += sim.DefaultMemWords
	}
	w, err := s.TDM.Read(idx)
	if err != nil {
		return 0, err
	}
	return w.Int(), nil
}
