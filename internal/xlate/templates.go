package xlate

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/rv32"
	"repro/internal/ternary"
)

// mapInst is the instruction-mapping phase for one RV32 instruction
// (Fig. 2, "instruction mapping" + "operand conversion"). Each binary
// instruction becomes one ternary instruction or a primitive sequence.
func (t *translator) mapInst(idx int, in rv32.Inst) error {
	if t.skip[idx] {
		return nil
	}
	switch in.Op {
	case rv32.ADD:
		t.binOp("ADD", in.Rd, in.Rs1, in.Rs2)
	case rv32.SUB:
		t.binOp("SUB", in.Rd, in.Rs1, in.Rs2)
	case rv32.AND:
		if in.Rs1 == 0 || in.Rs2 == 0 {
			t.storeConst(in.Rd, 0) // binary and with zero
			return nil
		}
		t.diagf("AND at %d: ternary min (boolean semantics)", idx)
		t.binOp("AND", in.Rd, in.Rs1, in.Rs2)
	case rv32.OR:
		if in.Rs2 == 0 {
			t.move(in.Rd, in.Rs1) // or x,0 == mv
			return nil
		}
		if in.Rs1 == 0 {
			t.move(in.Rd, in.Rs2)
			return nil
		}
		t.diagf("OR at %d: ternary max (boolean semantics)", idx)
		t.binOp("OR", in.Rd, in.Rs1, in.Rs2)
	case rv32.XOR:
		if in.Rs2 == 0 {
			t.move(in.Rd, in.Rs1)
			return nil
		}
		if in.Rs1 == 0 {
			t.move(in.Rd, in.Rs2)
			return nil
		}
		t.diagf("XOR at %d: |a-b| (equality semantics)", idx)
		t.xorDiff(in.Rd, in.Rs1, in.Rs2)

	case rv32.ADDI:
		if in.Rs1 == 0 {
			t.storeConst(in.Rd, int(in.Imm))
			return nil
		}
		t.immOp("ADDI", "ADD", in.Rd, in.Rs1, int(in.Imm))
	case rv32.ANDI:
		t.diagf("ANDI at %d: ternary min (boolean semantics)", idx)
		t.immOp("ANDI", "AND", in.Rd, in.Rs1, int(in.Imm))
	case rv32.ORI:
		if in.Imm == 0 {
			t.move(in.Rd, in.Rs1)
			return nil
		}
		t.diagf("ORI at %d: ternary max (boolean semantics)", idx)
		t.immOp("", "OR", in.Rd, in.Rs1, int(in.Imm))
	case rv32.XORI:
		if in.Imm == 0 {
			t.move(in.Rd, in.Rs1)
			return nil
		}
		t.diagf("XORI at %d: |a-imm| (equality semantics)", idx)
		t.ldi(scratchB, int(in.Imm))
		t.xorDiffReg(in.Rd, in.Rs1)

	case rv32.SLT, rv32.SLTU:
		if in.Op == rv32.SLTU {
			t.diagf("SLTU at %d: signed compare (value contract)", idx)
		}
		b := t.read(in.Rs2, scratchB)
		if b != scratchB {
			t.r2("MV", scratchB, b)
		}
		t.sltCore(in.Rd, in.Rs1)
	case rv32.SLTI, rv32.SLTIU:
		if in.Op == rv32.SLTIU {
			t.diagf("SLTIU at %d: signed compare (value contract)", idx)
		}
		t.ldi(scratchB, int(in.Imm))
		t.sltCore(in.Rd, in.Rs1)

	case rv32.SLLI:
		t.shiftLeftConst(in.Rd, in.Rs1, int(in.Imm), idx)
	case rv32.SRLI, rv32.SRAI:
		if in.Op == rv32.SRLI {
			t.diagf("SRLI at %d: arithmetic shift (value contract)", idx)
		}
		if in.Imm == 0 {
			t.move(in.Rd, in.Rs1)
			return nil
		}
		// Divide by 2^k through the runtime divider.
		if in.Imm > 13 {
			t.diagf("shift %d at %d saturates to 0", in.Imm, idx)
			t.storeConst(in.Rd, 0)
			return nil
		}
		t.ldi(scratchB, 1<<uint(in.Imm))
		t.mem("STORE", scratchB, regZero, rtArgB)
		a := t.read(in.Rs1, scratchA)
		if a != scratchA {
			t.r2("MV", scratchA, a)
		}
		t.callDivmodMode(in.Rd, false, true)
	case rv32.SLL:
		t.diagf("SLL at %d: inline doubling loop", idx)
		t.shiftVar(idx, in, true)
	case rv32.SRL, rv32.SRA:
		t.diagf("%v at %d: inline pow2 + divide", in.Op, idx)
		t.shiftVar(idx, in, false)

	case rv32.LUI:
		// Fold the li idiom (LUI rd, hi; ADDI rd, rd, lo) into one
		// constant when the pair is unbroken by a label. The 20-bit
		// pattern denotes the sign-interpreted 32-bit word it loads.
		v := int64(int32(uint32(in.Imm) << 12))
		if next, ok := t.peek(idx + 1); ok && next.Op == rv32.ADDI &&
			next.Rd == in.Rd && next.Rs1 == in.Rd {
			if _, hasLabel := t.labelAt[idx+1]; !hasLabel {
				v += int64(next.Imm)
				t.skip[idx+1] = true
			}
		}
		t.storeConst(in.Rd, wrapValue(v))
	case rv32.AUIPC:
		return fmt.Errorf("AUIPC is not supported (Harvard layout has no PC-relative data)")

	case rv32.BEQ:
		t.condBranch(idx, in, ternary.Zero, "BEQ")
	case rv32.BNE:
		t.condBranch(idx, in, ternary.Zero, "BNE")
	case rv32.BLT:
		t.condBranch(idx, in, ternary.Neg, "BEQ")
	case rv32.BGE:
		t.condBranch(idx, in, ternary.Neg, "BNE")
	case rv32.BLTU:
		t.diagf("BLTU at %d: signed compare (value contract)", idx)
		t.condBranch(idx, in, ternary.Neg, "BEQ")
	case rv32.BGEU:
		t.diagf("BGEU at %d: signed compare (value contract)", idx)
		t.condBranch(idx, in, ternary.Neg, "BNE")

	case rv32.JAL:
		t.jal(idx, in)
	case rv32.JALR:
		t.jalr(idx, in)

	case rv32.LW, rv32.LB, rv32.LH, rv32.LBU, rv32.LHU:
		if in.Op != rv32.LW {
			t.diagf("%v at %d: word-grain memory (one word per element)", in.Op, idx)
		}
		t.loadWord(in)
	case rv32.SW, rv32.SB, rv32.SH:
		if in.Op != rv32.SW {
			t.diagf("%v at %d: word-grain memory (one word per element)", in.Op, idx)
		}
		t.storeWord(in)

	case rv32.MUL:
		if t.opts.NoInlineMul {
			t.diagf("MUL at %d: trit-serial runtime multiply (9-trit product)", idx)
			t.mulViaRuntime(in)
		} else {
			t.diagf("MUL at %d: inline trit-serial multiply (9-trit product)", idx)
			t.mulInline(idx, in)
		}
	case rv32.MULH, rv32.MULHSU, rv32.MULHU:
		t.diagf("%v at %d: high word is 0 under the value contract", in.Op, idx)
		t.storeConst(in.Rd, 0)
	case rv32.DIV, rv32.DIVU:
		if in.Op == rv32.DIVU {
			t.diagf("DIVU at %d: signed divide (value contract)", idx)
		} else {
			t.diagf("DIV at %d: trit-serial runtime divide", idx)
		}
		t.divRem(in, false)
	case rv32.REM, rv32.REMU:
		if in.Op == rv32.REMU {
			t.diagf("REMU at %d: signed remainder (value contract)", idx)
		} else {
			t.diagf("REM at %d: trit-serial runtime remainder", idx)
		}
		t.divRem(in, true)

	case rv32.FENCE:
		t.diagf("FENCE at %d dropped (single-core TDM)", idx)
	case rv32.ECALL, rv32.EBREAK:
		t.emit(Line{Op: "HALT"})
	default:
		return fmt.Errorf("unmapped opcode %v", in.Op)
	}
	return nil
}

func wrapValue(v int64) int {
	m := v % int64(ternary.WordStates)
	if m > int64(ternary.MaxInt) {
		m -= int64(ternary.WordStates)
	} else if m < int64(ternary.MinInt) {
		m += int64(ternary.WordStates)
	}
	return int(m)
}

func (t *translator) peek(idx int) (rv32.Inst, bool) {
	if idx < len(t.src.Insts) {
		return t.src.Insts[idx], true
	}
	return rv32.Inst{}, false
}

// storeConst sets rd to a constant.
func (t *translator) storeConst(rd rv32.Reg, v int) {
	if rd == 0 {
		return
	}
	d := t.writeTarget(rd, scratchA)
	t.ldi(d, v)
	t.writeBack(rd, d)
}

// move copies rs into rd.
func (t *translator) move(rd, rs rv32.Reg) {
	if rd == 0 || rd == rs {
		return
	}
	d := t.writeTarget(rd, scratchA)
	a := t.read(rs, d)
	if a != d {
		t.r2("MV", d, a)
	}
	t.writeBack(rd, d)
}

// binOp implements rd = rs1 OP rs2 with the two-address conversion.
// Commutative operations with rd == rs2 flip their operands to save the
// copy (part of the Fig. 2 mapping-quality work).
func (t *translator) binOp(op string, rd, rs1, rs2 rv32.Reg) {
	if rd == 0 {
		return
	}
	if rd == rs2 && rd != rs1 && commutative(op) {
		rs1, rs2 = rs2, rs1
	}
	d := t.writeTarget(rd, scratchA)
	b := t.read(rs2, scratchB)
	if b == d && rd != rs1 {
		// d will be overwritten before OP reads b: secure b first.
		t.r2("MV", scratchB, b)
		b = scratchB
	}
	a := t.read(rs1, d)
	if a != d {
		t.r2("MV", d, a)
	}
	t.r2(op, d, b)
	t.writeBack(rd, d)
}

// commutative reports whether the ternary operation is commutative.
func commutative(op string) bool {
	switch op {
	case "ADD", "AND", "OR", "XOR":
		return true
	}
	return false
}

// immOp implements rd = rs1 OP imm, using the I-type form when the
// immediate fits its 3-trit field and synthesising it otherwise. Additive
// immediates slightly beyond the field are cheaper as a short ADDI chain
// than as a full LUI/LI construction.
func (t *translator) immOp(immForm, regForm string, rd, rs1 rv32.Reg, imm int) {
	if rd == 0 {
		return
	}
	if immForm != "" && ternary.FitsTrits(imm, 3) {
		d := t.writeTarget(rd, scratchA)
		a := t.read(rs1, d)
		if a != d {
			t.r2("MV", d, a)
		}
		t.imm(immForm, d, imm)
		t.writeBack(rd, d)
		return
	}
	if immForm == "ADDI" && abs(imm) <= 39 {
		d := t.writeTarget(rd, scratchA)
		a := t.read(rs1, d)
		if a != d {
			t.r2("MV", d, a)
		}
		for imm != 0 {
			step := clamp13(imm)
			t.imm("ADDI", d, step)
			imm -= step
		}
		t.writeBack(rd, d)
		return
	}
	// Wide immediate: build it in scratchB, then the register form.
	t.ldi(scratchB, imm)
	d := t.writeTarget(rd, scratchA)
	a := t.read(rs1, d)
	if a != d {
		t.r2("MV", d, a)
	}
	t.r2(regForm, d, scratchB)
	t.writeBack(rd, d)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// clamp13 returns the largest 3-trit step toward zero from v.
func clamp13(v int) int {
	if v > 13 {
		return 13
	}
	if v < -13 {
		return -13
	}
	return v
}

// memAddr prepares (base register, folded offset) for a LOAD/STORE whose
// RV32 offset may exceed the 3-trit field: a short ADDI chain into scratch
// for mid-range offsets, the full constant construction beyond that. It
// must not clobber avoid (the store-value register).
func (t *translator) memAddr(rs1 rv32.Reg, off int, avoid isa.Reg) (isa.Reg, int) {
	base := t.read(rs1, scratchA)
	if ternary.FitsTrits(off, 3) {
		return base, off
	}
	if base != scratchA {
		t.r2("MV", scratchA, base)
	}
	if abs(off) <= 52 {
		for !ternary.FitsTrits(off, 3) {
			step := clamp13(off)
			t.imm("ADDI", scratchA, step)
			off -= step
		}
		return scratchA, off
	}
	// Far offset: build it in the scratch not holding the store value.
	if avoid == scratchB {
		t.mem("STORE", scratchB, regZero, rtSaveT3)
	}
	t.ldi(scratchB, off)
	t.r2("ADD", scratchA, scratchB)
	if avoid == scratchB {
		t.mem("LOAD", scratchB, regZero, rtSaveT3)
	}
	return scratchA, 0
}

// xorDiff implements the equality-flavoured XOR: rd = |rs1 − rs2|.
func (t *translator) xorDiff(rd, rs1, rs2 rv32.Reg) {
	if rd == 0 {
		return
	}
	b := t.read(rs2, scratchB)
	if b != scratchB {
		t.r2("MV", scratchB, b)
	}
	t.xorDiffReg(rd, rs1)
}

// xorDiffReg finishes |rs1 − scratchB| into rd.
func (t *translator) xorDiffReg(rd, rs1 rv32.Reg) {
	d := t.writeTarget(rd, scratchA)
	a := t.read(rs1, d)
	if a != d {
		t.r2("MV", d, a)
	}
	t.r2("SUB", d, scratchB)
	// |x| = max(x, −x).
	t.r2("STI", scratchB, d)
	t.r2("OR", d, scratchB)
	t.writeBack(rd, d)
}

// sltCore finishes rd = (rs1 < scratchB) as 0/1.
func (t *translator) sltCore(rd, rs1 rv32.Reg) {
	if rd == 0 {
		return
	}
	d := t.writeTarget(rd, scratchA)
	a := t.read(rs1, d)
	if a != d {
		t.r2("MV", d, a)
	}
	t.r2("COMP", d, scratchB) // LST = sign(rs1 − b)
	t.r2("STI", d, d)         // +1 when rs1 < b
	t.r2("OR", d, regZero)    // clamp −1 → 0 (max with zero)
	t.writeBack(rd, d)
}

// shiftLeftConst implements rd = rs1 << k as k doublings (binary shifts
// are powers of two; ternary SLI is a power of three, so the mapping uses
// the additive primitive sequence of §III-A).
func (t *translator) shiftLeftConst(rd, rs1 rv32.Reg, k, idx int) {
	if rd == 0 {
		return
	}
	if k == 0 {
		t.move(rd, rs1)
		return
	}
	if k > 13 {
		t.diagf("shift %d at %d saturates to 0", k, idx)
		t.storeConst(rd, 0)
		return
	}
	d := t.writeTarget(rd, scratchA)
	a := t.read(rs1, d)
	if a != d {
		t.r2("MV", d, a)
	}
	for i := 0; i < k; i++ {
		t.r2("ADD", d, d)
	}
	t.writeBack(rd, d)
}

// condBranch maps an RV32 conditional branch: COMP into scratchA, then a
// ternary branch on the comparison trit. Comparisons against x0 of a
// value provably in {−1, 0, +1} branch on the LST directly — for such
// values sign(x) equals the least significant trit, so the COMP sequence
// collapses to the one-instruction ternary branch.
func (t *translator) condBranch(idx int, in rv32.Inst, b ternary.Trit, op string) {
	target := t.targetLabel(idx, in)
	if in.Rs2 == 0 && t.boolReg[in.Rs1] {
		rb := t.read(in.Rs1, scratchA)
		t.branch(op, rb, b, target)
		return
	}
	if in.Rs1 == 0 && t.boolReg[in.Rs2] {
		// sign(0 − x) = −LST(x) for small x.
		rb := t.read(in.Rs2, scratchA)
		t.branch(op, rb, -b, target)
		return
	}
	rb := t.read(in.Rs2, scratchB)
	a := t.read(in.Rs1, scratchA)
	if a != scratchA {
		t.r2("MV", scratchA, a)
	}
	t.r2("COMP", scratchA, rb)
	t.branch(op, scratchA, b, target)
}

// jal maps JAL rd, target.
func (t *translator) jal(idx int, in rv32.Inst) {
	target := t.targetLabel(idx, in)
	if in.Rd == 0 {
		t.emit(Line{Op: "JAL", Ta: scratchB, HasTa: true, Target: target})
		return
	}
	if d, ok := t.alloc.isDirect(in.Rd); ok {
		t.emit(Line{Op: "JAL", Ta: d, HasTa: true, Target: target})
		return
	}
	// Spilled link register: materialise the return address first (the
	// store after a JAL would never execute).
	ret := fmt.Sprintf("R%d", idx)
	t.emit(Line{Op: "LDA", Ta: scratchB, HasTa: true, Target: ret})
	t.writeBack(in.Rd, scratchB)
	t.emit(Line{Op: "JAL", Ta: scratchB, HasTa: true, Target: target})
	t.label(ret)
}

// jalr maps JALR rd, rs1, imm.
func (t *translator) jalr(idx int, in rv32.Inst) {
	a := t.read(in.Rs1, scratchA)
	off := int(in.Imm)
	if !ternary.FitsTrits(off, 3) {
		if a != scratchA {
			t.r2("MV", scratchA, a)
			a = scratchA
		}
		t.ldi(scratchB, off)
		t.r2("ADD", scratchA, scratchB)
		off = 0
	}
	link := scratchB
	if in.Rd != 0 {
		if d, ok := t.alloc.isDirect(in.Rd); ok {
			link = d
		} else {
			ret := fmt.Sprintf("R%d", idx)
			t.emit(Line{Op: "LDA", Ta: scratchB, HasTa: true, Target: ret})
			t.writeBack(in.Rd, scratchB)
			t.mem("JALR", scratchB, a, off)
			t.label(ret)
			return
		}
	}
	t.mem("JALR", link, a, off)
}

// loadWord maps LW-family: RV32 byte addresses are used directly as TDM
// word addresses (each RV32 word element occupies one TDM word at the same
// numeric address; see the value contract).
func (t *translator) loadWord(in rv32.Inst) {
	if in.Rd == 0 {
		return
	}
	base, off := t.memAddr(in.Rs1, int(in.Imm), 0)
	d := t.writeTarget(in.Rd, scratchB)
	t.mem("LOAD", d, base, off)
	t.writeBack(in.Rd, d)
}

// storeWord maps SW-family.
func (t *translator) storeWord(in rv32.Inst) {
	v := t.read(in.Rs2, scratchB)
	base, off := t.memAddr(in.Rs1, int(in.Imm), v)
	t.mem("STORE", v, base, off)
}

// divRem maps DIV/REM through the runtime divider.
func (t *translator) divRem(in rv32.Inst, wantRem bool) {
	if in.Rd == 0 {
		return
	}
	b := t.read(in.Rs2, scratchB)
	t.mem("STORE", b, regZero, rtArgB)
	a := t.read(in.Rs1, scratchA)
	if a != scratchA {
		t.r2("MV", scratchA, a)
	}
	t.callDivmod(in.Rd, wantRem)
}

// callDivmod emits the runtime call and the result writeback. The quotient
// returns in T7, the remainder in slot rtArgB.
func (t *translator) callDivmod(rd rv32.Reg, wantRem bool) {
	t.callDivmodMode(rd, wantRem, false)
}

// callDivmodMode additionally supports floor rounding: arithmetic right
// shifts are floor division while RISC-V DIV truncates toward zero, so the
// shift path corrects the quotient when the remainder is negative (the
// divisor, a power of two, is always positive).
func (t *translator) callDivmodMode(rd rv32.Reg, wantRem, floor bool) {
	t.needDiv = true
	t.emit(Line{Op: "JAL", Ta: scratchB, HasTa: true, Target: "__t9_divmod"})
	if floor {
		t.mem("LOAD", scratchB, regZero, rtArgB)
		t.r2("COMP", scratchB, regZero)
		t.emit(Line{Op: "BNE", Tb: scratchB, HasTb: true, B: -1, Imm: 2})
		t.imm("ADDI", scratchA, -1)
	}
	src := scratchA // quotient lands in T7 == scratchA
	if wantRem {
		t.mem("LOAD", scratchA, regZero, rtArgB)
	}
	d := t.writeTarget(rd, src)
	if d != src {
		t.r2("MV", d, src)
	}
	t.writeBack(rd, d)
}

// mulViaRuntime maps MUL as a call to the shared trit-serial multiplier.
func (t *translator) mulViaRuntime(in rv32.Inst) {
	if in.Rd == 0 {
		return
	}
	b := t.read(in.Rs2, scratchB)
	t.mem("STORE", b, regZero, rtArgB)
	a := t.read(in.Rs1, scratchA)
	if a != scratchA {
		t.r2("MV", scratchA, a)
	}
	t.needMul = true
	t.emit(Line{Op: "JAL", Ta: scratchB, HasTa: true, Target: "__t9_mul"})
	d := t.writeTarget(in.Rd, scratchA)
	if d != scratchA {
		t.r2("MV", d, scratchA)
	}
	t.writeBack(in.Rd, d)
}

// mulInline expands MUL into an in-line early-exit trit-serial shift-add
// loop (the mapping-quality optimisation; ~25 cycles for single-trit
// multipliers instead of a call).
func (t *translator) mulInline(idx int, in rv32.Inst) {
	if in.Rd == 0 {
		return
	}
	b := t.read(in.Rs2, scratchB)
	if b != scratchB {
		t.r2("MV", scratchB, b)
	}
	a := t.read(in.Rs1, scratchA)
	if a != scratchA {
		t.r2("MV", scratchA, a)
	}
	lbl := func(s string) string { return fmt.Sprintf("M%d_%s", idx, s) }
	// Borrow T5 (accumulator) and T6 (temp); save to runtime slots.
	t.mem("STORE", isa.Reg(5), regZero, rtSaveT5)
	t.mem("STORE", isa.Reg(6), regZero, rtSaveT6)
	t.ldi(isa.Reg(5), 0)
	t.label(lbl("loop"))
	t.r2("MV", isa.Reg(6), scratchB)
	t.r2("COMP", isa.Reg(6), regZero)
	t.branch("BEQ", isa.Reg(6), ternary.Zero, lbl("done")) // multiplier exhausted
	// Extract the least significant trit of B.
	t.r2("MV", isa.Reg(6), scratchB)
	t.imm("SRI", scratchB, 1)
	t.mem("STORE", scratchB, regZero, rtSaveT3) // stash B>>1
	t.imm("SLI", scratchB, 1)
	t.r2("SUB", isa.Reg(6), scratchB) // LST(B)
	t.mem("LOAD", scratchB, regZero, rtSaveT3)
	t.branch("BNE", isa.Reg(6), ternary.Pos, lbl("n1"))
	t.r2("ADD", isa.Reg(5), scratchA)
	t.emit(Line{Op: "JAL", Ta: isa.Reg(6), HasTa: true, Target: lbl("next")})
	t.label(lbl("n1"))
	t.branch("BNE", isa.Reg(6), ternary.Neg, lbl("next"))
	t.r2("SUB", isa.Reg(5), scratchA)
	t.label(lbl("next"))
	t.imm("SLI", scratchA, 1) // A *= 3
	t.emit(Line{Op: "JAL", Ta: isa.Reg(6), HasTa: true, Target: lbl("loop")})
	t.label(lbl("done"))
	t.r2("MV", scratchA, isa.Reg(5))
	t.mem("LOAD", isa.Reg(5), regZero, rtSaveT5)
	t.mem("LOAD", isa.Reg(6), regZero, rtSaveT6)
	d := t.writeTarget(in.Rd, scratchA)
	if d != scratchA {
		t.r2("MV", d, scratchA)
	}
	t.writeBack(in.Rd, d)
}

// shiftVar maps variable shifts with an in-line loop: left shifts double
// rs1 rs2-times; right shifts build 2^rs2 and divide.
func (t *translator) shiftVar(idx int, in rv32.Inst, left bool) {
	if in.Rd == 0 {
		return
	}
	b := t.read(in.Rs2, scratchB)
	if b != scratchB {
		t.r2("MV", scratchB, b)
	}
	a := t.read(in.Rs1, scratchA)
	if a != scratchA {
		t.r2("MV", scratchA, a)
	}
	lbl := func(s string) string { return fmt.Sprintf("S%d_%s", idx, s) }
	t.mem("STORE", isa.Reg(6), regZero, rtSaveT6)
	if !left {
		// Park the operand; build P = 2^k in scratchA.
		t.mem("STORE", scratchA, regZero, rtSaveT5)
		t.ldi(scratchA, 1)
	}
	t.label(lbl("loop"))
	t.r2("MV", isa.Reg(6), scratchB)
	t.r2("COMP", isa.Reg(6), regZero)
	t.branch("BNE", isa.Reg(6), ternary.Pos, lbl("done")) // k <= 0 → stop
	t.r2("ADD", scratchA, scratchA)                       // double
	t.imm("ADDI", scratchB, -1)
	t.emit(Line{Op: "JAL", Ta: isa.Reg(6), HasTa: true, Target: lbl("loop")})
	t.label(lbl("done"))
	t.mem("LOAD", isa.Reg(6), regZero, rtSaveT6)
	if !left {
		// scratchA = 2^k → divisor; operand back to scratchA.
		t.mem("STORE", scratchA, regZero, rtArgB)
		t.mem("LOAD", scratchA, regZero, rtSaveT5)
		t.callDivmodMode(in.Rd, false, true)
		return
	}
	d := t.writeTarget(in.Rd, scratchA)
	if d != scratchA {
		t.r2("MV", d, scratchA)
	}
	t.writeBack(in.Rd, d)
}
