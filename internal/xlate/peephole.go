package xlate

import "repro/internal/isa"

// The redundancy-checking phase of Fig. 2: the mapping and conversion
// phases emit conservatively (copies for two-address form, spill traffic,
// rebuilt constants); this pass deletes the duplicated operations. Branch
// targets survive deletion because Lines carry them symbolically — the
// ART-9 assembler recomputes every offset afterwards, which is the
// "re-calculates the branch target addresses" step of §III-A.

// lineWrites returns the register a line writes, if any.
func lineWrites(l Line) (isa.Reg, bool) {
	switch l.Op {
	case "MV", "PTI", "NTI", "STI", "AND", "OR", "XOR", "ADD", "SUB",
		"SR", "SL", "COMP", "ANDI", "ADDI", "SRI", "SLI", "LUI", "LI",
		"LDI", "LDA", "LOAD", "JAL", "JALR":
		return l.Ta, true
	}
	return 0, false
}

// lineReads returns the registers a line reads.
func lineReads(l Line) []isa.Reg {
	switch l.Op {
	case "MV", "PTI", "NTI", "STI":
		return []isa.Reg{l.Tb}
	case "AND", "OR", "XOR", "ADD", "SUB", "SR", "SL", "COMP":
		return []isa.Reg{l.Ta, l.Tb}
	case "ANDI", "ADDI", "SRI", "SLI", "LI":
		return []isa.Reg{l.Ta}
	case "BEQ", "BNE", "JALR", "LOAD":
		return []isa.Reg{l.Tb}
	case "STORE":
		return []isa.Reg{l.Ta, l.Tb}
	}
	return nil
}

// isControl reports whether a line can transfer control.
func isControl(l Line) bool {
	switch l.Op {
	case "JAL", "JALR", "BEQ", "BNE", "HALT":
		return true
	}
	return false
}

// isPureWrite reports whether a line only writes its Ta (safe to delete
// when the value is dead).
func isPureWrite(l Line) bool {
	switch l.Op {
	case "LDI", "LUI", "LDA", "MV":
		return true
	}
	return false
}

// isIdentity reports whether a line provably changes nothing: MV x,x;
// ADDI/SLI/SRI x,0; ADD/SUB x,T0 (T0 holds zero by ABI and is never
// rewritten after the prologue).
func isIdentity(l Line) bool {
	switch l.Op {
	case "MV":
		return l.Ta == l.Tb
	case "ADDI", "SLI", "SRI":
		return l.Imm == 0
	case "ADD", "SUB":
		return l.Tb == regZero
	}
	return false
}

// peephole runs the redundancy checker to a fixed point, returning the
// cleaned lines and the number of instructions removed.
func peephole(lines []Line) ([]Line, int) {
	removed := 0
	for {
		n := 0
		lines, n = peepholeOnce(lines)
		removed += n
		if n == 0 {
			return lines, removed
		}
	}
}

func peepholeOnce(lines []Line) ([]Line, int) {
	removed := 0
	// drop turns line i into a label-only placeholder, preserving any
	// label bound to it.
	drop := func(i int) {
		lines[i] = Line{Label: lines[i].Label}
		removed++
	}
	for i := 0; i < len(lines); i++ {
		l := lines[i]
		if l.Op == "" {
			continue
		}
		// The prologue LDI T0, 0 establishes the ABI zero; never touch
		// writes to T0 (there is exactly one).
		if w, ok := lineWrites(l); ok && w == regZero && l.Op == "LDI" {
			continue
		}

		// Rule 1/2: provable identities.
		if isIdentity(l) {
			drop(i)
			continue
		}

		// Rule 3: spill store immediately reloaded.
		if l.Op == "STORE" && l.Tb == regZero {
			if j := nextOp(lines, i); j >= 0 && lines[j].Label == "" {
				n := lines[j]
				if n.Op == "LOAD" && n.Tb == regZero && n.Imm == l.Imm {
					if n.Ta == l.Ta {
						drop(j)
					} else {
						lines[j] = Line{Op: "MV", Ta: n.Ta, HasTa: true, Tb: l.Ta, HasTb: true}
					}
					continue
				}
			}
		}

		// Rule 4: dead pure writes — the value is overwritten before
		// any read, with no barrier in between.
		if isPureWrite(l) {
			if w, ok := lineWrites(l); ok && deadBefore(lines, i+1, w) {
				drop(i)
				continue
			}
		}

		// Rule 5: duplicate constant load — an identical LDI with no
		// intervening write/barrier.
		if l.Op == "LDI" {
			for j := i + 1; j < len(lines); j++ {
				n := lines[j]
				if n.Op == "" && n.Label == "" {
					continue
				}
				if n.Label != "" || isControl(n) {
					break
				}
				if w, ok := lineWrites(n); ok && w == l.Ta {
					if n.Op == "LDI" && n.Imm == l.Imm {
						// Same value rebuilt: the second is redundant
						// only if nothing read-modified it, which the
						// write check guarantees.
						lines[j] = Line{Label: n.Label}
						removed++
					}
					break
				}
			}
		}
	}
	// Compact label-only placeholders into their successors where the
	// successor has no label of its own.
	var out []Line
	for i := 0; i < len(lines); i++ {
		l := lines[i]
		if l.Op == "" && l.Label == "" {
			continue
		}
		out = append(out, l)
	}
	return out, removed
}

// nextOp returns the next index holding a real instruction, or −1.
func nextOp(lines []Line, i int) int {
	for j := i + 1; j < len(lines); j++ {
		if lines[j].Op != "" {
			return j
		}
		if lines[j].Label != "" {
			return -1 // label-only line is a barrier
		}
	}
	return -1
}

// deadBefore reports whether register r is overwritten before any read,
// label or control transfer from index i on.
func deadBefore(lines []Line, i int, r isa.Reg) bool {
	for j := i; j < len(lines); j++ {
		l := lines[j]
		if l.Label != "" || isControl(l) {
			return false
		}
		if l.Op == "" {
			continue
		}
		for _, rd := range lineReads(l) {
			if rd == r {
				return false
			}
		}
		if w, ok := lineWrites(l); ok && w == r {
			return true
		}
	}
	return false
}
