package xlate

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/rv32"
	"repro/internal/sim"
)

// runEquiv assembles and runs src on the RV32 machine, translates it, runs
// the ART-9 result on both the functional and pipelined cores, and returns
// everything for comparison.
type equivRun struct {
	rv   *rv32.Machine
	out  *Output
	fn   *sim.Functional
	pipe *sim.Pipeline
	fres sim.Result
	pres sim.Result
}

func runEquiv(t *testing.T, src string, opts Options) *equivRun {
	t.Helper()
	rvProg, err := rv32.Assemble(src)
	if err != nil {
		t.Fatalf("rv32 assemble: %v", err)
	}
	m := rv32.NewMachine(1 << 16)
	if err := m.Load(rvProg); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("rv32 run: %v", err)
	}

	out, err := Translate(rvProg, opts)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	artProg, err := asm.Assemble(out.Asm)
	if err != nil {
		t.Fatalf("art9 assemble: %v\n--- generated ---\n%s", err, out.Asm)
	}
	data := DataImage(rvProg)

	fn := sim.NewFunctional(sim.Config{})
	if err := fn.S.Load(artProg); err != nil {
		t.Fatal(err)
	}
	if err := fn.S.TDM.SetAll(data); err != nil {
		t.Fatal(err)
	}
	fres, err := fn.Run()
	if err != nil {
		t.Fatalf("art9 functional run: %v\n--- generated ---\n%s", err, out.Asm)
	}

	pipe := sim.NewPipeline(sim.Config{})
	if err := pipe.S.Load(artProg); err != nil {
		t.Fatal(err)
	}
	if err := pipe.S.TDM.SetAll(data); err != nil {
		t.Fatal(err)
	}
	pres, err := pipe.Run()
	if err != nil {
		t.Fatalf("art9 pipeline run: %v", err)
	}
	return &equivRun{rv: m, out: out, fn: fn, pipe: pipe, fres: fres, pres: pres}
}

// checkReg asserts that the translated program computed the same value for
// an RV32 register, on both cores.
func (e *equivRun) checkReg(t *testing.T, name string, r rv32.Reg) {
	t.Helper()
	want := int(int32(e.rv.Reg(r)))
	got, err := e.out.ReadBack(e.fn.S, r)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if got != want {
		t.Errorf("%s: functional %v = %d, rv32 = %d", name, r, got, want)
	}
	got, err = e.out.ReadBack(e.pipe.S, r)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if got != want {
		t.Errorf("%s: pipelined %v = %d, rv32 = %d", name, r, got, want)
	}
}

// checkMem asserts that the RV32 word at byte address a equals TDM[a].
func (e *equivRun) checkMem(t *testing.T, name string, a int) {
	t.Helper()
	want := int(int32(uint32(e.rv.RAM[a]) | uint32(e.rv.RAM[a+1])<<8 |
		uint32(e.rv.RAM[a+2])<<16 | uint32(e.rv.RAM[a+3])<<24))
	w, err := e.fn.S.TDM.Read(a)
	if err != nil {
		t.Fatal(err)
	}
	if w.Int() != want {
		t.Errorf("%s: TDM[%d] = %d, rv32 RAM = %d", name, a, w.Int(), want)
	}
}

func TestTranslateArithmetic(t *testing.T) {
	e := runEquiv(t, `
		li a0, 1234
		li a1, -567
		add a2, a0, a1
		sub a3, a0, a1
		add a4, a2, a3
		neg a5, a4
		ebreak
	`, Options{})
	for r := rv32.Reg(10); r <= 15; r++ {
		e.checkReg(t, "arith", r)
	}
}

func TestTranslateWideConstants(t *testing.T) {
	e := runEquiv(t, `
		li a0, 9000
		li a1, -9841
		li a2, 13
		add a3, a0, a2
		ebreak
	`, Options{})
	for r := rv32.Reg(10); r <= 13; r++ {
		e.checkReg(t, "const", r)
	}
}

func TestTranslateCompare(t *testing.T) {
	e := runEquiv(t, `
		li a0, 5
		li a1, 9
		slt t0, a0, a1    # 1
		slt t1, a1, a0    # 0
		slt t2, a0, a0    # 0
		slti t3, a0, 6    # 1
		slti t4, a0, -6   # 0
		ebreak
	`, Options{})
	for _, r := range []rv32.Reg{5, 6, 7, 28, 29} {
		e.checkReg(t, "slt", r)
	}
}

func TestTranslateBranches(t *testing.T) {
	src := `
		li a0, %d
		li a1, %d
		li a2, 0
		li a3, 0
		li a4, 0
		beq a0, a1, eq
		li a2, 1
	eq:	blt a0, a1, lt
		li a3, 1
	lt:	bge a0, a1, ge
		li a4, 1
	ge:	ebreak
	`
	for _, pair := range [][2]int{{3, 7}, {7, 3}, {5, 5}, {-4, 4}, {-9, -9}} {
		e := runEquiv(t, fmt.Sprintf(src, pair[0], pair[1]), Options{})
		for _, r := range []rv32.Reg{12, 13, 14} {
			e.checkReg(t, fmt.Sprintf("branch(%d,%d)", pair[0], pair[1]), r)
		}
	}
}

func TestTranslateLoop(t *testing.T) {
	e := runEquiv(t, `
		li a0, 0
		li a1, 1
		li a2, 25
	loop:
		add a0, a0, a1
		addi a1, a1, 1
		ble a1, a2, loop
		ebreak
	`, Options{})
	e.checkReg(t, "loop-sum", 10) // 325
}

func TestTranslateMemory(t *testing.T) {
	e := runEquiv(t, `
		.data
	vec:	.word 10, -20, 30, -40
	dst:	.word 0, 0
		.text
		la t0, vec
		lw a0, 0(t0)
		lw a1, 4(t0)
		lw a2, 8(t0)
		lw a3, 12(t0)
		add a4, a0, a1
		add a4, a4, a2
		add a4, a4, a3
		la t1, dst
		sw a4, 0(t1)
		sw a0, 4(t1)
		ebreak
	`, Options{})
	for r := rv32.Reg(10); r <= 14; r++ {
		e.checkReg(t, "mem", r)
	}
	e.checkMem(t, "dst", 16)
	e.checkMem(t, "dst+4", 20)
}

func TestTranslateCallReturn(t *testing.T) {
	e := runEquiv(t, `
		li a0, 11
		call triple
		call triple
		ebreak
	triple:
		add t0, a0, a0
		add a0, t0, a0
		ret
	`, Options{})
	e.checkReg(t, "call", 10) // 99
}

func TestTranslateMulInline(t *testing.T) {
	cases := [][2]int{{7, 9}, {-7, 9}, {7, -9}, {-7, -9}, {0, 5}, {5, 0},
		{1, -1}, {99, 99}, {-99, 99}, {13, 121}}
	for _, c := range cases {
		e := runEquiv(t, fmt.Sprintf(`
			li a0, %d
			li a1, %d
			mul a2, a0, a1
			ebreak
		`, c[0], c[1]), Options{})
		e.checkReg(t, fmt.Sprintf("mul(%d,%d)", c[0], c[1]), 12)
	}
}

func TestTranslateMulRuntime(t *testing.T) {
	for _, c := range [][2]int{{7, 9}, {-37, 41}, {0, 3}, {-1, -1}} {
		e := runEquiv(t, fmt.Sprintf(`
			li a0, %d
			li a1, %d
			mul a2, a0, a1
			mul a3, a1, a0
			ebreak
		`, c[0], c[1]), Options{NoInlineMul: true})
		e.checkReg(t, "mul-rt", 12)
		e.checkReg(t, "mul-rt-comm", 13)
	}
}

func TestTranslateDivRem(t *testing.T) {
	cases := [][2]int{{100, 7}, {-100, 7}, {100, -7}, {-100, -7},
		{7, 100}, {0, 5}, {9841, 3}, {6561, 81}, {5, 5}, {44, 2}}
	for _, c := range cases {
		e := runEquiv(t, fmt.Sprintf(`
			li a0, %d
			li a1, %d
			div a2, a0, a1
			rem a3, a0, a1
			ebreak
		`, c[0], c[1]), Options{})
		e.checkReg(t, fmt.Sprintf("div(%d,%d)", c[0], c[1]), 12)
		e.checkReg(t, fmt.Sprintf("rem(%d,%d)", c[0], c[1]), 13)
	}
}

func TestTranslateDivByZero(t *testing.T) {
	// RISC-V semantics: q = −1, r = dividend.
	e := runEquiv(t, `
		li a0, 42
		li a1, 0
		div a2, a0, a1
		rem a3, a0, a1
		ebreak
	`, Options{})
	e.checkReg(t, "div0-q", 12)
	e.checkReg(t, "div0-r", 13)
}

func TestTranslateShifts(t *testing.T) {
	e := runEquiv(t, `
		li a0, 3
		slli a1, a0, 4     # 48
		li a2, 100
		srai a3, a2, 2     # 25
		li a4, 2
		sll a5, a0, a4     # 12
		srl a6, a2, a4     # 25
		ebreak
	`, Options{})
	for _, r := range []rv32.Reg{11, 13, 15, 16} {
		e.checkReg(t, "shift", r)
	}
}

func TestTranslateXorEquality(t *testing.T) {
	// XOR in its equality role: xor + seqz/snez.
	e := runEquiv(t, `
		li a0, 77
		li a1, 77
		li a2, 78
		xor t0, a0, a1
		seqz t1, t0       # equal → 1
		xor t2, a0, a2
		snez t3, t2       # different → 1
		ebreak
	`, Options{})
	for _, r := range []rv32.Reg{6, 28} {
		e.checkReg(t, "xor-eq", r)
	}
}

func TestTranslateBooleanOps(t *testing.T) {
	e := runEquiv(t, `
		li a0, 1
		li a1, 0
		and t0, a0, a1
		or  t1, a0, a1
		and t2, a0, a0
		or  t3, a1, a1
		ebreak
	`, Options{})
	for _, r := range []rv32.Reg{5, 6, 7, 28} {
		e.checkReg(t, "bool", r)
	}
}

func TestTranslateSpills(t *testing.T) {
	// Use more than 6 registers so renaming must spill (Fig. 2 operand
	// conversion / register renaming).
	var b strings.Builder
	regs := []string{"a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
		"s2", "s3", "s4", "s5", "t0", "t1"}
	for i, r := range regs {
		fmt.Fprintf(&b, "li %s, %d\n", r, (i+1)*7)
	}
	// Mix them so every one is read again.
	for i := 1; i < len(regs); i++ {
		fmt.Fprintf(&b, "add %s, %s, %s\n", regs[i], regs[i], regs[i-1])
	}
	b.WriteString("ebreak\n")
	e := runEquiv(t, b.String(), Options{})
	for _, r := range []rv32.Reg{10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 5, 6} {
		e.checkReg(t, "spill", r)
	}
	// The allocation must actually contain spills.
	spilled := 0
	for r := rv32.Reg(1); r < rv32.NumRegs; r++ {
		if loc, ok := e.out.RegLocation(r); ok && !loc.Direct {
			spilled++
		}
	}
	if spilled == 0 {
		t.Error("no registers were spilled despite pressure")
	}
}

func TestTranslateSpilledLink(t *testing.T) {
	// Force the link register to spill by making 7 other registers
	// hotter, then call through it.
	var b strings.Builder
	for i := 0; i < 10; i++ {
		for j, r := range []string{"a0", "a1", "a2", "a3", "a4", "a5", "a6"} {
			fmt.Fprintf(&b, "addi %s, %s, %d\n", r, r, j+1)
		}
	}
	b.WriteString(`
		call bump
		call bump
		ebreak
	bump:	addi a0, a0, 100
		ret
	`)
	e := runEquiv(t, b.String(), Options{})
	e.checkReg(t, "spilled-link", 10)
	if loc, ok := e.out.RegLocation(1); !ok || loc.Direct {
		t.Skip("ra happened to stay direct; pressure heuristic changed")
	}
}

func TestPipelineAgreesWithFunctionalOnTranslated(t *testing.T) {
	// The three-way agreement on a nontrivial program.
	e := runEquiv(t, `
		.data
	arr:	.word 5, 1, 4, 2, 3
		.text
		la s0, arr
		li s1, 0          # i
		li s2, 4          # n-1
		li a0, 0          # checksum
	outer:
		lw t0, 0(s0)
		add a0, a0, t0
		mul a0, a0, t0
		addi s0, s0, 4
		addi s1, s1, 1
		ble s1, s2, outer
		ebreak
	`, Options{})
	e.checkReg(t, "3way", 10)
	if e.fres.Retired != e.pres.Retired {
		t.Errorf("retired mismatch: %d vs %d", e.fres.Retired, e.pres.Retired)
	}
}

func TestTranslateRandomALUPrograms(t *testing.T) {
	// Random straight-line programs over the value-contract-safe subset.
	rng := rand.New(rand.NewSource(99))
	regs := []string{"a0", "a1", "a2", "a3", "t0", "t1", "s2", "s3", "s4"}
	for trial := 0; trial < 30; trial++ {
		var b strings.Builder
		for _, r := range regs {
			fmt.Fprintf(&b, "li %s, %d\n", r, rng.Intn(201)-100)
		}
		for i := 0; i < 30; i++ {
			d := regs[rng.Intn(len(regs))]
			s1 := regs[rng.Intn(len(regs))]
			s2 := regs[rng.Intn(len(regs))]
			switch rng.Intn(5) {
			case 0:
				fmt.Fprintf(&b, "add %s, %s, %s\n", d, s1, s2)
			case 1:
				fmt.Fprintf(&b, "sub %s, %s, %s\n", d, s1, s2)
			case 2:
				fmt.Fprintf(&b, "addi %s, %s, %d\n", d, s1, rng.Intn(21)-10)
			case 3:
				fmt.Fprintf(&b, "slt %s, %s, %s\n", d, s1, s2)
			case 4:
				fmt.Fprintf(&b, "sub %s, %s, %s\nsrai %s, %s, 1\n", d, s1, s2, d, d)
			}
		}
		b.WriteString("ebreak\n")
		e := runEquiv(t, b.String(), Options{})
		for _, rn := range regs {
			r, _ := rv32.ParseReg(rn)
			e.checkReg(t, fmt.Sprintf("rand-%d", trial), r)
		}
	}
}

func TestPeepholeRemovesRedundancy(t *testing.T) {
	src := `
		li a0, 5
		mv a1, a0
		mv a2, a1
		addi a3, a2, 0
		ebreak
	`
	rvProg, err := rv32.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	with, err := Translate(rvProg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Translate(rvProg, Options{NoPeephole: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Removed == 0 {
		t.Error("peephole removed nothing from a redundancy-rich program")
	}
	if len(with.Lines) >= len(without.Lines) {
		t.Errorf("peephole did not shrink: %d vs %d lines", len(with.Lines), len(without.Lines))
	}
	// And of course both must still be correct.
	e := runEquiv(t, src, Options{})
	for _, r := range []rv32.Reg{10, 11, 12, 13} {
		e.checkReg(t, "peep", r)
	}
}

func TestTranslateDiagnostics(t *testing.T) {
	rvProg, err := rv32.Assemble(`
		li a0, 1
		li a1, 1
		xor a2, a0, a1
		and a3, a0, a1
		sltu a4, a0, a1
		ebreak
	`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Translate(rvProg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(out.Diagnostics, "\n")
	for _, want := range []string{"XOR", "AND", "SLTU"} {
		if !strings.Contains(joined, want) {
			t.Errorf("diagnostics missing %s: %v", want, out.Diagnostics)
		}
	}
}

func TestTranslateAUIPCUnsupported(t *testing.T) {
	rvProg, err := rv32.Assemble("auipc a0, 1\nebreak")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Translate(rvProg, Options{}); err == nil {
		t.Error("AUIPC translated without error")
	}
}

func TestGeneratedAsmMentionsFramework(t *testing.T) {
	rvProg, _ := rv32.Assemble("li a0, 1\nebreak")
	out, err := Translate(rvProg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Asm, "compiling framework") {
		t.Error("generated header missing")
	}
}
