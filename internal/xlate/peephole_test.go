package xlate

import (
	"testing"

	"repro/internal/isa"
)

// l is a shorthand Line builder for peephole unit tests.
func rl(op string, ta, tb isa.Reg) Line {
	return Line{Op: op, Ta: ta, HasTa: true, Tb: tb, HasTb: true}
}

func il(op string, ta isa.Reg, imm int) Line {
	return Line{Op: op, Ta: ta, HasTa: true, Imm: imm}
}

func ml(op string, ta, tb isa.Reg, imm int) Line {
	return Line{Op: op, Ta: ta, HasTa: true, Tb: tb, HasTb: true, Imm: imm}
}

func countOps(lines []Line) int {
	n := 0
	for _, l := range lines {
		if l.Op != "" {
			n++
		}
	}
	return n
}

func TestPeepholeIdentities(t *testing.T) {
	in := []Line{
		rl("MV", 1, 1),   // removed
		il("ADDI", 2, 0), // removed
		il("SLI", 3, 0),  // removed
		rl("ADD", 4, 0),  // ADD x, T0: removed
		rl("SUB", 5, 0),  // removed
		rl("MV", 1, 2),   // kept
		il("ADDI", 2, 1), // kept
		rl("OR", 4, 0),   // OR with T0 is max(x,0) — MUST be kept
	}
	out, removed := peephole(in)
	if removed != 5 {
		t.Errorf("removed %d, want 5", removed)
	}
	if countOps(out) != 3 {
		t.Errorf("%d ops left, want 3: %v", countOps(out), out)
	}
	for _, l := range out {
		if l.Op == "OR" {
			return
		}
	}
	t.Error("OR x, T0 was wrongly removed (not an identity in balanced ternary)")
}

func TestPeepholeSpillReload(t *testing.T) {
	// STORE then immediate LOAD of the same slot → MV (or dropped).
	in := []Line{
		ml("STORE", 3, 0, -9),
		ml("LOAD", 4, 0, -9),
	}
	out, _ := peephole(in)
	if countOps(out) != 2 || out[1].Op != "MV" || out[1].Ta != 4 || out[1].Tb != 3 {
		t.Errorf("reload not converted to MV: %v", out)
	}
	// Same register: reload dropped entirely.
	in = []Line{
		ml("STORE", 3, 0, -9),
		ml("LOAD", 3, 0, -9),
	}
	out, _ = peephole(in)
	if countOps(out) != 1 {
		t.Errorf("same-register reload not dropped: %v", out)
	}
	// Different slot: untouched.
	in = []Line{
		ml("STORE", 3, 0, -9),
		ml("LOAD", 3, 0, -8),
	}
	out, _ = peephole(in)
	if countOps(out) != 2 || out[1].Op != "LOAD" {
		t.Errorf("different-slot reload was touched: %v", out)
	}
}

func TestPeepholeSpillReloadLabelBarrier(t *testing.T) {
	// A label between store and reload blocks the rewrite (another path
	// may enter there).
	in := []Line{
		ml("STORE", 3, 0, -9),
		{Label: "L1", Op: "LOAD", Ta: 4, HasTa: true, Tb: 0, HasTb: true, Imm: -9},
	}
	out, removed := peephole(in)
	if removed != 0 || out[1].Op != "LOAD" {
		t.Errorf("labelled reload was rewritten: %v", out)
	}
}

func TestPeepholeDeadWrite(t *testing.T) {
	// LDI overwritten before any read → dropped.
	in := []Line{
		il("LDI", 7, 5),
		il("LDI", 7, 9),
		rl("MV", 1, 7),
	}
	out, removed := peephole(in)
	if removed != 1 || countOps(out) != 2 {
		t.Errorf("dead LDI not removed: %v", out)
	}
	// A read in between keeps it.
	in = []Line{
		il("LDI", 7, 5),
		rl("ADD", 1, 7),
		il("LDI", 7, 9),
	}
	_, removed = peephole(in)
	if removed != 0 {
		t.Errorf("live LDI removed")
	}
	// Control flow in between keeps it.
	in = []Line{
		il("LDI", 7, 5),
		{Op: "JAL", Ta: 8, HasTa: true, Target: "x"},
		il("LDI", 7, 9),
	}
	_, removed = peephole(in)
	if removed != 0 {
		t.Errorf("LDI across control flow removed")
	}
}

func TestPeepholeDuplicateLDI(t *testing.T) {
	in := []Line{
		il("LDI", 7, 100),
		rl("ADD", 1, 7),
		il("LDI", 7, 100), // same constant, no intervening write → dropped
		rl("ADD", 2, 7),
	}
	out, removed := peephole(in)
	if removed != 1 || countOps(out) != 3 {
		t.Errorf("duplicate LDI not removed: %v", out)
	}
	// Different constant: kept.
	in = []Line{
		il("LDI", 7, 100),
		rl("ADD", 1, 7),
		il("LDI", 7, 101),
	}
	_, removed = peephole(in)
	if removed != 0 {
		t.Error("distinct LDI removed")
	}
}

func TestPeepholePreservesLabels(t *testing.T) {
	in := []Line{
		{Label: "entry", Op: "MV", Ta: 1, HasTa: true, Tb: 1, HasTb: true}, // identity with label
		il("ADDI", 1, 1),
	}
	out, _ := peephole(in)
	found := false
	for _, l := range out {
		if l.Label == "entry" {
			found = true
		}
	}
	if !found {
		t.Errorf("label lost during removal: %v", out)
	}
}

func TestPeepholeNeverTouchesPrologue(t *testing.T) {
	// The LDI T0, 0 prologue would look dead (T0 never rewritten...)
	// but must survive: every spill slot and zero-compare uses it.
	in := []Line{
		il("LDI", 0, 0),
		il("LDI", 1, 5),
	}
	_, removed := peephole(in)
	if removed != 0 {
		t.Error("prologue LDI T0 removed")
	}
}

func TestLineMetadata(t *testing.T) {
	// Read/write sets drive every rule; pin them for each op family.
	if w, ok := lineWrites(rl("COMP", 1, 2)); !ok || w != 1 {
		t.Error("COMP writes Ta")
	}
	if _, ok := lineWrites(ml("STORE", 1, 2, 0)); ok {
		t.Error("STORE writes no register")
	}
	if w, ok := lineWrites(ml("LOAD", 1, 2, 0)); !ok || w != 1 {
		t.Error("LOAD writes Ta")
	}
	reads := lineReads(ml("STORE", 1, 2, 0))
	if len(reads) != 2 {
		t.Errorf("STORE reads = %v, want Ta and Tb", reads)
	}
	if got := lineReads(il("LDI", 1, 5)); len(got) != 0 {
		t.Errorf("LDI reads = %v, want none", got)
	}
	if !isControl(Line{Op: "HALT"}) || isControl(rl("ADD", 1, 2)) {
		t.Error("control classification wrong")
	}
}
