package xlate

import (
	"repro/internal/isa"
	"repro/internal/ternary"
)

// The ternary runtime library: primitive sequences shared by call sites,
// appended after the translated program (they are only reachable by JAL).
//
// Calling convention:
//
//	argument A        T7
//	argument B        TDM[rtArgB]
//	link              T8 (JAL T8, routine; return JALR T8, T8, 0)
//	result            T7 (divmod additionally leaves the remainder
//	                  in TDM[rtArgB])
//	preserved         T0..T6 (runtime saves what it borrows)
//	clobbered         T7, T8, runtime slots
func (t *translator) appendRuntime() {
	if t.needMul {
		t.emitMulRoutine()
	}
	if t.needDiv {
		t.emitDivmodRoutine()
	}
	// Flush a dangling label (possible when the program ends in a
	// branch to its own end and no runtime was needed).
	if t.pendLabel != "" {
		t.emit(Line{Op: "HALT"})
	}
}

// reg aliases for readability.
const (
	rT3 = isa.Reg(3)
	rT4 = isa.Reg(4)
	rT5 = isa.Reg(5)
	rT6 = isa.Reg(6)
)

// emitMulRoutine emits __t9_mul: the trit-serial shift-add multiplier of
// §II-B ([10]) with early exit when the remaining multiplier is zero.
// A×B with A in T7, B in TDM[rtArgB]; product returned in T7.
func (t *translator) emitMulRoutine() {
	t.label("__t9_mul")
	t.mem("STORE", rT5, regZero, rtSaveT5) // borrow T5 (ACC)
	t.mem("STORE", rT6, regZero, rtSaveT6) // borrow T6 (tmp)
	t.mem("STORE", rT4, regZero, rtSaveT4) // borrow T4 (B)
	t.mem("LOAD", rT4, regZero, rtArgB)
	t.ldi(rT5, 0)
	t.label("__mu_loop")
	t.r2("MV", rT6, rT4)
	t.r2("COMP", rT6, regZero)
	t.branch("BEQ", rT6, ternary.Zero, "__mu_done")
	// LST(B) = B − 3·(B≫1).
	t.r2("MV", rT6, rT4)
	t.imm("SRI", rT4, 1)
	t.mem("STORE", rT4, regZero, rtSaveT3)
	t.imm("SLI", rT4, 1)
	t.r2("SUB", rT6, rT4)
	t.mem("LOAD", rT4, regZero, rtSaveT3)
	t.branch("BNE", rT6, ternary.Pos, "__mu_n1")
	t.r2("ADD", rT5, scratchA)
	t.emit(Line{Op: "JAL", Ta: rT6, HasTa: true, Target: "__mu_next"})
	t.label("__mu_n1")
	t.branch("BNE", rT6, ternary.Neg, "__mu_next")
	t.r2("SUB", rT5, scratchA)
	t.label("__mu_next")
	t.imm("SLI", scratchA, 1)
	t.emit(Line{Op: "JAL", Ta: rT6, HasTa: true, Target: "__mu_loop"})
	t.label("__mu_done")
	t.r2("MV", scratchA, rT5)
	t.mem("LOAD", rT5, regZero, rtSaveT5)
	t.mem("LOAD", rT6, regZero, rtSaveT6)
	t.mem("LOAD", rT4, regZero, rtSaveT4)
	t.mem("JALR", scratchB, scratchB, 0)
}

// emitDivmodRoutine emits __t9_divmod: signed division with RISC-V
// truncate-toward-zero semantics, computed as unsigned base-3 long
// division on magnitudes (digits 0..2 via up-to-two subtracts per
// position) with sign fixup. A in T7, B in TDM[rtArgB]; quotient in T7,
// remainder in TDM[rtArgB]. Division by zero returns Q=−1, R=A (the
// RISC-V convention, adapted to the 9-trit range).
func (t *translator) emitDivmodRoutine() {
	t.label("__t9_divmod")
	t.mem("STORE", rT3, regZero, rtSaveT3)
	t.mem("STORE", rT4, regZero, rtSaveT4)
	t.mem("STORE", rT5, regZero, rtSaveT5)
	t.mem("STORE", rT6, regZero, rtSaveT6)
	// |A| and sign(A) → rtSignA.
	t.ldi(rT4, 1)
	t.r2("MV", rT5, scratchA)
	t.r2("MV", rT3, scratchA)
	t.r2("COMP", rT3, regZero)
	t.branch("BNE", rT3, ternary.Neg, "__dv_apos")
	t.r2("STI", rT5, rT5)
	t.ldi(rT4, -1)
	t.label("__dv_apos")
	t.mem("STORE", rT4, regZero, rtSignA)
	// |B|, zero check, and sign(Q) = sign(A)·sign(B) → rtSignQ.
	t.mem("LOAD", rT6, regZero, rtArgB)
	t.r2("MV", rT3, rT6)
	t.r2("COMP", rT3, regZero)
	// The zero-divisor handler is beyond conditional-branch reach
	// (±40); jump via a register that is dead here (T4) — the
	// assembler's generic relaxation would clobber T8, the live link.
	t.emit(Line{Op: "BNE", Tb: rT3, HasTb: true, B: ternary.Zero, Imm: 2})
	t.emit(Line{Op: "JAL", Ta: rT4, HasTa: true, Target: "__dv_zero"})
	t.branch("BNE", rT3, ternary.Neg, "__dv_bpos")
	t.r2("STI", rT6, rT6)
	t.r2("STI", rT4, rT4)
	t.label("__dv_bpos")
	t.mem("STORE", rT4, regZero, rtSignQ)
	t.ldi(rT3, 0)      // Q
	t.ldi(scratchA, 0) // shift count
	// Scale the divisor up by 3 while 3·div ≤ |A| (bounded to avoid
	// 9-trit overflow: stop once div > 3280).
	t.label("__dv_scale")
	t.ldi(rT4, 3280)
	t.r2("COMP", rT4, rT6)
	t.branch("BEQ", rT4, ternary.Neg, "__dv_loop")
	t.r2("MV", rT4, rT6)
	t.imm("SLI", rT4, 1) // 3·div
	t.r2("COMP", rT4, rT5)
	t.branch("BEQ", rT4, ternary.Pos, "__dv_loop") // 3·div > |A|
	t.imm("SLI", rT6, 1)
	t.imm("ADDI", scratchA, 1)
	t.emit(Line{Op: "JAL", Ta: rT4, HasTa: true, Target: "__dv_scale"})
	// Long division: at each position try up to two subtracts.
	t.label("__dv_loop")
	t.imm("SLI", rT3, 1) // Q *= 3
	t.r2("MV", rT4, rT5)
	t.r2("COMP", rT4, rT6)
	t.branch("BEQ", rT4, ternary.Neg, "__dv_skip")
	t.r2("SUB", rT5, rT6)
	t.imm("ADDI", rT3, 1)
	t.r2("MV", rT4, rT5)
	t.r2("COMP", rT4, rT6)
	t.branch("BEQ", rT4, ternary.Neg, "__dv_skip")
	t.r2("SUB", rT5, rT6)
	t.imm("ADDI", rT3, 1)
	t.label("__dv_skip")
	t.imm("SRI", rT6, 1) // div /= 3 (exact: scaled by tripling)
	t.imm("ADDI", scratchA, -1)
	t.r2("MV", rT4, scratchA)
	t.r2("COMP", rT4, regZero)
	t.branch("BNE", rT4, ternary.Neg, "__dv_loop")
	// Sign fixup.
	t.mem("LOAD", rT4, regZero, rtSignQ)
	t.branch("BNE", rT4, ternary.Neg, "__dv_qpos")
	t.r2("STI", rT3, rT3)
	t.label("__dv_qpos")
	t.mem("LOAD", rT4, regZero, rtSignA)
	t.branch("BNE", rT4, ternary.Neg, "__dv_rpos")
	t.r2("STI", rT5, rT5)
	t.label("__dv_rpos")
	t.r2("MV", scratchA, rT3)            // quotient
	t.mem("STORE", rT5, regZero, rtArgB) // remainder
	t.emit(Line{Op: "JAL", Ta: rT4, HasTa: true, Target: "__dv_ret"})
	// Division by zero: Q = −1, R = A.
	t.label("__dv_zero")
	t.mem("LOAD", rT4, regZero, rtSignA)
	t.branch("BNE", rT4, ternary.Neg, "__dv_zpos")
	t.r2("STI", rT5, rT5) // restore original (negative) A
	t.label("__dv_zpos")
	t.mem("STORE", rT5, regZero, rtArgB)
	t.ldi(scratchA, -1)
	t.label("__dv_ret")
	t.mem("LOAD", rT3, regZero, rtSaveT3)
	t.mem("LOAD", rT4, regZero, rtSaveT4)
	t.mem("LOAD", rT5, regZero, rtSaveT5)
	t.mem("LOAD", rT6, regZero, rtSaveT6)
	t.mem("JALR", scratchB, scratchB, 0)
}
