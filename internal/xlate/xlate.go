// Package xlate implements the software-level compiling framework of
// §III-A (Fig. 2 of the paper): it converts RV32 programs produced by the
// binary toolchain into ART-9 ternary assembly through three phases,
//
//  1. instruction mapping — each binary instruction becomes a ternary
//     instruction or a primitive sequence of them (software multiply,
//     compare-based branches, shift synthesis, …),
//  2. operand conversion — immediates are rebuilt in ternary fields
//     (LUI/LI construction for wide constants) and the 32 binary registers
//     are renamed onto the 9 ternary GPTRs, spilling the rest to TDM,
//  3. redundancy checking — peephole elimination of the duplicated
//     operations the first two phases introduce, with branch targets
//     re-resolved afterwards (targets are carried symbolically and the
//     ART-9 assembler recomputes every offset).
//
// # Value contract
//
// ART-9 words hold ±9841; RV32 words hold 32 bits. A translated program
// computes identical results when its runtime values stay within the
// 9-trit range and its data addresses stay below the spill area (§IV of
// DESIGN.md). The translator records diagnostics for constructs whose
// semantics narrow (bitwise ops on non-boolean values, unsigned compares);
// the benchmark suite honours the contract and the equivalence tests
// enforce it.
package xlate

import (
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/rv32"
	"repro/internal/ternary"
)

// ABI: the translator's register convention on ART-9.
//
//	T0        — architectural zero (software convention, initialised once)
//	T1..T6    — direct map for the six hottest RV32 registers
//	T7        — primary scratch: spill addresses, immediates, softmul arg A
//	T8        — secondary scratch: softmul arg B, runtime link, relaxation
//
// Spill slots live in the ±13 LOAD/STORE offset window around T0 (=0),
// where every access is a single instruction:
//
//	TDM[-1..-7]    runtime slots (save area, argument, signs of softdiv)
//	TDM[+k], k not a multiple of 4 — ten cheap spill slots inside the
//	               padding the identity address mapping leaves between
//	               word elements (RV32 word data only occupies TDM
//	               addresses divisible by 4, so +1,+2,+3,+5,… are free)
//	TDM[-8..-13]   six more cheap spill slots at the top of TDM
//	TDM[-100...]   overflow spill slots (three instructions per access)
const (
	regZero   = isa.Reg(0)
	scratchA  = isa.Reg(7)
	scratchB  = isa.Reg(8)
	numDirect = 6
	farBase   = -100 // overflow spill area, growing downward

	// Runtime slot assignments (see runtime.go).
	rtSaveT3 = -1
	rtSaveT4 = -2
	rtSaveT5 = -3
	rtSaveT6 = -4
	rtArgB   = -5 // divmod divisor in, remainder out
	rtSignA  = -6
	rtSignQ  = -7
)

// cheapSpillSlots lists the single-instruction spill addresses in
// allocation order: word-padding slots first, then the top of TDM.
var cheapSpillSlots = []int{
	1, 2, 3, 5, 6, 7, 9, 10, 11, 13,
	-8, -9, -10, -11, -12, -13,
}

// Options configure a translation.
type Options struct {
	// InlineMul expands MUL into an in-line trit-serial loop instead of a
	// runtime call (the mapping-quality optimisation §III-A motivates;
	// see the GEMM discussion in EXPERIMENTS.md). Default true.
	NoInlineMul bool
	// NoPeephole disables the redundancy-checking phase (for the
	// ablation benchmarks).
	NoPeephole bool
}

// Output is the result of a translation.
type Output struct {
	// Asm is the generated ART-9 assembly source.
	Asm string
	// Lines is the structured form Asm was rendered from.
	Lines []Line
	// Diagnostics records constructs translated with narrowed semantics.
	Diagnostics []string
	// Removed is the number of instructions deleted by redundancy
	// checking (the Fig. 2 "redundancy checking" phase's yield).
	Removed int

	alloc *allocation
}

// Line is one ART-9 assembly line in symbolic form: a concrete instruction
// or pseudo, with branch targets as labels so the redundancy checker can
// delete instructions without breaking offsets.
type Line struct {
	Label  string // label bound to this line ("" if none)
	Op     string // mnemonic: Table I op or LDI/LDA/HALT pseudo
	Ta, Tb isa.Reg
	HasTa  bool
	HasTb  bool
	B      ternary.Trit
	Imm    int
	Target string // symbolic target; when set, Imm is ignored
}

// render formats a line as assembly text.
func (l Line) render() string {
	var b strings.Builder
	if l.Label != "" {
		fmt.Fprintf(&b, "%s:", l.Label)
	}
	if l.Op == "" {
		return b.String()
	}
	b.WriteByte('\t')
	b.WriteString(l.Op)
	sep := " "
	arg := func(s string) {
		b.WriteString(sep)
		b.WriteString(s)
		sep = ", "
	}
	if l.HasTa {
		arg(l.Ta.String())
	}
	if l.HasTb {
		arg(l.Tb.String())
	}
	switch l.Op {
	case "BEQ", "BNE":
		arg(fmt.Sprintf("%d", int(l.B)))
	}
	if l.Target != "" {
		arg(l.Target)
	} else if usesImm(l.Op) {
		arg(fmt.Sprintf("%d", l.Imm))
	}
	return b.String()
}

func usesImm(op string) bool {
	switch op {
	case "ANDI", "ADDI", "SRI", "SLI", "LUI", "LI", "LDI", "LDA",
		"JAL", "JALR", "LOAD", "STORE", "BEQ", "BNE":
		return true
	}
	return false
}

// translator carries the state of one translation.
type translator struct {
	opts  Options
	src   *rv32.Program
	alloc *allocation
	lines []Line
	diags []string

	labelAt   map[int]string // rv32 instruction index -> label name
	skip      map[int]bool   // indices consumed by idiom folding
	needMul   bool
	needDiv   bool
	pendLabel string // label waiting to attach to the next emitted line

	// boolReg tracks registers whose value is provably in {−1, 0, +1},
	// so equality branches against zero can test the LST directly
	// (a one-instruction branch instead of the COMP sequence).
	boolReg map[rv32.Reg]bool
}

// trackWrite updates the small-value tracking after an instruction that
// wrote rd. isBool marks the value as provably in {−1, 0, +1}.
func (t *translator) trackWrite(rd rv32.Reg, isBool bool) {
	if rd == 0 {
		return
	}
	if isBool {
		t.boolReg[rd] = true
	} else {
		delete(t.boolReg, rd)
	}
}

// clearBools forgets all tracking (labels and calls are merge points).
func (t *translator) clearBools() {
	for r := range t.boolReg {
		delete(t.boolReg, r)
	}
}

// postTrack classifies the instruction just mapped for the small-value
// tracking. Skipped (idiom-folded) instructions still wrote their rd.
func (t *translator) postTrack(idx int, in rv32.Inst) {
	switch in.Op {
	case rv32.SLT, rv32.SLTU, rv32.SLTI, rv32.SLTIU:
		t.trackWrite(in.Rd, true)
	case rv32.ADDI:
		// li rd, {−1,0,1}.
		t.trackWrite(in.Rd, in.Rs1 == 0 && in.Imm >= -1 && in.Imm <= 1)
	case rv32.JAL, rv32.JALR:
		t.clearBools() // the callee (or return path) may write anything
	default:
		if in.Op.WritesRd() {
			t.trackWrite(in.Rd, false)
		}
	}
}

// Translate converts an assembled RV32 program into ART-9 assembly.
func Translate(p *rv32.Program, opts Options) (*Output, error) {
	t := &translator{
		opts: opts, src: p, alloc: allocate(p),
		skip: map[int]bool{}, boolReg: map[rv32.Reg]bool{},
	}
	t.findLabels()

	// Prologue: establish the zero-register convention.
	t.emit(Line{Op: "LDI", Ta: regZero, HasTa: true, Imm: 0})

	for idx, in := range p.Insts {
		if lbl, ok := t.labelAt[idx]; ok {
			t.label(lbl)
			t.clearBools() // merge point
		}
		if err := t.mapInst(idx, in); err != nil {
			return nil, fmt.Errorf("xlate: instruction %d (%v): %w", idx, in, err)
		}
		t.postTrack(idx, in)
	}
	// A trailing label (branch to end) needs an anchor.
	if lbl, ok := t.labelAt[len(p.Insts)]; ok {
		t.label(lbl)
		t.emit(Line{Op: "HALT"})
	}
	t.appendRuntime()

	out := &Output{Lines: t.lines, Diagnostics: t.diags, alloc: t.alloc}
	if !opts.NoPeephole {
		out.Lines, out.Removed = peephole(out.Lines)
	}
	var b strings.Builder
	b.WriteString("; generated by the ART-9 software-level compiling framework\n")
	for _, l := range out.Lines {
		b.WriteString(l.render())
		b.WriteByte('\n')
	}
	out.Asm = b.String()
	return out, nil
}

// findLabels names every branch/jump target "L<idx>".
func (t *translator) findLabels() {
	t.labelAt = map[int]string{}
	for idx, in := range t.src.Insts {
		var target int
		switch {
		case in.Op.IsBranch(), in.Op == rv32.JAL:
			target = idx + int(in.Imm)/4
		default:
			continue
		}
		if _, ok := t.labelAt[target]; !ok {
			t.labelAt[target] = fmt.Sprintf("L%d", target)
		}
	}
}

func (t *translator) targetLabel(idx int, in rv32.Inst) string {
	return t.labelAt[idx+int(in.Imm)/4]
}

func (t *translator) emit(l Line) {
	if t.pendLabel != "" && l.Label == "" {
		l.Label = t.pendLabel
	}
	t.pendLabel = ""
	t.lines = append(t.lines, l)
}

// label attaches a label to the next emitted line.
func (t *translator) label(name string) {
	if t.pendLabel != "" {
		// Two labels on one spot: emit an empty labelled line.
		t.lines = append(t.lines, Line{Label: t.pendLabel})
	}
	t.pendLabel = name
}

func (t *translator) diagf(format string, args ...interface{}) {
	t.diags = append(t.diags, fmt.Sprintf(format, args...))
}

// Convenience emitters.
func (t *translator) r2(op string, ta, tb isa.Reg) {
	t.emit(Line{Op: op, Ta: ta, HasTa: true, Tb: tb, HasTb: true})
}

func (t *translator) imm(op string, ta isa.Reg, v int) {
	t.emit(Line{Op: op, Ta: ta, HasTa: true, Imm: v})
}

func (t *translator) mem(op string, ta, tb isa.Reg, off int) {
	t.emit(Line{Op: op, Ta: ta, HasTa: true, Tb: tb, HasTb: true, Imm: off})
}

func (t *translator) branch(op string, tb isa.Reg, b ternary.Trit, target string) {
	t.emit(Line{Op: op, Tb: tb, HasTb: true, B: b, Target: target})
}

// ldi loads a full-width constant into reg (operand conversion: the LUI/LI
// construction of §IV-A). Values outside the 9-trit range wrap, recorded
// as a diagnostic.
func (t *translator) ldi(reg isa.Reg, v int) {
	if v > ternary.MaxInt || v < ternary.MinInt {
		t.diagf("constant %d wraps to 9-trit range", v)
		v = ternary.FromInt(v).Int()
	}
	t.emit(Line{Op: "LDI", Ta: reg, HasTa: true, Imm: v})
}
