package xlate

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/rv32"
)

// progGen builds random structured RV32 programs: straight-line arithmetic
// mixed with if/else diamonds and bounded counted loops (always
// terminating), over the value-contract-safe subset. This is the widest
// net for translator bugs: every control-flow shape the mapping, label
// resolution, and peephole phases must preserve.
type progGen struct {
	rng   *rand.Rand
	b     strings.Builder
	label int
	depth int
}

func (g *progGen) newLabel(prefix string) string {
	g.label++
	return fmt.Sprintf("%s%d", prefix, g.label)
}

var genRegs = []string{"a0", "a1", "a2", "a3", "t0", "t1", "s2", "s3"}

func (g *progGen) reg() string { return genRegs[g.rng.Intn(len(genRegs))] }

// stmt emits one random statement (possibly a nested structure).
func (g *progGen) stmt() {
	switch k := g.rng.Intn(10); {
	case k < 4: // arithmetic
		d, s1, s2 := g.reg(), g.reg(), g.reg()
		switch g.rng.Intn(4) {
		case 0:
			fmt.Fprintf(&g.b, "\tadd %s, %s, %s\n", d, s1, s2)
		case 1:
			fmt.Fprintf(&g.b, "\tsub %s, %s, %s\n", d, s1, s2)
		case 2:
			fmt.Fprintf(&g.b, "\taddi %s, %s, %d\n", d, s1, g.rng.Intn(39)-19)
		case 3:
			fmt.Fprintf(&g.b, "\tslt %s, %s, %s\n", d, s1, s2)
		}
	case k < 6: // memory (aligned scratch area at 512..1020)
		r, base := g.reg(), 512+4*g.rng.Intn(120)
		if g.rng.Intn(2) == 0 {
			fmt.Fprintf(&g.b, "\tli s4, %d\n\tsw %s, 0(s4)\n", base, r)
		} else {
			fmt.Fprintf(&g.b, "\tli s4, %d\n\tlw %s, 0(s4)\n", base, r)
		}
	case k < 8 && g.depth < 2: // if/else diamond
		g.depth++
		els, end := g.newLabel("E"), g.newLabel("X")
		cond := g.rng.Intn(3)
		r1, r2 := g.reg(), g.reg()
		switch cond {
		case 0:
			fmt.Fprintf(&g.b, "\tbeq %s, %s, %s\n", r1, r2, els)
		case 1:
			fmt.Fprintf(&g.b, "\tblt %s, %s, %s\n", r1, r2, els)
		case 2:
			fmt.Fprintf(&g.b, "\tbge %s, %s, %s\n", r1, r2, els)
		}
		g.stmt()
		fmt.Fprintf(&g.b, "\tj %s\n%s:\n", end, els)
		g.stmt()
		fmt.Fprintf(&g.b, "%s:\n", end)
		g.depth--
	case k < 9 && g.depth < 2: // bounded counted loop
		g.depth++
		head := g.newLabel("L")
		n := g.rng.Intn(5) + 2
		fmt.Fprintf(&g.b, "\tli s5, %d\n%s:\n", n, head)
		g.stmt()
		fmt.Fprintf(&g.b, "\taddi s5, s5, -1\n\tbgtz s5, %s\n", head)
		g.depth--
	default: // clamp a register into a safe range to avoid overflow drift
		r := g.reg()
		g.b.WriteString("\tli s6, 1000\n")
		fmt.Fprintf(&g.b, "\trem %s, %s, s6\n", r, r)
	}
}

func (g *progGen) generate(n int) string {
	g.b.Reset()
	for i, r := range genRegs {
		fmt.Fprintf(&g.b, "\tli %s, %d\n", r, (i*37)%100-50)
	}
	for i := 0; i < n; i++ {
		g.stmt()
	}
	g.b.WriteString("\tebreak\n")
	return g.b.String()
}

// TestRandomStructuredPrograms is the translator's acid test: 40 random
// programs with nested control flow must produce identical register state
// on the RV32 machine and both ART-9 cores.
func TestRandomStructuredPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	g := &progGen{rng: rand.New(rand.NewSource(2024))}
	for trial := 0; trial < 40; trial++ {
		src := g.generate(12)
		e := runEquiv(t, src, Options{})
		for _, rn := range genRegs {
			r, _ := rv32.ParseReg(rn)
			e.checkReg(t, fmt.Sprintf("structured-%d", trial), r)
		}
		if t.Failed() {
			t.Logf("failing program:\n%s", src)
			t.FailNow()
		}
	}
}

// TestRandomStructuredProgramsNoPeephole cross-checks that the redundancy
// checker never changes semantics: with and without it, identical state.
func TestRandomStructuredProgramsNoPeephole(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	g := &progGen{rng: rand.New(rand.NewSource(4048))}
	for trial := 0; trial < 15; trial++ {
		src := g.generate(10)
		with := runEquiv(t, src, Options{})
		without := runEquiv(t, src, Options{NoPeephole: true})
		for _, rn := range genRegs {
			r, _ := rv32.ParseReg(rn)
			a, err := with.out.ReadBack(with.fn.S, r)
			if err != nil {
				t.Fatal(err)
			}
			b, err := without.out.ReadBack(without.fn.S, r)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("trial %d: peephole changed %s: %d vs %d\n%s",
					trial, rn, a, b, src)
			}
		}
		// And the peephole must never grow the program.
		if len(with.out.Lines) > len(without.out.Lines) {
			t.Fatalf("trial %d: peephole grew the program", trial)
		}
	}
}
