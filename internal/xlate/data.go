package xlate

import (
	"encoding/binary"

	"repro/internal/rv32"
	"repro/internal/ternary"
)

// DataImage converts an RV32 data image into TDM initialisation under the
// translator's identity address mapping: the 32-bit word at byte address A
// becomes the 9-trit word at TDM address A (the three following TDM words
// stay empty — each RV32 element occupies one ternary word at the same
// numeric address, so translated address arithmetic needs no rescaling).
// Values wrap into the 9-trit range per the value contract.
func DataImage(p *rv32.Program) map[int]ternary.Word {
	out := make(map[int]ternary.Word, (len(p.Data)+3)/4)
	for a := 0; a+4 <= len(p.Data); a += 4 {
		v := int32(binary.LittleEndian.Uint32(p.Data[a:]))
		if v == 0 {
			continue
		}
		out[a] = ternary.FromInt(wrapValue(int64(v)))
	}
	return out
}
