package sim

import (
	"math"
	"testing"

	"repro/internal/isa"
)

func TestOpMix(t *testing.T) {
	_, res := runPipe(t, `
		LDI T1, 1
		ADD T1, T1
		ADD T1, T1
		STORE T1, T0, 5
		LOAD T2, T0, 5
		HALT
	`)
	mix := res.OpMix()
	// LDI 1 expands to LUI+LI (2), plus 2 ADD, 1 STORE, 1 LOAD = 6
	// retired (halt excluded from ByOp).
	if res.ByOp[isa.ADD] != 2 {
		t.Errorf("ADD count = %d, want 2", res.ByOp[isa.ADD])
	}
	if res.ByOp[isa.LOAD] != 1 || res.ByOp[isa.STORE] != 1 {
		t.Errorf("mem counts = %d/%d", res.ByOp[isa.LOAD], res.ByOp[isa.STORE])
	}
	// Fractions sum to ≤ 1 (the halt retires but is not op-counted).
	sum := 0.0
	for _, f := range mix {
		sum += f
	}
	if sum > 1.0+1e-9 {
		t.Errorf("mix fractions sum to %f > 1", sum)
	}
	if math.Abs(mix[isa.ADD]-2.0/float64(res.Retired)) > 1e-9 {
		t.Errorf("ADD fraction = %f", mix[isa.ADD])
	}
}

func TestOpMixMatchesBetweenCores(t *testing.T) {
	src := `
		LDI T1, 0
		LDI T2, 1
		LDI T3, 9
	loop:	ADD T1, T2
		ADDI T2, 1
		MV T4, T2
		COMP T4, T3
		BNE T4, 1, loop
		HALT
	`
	_, fres := runFunc(t, src)
	_, pres := runPipe(t, src)
	if fres.ByOp != pres.ByOp {
		t.Errorf("op histograms differ between cores:\nfunc: %v\npipe: %v",
			fres.ByOp, pres.ByOp)
	}
}

func TestOpMixEmpty(t *testing.T) {
	var r Result
	if len(r.OpMix()) != 0 {
		t.Error("empty result produced a mix")
	}
}
