package sim

import (
	"math"
	"testing"

	"repro/internal/isa"
)

func TestOpMix(t *testing.T) {
	_, res := runPipe(t, `
		LDI T1, 1
		ADD T1, T1
		ADD T1, T1
		STORE T1, T0, 5
		LOAD T2, T0, 5
		HALT
	`)
	mix := res.OpMix()
	// LDI 1 expands to LUI+LI (2), plus 2 ADD, 1 STORE, 1 LOAD, and the
	// halt (a retired JAL) = 7 retired, all op-counted.
	if res.ByOp[isa.ADD] != 2 {
		t.Errorf("ADD count = %d, want 2", res.ByOp[isa.ADD])
	}
	if res.ByOp[isa.LOAD] != 1 || res.ByOp[isa.STORE] != 1 {
		t.Errorf("mem counts = %d/%d", res.ByOp[isa.LOAD], res.ByOp[isa.STORE])
	}
	if res.ByOp[isa.JAL] != 1 {
		t.Errorf("halt JAL count = %d, want 1", res.ByOp[isa.JAL])
	}
	// Every retired instruction is op-counted, so the fractions must sum
	// to exactly 1 — the switching-activity profile covers the whole run.
	sum := 0.0
	for _, f := range mix {
		sum += f
	}
	if math.Abs(sum-1.0) > 1e-9 {
		t.Errorf("mix fractions sum to %f, want 1", sum)
	}
	if math.Abs(mix[isa.ADD]-2.0/float64(res.Retired)) > 1e-9 {
		t.Errorf("ADD fraction = %f", mix[isa.ADD])
	}
}

// TestOpMixSumsToOneOnGoldenPrograms asserts ΣOpMix == 1 and
// ΣByOp == ΣByCategory == Retired on a spread of programs, on both cores —
// the regression guard for the halt-retirement metric skew.
func TestOpMixSumsToOneOnGoldenPrograms(t *testing.T) {
	programs := map[string]string{
		"straightline": `
			LDI T1, 7
			ADD T1, T1
			HALT
		`,
		"loop": `
			LDI T1, 0
			LDI T2, 1
			LDI T3, 5
		loop:	ADD T1, T2
			ADDI T2, 1
			MV T4, T2
			COMP T4, T3
			BNE T4, 1, loop
			HALT
		`,
		"memory": `
			LDI T1, 40
			STORE T1, T0, 3
			LOAD T2, T0, 3
			SUB T2, T1
			HALT
		`,
	}
	for name, src := range programs {
		for core, run := range map[string]func(*testing.T, string) (*State, Result){
			"functional": func(t *testing.T, s string) (*State, Result) {
				f, r := runFunc(t, s)
				return f.S, r
			},
			"pipeline": func(t *testing.T, s string) (*State, Result) {
				p, r := runPipe(t, s)
				return p.S, r
			},
		} {
			_, res := run(t, src)
			sum := 0.0
			for _, f := range res.OpMix() {
				sum += f
			}
			if math.Abs(sum-1.0) > 1e-9 {
				t.Errorf("%s/%s: ΣOpMix = %f, want 1", core, name, sum)
			}
			var ops, cats uint64
			for _, n := range res.ByOp {
				ops += n
			}
			for _, n := range res.ByCategory {
				cats += n
			}
			if ops != res.Retired || cats != res.Retired {
				t.Errorf("%s/%s: ΣByOp=%d ΣByCategory=%d Retired=%d",
					core, name, ops, cats, res.Retired)
			}
		}
	}
}

func TestOpMixMatchesBetweenCores(t *testing.T) {
	src := `
		LDI T1, 0
		LDI T2, 1
		LDI T3, 9
	loop:	ADD T1, T2
		ADDI T2, 1
		MV T4, T2
		COMP T4, T3
		BNE T4, 1, loop
		HALT
	`
	_, fres := runFunc(t, src)
	_, pres := runPipe(t, src)
	if fres.ByOp != pres.ByOp {
		t.Errorf("op histograms differ between cores:\nfunc: %v\npipe: %v",
			fres.ByOp, pres.ByOp)
	}
}

func TestOpMixEmpty(t *testing.T) {
	var r Result
	if len(r.OpMix()) != 0 {
		t.Error("empty result produced a mix")
	}
}
