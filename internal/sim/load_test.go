package sim

import (
	"testing"

	"repro/internal/asm"
)

// TestLoadResetsStateBetweenPrograms reuses one State for a long program
// and then a shorter one: the second Load must zero every word beyond the
// new image and clear the access counters, or the power model sees the
// first program's residue.
func TestLoadResetsStateBetweenPrograms(t *testing.T) {
	long, err := asm.Assemble(`
		LDI T1, 111
		LDI T2, 222
		LDI T3, 20
		STORE T1, T3, 0
		STORE T2, T3, 1
		ADD T1, T2
		ADD T1, T2
		ADD T1, T2
		HALT
	`)
	if err != nil {
		t.Fatal(err)
	}
	short, err := asm.Assemble(`
		LDI T1, 5
		HALT
	`)
	if err != nil {
		t.Fatal(err)
	}

	f := NewFunctional(Config{})
	if err := f.S.Load(long); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}

	if err := f.S.Load(short); err != nil {
		t.Fatal(err)
	}
	// No stale instruction words: everything past the short image is 0.
	tim := f.S.TIM.Snapshot()
	for a := len(short.Words); a < len(long.Words); a++ {
		if !tim[a].IsZero() {
			t.Errorf("TIM[%d] = %v, want zero after shorter reload", a, tim[a])
		}
	}
	// No stale data words from the first program's stores.
	for _, a := range []int{20, 21} {
		w, err := f.S.TDM.Read(a)
		if err != nil {
			t.Fatal(err)
		}
		if !w.IsZero() {
			t.Errorf("TDM[%d] = %v, want zero after reload", a, w)
		}
	}
	// Access counters restart from the fresh Load (the Read above is the
	// only access so far: TDM reads=1, TIM reads=0).
	if r, w := f.S.TIM.Accesses(); r != 0 || w != 0 {
		t.Errorf("TIM accesses after reload = %d/%d, want 0/0", r, w)
	}
	if r, w := f.S.TDM.Accesses(); r != 2 || w != 0 {
		t.Errorf("TDM accesses after reload = %d/%d, want 2/0 (the checks above)", r, w)
	}

	// The short program still runs correctly on the reused state.
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.HaltPC != len(short.Words)-1 {
		t.Errorf("halt PC = %d, want %d", res.HaltPC, len(short.Words)-1)
	}
	if got := f.S.Reg(1).Int(); got != 5 {
		t.Errorf("T1 = %d, want 5", got)
	}
}
