package sim

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/ternary"
)

// Edge cases and failure injection for both cores.

func TestSmallTIMRejectsLargeProgram(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 300; i++ {
		b.WriteString("NOP\n")
	}
	b.WriteString("HALT\n")
	p, err := asm.Assemble(b.String())
	if err != nil {
		t.Fatal(err)
	}
	f := NewFunctional(Config{TIMWords: 256})
	if err := f.S.Load(p); err == nil {
		t.Error("301-word program loaded into a 256-word TIM")
	}
}

func TestFPGASizedMachineRuns(t *testing.T) {
	// The Table V prototype: 256-word TIM and TDM.
	p, err := asm.Assemble(`
		LDI T1, 5
		LDI T2, 120
		STORE T1, T2, 0
		LOAD T3, T2, 0
		HALT
	`)
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPipeline(Config{TIMWords: 256, TDMWords: 256})
	if err := pl.S.Load(p); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Run(); err != nil {
		t.Fatal(err)
	}
	if pl.S.Reg(3).Int() != 5 {
		t.Error("small machine computed wrong value")
	}
}

func TestTDMOutOfSpaceFaults(t *testing.T) {
	// Address 1000 on a 256-word TDM.
	p, err := asm.Assemble(`
		LDI T1, 1000
		STORE T1, T1, 0
		HALT
	`)
	if err != nil {
		t.Fatal(err)
	}
	for _, core := range []string{"functional", "pipeline"} {
		var runErr error
		switch core {
		case "functional":
			f := NewFunctional(Config{TDMWords: 256})
			if err := f.S.Load(p); err != nil {
				t.Fatal(err)
			}
			_, runErr = f.Run()
		default:
			pl := NewPipeline(Config{TDMWords: 256})
			if err := pl.S.Load(p); err != nil {
				t.Fatal(err)
			}
			_, runErr = pl.Run()
		}
		if runErr == nil {
			t.Errorf("%s: out-of-space TDM access did not fault", core)
		}
	}
}

func TestPipelineIllegalInstructionFaults(t *testing.T) {
	pl := NewPipeline(Config{})
	w := ternary.Word{}.SetField(7, 8, -4).SetField(4, 6, 13) // bad R minor
	if err := pl.S.TIM.LoadImage([]ternary.Word{w}); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Run(); err == nil {
		t.Error("pipeline executed an illegal instruction")
	}
}

func TestPipelineNoHalt(t *testing.T) {
	p, err := asm.Assemble("loop: ADDI T1, 1\nJAL T0, loop")
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPipeline(Config{MaxSteps: 500})
	if err := pl.S.Load(p); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Run(); err == nil {
		t.Error("runaway program terminated")
	}
}

func TestShiftByRegisterAllAmounts(t *testing.T) {
	// SR/SL take the 2-trit field of Tb modulo 9 (all nine distances).
	for amt := -4; amt <= 4; amt++ {
		src := fmt.Sprintf(`
			LDI T1, 1
			LDI T2, %d
			SL T1, T2
			HALT
		`, amt)
		f, _ := runFunc(t, src)
		n := ternary.ShiftAmount(amt)
		want := ternary.ShiftLeft(ternary.FromInt(1), n).Int()
		if got := f.S.Reg(1).Int(); got != want {
			t.Errorf("SL by field %d: got %d, want %d", amt, got, want)
		}
	}
}

func TestLIPreservesNegativeUpperTrits(t *testing.T) {
	f, _ := runFunc(t, `
		LUI T1, -40      ; upper trits all negative
		LI  T1, 121      ; low five set positive
		HALT
	`)
	want := -40*243 + 121
	if got := f.S.Reg(1).Int(); got != want {
		t.Errorf("LUI(-40)+LI(121) = %d, want %d", got, want)
	}
}

func TestJALRNegativeOffset(t *testing.T) {
	f, _ := runFunc(t, `
		LDA T1, mark
		ADDI T1, 2       ; point past the target
		JALR T2, T1, -2  ; land exactly on mark
		HALT
	mark:
		LDI T3, 99
		HALT
	`)
	if got := f.S.Reg(3).Int(); got != 99 {
		t.Errorf("JALR with negative offset: T3 = %d, want 99", got)
	}
}

func TestPipelineTraceHook(t *testing.T) {
	p, err := asm.Assemble("LDI T1, 1\nHALT")
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPipeline(Config{})
	var lines []string
	pl.Trace = func(cycle uint64, line string) { lines = append(lines, line) }
	if err := pl.S.Load(p); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Run(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("trace hook never called")
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"IF:", "ID:", "EX:", "MEM:", "WB:"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %s column", want)
		}
	}
}

func TestStoreLoadForwardThroughMemory(t *testing.T) {
	// STORE immediately followed by LOAD of the same address: the
	// pipeline's MEM-stage ordering must make the value visible.
	pl, _ := runPipe(t, `
		LDI T1, 50
		LDI T2, 77
		STORE T2, T1, 0
		LOAD T3, T1, 0
		HALT
	`)
	if got := pl.S.Reg(3).Int(); got != 77 {
		t.Errorf("store→load through TDM = %d, want 77", got)
	}
}

func TestBranchNotTakenNoPenalty(t *testing.T) {
	// A never-taken branch must cost exactly one cycle.
	_, res := runPipe(t, `
		LDI T1, 1
		BEQ T1, 0, away   ; LST(T1)=1 ≠ 0: not taken
		ADDI T2, 1
	away:
		HALT
	`)
	if res.StallsBranch != 0 {
		t.Errorf("not-taken branch squashed %d slots", res.StallsBranch)
	}
	if res.NotTaken != 1 {
		t.Errorf("not-taken count = %d", res.NotTaken)
	}
}

func TestWAWThroughPipeline(t *testing.T) {
	// Two writes to the same register in flight simultaneously must
	// retire in order.
	pl, _ := runPipe(t, `
		LDI T1, 1
		ADDI T1, 1        ; T1 = 2
		LDI T2, 10
		MV T1, T2         ; T1 = 10 (younger write wins)
		HALT
	`)
	if got := pl.S.Reg(1).Int(); got != 10 {
		t.Errorf("WAW order broken: T1 = %d, want 10", got)
	}
}

func TestCategoriesCounted(t *testing.T) {
	_, res := runFunc(t, `
		ADD T1, T2        ; R
		ADDI T1, 1        ; I
		BEQ T1, 0, 2      ; B (not taken: LST=1? T1=1 → LST 1 ≠ 0)
		STORE T1, T0, 5   ; M
		LOAD T2, T0, 5    ; M
		HALT
	`)
	// CatB counts the BEQ and the halt (a retired JAL): every retired
	// instruction lands in exactly one category.
	if res.ByCategory[isa.CatR] != 1 || res.ByCategory[isa.CatI] != 1 ||
		res.ByCategory[isa.CatB] != 2 || res.ByCategory[isa.CatM] != 2 {
		t.Errorf("category counts = %v", res.ByCategory)
	}
	var sum uint64
	for _, n := range res.ByCategory {
		sum += n
	}
	if sum != res.Retired {
		t.Errorf("ΣByCategory = %d, want Retired = %d", sum, res.Retired)
	}
}
