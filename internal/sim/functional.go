package sim

import (
	"fmt"

	"repro/internal/isa"
)

// Functional is the instruction-accurate reference core: one instruction
// per step, no micro-architecture. It defines the architectural semantics
// against which the pipelined core is verified.
type Functional struct {
	S   *State
	cfg Config
}

// NewFunctional builds a functional core over a fresh state.
func NewFunctional(cfg Config) *Functional {
	return &Functional{S: NewState(cfg), cfg: cfg.withDefaults()}
}

// Step executes a single instruction. It returns done=true when the core
// retires a halt (jump-to-self).
func (f *Functional) Step(res *Result) (done bool, err error) {
	s := f.S
	w, err := s.TIM.ReadP(s.PC.UIndex())
	if err != nil {
		return false, fmt.Errorf("sim: fetch at PC=%d: %w", s.PC.Int(), err)
	}
	in, err := isa.DecodePacked(w)
	if err != nil {
		return false, fmt.Errorf("sim: at PC=%d: %w", s.PC.Int(), err)
	}
	e := evaluate(in, s.PC, s.TRF[in.Ta], s.TRF[in.Tb])
	if e.isLoad {
		v, err := s.TDM.ReadP(e.addr.UIndex())
		if err != nil {
			return false, fmt.Errorf("sim: at PC=%d: %w", s.PC.Int(), err)
		}
		e.val = v
		res.Loads++
	}
	if e.isStore {
		if err := s.TDM.WriteP(e.addr.UIndex(), e.store); err != nil {
			return false, fmt.Errorf("sim: at PC=%d: %w", s.PC.Int(), err)
		}
		res.Stores++
	}
	if e.isHalt(s.PC) {
		res.HaltPC = s.PC.UIndex()
		res.Cycles++
		res.Retired++
		// The halt retires like any other instruction, so its opcode
		// counts toward the mix — otherwise ΣOpMix < 1 and the
		// switching-activity profile under-reports the datapath.
		res.ByCategory[in.Op.Category()]++
		res.ByOp[in.Op]++
		return true, nil
	}
	if e.writesReg {
		s.TRF[e.reg] = e.val
	}
	if e.branch {
		if e.taken {
			res.Taken++
		} else {
			res.NotTaken++
		}
	} else if e.taken {
		res.Jumps++
	}
	res.ByCategory[in.Op.Category()]++
	res.ByOp[in.Op]++
	res.Cycles++
	res.Retired++
	s.PC = e.nextPC
	return false, nil
}

// Run executes until halt or the step budget is exhausted.
func (f *Functional) Run() (Result, error) {
	var res Result
	for steps := 0; steps < f.cfg.MaxSteps; steps++ {
		done, err := f.Step(&res)
		if err != nil {
			return res, err
		}
		if done {
			return res, nil
		}
	}
	return res, ErrNoHalt{f.cfg.MaxSteps}
}
