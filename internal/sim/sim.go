// Package sim is the cycle-accurate simulator of the hardware-level
// evaluation framework (§III-B, Fig. 3 of the paper). It provides two
// models of the ART-9 core:
//
//   - a functional reference core (Functional) that retires one
//     instruction per step with the architectural semantics of Table I, and
//   - the 5-stage pipelined core of §IV-B (Pipeline) with the hazard
//     detection unit, forwarding multiplexers and ID-stage branch
//     resolution, whose only stall sources are load-use hazards and taken
//     control transfers — exactly the behaviour the paper reports.
//
// Both consume the assembler's output and produce run results (cycle and
// instruction counts, stall accounting, final architectural state) that
// the performance estimator (internal/perf) turns into DMIPS figures.
package sim

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/ternary"
	"repro/internal/tmem"
)

// DefaultMemWords is the default TIM/TDM size: the full 9-trit address
// space. The FPGA prototype of Table V uses 256-word memories instead.
const DefaultMemWords = tmem.MaxWords

// SemanticsVersion names the observable semantics of the simulators:
// the architectural behaviour of Table I, the pipeline's stall/flush
// accounting, and every counter a run result reports. The fleet-wide
// result cache folds it into its keys, so bump it whenever a simulator
// change can alter any reported metric for an unchanged program —
// otherwise peers built before and after the change would share keys
// and replay stale results into each other.
const SemanticsVersion = "art9-sim/v1"

// Config sizes a machine.
type Config struct {
	TIMWords int // instruction memory words; 0 → DefaultMemWords
	TDMWords int // data memory words; 0 → DefaultMemWords
	MaxSteps int // cycle/step budget before ErrNoHalt; 0 → 100M
}

func (c Config) withDefaults() Config {
	if c.TIMWords == 0 {
		c.TIMWords = DefaultMemWords
	}
	if c.TDMWords == 0 {
		c.TDMWords = DefaultMemWords
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 100_000_000
	}
	return c
}

// State is the architectural state of an ART-9 core: the program counter,
// the nine-entry ternary register file, and the two memories. PC and TRF
// hold the bit-plane form (ternary.Packed) so the datapath never converts
// per trit; Reg/SetReg expose the Word view at the boundary.
type State struct {
	PC  ternary.Packed
	TRF [isa.NumRegs]ternary.Packed
	TIM *tmem.Memory
	TDM *tmem.Memory
}

// NewState builds a zeroed machine with the given configuration.
func NewState(cfg Config) *State {
	cfg = cfg.withDefaults()
	return &State{
		TIM: tmem.New("TIM", cfg.TIMWords),
		TDM: tmem.New("TDM", cfg.TDMWords),
	}
}

// Load initialises TIM and TDM from an assembled program and resets PC.
// Both memories are Reset first, so reloading over a previously used State
// neither leaks words beyond the new image nor carries stale access counts
// into the power model.
func (s *State) Load(p *asm.Program) error {
	s.TIM.Reset()
	s.TDM.Reset()
	if err := s.TIM.LoadImage(p.Words); err != nil {
		return err
	}
	if err := s.TDM.SetAll(p.Data); err != nil {
		return err
	}
	s.PC = ternary.Packed{}
	return nil
}

// Reg returns TRF[r].
func (s *State) Reg(r isa.Reg) ternary.Word { return s.TRF[r].Unpack() }

// SetReg sets TRF[r].
func (s *State) SetReg(r isa.Reg, w ternary.Word) { s.TRF[r] = ternary.Pack(w) }

// Result summarises a run.
type Result struct {
	Cycles       uint64 // total clock cycles (functional: == Retired)
	Retired      uint64 // architecturally completed instructions
	StallsLoad   uint64 // load-use stall cycles inserted by the HDU
	StallsBranch uint64 // squashed fetch slots after taken transfers
	Taken        uint64 // taken conditional branches
	NotTaken     uint64 // not-taken conditional branches
	Jumps        uint64 // JAL/JALR retired (excluding the halt)
	Loads        uint64
	Stores       uint64
	ByCategory   [4]uint64          // retired instructions per Table I category
	ByOp         [isa.NumOps]uint64 // retired instructions per opcode
	HaltPC       int                // address of the halt instruction
}

// OpMix returns the per-opcode dynamic instruction mix as fractions of
// retired instructions — the switching-activity profile of the datapath.
func (r Result) OpMix() map[isa.Op]float64 {
	m := make(map[isa.Op]float64)
	if r.Retired == 0 {
		return m
	}
	for op, n := range r.ByOp {
		if n > 0 {
			m[isa.Op(op)] = float64(n) / float64(r.Retired)
		}
	}
	return m
}

// CPI returns cycles per retired instruction.
func (r Result) CPI() float64 {
	if r.Retired == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Retired)
}

// ErrNoHalt is returned when the step budget is exhausted.
type ErrNoHalt struct{ Steps int }

func (e ErrNoHalt) Error() string {
	return fmt.Sprintf("sim: no halt within %d steps (runaway program?)", e.Steps)
}

// effect is the architectural outcome of one instruction: the full Table I
// semantics evaluated against a read-only view of the state. Memory reads
// are performed by the caller so both cores share it.
type effect struct {
	writesReg bool
	reg       isa.Reg
	val       ternary.Packed // value to write (for LOAD: filled by caller)

	isLoad  bool
	isStore bool
	addr    ternary.Packed // memory address for LOAD/STORE
	store   ternary.Packed // value to store

	nextPC ternary.Packed
	taken  bool // control transfer redirected away from PC+1
	branch bool // conditional branch (for taken/not-taken stats)
}

// liLoMask covers the 5 low trit positions replaced by LI.
const liLoMask = 1<<5 - 1

// evaluate computes the effect of in executed at pc with register read
// values ta and tb (already forwarded by the caller as appropriate).
// Everything runs in the bit-plane form; each kernel is differentially
// pinned to the trit-serial reference in internal/ternary, so the
// architectural semantics of Table I are unchanged.
func evaluate(in isa.Inst, pc, ta, tb ternary.Packed) effect {
	seq := pc.Inc()
	e := effect{nextPC: seq}
	switch in.Op {
	case isa.MV:
		e.writesReg, e.reg, e.val = true, in.Ta, tb
	case isa.PTI:
		e.writesReg, e.reg, e.val = true, in.Ta, tb.Pti()
	case isa.NTI:
		e.writesReg, e.reg, e.val = true, in.Ta, tb.Nti()
	case isa.STI:
		e.writesReg, e.reg, e.val = true, in.Ta, tb.Sti()
	case isa.AND:
		e.writesReg, e.reg, e.val = true, in.Ta, ta.And(tb)
	case isa.OR:
		e.writesReg, e.reg, e.val = true, in.Ta, ta.Or(tb)
	case isa.XOR:
		e.writesReg, e.reg, e.val = true, in.Ta, ta.Xor(tb)
	case isa.ADD:
		e.writesReg, e.reg, e.val = true, in.Ta, ta.Add(tb)
	case isa.SUB:
		e.writesReg, e.reg, e.val = true, in.Ta, ta.Sub(tb)
	case isa.SR:
		n := ternary.ShiftAmount(tb.Field(0, 1))
		e.writesReg, e.reg, e.val = true, in.Ta, ta.ShiftRight(n)
	case isa.SL:
		n := ternary.ShiftAmount(tb.Field(0, 1))
		e.writesReg, e.reg, e.val = true, in.Ta, ta.ShiftLeft(n)
	case isa.COMP:
		e.writesReg, e.reg, e.val = true, in.Ta, ta.Comp(tb)
	case isa.ANDI:
		e.writesReg, e.reg, e.val = true, in.Ta, ta.And(ternary.PackedFromInt(in.Imm))
	case isa.ADDI:
		e.writesReg, e.reg, e.val = true, in.Ta, ta.Add(ternary.PackedFromInt(in.Imm))
	case isa.SRI:
		e.writesReg, e.reg, e.val = true, in.Ta, ta.ShiftRight(ternary.ShiftAmount(in.Imm))
	case isa.SLI:
		e.writesReg, e.reg, e.val = true, in.Ta, ta.ShiftLeft(ternary.ShiftAmount(in.Imm))
	case isa.LUI:
		// imm fits in 4 trits, so its packed form occupies bits 0..3;
		// shifting by 5 lands it in the upper field with zero fill.
		e.writesReg, e.reg, e.val = true, in.Ta, ternary.PackedFromInt(in.Imm).ShiftLeft(5)
	case isa.LI:
		low := ternary.PackedFromInt(in.Imm) // 5-trit imm: bits 0..4 only
		v := ternary.Packed{                 // keep TRF[Ta][8:5], replace [4:0]
			N: ta.N&^liLoMask | low.N,
			P: ta.P&^liLoMask | low.P,
		}
		e.writesReg, e.reg, e.val = true, in.Ta, v
	case isa.BEQ, isa.BNE:
		e.branch = true
		cond := tb.Trit(0) == in.B
		if in.Op == isa.BNE {
			cond = !cond
		}
		if cond {
			e.nextPC = pc.Add(ternary.PackedFromInt(in.Imm))
			e.taken = true
		}
	case isa.JAL:
		e.writesReg, e.reg, e.val = true, in.Ta, seq
		e.nextPC = pc.Add(ternary.PackedFromInt(in.Imm))
		e.taken = true
	case isa.JALR:
		e.writesReg, e.reg, e.val = true, in.Ta, seq
		e.nextPC = tb.Add(ternary.PackedFromInt(in.Imm))
		e.taken = true
	case isa.LOAD:
		e.isLoad = true
		e.writesReg, e.reg = true, in.Ta
		e.addr = tb.Add(ternary.PackedFromInt(in.Imm))
	case isa.STORE:
		e.isStore = true
		e.addr = tb.Add(ternary.PackedFromInt(in.Imm))
		e.store = ta
	}
	return e
}

// isHalt reports whether the effect is a jump to the instruction's own
// address — the HALT idiom the assembler emits (JAL x, 0 or an absolute
// JALR to self).
func (e effect) isHalt(pc ternary.Packed) bool {
	return e.taken && e.nextPC == pc
}
