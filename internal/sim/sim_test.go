package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/ternary"
)

// runFunc assembles and runs src on the functional core.
func runFunc(t *testing.T, src string) (*Functional, Result) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	f := NewFunctional(Config{})
	if err := f.S.Load(p); err != nil {
		t.Fatal(err)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return f, res
}

// runPipe assembles and runs src on the pipelined core.
func runPipe(t *testing.T, src string) (*Pipeline, Result) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	pl := NewPipeline(Config{})
	if err := pl.S.Load(p); err != nil {
		t.Fatal(err)
	}
	res, err := pl.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return pl, res
}

func TestFunctionalBasicALU(t *testing.T) {
	f, res := runFunc(t, `
		LDI T1, 100
		LDI T2, -42
		ADD T1, T2      ; T1 = 58
		MV  T3, T1
		SUB T3, T2      ; T3 = 100
		STI T4, T2      ; T4 = 42
		ADDI T4, 13     ; T4 = 55
		HALT
	`)
	want := map[isa.Reg]int{1: 58, 3: 100, 4: 55}
	for r, v := range want {
		if got := f.S.Reg(r).Int(); got != v {
			t.Errorf("T%d = %d, want %d", r, got, v)
		}
	}
	if res.Retired == 0 || res.Cycles != res.Retired {
		t.Errorf("functional cycles %d != retired %d", res.Cycles, res.Retired)
	}
}

func TestFunctionalLogicOps(t *testing.T) {
	f, _ := runFunc(t, `
		LDI T1, 0t110T
		LDI T2, 0t1T01
		MV T3, T1
		AND T3, T2
		MV T4, T1
		OR T4, T2
		MV T5, T1
		XOR T5, T2
		NTI T6, T1
		PTI T7, T1
		HALT
	`)
	w1, _ := ternary.ParseWord("110T")
	w2, _ := ternary.ParseWord("1T01")
	checks := []struct {
		r    isa.Reg
		want ternary.Word
	}{
		{3, ternary.And(w1, w2)},
		{4, ternary.Or(w1, w2)},
		{5, ternary.Xor(w1, w2)},
		{6, ternary.Nti(w1)},
		{7, ternary.Pti(w1)},
	}
	for _, c := range checks {
		if got := f.S.Reg(c.r); got != c.want {
			t.Errorf("T%d = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestFunctionalShifts(t *testing.T) {
	f, _ := runFunc(t, `
		LDI T1, 42
		SLI T1, 2       ; 42*9 = 378
		LDI T2, 378
		SRI T2, 1       ; 126
		LDI T3, 2
		LDI T4, 5
		SL  T4, T3      ; 5*9 = 45
		HALT
	`)
	if got := f.S.Reg(1).Int(); got != 378 {
		t.Errorf("SLI: T1 = %d, want 378", got)
	}
	if got := f.S.Reg(2).Int(); got != 126 {
		t.Errorf("SRI: T2 = %d, want 126", got)
	}
	if got := f.S.Reg(4).Int(); got != 45 {
		t.Errorf("SL: T4 = %d, want 45", got)
	}
}

func TestFunctionalCompareAndBranch(t *testing.T) {
	// Classic max(): COMP then branch on the sign trit.
	src := `
		LDI T1, %d
		LDI T2, %d
		MV  T3, T1
		COMP T3, T2      ; sign(T1-T2) in LST
		BEQ T3, 1, t1max ; taken if T1 > T2
		MV  T4, T2       ; else max = T2
		JAL T0, done
	t1max:
		MV  T4, T1
	done:
		HALT
	`
	cases := []struct{ a, b, want int }{{10, 3, 10}, {3, 10, 10}, {-5, -9, -5}, {7, 7, 7}}
	for _, c := range cases {
		f, _ := runFunc(t, fmt.Sprintf(src, c.a, c.b))
		if got := f.S.Reg(4).Int(); got != c.want {
			t.Errorf("max(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestFunctionalCOMPAllThreeOutcomes(t *testing.T) {
	f, _ := runFunc(t, `
		LDI T1, 5
		LDI T2, 9
		MV T3, T1
		COMP T3, T2     ; -1
		MV T4, T2
		COMP T4, T1     ; +1
		MV T5, T1
		COMP T5, T1     ; 0
		HALT
	`)
	if f.S.Reg(3).Int() != -1 || f.S.Reg(4).Int() != 1 || f.S.Reg(5).Int() != 0 {
		t.Errorf("COMP outcomes = %d,%d,%d; want -1,1,0",
			f.S.Reg(3).Int(), f.S.Reg(4).Int(), f.S.Reg(5).Int())
	}
}

func TestFunctionalLUILIConstruction(t *testing.T) {
	// LUI/LI semantics straight from Table I.
	f, _ := runFunc(t, `
		LUI T1, 7       ; T1 = {7, 00000} = 7*243
		LI  T1, -11     ; low 5 trits = -11, upper kept
		HALT
	`)
	if got, want := f.S.Reg(1).Int(), 7*243-11; got != want {
		t.Errorf("LUI/LI = %d, want %d", got, want)
	}
}

func TestFunctionalLoadStore(t *testing.T) {
	f, res := runFunc(t, `
		.data
		.org 10
	src:	.word 111, -222, 333
		.text
		LDA T1, src
		LOAD T2, T1, 0
		LOAD T3, T1, 1
		LOAD T4, T1, 2
		ADD T2, T3       ; -111
		ADD T2, T4       ; 222
		LDA T5, dst
		STORE T2, T5, 0
		HALT
		.data
	dst:	.word 0
	`)
	if got := f.S.Reg(2).Int(); got != 222 {
		t.Errorf("sum = %d, want 222", got)
	}
	dst := f.S.TDM
	w, err := dst.Read(13)
	if err != nil || w.Int() != 222 {
		t.Errorf("TDM[13] = %v (%v), want 222", w, err)
	}
	if res.Loads != 3 || res.Stores != 1 {
		t.Errorf("loads/stores = %d/%d, want 3/1", res.Loads, res.Stores)
	}
}

func TestFunctionalNegativeAddressing(t *testing.T) {
	// Balanced addresses wrap into the top of the unsigned space.
	f, _ := runFunc(t, `
		LDI T1, -1
		LDI T2, 777
		STORE T2, T1, 0
		LOAD T3, T1, 0
		HALT
	`)
	if got := f.S.Reg(3).Int(); got != 777 {
		t.Errorf("negative-address round trip = %d, want 777", got)
	}
}

func TestFunctionalJALLink(t *testing.T) {
	f, _ := runFunc(t, `
		NOP
		JAL T1, sub     ; at address 1: link = 2
		HALT
	sub:
		MV T2, T1
		JALR T3, T1, 0  ; return; link T3 = sub+2
	`)
	if got := f.S.Reg(2).Int(); got != 2 {
		t.Errorf("link = %d, want 2", got)
	}
	if got := f.S.Reg(3).Int(); got != 5 {
		t.Errorf("JALR link = %d, want 5", got)
	}
}

func TestFunctionalSubroutineCallReturn(t *testing.T) {
	// double(x): x += x; call twice via JAL/JALR.
	f, _ := runFunc(t, `
		LDI T2, 21
		JAL T1, double
		JAL T1, double
		HALT
	double:
		ADD T2, T2
		JALR T0, T1, 0
	`)
	if got := f.S.Reg(2).Int(); got != 84 {
		t.Errorf("double(double(21)) = %d, want 84", got)
	}
}

func TestFunctionalBNEConditionTrits(t *testing.T) {
	// Branch compares the LST of TRF[Tb] with the B trit; exercise all
	// three B values.
	for _, b := range []int{-1, 0, 1} {
		for _, v := range []int{-1, 0, 1} {
			src := fmt.Sprintf(`
				LDI T1, %d
				LDI T2, 0
				BEQ T1, %d, hit
				JAL T0, out
			hit:	LDI T2, 1
			out:	HALT
			`, v, b)
			f, _ := runFunc(t, src)
			want := 0
			if v == b {
				want = 1
			}
			if got := f.S.Reg(2).Int(); got != want {
				t.Errorf("BEQ LST=%d B=%d: hit=%d, want %d", v, b, got, want)
			}
		}
	}
}

func TestFunctionalANDIMasksLowTrits(t *testing.T) {
	f, _ := runFunc(t, `
		LDI T1, 0t1T1T1
		ANDI T1, 0t111   ; min with 000000111
		HALT
	`)
	w, _ := ternary.ParseWord("1T1T1")
	want := ternary.And(w, ternary.FromInt(13))
	if got := f.S.Reg(1); got != want {
		t.Errorf("ANDI = %v, want %v", got, want)
	}
}

func TestFunctionalCountingLoop(t *testing.T) {
	// Sum 1..10 = 55 with a COMP-driven loop.
	f, res := runFunc(t, `
		LDI T1, 0       ; sum
		LDI T2, 1       ; i
		LDI T3, 10      ; n
	loop:
		ADD T1, T2
		ADDI T2, 1
		MV T4, T2
		COMP T4, T3     ; i vs n
		BNE T4, 1, loop ; while i <= n
		HALT
	`)
	if got := f.S.Reg(1).Int(); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
	if res.Taken != 9 || res.NotTaken != 1 {
		t.Errorf("taken/not = %d/%d, want 9/1", res.Taken, res.NotTaken)
	}
}

func TestFunctionalHaltViaJALR(t *testing.T) {
	// A far HALT: LDA self + JALR to self must also stop.
	f, _ := runFunc(t, `
		LDA T1, stop
	stop:
		JALR T2, T1, 0  ; jumps to itself
	`)
	if f.S.PC.UIndex() != 2 {
		t.Errorf("halt PC = %d, want 2", f.S.PC.UIndex())
	}
}

func TestFunctionalNoHaltError(t *testing.T) {
	p, err := asm.Assemble("loop: ADDI T1, 1\nJAL T0, loop")
	if err != nil {
		t.Fatal(err)
	}
	f := NewFunctional(Config{MaxSteps: 1000})
	if err := f.S.Load(p); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err == nil {
		t.Error("runaway program did not error")
	} else if _, ok := err.(ErrNoHalt); !ok {
		t.Errorf("error = %v, want ErrNoHalt", err)
	}
}

func TestFunctionalIllegalInstruction(t *testing.T) {
	f := NewFunctional(Config{})
	// Plant an illegal word (bad R minor) at PC 0.
	w := ternary.Word{}.SetField(7, 8, -4).SetField(4, 6, 13)
	if err := f.S.TIM.LoadImage([]ternary.Word{w}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err == nil {
		t.Error("illegal instruction did not error")
	}
}

func TestFunctionalWrapArithmetic(t *testing.T) {
	f, _ := runFunc(t, `
		LDI T1, 9841
		ADDI T1, 1      ; wraps to -9841
		HALT
	`)
	if got := f.S.Reg(1).Int(); got != -9841 {
		t.Errorf("wrap = %d, want -9841", got)
	}
}

// buildRandomProgram emits a random but always-terminating program:
// forward-only control flow over ALU, memory and branch instructions.
func buildRandomProgram(rng *rand.Rand, n int) string {
	var b strings.Builder
	// Seed registers with random small values.
	for r := 1; r < isa.NumRegs; r++ {
		fmt.Fprintf(&b, "LDI T%d, %d\n", r, rng.Intn(2001)-1000)
	}
	lines := make([]string, n)
	for i := range lines {
		r1 := rng.Intn(8) + 1
		r2 := rng.Intn(8) + 1
		switch rng.Intn(12) {
		case 0:
			lines[i] = fmt.Sprintf("ADD T%d, T%d", r1, r2)
		case 1:
			lines[i] = fmt.Sprintf("SUB T%d, T%d", r1, r2)
		case 2:
			lines[i] = fmt.Sprintf("AND T%d, T%d", r1, r2)
		case 3:
			lines[i] = fmt.Sprintf("OR T%d, T%d", r1, r2)
		case 4:
			lines[i] = fmt.Sprintf("XOR T%d, T%d", r1, r2)
		case 5:
			lines[i] = fmt.Sprintf("ADDI T%d, %d", r1, rng.Intn(27)-13)
		case 6:
			lines[i] = fmt.Sprintf("COMP T%d, T%d", r1, r2)
		case 7:
			lines[i] = fmt.Sprintf("STORE T%d, T%d, %d", r1, r2, rng.Intn(27)-13)
		case 8:
			lines[i] = fmt.Sprintf("LOAD T%d, T%d, %d", r1, r2, rng.Intn(27)-13)
		case 9:
			// Forward conditional branch, always in range.
			off := rng.Intn(min(13, n-i)) + 1
			lines[i] = fmt.Sprintf("BNE T%d, %d, %d", r1, rng.Intn(3)-1, off)
		case 10:
			lines[i] = fmt.Sprintf("MV T%d, T%d", r1, r2)
		case 11:
			lines[i] = fmt.Sprintf("SLI T%d, %d", r1, rng.Intn(3))
		}
	}
	b.WriteString(strings.Join(lines, "\n"))
	b.WriteString("\nHALT\n")
	return b.String()
}

// TestPipelineMatchesFunctionalRandom is the core equivalence property:
// on random programs the pipelined core must finish with exactly the same
// architectural state as the functional reference.
func TestPipelineMatchesFunctionalRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		src := buildRandomProgram(rng, 40)
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("trial %d assemble: %v\n%s", trial, err, src)
		}
		f := NewFunctional(Config{})
		pl := NewPipeline(Config{})
		if err := f.S.Load(p); err != nil {
			t.Fatal(err)
		}
		if err := pl.S.Load(p); err != nil {
			t.Fatal(err)
		}
		fres, err := f.Run()
		if err != nil {
			t.Fatalf("trial %d functional: %v\n%s", trial, err, src)
		}
		pres, err := pl.Run()
		if err != nil {
			t.Fatalf("trial %d pipeline: %v\n%s", trial, err, src)
		}
		if f.S.TRF != pl.S.TRF {
			t.Fatalf("trial %d: TRF mismatch\nfunc: %v\npipe: %v\n%s",
				trial, f.S.TRF, pl.S.TRF, src)
		}
		fm, pm := f.S.TDM.Snapshot(), pl.S.TDM.Snapshot()
		for i := range fm {
			if fm[i] != pm[i] {
				t.Fatalf("trial %d: TDM[%d] mismatch: %v vs %v", trial, i, fm[i], pm[i])
			}
		}
		if fres.Retired != pres.Retired {
			t.Fatalf("trial %d: retired %d vs %d", trial, fres.Retired, pres.Retired)
		}
		// Cycle accounting invariant: fill (4) + one per instruction +
		// one per stall + one per squashed slot.
		want := pres.Retired + pres.StallsLoad + pres.StallsBranch + 4
		if pres.Cycles != want {
			t.Fatalf("trial %d: cycles %d, want %d (retired=%d loads=%d branch=%d)",
				trial, pres.Cycles, want, pres.Retired, pres.StallsLoad, pres.StallsBranch)
		}
	}
}

func TestPipelineLoadUseStall(t *testing.T) {
	// LOAD immediately followed by a consumer: exactly one stall.
	_, res := runPipe(t, `
		.data
		.org 5
	v:	.word 99
		.text
		LDA T1, v
		LOAD T2, T1, 0
		ADD T3, T2      ; load-use
		HALT
	`)
	if res.StallsLoad != 1 {
		t.Errorf("StallsLoad = %d, want 1", res.StallsLoad)
	}
	// With one spacer instruction: no stall.
	_, res = runPipe(t, `
		.data
		.org 5
	v:	.word 99
		.text
		LDA T1, v
		LOAD T2, T1, 0
		ADDI T5, 1
		ADD T3, T2
		HALT
	`)
	if res.StallsLoad != 0 {
		t.Errorf("spaced StallsLoad = %d, want 0", res.StallsLoad)
	}
}

func TestPipelineLoadUseValueCorrect(t *testing.T) {
	pl, _ := runPipe(t, `
		.data
		.org 5
	v:	.word 1234
		.text
		LDA T1, v
		LOAD T2, T1, 0
		ADDI T2, 1
		HALT
	`)
	if got := pl.S.Reg(2).Int(); got != 1235 {
		t.Errorf("load-use value = %d, want 1235", got)
	}
}

func TestPipelineBranchCosts(t *testing.T) {
	// A taken branch squashes one slot; not-taken costs nothing.
	_, res := runPipe(t, `
		LDI T1, 0
		BEQ T1, 0, skip  ; taken
		ADDI T2, 1
	skip:
		BEQ T1, 1, never ; not taken
		ADDI T3, 1
	never:
		HALT
	`)
	// Redirects: the taken BEQ and the implicit none else; HALT's own
	// detection does not squash (fetch simply stops).
	if res.StallsBranch != 1 {
		t.Errorf("StallsBranch = %d, want 1", res.StallsBranch)
	}
	if res.Taken != 1 || res.NotTaken != 1 {
		t.Errorf("taken/not = %d/%d, want 1/1", res.Taken, res.NotTaken)
	}
}

func TestPipelineBranchAfterCOMPNoStall(t *testing.T) {
	// §IV-B: forwarding the one-trit condition lets a branch follow its
	// COMP immediately with no stall.
	_, res := runPipe(t, `
		LDI T1, 5
		LDI T2, 3
		MV T3, T1
		COMP T3, T2
		BEQ T3, 1, yes   ; depends on COMP directly above
		ADDI T4, 1
	yes:
		HALT
	`)
	if res.StallsLoad != 0 {
		t.Errorf("COMP→BEQ caused %d load stalls, want 0", res.StallsLoad)
	}
	// Only the taken branch costs a slot.
	if res.StallsBranch != 1 {
		t.Errorf("StallsBranch = %d, want 1", res.StallsBranch)
	}
}

func TestPipelineForwardingChain(t *testing.T) {
	// Back-to-back dependent ALU ops must not stall and must compute
	// correctly through the forwarding network.
	pl, res := runPipe(t, `
		LDI T1, 1
		ADD T1, T1      ; 2
		ADD T1, T1      ; 4
		ADD T1, T1      ; 8
		ADD T1, T1      ; 16
		HALT
	`)
	if got := pl.S.Reg(1).Int(); got != 16 {
		t.Errorf("chain = %d, want 16", got)
	}
	if res.StallsLoad != 0 {
		t.Errorf("ALU chain stalled %d times", res.StallsLoad)
	}
}

func TestPipelineCPIBounds(t *testing.T) {
	// A long stall-free straight-line program approaches CPI 1.
	var b strings.Builder
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&b, "ADDI T1, 1\n")
	}
	b.WriteString("HALT\n")
	_, res := runPipe(t, b.String())
	if cpi := res.CPI(); cpi > 1.02 {
		t.Errorf("straight-line CPI = %f, want ≈1", cpi)
	}
}

func TestPipelineLoopCycles(t *testing.T) {
	// The counting loop: per iteration 5 instructions + 1 taken-branch
	// squash (except the final fall-through).
	_, res := runPipe(t, `
		LDI T1, 0
		LDI T2, 1
		LDI T3, 10
	loop:
		ADD T1, T2
		ADDI T2, 1
		MV T4, T2
		COMP T4, T3
		BNE T4, 1, loop
		HALT
	`)
	wantRetired := uint64(6 + 10*5) // 5 setup (3 LDI = 6 words) + 50 loop
	if res.Retired != wantRetired {
		t.Errorf("retired = %d, want %d", res.Retired, wantRetired)
	}
	if res.StallsBranch != 9 {
		t.Errorf("branch squashes = %d, want 9", res.StallsBranch)
	}
	if res.StallsLoad != 0 {
		t.Errorf("load stalls = %d, want 0", res.StallsLoad)
	}
}

func TestResultCPIZeroSafe(t *testing.T) {
	var r Result
	if r.CPI() != 0 {
		t.Error("CPI of empty result should be 0")
	}
}
