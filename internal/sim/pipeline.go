package sim

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/ternary"
)

// Pipeline is the cycle-accurate 5-stage pipelined ART-9 core of §IV-B and
// Fig. 4 of the paper: IF → ID → EX → MEM → WB with
//
//   - a hazard detection unit (HDU) in ID comparing adjacent instructions,
//   - full forwarding into the operand read (EX results same-cycle for the
//     ID-stage branch-condition/target datapath, MEM and WB results via the
//     forwarding multiplexers), so ALU-use hazards never stall,
//   - branch-target calculation and condition checking in ID, redirecting
//     the PC directly, so a taken control transfer squashes exactly the one
//     slot behind it,
//   - stalls inserted only for load-use hazards and taken transfers,
//     matching the paper's "we only observe the hardware-inserted stall
//     cycles when there exist load-use data hazards and taken branches".
//
// The model executes real values through the stage latches; tests verify
// that its final architectural state equals the functional core's.
type Pipeline struct {
	S   *State
	cfg Config

	// Trace, if non-nil, receives a one-line description of every cycle.
	Trace func(cycle uint64, line string)
}

// NewPipeline builds a pipelined core over a fresh state.
func NewPipeline(cfg Config) *Pipeline {
	return &Pipeline{S: NewState(cfg), cfg: cfg.withDefaults()}
}

// latchIFID carries a fetched instruction into decode.
type latchIFID struct {
	valid bool
	pc    ternary.Packed
	inst  isa.Inst
}

// latchIDEX carries a decoded instruction with resolved operands.
type latchIDEX struct {
	valid  bool
	pc     ternary.Packed
	inst   isa.Inst
	ta, tb ternary.Packed // forwarded operand values
	halt   bool           // this instruction is the halt transfer
}

// latchEXMEM carries the computed effect.
type latchEXMEM struct {
	valid bool
	inst  isa.Inst
	eff   effect
	halt  bool
}

// latchMEMWB carries the writeback value.
type latchMEMWB struct {
	valid bool
	inst  isa.Inst
	eff   effect // val filled for loads
	halt  bool
}

// Run executes the loaded program cycle by cycle until the halt
// instruction leaves writeback.
func (p *Pipeline) Run() (Result, error) {
	var (
		res   Result
		ifid  latchIFID
		idex  latchIDEX
		exmem latchEXMEM
		memwb latchMEMWB

		fetchPC   = p.S.PC
		stopFetch bool // halt observed in ID: stop issuing new work
	)

	for cycle := 0; cycle < p.cfg.MaxSteps; cycle++ {
		res.Cycles++

		// Pre-shift snapshots: the instruction each stage is working on
		// THIS cycle, for the trace line rendered at the cycle's end.
		idS, exS, memS, wbS := ifid, idex, exmem, memwb

		// ---- WB: retire memwb (first half of cycle: write TRF).
		if memwb.valid {
			e := memwb.eff
			if memwb.halt {
				// The halt idiom has no architectural effect beyond
				// parking the PC at its own address, but it retires
				// like any other instruction, so its opcode counts
				// toward the mix (ΣOpMix must reach 1).
				res.Retired++
				res.ByCategory[memwb.inst.Op.Category()]++
				res.ByOp[memwb.inst.Op]++
				p.S.PC = e.nextPC
				res.HaltPC = e.nextPC.UIndex()
				return res, nil
			}
			if e.writesReg {
				p.S.TRF[e.reg] = e.val
			}
			res.Retired++
			res.ByCategory[memwb.inst.Op.Category()]++
			res.ByOp[memwb.inst.Op]++
			if e.branch {
				if e.taken {
					res.Taken++
				} else {
					res.NotTaken++
				}
			} else if e.taken {
				res.Jumps++
			}
		}
		memwb = latchMEMWB{}

		// ---- MEM: TDM access for exmem.
		if exmem.valid {
			e := exmem.eff
			if e.isLoad {
				v, err := p.S.TDM.ReadP(e.addr.UIndex())
				if err != nil {
					return res, fmt.Errorf("sim: MEM: %w", err)
				}
				e.val = v
				res.Loads++
			}
			if e.isStore {
				if err := p.S.TDM.WriteP(e.addr.UIndex(), e.store); err != nil {
					return res, fmt.Errorf("sim: MEM: %w", err)
				}
				res.Stores++
			}
			memwb = latchMEMWB{valid: true, inst: exmem.inst, eff: e, halt: exmem.halt}
		}
		exmem = latchEXMEM{}

		// ---- EX: compute the effect with the operands resolved in ID.
		if idex.valid {
			e := evaluate(idex.inst, idex.pc, idex.ta, idex.tb)
			exmem = latchEXMEM{valid: true, inst: idex.inst, eff: e, halt: idex.halt}
		}
		idex = latchIDEX{}

		// ---- ID: hazard detection, forwarding, branch resolution.
		redirect := false
		var redirectPC ternary.Packed
		stalled := false
		if ifid.valid {
			in := ifid.inst
			// Load-use hazard: the instruction now entering EX (exmem
			// was just filled from idex — but that is this cycle's EX;
			// the HDU compares ID against the instruction in EX).
			if exmem.valid && exmem.eff.isLoad && exmem.eff.writesReg {
				r := exmem.eff.reg
				if (in.Op.ReadsTa() && in.Ta == r) || (in.Op.ReadsTb() && in.Tb == r) {
					stalled = true
					res.StallsLoad++
				}
			}
			if !stalled {
				ta := p.forward(in.Ta, exmem, memwb)
				tb := p.forward(in.Tb, exmem, memwb)
				e := evaluate(in, ifid.pc, ta, tb)
				halt := e.isHalt(ifid.pc)
				idex = latchIDEX{valid: true, pc: ifid.pc, inst: in, ta: ta, tb: tb, halt: halt}
				if halt {
					stopFetch = true
				} else if e.taken {
					redirect = true
					redirectPC = e.nextPC
					res.StallsBranch++
				}
			}
		}

		// ---- IF: fetch into ifid unless stalled or draining.
		var ifS latchIFID // what IF fetched this cycle (for the trace)
		if stalled {
			// ifid retained; the bubble naturally flows from idex being
			// empty next cycle.
		} else if redirect {
			ifid = latchIFID{} // squash the wrong-path fetch
			fetchPC = redirectPC
		} else if stopFetch {
			ifid = latchIFID{}
		} else {
			w, err := p.S.TIM.ReadP(fetchPC.UIndex())
			if err != nil {
				return res, fmt.Errorf("sim: IF at PC=%d: %w", fetchPC.Int(), err)
			}
			in, err := isa.DecodePacked(w)
			if err != nil {
				return res, fmt.Errorf("sim: IF at PC=%d: %w", fetchPC.Int(), err)
			}
			ifid = latchIFID{valid: true, pc: fetchPC, inst: in}
			fetchPC = fetchPC.Inc()
			ifS = ifid
		}

		if p.Trace != nil {
			p.Trace(res.Cycles, p.traceLine(ifS, idS, exS, memS, wbS, stalled, redirect))
		}
	}
	return res, ErrNoHalt{p.cfg.MaxSteps}
}

// forward resolves the value of register r as seen by the instruction in
// ID: the newest in-flight producer wins (EX this cycle, then MEM, then
// WB); otherwise the register file. The load-use stall rule guarantees
// that an EX-stage LOAD is never selected here.
func (p *Pipeline) forward(r isa.Reg, exmem latchEXMEM, memwb latchMEMWB) ternary.Packed {
	if exmem.valid && exmem.eff.writesReg && exmem.eff.reg == r && !exmem.eff.isLoad {
		return exmem.eff.val
	}
	if memwb.valid && memwb.eff.writesReg && memwb.eff.reg == r {
		return memwb.eff.val
	}
	return p.S.TRF[r]
}

// traceLine renders one cycle of the schedule. Every column shows the
// instruction the stage worked on during this cycle — the pre-shift latch
// contents snapshotted at the top of the loop, plus the instruction IF
// fetched — so the five columns line up with the textbook pipeline diagram
// rather than trailing a stage behind.
func (p *Pipeline) traceLine(ifS latchIFID, idS latchIFID, exS latchIDEX, memS latchEXMEM, wbS latchMEMWB, stalled, redirect bool) string {
	stage := func(valid bool, in isa.Inst) string {
		if !valid {
			return "-"
		}
		return in.String()
	}
	flags := ""
	if stalled {
		flags += " [stall]"
	}
	if redirect {
		flags += " [redirect]"
	}
	return fmt.Sprintf("IF:%-18s ID:%-18s EX:%-18s MEM:%-18s WB:%-18s%s",
		stage(ifS.valid, ifS.inst), stage(idS.valid, idS.inst),
		stage(exS.valid, exS.inst), stage(memS.valid, memS.inst),
		stage(wbS.valid, wbS.inst), flags)
}
