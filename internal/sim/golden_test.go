package sim

import (
	"strings"
	"testing"

	"repro/internal/asm"
)

// TestGoldenPipelineSchedule pins the exact cycle-by-cycle behaviour of
// the §IV-B pipeline on a program exercising both stall sources. If the
// microarchitecture changes, this fails loudly with the full schedule.
func TestGoldenPipelineSchedule(t *testing.T) {
	p, err := asm.Assemble(`
		LDI T1, 40       ; LUI + LI (2 words)
		STORE T1, T0, 5
		LOAD T2, T0, 5   ; load...
		ADD T2, T2       ; ...use → 1 stall
		BEQ T2, 0, skip  ; LST(80)... 80 = 10T01: LST=1 → not taken
		ADDI T3, 1
	skip:	JAL T4, end      ; taken → 1 squash
		ADDI T3, 1       ; skipped
	end:	HALT
	`)
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPipeline(Config{})
	var trace []string
	pl.Trace = func(cycle uint64, line string) { trace = append(trace, line) }
	if err := pl.S.Load(p); err != nil {
		t.Fatal(err)
	}
	res, err := pl.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Expected accounting: 9 retired (8 real + halt), 1 load-use stall,
	// 1 squash, fill 4 → cycles = 9 + 1 + 1 + 4 = 15.
	if res.Retired != 9 {
		t.Errorf("retired = %d, want 9", res.Retired)
	}
	if res.StallsLoad != 1 {
		t.Errorf("load stalls = %d, want 1", res.StallsLoad)
	}
	if res.StallsBranch != 1 {
		t.Errorf("squashes = %d, want 1", res.StallsBranch)
	}
	if res.Cycles != 15 {
		t.Errorf("cycles = %d, want 15\nschedule:\n%s",
			res.Cycles, strings.Join(trace, "\n"))
	}
	if res.NotTaken != 1 || res.Taken != 0 {
		t.Errorf("branch outcome %d/%d, want 0 taken / 1 not", res.Taken, res.NotTaken)
	}
	if got := pl.S.Reg(2).Int(); got != 80 {
		t.Errorf("T2 = %d, want 80", got)
	}
	if got := pl.S.Reg(3).Int(); got != 1 {
		t.Errorf("T3 = %d, want 1 (fall-through executed, post-JAL skipped)", got)
	}

	// The trace must show the stall (ID holds while EX bubbles) and the
	// redirect marker.
	joined := strings.Join(trace, "\n")
	if !strings.Contains(joined, "[stall]") {
		t.Error("schedule missing the load-use stall marker")
	}
	if !strings.Contains(joined, "[redirect]") {
		t.Error("schedule missing the taken-transfer redirect marker")
	}
}
