package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/xlate"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var h struct {
		Status  string `json:"status"`
		Shards  int    `json:"shards"`
		Workers int    `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Shards != 2 || h.Workers != 2 {
		t.Errorf("healthz = %+v, want ok over 2 shards × 1 worker", h)
	}
}

func TestEvalWorkload(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	body := `{"name":"bubble","workload":"bubble","technologies":["cntfet32"]}`
	resp, err := http.Post(ts.URL+"/v1/eval", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var jr bench.JobReport
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if !jr.OK || jr.Metrics == nil || len(jr.Implementations) != 1 {
		t.Fatalf("eval report %+v, want ok with metrics and one implementation", jr)
	}

	want, err := bench.Run(mustWorkload(t, "bubble"), xlate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if jr.Metrics.Checksum != want.Checksum || jr.Metrics.ART9Cycles != want.ART9Cycles {
		t.Errorf("eval metrics %+v disagree with serial run (checksum %d, cycles %d)",
			jr.Metrics, want.Checksum, want.ART9Cycles)
	}
}

func TestEvalErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	tests := []struct {
		name string
		body string
		want string
	}{
		{"empty body", "", "empty request body"},
		{"bad json", "{", "decode body"},
		{"file rejected", `{"name":"x","file":"/etc/passwd"}`, "file jobs are not allowed here"},
		{"unknown workload", `{"name":"x","workload":"nope"}`, `unknown workload "nope"`},
		{"unknown tech", `{"name":"x","workload":"bubble","technologies":["tfet"]}`, "unknown technology"},
		{"both set", `{"name":"x","workload":"bubble","source":"nop"}`, "exactly one of"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/eval", "application/json", strings.NewReader(tt.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(e.Error, tt.want) {
				t.Errorf("error %q, want containing %q", e.Error, tt.want)
			}
		})
	}

	resp, err := http.Get(ts.URL + "/v1/eval")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/eval status %d, want 405", resp.StatusCode)
	}
}

// TestSuiteNDJSONRoundTrip streams the full §V-A suite through
// /v1/suite and checks (a) every line is valid JSON, (b) the streamed
// metrics are byte-equivalent to the serial reference path
// (bench.RunAllSerial) for every workload, and (c) the content type
// marks the stream as NDJSON.
func TestSuiteNDJSONRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, Workers: 2})

	var m bench.Manifest
	m.Technologies = []string{"cntfet32", "stratixv"}
	for _, w := range bench.Workloads {
		m.Jobs = append(m.Jobs, bench.ManifestJob{Name: w.Name, Workload: w.Name})
	}
	body, _ := json.Marshal(m)

	resp, err := http.Post(ts.URL+"/v1/suite", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q, want application/x-ndjson", ct)
	}

	serial, err := bench.RunAllSerial()
	if err != nil {
		t.Fatal(err)
	}
	techs, err := bench.Technologies(m.Technologies)
	if err != nil {
		t.Fatal(err)
	}

	got := map[string]bench.JobReport{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			t.Fatal("blank NDJSON line")
		}
		var jr bench.JobReport
		if err := json.Unmarshal(line, &jr); err != nil {
			t.Fatalf("malformed NDJSON line %q: %v", line, err)
		}
		if !jr.OK {
			t.Fatalf("job %s failed: %s", jr.Name, jr.Error)
		}
		got[jr.Name] = jr
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(m.Jobs) {
		t.Fatalf("streamed %d jobs, want %d", len(got), len(m.Jobs))
	}

	for name, o := range serial {
		jr, ok := got[name]
		if !ok {
			t.Fatalf("workload %s missing from stream", name)
		}
		wantMetrics, _ := json.Marshal(&bench.MetricsReport{
			Checksum:   o.Checksum,
			RVInsts:    o.RVInsts,
			RVBits:     o.RVBits,
			ARTInsts:   o.ARTInsts,
			ARTTrits:   o.ARTTrits,
			ART9Cycles: o.ART9Cycles,
			VexCycles:  o.VexCycles,
			PicoCycles: o.PicoCycles,
			Removed:    o.Removed,
		})
		gotMetrics, _ := json.Marshal(jr.Metrics)
		if !bytes.Equal(gotMetrics, wantMetrics) {
			t.Errorf("%s: streamed metrics %s != serial %s", name, gotMetrics, wantMetrics)
		}
		wantImpls, _ := json.Marshal(bench.ImplReports(o, techs))
		gotImpls, _ := json.Marshal(jr.Implementations)
		if !bytes.Equal(gotImpls, wantImpls) {
			t.Errorf("%s: streamed implementations %s != serial %s", name, gotImpls, wantImpls)
		}
	}
}

func TestSuiteBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	tests := []struct {
		name string
		body string
		want string
	}{
		{"no jobs", `{"technologies":["cntfet32"]}`, "no jobs"},
		{"file job", `{"jobs":[{"name":"x","file":"secret.s"}]}`, "file jobs are not allowed here"},
		{"unknown tech", `{"technologies":["nand"],"jobs":[{"name":"b","workload":"bubble"}]}`, "unknown technology"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/suite", "application/json", strings.NewReader(tt.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(e.Error, tt.want) {
				t.Errorf("error %q, want containing %q", e.Error, tt.want)
			}
		})
	}
}

// TestSuiteClientDisconnectCancels reads one NDJSON line of a long
// suite, then drops the connection; the request context must cancel the
// remaining jobs, observable on the engine's canceled counter.
func TestSuiteClientDisconnectCancels(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	// Dhrystone is the suite's slowest workload (~tens of ms per job);
	// 40 of them on one worker keep the stream busy for over a second,
	// so the disconnect after the first line leaves plenty queued.
	var m bench.Manifest
	for i := 0; i < 40; i++ {
		m.Jobs = append(m.Jobs, bench.ManifestJob{
			Name: fmt.Sprintf("dhrystone-%d", i), Workload: "dhrystone",
		})
	}
	body, _ := json.Marshal(m)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/suite", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first NDJSON line: %v", sc.Err())
	}
	var first bench.JobReport
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("first line %q: %v", sc.Bytes(), err)
	}
	cancel() // client walks away mid-stream; the connection closes now
	resp.Body.Close()

	deadline := time.Now().Add(15 * time.Second)
	for {
		st := s.Backend().Stats()
		if st.Canceled > 0 && st.Submitted == st.Completed+st.Failed+st.Canceled+st.Rejected {
			return // remaining jobs were cancelled, none stranded
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats %+v: expected canceled jobs after client disconnect", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSuiteRequestLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	// Oversize body → 413, not a misleading decode error.
	big := bytes.Repeat([]byte("x"), 5<<20)
	resp, err := http.Post(ts.URL+"/v1/suite", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize body status %d, want 413", resp.StatusCode)
	}

	// Too many jobs → 400 naming the limit, before anything runs.
	var m bench.Manifest
	for i := 0; i < 1025; i++ {
		m.Jobs = append(m.Jobs, bench.ManifestJob{Name: fmt.Sprintf("j%d", i), Workload: "bubble"})
	}
	body, _ := json.Marshal(m)
	resp, err = http.Post(ts.URL+"/v1/suite", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("1025-job manifest status %d, want 400", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "per-request limit") {
		t.Errorf("error %q, want the per-request job limit named", e.Error)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, Workers: 1})
	if _, err := http.Post(ts.URL+"/v1/eval", "application/json",
		strings.NewReader(`{"name":"bubble","workload":"bubble"}`)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatsReply
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Engine.Shards != 2 || len(sr.ShardStats) != 2 {
		t.Errorf("stats %+v, want 2 shards", sr.Engine)
	}
	if sr.Engine.Submitted < 1 || sr.Requests < 2 {
		t.Errorf("stats %+v / %d requests, want at least the eval job and both requests", sr.Engine, sr.Requests)
	}
}

// TestEvalTypedErrorStatuses pins the typed error surface of /v1/eval:
// a closed backend maps to 503 and an engine-imposed job timeout to 504,
// instead of both hiding inside a 200 row or a generic 500.
func TestEvalTypedErrorStatuses(t *testing.T) {
	t.Run("closed backend is 503", func(t *testing.T) {
		s, ts := newTestServer(t, Config{Workers: 1})
		s.Backend().Close() // simulate drain completing under a live handler
		resp, err := http.Post(ts.URL+"/v1/eval", "application/json",
			strings.NewReader(`{"name":"bubble","workload":"bubble"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503", resp.StatusCode)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(e.Error, "closed") {
			t.Errorf("error %q, want the closed condition named", e.Error)
		}
	})

	t.Run("job timeout is 504", func(t *testing.T) {
		_, ts := newTestServer(t, Config{Workers: 1, JobTimeout: time.Nanosecond})
		resp, err := http.Post(ts.URL+"/v1/eval", "application/json",
			strings.NewReader(`{"name":"bubble","workload":"bubble"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("status %d, want 504", resp.StatusCode)
		}
	})

	t.Run("per-request timeout_ms is honoured", func(t *testing.T) {
		// No server-level JobTimeout: the bound comes from the request.
		// The inline program spins for millions of RV32 steps, far past
		// a 1ms budget, so the stage-boundary ctx check after the RV32
		// run trips and maps to 504.
		_, ts := newTestServer(t, Config{Workers: 1})
		body, _ := json.Marshal(map[string]any{
			"name":       "spin",
			"source":     "\tli   a0, 0\n\tli   t0, 3000000\nspin:\n\taddi t0, t0, -1\n\tbne  t0, zero, spin\n\tebreak\n",
			"timeout_ms": 1,
		})
		resp, err := http.Post(ts.URL+"/v1/eval", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("status %d, want 504 from the request-level timeout", resp.StatusCode)
		}
	})
}

// TestServeProxiesToPeer fronts one art9-serve with another configured
// proxy-only via Config.Peers — the serve→serve topology — and checks
// a suite and a single eval round-trip through the front match direct
// evaluation.
func TestServeProxiesToPeer(t *testing.T) {
	_, leaf := newTestServer(t, Config{Workers: 2})
	front, frontTS := newTestServer(t, Config{Peers: []string{leaf.URL}})

	if got := front.shardCount(); got != 1 {
		t.Errorf("front shard count %d, want 1 (the one remote client)", got)
	}

	// Liveness never blocks on the peer: workers reports local pools
	// only, so a proxy-only front answers 0 with the peer count beside.
	hz, err := http.Get(frontTS.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Workers int `json:"workers"`
		Peers   int `json:"peers"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if h.Workers != 0 || h.Peers != 1 {
		t.Errorf("front healthz workers=%d peers=%d, want 0 local workers and 1 peer", h.Workers, h.Peers)
	}

	body := `{"technologies":["cntfet32"],"jobs":[
		{"name":"bubble","workload":"bubble"},
		{"name":"gemm","workload":"gemm"}]}`
	resp, err := http.Post(frontTS.URL+"/v1/suite", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("suite via front: status %d, want 200", resp.StatusCode)
	}
	want := map[string]*bench.Outcome{}
	for _, name := range []string{"bubble", "gemm"} {
		o, err := bench.Run(mustWorkload(t, name), xlate.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want[name] = o
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	rows := 0
	for sc.Scan() {
		var jr bench.JobReport
		if err := json.Unmarshal(sc.Bytes(), &jr); err != nil {
			t.Fatalf("malformed row %q: %v", sc.Bytes(), err)
		}
		rows++
		o, ok := want[jr.Name]
		if !ok {
			t.Fatalf("unexpected row %q", jr.Name)
		}
		if !jr.OK || jr.Metrics == nil {
			t.Fatalf("row %s not ok: %s", jr.Name, jr.Error)
		}
		if jr.Metrics.Checksum != o.Checksum || jr.Metrics.ART9Cycles != o.ART9Cycles {
			t.Errorf("row %s metrics %+v disagree with direct run", jr.Name, jr.Metrics)
		}
		if len(jr.Implementations) != 1 {
			t.Errorf("row %s has %d implementations, want 1 (peer-evaluated cntfet32)", jr.Name, len(jr.Implementations))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != 2 {
		t.Fatalf("front streamed %d rows, want 2", rows)
	}

	evalResp, err := http.Post(frontTS.URL+"/v1/eval", "application/json",
		strings.NewReader(`{"name":"sobel","workload":"sobel","technologies":["stratixv"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer evalResp.Body.Close()
	if evalResp.StatusCode != http.StatusOK {
		t.Fatalf("eval via front: status %d, want 200", evalResp.StatusCode)
	}
	var jr bench.JobReport
	if err := json.NewDecoder(evalResp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if !jr.OK || jr.Metrics == nil || len(jr.Implementations) != 1 {
		t.Fatalf("eval via front: report %+v, want ok with one implementation", jr)
	}
}

func mustWorkload(t *testing.T, name string) bench.Workload {
	t.Helper()
	w, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("workload %q missing from suite", name)
	}
	return w
}
