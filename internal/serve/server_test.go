package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/engine/faulttest"
	"repro/internal/xlate"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var h struct {
		Status  string `json:"status"`
		Shards  int    `json:"shards"`
		Workers int    `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Shards != 2 || h.Workers != 2 {
		t.Errorf("healthz = %+v, want ok over 2 shards × 1 worker", h)
	}
}

func TestEvalWorkload(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	body := `{"name":"bubble","workload":"bubble","technologies":["cntfet32"]}`
	resp, err := http.Post(ts.URL+"/v1/eval", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var jr bench.JobReport
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if !jr.OK || jr.Metrics == nil || len(jr.Implementations) != 1 {
		t.Fatalf("eval report %+v, want ok with metrics and one implementation", jr)
	}

	want, err := bench.Run(mustWorkload(t, "bubble"), xlate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if jr.Metrics.Checksum != want.Checksum || jr.Metrics.ART9Cycles != want.ART9Cycles {
		t.Errorf("eval metrics %+v disagree with serial run (checksum %d, cycles %d)",
			jr.Metrics, want.Checksum, want.ART9Cycles)
	}
}

func TestEvalErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	tests := []struct {
		name string
		body string
		want string
	}{
		{"empty body", "", "empty request body"},
		{"bad json", "{", "decode body"},
		{"file rejected", `{"name":"x","file":"/etc/passwd"}`, "file jobs are not allowed here"},
		{"unknown workload", `{"name":"x","workload":"nope"}`, `unknown workload "nope"`},
		{"unknown tech", `{"name":"x","workload":"bubble","technologies":["tfet"]}`, "unknown technology"},
		{"both set", `{"name":"x","workload":"bubble","source":"nop"}`, "exactly one of"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/eval", "application/json", strings.NewReader(tt.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(e.Error, tt.want) {
				t.Errorf("error %q, want containing %q", e.Error, tt.want)
			}
		})
	}

	resp, err := http.Get(ts.URL + "/v1/eval")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/eval status %d, want 405", resp.StatusCode)
	}
}

// TestSuiteNDJSONRoundTrip streams the full §V-A suite through
// /v1/suite and checks (a) every line is valid JSON, (b) the streamed
// metrics are byte-equivalent to the serial reference path
// (bench.RunAllSerial) for every workload, and (c) the content type
// marks the stream as NDJSON.
func TestSuiteNDJSONRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, Workers: 2})

	var m bench.Manifest
	m.Technologies = []string{"cntfet32", "stratixv"}
	for _, w := range bench.Workloads {
		m.Jobs = append(m.Jobs, bench.ManifestJob{Name: w.Name, Workload: w.Name})
	}
	body, _ := json.Marshal(m)

	resp, err := http.Post(ts.URL+"/v1/suite", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q, want application/x-ndjson", ct)
	}

	serial, err := bench.RunAllSerial()
	if err != nil {
		t.Fatal(err)
	}
	techs, err := bench.Technologies(m.Technologies)
	if err != nil {
		t.Fatal(err)
	}

	got := map[string]bench.JobReport{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			t.Fatal("blank NDJSON line")
		}
		var jr bench.JobReport
		if err := json.Unmarshal(line, &jr); err != nil {
			t.Fatalf("malformed NDJSON line %q: %v", line, err)
		}
		if !jr.OK {
			t.Fatalf("job %s failed: %s", jr.Name, jr.Error)
		}
		got[jr.Name] = jr
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(m.Jobs) {
		t.Fatalf("streamed %d jobs, want %d", len(got), len(m.Jobs))
	}

	for name, o := range serial {
		jr, ok := got[name]
		if !ok {
			t.Fatalf("workload %s missing from stream", name)
		}
		wantMetrics, _ := json.Marshal(bench.MetricsReportOf(o))
		gotMetrics, _ := json.Marshal(jr.Metrics)
		if !bytes.Equal(gotMetrics, wantMetrics) {
			t.Errorf("%s: streamed metrics %s != serial %s", name, gotMetrics, wantMetrics)
		}
		wantImpls, _ := json.Marshal(bench.ImplReports(o, techs))
		gotImpls, _ := json.Marshal(jr.Implementations)
		if !bytes.Equal(gotImpls, wantImpls) {
			t.Errorf("%s: streamed implementations %s != serial %s", name, gotImpls, wantImpls)
		}
	}
}

// TestSuiteAckRows pins the acknowledged stream variant chunk
// dispatchers consume: ?ack=1 brackets the result rows with a start ack
// carrying the accepted job count and an end ack carrying the row
// count, while the plain stream stays ack-free for existing consumers.
func TestSuiteAckRows(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	body := `{"technologies":["cntfet32"],"jobs":[
		{"name":"bubble","workload":"bubble"},
		{"name":"gemm","workload":"gemm"}]}`

	resp, err := http.Post(ts.URL+"/v1/suite?ack=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var row map[string]any
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("malformed line %q: %v", sc.Bytes(), err)
		}
		lines = append(lines, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 4 {
		t.Fatalf("acked stream has %d lines, want start + 2 rows + end", len(lines))
	}
	if lines[0]["ack"] != "start" || lines[0]["jobs"] != float64(2) {
		t.Errorf("first line %v, want start ack with jobs=2", lines[0])
	}
	last := lines[len(lines)-1]
	if last["ack"] != "end" || last["rows"] != float64(2) {
		t.Errorf("last line %v, want end ack with rows=2", last)
	}
	for _, row := range lines[1 : len(lines)-1] {
		if _, isAck := row["ack"]; isAck {
			t.Errorf("unexpected ack row between results: %v", row)
		}
		if row["ok"] != true {
			t.Errorf("result row %v not ok", row)
		}
	}

	// The plain stream must stay byte-compatible: no ack rows at all.
	plain, err := http.Post(ts.URL+"/v1/suite", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Body.Close()
	sc = bufio.NewScanner(plain.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	rows := 0
	for sc.Scan() {
		var row map[string]any
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("malformed line %q: %v", sc.Bytes(), err)
		}
		if _, isAck := row["ack"]; isAck {
			t.Errorf("plain stream leaked an ack row: %v", row)
		}
		rows++
	}
	if rows != 2 {
		t.Errorf("plain stream has %d rows, want 2", rows)
	}
}

// TestCapacityEndpoint pins the lightweight capacity fast path: the
// process-local pool shape with free workers, consistent with the
// snapshot /v1/stats embeds.
func TestCapacityEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, Workers: 2})
	resp, err := http.Get(ts.URL + "/v1/capacity")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var c engine.Capacity
	if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
		t.Fatal(err)
	}
	if c.Workers != 4 || c.Free != 4 || c.Busy != 0 || c.Queue != 0 {
		t.Errorf("idle capacity %+v, want 4 workers all free", c)
	}

	post, err := http.Post(ts.URL+"/v1/capacity", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/capacity status %d, want 405", post.StatusCode)
	}

	stats, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer stats.Body.Close()
	var sr StatsReply
	if err := json.NewDecoder(stats.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Capacity.Workers != 4 {
		t.Errorf("stats capacity %+v, want the same 4-worker snapshot", sr.Capacity)
	}
}

func TestSuiteBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	tests := []struct {
		name string
		body string
		want string
	}{
		{"no jobs", `{"technologies":["cntfet32"]}`, "no jobs"},
		{"file job", `{"jobs":[{"name":"x","file":"secret.s"}]}`, "file jobs are not allowed here"},
		{"unknown tech", `{"technologies":["nand"],"jobs":[{"name":"b","workload":"bubble"}]}`, "unknown technology"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/suite", "application/json", strings.NewReader(tt.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(e.Error, tt.want) {
				t.Errorf("error %q, want containing %q", e.Error, tt.want)
			}
		})
	}
}

// TestSuiteClientDisconnectCancels reads one NDJSON line of a long
// suite, then drops the connection; the request context must cancel the
// remaining jobs, observable on the engine's canceled counter.
func TestSuiteClientDisconnectCancels(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	// Dhrystone is the suite's slowest workload (~tens of ms per job);
	// 40 of them on one worker keep the stream busy for over a second,
	// so the disconnect after the first line leaves plenty queued.
	var m bench.Manifest
	for i := 0; i < 40; i++ {
		m.Jobs = append(m.Jobs, bench.ManifestJob{
			Name: fmt.Sprintf("dhrystone-%d", i), Workload: "dhrystone",
		})
	}
	body, _ := json.Marshal(m)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/suite", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first NDJSON line: %v", sc.Err())
	}
	var first bench.JobReport
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("first line %q: %v", sc.Bytes(), err)
	}
	cancel() // client walks away mid-stream; the connection closes now
	resp.Body.Close()

	deadline := time.Now().Add(15 * time.Second)
	for {
		st := s.Backend().Stats()
		if st.Canceled > 0 && st.Submitted == st.Completed+st.Failed+st.Canceled+st.Rejected {
			return // remaining jobs were cancelled, none stranded
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats %+v: expected canceled jobs after client disconnect", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSuiteRequestLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	// Oversize body → 413, not a misleading decode error.
	big := bytes.Repeat([]byte("x"), 5<<20)
	resp, err := http.Post(ts.URL+"/v1/suite", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize body status %d, want 413", resp.StatusCode)
	}

	// Too many jobs → 400 naming the limit, before anything runs.
	var m bench.Manifest
	for i := 0; i < 1025; i++ {
		m.Jobs = append(m.Jobs, bench.ManifestJob{Name: fmt.Sprintf("j%d", i), Workload: "bubble"})
	}
	body, _ := json.Marshal(m)
	resp, err = http.Post(ts.URL+"/v1/suite", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("1025-job manifest status %d, want 400", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "per-request limit") {
		t.Errorf("error %q, want the per-request job limit named", e.Error)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, Workers: 1})
	if _, err := http.Post(ts.URL+"/v1/eval", "application/json",
		strings.NewReader(`{"name":"bubble","workload":"bubble"}`)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatsReply
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Engine.Shards != 2 || len(sr.ShardStats) != 2 {
		t.Errorf("stats %+v, want 2 shards", sr.Engine)
	}
	if sr.Engine.Submitted < 1 || sr.Requests < 2 {
		t.Errorf("stats %+v / %d requests, want at least the eval job and both requests", sr.Engine, sr.Requests)
	}
}

// TestEvalTypedErrorStatuses pins the typed error surface of /v1/eval:
// a closed backend maps to 503 and an engine-imposed job timeout to 504,
// instead of both hiding inside a 200 row or a generic 500.
func TestEvalTypedErrorStatuses(t *testing.T) {
	t.Run("closed backend is 503", func(t *testing.T) {
		s, ts := newTestServer(t, Config{Workers: 1})
		s.Backend().Close() // simulate drain completing under a live handler
		resp, err := http.Post(ts.URL+"/v1/eval", "application/json",
			strings.NewReader(`{"name":"bubble","workload":"bubble"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503", resp.StatusCode)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(e.Error, "closed") {
			t.Errorf("error %q, want the closed condition named", e.Error)
		}
	})

	t.Run("job timeout is 504", func(t *testing.T) {
		_, ts := newTestServer(t, Config{Workers: 1, JobTimeout: time.Nanosecond})
		resp, err := http.Post(ts.URL+"/v1/eval", "application/json",
			strings.NewReader(`{"name":"bubble","workload":"bubble"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("status %d, want 504", resp.StatusCode)
		}
	})

	t.Run("per-request timeout_ms is honoured", func(t *testing.T) {
		// No server-level JobTimeout: the bound comes from the request.
		// The inline program spins for millions of RV32 steps, far past
		// a 1ms budget, so the stage-boundary ctx check after the RV32
		// run trips and maps to 504.
		_, ts := newTestServer(t, Config{Workers: 1})
		body, _ := json.Marshal(map[string]any{
			"name":       "spin",
			"source":     "\tli   a0, 0\n\tli   t0, 3000000\nspin:\n\taddi t0, t0, -1\n\tbne  t0, zero, spin\n\tebreak\n",
			"timeout_ms": 1,
		})
		resp, err := http.Post(ts.URL+"/v1/eval", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("status %d, want 504 from the request-level timeout", resp.StatusCode)
		}
	})
}

// TestServeProxiesToPeer fronts one art9-serve with another configured
// proxy-only via Config.Peers — the serve→serve topology — and checks
// a suite and a single eval round-trip through the front match direct
// evaluation.
func TestServeProxiesToPeer(t *testing.T) {
	_, leaf := newTestServer(t, Config{Workers: 2})
	front, frontTS := newTestServer(t, Config{Peers: []string{leaf.URL}})

	if got := front.shardCount(); got != 1 {
		t.Errorf("front shard count %d, want 1 (the one remote client)", got)
	}

	// Liveness never blocks on the peer: workers reports local pools
	// only, so a proxy-only front answers 0 with the peer count beside.
	hz, err := http.Get(frontTS.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Workers int `json:"workers"`
		Peers   int `json:"peers"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if h.Workers != 0 || h.Peers != 1 {
		t.Errorf("front healthz workers=%d peers=%d, want 0 local workers and 1 peer", h.Workers, h.Peers)
	}

	body := `{"technologies":["cntfet32"],"jobs":[
		{"name":"bubble","workload":"bubble"},
		{"name":"gemm","workload":"gemm"}]}`
	resp, err := http.Post(frontTS.URL+"/v1/suite", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("suite via front: status %d, want 200", resp.StatusCode)
	}
	want := map[string]*bench.Outcome{}
	for _, name := range []string{"bubble", "gemm"} {
		o, err := bench.Run(mustWorkload(t, name), xlate.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want[name] = o
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	rows := 0
	for sc.Scan() {
		var jr bench.JobReport
		if err := json.Unmarshal(sc.Bytes(), &jr); err != nil {
			t.Fatalf("malformed row %q: %v", sc.Bytes(), err)
		}
		rows++
		o, ok := want[jr.Name]
		if !ok {
			t.Fatalf("unexpected row %q", jr.Name)
		}
		if !jr.OK || jr.Metrics == nil {
			t.Fatalf("row %s not ok: %s", jr.Name, jr.Error)
		}
		if jr.Metrics.Checksum != o.Checksum || jr.Metrics.ART9Cycles != o.ART9Cycles {
			t.Errorf("row %s metrics %+v disagree with direct run", jr.Name, jr.Metrics)
		}
		if len(jr.Implementations) != 1 {
			t.Errorf("row %s has %d implementations, want 1 (peer-evaluated cntfet32)", jr.Name, len(jr.Implementations))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != 2 {
		t.Fatalf("front streamed %d rows, want 2", rows)
	}

	evalResp, err := http.Post(frontTS.URL+"/v1/eval", "application/json",
		strings.NewReader(`{"name":"sobel","workload":"sobel","technologies":["stratixv"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer evalResp.Body.Close()
	if evalResp.StatusCode != http.StatusOK {
		t.Fatalf("eval via front: status %d, want 200", evalResp.StatusCode)
	}
	var jr bench.JobReport
	if err := json.NewDecoder(evalResp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if !jr.OK || jr.Metrics == nil || len(jr.Implementations) != 1 {
		t.Fatalf("eval via front: report %+v, want ok with one implementation", jr)
	}
}

func mustWorkload(t *testing.T, name string) bench.Workload {
	t.Helper()
	w, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("workload %q missing from suite", name)
	}
	return w
}

// TestSuiteFailoverSurvivesDyingBackend drives the failover stack
// through the HTTP surface: the server's backend is a Balancer over a
// scripted backend that dies after one job and a live local engine.
// The streamed NDJSON suite must still carry every row, each row's
// metrics identical to a healthy serial run, and the stats endpoint
// must expose the nonzero failover scorecard.
func TestSuiteFailoverSurvivesDyingBackend(t *testing.T) {
	// Width 2 guarantees the initial burst hands the dying backend two
	// jobs: one executes, the second trips the scripted death — a
	// deterministic mid-suite failure under any scheduling.
	flaky := faulttest.New("dying-leaf").Width(2).FailAfter(1, nil)
	bal := engine.NewBalancer(engine.BalancerOptions{HealthInterval: -1},
		flaky, engine.New(engine.Options{Workers: 2, PrivateCaches: true}))
	s := NewWithBackend(bal)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	// Three copies of each workload: enough jobs that the dying backend
	// is guaranteed a dispatch after its first job completes (the 4-job
	// suite can drain through the live engine before that happens).
	var m bench.Manifest
	m.Technologies = []string{"cntfet32"}
	for c := 0; c < 3; c++ {
		for _, w := range bench.Workloads {
			m.Jobs = append(m.Jobs, bench.ManifestJob{
				Name: fmt.Sprintf("%s-%d", w.Name, c), Workload: w.Name})
		}
	}
	body, _ := json.Marshal(m)

	resp, err := http.Post(ts.URL+"/v1/suite", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}

	got := map[string]bench.JobReport{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var jr bench.JobReport
		if err := json.Unmarshal(sc.Bytes(), &jr); err != nil {
			t.Fatalf("malformed NDJSON line %q: %v", sc.Bytes(), err)
		}
		if !jr.OK {
			t.Fatalf("job %s lost to the dying backend: %s", jr.Name, jr.Error)
		}
		got[jr.Name] = jr
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(m.Jobs) {
		t.Fatalf("streamed %d rows for %d jobs (dropped or duplicated under failover)", len(got), len(m.Jobs))
	}

	// Byte-identical to a healthy run: every row's metrics must match
	// the serial oracle exactly (rows are named workload-copy; every
	// copy of a workload carries its workload's metrics).
	serial, err := bench.RunAllSerial()
	if err != nil {
		t.Fatal(err)
	}
	for _, mj := range m.Jobs {
		jr, ok := got[mj.Name]
		if !ok {
			t.Fatalf("job %s missing from failover stream", mj.Name)
		}
		o := serial[mj.Workload]
		wantMetrics, _ := json.Marshal(bench.MetricsReportOf(o))
		gotMetrics, _ := json.Marshal(jr.Metrics)
		if !bytes.Equal(gotMetrics, wantMetrics) {
			t.Errorf("%s: failover metrics %s != healthy serial %s", mj.Name, gotMetrics, wantMetrics)
		}
	}

	// The health scorecard must record the failovers and reach clients
	// through /v1/stats; /v1/healthz must advertise the failover front.
	var failovers uint64
	for _, h := range bal.Health() {
		failovers += h.Failovers
	}
	if failovers == 0 {
		t.Error("balancer recorded no failovers though its backend died mid-suite")
	}
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var stats StatsReply
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Balancer) != 2 {
		t.Fatalf("stats balancer scorecards = %d, want 2", len(stats.Balancer))
	}
	var statFailovers uint64
	for _, h := range stats.Balancer {
		statFailovers += h.Failovers
	}
	if statFailovers == 0 {
		t.Error("/v1/stats balancer scorecard shows no failovers")
	}
	hResp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hResp.Body.Close()
	var h struct {
		Failover bool `json:"failover"`
	}
	if err := json.NewDecoder(hResp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.Failover {
		t.Error("healthz does not advertise the failover front")
	}
}

// TestNewFailoverConfig pins the Config wiring: Failover selects a
// Balancer backend.
func TestNewFailoverConfig(t *testing.T) {
	s, err := New(Config{Shards: 2, Workers: 1, Failover: true, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, ok := s.Backend().(*engine.Balancer); !ok {
		t.Fatalf("Failover config built %T, want *engine.Balancer", s.Backend())
	}
	if s.shardCount() != 2 {
		t.Errorf("shardCount = %d, want 2", s.shardCount())
	}
}

// TestNewAutoscaleConfig pins the Config wiring of the elastic front:
// the autoscale bounds select an Autoscaler backend, /v1/healthz flags
// it, and /v1/stats carries the scale state next to the per-member
// scorecards.
func TestNewAutoscaleConfig(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1, AutoscaleMin: 1, AutoscaleMax: 2, ScaleInterval: -1,
	})
	if _, ok := s.Backend().(*engine.Autoscaler); !ok {
		t.Fatalf("autoscale config built %T, want *engine.Autoscaler", s.Backend())
	}

	hResp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hResp.Body.Close()
	var h struct {
		Status    string `json:"status"`
		Autoscale bool   `json:"autoscale"`
		Failover  bool   `json:"failover"`
	}
	if err := json.NewDecoder(hResp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || !h.Autoscale || h.Failover {
		t.Errorf("healthz = %+v, want an ok autoscale front", h)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatsReply
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Autoscale == nil {
		t.Fatal("stats reply carries no autoscale state")
	}
	if sr.Autoscale.Min != 1 || sr.Autoscale.Max != 2 || sr.Autoscale.ActiveShards != 1 {
		t.Errorf("autoscale state %+v, want min 1, max 2, 1 active shard", sr.Autoscale)
	}
	if len(sr.Balancer) != 1 || sr.Balancer[0].Standby || sr.Balancer[0].Retired {
		t.Errorf("member scorecards %+v, want one active local member", sr.Balancer)
	}
}

// TestNewRejectsIncoherentConfig pins serve.New's validation: the same
// rule set behind art9.New rejects orphaned tuning with a typed error
// instead of silently ignoring it.
func TestNewRejectsIncoherentConfig(t *testing.T) {
	if _, err := New(Config{Workers: 1, Chunk: 4}); !errors.Is(err, engine.ErrInvalidOptions) {
		t.Errorf("New(Chunk without Failover) = %v, want engine.ErrInvalidOptions", err)
	}
	if _, err := New(Config{AutoscaleMin: 3, AutoscaleMax: 1}); !errors.Is(err, engine.ErrInvalidOptions) {
		t.Errorf("New(inverted autoscale bounds) = %v, want engine.ErrInvalidOptions", err)
	}
	if _, err := New(Config{Shards: 2, AutoscaleMax: 2}); !errors.Is(err, engine.ErrInvalidOptions) {
		t.Errorf("New(fixed shards + autoscale) = %v, want engine.ErrInvalidOptions", err)
	}
}

// TestDegradedFailoverFrontIsVisible pins the tier-composition story: a
// failover front whose backends are all down answers 503 on both
// /v1/healthz (so an upper balancer's probe routes around it) and
// /v1/eval (so an upper tier re-runs the job elsewhere), with the
// unavailable kind stamped on suite rows.
func TestDegradedFailoverFrontIsVisible(t *testing.T) {
	dead := faulttest.New("dead-leaf")
	bal := engine.NewBalancer(engine.BalancerOptions{HealthInterval: -1, MaxRetries: -1}, dead)
	s := NewWithBackend(bal)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	dead.Kill(nil)
	// One failed round marks the backend down reactively.
	resp, err := http.Post(ts.URL+"/v1/eval", "application/json",
		strings.NewReader(`{"name":"bubble","workload":"bubble"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("eval against all-dead failover front: status %d, want 503", resp.StatusCode)
	}

	hResp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hResp.Body.Close()
	if hResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz of degraded front: status %d, want 503", hResp.StatusCode)
	}
	var h struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hResp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" {
		t.Errorf("healthz status %q, want degraded", h.Status)
	}
}
