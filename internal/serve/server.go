// Package serve is the streaming evaluation service: the paper's §V
// evaluation matrix exposed over HTTP on top of the engine's Job/Result
// API. A resident server amortizes what the CLI pays per invocation —
// warm memoization caches, running worker pools — across every request,
// which is the first step of the ROADMAP's serve-heavy-traffic goal.
//
// Endpoints (all JSON):
//
//	POST /v1/eval    one program in, one JobReport out
//	POST /v1/suite   manifest in, NDJSON JobReports streamed out in
//	                 completion order, one line per job as it finishes
//	GET  /v1/healthz liveness + pool shape
//	GET  /v1/stats   per-shard engine counters + shared cache counters
//
// Jobs are fanned out across a ShardSet; each request's jobs are
// cancelled with the request context, so a disconnected client stops
// paying for evaluation it can no longer receive.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/xlate"
)

// maxBody bounds request bodies; manifests are small JSON documents and
// inline sources are assembly text, so 4 MiB is generous. Oversize
// bodies are rejected with 413 via http.MaxBytesReader, not truncated.
const maxBody = 4 << 20

// maxSuiteJobs bounds one /v1/suite request. Every job costs a buffered
// channel slot and two goroutines up front (Stream fan-out + Submit
// handoff), so an uncapped manifest would let a single request allocate
// proportionally to its own size before any evaluation runs.
const maxSuiteJobs = 1024

// maxCachedPrograms caps the process-wide program cache. The bench jobs
// memoize every distinct source through engine.SharedPrograms, which is
// unbounded by design for the fixed suite — but a resident server feeds
// it client-supplied sources, so it is purged wholesale whenever it
// grows past this (coarse, but bounds memory; the fixed suite re-warms
// in one request).
const maxCachedPrograms = 4096

// Config sizes the server's evaluation back end.
type Config struct {
	// Shards is the number of independent engines; 0 or 1 selects one.
	Shards int
	// Workers is the per-shard pool size; 0 selects GOMAXPROCS.
	Workers int
	// JobTimeout bounds each evaluation job; 0 means no deadline.
	JobTimeout time.Duration
}

// Server owns the engine shards and serves the /v1 API. Create with
// New, mount via Handler, release with Close.
type Server struct {
	shards   *engine.ShardSet
	started  time.Time
	requests atomic.Uint64
}

// New starts the evaluation back end. The shards (and their caches, and
// the process-wide program/analysis caches the bench jobs share) live
// for the server's lifetime, so every request after the first reuses
// prior work.
func New(cfg Config) *Server {
	return &Server{
		shards: engine.NewShardSet(cfg.Shards, engine.Options{
			Workers:    cfg.Workers,
			JobTimeout: cfg.JobTimeout,
		}),
		started: time.Now(),
	}
}

// Shards exposes the backing shard set (stats drill-down, tests).
func (s *Server) Shards() *engine.ShardSet { return s.shards }

// Close stops the engines. In-flight jobs finish, queued jobs resolve
// with ErrClosed; call after the HTTP listener has drained so no handler
// is still submitting.
func (s *Server) Close() { s.shards.Close() }

// Handler returns the /v1 route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/eval", s.handleEval)
	mux.HandleFunc("/v1/suite", s.handleSuite)
	return mux
}

// EvalRequest is the POST /v1/eval body: one manifest job plus the
// technologies to estimate it against. File jobs are rejected — a
// network request must not read server-side paths.
type EvalRequest struct {
	bench.ManifestJob
	Technologies []string `json:"technologies,omitempty"`
}

// StatsReply is the GET /v1/stats body.
type StatsReply struct {
	UptimeSeconds float64            `json:"uptime_seconds"`
	Requests      uint64             `json:"requests"`
	Engine        bench.EngineReport `json:"engine"`
	ShardStats    []engine.Stats     `json:"shard_stats"`
	Cache         bench.CacheReport  `json:"cache"`
}

// healthzReply is the GET /v1/healthz body.
type healthzReply struct {
	Status  string `json:"status"`
	Shards  int    `json:"shards"`
	Workers int    `json:"workers"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	writeJSON(w, http.StatusOK, healthzReply{
		Status:  "ok",
		Shards:  s.shards.Shards(),
		Workers: s.shards.TotalStats().Workers,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	writeJSON(w, http.StatusOK, StatsReply{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Requests:      s.requests.Load(),
		Engine:        bench.ShardSetReportOf(s.shards),
		ShardStats:    s.shards.Stats(),
		Cache:         sharedCacheReport(),
	})
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	var req EvalRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, bodyErrStatus(err), err)
		return
	}
	techs, err := bench.Technologies(req.Technologies)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	wl, err := req.Resolve("") // dir "" forbids file jobs over HTTP
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	capSharedCaches()
	results, _ := s.shards.RunAll(r.Context(), bench.SuiteJobs([]bench.Workload{wl}, xlate.Options{}))
	writeJSON(w, http.StatusOK, bench.JobReportOf(results[0], techs))
}

func (s *Server) handleSuite(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	raw, err := readBody(w, r)
	if err != nil {
		writeError(w, bodyErrStatus(err), err)
		return
	}
	m, err := bench.ParseManifest(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(m.Jobs) > maxSuiteJobs {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("manifest: %d jobs exceeds the per-request limit of %d", len(m.Jobs), maxSuiteJobs))
		return
	}
	techs, err := m.ResolveTechnologies()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	jobs, err := m.EngineJobs("", xlate.Options{}) // dir "" forbids file jobs
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	capSharedCaches()

	// Everything below is NDJSON: one JobReport line the moment each
	// job completes, flushed so a slow suite trickles out instead of
	// buffering. The jobs share the request context — when the client
	// disconnects, outstanding jobs resolve canceled and the engines
	// move on to other requests' work.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	clientGone := false
	for res := range s.shards.Stream(r.Context(), jobs) {
		if clientGone {
			// The client is gone; keep draining so the stream's
			// forwarders finish against the cancelled context, but
			// skip rendering rows nobody will receive.
			continue
		}
		if err := enc.Encode(bench.JobReportOf(res, techs)); err != nil {
			clientGone = true
			continue
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func sharedCacheReport() bench.CacheReport {
	ps, as := engine.SharedPrograms.Stats(), engine.SharedAnalyses.Stats()
	return bench.CacheReport{
		ProgramHits: ps.Hits, ProgramMisses: ps.Misses,
		AnalysisHits: as.Hits, AnalysisMisses: as.Misses,
	}
}

// capSharedCaches bounds the process-wide caches before a request's
// jobs feed them. Only the program cache grows with client input — the
// analysis cache is keyed by (fixed ART-9 netlist, technology).
func capSharedCaches() {
	if engine.SharedPrograms.Stats().Entries >= maxCachedPrograms {
		engine.SharedPrograms.Purge()
	}
}

// readBody reads a request body under the maxBody cap; oversize bodies
// error (mapped to 413 by bodyErrStatus) rather than truncating.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		return nil, fmt.Errorf("read body: %w", err)
	}
	return raw, nil
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) error {
	raw, err := readBody(w, r)
	if err != nil {
		return err
	}
	if len(raw) == 0 {
		return errors.New("empty request body")
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("decode body: %w", err)
	}
	return nil
}

// bodyErrStatus maps a body-read failure to 413 when the cause was the
// size cap, 400 otherwise.
func bodyErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func methodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	writeError(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
}
