// Package serve is the streaming evaluation service: the paper's §V
// evaluation matrix exposed over HTTP on top of the engine's Job/Result
// API. A resident server amortizes what the CLI pays per invocation —
// warm memoization caches, running worker pools — across every request,
// which is the first step of the ROADMAP's serve-heavy-traffic goal.
//
// Endpoints (all JSON):
//
//	POST /v1/eval     one program in, one JobReport out
//	POST /v1/suite    manifest in, NDJSON JobReports streamed out in
//	                  completion order, one line per job as it finishes
//	                  (?ack=1 adds start/end acknowledgement rows for
//	                  chunk dispatchers)
//	GET  /v1/healthz  liveness + pool shape
//	GET  /v1/stats    per-shard engine counters + shared cache counters
//	GET  /v1/capacity process-local free workers + queue depth (the
//	                  fast path capacity-aware fronts poll)
//	POST /v1/cache/lookup  result-cache keys in, NDJSON hit/miss rows
//	                  out — answered from this instance's LOCAL store
//	                  (Config.Cache; absent otherwise)
//	POST /v1/cache/fill    sibling-computed result rows in, stored
//	                  count out (Config.Cache; absent otherwise)
//
// Jobs are fanned out across an engine.Evaluator backend — a local
// shard set by default, or (Config.Peers) a set fronting other
// art9-serve instances through internal/remote clients, which is how one
// instance serves a multi-machine fleet. Each request's jobs are
// cancelled with the request context, so a disconnected client stops
// paying for evaluation it can no longer receive.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/remote"
	"repro/internal/rescache"
	"repro/internal/xlate"
)

// maxBody bounds request bodies; manifests are small JSON documents and
// inline sources are assembly text, so 4 MiB is generous. Oversize
// bodies are rejected with 413 via http.MaxBytesReader, not truncated.
const maxBody = 4 << 20

// maxSuiteJobs bounds one /v1/suite request. Every job costs a buffered
// channel slot and two goroutines up front (Stream fan-out + Submit
// handoff), so an uncapped manifest would let a single request allocate
// proportionally to its own size before any evaluation runs.
const maxSuiteJobs = 1024

// Caps for one /v1/cache request, mirrored by internal/remote's cache
// client (redefined there to keep serve → remote a one-way dependency):
// at most maxCacheKeys keys or entries per request, values no larger
// than maxCacheValue bytes so one row always fits a client's NDJSON
// line buffer.
const (
	maxCacheKeys  = 256
	maxCacheValue = 1 << 20
)

// Config sizes the server's evaluation back end.
type Config struct {
	// Shards is the number of local engines. 0 selects one — unless
	// Peers is non-empty, where 0 means proxy-only (no local pool).
	Shards int
	// Workers is the per-shard pool size; 0 selects GOMAXPROCS.
	Workers int
	// JobTimeout bounds each local evaluation job; 0 means no deadline.
	JobTimeout time.Duration
	// Peers lists base URLs of downstream art9-serve instances to fan
	// jobs out to alongside the local shards (serve→serve proxying).
	// Do not point a fleet at itself — a cycle proxies forever.
	Peers []string
	// Failover fronts the backends with a health-aware engine.Balancer:
	// least-loaded dispatch, a periodic health-probe loop, and job-level
	// failover re-running jobs a dying backend dropped. Without it the
	// backends sit behind the round-robin ShardSet.
	Failover bool
	// HealthInterval is the Balancer's probe period and MaxRetries its
	// per-job failover budget (engine defaults at zero); both ignored
	// without Failover.
	HealthInterval time.Duration
	MaxRetries     int
	// Chunk makes the Balancer dispatch in chunks of up to this many
	// jobs (acknowledged /v1/suite streams to downstream peers) instead
	// of per-job placement, sized down by live capacity. Ignored
	// without Failover.
	Chunk int
	// AutoscaleMin/AutoscaleMax select the elastic engine.Autoscaler
	// front instead of a fixed topology: local shards float between the
	// bounds, growing under queued load and draining every retired
	// member before it closes. Mutually exclusive with Shards, Peers
	// and Failover.
	AutoscaleMin int
	AutoscaleMax int
	// StandbyPeers lists downstream art9-serve base URLs the autoscaler
	// dials only once the local ceiling is exhausted, and retires first
	// when load drops.
	StandbyPeers []string
	// ScaleUpThreshold/ScaleDownThreshold, ScaleCooldown and
	// ScaleInterval tune the autoscaler's hysteresis (engine defaults
	// at zero); all ignored without AutoscaleMin/AutoscaleMax.
	ScaleUpThreshold   float64
	ScaleDownThreshold float64
	ScaleCooldown      time.Duration
	ScaleInterval      time.Duration
	// Cache enables the fleet-wide result cache: the dispatch path
	// consults a content-addressed store before placing a job, and the
	// /v1/cache/{lookup,fill} endpoints expose this instance's local
	// store to sibling serve instances. CacheMaxBytes bounds the local
	// store (0 selects the rescache default); CachePeers lists sibling
	// base URLs whose /v1/cache tier is consulted on a local miss and
	// filled on a local compute. CacheEpoch is the fleet-wide
	// invalidation generation: every /v1/cache exchange carries it and
	// a disagreement is a standing miss (lookup) or a rejected entry
	// (fill), so restarting with a bumped epoch abandons every
	// previously cached row fleet-wide. All three require Cache.
	Cache         bool
	CacheMaxBytes int64
	CachePeers    []string
	CacheEpoch    uint64
}

// Server owns an Evaluator backend and serves the /v1 API. Create with
// New, mount via Handler, release with Close.
type Server struct {
	backend engine.Evaluator
	peers   int
	// cache is the result-cache tier the dispatch path consults; its
	// Local() store is what /v1/cache/{lookup,fill} serve to siblings.
	// Nil when Config.Cache is off (the endpoints then 404, which cache
	// clients treat as a standing miss).
	cache *rescache.Tiered
	// jobTimeout is Config.JobTimeout, stamped onto jobs that carry no
	// bound of their own so the deadline rides the wire spec to peer
	// backends — the engine option only covers local shards.
	jobTimeout time.Duration
	started    time.Time
	requests   atomic.Uint64
	// cacheEpochRejects counts wire exchanges this server refused over
	// an epoch disagreement — the server-side half of the invalidation
	// picture (the tier's own Stats carry the client-side half).
	cacheEpochRejects atomic.Uint64
}

// New starts the evaluation back end: local engine shards, remote
// clients for cfg.Peers, or a shard set mixing both. The backend (and
// the process-wide program/analysis caches the bench jobs share) lives
// for the server's lifetime, so every request after the first reuses
// prior work. Fails only on an invalid peer URL.
func New(cfg Config) (*Server, error) {
	// remote.NewBackendWith owns the defaulting (one local shard unless
	// peers make a proxy-only topology meaningful) and the failover
	// composition.
	bc := remote.BackendConfig{
		Shards: cfg.Shards,
		Engine: engine.Options{
			Workers:    cfg.Workers,
			JobTimeout: cfg.JobTimeout,
		},
		Peers:              cfg.Peers,
		Failover:           cfg.Failover,
		HealthInterval:     cfg.HealthInterval,
		MaxRetries:         cfg.MaxRetries,
		Chunk:              cfg.Chunk,
		AutoscaleMin:       cfg.AutoscaleMin,
		AutoscaleMax:       cfg.AutoscaleMax,
		StandbyPeers:       cfg.StandbyPeers,
		ScaleUpThreshold:   cfg.ScaleUpThreshold,
		ScaleDownThreshold: cfg.ScaleDownThreshold,
		ScaleCooldown:      cfg.ScaleCooldown,
		ScaleInterval:      cfg.ScaleInterval,
		Cache:              cfg.Cache,
		CacheMaxBytes:      cfg.CacheMaxBytes,
		CachePeers:         cfg.CachePeers,
		CacheEpoch:         cfg.CacheEpoch,
	}
	// Validate before building the tier so an incoherent cache config
	// fails with the shared rule set's diagnostic, not a partial build.
	if _, err := remote.ValidateConfig(bc); err != nil {
		return nil, err
	}
	var tier *rescache.Tiered
	if cfg.Cache {
		var err error
		tier, err = remote.NewResultCacheWith(remote.ResultCacheConfig{
			MaxBytes: cfg.CacheMaxBytes,
			Peers:    cfg.CachePeers,
			Epoch:    cfg.CacheEpoch,
		})
		if err != nil {
			return nil, err
		}
		// The server and its dispatch path share one tier: what the
		// backend computes, /v1/cache/lookup can answer for siblings.
		bc.CacheStore = tier
	}
	backend, err := remote.NewBackendWith(bc)
	if err != nil {
		return nil, err
	}
	s := NewWithBackend(backend)
	s.peers = len(cfg.Peers)
	s.jobTimeout = cfg.JobTimeout
	s.cache = tier
	return s, nil
}

// NewWithBackend wraps a caller-supplied Evaluator — any topology, e.g.
// a Balancer mixing custom backends — and takes ownership of it (the
// server's Close closes it). Fault-injection tests use it to serve
// suites from scripted backends.
func NewWithBackend(backend engine.Evaluator) *Server {
	return &Server{
		backend: backend,
		started: time.Now(),
	}
}

// Backend exposes the evaluation backend (stats drill-down, tests).
func (s *Server) Backend() engine.Evaluator { return s.backend }

// shardCount reports how many shards the backend spans (1 for a
// non-composite backend).
func (s *Server) shardCount() int {
	if c, ok := s.backend.(engine.Composite); ok {
		return c.Size()
	}
	return 1
}

// shardStats reports per-shard counters (one entry for a non-composite
// backend).
func (s *Server) shardStats() []engine.Stats {
	return engine.BackendStats(s.backend)
}

// Close stops the backend. In-flight jobs finish, queued jobs resolve
// with ErrClosed; call after the HTTP listener has drained so no handler
// is still submitting.
func (s *Server) Close() error { return s.backend.Close() }

// Handler returns the /v1 route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/capacity", s.handleCapacity)
	mux.HandleFunc("/v1/eval", s.handleEval)
	mux.HandleFunc("/v1/suite", s.handleSuite)
	if s.cache != nil {
		// Registered only when the cache is on: a cache-less instance
		// answers 404, which remote cache clients count as a standing
		// miss — mixed-version and mixed-config fleets stay healthy.
		mux.HandleFunc("/v1/cache/lookup", s.handleCacheLookup)
		mux.HandleFunc("/v1/cache/fill", s.handleCacheFill)
	}
	return mux
}

// EvalRequest is the POST /v1/eval body: one manifest job plus the
// technologies to estimate it against. File jobs are rejected — a
// network request must not read server-side paths.
type EvalRequest struct {
	bench.ManifestJob
	Technologies []string `json:"technologies,omitempty"`
}

// StatsReply is the GET /v1/stats body. Balancer is present exactly
// when the backend is a health-aware Balancer or an elastic
// Autoscaler: one scorecard per backend with dispatch/failover/probe
// counters (autoscaler members additionally flag retired/standby).
// Autoscale is present exactly when the backend is an Autoscaler: the
// pool's point-in-time scale state (bounds, active members, busy/queue
// load, thresholds, lifetime up/down counts). Capacity is the
// process-local load snapshot (the same numbers /v1/capacity serves as
// a fast path), so capacity-aware fronts can size chunks off either
// endpoint.
type StatsReply struct {
	UptimeSeconds float64                `json:"uptime_seconds"`
	Requests      uint64                 `json:"requests"`
	Engine        bench.EngineReport     `json:"engine"`
	ShardStats    []engine.Stats         `json:"shard_stats"`
	Cache         bench.CacheReport      `json:"cache"`
	Capacity      engine.Capacity        `json:"capacity"`
	Balancer      []engine.BackendHealth `json:"balancer,omitempty"`
	Autoscale     *engine.ScaleState     `json:"autoscale,omitempty"`
}

// healthzReply is the GET /v1/healthz body. Workers counts local pool
// workers only — liveness must never block on a peer, so fleet capacity
// is reported by /v1/stats (which does scrape the peers) instead.
type healthzReply struct {
	Status  string `json:"status"`
	Shards  int    `json:"shards"`
	Workers int    `json:"workers"`
	Peers   int    `json:"peers,omitempty"`
	// Failover reports whether a health-aware Balancer fronts the
	// backends; its per-backend scorecards live in /v1/stats.
	Failover bool `json:"failover,omitempty"`
	// Autoscale reports whether an elastic Autoscaler fronts the
	// backends; its scale state and scorecards live in /v1/stats.
	Autoscale bool `json:"autoscale,omitempty"`
	// Cache reports whether the result cache (and its /v1/cache
	// endpoints) is enabled; its counters live in /v1/stats.
	Cache bool `json:"cache,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	reply := healthzReply{
		Status:  "ok",
		Shards:  s.shardCount(),
		Workers: engine.LocalStats(s.backend).Workers,
		Peers:   s.peers,
		Cache:   s.cache != nil,
	}
	status := http.StatusOK
	// A Balancer front answers with its tracked aggregate verdict — no
	// network, so liveness still never blocks on a peer — and a front
	// whose backends are all down reports 503: an upper failover tier
	// probing this endpoint then routes around the whole front, which
	// is how balancers nest across serve→serve tiers.
	switch front := s.backend.(type) {
	case *engine.Balancer:
		reply.Failover = true
		if err := front.Probe(r.Context()); err != nil {
			reply.Status = "degraded"
			status = http.StatusServiceUnavailable
		}
	case *engine.Autoscaler:
		reply.Autoscale = true
		if err := front.Probe(r.Context()); err != nil {
			reply.Status = "degraded"
			status = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, status, reply)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	// One scrape round serves both views: remote shards answer Stats()
	// with a live peer scrape, so summing the per-shard snapshots —
	// instead of asking the backend again — halves the network cost.
	per := s.shardStats()
	var total engine.Stats
	for _, st := range per {
		total = total.Add(st)
	}
	reply := StatsReply{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Requests:      s.requests.Load(),
		Engine:        bench.EngineReportFrom(total, s.shardCount()),
		ShardStats:    per,
		Cache:         bench.SharedCacheReport(),
		Capacity:      engine.LocalCapacity(s.backend),
	}
	if s.cache != nil {
		reply.Cache.Results = bench.ResultCacheReportFrom(s.cache.Stats())
		reply.Cache.Results.EpochRejects += s.cacheEpochRejects.Load()
	}
	switch front := s.backend.(type) {
	case *engine.Balancer:
		reply.Balancer = front.Health()
	case *engine.Autoscaler:
		reply.Balancer = front.Health()
		state := front.ScaleState()
		reply.Autoscale = &state
	}
	writeJSON(w, http.StatusOK, reply)
}

// handleCapacity is the lightweight load fast path: the process-local
// free-worker and queue-depth snapshot, no peer scrapes and no JSON
// bigger than one line — cheap enough for a capacity-aware front to
// poll every probe round without taxing the fleet.
func (s *Server) handleCapacity(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	writeJSON(w, http.StatusOK, engine.LocalCapacity(s.backend))
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	var req EvalRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, bodyErrStatus(err), err)
		return
	}
	techs, err := bench.Technologies(req.Technologies)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	wl, err := req.Resolve("") // dir "" forbids file jobs over HTTP
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	jobs := bench.SuiteJobs([]bench.Workload{wl}, xlate.Options{})
	// Forward the request's technologies and timeout on the job spec so
	// a peer backend applies the same estimates and bounds the local
	// path does.
	spec := jobs[0].Spec.(*bench.JobSpec)
	spec.Technologies = req.Technologies
	spec.Job.TimeoutMS = req.TimeoutMS
	if req.TimeoutMS > 0 {
		jobs[0].Timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	bench.ApplyJobTimeout(jobs, s.jobTimeout)
	results, _ := s.backend.Run(r.Context(), jobs)
	res := results[0]
	// The typed evaluation failures get distinct statuses: a
	// draining/closed or unavailable backend is 503 (retry elsewhere —
	// this is what lets an upper failover tier re-run the job on a
	// different front), a per-job timeout is 504. Everything else is a
	// job-level failure reported in the 200 row, matching the NDJSON
	// suite contract.
	switch {
	case errors.Is(res.Err, engine.ErrClosed), errors.Is(res.Err, engine.ErrUnavailable):
		writeTypedError(w, http.StatusServiceUnavailable, res.Err)
		return
	case errors.Is(res.Err, engine.ErrTimeout) || errors.Is(res.Err, context.DeadlineExceeded):
		writeTypedError(w, http.StatusGatewayTimeout, res.Err)
		return
	}
	writeJSON(w, http.StatusOK, bench.JobReportOf(res, techs))
}

func (s *Server) handleSuite(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	raw, err := readBody(w, r)
	if err != nil {
		writeError(w, bodyErrStatus(err), err)
		return
	}
	m, err := bench.ParseManifest(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(m.Jobs) > maxSuiteJobs {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("manifest: %d jobs exceeds the per-request limit of %d", len(m.Jobs), maxSuiteJobs))
		return
	}
	techs, err := m.ResolveTechnologies()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	jobs, err := m.EngineJobs("", xlate.Options{}) // dir "" forbids file jobs
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	bench.ApplyJobTimeout(jobs, s.jobTimeout)

	// Everything below is NDJSON: one JobReport line the moment each
	// job completes, flushed so a slow suite trickles out instead of
	// buffering. The jobs share the request context — when the client
	// disconnects, outstanding jobs resolve canceled and the engines
	// move on to other requests' work.
	//
	// ?ack=1 selects the acknowledged stream variant chunk dispatchers
	// consume: a start row once the manifest is accepted and an end row
	// after the last report, so a client can tell a complete stream
	// from one severed mid-chunk — result rows are unchanged, and the
	// plain stream stays byte-compatible for existing consumers.
	acked := r.URL.Query().Get("ack") == "1"
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc := json.NewEncoder(w)
	clientGone := false
	if acked {
		if err := enc.Encode(suiteAck{Ack: "start", Jobs: len(jobs)}); err != nil {
			clientGone = true
		}
		flush()
	}
	rows := 0
	for res := range s.backend.Stream(r.Context(), jobs) {
		if clientGone {
			// The client is gone; keep draining so the stream's
			// forwarders finish against the cancelled context, but
			// skip rendering rows nobody will receive.
			continue
		}
		if err := enc.Encode(bench.JobReportOf(res, techs)); err != nil {
			clientGone = true
			continue
		}
		rows++
		flush()
	}
	if acked && !clientGone {
		enc.Encode(suiteAck{Ack: "end", Rows: rows})
		flush()
	}
}

// suiteAck is one acknowledgement line of the ?ack=1 /v1/suite stream:
// "start" carries the accepted job count, "end" the number of result
// rows written. Mirrored by internal/remote's ackRow (redefined there
// to keep serve → remote a one-way dependency).
type suiteAck struct {
	Ack  string `json:"ack"`
	Jobs int    `json:"jobs,omitempty"`
	Rows int    `json:"rows,omitempty"`
}

// cacheLookupRequest is the POST /v1/cache/lookup body. Mirrored by
// internal/remote's cache client (redefined there to keep serve →
// remote a one-way dependency), like suiteAck. Epoch is the caller's
// cache generation; a disagreement answers every key as a miss.
type cacheLookupRequest struct {
	Keys  []string `json:"keys"`
	Epoch uint64   `json:"epoch,omitempty"`
}

// cacheRow is one NDJSON reply row of /v1/cache/lookup, stamped with
// this server's epoch so the client can refuse cross-generation rows.
type cacheRow struct {
	Key   string          `json:"key"`
	Found bool            `json:"found"`
	Value json.RawMessage `json:"value,omitempty"`
	Epoch uint64          `json:"epoch,omitempty"`
}

// cacheFillEntry is one entry of the POST /v1/cache/fill body.
type cacheFillEntry struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// cacheFillRequest is the POST /v1/cache/fill body.
type cacheFillRequest struct {
	Entries []cacheFillEntry `json:"entries"`
	Epoch   uint64           `json:"epoch,omitempty"`
}

// cacheFillReply acknowledges a fill: entries stored, entries refused
// over an epoch disagreement, and this server's epoch.
type cacheFillReply struct {
	Stored   int    `json:"stored"`
	Rejected int    `json:"rejected,omitempty"`
	Epoch    uint64 `json:"epoch,omitempty"`
}

// handleCacheLookup answers sibling lookups from the LOCAL store only —
// never through the tier — so two instances pointed at each other
// cannot loop one miss forever. Rows stream as NDJSON in key order. A
// caller on a different epoch gets a full set of miss rows stamped with
// this server's epoch — a standing miss, never an error, so
// mixed-generation fleets degrade to computing.
func (s *Server) handleCacheLookup(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	var req cacheLookupRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, bodyErrStatus(err), err)
		return
	}
	if len(req.Keys) > maxCacheKeys {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("cache lookup: %d keys exceeds the per-request limit of %d", len(req.Keys), maxCacheKeys))
		return
	}
	epoch := s.cache.Epoch()
	if req.Epoch != epoch {
		s.cacheEpochRejects.Add(uint64(len(req.Keys)))
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		for _, k := range req.Keys {
			if err := enc.Encode(cacheRow{Key: k, Epoch: epoch}); err != nil {
				return
			}
		}
		return
	}
	local := s.cache.Local()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for _, k := range req.Keys {
		row := cacheRow{Key: k, Epoch: epoch}
		if v, ok := local.Get(r.Context(), k); ok {
			row.Found, row.Value = true, v
		}
		if err := enc.Encode(row); err != nil {
			return
		}
	}
}

// handleCacheFill stores sibling-computed rows into the LOCAL store, so
// this instance answers the fleet's next lookup without the fill ever
// fanning back out. Unusable entries — empty keys, oversize or invalid
// values — are skipped, not errors: a fill is best-effort by contract.
// A fill from another epoch is rejected whole (acknowledged, counted,
// stored nowhere): another generation's rows must never enter this
// store.
func (s *Server) handleCacheFill(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	var req cacheFillRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, bodyErrStatus(err), err)
		return
	}
	if len(req.Entries) > maxCacheKeys {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("cache fill: %d entries exceeds the per-request limit of %d", len(req.Entries), maxCacheKeys))
		return
	}
	epoch := s.cache.Epoch()
	if req.Epoch != epoch {
		s.cacheEpochRejects.Add(uint64(len(req.Entries)))
		writeJSON(w, http.StatusOK, cacheFillReply{Rejected: len(req.Entries), Epoch: epoch})
		return
	}
	local := s.cache.Local()
	stored := 0
	for _, e := range req.Entries {
		if e.Key == "" || len(e.Value) == 0 || len(e.Value) > maxCacheValue || !json.Valid(e.Value) {
			continue
		}
		local.Put(r.Context(), e.Key, e.Value)
		stored++
	}
	writeJSON(w, http.StatusOK, cacheFillReply{Stored: stored, Epoch: epoch})
}

// readBody reads a request body under the maxBody cap; oversize bodies
// error (mapped to 413 by bodyErrStatus) rather than truncating.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		return nil, fmt.Errorf("read body: %w", err)
	}
	return raw, nil
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) error {
	raw, err := readBody(w, r)
	if err != nil {
		return err
	}
	if len(raw) == 0 {
		return errors.New("empty request body")
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("decode body: %w", err)
	}
	return nil
}

// bodyErrStatus maps a body-read failure to 413 when the cause was the
// size cap, 400 otherwise.
func bodyErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// writeTypedError renders an evaluation failure with its wire kind, so
// a remote client on the next tier up re-types it exactly — "closed"
// and "unavailable" both travel as 503, and without the kind the
// client could not tell a draining peer from an unreachable one.
func writeTypedError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{
		"error":      err.Error(),
		"error_kind": bench.ErrorKindOf(err),
	})
}

func methodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	writeError(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
}
